package sketch_test

// Hot-path microbenchmarks under `go test -bench Hot -benchmem`. The
// suite itself lives in internal/benchrun so `sketchbench -bench` can
// run the identical code and serialize the results to BENCH_1.json;
// see that package's doc comment for the fixed-working-set methodology.

import (
	"testing"

	"repro/internal/benchrun"
)

func BenchmarkHot(b *testing.B) {
	for _, nb := range benchrun.Benchmarks() {
		b.Run(nb.Name, nb.F)
	}
}
