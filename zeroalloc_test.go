package sketch_test

// Allocation-regression tests for the hash-once hot paths: every
// per-item update and query below must stay at exactly zero heap
// allocations, or the BENCH_1.json throughput numbers quietly rot.
// Keys are longer than 32 bytes where strings are involved, past the
// size where the compiler could hide a []byte(s) conversion in a stack
// temporary.

import (
	"strings"
	"testing"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/frequency"
	"repro/internal/hashx"
)

func assertZeroAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s: %v allocs per op, want 0", name, n)
	}
}

func TestZeroAllocHotPaths(t *testing.T) {
	key := []byte("https://example.com/api/v1/users/1000000")
	skey := strings.Repeat("zero-alloc-key/", 4) // 60 bytes

	f := bloom.NewWithEstimates(10_000, 0.01, 1)
	assertZeroAlloc(t, "bloom.Add", func() { f.Add(key) })
	assertZeroAlloc(t, "bloom.Contains", func() { _ = f.Contains(key) })
	assertZeroAlloc(t, "bloom.AddString", func() { f.AddString(skey) })
	assertZeroAlloc(t, "bloom.ContainsString", func() { _ = f.ContainsString(skey) })

	cf := bloom.NewCounting(1<<14, 5, 1)
	assertZeroAlloc(t, "bloom.CountingFilter.Add", func() { cf.Add(key) })
	assertZeroAlloc(t, "bloom.CountingFilter.Contains", func() { _ = cf.Contains(key) })

	cm := frequency.NewCountMin(512, 4, 1)
	assertZeroAlloc(t, "frequency.CountMin.AddUint64", func() { cm.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountMin.Add", func() { cm.Add(key, 1) })
	assertZeroAlloc(t, "frequency.CountMin.AddString", func() { cm.AddString(skey) })
	assertZeroAlloc(t, "frequency.CountMin.EstimateUint64", func() { _ = cm.EstimateUint64(42) })

	ccm := frequency.NewCountMin(512, 4, 1)
	ccm.SetConservative(true)
	assertZeroAlloc(t, "frequency.CountMin(conservative).AddUint64", func() { ccm.AddUint64(42, 1) })

	cs := frequency.NewCountSketch(512, 5, 1)
	assertZeroAlloc(t, "frequency.CountSketch.AddUint64", func() { cs.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountSketch.AddString", func() { cs.AddString(skey, 1) })

	h := cardinality.NewHLL(12, 1)
	assertZeroAlloc(t, "cardinality.HLL.AddUint64", func() { h.AddUint64(42) })
	assertZeroAlloc(t, "cardinality.HLL.Add", func() { h.Add(key) })
	assertZeroAlloc(t, "cardinality.HLL.AddString", func() { h.AddString(skey) })

	acm := concurrent.NewAtomicCountMin(512, 4, 1)
	assertZeroAlloc(t, "concurrent.AtomicCountMin.AddUint64", func() { acm.AddUint64(42, 1) })
	assertZeroAlloc(t, "concurrent.AtomicCountMin.AddString", func() { acm.AddString(skey, 1) })
	assertZeroAlloc(t, "concurrent.AtomicCountMin.EstimateUint64", func() { _ = acm.EstimateUint64(42) })

	handle := concurrent.NewShardedHLL(4, 12, 1).Handle()
	assertZeroAlloc(t, "concurrent.HLLHandle.AddUint64", func() { handle.AddUint64(42) })

	assertZeroAlloc(t, "hashx.XXHash64String", func() { _ = hashx.XXHash64String(skey, 1) })
	assertZeroAlloc(t, "hashx.Murmur3_128String", func() { _, _ = hashx.Murmur3_128String(skey, 1) })
}
