package sketch_test

// Allocation-regression tests for the hash-once hot paths: every
// per-item update and query below must stay at exactly zero heap
// allocations, or the BENCH_1.json throughput numbers quietly rot.
// Keys are longer than 32 bytes where strings are involved, past the
// size where the compiler could hide a []byte(s) conversion in a stack
// temporary.

import (
	"strings"
	"testing"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/frequency"
	"repro/internal/hashx"
)

func assertZeroAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s: %v allocs per op, want 0", name, n)
	}
}

func TestZeroAllocHotPaths(t *testing.T) {
	key := []byte("https://example.com/api/v1/users/1000000")
	skey := strings.Repeat("zero-alloc-key/", 4) // 60 bytes

	f := bloom.NewWithEstimates(10_000, 0.01, 1)
	assertZeroAlloc(t, "bloom.Add", func() { f.Add(key) })
	assertZeroAlloc(t, "bloom.Contains", func() { _ = f.Contains(key) })
	assertZeroAlloc(t, "bloom.AddString", func() { f.AddString(skey) })
	assertZeroAlloc(t, "bloom.ContainsString", func() { _ = f.ContainsString(skey) })

	cf := bloom.NewCounting(1<<14, 5, 1)
	assertZeroAlloc(t, "bloom.CountingFilter.Add", func() { cf.Add(key) })
	assertZeroAlloc(t, "bloom.CountingFilter.Contains", func() { _ = cf.Contains(key) })

	cm := frequency.NewCountMin(512, 4, 1)
	assertZeroAlloc(t, "frequency.CountMin.AddUint64", func() { cm.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountMin.Add", func() { cm.Add(key, 1) })
	assertZeroAlloc(t, "frequency.CountMin.AddString", func() { cm.AddString(skey) })
	assertZeroAlloc(t, "frequency.CountMin.EstimateUint64", func() { _ = cm.EstimateUint64(42) })

	ccm := frequency.NewCountMin(512, 4, 1)
	ccm.SetConservative(true)
	assertZeroAlloc(t, "frequency.CountMin(conservative).AddUint64", func() { ccm.AddUint64(42, 1) })

	cs := frequency.NewCountSketch(512, 5, 1)
	assertZeroAlloc(t, "frequency.CountSketch.AddUint64", func() { cs.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountSketch.AddString", func() { cs.AddString(skey, 1) })

	h := cardinality.NewHLL(12, 1)
	assertZeroAlloc(t, "cardinality.HLL.AddUint64", func() { h.AddUint64(42) })
	assertZeroAlloc(t, "cardinality.HLL.Add", func() { h.Add(key) })
	assertZeroAlloc(t, "cardinality.HLL.AddString", func() { h.AddString(skey) })

	sf := frequency.NewSFSketch(512, 4, 4096, 4, 1)
	assertZeroAlloc(t, "frequency.SFSketch.AddUint64", func() { sf.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.SFSketch.Add", func() { sf.Add(key, 1) })
	assertZeroAlloc(t, "frequency.SFSketch.AddString", func() { sf.AddString(skey) })
	assertZeroAlloc(t, "frequency.SFSketch.EstimateUint64", func() { _ = sf.EstimateUint64(42) })
	assertZeroAlloc(t, "frequency.SFSketch.EstimateString", func() { _ = sf.EstimateString(skey) })

	acm := concurrent.NewAtomicCountMin(512, 4, 1)
	assertZeroAlloc(t, "concurrent.AtomicCountMin.AddUint64", func() { acm.AddUint64(42, 1) })
	assertZeroAlloc(t, "concurrent.AtomicCountMin.AddString", func() { acm.AddString(skey, 1) })
	assertZeroAlloc(t, "concurrent.AtomicCountMin.EstimateUint64", func() { _ = acm.EstimateUint64(42) })

	handle := concurrent.NewShardedHLL(4, 12, 1).Handle()
	assertZeroAlloc(t, "concurrent.HLLHandle.AddUint64", func() { handle.AddUint64(42) })

	assertZeroAlloc(t, "hashx.XXHash64String", func() { _ = hashx.XXHash64String(skey, 1) })
	assertZeroAlloc(t, "hashx.Murmur3_128String", func() { _, _ = hashx.Murmur3_128String(skey, 1) })
}

func TestZeroAllocBlockedAndFusedPaths(t *testing.T) {
	// The PR 5 cache-conscious layouts and two-phase batch loops must
	// hold the same zero-allocation line as the scalar paths they
	// accelerate: the pipelined loops buffer their chunks in fixed-size
	// stack arrays, never on the heap.
	key := []byte("https://example.com/api/v1/users/1000000")
	skey := strings.Repeat("zero-alloc-key/", 4) // 60 bytes

	bf := bloom.NewBlockedWithEstimates(10_000, 0.01, 1)
	assertZeroAlloc(t, "bloom.BlockedFilter.Add", func() { bf.Add(key) })
	assertZeroAlloc(t, "bloom.BlockedFilter.Contains", func() { _ = bf.Contains(key) })
	assertZeroAlloc(t, "bloom.BlockedFilter.AddString", func() { bf.AddString(skey) })
	assertZeroAlloc(t, "bloom.BlockedFilter.ContainsString", func() { _ = bf.ContainsString(skey) })

	batch := make([][]byte, 512)
	for i := range batch {
		batch[i] = key
	}
	h1s := make([]uint64, 512)
	h2s := make([]uint64, 512)
	for i := range h1s {
		h1s[i], h2s[i] = hashx.Murmur3_128(key, 1)
	}
	assertZeroAlloc(t, "bloom.BlockedFilter.AddBatch", func() { bf.AddBatch(batch) })
	assertZeroAlloc(t, "bloom.BlockedFilter.AddHashBatch", func() { bf.AddHashBatch(h1s, h2s) })

	f := bloom.NewWithEstimates(10_000, 0.01, 1)
	assertZeroAlloc(t, "bloom.Filter.AddBatch", func() { f.AddBatch(batch) })

	abf := concurrent.NewAtomicBlockedBloom(1<<17, 5, 1)
	assertZeroAlloc(t, "concurrent.AtomicBlockedBloom.Add", func() { abf.Add(key) })
	assertZeroAlloc(t, "concurrent.AtomicBlockedBloom.Contains", func() { _ = abf.Contains(key) })
	assertZeroAlloc(t, "concurrent.AtomicBlockedBloom.AddString", func() { abf.AddString(skey) })
	assertZeroAlloc(t, "concurrent.AtomicBlockedBloom.AddBatch", func() { abf.AddBatch(batch) })
	assertZeroAlloc(t, "concurrent.AtomicBlockedBloom.AddHashBatch", func() { abf.AddHashBatch(h1s, h2s) })

	hs := make([]uint64, 512)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 1)
	}

	fcm := frequency.NewCountMinFused(2048, 5, 1)
	assertZeroAlloc(t, "frequency.CountMin(fused).AddUint64", func() { fcm.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountMin(fused).EstimateUint64", func() { _ = fcm.EstimateUint64(42) })
	assertZeroAlloc(t, "frequency.CountMin(fused).AddHashBatch", func() { fcm.AddHashBatch(hs) })

	cm := frequency.NewCountMin(2048, 5, 1)
	assertZeroAlloc(t, "frequency.CountMin.AddHashBatch", func() { cm.AddHashBatch(hs) })
	assertZeroAlloc(t, "frequency.CountMin.AddBatch", func() { cm.AddBatch(batch) })

	fcs := frequency.NewCountSketchFused(2048, 5, 1)
	assertZeroAlloc(t, "frequency.CountSketch(fused).AddUint64", func() { fcs.AddUint64(42, 1) })
	assertZeroAlloc(t, "frequency.CountSketch(fused).EstimateUint64", func() { _ = fcs.EstimateUint64(42) })
	assertZeroAlloc(t, "frequency.CountSketch(fused).AddHashBatch", func() { fcs.AddHashBatch(hs) })

	cs := frequency.NewCountSketch(2048, 5, 1)
	assertZeroAlloc(t, "frequency.CountSketch.AddHashBatch", func() { cs.AddHashBatch(hs) })

	sf := frequency.NewSFSketch(512, 4, 4096, 4, 1)
	assertZeroAlloc(t, "frequency.SFSketch.AddHashBatch", func() { sf.AddHashBatch(hs) })
	assertZeroAlloc(t, "frequency.SFSketch.AddBatch", func() { sf.AddBatch(batch) })

	h := cardinality.NewHLL(12, 1)
	assertZeroAlloc(t, "cardinality.HLL.AddHashBatch", func() { h.AddHashBatch(hs) })
}

func TestZeroAllocBufferedWriterPaths(t *testing.T) {
	// The PR 6 local-buffer/global-propagation writer handles: the whole
	// point of writer-local ingest is an L1-resident append per update,
	// so any allocation on the hot path (including in the amortized
	// buffer handoff — recycled through channels, never reallocated)
	// defeats the design. The propagator goroutine runs concurrently
	// with the measurement and must stay alloc-free too, except for the
	// one-time publish timer warmed up below.
	key := []byte("https://example.com/api/v1/users/1000000")
	skey := strings.Repeat("zero-alloc-key/", 4) // 60 bytes

	bc := concurrent.NewBufferedCountMin(512, 4, 1)
	defer bc.Close()
	bw := bc.Writer()
	assertZeroAlloc(t, "concurrent.BufferedCountMinWriter.AddHash", func() { bw.AddHash(42, 1) })
	assertZeroAlloc(t, "concurrent.BufferedCountMinWriter.AddUint64", func() { bw.AddUint64(42, 1) })
	assertZeroAlloc(t, "concurrent.BufferedCountMinWriter.Add", func() { bw.Add(key, 1) })
	assertZeroAlloc(t, "concurrent.BufferedCountMinWriter.AddString", func() { bw.AddString(skey, 1) })
	assertZeroAlloc(t, "concurrent.BufferedCountMin.EstimateUint64", func() { _ = bc.EstimateUint64(42) })

	bh := concurrent.NewBufferedHLL(12, 1)
	defer bh.Close()
	hw := bh.Writer()
	for i := 0; i < 2000; i++ { // arm the one-time publish timer off the clock
		hw.AddUint64(uint64(i))
	}
	hw.Flush()
	bh.Sync()
	assertZeroAlloc(t, "concurrent.BufferedHLLWriter.AddHash", func() { hw.AddHash(42) })
	assertZeroAlloc(t, "concurrent.BufferedHLLWriter.AddString", func() { hw.AddString(skey) })
	assertZeroAlloc(t, "concurrent.BufferedHLL.Estimate", func() { _ = bh.Estimate() })

	bb := concurrent.NewBufferedBlockedBloom(1<<17, 5, 1)
	defer bb.Close()
	fw := bb.Writer()
	assertZeroAlloc(t, "concurrent.BufferedBlockedBloomWriter.AddHash", func() { fw.AddHash(42, 43) })
	assertZeroAlloc(t, "concurrent.BufferedBlockedBloomWriter.Add", func() { fw.Add(key) })
	assertZeroAlloc(t, "concurrent.BufferedBlockedBloomWriter.AddString", func() { fw.AddString(skey) })
	assertZeroAlloc(t, "concurrent.BufferedBlockedBloom.Contains", func() { _ = bb.Contains(key) })
}
