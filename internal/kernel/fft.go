// Package kernel implements TensorSketch (Pham & Pagh, KDD 2013 — the
// paper's citation for using sketches "to incorporate kernel
// transformations"): an explicit feature map for the polynomial kernel
// (⟨x,y⟩)^p computed as the Count-Sketch of the p-fold tensor product
// x^⊗p — without ever materializing the d^p-dimensional tensor. The
// trick is that the Count-Sketch of a tensor product is the circular
// convolution of the factors' Count-Sketches, computed in O(p·k·log k)
// via FFT.
package kernel

import "math"

// fft computes the in-place radix-2 Cooley–Tukey FFT of a (whose
// length must be a power of two). invert selects the inverse
// transform (scaled by 1/n).
func fft(re, im []float64, invert bool) {
	n := len(re)
	if n&(n-1) != 0 {
		panic("kernel: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if !invert {
			angle = -angle
		}
		wRe, wIm := math.Cos(angle), math.Sin(angle)
		for start := 0; start < n; start += length {
			curRe, curIm := 1.0, 0.0
			half := length / 2
			for i := 0; i < half; i++ {
				a, b := start+i, start+i+half
				uRe, uIm := re[a], im[a]
				vRe := re[b]*curRe - im[b]*curIm
				vIm := re[b]*curIm + im[b]*curRe
				re[a], im[a] = uRe+vRe, uIm+vIm
				re[b], im[b] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	if invert {
		inv := 1 / float64(n)
		for i := range re {
			re[i] *= inv
			im[i] *= inv
		}
	}
}

// circularConvolve returns the circular convolution of a and b (equal
// power-of-two lengths) via FFT.
func circularConvolve(a, b []float64) []float64 {
	n := len(a)
	aRe := append([]float64(nil), a...)
	aIm := make([]float64, n)
	bRe := append([]float64(nil), b...)
	bIm := make([]float64, n)
	fft(aRe, aIm, false)
	fft(bRe, bIm, false)
	for i := 0; i < n; i++ {
		re := aRe[i]*bRe[i] - aIm[i]*bIm[i]
		im := aRe[i]*bIm[i] + aIm[i]*bRe[i]
		aRe[i], aIm[i] = re, im
	}
	fft(aRe, aIm, true)
	return aRe
}
