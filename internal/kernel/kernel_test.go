package kernel

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

func TestFFTRoundTrip(t *testing.T) {
	rng := randx.New(1)
	for _, n := range []int{2, 8, 64, 1024} {
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.Normal()
			orig[i] = re[i]
		}
		fft(re, im, false)
		fft(re, im, true)
		for i := range re {
			if math.Abs(re[i]-orig[i]) > 1e-9 || math.Abs(im[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip diverged at %d", n, i)
			}
		}
	}
}

func TestFFTKnownTransform(t *testing.T) {
	// FFT of an impulse is flat.
	re := []float64{1, 0, 0, 0}
	im := make([]float64, 4)
	fft(re, im, false)
	for i := range re {
		if math.Abs(re[i]-1) > 1e-12 || math.Abs(im[i]) > 1e-12 {
			t.Fatalf("impulse transform wrong at %d: (%v,%v)", i, re[i], im[i])
		}
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fft(make([]float64, 6), make([]float64, 6), false)
}

func TestCircularConvolutionAgainstNaive(t *testing.T) {
	rng := randx.New(2)
	const n = 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Normal()
		b[i] = rng.Normal()
	}
	got := circularConvolve(a, b)
	for i := 0; i < n; i++ {
		var want float64
		for j := 0; j < n; j++ {
			want += a[j] * b[(i-j+n)%n]
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestTensorSketchDegree1IsCountSketch(t *testing.T) {
	// Degree 1 must behave as a plain Count-Sketch: inner products
	// approximate <x,y>.
	const d, k = 100, 256
	ts := NewTensorSketch(d, k, 1, 3)
	rng := randx.New(4)
	var meanRel float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, d)
		y := make([]float64, d)
		for i := range x {
			x[i] = rng.Normal()
			y[i] = x[i] + 0.3*rng.Normal() // correlated so <x,y> is far from 0
		}
		got := Dot(ts.Apply(x), ts.Apply(y))
		want := Dot(x, y)
		meanRel += core.RelErr(got, want)
	}
	if meanRel/trials > 0.2 {
		t.Errorf("degree-1 mean relerr %.3f", meanRel/trials)
	}
}

func TestTensorSketchPolynomialKernel(t *testing.T) {
	// E18's core claim: <TS(x),TS(y)> ~ (<x,y>)^p for p = 2 and 3.
	const d = 50
	rng := randx.New(5)
	for _, degree := range []int{2, 3} {
		var meanRel float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			ts := NewTensorSketch(d, 4096, degree, uint64(trial)+100)
			x := make([]float64, d)
			y := make([]float64, d)
			for i := range x {
				x[i] = rng.Normal() / math.Sqrt(d)
				y[i] = x[i] + 0.2*rng.Normal()/math.Sqrt(d)
			}
			got := Dot(ts.Apply(x), ts.Apply(y))
			want := PolyKernel(x, y, degree)
			meanRel += core.RelErr(got, want)
		}
		if meanRel/trials > 0.5 {
			t.Errorf("degree %d mean relerr %.3f", degree, meanRel/trials)
		}
	}
}

func TestTensorSketchErrorShrinksWithK(t *testing.T) {
	const d = 50
	meanErr := func(k int) float64 {
		rng := randx.New(7)
		var total float64
		const trials = 25
		for trial := 0; trial < trials; trial++ {
			ts := NewTensorSketch(d, k, 2, uint64(trial)+200)
			x := make([]float64, d)
			y := make([]float64, d)
			for i := range x {
				x[i] = rng.Normal() / math.Sqrt(d)
				y[i] = x[i]
			}
			got := Dot(ts.Apply(x), ts.Apply(y))
			total += core.RelErr(got, PolyKernel(x, y, 2))
		}
		return total / trials
	}
	if e64, e2048 := meanErr(64), meanErr(2048); e2048 >= e64 {
		t.Errorf("kernel error did not shrink with k: %.3f vs %.3f", e64, e2048)
	}
}

func TestTensorSketchNormPreservation(t *testing.T) {
	// ||TS(x)||^2 estimates ||x||^(2p).
	const d = 40
	ts := NewTensorSketch(d, 2048, 2, 9)
	x := make([]float64, d)
	rng := randx.New(10)
	for i := range x {
		x[i] = rng.Normal() / math.Sqrt(d)
	}
	feat := ts.Apply(x)
	want := math.Pow(Dot(x, x), 2)
	if core.RelErr(Dot(feat, feat), want) > 0.3 {
		t.Errorf("norm estimate %.4f, want %.4f", Dot(feat, feat), want)
	}
}

func TestTensorSketchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k not pow2": func() { NewTensorSketch(10, 100, 2, 1) },
		"bad degree": func() { NewTensorSketch(10, 64, 0, 1) },
		"bad input":  func() { NewTensorSketch(10, 64, 2, 1).Apply(make([]float64, 9)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	ts := NewTensorSketch(10, 64, 2, 1)
	if ts.InputDim() != 10 || ts.OutputDim() != 64 || ts.Degree() != 2 {
		t.Error("accessors wrong")
	}
}

func BenchmarkTensorSketchApply(b *testing.B) {
	ts := NewTensorSketch(512, 1024, 2, 1)
	x := make([]float64, 512)
	rng := randx.New(1)
	for i := range x {
		x[i] = rng.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Apply(x)
	}
}
