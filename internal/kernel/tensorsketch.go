package kernel

import (
	"fmt"
	"math"

	"repro/internal/hashx"
)

// TensorSketch maps x ∈ R^d to R^k such that ⟨TS(x), TS(y)⟩ is an
// unbiased estimate of (⟨x, y⟩)^degree. It keeps `degree` independent
// Count-Sketch hash pairs; applying it computes each factor's
// Count-Sketch and combines them by circular convolution (FFT).
// Variance decays as 1/k, so larger output dimensions sharpen the
// kernel estimate — experiment E18 sweeps this.
type TensorSketch struct {
	d, k, degree int
	bucket       []*hashx.KWise
	sign         []*hashx.KWise
}

// NewTensorSketch creates a TensorSketch for the polynomial kernel of
// the given degree over d-dimensional inputs, with output dimension k
// (a power of two, for the FFT).
func NewTensorSketch(d, k, degree int, seed uint64) *TensorSketch {
	if d < 1 || degree < 1 {
		panic("kernel: d and degree must be positive")
	}
	if k < 2 || k&(k-1) != 0 {
		panic("kernel: output dimension must be a power of two >= 2")
	}
	seeds := hashx.SeedSequence(seed, 2*degree)
	bucket := make([]*hashx.KWise, degree)
	sign := make([]*hashx.KWise, degree)
	for i := 0; i < degree; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	return &TensorSketch{d: d, k: k, degree: degree, bucket: bucket, sign: sign}
}

// countSketch computes the i-th factor Count-Sketch of x.
func (t *TensorSketch) countSketch(x []float64, factor int) []float64 {
	out := make([]float64, t.k)
	for j, v := range x {
		if v == 0 {
			continue
		}
		pos := t.bucket[factor].HashRange(uint64(j), t.k)
		out[pos] += float64(t.sign[factor].Sign(uint64(j))) * v
	}
	return out
}

// Apply returns the TensorSketch feature vector of x.
func (t *TensorSketch) Apply(x []float64) []float64 {
	if len(x) != t.d {
		panic(fmt.Sprintf("kernel: input dimension %d, want %d", len(x), t.d))
	}
	acc := t.countSketch(x, 0)
	for f := 1; f < t.degree; f++ {
		acc = circularConvolve(acc, t.countSketch(x, f))
	}
	return acc
}

// Dot returns the inner product of two feature vectors — the kernel
// estimate.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// PolyKernel returns the exact polynomial kernel (⟨x,y⟩)^degree for
// scoring.
func PolyKernel(x, y []float64, degree int) float64 {
	return math.Pow(Dot(x, y), float64(degree))
}

// InputDim returns d.
func (t *TensorSketch) InputDim() int { return t.d }

// OutputDim returns k.
func (t *TensorSketch) OutputDim() int { return t.k }

// Degree returns the kernel degree.
func (t *TensorSketch) Degree() int { return t.degree }
