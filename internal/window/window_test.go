package window

import (
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// exactWindow tracks true per-tick counts for scoring.
type exactWindow struct {
	window uint64
	events map[uint64]uint64
	now    uint64
}

func newExactWindow(w uint64) *exactWindow {
	return &exactWindow{window: w, events: map[uint64]uint64{}}
}

func (e *exactWindow) tick(ts uint64) { e.now = ts }
func (e *exactWindow) add(n uint64)   { e.events[e.now] += n }
func (e *exactWindow) count() (c uint64) {
	for ts, n := range e.events {
		if ts+e.window > e.now {
			c += n
		}
	}
	return c
}

func TestEHRelativeErrorBound(t *testing.T) {
	const window = 1000
	const k = 16
	h := NewEH(window, k)
	exact := newExactWindow(window)
	rng := randx.New(1)
	for ts := uint64(1); ts <= 20000; ts++ {
		h.Tick(ts)
		exact.tick(ts)
		if rng.BoolP(0.7) {
			n := uint64(rng.Intn(3) + 1)
			h.AddN(n)
			exact.add(n)
		}
		if ts%97 == 0 {
			want := float64(exact.count())
			got := h.Count()
			if want > 0 && core.RelErr(got, want) > 2.0/k {
				t.Fatalf("ts=%d: EH count %.0f vs true %.0f (relerr %.3f > %.3f)",
					ts, got, want, core.RelErr(got, want), 2.0/k)
			}
		}
	}
}

func TestEHBoundsContainTruth(t *testing.T) {
	const window = 500
	h := NewEH(window, 8)
	exact := newExactWindow(window)
	rng := randx.New(2)
	for ts := uint64(1); ts <= 5000; ts++ {
		h.Tick(ts)
		exact.tick(ts)
		if rng.BoolP(0.5) {
			h.Add()
			exact.add(1)
		}
		if ts%53 == 0 {
			lo, hi := h.Bounds()
			want := exact.count()
			if want < lo || want > hi {
				t.Fatalf("ts=%d: true %d outside bounds [%d,%d]", ts, want, lo, hi)
			}
		}
	}
}

func TestEHSpaceLogarithmic(t *testing.T) {
	const window = 100000
	const k = 8
	h := NewEH(window, k)
	for ts := uint64(1); ts <= 200000; ts++ {
		h.Tick(ts)
		h.Add()
	}
	if h.BucketCount() > theoreticalEHBuckets(k, window) {
		t.Errorf("EH holds %d buckets, bound %d", h.BucketCount(), theoreticalEHBuckets(k, window))
	}
}

func TestEHFullExpiry(t *testing.T) {
	h := NewEH(100, 4)
	h.Tick(1)
	h.AddN(50)
	h.Tick(500)
	if got := h.Count(); got != 0 {
		t.Errorf("count after full expiry = %v", got)
	}
	lo, hi := h.Bounds()
	if lo != 0 || hi != 0 {
		t.Errorf("bounds after expiry = [%d,%d]", lo, hi)
	}
}

func TestEHMonotonicClock(t *testing.T) {
	h := NewEH(10, 4)
	h.Tick(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards tick must panic")
		}
	}()
	h.Tick(3)
}

func TestEHPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"window": func() { NewEH(0, 4) },
		"k":      func() { NewEH(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if NewEH(10, 4).RelativeError() != 0.25 {
		t.Error("RelativeError wrong")
	}
}

func TestWindowedHLLTracksRecentDistinct(t *testing.T) {
	const window = 1000
	w := NewWindowedHLL(window, 10, 12, 3)
	// Phase 1: items 0..4999 during ticks 1..5000.
	for ts := uint64(1); ts <= 5000; ts++ {
		w.Tick(ts)
		w.AddUint64(ts - 1)
	}
	// Only the last ~window items should remain.
	est := w.Estimate()
	if core.RelErr(est, window) > 0.25 {
		t.Errorf("windowed estimate %.0f, want ~%d", est, window)
	}
	// Phase 2: silence; the window drains to zero.
	w.Tick(10000)
	if got := w.Estimate(); got != 0 {
		t.Errorf("estimate after silence = %.0f, want 0", got)
	}
	if w.Panes() != 0 {
		t.Errorf("panes not expired: %d", w.Panes())
	}
}

func TestWindowedHLLRepeatsWithinWindow(t *testing.T) {
	w := NewWindowedHLL(100, 4, 12, 4)
	for ts := uint64(1); ts <= 90; ts++ {
		w.Tick(ts)
		w.AddUint64(ts % 7) // only 7 distinct values
	}
	if est := w.Estimate(); core.RelErr(est, 7) > 0.2 {
		t.Errorf("estimate %.0f, want ~7", est)
	}
}

func TestWindowedHLLByteItems(t *testing.T) {
	w := NewWindowedHLL(10, 2, 10, 5)
	w.Tick(1)
	w.Add([]byte("a"))
	w.Add([]byte("b"))
	w.Add([]byte("a"))
	if est := w.Estimate(); est < 1.5 || est > 2.5 {
		t.Errorf("estimate %.1f, want ~2", est)
	}
	if w.SizeBytes() == 0 {
		t.Error("no sketch memory reported")
	}
}

func TestWindowedHLLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowedHLL(10, 20, 10, 1) // panes > window
}

func TestWindowedTopKTracksRecentHotItems(t *testing.T) {
	w := NewWindowedTopK(1000, 10, 64)
	// Phase 1: "old-hot" dominates ticks 1..2000.
	for ts := uint64(1); ts <= 2000; ts++ {
		w.Tick(ts)
		w.Add("old-hot", 1)
	}
	// Phase 2: "new-hot" dominates ticks 2001..4000; old-hot vanishes.
	for ts := uint64(2001); ts <= 4000; ts++ {
		w.Tick(ts)
		w.Add("new-hot", 1)
		if ts%10 == 0 {
			w.Add("background", 1)
		}
	}
	top := w.TopK(0.2)
	if len(top) == 0 || top[0].Item != "new-hot" {
		t.Fatalf("TopK = %v, want new-hot first", top)
	}
	for _, e := range top {
		if e.Item == "old-hot" {
			t.Error("expired item still reported as heavy")
		}
	}
	if w.Estimate("old-hot") != 0 {
		t.Errorf("old-hot windowed count %d, want 0", w.Estimate("old-hot"))
	}
	// Windowed total ≈ window worth of events (1 + 0.1 background per tick).
	if n := w.N(); n < 900 || n > 1400 {
		t.Errorf("windowed N = %d, want ~1100", n)
	}
}

func TestWindowedTopKEmptyAndPanics(t *testing.T) {
	w := NewWindowedTopK(100, 4, 8)
	if got := w.TopK(0.1); got != nil {
		t.Errorf("empty TopK = %v", got)
	}
	if w.Panes() != 0 {
		t.Error("panes on empty tracker")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindowedTopK(10, 4, 0)
}

func BenchmarkEHAdd(b *testing.B) {
	h := NewEH(100000, 16)
	for i := 0; i < b.N; i++ {
		h.Tick(uint64(i + 1))
		h.Add()
	}
}

func BenchmarkWindowedHLLAdd(b *testing.B) {
	w := NewWindowedHLL(100000, 10, 14, 1)
	for i := 0; i < b.N; i++ {
		w.Tick(uint64(i + 1))
		w.AddUint64(uint64(i))
	}
}
