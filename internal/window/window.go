// Package window implements sliding-window sketches in the
// Datar–Gionis–Indyk–Motwani exponential-histogram style. The paper's
// "Massive Data Streams" era (§3) monitored live network traffic where
// only the recent past matters; exponential histograms answer "how
// many events in the last W ticks" (and weighted sums) with relative
// error ε in O((1/ε)·log² W) bits, expiring old data exactly as the
// window slides.
//
// The package also provides WindowedHLL, a coarse sliding-window
// distinct counter built from rotating HLL panes — the construction
// practitioners actually deploy for "distinct users in the last hour".
package window

import (
	"fmt"
	"math"

	"repro/internal/cardinality"
)

// EH is an exponential histogram counting events (optionally weighted
// by integer amounts) over the last W ticks. Buckets hold exponentially
// growing counts; at most k/2+1 buckets of each size are kept, giving
// relative error 1/k on the window count.
type EH struct {
	window  uint64
	k       int // inverse accuracy: at most k/2+1 buckets per size
	buckets []ehBucket
	now     uint64
	total   uint64 // sum of bucket counts (maintained incrementally)
}

type ehBucket struct {
	ts    uint64 // timestamp of the most recent event in the bucket
	count uint64 // always a power of two times the unit... kept exact
}

// NewEH creates an exponential histogram over a window of W ticks with
// relative error about 1/k (k >= 2).
func NewEH(window uint64, k int) *EH {
	if window < 1 {
		panic("window: EH window must be >= 1")
	}
	if k < 2 {
		panic("window: EH k must be >= 2")
	}
	return &EH{window: window, k: k}
}

// Tick advances the clock to timestamp ts (monotonically) and expires
// buckets that fell out of the window.
func (h *EH) Tick(ts uint64) {
	if ts < h.now {
		panic("window: time went backwards")
	}
	h.now = ts
	h.expire()
}

func (h *EH) expire() {
	// Buckets are ordered oldest first; drop while fully expired.
	for len(h.buckets) > 0 && h.buckets[0].ts+h.window <= h.now {
		h.total -= h.buckets[0].count
		h.buckets = h.buckets[1:]
	}
}

// Add records one event at the current timestamp.
func (h *EH) Add() { h.AddN(1) }

// AddN records n simultaneous events at the current timestamp.
func (h *EH) AddN(n uint64) {
	for i := uint64(0); i < n; i++ {
		h.buckets = append(h.buckets, ehBucket{ts: h.now, count: 1})
		h.total++
		h.merge()
	}
}

// merge enforces the at-most-(k/2+1)-buckets-per-size invariant by
// merging the two oldest buckets of any overfull size.
func (h *EH) merge() {
	limit := h.k/2 + 1
	for {
		// Count buckets per size from the newest end; find the oldest
		// overfull size class.
		counts := map[uint64][]int{}
		for i := range h.buckets {
			c := h.buckets[i].count
			counts[c] = append(counts[c], i)
		}
		mergedAny := false
		// Merge smallest size class first (standard EH cascade).
		for size := uint64(1); size <= h.total; size *= 2 {
			idxs := counts[size]
			if len(idxs) > limit {
				// Merge the two *oldest* buckets of this size.
				i, j := idxs[0], idxs[1]
				h.buckets[j].count *= 2 // j is newer; keeps its ts
				h.buckets = append(h.buckets[:i], h.buckets[i+1:]...)
				mergedAny = true
				break
			}
		}
		if !mergedAny {
			return
		}
	}
}

// Count estimates the number of events in the window: all complete
// buckets plus half of the oldest (straddling) bucket.
func (h *EH) Count() float64 {
	h.expire()
	if len(h.buckets) == 0 {
		return 0
	}
	est := float64(h.total)
	// The oldest bucket may straddle the window boundary: by the EH
	// analysis, counting half of it bounds the relative error by 1/k.
	est -= float64(h.buckets[0].count) / 2
	if est < 0 {
		est = 0
	}
	return est
}

// Exact upper and lower bounds on the true window count.
func (h *EH) Bounds() (lo, hi uint64) {
	h.expire()
	if len(h.buckets) == 0 {
		return 0, 0
	}
	return h.total - h.buckets[0].count + 1, h.total
}

// BucketCount returns the number of stored buckets — O(k·log W).
func (h *EH) BucketCount() int { return len(h.buckets) }

// Now returns the current timestamp.
func (h *EH) Now() uint64 { return h.now }

// RelativeError returns the guarantee 1/k.
func (h *EH) RelativeError() float64 { return 1 / float64(h.k) }

// WindowedHLL tracks distinct items over a sliding window using p
// rotating panes of HLL sketches: each pane covers window/panes ticks;
// a query merges the live panes. Expiry granularity is one pane — the
// coarse but robust construction used in production dashboards.
type WindowedHLL struct {
	window    uint64
	paneWidth uint64
	precision uint8
	seed      uint64
	panes     []hllPane
	now       uint64
}

type hllPane struct {
	start uint64
	hll   *cardinality.HLL
}

// NewWindowedHLL creates a sliding-window distinct counter with the
// given window length, number of panes (granularity), and HLL
// precision.
func NewWindowedHLL(window uint64, panes int, precision uint8, seed uint64) *WindowedHLL {
	if window < 1 || panes < 1 || uint64(panes) > window {
		panic("window: need 1 <= panes <= window")
	}
	return &WindowedHLL{
		window:    window,
		paneWidth: (window + uint64(panes) - 1) / uint64(panes),
		precision: precision,
		seed:      seed,
	}
}

// Tick advances the clock.
func (w *WindowedHLL) Tick(ts uint64) {
	if ts < w.now {
		panic("window: time went backwards")
	}
	w.now = ts
	w.expire()
}

func (w *WindowedHLL) expire() {
	keep := w.panes[:0]
	for _, p := range w.panes {
		if p.start+w.paneWidth+w.window > w.now {
			keep = append(keep, p)
		}
	}
	w.panes = keep
}

// Add records an item at the current timestamp.
func (w *WindowedHLL) Add(item []byte) {
	pane := w.currentPane()
	pane.hll.Add(item)
}

// AddUint64 records an integer item at the current timestamp.
func (w *WindowedHLL) AddUint64(v uint64) {
	w.currentPane().hll.AddUint64(v)
}

func (w *WindowedHLL) currentPane() *hllPane {
	start := w.now - w.now%w.paneWidth
	for i := range w.panes {
		if w.panes[i].start == start {
			return &w.panes[i]
		}
	}
	w.panes = append(w.panes, hllPane{start: start, hll: cardinality.NewHLL(w.precision, w.seed)})
	return &w.panes[len(w.panes)-1]
}

// Estimate returns the distinct count over (approximately) the last
// window ticks: the union of all live panes. The window edge is
// quantized to pane boundaries.
func (w *WindowedHLL) Estimate() float64 {
	w.expire()
	merged := cardinality.NewHLL(w.precision, w.seed)
	for _, p := range w.panes {
		if err := merged.Merge(p.hll); err != nil {
			panic(fmt.Sprintf("window: pane merge: %v", err)) // same shape by construction
		}
	}
	return merged.Estimate()
}

// Panes returns the number of live panes.
func (w *WindowedHLL) Panes() int { return len(w.panes) }

// SizeBytes returns the live sketch memory.
func (w *WindowedHLL) SizeBytes() int {
	total := 0
	for _, p := range w.panes {
		total += p.hll.SizeBytes()
	}
	return total
}

// theoreticalEHBuckets returns the EH space bound O(k log W) for
// documentation and tests.
func theoreticalEHBuckets(k int, window uint64) int {
	return (k/2 + 1) * (int(math.Log2(float64(window))) + 2)
}
