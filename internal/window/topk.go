package window

import (
	"repro/internal/frequency"
)

// WindowedTopK tracks heavy hitters over a sliding window using
// rotating SpaceSaving panes: each pane summarizes window/panes ticks;
// queries merge the live panes (SpaceSaving merges per Mergeable
// Summaries). Expiry granularity is one pane — the "top items in the
// last hour" dashboard primitive of the paper's monitoring era.
type WindowedTopK struct {
	window    uint64
	paneWidth uint64
	k         int
	panes     []ssPane
	now       uint64
}

type ssPane struct {
	start uint64
	ss    *frequency.SpaceSaving
}

// NewWindowedTopK creates a sliding-window heavy-hitter tracker with k
// counters per pane.
func NewWindowedTopK(window uint64, panes, k int) *WindowedTopK {
	if window < 1 || panes < 1 || uint64(panes) > window {
		panic("window: need 1 <= panes <= window")
	}
	if k < 1 {
		panic("window: k must be >= 1")
	}
	return &WindowedTopK{
		window:    window,
		paneWidth: (window + uint64(panes) - 1) / uint64(panes),
		k:         k,
	}
}

// Tick advances the clock.
func (w *WindowedTopK) Tick(ts uint64) {
	if ts < w.now {
		panic("window: time went backwards")
	}
	w.now = ts
	w.expire()
}

func (w *WindowedTopK) expire() {
	keep := w.panes[:0]
	for _, p := range w.panes {
		if p.start+w.paneWidth+w.window > w.now {
			keep = append(keep, p)
		}
	}
	w.panes = keep
}

// Add records weight occurrences of item at the current timestamp.
func (w *WindowedTopK) Add(item string, weight uint64) {
	start := w.now - w.now%w.paneWidth
	for i := range w.panes {
		if w.panes[i].start == start {
			w.panes[i].ss.Add(item, weight)
			return
		}
	}
	p := ssPane{start: start, ss: frequency.NewSpaceSaving(w.k)}
	p.ss.Add(item, weight)
	w.panes = append(w.panes, p)
}

// TopK returns the items whose windowed count reaches threshold times
// the windowed total, by merging the live panes.
func (w *WindowedTopK) TopK(threshold float64) []frequency.Entry {
	w.expire()
	if len(w.panes) == 0 {
		return nil
	}
	merged := frequency.NewSpaceSaving(w.k)
	for _, p := range w.panes {
		if err := merged.Merge(p.ss); err != nil {
			panic(err) // same k by construction
		}
	}
	return merged.HeavyHitters(threshold)
}

// Estimate returns the windowed count upper bound for one item.
func (w *WindowedTopK) Estimate(item string) uint64 {
	w.expire()
	var total uint64
	for _, p := range w.panes {
		total += p.ss.Estimate(item)
	}
	return total
}

// N returns the total windowed weight (sum over live panes).
func (w *WindowedTopK) N() uint64 {
	w.expire()
	var total uint64
	for _, p := range w.panes {
		total += p.ss.N()
	}
	return total
}

// Panes returns the number of live panes.
func (w *WindowedTopK) Panes() int { return len(w.panes) }
