package adtech

import (
	"testing"

	"repro/internal/core"
)

// exactReach tracks ground truth with explicit sets.
type exactReach struct {
	total map[int]map[uint64]bool
	cells map[string]map[uint64]bool
}

func newExact() *exactReach {
	return &exactReach{total: map[int]map[uint64]bool{}, cells: map[string]map[uint64]bool{}}
}

func (e *exactReach) record(imp Impression) {
	if e.total[imp.CampaignID] == nil {
		e.total[imp.CampaignID] = map[uint64]bool{}
	}
	e.total[imp.CampaignID][imp.UserID] = true
	for _, kv := range [][2]string{{"region", imp.Region}, {"device", imp.Device}, {"age", imp.AgeBracket}} {
		k := cellKey(imp.CampaignID, kv[0], kv[1])
		if e.cells[k] == nil {
			e.cells[k] = map[uint64]bool{}
		}
		e.cells[k][imp.UserID] = true
	}
}

func TestGeneratorDemographicsStable(t *testing.T) {
	g := NewGenerator(100, 10000, 1)
	seen := map[uint64][3]string{}
	for i := 0; i < 50000; i++ {
		imp := g.Next()
		key := [3]string{imp.Region, imp.Device, imp.AgeBracket}
		if prev, ok := seen[imp.UserID]; ok && prev != key {
			t.Fatal("same user reported different demographics")
		}
		seen[imp.UserID] = key
	}
}

func TestReachAccuracy(t *testing.T) {
	g := NewGenerator(50, 200000, 2)
	r := NewReporter(14, 3)
	exact := newExact()
	const n = 300000
	for i := 0; i < n; i++ {
		imp := g.Next()
		r.Record(imp)
		exact.record(imp)
	}
	for _, campaign := range r.Campaigns() {
		want := float64(len(exact.total[campaign]))
		if want < 1000 {
			continue // skip tiny campaigns where discretization dominates
		}
		if err := core.RelErr(r.Reach(campaign), want); err > 0.03 {
			t.Errorf("campaign %d reach est %.0f vs true %.0f (err %.3f)",
				campaign, r.Reach(campaign), want, err)
		}
	}
}

func TestSliceReachAccuracy(t *testing.T) {
	g := NewGenerator(10, 100000, 4)
	r := NewReporter(14, 5)
	exact := newExact()
	for i := 0; i < 200000; i++ {
		imp := g.Next()
		r.Record(imp)
		exact.record(imp)
	}
	campaign := 1 // most popular under Zipf
	for _, region := range Regions {
		want := float64(len(exact.cells[cellKey(campaign, "region", region)]))
		got := r.SliceReach(campaign, "region", region)
		if want > 500 {
			if err := core.RelErr(got, want); err > 0.05 {
				t.Errorf("region %s: est %.0f vs true %.0f", region, got, want)
			}
		}
	}
}

func TestRollupMatchesTotalExactly(t *testing.T) {
	// The E14 headline: merging the per-region cells reproduces the
	// campaign total exactly — no double counting of users who appear
	// in multiple slices (impossible here since region is a function of
	// user, but the merge must equal the total sketch regardless).
	g := NewGenerator(20, 50000, 6)
	r := NewReporter(12, 7)
	for i := 0; i < 100000; i++ {
		r.Record(g.Next())
	}
	for _, campaign := range r.Campaigns() {
		total := r.Reach(campaign)
		for _, dim := range []string{"region", "device", "age"} {
			rollup, err := r.RollupReach(campaign, dim)
			if err != nil {
				t.Fatal(err)
			}
			if rollup != total {
				t.Errorf("campaign %d dim %s: rollup %.1f != total %.1f",
					campaign, dim, rollup, total)
			}
		}
	}
	if _, err := r.RollupReach(1, "nope"); err == nil {
		t.Error("unknown dimension accepted")
	}
}

func TestCombinedReachDedups(t *testing.T) {
	// Users overlap across campaigns; the combined reach must be less
	// than the sum of individual reaches but at least the max.
	g := NewGenerator(5, 20000, 8)
	r := NewReporter(13, 9)
	exactUsers := map[uint64]bool{}
	for i := 0; i < 150000; i++ {
		imp := g.Next()
		r.Record(imp)
		exactUsers[imp.UserID] = true
	}
	campaigns := r.Campaigns()
	combined, err := r.CombinedReach(campaigns...)
	if err != nil {
		t.Fatal(err)
	}
	var sum, max float64
	for _, c := range campaigns {
		reach := r.Reach(c)
		sum += reach
		if reach > max {
			max = reach
		}
	}
	if combined >= sum {
		t.Errorf("combined %.0f not below naive sum %.0f — dedup failed", combined, sum)
	}
	if combined < max {
		t.Errorf("combined %.0f below max single campaign %.0f", combined, max)
	}
	if err := core.RelErr(combined, float64(len(exactUsers))); err > 0.05 {
		t.Errorf("combined reach est %.0f vs true %d", combined, len(exactUsers))
	}
}

func TestOverlapReach(t *testing.T) {
	g := NewGenerator(4, 30000, 12)
	r := NewReporter(13, 13)
	users := map[int]map[uint64]bool{}
	for i := 0; i < 200000; i++ {
		imp := g.Next()
		r.Record(imp)
		if users[imp.CampaignID] == nil {
			users[imp.CampaignID] = map[uint64]bool{}
		}
		users[imp.CampaignID][imp.UserID] = true
	}
	cs := r.Campaigns()
	c1, c2 := cs[0], cs[1]
	var want float64
	for u := range users[c1] {
		if users[c2][u] {
			want++
		}
	}
	got, err := r.OverlapReach(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	// Inclusion-exclusion amplifies HLL error; allow generous slack
	// relative to the union size.
	union, _ := r.CombinedReach(c1, c2)
	if diff := got - want; diff > 0.05*union || diff < -0.05*union {
		t.Errorf("overlap estimate %.0f vs true %.0f (union %.0f)", got, want, union)
	}
}

func TestReporterSpaceSublinear(t *testing.T) {
	g := NewGenerator(10, 500000, 10)
	r := NewReporter(12, 11)
	users := map[uint64]bool{}
	for i := 0; i < 400000; i++ {
		imp := g.Next()
		r.Record(imp)
		users[imp.UserID] = true
	}
	// Exact per-campaign sets would need >= 8 bytes per (campaign,user)
	// pair; the sketches are fixed size.
	exactBytes := len(users) * 8
	if r.SizeBytes() > exactBytes {
		t.Errorf("sketch reporter uses %d bytes >= exact %d", r.SizeBytes(), exactBytes)
	}
	if r.SketchCount() == 0 {
		t.Error("no sketches maintained")
	}
}

func TestUnknownCampaign(t *testing.T) {
	r := NewReporter(10, 1)
	if r.Reach(42) != 0 || r.SliceReach(42, "region", "eu") != 0 {
		t.Error("unknown campaign should report zero reach")
	}
}

func BenchmarkRecord(b *testing.B) {
	g := NewGenerator(100, 1000000, 1)
	r := NewReporter(14, 2)
	imps := make([]Impression, 10000)
	for i := range imps {
		imps[i] = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(imps[i%len(imps)])
	}
}
