package adtech

// Error-vs-exact validation of the inclusion-exclusion overlap
// estimator: two synthetic audiences with a known intersection, pushed
// through serialized envelopes exactly as sketchd serves them, must
// estimate the overlap within the error the component estimators
// imply — and the guard rails (mixed families, non-cardinality
// envelopes) must reject loudly.

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/registry"
)

// buildAudiences fills two sketches over overlapping ID ranges:
// A = [0, nA), B = [nA-shared, nA-shared+nB) — |A ∩ B| = shared.
func buildAudiences(add func(which int, id string), nA, nB, shared int) {
	for i := 0; i < nA; i++ {
		add(0, fmt.Sprintf("user-%07d", i))
	}
	for i := nA - shared; i < nA-shared+nB; i++ {
		add(1, fmt.Sprintf("user-%07d", i))
	}
}

func mustEnv(t *testing.T, inst any) []byte {
	t.Helper()
	env, err := registry.Marshal(inst)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return env
}

func TestOverlapErrorVsExactKMV(t *testing.T) {
	const nA, nB, shared = 50_000, 30_000, 10_000
	const k = 4096
	a, b := cardinality.NewKMV(k, 7), cardinality.NewKMV(k, 7)
	buildAudiences(func(which int, id string) {
		if which == 0 {
			a.AddString(id)
		} else {
			b.AddString(id)
		}
	}, nA, nB, shared)

	est, err := OverlapFromEnvelopes(mustEnv(t, a), mustEnv(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if est.Family != "kmv" {
		t.Errorf("family = %q, want kmv", est.Family)
	}
	// Inclusion-exclusion compounds three estimates, each with std err
	// ~1/sqrt(k-2); allow 5 combined standard deviations relative to
	// the union size (the largest of the three operands).
	union := float64(nA + nB - shared)
	tol := 5 * math.Sqrt(3) / math.Sqrt(k-2) * union
	if math.Abs(est.Overlap-shared) > tol {
		t.Errorf("overlap = %.0f, want %d ± %.0f (A=%.0f B=%.0f U=%.0f)",
			est.Overlap, shared, tol, est.ReachA, est.ReachB, est.Union)
	}
	if est.ReachA <= 0 || est.ReachB <= 0 || est.Union < math.Max(est.ReachA, est.ReachB) {
		t.Errorf("inconsistent components: %+v", est)
	}
}

func TestOverlapErrorVsExactHLL(t *testing.T) {
	const nA, nB, shared = 40_000, 40_000, 20_000
	a, b := cardinality.NewHLL(14, 0), cardinality.NewHLL(14, 0)
	buildAudiences(func(which int, id string) {
		if which == 0 {
			a.AddString(id)
		} else {
			b.AddString(id)
		}
	}, nA, nB, shared)

	est, err := OverlapFromEnvelopes(mustEnv(t, a), mustEnv(t, b))
	if err != nil {
		t.Fatal(err)
	}
	union := float64(nA + nB - shared)
	tol := 5 * math.Sqrt(3) * a.StandardError() * union
	if math.Abs(est.Overlap-shared) > tol {
		t.Errorf("overlap = %.0f, want %d ± %.0f", est.Overlap, shared, tol)
	}
}

func TestOverlapClampsToBounds(t *testing.T) {
	// Disjoint sets: the true overlap is 0, and estimator noise must
	// never drive the reported overlap negative.
	a, b := cardinality.NewKMV(1024, 1), cardinality.NewKMV(1024, 1)
	for i := 0; i < 20_000; i++ {
		a.AddString(fmt.Sprintf("left-%d", i))
		b.AddString(fmt.Sprintf("right-%d", i))
	}
	est, err := OverlapFromEnvelopes(mustEnv(t, a), mustEnv(t, b))
	if err != nil {
		t.Fatal(err)
	}
	if est.Overlap < 0 {
		t.Errorf("overlap = %v, want >= 0", est.Overlap)
	}
	if lim := math.Min(est.ReachA, est.ReachB); est.Overlap > lim {
		t.Errorf("overlap %v exceeds min reach %v", est.Overlap, lim)
	}
}

func TestOverlapRejectsMixedFamilies(t *testing.T) {
	h := cardinality.NewHLL(12, 0)
	k := cardinality.NewKMV(256, 0)
	h.AddString("x")
	k.AddString("x")
	_, err := OverlapFromEnvelopes(mustEnv(t, h), mustEnv(t, k))
	if !errors.Is(err, core.ErrIncompatible) {
		t.Errorf("mixed hll/kmv overlap error = %v, want ErrIncompatible", err)
	}
}

func TestOverlapRejectsNonCardinality(t *testing.T) {
	// A frequency sketch decodes fine but has no scalar estimate —
	// overlap must refuse rather than fabricate a number.
	cm := frequency.NewCountMin(128, 4, 0)
	cm.Update([]byte("x"))
	_, err := OverlapFromEnvelopes(mustEnv(t, cm), mustEnv(t, cm))
	if err == nil {
		t.Fatal("overlap across countmin envelopes succeeded, want error")
	}
	if !errors.Is(err, ErrNotCardinality) && !errors.Is(err, core.ErrIncompatible) {
		t.Errorf("countmin overlap error = %v, want ErrNotCardinality", err)
	}
}
