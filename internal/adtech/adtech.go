// Package adtech reproduces the paper's online-advertising application
// (§3): "how many individuals were their adverts reaching?" answered
// with distinct-count sketches over cookie ids, with the ability to
// "slice and dice these statistics … across multiple dimensions (e.g.,
// demographic attributes)". The package provides a synthetic impression
// log (the substitution for proprietary ad-server data, DESIGN.md §3)
// and a reach reporter that maintains one HLL per (campaign, dimension,
// value) cell; because HLL merge is lossless union, any roll-up along a
// dimension is computed from the cells without double counting — the
// property experiment E14 verifies against exact set arithmetic.
package adtech

import (
	"fmt"
	"sort"

	"repro/internal/cardinality"
	"repro/internal/hashx"
	"repro/internal/mergex"
	"repro/internal/randx"
)

// Impression is one ad-serving event.
type Impression struct {
	CampaignID int
	UserID     uint64 // cookie
	Region     string
	Device     string
	AgeBracket string
}

// Regions, Devices and AgeBrackets enumerate the demographic dimensions
// of the synthetic log.
var (
	Regions     = []string{"na", "eu", "apac", "latam"}
	Devices     = []string{"mobile", "desktop", "tablet"}
	AgeBrackets = []string{"18-24", "25-34", "35-49", "50+"}
)

// Generator produces a synthetic impression log: Zipf-popular
// campaigns, Zipf-active users (heavy users see many ads — the
// double-counting hazard reach measurement exists to solve), and
// per-user demographics assigned deterministically by hash so the same
// cookie always reports the same attributes.
type Generator struct {
	rng       *randx.RNG
	campaigns *randx.Zipf
	users     *randx.Zipf
	seed      uint64
}

// NewGenerator creates a generator over the given numbers of campaigns
// and users.
func NewGenerator(nCampaigns, nUsers int, seed uint64) *Generator {
	rng := randx.New(seed)
	return &Generator{
		rng:       rng,
		campaigns: randx.NewZipf(rng, 1.1, nCampaigns),
		users:     randx.NewZipf(rng, 1.05, nUsers),
		seed:      seed,
	}
}

// Next returns the next impression.
func (g *Generator) Next() Impression {
	user := g.users.Next()
	return Impression{
		CampaignID: int(g.campaigns.Next()),
		UserID:     user,
		Region:     Regions[hashx.HashUint64(user, g.seed^1)%uint64(len(Regions))],
		Device:     Devices[hashx.HashUint64(user, g.seed^2)%uint64(len(Devices))],
		AgeBracket: AgeBrackets[hashx.HashUint64(user, g.seed^3)%uint64(len(AgeBrackets))],
	}
}

// Reporter maintains reach sketches per campaign and per
// (campaign, dimension, value) cell.
type Reporter struct {
	precision uint8
	seed      uint64
	total     map[int]*cardinality.HLL
	cells     map[string]*cardinality.HLL // key: campaign|dim|value
}

// NewReporter creates a reporter with HLL precision p (p=14 gives
// ~0.8% reach error at 12 KiB per cell).
func NewReporter(p uint8, seed uint64) *Reporter {
	return &Reporter{
		precision: p,
		seed:      seed,
		total:     make(map[int]*cardinality.HLL),
		cells:     make(map[string]*cardinality.HLL),
	}
}

func cellKey(campaign int, dim, value string) string {
	return fmt.Sprintf("%d|%s|%s", campaign, dim, value)
}

func (r *Reporter) cell(campaign int, dim, value string) *cardinality.HLL {
	k := cellKey(campaign, dim, value)
	h, ok := r.cells[k]
	if !ok {
		h = cardinality.NewHLL(r.precision, r.seed)
		r.cells[k] = h
	}
	return h
}

// Record folds one impression into the total and per-dimension cells.
func (r *Reporter) Record(imp Impression) {
	t, ok := r.total[imp.CampaignID]
	if !ok {
		t = cardinality.NewHLL(r.precision, r.seed)
		r.total[imp.CampaignID] = t
	}
	t.AddUint64(imp.UserID)
	r.cell(imp.CampaignID, "region", imp.Region).AddUint64(imp.UserID)
	r.cell(imp.CampaignID, "device", imp.Device).AddUint64(imp.UserID)
	r.cell(imp.CampaignID, "age", imp.AgeBracket).AddUint64(imp.UserID)
}

// Reach returns the estimated distinct users exposed to a campaign.
func (r *Reporter) Reach(campaign int) float64 {
	if t, ok := r.total[campaign]; ok {
		return t.Estimate()
	}
	return 0
}

// SliceReach returns the estimated distinct users exposed to a campaign
// within one dimension value (e.g. region="eu").
func (r *Reporter) SliceReach(campaign int, dim, value string) float64 {
	if h, ok := r.cells[cellKey(campaign, dim, value)]; ok {
		return h.Estimate()
	}
	return 0
}

// RollupReach re-derives total campaign reach by merging all cells of
// one dimension — the "slice and dice" union that plain counters cannot
// do without double counting. The result matches Reach exactly because
// HLL merge is lossless.
func (r *Reporter) RollupReach(campaign int, dim string) (float64, error) {
	var values []string
	switch dim {
	case "region":
		values = Regions
	case "device":
		values = Devices
	case "age":
		values = AgeBrackets
	default:
		return 0, fmt.Errorf("adtech: unknown dimension %q", dim)
	}
	sketches := make([]*cardinality.HLL, 0, len(values))
	for _, v := range values {
		if h, ok := r.cells[cellKey(campaign, dim, v)]; ok {
			sketches = append(sketches, h)
		}
	}
	return r.unionReach(sketches)
}

// CombinedReach estimates the distinct users reached by *any* of the
// given campaigns (the cross-campaign dedup advertisers ask for).
func (r *Reporter) CombinedReach(campaigns ...int) (float64, error) {
	sketches := make([]*cardinality.HLL, 0, len(campaigns))
	for _, c := range campaigns {
		if t, ok := r.total[c]; ok {
			sketches = append(sketches, t)
		}
	}
	return r.unionReach(sketches)
}

// unionReach estimates the union cardinality of the given sketches by
// a parallel tree merge over clones (mergex.Tree mutates its inputs;
// the reporter's cells must survive the roll-up). Lossless HLL merge
// is associative, so the tree grouping returns exactly the serial
// fold's registers.
func (r *Reporter) unionReach(sketches []*cardinality.HLL) (float64, error) {
	if len(sketches) == 0 {
		return 0, nil
	}
	clones := make([]*cardinality.HLL, len(sketches))
	for i, h := range sketches {
		clones[i] = h.Clone()
	}
	merged, err := mergex.Tree(clones, (*cardinality.HLL).Merge)
	if err != nil {
		return 0, err
	}
	return merged.Estimate(), nil
}

// OverlapReach estimates |users(c1) ∩ users(c2)| by inclusion–
// exclusion over the lossless HLL merges: |A| + |B| − |A ∪ B|. The
// error is a few HLL standard errors of the union size, which is why
// set-heavy deployments prefer theta sketches (see
// cardinality.Theta.Intersect) — exposed here because overlap is the
// second question every advertiser asks after reach.
func (r *Reporter) OverlapReach(c1, c2 int) (float64, error) {
	union, err := r.CombinedReach(c1, c2)
	if err != nil {
		return 0, err
	}
	overlap := r.Reach(c1) + r.Reach(c2) - union
	if overlap < 0 {
		overlap = 0
	}
	return overlap, nil
}

// Campaigns returns all campaign ids seen, sorted.
func (r *Reporter) Campaigns() []int {
	out := make([]int, 0, len(r.total))
	for c := range r.total {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// SketchCount returns the number of HLLs maintained.
func (r *Reporter) SketchCount() int { return len(r.total) + len(r.cells) }

// SizeBytes returns the total sketch memory — the figure E14 compares
// against the exact per-campaign user sets.
func (r *Reporter) SizeBytes() int {
	total := 0
	for _, h := range r.total {
		total += h.SizeBytes()
	}
	for _, h := range r.cells {
		total += h.SizeBytes()
	}
	return total
}
