package adtech

import (
	"errors"
	"fmt"
	"net/url"

	"repro/internal/core"
	"repro/internal/registry"
)

// Audience overlap across serialized reach sketches ("Sketching
// Intersection Profiles", Chierichetti et al.): given two campaign
// sketches' envelopes, estimate |A ∩ B| by inclusion-exclusion —
// |A| + |B| − |A ∪ B| — where the union estimate comes from merging
// decoded copies. Works for any mergeable cardinality family (HLL,
// KMV, theta, HLL++, …) because everything rides the registry's
// generic decode/query/merge bindings; sketchd serves it as
// GET /v1/t/{tenant}/overlap?sketches=a,b.

// ErrNotCardinality rejects envelopes whose family has no scalar
// "estimate" query (only cardinality sketches support overlap).
var ErrNotCardinality = errors.New("adtech: overlap needs mergeable cardinality sketches")

// OverlapEstimate is the inclusion-exclusion result.
type OverlapEstimate struct {
	Family  string  `json:"family"`
	ReachA  float64 `json:"reach_a"`
	ReachB  float64 `json:"reach_b"`
	Union   float64 `json:"union"`
	Overlap float64 `json:"overlap"`
}

// OverlapFromEnvelopes estimates the audience overlap between two
// serialized sketches. Both must decode to the same mergeable
// cardinality family; core.ErrIncompatible reports cross-family or
// cross-shape pairs. The overlap is clamped to [0, min(|A|, |B|)] —
// inclusion-exclusion can otherwise go slightly negative (or exceed a
// set) from independent estimator noise.
func OverlapFromEnvelopes(envA, envB []byte) (OverlapEstimate, error) {
	instA, dA, err := registry.Decode(envA)
	if err != nil {
		return OverlapEstimate{}, fmt.Errorf("adtech: sketch a: %w", err)
	}
	instB, dB, err := registry.Decode(envB)
	if err != nil {
		return OverlapEstimate{}, fmt.Errorf("adtech: sketch b: %w", err)
	}
	if dA != dB {
		return OverlapEstimate{}, fmt.Errorf("adtech: overlap across %s and %s: %w",
			dA.Name, dB.Name, core.ErrIncompatible)
	}
	if dA.Bind.Merge == nil || dA.Bind.Query == nil {
		return OverlapEstimate{}, fmt.Errorf("%w (family %s)", ErrNotCardinality, dA.Name)
	}
	out := OverlapEstimate{Family: dA.Name}
	if out.ReachA, err = estimateOf(dA, instA); err != nil {
		return OverlapEstimate{}, err
	}
	if out.ReachB, err = estimateOf(dA, instB); err != nil {
		return OverlapEstimate{}, err
	}
	// instA and instB are private decoded copies, so merging B into A
	// in place costs nothing observable.
	if err := dA.Bind.Merge(instA, instB); err != nil {
		return OverlapEstimate{}, fmt.Errorf("adtech: union merge: %w", err)
	}
	if out.Union, err = estimateOf(dA, instA); err != nil {
		return OverlapEstimate{}, err
	}
	out.Overlap = out.ReachA + out.ReachB - out.Union
	if lim := min(out.ReachA, out.ReachB); out.Overlap > lim {
		out.Overlap = lim
	}
	if out.Overlap < 0 {
		out.Overlap = 0
	}
	return out, nil
}

// estimateOf reads the family's scalar cardinality estimate from its
// parameterless summary query.
func estimateOf(d *registry.Descriptor, inst any) (float64, error) {
	res, err := d.Bind.Query(inst, url.Values{})
	if err != nil {
		return 0, fmt.Errorf("adtech: estimate: %w", err)
	}
	switch v := res["estimate"].(type) {
	case float64:
		return v, nil
	case uint64:
		return float64(v), nil
	case int64:
		return float64(v), nil
	case int:
		return float64(v), nil
	case uint32:
		return float64(v), nil
	}
	return 0, fmt.Errorf("%w (family %s has no estimate)", ErrNotCardinality, d.Name)
}
