// Package cluster makes sketchd horizontal: a consistent-hash ring
// routes sketch keys across N sketchd shards, a coordinator fans
// ingest out over pooled per-shard clients and answers queries by
// scatter-gathering per-shard envelopes and tree-merging them through
// internal/mergex, and a replica ships sealed DUR1 WAL segments from a
// shard to a follower with snapshot-based catch-up.
//
// The design leans entirely on properties the lower layers already
// guarantee. Sketches are mergeable, so a key can live on any shard
// and the global view is the merge of the per-shard views — routing
// only needs to be balanced and stable, never "correct". Envelopes are
// self-describing (the GSK1 registry), so the coordinator has zero
// per-family code: it moves opaque envelopes and lets registry.Decode
// and the descriptor merge bindings do the rest. And the WAL is a
// deterministic replay log, so replication is file shipping plus the
// same recovery machinery a restart uses.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/hashx"
)

// DefaultVirtualNodes is the per-shard virtual node count. 128 points
// per shard keeps the max/mean key imbalance under ~1.15 for small
// clusters (measured in the ring tests) while the whole ring for 16
// shards still fits in 32 KiB — one L1 load per routed key.
const DefaultVirtualNodes = 128

// ringSeed salts the placement and routing hash so ring positions are
// unrelated to any sketch-content hashing of the same keys.
const ringSeed = 0xC1_05_7E_12

// Ring is a consistent-hash ring over named shards. Each shard owns
// VirtualNodes points on a 64-bit circle; a key routes to the shard
// owning the first point clockwise of the key's hash. Adding or
// removing one shard moves only ~1/N of the keys — the property that
// lets a cluster grow without re-ingesting history (old keys keep
// merging correctly wherever they land; see the package comment).
//
// Immutable after New: rebuilding on membership change is cheap and
// keeps lookups lock-free.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash  uint64
	shard int32
}

// NewRing builds a ring over shard identities (base URLs, typically)
// with vnodes virtual nodes per shard (<= 0 takes
// DefaultVirtualNodes). Shard order does not affect placement — points
// hash the shard identity, not its index — so two coordinators given
// the same membership in different orders route identically.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("cluster: empty shard identity")
		}
		if seen[s] {
			return nil, fmt.Errorf("cluster: duplicate shard %q", s)
		}
		seen[s] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, shard := range r.shards {
		for v := 0; v < vnodes; v++ {
			h := hashx.XXHash64String(shard+"#"+strconv.Itoa(v), ringSeed)
			r.points = append(r.points, ringPoint{hash: h, shard: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// N returns the shard count.
func (r *Ring) N() int { return len(r.shards) }

// Shards returns the shard identities in construction order (the
// index space Shard returns into).
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Shard routes a key to its owning shard index.
func (r *Ring) Shard(key []byte) int {
	return r.locate(hashx.XXHash64(key, ringSeed))
}

// ShardString routes a string key without copying it.
func (r *Ring) ShardString(key string) int {
	return r.locate(hashx.XXHash64String(key, ringSeed))
}

// SeedFor derives the routing seed for a tenant namespace. The default
// namespace ("" or "default") keeps the plain ringSeed, so every
// pre-tenant placement — and the bit-identity pins built on it — is
// unchanged. Other tenants get a tenant-derived seed, decorrelating
// their key→shard map from every other tenant's: one tenant's hot key
// set cannot gang up on the same shard another tenant's does. Callers
// compute the seed once per batch and route keys with ShardSeeded —
// the per-key path stays hash + binary search, zero allocations.
func SeedFor(tenant string) uint64 {
	if tenant == "" || tenant == "default" {
		return ringSeed
	}
	return hashx.XXHash64String(tenant, ringSeed)
}

// ShardSeeded routes a key under a tenant seed from SeedFor.
// ShardSeeded(key, SeedFor("")) == Shard(key).
func (r *Ring) ShardSeeded(key []byte, seed uint64) int {
	return r.locate(hashx.XXHash64(key, seed))
}

// locate finds the first ring point at or clockwise of h by binary
// search, wrapping past the last point to the first.
func (r *Ring) locate(h uint64) int {
	pts := r.points
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0
	}
	return int(pts[lo].shard)
}
