package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/client"
)

// durableLeader starts a durable sketchd over dir.
func durableLeader(t *testing.T, dir string) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New()
	if _, err := s.EnableDurability(dir, durable.Options{
		FsyncInterval:    0, // fsync per drained batch: deterministic tests
		SnapshotInterval: -1,
		WALMaxBytes:      64 << 20,
	}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.CloseDurability() })
	return s, ts
}

// follower pairs an in-memory server with a replica following leader.
func follower(t *testing.T, leaderURL, mirror string) (*server.Server, *Replica) {
	t.Helper()
	fs := server.New()
	rep := NewReplica(leaderURL, fs, ReplicaOptions{MirrorDir: mirror})
	return fs, rep
}

func estimateOf(t *testing.T, s *server.Server, name string) float64 {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	est, err := client.New(ts.URL).Estimate(name, nil)
	if err != nil {
		t.Fatalf("estimate %s: %v", name, err)
	}
	return est
}

// Core replication loop: seal → ship sealed segments → replay. The
// follower converges to the leader's exact state and the shipped
// segment files are byte-identical to the leader's.
func TestReplicaShipsSegmentsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	mirror := t.TempDir()
	_, lts := durableLeader(t, dir)
	lcl := client.New(lts.URL)

	if err := lcl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	for i := 0; i < 5_000; i++ {
		fmt.Fprintf(&batch, "user-%d\n", i)
	}
	if err := lcl.AddBatch("users", batch.Bytes()); err != nil {
		t.Fatal(err)
	}

	fsrv, rep := follower(t, lts.URL, mirror)
	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	lEst, err := lcl.Estimate("users", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fEst := estimateOf(t, fsrv, "users"); fEst != lEst {
		t.Errorf("follower estimate %.2f != leader %.2f after sync", fEst, lEst)
	}

	// Every mirrored WAL segment is the leader's file, byte for byte.
	names, err := filepath.Glob(filepath.Join(mirror, "wal-*.log"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no mirrored segments (err %v)", err)
	}
	for _, name := range names {
		shipped, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := os.ReadFile(filepath.Join(dir, filepath.Base(name)))
		if err != nil {
			t.Fatalf("leader lost %s: %v", filepath.Base(name), err)
		}
		if !bytes.Equal(shipped, orig) {
			t.Errorf("segment %s differs between leader and mirror", filepath.Base(name))
		}
	}
}

// Replication lag is the LSN gap, reported on both ends of the link:
// zero right after a sync, exactly the number of unshipped mutation
// records after new writes, zero again after the next sync.
func TestReplicationLagBounded(t *testing.T) {
	dir := t.TempDir()
	_, lts := durableLeader(t, dir)
	lcl := client.New(lts.URL)

	if err := lcl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	fsrv, rep := follower(t, lts.URL, "")
	if err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}

	st, err := lcl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication.Role != "leader" || st.Replication.LagRecords != 0 {
		t.Errorf("leader after sync: role %q lag %d, want leader/0", st.Replication.Role, st.Replication.LagRecords)
	}

	// 5 more batches = 5 more WAL records the follower has not seen.
	for i := 0; i < 5; i++ {
		if err := lcl.AddBatch("users", []byte("x\ny\n")); err != nil {
			t.Fatal(err)
		}
	}
	// Report the stale applied LSN to the leader without advancing.
	if _, err := client.New(lts.URL).ReplStatus(rep.Applied()); err != nil {
		t.Fatal(err)
	}
	st, err = lcl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replication.LagRecords != 5 {
		t.Errorf("leader lag %d records, want exactly 5", st.Replication.LagRecords)
	}

	if err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	fst, err := client.New(fts.URL).Status()
	if err != nil {
		t.Fatal(err)
	}
	if fst.Replication.Role != "follower" || fst.Replication.LagRecords != 0 {
		t.Errorf("follower after sync: role %q lag %d, want follower/0", fst.Replication.Role, fst.Replication.LagRecords)
	}
	if fst.Replication.AppliedLSN != st.Durability.WALLSN {
		t.Errorf("follower applied %d != leader wal_lsn %d", fst.Replication.AppliedLSN, st.Durability.WALLSN)
	}
}

// A follower arriving after the leader has snapshotted (here: a leader
// restart, whose clean shutdown writes one) catches up from the
// snapshot, then replays only the WAL tail past it.
func TestReplicaSnapshotCatchUp(t *testing.T) {
	dir := t.TempDir()
	mirror := t.TempDir()

	s1 := server.New()
	if _, err := s1.EnableDurability(dir, durable.Options{FsyncInterval: 0, SnapshotInterval: -1, WALMaxBytes: 64 << 20}); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	cl1 := client.New(ts1.URL)
	if err := cl1.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := cl1.AddBatch("users", []byte("a\nb\nc\nd\ne\n")); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := s1.CloseDurability(); err != nil { // writes the snapshot
		t.Fatal(err)
	}

	_, lts := durableLeader(t, dir)
	lcl := client.New(lts.URL)
	if err := lcl.AddBatch("users", []byte("f\ng\nh\n")); err != nil { // WAL tail past the snapshot
		t.Fatal(err)
	}

	fsrv, rep := follower(t, lts.URL, mirror)
	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if rep.reseeds != 1 {
		t.Errorf("reseeds %d, want 1 (snapshot catch-up)", rep.reseeds)
	}
	lEst, err := lcl.Estimate("users", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fEst := estimateOf(t, fsrv, "users"); fEst != lEst {
		t.Errorf("follower %.2f != leader %.2f after snapshot catch-up", fEst, lEst)
	}
	if snaps, _ := filepath.Glob(filepath.Join(mirror, "snap-*.snap")); len(snaps) == 0 {
		t.Error("snapshot was not mirrored")
	}

	// Later rounds are incremental: no re-seed, tail records apply.
	if err := lcl.AddBatch("users", []byte("i\nj\n")); err != nil {
		t.Fatal(err)
	}
	if err := rep.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if rep.reseeds != 1 {
		t.Errorf("reseeds %d after incremental round, want still 1", rep.reseeds)
	}
	lEst, _ = lcl.Estimate("users", nil)
	if fEst := estimateOf(t, fsrv, "users"); fEst != lEst {
		t.Errorf("follower %.2f != leader %.2f after incremental sync", fEst, lEst)
	}
}

// A leader that crashed mid-append leaves a torn final record in its
// last segment. Recovery (leader) and shipping (follower) must both
// stop at the same valid prefix, and post-restart writes must keep the
// follower consistent.
func TestReplicaTornFinalSegment(t *testing.T) {
	dir := t.TempDir()

	// Handcraft a crashed leader: header + create + 3 ingests, then a
	// 4th ingest record cut off mid-payload.
	req, _ := json.Marshal(server.CreateRequest{Type: "hll", P: 12, Seed: 3})
	log := durable.WALHeader()
	log = durable.AppendRecord(log, durable.Record{LSN: 1, Op: durable.OpCreate, Name: "users", Body: req})
	for i, batch := range []string{"a\nb\n", "c\nd\n", "e\nf\n"} {
		log = durable.AppendRecord(log, durable.Record{LSN: uint64(2 + i), Op: durable.OpIngest, Name: "users", Body: []byte(batch)})
	}
	whole := len(log)
	log = durable.AppendRecord(log, durable.Record{LSN: 5, Op: durable.OpIngest, Name: "users", Body: []byte("TORN\nTORN\n")})
	log = log[:whole+(len(log)-whole)/2] // crash mid-record
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000000.log"), log, 0o644); err != nil {
		t.Fatal(err)
	}

	_, lts := durableLeader(t, dir) // recovers the valid prefix, opens a new segment
	lcl := client.New(lts.URL)
	if err := lcl.AddBatch("users", []byte("g\nh\n")); err != nil { // reuses LSN 5
		t.Fatal(err)
	}

	fsrv, rep := follower(t, lts.URL, "")
	if err := rep.SyncOnce(); err != nil {
		t.Fatalf("sync over torn segment: %v", err)
	}
	lEst, err := lcl.Estimate("users", nil)
	if err != nil {
		t.Fatal(err)
	}
	fEst := estimateOf(t, fsrv, "users")
	if fEst != lEst {
		t.Errorf("follower %.2f != leader %.2f across torn segment", fEst, lEst)
	}
	// The torn batch must not have leaked into the follower.
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()
	env, err := client.New(fts.URL).Snapshot("users")
	if err != nil {
		t.Fatal(err)
	}
	lenv, err := lcl.Snapshot("users")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env, lenv) {
		t.Error("follower snapshot differs from leader's after torn-segment replay")
	}
	if strings.Contains(string(env), "TORN") {
		t.Error("torn record contents visible in follower state")
	}
	if rep.Applied() == 0 {
		t.Error("replica applied nothing")
	}
}

// Killing and restarting the whole follower re-seeds cleanly from the
// leader's snapshot path on first contact — the cold-start story.
func TestReplicaFreshFollowerJoinsLate(t *testing.T) {
	dir := t.TempDir()
	_, lts := durableLeader(t, dir)
	lcl := client.New(lts.URL)
	if err := lcl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lcl.AddBatch("users", []byte("a\nb\nc\n")); err != nil {
			t.Fatal(err)
		}
	}
	// First follower syncs, then "dies"; a second one joins from zero.
	_, rep1 := follower(t, lts.URL, "")
	if err := rep1.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	fsrv2, rep2 := follower(t, lts.URL, "")
	if err := rep2.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	lEst, _ := lcl.Estimate("users", nil)
	if fEst := estimateOf(t, fsrv2, "users"); fEst != lEst {
		t.Errorf("late follower %.2f != leader %.2f", fEst, lEst)
	}
	if rep2.Applied() != rep1.Applied() {
		t.Errorf("followers disagree on applied LSN: %d vs %d", rep2.Applied(), rep1.Applied())
	}
}
