package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/server/client"
)

// The coordinator serves the same /v1/sketch surface as a single
// sketchd, so every existing client (sketchcli, the loadgen, curl
// scripts) points at a cluster unchanged:
//
//	POST   /v1/sketch/{name}           create, broadcast to all shards
//	POST   /v1/sketch/{name}/add       ingest, ring-routed fan-out
//	GET    /v1/sketch/{name}/query     scatter-gather + tree-merge
//	GET    /v1/sketch/{name}/snapshot  merged global envelope
//	DELETE /v1/sketch/{name}           broadcast
//	GET    /v1/cluster/status          ring + per-shard health
//	GET    /v1/status                  the coordinator's own counters
//
// Every sketch route also exists under /v1/t/{tenant}/... (or with the
// X-Sketch-Tenant header), forwarding to the same tenant namespace on
// the shards; non-default tenants route keys under a tenant-derived
// ring seed (SeedFor), so tenants spread independently. Group-by
// ingest is deliberately NOT forwarded: its one-WAL-record atomicity
// is a per-shard property, so it is served shard-local — point the
// group-by producer at a shard, or at a single sketchd.
//
// Reads take ?allow_partial=true to accept a degraded answer when a
// shard is down; the response then carries "partial": true plus the
// failed shard names, and every error or partial payload for a
// tenant-scoped call carries the tenant label. Without it, a shard
// failure is a 503 naming the shard — a silently incomplete merge is
// the one outcome the cluster must never produce.

const maxBodyBytes = 8 << 20 // match sketchd's ingest cap

func (c *Coordinator) buildMux() {
	mux := http.NewServeMux()
	for _, p := range []string{"/v1", "/v1/t/{tenant}"} {
		mux.HandleFunc("POST "+p+"/sketch/{name}", c.handleCreate)
		mux.HandleFunc("POST "+p+"/sketch/{name}/add", c.handleAdd)
		mux.HandleFunc("GET "+p+"/sketch/{name}/query", c.handleQuery)
		mux.HandleFunc("GET "+p+"/sketch/{name}/snapshot", c.handleSnapshot)
		mux.HandleFunc("DELETE "+p+"/sketch/{name}", c.handleDelete)
	}
	mux.HandleFunc("GET /v1/cluster/status", c.handleClusterStatus)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	c.mux = mux
}

// tenantOf extracts the request's tenant: the /v1/t/{tenant} route
// value, else the X-Sketch-Tenant header. The default tenant
// normalizes to "" so it forwards over the legacy shard paths and
// routes with the unseeded ring — bit-identical to pre-tenant
// clusters.
func tenantOf(r *http.Request) string {
	t := r.PathValue("tenant")
	if t == "" {
		t = r.Header.Get(server.TenantHeader)
	}
	if t == server.DefaultTenant {
		return ""
	}
	return t
}

// ServeHTTP makes the coordinator an http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

// shardFailure writes the error a failed fan-out produces: the failed
// shards are named in both the error text and a structured field, and
// tenant-scoped calls carry the tenant label so a multi-tenant
// operator can attribute the degradation. Normally a 503 — but when
// every failure is a shard's 429 (query-budget or tenant-QPS
// throttle), the coordinator is not degraded, the workload is over
// budget: pass the 429 through with the largest shard Retry-After so
// the client backs off instead of failing over.
func shardFailure(w http.ResponseWriter, tenant, op string, fails []ShardError) {
	names := make([]string, len(fails))
	allThrottled := len(fails) > 0
	var retryAfter int64
	for i, f := range fails {
		names[i] = f.Shard
		if f.Code != http.StatusTooManyRequests {
			allThrottled = false
		}
		if f.RetryAfterS > retryAfter {
			retryAfter = f.RetryAfterS
		}
	}
	doc := map[string]any{
		"error":         fmt.Sprintf("%s failed on shard(s) %v", op, names),
		"failed_shards": fails,
	}
	if tenant != "" {
		doc["tenant"] = tenant
	}
	if allThrottled {
		if retryAfter < 1 {
			retryAfter = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retryAfter, 10))
		writeJSON(w, http.StatusTooManyRequests, doc)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, doc)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return nil, false
	}
	return body, true
}

func allowPartial(r *http.Request) bool {
	return r.URL.Query().Get("allow_partial") == "true"
}

// handleCreate broadcasts the create to every shard — a cluster sketch
// exists everywhere or nowhere. On partial failure the successful
// shards are rolled back (best effort) so a retry does not hit
// already-exists conflicts.
func (c *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	name := r.PathValue("name")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callShard(i, func(cl *client.Client) error {
				return cl.Tenant(tenant).CreateRaw(name, body)
			})
		}(i)
	}
	wg.Wait()
	var fails []ShardError
	for i, err := range errs {
		if err != nil {
			fails = append(fails, shardError(c.shards[i], err))
		}
	}
	if len(fails) > 0 {
		for i, err := range errs {
			if err == nil {
				i := i
				go c.callShard(i, func(cl *client.Client) error { return cl.Tenant(tenant).Delete(name) })
			}
		}
		// A 4xx from every shard (bad params, duplicate name, quota) is
		// the request's fault, not availability — pass the first one
		// through.
		if len(fails) == len(c.shards) {
			if se := firstStatusError(errs); se != nil && se.Code < 500 {
				httpError(w, se.Code, "%s", se.Msg)
				return
			}
		}
		shardFailure(w, tenant, "create", fails)
		return
	}
	resp := map[string]any{"name": name, "shards": len(c.shards)}
	if tenant != "" {
		resp["tenant"] = tenant
	}
	writeJSON(w, http.StatusCreated, resp)
}

// firstStatusError returns the first HTTP-status error in errs, nil if
// every failure was transport-level.
func firstStatusError(errs []error) *client.StatusError {
	for _, err := range errs {
		var se *client.StatusError
		if errors.As(err, &se) {
			return se
		}
	}
	return nil
}

// handleAdd ring-routes the batch and fans the per-shard sub-batches
// out in parallel. Any shard still failing after retries fails the
// whole request with the shard named — acknowledging ingest that
// partially happened would silently skew every later estimate.
func (c *Coordinator) handleAdd(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	name := r.PathValue("name")
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	c.ops.AddBatches.Inc()
	items, fails := c.FanOutAddTenant(tenant, name, body)
	if len(fails) > 0 {
		shardFailure(w, tenant, "add", fails)
		return
	}
	c.ops.Adds.Add(uint64(items))
	writeJSON(w, http.StatusOK, map[string]any{"added": items})
}

// wireMode resolves a read's envelope form: an explicit ?wire=full or
// ?wire=slim wins, otherwise the coordinator's SlimGather default
// applies. The error return is a client mistake (400).
func (c *Coordinator) wireMode(r *http.Request) (slim bool, err error) {
	switch wire := r.URL.Query().Get("wire"); wire {
	case "":
		return c.opts.SlimGather, nil
	case "full":
		return false, nil
	case "slim":
		return true, nil
	default:
		return false, fmt.Errorf("bad wire mode %q (want full or slim)", wire)
	}
}

// gatherMerged runs the scatter-gather + tree-merge for a read over
// pooled envelope buffers. It writes the error response itself when
// the read cannot be answered under the request's partial-failure
// policy.
func (c *Coordinator) gatherMerged(w http.ResponseWriter, r *http.Request, tenant, name string) (merged any, d *registry.Descriptor, fails []ShardError, ok bool) {
	c.ops.Queries.Inc()
	slim, err := c.wireMode(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, nil, nil, false
	}
	envs, fails, release := c.gatherPooled(tenant, name, slim)
	defer release()
	if len(fails) > 0 && !allowPartial(r) {
		shardFailure(w, tenant, "scatter-gather", fails)
		return nil, nil, fails, false
	}
	if len(envs) == 0 {
		shardFailure(w, tenant, "scatter-gather", fails)
		return nil, nil, fails, false
	}
	if len(fails) > 0 {
		c.ops.PartialQueries.Inc()
	}
	merged, d, err = MergeEnvelopes(envs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "merge shards: %v", err)
		return nil, nil, fails, false
	}
	return merged, d, fails, true
}

// handleQuery answers the global query: every shard's envelope,
// tree-merged, queried once through the family's own binding.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	merged, d, fails, ok := c.gatherMerged(w, r, tenant, r.PathValue("name"))
	if !ok {
		return
	}
	res, err := d.Bind.Query(merged, r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	res["shards_merged"] = c.ring.N() - len(fails)
	if tenant != "" {
		res["tenant"] = tenant
	}
	if len(fails) > 0 {
		res["partial"] = true
		res["failed_shards"] = fails
	}
	writeJSON(w, http.StatusOK, res)
}

// handleSnapshot serves the merged global envelope — byte-compatible
// with a single sketchd snapshot, so it feeds Merge, sketchcli
// inspect, or another cluster.
func (c *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	merged, _, fails, ok := c.gatherMerged(w, r, tenantOf(r), r.PathValue("name"))
	if !ok {
		return
	}
	env, err := registry.Marshal(merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "marshal: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if len(fails) > 0 {
		w.Header().Set("X-Cluster-Partial", "true")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(env)
}

func (c *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	name := r.PathValue("name")
	fails := c.broadcast(func(cl *client.Client) error { return cl.Tenant(tenant).Delete(name) })
	if len(fails) > 0 {
		shardFailure(w, tenant, "delete", fails)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// ShardStatus is one shard's row in the cluster status.
type ShardStatus struct {
	Shard  string                 `json:"shard"`
	OK     bool                   `json:"ok"`
	Error  string                 `json:"error,omitempty"`
	Status *server.StatusResponse `json:"status,omitempty"`
}

// ClusterStatus is GET /v1/cluster/status: ring shape, per-shard
// health, and the coordinator's own counters.
type ClusterStatus struct {
	Shards       []ShardStatus         `json:"shards"`
	VirtualNodes int                   `json:"virtual_nodes"`
	Healthy      int                   `json:"healthy"`
	Coordinator  CoordCountersSnapshot `json:"coordinator"`
	UptimeS      float64               `json:"uptime_s"`
}

// Status polls every shard and assembles the cluster view.
func (c *Coordinator) Status() ClusterStatus {
	rows := make([]ShardStatus, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i].Shard = c.shards[i]
			st, err := c.clients[i].Status()
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].OK = true
			rows[i].Status = &st
		}(i)
	}
	wg.Wait()
	healthy := 0
	for _, row := range rows {
		if row.OK {
			healthy++
		}
	}
	vn := len(c.ring.points) / len(c.shards)
	return ClusterStatus{
		Shards:       rows,
		VirtualNodes: vn,
		Healthy:      healthy,
		Coordinator:  c.ops.snapshot(),
		UptimeS:      time.Since(c.start).Seconds(),
	}
}

func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"role":     "coordinator",
		"shards":   c.shards,
		"uptime_s": time.Since(c.start).Seconds(),
		"ops":      c.ops.snapshot(),
	})
}
