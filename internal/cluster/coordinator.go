package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mergex"
	typereg "repro/internal/registry"
	"repro/internal/server/client"
)

// Options configures a Coordinator. Zero values take the documented
// defaults.
type Options struct {
	// VirtualNodes per shard on the routing ring. Default
	// DefaultVirtualNodes.
	VirtualNodes int
	// MaxInflight bounds concurrent shard requests across all fan-outs
	// (ingest and scatter-gather combined). Excess work queues on the
	// semaphore rather than piling goroutines onto a slow shard.
	// Default 4 × shard count.
	MaxInflight int
	// Retries is how many times a failed shard ingest request is
	// retried (transport errors and 5xx only — a 4xx is the request's
	// fault and repeats identically). Default 2.
	Retries int
	// RetryBackoff is the first retry's delay, doubled per attempt.
	// Default 50ms.
	RetryBackoff time.Duration
	// HTTPClient overrides the pooled default for all shard calls.
	HTTPClient *http.Client
	// SlimGather makes scatter-gather reads request each shard's slim
	// envelope (?wire=slim) by default: families with a slim form (the
	// SF-sketch) ship a fraction of the bytes, everything else answers
	// full, unchanged. A per-request ?wire=full|slim on the coordinator
	// overrides it either way. Off by default — full envelopes keep
	// merged reads bit-identical to a single server for every family.
	SlimGather bool
}

func (o *Options) applyDefaults(shards int) {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * shards
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
}

// CoordCounters are the coordinator's own operation counters,
// surfaced on its /v1/status.
type CoordCounters struct {
	Adds           core.Counter // items routed and acknowledged by shards
	AddBatches     core.Counter // client ingest requests
	ShardRequests  core.Counter // shard HTTP calls issued (incl. retries)
	Retries        core.Counter // shard calls retried
	Queries        core.Counter // scatter-gather queries answered
	PartialQueries core.Counter // queries answered with a shard missing
	ShardFailures  core.Counter // shard calls that failed after retries
	GatherBytes    core.Counter // envelope bytes read from shards by gathers
	SlimGathers    core.Counter // gathers that requested slim envelopes
}

// CoordCountersSnapshot is the JSON rendering of CoordCounters.
type CoordCountersSnapshot struct {
	Adds           uint64 `json:"adds"`
	AddBatches     uint64 `json:"add_batches"`
	ShardRequests  uint64 `json:"shard_requests"`
	Retries        uint64 `json:"retries"`
	Queries        uint64 `json:"queries"`
	PartialQueries uint64 `json:"partial_queries"`
	ShardFailures  uint64 `json:"shard_failures"`
	GatherBytes    uint64 `json:"gather_bytes"`
	SlimGathers    uint64 `json:"slim_gathers"`
}

func (c *CoordCounters) snapshot() CoordCountersSnapshot {
	return CoordCountersSnapshot{
		Adds:           c.Adds.Load(),
		AddBatches:     c.AddBatches.Load(),
		ShardRequests:  c.ShardRequests.Load(),
		Retries:        c.Retries.Load(),
		Queries:        c.Queries.Load(),
		PartialQueries: c.PartialQueries.Load(),
		ShardFailures:  c.ShardFailures.Load(),
		GatherBytes:    c.GatherBytes.Load(),
		SlimGathers:    c.SlimGathers.Load(),
	}
}

// Coordinator fronts a set of sketchd shards: creates broadcast,
// ingest routes each item to its ring shard and fans the per-shard
// sub-batches out in parallel, and reads scatter-gather every shard's
// envelope and tree-merge them into the global answer. It holds no
// sketch state of its own — shards own the data, the coordinator owns
// the routing and the merge.
type Coordinator struct {
	ring    *Ring
	shards  []string
	clients []*client.Client
	opts    Options
	ops     CoordCounters
	start   time.Time
	sem     chan struct{}
	mux     *http.ServeMux

	routePool  sync.Pool // *[][]byte per-shard ingest buckets
	gatherPool sync.Pool // *[][]byte per-shard envelope read buffers
}

// NewCoordinator builds a coordinator over shard base URLs.
func NewCoordinator(shards []string, opts Options) (*Coordinator, error) {
	norm := make([]string, len(shards))
	for i, s := range shards {
		s = strings.TrimRight(s, "/")
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		norm[i] = s
	}
	ring, err := NewRing(norm, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	opts.applyDefaults(len(shards))
	c := &Coordinator{
		ring:    ring,
		shards:  ring.Shards(),
		clients: make([]*client.Client, len(shards)),
		opts:    opts,
		start:   time.Now(),
		sem:     make(chan struct{}, opts.MaxInflight),
	}
	for i, s := range c.shards {
		if opts.HTTPClient != nil {
			c.clients[i] = client.NewWithHTTPClient(s, opts.HTTPClient)
		} else {
			c.clients[i] = client.New(s)
		}
	}
	c.routePool.New = func() any {
		buckets := make([][]byte, len(c.shards))
		for i := range buckets {
			buckets[i] = make([]byte, 0, 16<<10)
		}
		return &buckets
	}
	c.gatherPool.New = func() any {
		bufs := make([][]byte, len(c.shards))
		return &bufs // per-shard capacities grow to envelope size on first use
	}
	c.buildMux()
	return c, nil
}

// Ring returns the routing ring (read-only use).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Shards returns the shard base URLs.
func (c *Coordinator) Shards() []string { return append([]string(nil), c.shards...) }

// acquire takes an in-flight slot; the returned func releases it.
func (c *Coordinator) acquire() func() {
	c.sem <- struct{}{}
	return func() { <-c.sem }
}

// ShardError is one failed shard call in a fan-out, with the shard
// named — partial failures must never be anonymous. When the failure
// was an HTTP status from the shard, Code carries it (0 for transport
// errors), and RetryAfterS carries the shard's Retry-After hint in
// seconds — how the coordinator distinguishes "shard down" (503) from
// "shard refusing adaptive queries" (429, see the query-budget guard
// in internal/server) and passes the throttle through to the client.
type ShardError struct {
	Shard       string `json:"shard"`
	Err         string `json:"error"`
	Code        int    `json:"code,omitempty"`
	RetryAfterS int64  `json:"retry_after_s,omitempty"`
}

// shardError builds the ShardError row for one failed call, lifting
// the HTTP status and Retry-After out of a client.StatusError.
func shardError(shard string, err error) ShardError {
	se := ShardError{Shard: shard, Err: err.Error()}
	var st *client.StatusError
	if errors.As(err, &st) {
		se.Code = st.Code
		if st.RetryAfter > 0 {
			se.RetryAfterS = int64((st.RetryAfter + time.Second - 1) / time.Second)
		}
	}
	return se
}

// retryable reports whether a shard call error is worth repeating:
// transport-level failures (connection refused, timeouts) and 5xx
// statuses. A 4xx means the request itself is bad and will fail again.
func retryable(err error) bool {
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true // transport error
}

// callShard runs fn against one shard under the in-flight bound, with
// retry + exponential backoff on retryable errors. A shard-provided
// Retry-After that exceeds the computed backoff wins — the shard knows
// when its window reopens better than our doubling schedule does.
func (c *Coordinator) callShard(shard int, fn func(cl *client.Client) error) error {
	release := c.acquire()
	defer release()
	backoff := c.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		c.ops.ShardRequests.Inc()
		if err = fn(c.clients[shard]); err == nil {
			return nil
		}
		if attempt >= c.opts.Retries || !retryable(err) {
			c.ops.ShardFailures.Inc()
			return err
		}
		c.ops.Retries.Inc()
		sleep := backoff
		var se *client.StatusError
		if errors.As(err, &se) && se.RetryAfter > sleep {
			sleep = se.RetryAfter
		}
		time.Sleep(sleep)
		backoff *= 2
	}
}

// broadcast runs fn against every shard concurrently and returns the
// failures, shard-named.
func (c *Coordinator) broadcast(fn func(cl *client.Client) error) []ShardError {
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callShard(i, fn)
		}(i)
	}
	wg.Wait()
	var out []ShardError
	for i, err := range errs {
		if err != nil {
			out = append(out, shardError(c.shards[i], err))
		}
	}
	return out
}

// routeBatch splits a newline-delimited ingest body into per-shard
// sub-batches by ring position under a tenant routing seed (SeedFor).
// The routing key is the item only — a trailing "\titem-weight" rides
// along to whichever shard the item maps to, so all weight for one
// item lands on one shard. buckets must hold ring.N() slices; their
// contents are appended to.
func routeBatch(ring *Ring, seed uint64, body []byte, buckets [][]byte) (items int) {
	for len(body) > 0 {
		line := body
		if i := indexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			body = nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		key := line
		if t := indexByte(line, '\t'); t >= 0 {
			key = line[:t]
		}
		s := ring.ShardSeeded(key, seed)
		buckets[s] = append(buckets[s], line...)
		buckets[s] = append(buckets[s], '\n')
		items++
	}
	return items
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// FanOutAdd routes one ingest body across the shards and posts every
// non-empty sub-batch in parallel, in the default tenant namespace.
func (c *Coordinator) FanOutAdd(name string, body []byte) (int, []ShardError) {
	return c.FanOutAddTenant("", name, body)
}

// FanOutAddTenant routes one ingest body across the shards under a
// tenant's routing seed and posts every non-empty sub-batch in
// parallel into that tenant's namespace ("" = default, legacy shard
// paths). Returns the routed item count and any shard failures (after
// retries). Items routed to a failed shard are NOT silently dropped
// from the ack: callers surface the failure.
func (c *Coordinator) FanOutAddTenant(tenant, name string, body []byte) (int, []ShardError) {
	bp := c.routePool.Get().(*[][]byte)
	buckets := *bp
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}
	items := routeBatch(c.ring, SeedFor(tenant), body, buckets)

	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		if len(buckets[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callShard(i, func(cl *client.Client) error {
				return cl.Tenant(tenant).AddBatch(name, buckets[i])
			})
		}(i)
	}
	wg.Wait()
	var out []ShardError
	for i, err := range errs {
		if err != nil {
			out = append(out, shardError(c.shards[i], err))
		}
	}
	*bp = buckets
	c.routePool.Put(bp)
	return items, out
}

// Gather scatter-gathers the named sketch's envelope from every shard
// in the default tenant namespace.
func (c *Coordinator) Gather(name string) ([][]byte, []ShardError) {
	return c.GatherTenant("", name)
}

// GatherTenant scatter-gathers the named sketch's envelope from every
// shard in a tenant's namespace. Returns the envelopes that arrived
// and the failures, shard-named.
func (c *Coordinator) GatherTenant(tenant, name string) ([][]byte, []ShardError) {
	envs := make([][]byte, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callShard(i, func(cl *client.Client) error {
				data, err := cl.Tenant(tenant).Snapshot(name)
				if err != nil {
					return err
				}
				envs[i] = data
				return nil
			})
		}(i)
	}
	wg.Wait()
	var ok [][]byte
	var failed []ShardError
	for i := range c.shards {
		if errs[i] != nil {
			failed = append(failed, shardError(c.shards[i], errs[i]))
			continue
		}
		ok = append(ok, envs[i])
	}
	return ok, failed
}

// gatherPooled is the serving-path scatter-gather: every shard's
// envelope is read into a pooled per-shard buffer (client.SnapshotAppend
// reuses the buffer's capacity), so a steady-state read stops paying a
// fresh envelope allocation per shard per query. slim requests each
// shard's slim envelope. The returned envelopes alias the pooled
// buffers: the caller must finish with them (decode/merge copies out)
// before calling release, and must not retain them past it.
func (c *Coordinator) gatherPooled(tenant, name string, slim bool) (envs [][]byte, fails []ShardError, release func()) {
	wire := ""
	if slim {
		wire = "slim"
		c.ops.SlimGathers.Inc()
	}
	bp := c.gatherPool.Get().(*[][]byte)
	bufs := *bp
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.callShard(i, func(cl *client.Client) error {
				data, err := cl.Tenant(tenant).SnapshotAppend(name, wire, bufs[i])
				bufs[i] = data // keep the (possibly grown) buffer either way
				return err
			})
		}(i)
	}
	wg.Wait()
	var total uint64
	for i := range c.shards {
		if errs[i] != nil {
			fails = append(fails, shardError(c.shards[i], errs[i]))
			continue
		}
		envs = append(envs, bufs[i])
		total += uint64(len(bufs[i]))
	}
	c.ops.GatherBytes.Add(total)
	return envs, fails, func() {
		*bp = bufs
		c.gatherPool.Put(bp)
	}
}

// MergeEnvelopes decodes same-type GSK1 envelopes and tree-merges them
// across cores, returning the merged instance and its descriptor. The
// registry's generic decode is what makes the coordinator family-
// agnostic: any mergeable family a shard can serve, the cluster can
// aggregate.
func MergeEnvelopes(envs [][]byte) (any, *typereg.Descriptor, error) {
	if len(envs) == 0 {
		return nil, nil, fmt.Errorf("cluster: no envelopes to merge")
	}
	var d *typereg.Descriptor
	insts := make([]any, 0, len(envs))
	for i, env := range envs {
		inst, id, err := typereg.Decode(env)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: shard envelope %d: %w", i, err)
		}
		if d == nil {
			d = id
			if d.Bind.Merge == nil {
				return nil, nil, fmt.Errorf("cluster: %s does not merge", d.Name)
			}
		} else if id != d {
			return nil, nil, fmt.Errorf("%w: cluster mixes %s and %s envelopes", core.ErrIncompatible, d.Name, id.Name)
		}
		insts = append(insts, inst)
	}
	merged, err := mergex.Tree(insts, d.Bind.Merge)
	if err != nil {
		return nil, nil, err
	}
	return merged, d, nil
}
