package cluster

// Slim-gather tests: the coordinator's ?wire=slim scatter-gather path
// must cut the bytes read from the shards while keeping merged answers
// overestimates of the true stream, and the pooled gather buffers must
// never leak one request's envelope into another's merge.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// sfFleet builds a 4-shard fleet with one sfsketch fed a weighted
// stream through the coordinator, and returns the coordinator's test
// server URL plus the exact per-item truth.
func sfFleet(t *testing.T, opts Options) (*Coordinator, *client.Client, map[string]uint64) {
	t.Helper()
	shards := make([]*httptest.Server, 4)
	urls := make([]string, len(shards))
	for i := range shards {
		shards[i] = httptest.NewServer(server.New().Handler())
		t.Cleanup(shards[i].Close)
		urls[i] = shards[i].URL
	}
	opts.RetryBackoff = time.Millisecond
	coord, err := NewCoordinator(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	cl := coordClient(t, coord)
	if err := cl.Create("freq", server.CreateRequest{Type: "sfsketch", Width: 128, Depth: 4, Seed: 3}); err != nil {
		t.Fatalf("create: %v", err)
	}
	truth := map[string]uint64{}
	var batch bytes.Buffer
	for i := 0; i < 5000; i++ {
		item := fmt.Sprintf("key-%d", i%500)
		w := uint64(i%7 + 1)
		fmt.Fprintf(&batch, "%s\t%d\n", item, w)
		truth[item] += w
	}
	if err := cl.AddBatch("freq", batch.Bytes()); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	return coord, cl, truth
}

func sfEstimate(t *testing.T, cl *client.Client, name, item, wire string) uint64 {
	t.Helper()
	params := url.Values{"item": {item}}
	if wire != "" {
		params.Set("wire", wire)
	}
	res, err := cl.Query(name, params)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	est, ok := res["estimate"].(float64)
	if !ok {
		t.Fatalf("query result %v: no estimate", res)
	}
	return uint64(est)
}

func TestSlimGatherCutsWireBytes(t *testing.T) {
	coord, cl, truth := sfFleet(t, Options{})

	base := coord.ops.GatherBytes.Load()
	fullEst := sfEstimate(t, cl, "freq", "key-3", "full")
	fullBytes := coord.ops.GatherBytes.Load() - base

	base = coord.ops.GatherBytes.Load()
	slimEst := sfEstimate(t, cl, "freq", "key-3", "slim")
	slimBytes := coord.ops.GatherBytes.Load() - base

	// Default shape is ratio 8: a slim gather moves roughly 1/9 of the
	// full envelope bytes. Require at least a 4x cut so the test tracks
	// the mechanism, not the exact shape.
	if slimBytes == 0 || slimBytes*4 > fullBytes {
		t.Fatalf("slim gather read %d bytes vs full %d: no wire saving", slimBytes, fullBytes)
	}
	if coord.ops.SlimGathers.Load() != 1 {
		t.Fatalf("slim_gathers = %d, want 1", coord.ops.SlimGathers.Load())
	}

	// Slim-merged answers stay overestimates of the true stream (each
	// shard's slim stage overestimates its substream; the cell-wise sum
	// preserves that), and the full-gather answer is at least as tight.
	want := truth["key-3"]
	if slimEst < want {
		t.Fatalf("slim-merged estimate %d undercounts true %d", slimEst, want)
	}
	if fullEst < want || fullEst > slimEst {
		t.Fatalf("full-gather estimate %d: want within [%d, %d]", fullEst, want, slimEst)
	}
	for item, want := range truth {
		if got := sfEstimate(t, cl, "freq", item, "slim"); got < want {
			t.Fatalf("slim-merged estimate(%s) = %d undercounts true %d", item, got, want)
		}
	}
}

func TestSlimGatherDefaultAndOverride(t *testing.T) {
	coord, cl, truth := sfFleet(t, Options{SlimGather: true})

	// With SlimGather on, a plain query gathers slim by default...
	est := sfEstimate(t, cl, "freq", "key-1", "")
	if coord.ops.SlimGathers.Load() != 1 {
		t.Fatalf("default gather under SlimGather: slim_gathers = %d, want 1", coord.ops.SlimGathers.Load())
	}
	if est < truth["key-1"] {
		t.Fatalf("estimate %d undercounts true %d", est, truth["key-1"])
	}
	// ...and ?wire=full still forces a full gather.
	_ = sfEstimate(t, cl, "freq", "key-1", "full")
	if coord.ops.SlimGathers.Load() != 1 {
		t.Fatal("?wire=full still gathered slim")
	}
}

func TestSlimGatherSnapshotStable(t *testing.T) {
	// Gathered-and-merged envelopes must be deterministic across repeat
	// reads in both wire modes — the pooled per-shard buffers are reused
	// between requests and must never bleed state into the merge. The
	// slim merged envelope also re-decodes as a mergeable slim-only
	// sketch (the GSKB/federation contract).
	_, cl, truth := sfFleet(t, Options{})

	full1, err := cl.SnapshotWire("freq", "full")
	if err != nil {
		t.Fatal(err)
	}
	slim1, err := cl.SnapshotWire("freq", "slim")
	if err != nil {
		t.Fatal(err)
	}
	full2, _ := cl.SnapshotWire("freq", "full")
	slim2, _ := cl.SnapshotWire("freq", "slim")
	if !bytes.Equal(full1, full2) {
		t.Fatal("repeated full gather+merge is not byte-identical")
	}
	if !bytes.Equal(slim1, slim2) {
		t.Fatal("repeated slim gather+merge is not byte-identical")
	}
	if len(slim1) >= len(full1) {
		t.Fatalf("merged slim envelope %d bytes >= full %d", len(slim1), len(full1))
	}

	merged, d, err := MergeEnvelopes([][]byte{slim1, slim2})
	if err != nil {
		t.Fatalf("slim envelopes do not re-merge: %v", err)
	}
	if d.Name != "sfsketch" {
		t.Fatalf("merged envelope family %s", d.Name)
	}
	res, err := d.Bind.Query(merged, map[string][]string{"item": {"key-2"}})
	if err != nil {
		t.Fatal(err)
	}
	// Doubled stream (slim1 == slim2), so the doubled truth bounds it.
	if est := uint64(res["estimate"].(uint64)); est < 2*truth["key-2"] {
		t.Fatalf("re-merged slim estimate %v undercounts doubled truth %d", res["estimate"], 2*truth["key-2"])
	}
}
