package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("key-%d", i))
	}
	return out
}

// With 128 virtual nodes per shard the per-shard key load must stay
// near uniform — routing imbalance turns directly into ingest hotspots.
func TestRingBalance(t *testing.T) {
	shards := []string{"http://a:7600", "http://b:7600", "http://c:7600", "http://d:7600"}
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000
	counts := make([]int, len(shards))
	for _, k := range keys(n) {
		counts[r.Shard(k)]++
	}
	mean := float64(n) / float64(len(shards))
	for i, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("shard %d holds %d keys (%.2fx mean); counts %v", i, c, ratio, counts)
		}
	}
}

// Placement hashes shard identities, not slice positions: two
// coordinators configured with the same membership in different orders
// must route every key identically.
func TestRingOrderIndependence(t *testing.T) {
	a := []string{"http://a:7600", "http://b:7600", "http://c:7600"}
	b := []string{"http://c:7600", "http://a:7600", "http://b:7600"}
	ra, _ := NewRing(a, 64)
	rb, _ := NewRing(b, 64)
	for _, k := range keys(5_000) {
		if got, want := rb.Shards()[rb.Shard(k)], ra.Shards()[ra.Shard(k)]; got != want {
			t.Fatalf("key %q: order A routes to %s, order B to %s", k, want, got)
		}
	}
}

// Removing one shard from a 4-shard ring must move only the removed
// shard's keys (~25%) — the consistent-hashing contract. A modulo
// router would move 75%.
func TestRingMinimalMovement(t *testing.T) {
	four := []string{"http://a:7600", "http://b:7600", "http://c:7600", "http://d:7600"}
	three := four[:3]
	r4, _ := NewRing(four, 0)
	r3, _ := NewRing(three, 0)
	const n = 100_000
	moved, stayedOnDead := 0, 0
	for _, k := range keys(n) {
		s4 := r4.Shards()[r4.Shard(k)]
		s3 := r3.Shards()[r3.Shard(k)]
		if s4 == four[3] {
			stayedOnDead++ // must be reassigned, doesn't count as churn
			continue
		}
		if s4 != s3 {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved between surviving shards (want 0)", moved)
	}
	frac := float64(stayedOnDead) / float64(n)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("removed shard owned %.1f%% of keys, want ~25%%", 100*frac)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard identity accepted")
	}
}

func BenchmarkRingRoute(b *testing.B) {
	r, _ := NewRing([]string{"a", "b", "c", "d", "e", "f", "g", "h"}, 0)
	key := []byte("user-12345678")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Shard(key)
	}
}
