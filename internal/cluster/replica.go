package cluster

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Replica follows one durable sketchd leader by shipping its sealed
// DUR1 WAL segments and replaying them into a local in-memory server —
// a warm read standby. Each sync round:
//
//  1. asks the leader to seal its active segment (so staleness is
//     bounded by the poll interval, not the leader's rotation cadence),
//  2. polls the shippable manifest, reporting the applied LSN the
//     leader uses to surface replication lag,
//  3. catches up from the leader's snapshot when needed — first
//     contact, or the leader's snapshot moved past our replay frontier
//     (it may then have pruned segments we never fetched),
//  4. downloads each unseen sealed segment, optionally mirrors it to
//     disk byte-identically, and replays its valid prefix through the
//     same RecoveryHandler local crash recovery uses.
//
// The valid-prefix rule makes torn segments safe end to end: a leader
// that crashed mid-record seals a torn segment, recovery on both sides
// stops at the tear, and the leader's post-restart records continue
// from the last valid LSN — so the follower's per-sketch lastLSN
// bookkeeping dedups any overlap and never applies a half-written
// record.
type Replica struct {
	leader    *client.Client
	leaderURL string
	srv       *server.Server
	handler   durable.RecoveryHandler
	opts      ReplicaOptions

	seeded  bool
	applied uint64 // replay frontier: max applied LSN
	walLast uint64 // running ReplayLog cursor (monotonic across segments)
	nextSeq uint64 // first WAL segment seq not yet applied

	rounds   int
	segments int
	records  int
	reseeds  int
}

// ReplicaOptions configures a Replica. Zero values take the documented
// defaults.
type ReplicaOptions struct {
	// PollInterval between sync rounds in Run. Default 500ms.
	PollInterval time.Duration
	// MirrorDir, when set, receives a byte-identical copy of every
	// shipped file — a cold-start archive a future leader could
	// recover from.
	MirrorDir string
	// NoSeal skips the pre-poll seal request. Lag then grows until the
	// leader rotates segments on its own (size or snapshot cadence).
	NoSeal bool
	// HTTPClient overrides the pooled default for leader calls.
	HTTPClient *http.Client
}

// NewReplica builds a follower that replays leader into srv. srv must
// be an in-memory server (no durability): replicated state is the
// leader's history, and a follower writing its own WAL would interleave
// two histories.
func NewReplica(leaderURL string, srv *server.Server, opts ReplicaOptions) *Replica {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	var cl *client.Client
	if opts.HTTPClient != nil {
		cl = client.NewWithHTTPClient(leaderURL, opts.HTTPClient)
	} else {
		cl = client.New(leaderURL)
	}
	return &Replica{
		leader:    cl,
		leaderURL: leaderURL,
		srv:       srv,
		handler:   srv.NewReplayer(),
		opts:      opts,
	}
}

// Applied returns the replica's replay frontier (last applied LSN).
func (r *Replica) Applied() uint64 { return r.applied }

// SyncOnce runs one sync round. Not safe for concurrent use — drive it
// from one loop (Run does).
func (r *Replica) SyncOnce() error {
	r.rounds++
	if !r.opts.NoSeal {
		// Best effort: a failed seal still leaves previously sealed
		// segments fetchable, and the poll below surfaces real outages.
		_ = r.leader.ReplSeal()
	}
	appliedBefore := r.applied
	st, err := r.leader.ReplStatus(r.applied)
	if err != nil {
		return fmt.Errorf("replica: poll %s: %w", r.leaderURL, err)
	}

	if !r.seeded || st.SnapshotLSN > r.applied {
		if err := r.seed(st); err != nil {
			return err
		}
	}

	for _, seg := range st.Segments {
		if seg.Seq < r.nextSeq {
			continue
		}
		data, err := r.leader.ReplFile(seg.Name)
		if err != nil {
			// Pruned between manifest and fetch (leader snapshotted):
			// the next round's manifest routes us through its snapshot.
			r.seeded = false
			return fmt.Errorf("replica: fetch %s: %w", seg.Name, err)
		}
		if err := r.mirror(seg.Name, data); err != nil {
			return err
		}
		before := r.walLast
		_, last, err := durable.ReplayLog(data, r.walLast, r.handler.Replay)
		if err != nil {
			return fmt.Errorf("replica: replay %s: %w", seg.Name, err)
		}
		r.walLast = last
		r.records += int(last - before)
		r.segments++
		r.nextSeq = seg.Seq + 1
	}
	if r.walLast > r.applied {
		r.applied = r.walLast
	}
	if r.applied > st.WALLSN {
		// Impossible unless the leader restarted into older history;
		// treat it as divergence and re-seed next round.
		r.seeded = false
	} else if r.applied != appliedBefore {
		// The poll above reported the pre-round frontier; refresh the
		// leader's lag view now that this round's records are applied.
		_, _ = r.leader.ReplStatus(r.applied)
	}

	status := server.ReplicationStatus{
		AppliedLSN: r.applied,
		LeaderLSN:  st.WALLSN,
		Leader:     r.leaderURL,
	}
	if st.WALLSN > r.applied {
		status.LagRecords = st.WALLSN - r.applied
	}
	r.srv.SetReplicationSelf(status)
	return nil
}

// seed (re)builds the namespace from the leader's current snapshot,
// dropping any prior state: after a seed the namespace is exactly the
// snapshot's, and segment replay continues from there. With no leader
// snapshot yet, seeding is just starting the replay from LSN 0.
func (r *Replica) seed(st durable.ShippableState) error {
	r.srv.ResetNamespace()
	r.walLast, r.nextSeq = 0, 0
	if err := r.handler.Begin(st.SnapshotLSN); err != nil {
		return err
	}
	if st.Snapshot != "" {
		data, err := r.leader.ReplFile(st.Snapshot)
		if err != nil {
			return fmt.Errorf("replica: fetch snapshot %s: %w", st.Snapshot, err)
		}
		if err := r.mirror(st.Snapshot, data); err != nil {
			return err
		}
		snaps, err := durable.DecodeSnapshotFile(data)
		if err != nil {
			return fmt.Errorf("replica: decode snapshot %s: %w", st.Snapshot, err)
		}
		for _, sn := range snaps {
			if err := r.handler.RestoreSketch(sn); err != nil {
				return fmt.Errorf("replica: restore %q: %w", sn.Name, err)
			}
		}
	}
	r.applied = st.SnapshotLSN
	r.seeded = true
	r.reseeds++
	return nil
}

func (r *Replica) mirror(name string, data []byte) error {
	if r.opts.MirrorDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.opts.MirrorDir, 0o755); err != nil {
		return fmt.Errorf("replica: mirror dir: %w", err)
	}
	if err := os.WriteFile(filepath.Join(r.opts.MirrorDir, name), data, 0o644); err != nil {
		return fmt.Errorf("replica: mirror %s: %w", name, err)
	}
	return nil
}

// Run polls until the context ends. Sync errors are transient by
// design (the leader restarting, a segment pruned mid-fetch) — they
// are reported through onErr (nil to ignore) and the loop keeps going.
func (r *Replica) Run(ctx context.Context, onErr func(error)) {
	t := time.NewTicker(r.opts.PollInterval)
	defer t.Stop()
	for {
		if err := r.SyncOnce(); err != nil && onErr != nil {
			onErr(err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
