package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
)

// fleet spins up n in-process sketchd shards and a coordinator over
// them, all torn down with the test.
func fleet(t *testing.T, n int) (*Coordinator, []*httptest.Server) {
	t.Helper()
	shards := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = httptest.NewServer(server.New().Handler())
		t.Cleanup(shards[i].Close)
		urls[i] = shards[i].URL
	}
	coord, err := NewCoordinator(urls, Options{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return coord, shards
}

func coordClient(t *testing.T, coord *Coordinator) *client.Client {
	t.Helper()
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func ingestN(t *testing.T, cl *client.Client, name string, n int) {
	t.Helper()
	var batch bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&batch, "item-%d\n", i)
		if batch.Len() > 1<<16 {
			if err := cl.AddBatch(name, batch.Bytes()); err != nil {
				t.Fatalf("AddBatch: %v", err)
			}
			batch.Reset()
		}
	}
	if batch.Len() > 0 {
		if err := cl.AddBatch(name, batch.Bytes()); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
	}
}

// The tentpole correctness claim: a cluster-wide estimate equals what
// one server would produce within the family's merge bounds, because
// the global sketch IS the merge of the per-shard sketches.
func TestCoordinatorGlobalEstimate(t *testing.T) {
	coord, _ := fleet(t, 4)
	cl := coordClient(t, coord)

	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
		t.Fatalf("create: %v", err)
	}
	const n = 50_000
	ingestN(t, cl, "users", n)

	est, err := cl.Estimate("users", nil)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	// p=14 HLL: σ ≈ 1.04/√2^14 ≈ 0.81%. Merged registers are exactly
	// the single-server registers, so 5σ covers it with huge margin.
	if relErr := math.Abs(est-n) / n; relErr > 5*0.0081 {
		t.Errorf("cluster estimate %.0f vs true %d: %.2f%% error", est, n, 100*relErr)
	}

	// The merged envelope must agree with the per-shard envelopes
	// merged by hand — scatter-gather adds routing, not new math.
	single := server.New()
	ss := httptest.NewServer(single.Handler())
	defer ss.Close()
	scl := client.New(ss.URL)
	if err := scl.Create("users", server.CreateRequest{Type: "hll", P: 14, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, scl, "users", n)
	sEst, err := scl.Estimate("users", nil)
	if err != nil {
		t.Fatal(err)
	}
	if est != sEst {
		t.Errorf("cluster %.2f vs single-server %.2f: same items, same params — estimates must be identical", est, sEst)
	}
}

// Routing sends all weight for one item to one shard, so point
// frequency estimates survive sharding exactly.
func TestCoordinatorWeightedRouting(t *testing.T) {
	coord, shards := fleet(t, 3)
	cl := coordClient(t, coord)

	if err := cl.Create("freq", server.CreateRequest{Type: "countmin", Width: 4096, Depth: 4, Seed: 7}); err != nil {
		t.Fatalf("create: %v", err)
	}
	var batch bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&batch, "hot\t3\n")
		fmt.Fprintf(&batch, "noise-%d\n", i)
	}
	if err := cl.AddBatch("freq", batch.Bytes()); err != nil {
		t.Fatalf("add: %v", err)
	}
	res, err := cl.Query("freq", url.Values{"item": {"hot"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if est := res["estimate"].(float64); est < 1500 {
		t.Errorf("hot estimate %.0f, want >= 1500 (weight split across shards?)", est)
	}
	if merged := res["shards_merged"].(float64); merged != 3 {
		t.Errorf("shards_merged %v, want 3", merged)
	}

	// All 500 "hot" updates landed on exactly one shard.
	holders := 0
	for _, sh := range shards {
		scl := client.New(sh.URL)
		r, err := scl.Query("freq", url.Values{"item": {"hot"}})
		if err != nil {
			t.Fatal(err)
		}
		if r["estimate"].(float64) >= 1500 {
			holders++
		}
	}
	if holders != 1 {
		t.Errorf("%d shards hold item 'hot', want exactly 1", holders)
	}
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
	return resp.StatusCode, doc
}

// A shard dying mid-operation must never produce a silently wrong
// merge: reads fail with the shard named unless the caller opts into a
// labeled partial answer.
func TestCoordinatorPartialFailure(t *testing.T) {
	coord, shards := fleet(t, 3)
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)

	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, cl, "users", 10_000)

	dead := shards[1]
	dead.Close()

	// Default read: 503, failed shard named in the structured error.
	code, doc := getJSON(t, ts.URL+"/v1/sketch/users/query")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query with dead shard: HTTP %d, want 503 (%v)", code, doc)
	}
	if !strings.Contains(fmt.Sprint(doc["failed_shards"]), dead.URL) {
		t.Errorf("503 does not name dead shard %s: %v", dead.URL, doc)
	}

	// Opt-in degraded read: 200, labeled partial, still a sane
	// estimate over the surviving ~2/3 of the keyspace.
	code, doc = getJSON(t, ts.URL+"/v1/sketch/users/query?allow_partial=true")
	if code != http.StatusOK {
		t.Fatalf("allow_partial query: HTTP %d (%v)", code, doc)
	}
	if doc["partial"] != true {
		t.Errorf("degraded answer not labeled partial: %v", doc)
	}
	if !strings.Contains(fmt.Sprint(doc["failed_shards"]), dead.URL) {
		t.Errorf("partial answer does not name dead shard: %v", doc)
	}
	est := doc["estimate"].(float64)
	if est < 10_000/3.0 || est > 10_000 {
		t.Errorf("partial estimate %.0f implausible for 2/3 of 10000 keys", est)
	}

	// Ingest must fail loudly too — acknowledging a partially applied
	// batch would silently skew every later estimate. Route a key that
	// provably lives on the dead shard.
	var batch bytes.Buffer
	for i := 0; batch.Len() == 0; i++ {
		key := fmt.Sprintf("probe-%d", i)
		if coord.Ring().Shards()[coord.Ring().ShardString(key)] == dead.URL {
			batch.WriteString(key + "\n")
		}
	}
	err := cl.AddBatch("users", batch.Bytes())
	if err == nil {
		t.Fatal("ingest with dead shard succeeded")
	}
	if !strings.Contains(err.Error(), dead.URL) {
		t.Errorf("ingest error does not name dead shard: %v", err)
	}
}

// A shard that fails transiently is retried with backoff; the batch
// lands without the client seeing the blip.
func TestCoordinatorIngestRetry(t *testing.T) {
	real := httptest.NewServer(server.New().Handler())
	t.Cleanup(real.Close)

	var failuresLeft atomic.Int32
	failuresLeft.Store(2)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/add") && failuresLeft.Add(-1) >= 0 {
			http.Error(w, `{"error":"synthetic overload"}`, http.StatusServiceUnavailable)
			return
		}
		real.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	coord, err := NewCoordinator([]string{flaky.URL}, Options{Retries: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cl := coordClient(t, coord)
	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddBatch("users", []byte("a\nb\nc\n")); err != nil {
		t.Fatalf("ingest through flaky shard: %v", err)
	}
	if got := coord.ops.Retries.Load(); got != 2 {
		t.Errorf("retries counter %d, want 2", got)
	}

	// A 4xx is not retried: same request, same answer.
	if err := cl.AddBatch("no-such-sketch", []byte("a\n")); err == nil {
		t.Error("add to missing sketch succeeded")
	}
	var se *client.StatusError
	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err == nil {
		t.Error("duplicate create succeeded")
	} else if !asStatusError(err, &se) || se.Code != http.StatusConflict {
		t.Errorf("duplicate create: %v, want 409 passed through", err)
	}
}

func asStatusError(err error, target **client.StatusError) bool {
	se, ok := err.(*client.StatusError)
	if ok {
		*target = se
	}
	return ok
}

// The coordinator serves the same API surface a single sketchd does:
// a broadcast delete and per-shard status roll-up complete the story.
func TestCoordinatorAdminSurface(t *testing.T) {
	coord, _ := fleet(t, 3)
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)

	if err := cl.Create("tmp", server.CreateRequest{Type: "hll", P: 10, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	st := coord.Status()
	if st.Healthy != 3 {
		t.Errorf("healthy %d, want 3", st.Healthy)
	}
	for _, row := range st.Shards {
		if !row.OK || row.Status.Sketches != 1 {
			t.Errorf("shard %s: ok=%v sketches=%d, want created everywhere", row.Shard, row.OK, row.Status.Sketches)
		}
	}
	if err := cl.Delete("tmp"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	for _, row := range coord.Status().Shards {
		if row.Status.Sketches != 0 {
			t.Errorf("shard %s still holds %d sketches after cluster delete", row.Shard, row.Status.Sketches)
		}
	}

	code, doc := getJSON(t, ts.URL+"/v1/cluster/status")
	if code != http.StatusOK || doc["healthy"].(float64) != 3 {
		t.Errorf("GET /v1/cluster/status: %d %v", code, doc)
	}
}

// The merged snapshot endpoint emits a plain GSK1 envelope — feeding
// it back through a single server's merge endpoint must work.
func TestCoordinatorSnapshotRoundTrip(t *testing.T) {
	coord, _ := fleet(t, 3)
	cl := coordClient(t, coord)
	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, cl, "users", 5_000)
	env, err := cl.Snapshot("users")
	if err != nil {
		t.Fatalf("cluster snapshot: %v", err)
	}

	single := httptest.NewServer(server.New().Handler())
	t.Cleanup(single.Close)
	scl := client.New(single.URL)
	if err := scl.Create("import", server.CreateRequest{Type: "hll", P: 12, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := scl.Merge("import", env); err != nil {
		t.Fatalf("merge cluster envelope into single server: %v", err)
	}
	est, err := scl.Estimate("import", nil)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := math.Abs(est-5000) / 5000; relErr > 0.05 {
		t.Errorf("imported estimate %.0f, want ~5000", est)
	}
}

// TestCoordinator429Passthrough: when every shard refuses a read with
// a query-budget 429, the coordinator is not degraded — the workload
// is over budget. The response must be 429 with the largest shard
// Retry-After, not a 503 that invites failover.
func TestCoordinator429Passthrough(t *testing.T) {
	const budget = 2
	shards := make([]*httptest.Server, 2)
	urls := make([]string, len(shards))
	for i := range shards {
		s := server.New()
		s.SetQueryBudget(server.QueryBudget{Queries: budget, Interval: time.Hour})
		shards[i] = httptest.NewServer(s.Handler())
		t.Cleanup(shards[i].Close)
		urls[i] = shards[i].URL
	}
	coord, err := NewCoordinator(urls, Options{RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)

	if err := cl.Create("metered", server.CreateRequest{Type: "hll", P: 10}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := cl.Add("metered", []string{"a", "b", "c"}); err != nil {
		t.Fatalf("add: %v", err)
	}

	// Each coordinator read costs one snapshot token on every shard.
	for i := 0; i < budget; i++ {
		if _, err := cl.Estimate("metered", nil); err != nil {
			t.Fatalf("query %d under budget: %v", i, err)
		}
	}
	_, err = cl.Estimate("metered", nil)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 429 {
		t.Fatalf("over budget via coordinator: %v, want StatusError 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Errorf("passthrough lost Retry-After: %+v", se)
	}

	// Ingest keeps flowing through the coordinator while reads are
	// refused — the guard must never become a write outage.
	if err := cl.Add("metered", []string{"d", "e"}); err != nil {
		t.Fatalf("add while throttled: %v", err)
	}

	// One shard throttled + one shard down is availability loss, not
	// budget exhaustion: the coordinator must answer 503, not 429.
	shards[1].Close()
	_, err = cl.Estimate("metered", nil)
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("mixed 429 + down shard: %v, want StatusError 503", err)
	}
}
