package graphsketch

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// exactComponents computes ground-truth components by union-find.
func exactComponents(n int, edges [][2]int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e[0]), find(e[1])
		if ra != rb {
			parent[ra] = rb
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = find(i)
	}
	return out
}

// componentsAgree checks two component labelings induce the same
// partition.
func componentsAgree(a, b []int) bool {
	mapping := map[int]int{}
	reverse := map[int]int{}
	for i := range a {
		if m, ok := mapping[a[i]]; ok {
			if m != b[i] {
				return false
			}
		} else {
			mapping[a[i]] = b[i]
		}
		if r, ok := reverse[b[i]]; ok {
			if r != a[i] {
				return false
			}
		} else {
			reverse[b[i]] = a[i]
		}
	}
	return true
}

func countComponents(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

func TestPathGraphConnected(t *testing.T) {
	const n = 64
	s := New(n, 10, 1)
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		s.AddEdge(i, i+1)
		edges = append(edges, [2]int{i, i + 1})
	}
	if got := s.ComponentCount(); got != 1 {
		t.Errorf("path graph components = %d, want 1", got)
	}
	if !s.Connected(0, n-1) {
		t.Error("path endpoints not connected")
	}
}

func TestPlantedComponents(t *testing.T) {
	// E12 workload: several dense planted clusters, no cross edges.
	const n = 120
	const clusters = 4
	s := New(n, 12, 2)
	rng := randx.New(3)
	var edges [][2]int
	per := n / clusters
	for c := 0; c < clusters; c++ {
		base := c * per
		// Spanning path plus random intra-cluster edges.
		for i := 0; i < per-1; i++ {
			s.AddEdge(base+i, base+i+1)
			edges = append(edges, [2]int{base + i, base + i + 1})
		}
		for k := 0; k < per; k++ {
			u := base + rng.Intn(per)
			v := base + rng.Intn(per)
			if u != v {
				s.AddEdge(u, v)
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	want := exactComponents(n, edges)
	got := s.ConnectedComponents()
	if !componentsAgree(want, got) {
		t.Errorf("components disagree: want %d comps, got %d",
			countComponents(want), countComponents(got))
	}
}

func TestDynamicEdgeDeletion(t *testing.T) {
	// The linear-sketch selling point: deletions. Build a cycle, then
	// delete one edge — still connected; delete another — splits.
	const n = 32
	s := New(n, 12, 4)
	for i := 0; i < n; i++ {
		s.AddEdge(i, (i+1)%n)
	}
	s.RemoveEdge(0, 1)
	if got := s.ComponentCount(); got != 1 {
		t.Errorf("cycle minus one edge: components = %d, want 1", got)
	}
	s.RemoveEdge(10, 11)
	if got := s.ComponentCount(); got != 2 {
		t.Errorf("cycle minus two edges: components = %d, want 2", got)
	}
}

func TestIsolatedVertices(t *testing.T) {
	s := New(10, 8, 5)
	s.AddEdge(0, 1)
	s.AddEdge(2, 3)
	if got := s.ComponentCount(); got != 8 {
		t.Errorf("components = %d, want 8 (2 pairs + 6 singletons)", got)
	}
	if s.Connected(0, 2) {
		t.Error("distinct pairs reported connected")
	}
	if !s.Connected(2, 3) {
		t.Error("pair not connected")
	}
}

func TestSpanningForest(t *testing.T) {
	const n = 48
	s := New(n, 10, 6)
	rng := randx.New(7)
	var edges [][2]int
	// Random connected graph: spanning path + extras.
	for i := 0; i < n-1; i++ {
		s.AddEdge(i, i+1)
		edges = append(edges, [2]int{i, i + 1})
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			s.AddEdge(u, v)
			edges = append(edges, [2]int{u, v})
		}
	}
	forest := s.SpanningForest()
	if len(forest) != n-1 {
		t.Fatalf("spanning forest has %d edges, want %d", len(forest), n-1)
	}
	// Every forest edge must be a real edge of the graph.
	real := map[[2]int]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		real[[2]int{u, v}] = true
	}
	for _, e := range forest {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if !real[[2]int{u, v}] {
			t.Fatalf("forest edge {%d,%d} is not a graph edge", u, v)
		}
	}
	// The forest must connect everything.
	if countComponents(exactComponents(n, forest)) != 1 {
		t.Error("forest does not span the graph")
	}
}

func TestMergeEdgeStreams(t *testing.T) {
	// Two sketches over disjoint edge sets merge into the union graph.
	const n = 40
	a := New(n, 10, 8)
	b := New(n, 10, 8)
	for i := 0; i < n/2-1; i++ {
		a.AddEdge(i, i+1)
	}
	for i := n / 2; i < n-1; i++ {
		b.AddEdge(i, i+1)
	}
	// Bridge lives in stream b.
	b.AddEdge(n/2-1, n/2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.ComponentCount(); got != 1 {
		t.Errorf("merged graph components = %d, want 1", got)
	}
	if err := a.Merge(New(n+1, 10, 8)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across vertex counts must fail")
	}
}

func TestPanics(t *testing.T) {
	s := New(4, 4, 9)
	for name, fn := range map[string]func(){
		"self loop":    func() { s.AddEdge(1, 1) },
		"out of range": func() { s.AddEdge(0, 7) },
		"bad n":        func() { New(0, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkAddEdge(b *testing.B) {
	s := New(1024, 8, 1)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(1024), rng.Intn(1024)
		if u == v {
			v = (v + 1) % 1024
		}
		s.AddEdge(u, v)
	}
}

func BenchmarkConnectivity(b *testing.B) {
	const n = 128
	s := New(n, 8, 1)
	for i := 0; i < n-1; i++ {
		s.AddEdge(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComponentCount()
	}
}
