// Package graphsketch implements the Ahn–Guha–McGregor graph sketch
// (SODA 2012), the paper's example of sketching complex data types:
// each vertex keeps an L0-sampler sketch of its signed edge-incidence
// vector. Because the samplers are linear, the sketch of a component
// (the sum of its vertices' sketches) cancels internal edges and
// samples only *cut* edges — which is exactly what Borůvka's algorithm
// needs to find spanning forests and connectivity in O(polylog) passes
// over sketches instead of the edge list (experiment E12).
//
// Edge encoding: the edge {u, v} with u < v maps to index u·n + v of
// the incidence vector; vertex u records it with weight +1 and vertex v
// with weight −1, so summing the sketches of u and v cancels it.
package graphsketch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sample"
)

// Sketch summarizes a graph on n vertices for connectivity queries.
// Multiple independent sampler rounds are kept because each Borůvka
// round must use fresh randomness.
type Sketch struct {
	n        int
	rounds   int
	samplers [][]*sample.L0Sampler // rounds × vertices
	seed     uint64
}

// New creates a graph sketch for n vertices with the given number of
// Borůvka rounds (log₂ n rounds suffice; a couple extra add safety).
func New(n int, rounds int, seed uint64) *Sketch {
	if n < 1 {
		panic("graphsketch: n must be positive")
	}
	if rounds < 1 {
		panic("graphsketch: rounds must be positive")
	}
	samplers := make([][]*sample.L0Sampler, rounds)
	for r := range samplers {
		samplers[r] = make([]*sample.L0Sampler, n)
		for v := range samplers[r] {
			// All samplers within a round share hash seeds (required
			// for linearity across vertices); rounds differ.
			samplers[r][v] = sample.NewL0Sampler(12, seed+uint64(r)*0x9e3779b97f4a7c15)
		}
	}
	return &Sketch{n: n, rounds: rounds, samplers: samplers, seed: seed}
}

// edgeIndex maps {u, v} to its incidence-vector coordinate.
func (s *Sketch) edgeIndex(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)*uint64(s.n) + uint64(v)
}

// decodeEdge inverts edgeIndex.
func (s *Sketch) decodeEdge(idx uint64) (int, int) {
	return int(idx / uint64(s.n)), int(idx % uint64(s.n))
}

// AddEdge inserts the undirected edge {u, v}.
func (s *Sketch) AddEdge(u, v int) { s.updateEdge(u, v, 1) }

// RemoveEdge deletes the undirected edge {u, v} (dynamic graphs are the
// point of the linear-sketch approach).
func (s *Sketch) RemoveEdge(u, v int) { s.updateEdge(u, v, -1) }

func (s *Sketch) updateEdge(u, v int, w int64) {
	if u == v {
		panic("graphsketch: self loops are not representable")
	}
	if u < 0 || v < 0 || u >= s.n || v >= s.n {
		panic(fmt.Sprintf("graphsketch: vertex out of range [0,%d)", s.n))
	}
	idx := s.edgeIndex(u, v)
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	for r := 0; r < s.rounds; r++ {
		s.samplers[r][lo].Update(idx, w)
		s.samplers[r][hi].Update(idx, -w)
	}
}

// N returns the number of vertices.
func (s *Sketch) N() int { return s.n }

// Merge combines edge sets: sketches of two edge-disjoint streams (or
// streams whose insertions/deletions net out) over the same vertex set
// add linearly.
func (s *Sketch) Merge(other *Sketch) error {
	if s.n != other.n || s.rounds != other.rounds || s.seed != other.seed {
		return fmt.Errorf("%w: graph sketch shape mismatch", core.ErrIncompatible)
	}
	for r := range s.samplers {
		for v := range s.samplers[r] {
			if err := s.samplers[r][v].Merge(other.samplers[r][v]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ConnectedComponents runs sketch-space Borůvka: in each round, every
// current component samples one cut edge from the merged sketches of
// its vertices and unions along it. Returns the component id of every
// vertex. With enough rounds the result equals the true components with
// high probability.
func (s *Sketch) ConnectedComponents() []int {
	parent := make([]int, s.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	for r := 0; r < s.rounds; r++ {
		// Group vertices by component.
		comps := make(map[int][]int)
		for v := 0; v < s.n; v++ {
			comps[find(v)] = append(comps[find(v)], v)
		}
		if len(comps) == 1 {
			break
		}
		merged := false
		for _, members := range comps {
			// Sum the round-r sketches of the component's vertices.
			agg := sample.NewL0Sampler(12, s.seed+uint64(r)*0x9e3779b97f4a7c15)
			for _, v := range members {
				if err := agg.Merge(s.samplers[r][v]); err != nil {
					// Same-round samplers always share seeds; any
					// failure is a programming error.
					panic(err)
				}
			}
			if idx, _, ok := agg.Sample(); ok {
				u, v := s.decodeEdge(idx)
				if find(u) != find(v) {
					union(u, v)
					merged = true
				}
			}
		}
		if !merged {
			break
		}
	}

	// Normalize component ids.
	out := make([]int, s.n)
	for v := range out {
		out[v] = find(v)
	}
	return out
}

// Connected reports whether u and v are in the same component.
func (s *Sketch) Connected(u, v int) bool {
	comps := s.ConnectedComponents()
	return comps[u] == comps[v]
}

// ComponentCount returns the number of connected components (isolated
// vertices count individually).
func (s *Sketch) ComponentCount() int {
	comps := s.ConnectedComponents()
	seen := make(map[int]bool)
	for _, c := range comps {
		seen[c] = true
	}
	return len(seen)
}

// SpanningForest returns the edges Borůvka used, one set per merge —
// a spanning forest of the sketched graph (with high probability).
func (s *Sketch) SpanningForest() [][2]int {
	parent := make([]int, s.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var forest [][2]int
	for r := 0; r < s.rounds; r++ {
		comps := make(map[int][]int)
		for v := 0; v < s.n; v++ {
			comps[find(v)] = append(comps[find(v)], v)
		}
		if len(comps) == 1 {
			break
		}
		merged := false
		for _, members := range comps {
			agg := sample.NewL0Sampler(12, s.seed+uint64(r)*0x9e3779b97f4a7c15)
			for _, v := range members {
				if err := agg.Merge(s.samplers[r][v]); err != nil {
					panic(err)
				}
			}
			if idx, _, ok := agg.Sample(); ok {
				u, v := s.decodeEdge(idx)
				ru, rv := find(u), find(v)
				if ru != rv {
					parent[ru] = rv
					forest = append(forest, [2]int{u, v})
					merged = true
				}
			}
		}
		if !merged {
			break
		}
	}
	return forest
}

// Rounds returns the number of independent Borůvka rounds kept.
func (s *Sketch) Rounds() int { return s.rounds }

// MarshalBinary serializes the graph sketch: the shape and seed, then
// each vertex sampler's own envelope (rounds-major) as a nested
// length-prefixed payload.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagGraphSketch, 1)
	w.U32(uint32(s.n))
	w.U32(uint32(s.rounds))
	w.U64(s.seed)
	for _, round := range s.samplers {
		for _, sampler := range round {
			payload, err := sampler.MarshalBinary()
			if err != nil {
				return nil, err
			}
			w.BytesField(payload)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a graph sketch serialized by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	rd, _, err := core.NewReaderVersioned(data, core.TagGraphSketch, 1)
	if err != nil {
		return err
	}
	n := int(rd.U32())
	rounds := int(rd.U32())
	seed := rd.U64()
	if rd.Err() != nil {
		return rd.Err()
	}
	// Each sampler payload is at least a 4-byte length prefix, so the
	// product bound below also keeps the decode loop proportional to
	// the input size on corrupt counts.
	if n < 1 || rounds < 1 || n > 1<<20 || rounds > 64 || n*rounds > (len(data)+3)/4 {
		return fmt.Errorf("%w: graphsketch n=%d rounds=%d", core.ErrCorrupt, n, rounds)
	}
	samplers := make([][]*sample.L0Sampler, rounds)
	for r := range samplers {
		samplers[r] = make([]*sample.L0Sampler, n)
		for v := range samplers[r] {
			payload := rd.BytesField()
			if rd.Err() != nil {
				return rd.Err()
			}
			sampler := new(sample.L0Sampler)
			if err := sampler.UnmarshalBinary(payload); err != nil {
				return err
			}
			samplers[r][v] = sampler
		}
	}
	if err := rd.Done(); err != nil {
		return err
	}
	s.n, s.rounds, s.samplers, s.seed = n, rounds, samplers, seed
	return nil
}
