package registry

import (
	"net/url"
	"testing"

	"repro/internal/concurrent"
)

// ServingNew must dispatch on the process-wide serving mode and fall
// back to the atomic constructor for families without a buffered
// variant.
func TestServingNewModeDispatch(t *testing.T) {
	concurrent.SetBufferedServing(false)
	t.Cleanup(func() { concurrent.SetBufferedServing(false) })

	d, _ := Lookup("countmin")
	p, err := d.Validate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.ServingNew()(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inst.(*concurrent.AtomicCountMin); !ok {
		t.Fatalf("atomic mode built %T, want *concurrent.AtomicCountMin", inst)
	}

	concurrent.SetBufferedServing(true)
	inst, err = d.ServingNew()(p)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := inst.(*concurrent.BufferedCountMin)
	if !ok {
		t.Fatalf("buffered mode built %T, want *concurrent.BufferedCountMin", inst)
	}
	b.Close()

	// A family with no buffered variant keeps its atomic serving
	// constructor even in buffered mode.
	if d, _ := Lookup("theta"); d.NewServingBuffered != nil {
		t.Fatal("theta unexpectedly grew a buffered constructor; update this test")
	}
}

// Buffered ingest keeps the validate-whole-batch-then-apply contract:
// a bad weight anywhere rejects the batch with no partial state.
func TestBufferedIngestValidatesBatch(t *testing.T) {
	concurrent.SetBufferedServing(true)
	t.Cleanup(func() { concurrent.SetBufferedServing(false) })

	d, _ := Lookup("countmin")
	p, err := d.Validate(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := d.ServingNew()(p)
	if err != nil {
		t.Fatal(err)
	}
	b := inst.(*concurrent.BufferedCountMin)
	defer b.Close()

	batch := [][]byte{[]byte("good\t2"), []byte("bad\tnot-a-number")}
	if err := d.Serve.Ingest(inst, batch); err == nil {
		t.Fatal("bad weight accepted")
	}
	b.Sync()
	if n := b.N(); n != 0 {
		t.Fatalf("partial ingest after rejected batch: n=%d", n)
	}

	if err := d.Serve.Ingest(inst, [][]byte{[]byte("good\t2"), []byte("plain")}); err != nil {
		t.Fatal(err)
	}
	b.Sync()
	if n := b.N(); n != 3 {
		t.Fatalf("n=%d after weights 2+1, want 3", n)
	}
	q, err := d.Serve.Query(inst, url.Values{"item": {"good"}})
	if err != nil {
		t.Fatal(err)
	}
	if q["estimate"].(uint64) != 2 {
		t.Fatalf("estimate %v, want 2", q["estimate"])
	}
	if _, ok := q["staleness_bound"]; !ok {
		t.Fatal("buffered query lacks staleness_bound")
	}
}
