// Package registry is the self-describing sketch type system: one
// Descriptor per sketch family binds the family's wire tag, canonical
// name, parameter schema (defaults and bounds), constructor, decoder,
// and capability closures (ingest / query / merge) in a single place.
// Every layer that used to enumerate types by hand — the sketchd entry
// switch, the facade constructors, the CLI — consults the registry
// instead, so adding a sketch family to the whole stack is one
// descriptor, and any serialized GSK1 payload can be decoded without
// knowing its concrete type up front (Decode reads the envelope tag
// and dispatches). This is the Mergeable Summaries contract the paper
// builds on — update, merge, serialize — made explicit as data.
package registry

import (
	"encoding"
	"errors"
	"fmt"
	"math"
	"net/url"
	"sort"

	"repro/internal/concurrent"
	"repro/internal/core"
)

// ErrUnknownType is returned when a name has no registered descriptor.
var ErrUnknownType = errors.New("registry: unknown sketch type")

// ErrParams is returned for creation parameters outside a descriptor's
// schema: unknown names, out-of-bounds values, or non-integral values
// for integer parameters.
var ErrParams = errors.New("registry: bad sketch parameters")

// ErrInput is returned by ingest bindings for lines that do not parse
// under the descriptor's input kind. Ingest validates the whole batch
// before applying any of it, so an ErrInput means no partial state.
var ErrInput = errors.New("registry: bad input line")

// InputKind names the line format a descriptor's Ingest binding
// accepts, one line per item in a newline-delimited batch. It is
// machine-readable (exposed on GET /v1/types) so clients and tests can
// generate well-formed input without per-type knowledge.
type InputKind int

const (
	// InputNone marks a type with no streaming ingest (not servable).
	InputNone InputKind = iota
	// InputItems: each line is one opaque set element.
	InputItems
	// InputWeightedItems: "item" or "item\tweight", weight a decimal
	// uint64 (default 1).
	InputWeightedItems
	// InputSignedItems: "item" or "item\tweight", weight a decimal
	// int64 with optional sign (default 1).
	InputSignedItems
	// InputFloats: each line is one float64 value.
	InputFloats
	// InputUintValues: "value" or "value\tweight", both decimal uint64
	// (weight default 1); value must lie in the sketch's domain.
	InputUintValues
	// InputTurnstile: "index\tdelta", index a decimal uint64, delta a
	// signed decimal int64 (default 1) — the turnstile stream model.
	InputTurnstile
	// InputEvents: each line is one occurrence of the counted event;
	// line content is ignored.
	InputEvents
	// InputEdges: "u\tv", decimal vertex ids in [0, vertices), u != v.
	InputEdges
	// InputWeightedFloatItems: "item" or "item\tweight", weight a
	// positive float64 (default 1).
	InputWeightedFloatItems
)

// String returns the line-format contract, suitable for API docs.
func (k InputKind) String() string {
	switch k {
	case InputItems:
		return "one item per line"
	case InputWeightedItems:
		return "item[\\tweight], weight uint64 (default 1)"
	case InputSignedItems:
		return "item[\\tweight], weight int64 (default 1)"
	case InputFloats:
		return "one float64 per line"
	case InputUintValues:
		return "value[\\tweight], both uint64 (weight default 1)"
	case InputTurnstile:
		return "index[\\tdelta], index uint64, delta int64 (default 1)"
	case InputEvents:
		return "one event per line (content ignored)"
	case InputEdges:
		return "u\\tv, vertex ids in [0,vertices), u != v"
	case InputWeightedFloatItems:
		return "item[\\tweight], weight float64 > 0 (default 1)"
	default:
		return "no streaming ingest"
	}
}

// Param is one entry of a descriptor's parameter schema. All values
// travel as float64 (the JSON number type); integer parameters set
// Float=false and reject fractional values. A zero raw value is
// indistinguishable from "absent" at the transport layer, so schemas
// are written with Min == 0 wherever 0 must mean "use the default" and
// constructors re-check semantic bounds.
type Param struct {
	Name  string
	Doc   string
	Def   float64 // default applied when the parameter is absent
	Min   float64 // inclusive lower bound for explicit values
	Max   float64 // inclusive upper bound for explicit values
	Float bool    // false: value must be integral
}

// Params is a validated parameter set: every schema parameter is
// present (explicit or default) and within bounds.
type Params struct {
	Seed uint64
	vals map[string]float64
}

// Float returns the named parameter.
func (p Params) Float(name string) float64 { return p.vals[name] }

// Int returns the named parameter as an int.
func (p Params) Int(name string) int { return int(p.vals[name]) }

// Uint64 returns the named parameter as a uint64.
func (p Params) Uint64(name string) uint64 { return uint64(p.vals[name]) }

// Uint8 returns the named parameter as a uint8.
func (p Params) Uint8(name string) uint8 { return uint8(p.vals[name]) }

// Bindings are the capability closures over a concrete sketch type.
// A nil field means the capability is absent and the corresponding
// operation is gated off (no merge endpoint for non-mergeable types,
// no create for types without ingest+query). Closures receive the
// instance as `any` and cast internally; the generic builders below
// keep that cast in exactly one place per capability.
type Bindings struct {
	// Ingest folds a batch of newline-delimited lines in. It must
	// validate the whole batch before the first update (no partial
	// ingest on a bad line) and must not retain the item slices —
	// they alias a pooled server buffer.
	Ingest func(inst any, items [][]byte) error
	// Query answers the type's read operation from URL parameters.
	// With no parameters it returns a summary (estimate, shape, n —
	// whatever the family supports), so it doubles as "inspect".
	Query func(inst any, params url.Values) (map[string]any, error)
	// Merge folds src (a decoded instance of the same family's plain
	// type) into dst, returning core.ErrIncompatible on shape or seed
	// mismatch.
	Merge func(dst, src any) error
}

// Descriptor is one sketch family's registration: everything the rest
// of the stack needs to construct, decode, serve, and document the
// type, with no per-type code anywhere else.
type Descriptor struct {
	Tag    byte
	Name   string // canonical lowercase name ("hll", "countmin", …)
	Family string // grouping for docs ("cardinality", "quantile", …)
	Doc    string // one-line description
	Input  InputKind
	Params []Param

	// New constructs a plain single-threaded instance from validated
	// parameters.
	New func(p Params) (any, error)
	// NewServing, when set, constructs the internally synchronized
	// variant used for live server entries (e.g. the sharded HLL, the
	// atomic Count-Min); its instances are driven through Serve. Types
	// without a concurrent wrapper leave it nil and are serialized
	// behind a per-entry mutex by the caller.
	NewServing func(p Params) (any, error)
	// NewServingBuffered, when set, constructs the local-buffer/
	// global-propagation serving variant (writer-handle ingest, a
	// propagator goroutine, wait-free relaxed-consistency reads). It is
	// selected over NewServing when concurrent.SetBufferedServing is
	// on; its instances are also driven through Serve, whose closures
	// dispatch on the concrete type. Buffered instances own a
	// goroutine — callers must Close them when the entry is deleted.
	NewServingBuffered func(p Params) (any, error)
	// Decode deserializes a MarshalBinary envelope of this family's
	// plain type.
	Decode func(data []byte) (any, error)

	// Bind operates on instances from New (and from Decode).
	Bind Bindings
	// Serve operates on instances from NewServing; nil means Bind
	// also serves them.
	Serve *Bindings
}

// Mergeable reports whether live instances can absorb decoded peers.
func (d *Descriptor) Mergeable() bool { return d.Bind.Merge != nil }

// ServingNew resolves the serving constructor for the current
// concurrent-ingest mode: the buffered (local-buffer/global-
// propagation) constructor when the process has opted in via
// concurrent.SetBufferedServing and the family provides one, otherwise
// the default internally synchronized constructor. Nil when the family
// has no serving variant at all.
func (d *Descriptor) ServingNew() func(p Params) (any, error) {
	if d.NewServingBuffered != nil && concurrent.BufferedServing() {
		return d.NewServingBuffered
	}
	return d.NewServing
}

// Servable reports whether sketchd can host the type: it needs both a
// streaming ingest format and a query operation.
func (d *Descriptor) Servable() bool { return d.Bind.Ingest != nil && d.Bind.Query != nil }

// HasParam reports whether the schema defines the named parameter.
func (d *Descriptor) HasParam(name string) bool { return d.param(name) != nil }

func (d *Descriptor) param(name string) *Param {
	for i := range d.Params {
		if d.Params[i].Name == name {
			return &d.Params[i]
		}
	}
	return nil
}

// Validate folds raw parameter values over the schema: absent
// parameters take their defaults, explicit ones are bounds- and
// integrality-checked, unknown names are rejected. This is the single
// parameter-validation point for the server, the facade, and the CLI.
func (d *Descriptor) Validate(seed uint64, raw map[string]float64) (Params, error) {
	vals := make(map[string]float64, len(d.Params))
	for _, p := range d.Params {
		vals[p.Name] = p.Def
	}
	for name, v := range raw {
		p := d.param(name)
		if p == nil {
			return Params{}, fmt.Errorf("%w: %s has no parameter %q", ErrParams, d.Name, name)
		}
		if !p.Float && v != math.Trunc(v) {
			return Params{}, fmt.Errorf("%w: %s %s=%v must be an integer", ErrParams, d.Name, p.Name, v)
		}
		if math.IsNaN(v) || v < p.Min || v > p.Max {
			return Params{}, fmt.Errorf("%w: %s %s=%v out of [%v,%v]",
				ErrParams, d.Name, p.Name, v, p.Min, p.Max)
		}
		vals[name] = v
	}
	return Params{Seed: seed, vals: vals}, nil
}

var (
	byTag    = map[byte]*Descriptor{}
	byName   = map[string]*Descriptor{}
	reserved = map[byte]string{}
)

// register installs a descriptor at package init. Duplicate tags or
// names are programming errors and panic immediately.
func register(d Descriptor) {
	if d.Tag == 0 || d.Tag > core.TagMax {
		panic(fmt.Sprintf("registry: %s tag %d outside [1,%d]", d.Name, d.Tag, core.TagMax))
	}
	if _, ok := byTag[d.Tag]; ok {
		panic(fmt.Sprintf("registry: duplicate tag %d (%s)", d.Tag, d.Name))
	}
	if _, ok := reserved[d.Tag]; ok {
		panic(fmt.Sprintf("registry: tag %d (%s) is reserved", d.Tag, d.Name))
	}
	if _, ok := byName[d.Name]; ok {
		panic(fmt.Sprintf("registry: duplicate name %q", d.Name))
	}
	if d.New == nil || d.Decode == nil {
		panic(fmt.Sprintf("registry: %s needs New and Decode", d.Name))
	}
	dp := new(Descriptor)
	*dp = d
	byTag[d.Tag] = dp
	byName[d.Name] = dp
}

// reserve tombstones a wire tag that must never be reassigned but has
// no live decoder (e.g. a format superseded in place). The
// exhaustiveness test accepts reserved tags; Decode reports why the
// payload is undecodable.
func reserve(tag byte, reason string) {
	if _, ok := byTag[tag]; ok {
		panic(fmt.Sprintf("registry: reserving registered tag %d", tag))
	}
	reserved[tag] = reason
}

// Lookup returns the descriptor registered under the canonical name.
func Lookup(name string) (*Descriptor, bool) {
	d, ok := byName[name]
	return d, ok
}

// LookupTag returns the descriptor registered for a wire tag.
func LookupTag(tag byte) (*Descriptor, bool) {
	d, ok := byTag[tag]
	return d, ok
}

// ReservedTag reports whether a tag is tombstoned and why.
func ReservedTag(tag byte) (string, bool) {
	why, ok := reserved[tag]
	return why, ok
}

// All returns every registered descriptor sorted by name.
func All() []*Descriptor {
	out := make([]*Descriptor, 0, len(byName))
	for _, d := range byName {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Decode deserializes any GSK1 envelope by reading its tag and
// dispatching to the registered decoder — the generic, self-describing
// decode path. It returns the concrete instance (e.g. *cardinality.HLL)
// together with its descriptor.
func Decode(data []byte) (any, *Descriptor, error) {
	tag, err := core.PeekTag(data)
	if err != nil {
		return nil, nil, err
	}
	d, ok := byTag[tag]
	if !ok {
		if why, isReserved := reserved[tag]; isReserved {
			return nil, nil, fmt.Errorf("%w: tag %d is retired (%s)", core.ErrCorrupt, tag, why)
		}
		return nil, nil, fmt.Errorf("%w: unknown sketch tag %d", core.ErrCorrupt, tag)
	}
	inst, err := d.Decode(data)
	if err != nil {
		return nil, nil, err
	}
	return inst, d, nil
}

// Marshal serializes any registry-constructed instance through its
// encoding.BinaryMarshaler implementation.
func Marshal(inst any) ([]byte, error) {
	m, ok := inst.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("registry: %T does not serialize", inst)
	}
	return m.MarshalBinary()
}

// SlimMarshaler is the optional wire-efficiency interface: families
// whose full state splits into a resident part and a much smaller
// query-sufficient part (the SF-sketch's fat and slim stages) also
// serialize a slim envelope — same GSK1 tag, decodable by the same
// registry decoder, mergeable with other slim envelopes — carrying
// only the bytes a remote reader needs. Byte-exact paths (durability,
// replication) always use MarshalBinary; wire paths that trade state
// for bytes (?wire=slim snapshots, scatter-gather) ask for this.
type SlimMarshaler interface {
	MarshalSlim() ([]byte, error)
}

// MarshalWire serializes an instance for the wire: the slim envelope
// when slim is requested and the instance supports it, the full
// MarshalBinary envelope otherwise. The second result reports whether
// the slim form was actually used, so callers can count slim vs full
// wire bytes per family.
func MarshalWire(inst any, slim bool) ([]byte, bool, error) {
	if slim {
		if sm, ok := inst.(SlimMarshaler); ok {
			data, err := sm.MarshalSlim()
			return data, err == nil, err
		}
	}
	data, err := Marshal(inst)
	return data, false, err
}

// SizeOf reports an instance's in-memory footprint: its own SizeBytes
// accounting when present, otherwise the serialized length as a floor.
func SizeOf(inst any) int {
	if s, ok := inst.(interface{ SizeBytes() int }); ok {
		return s.SizeBytes()
	}
	if b, err := Marshal(inst); err == nil {
		return len(b)
	}
	return 0
}

// cast narrows a stored instance to its concrete type; failure means a
// descriptor wired closures over the wrong type, which is reported
// rather than panicking so a server keeps serving.
func cast[T any](inst any) (T, error) {
	c, ok := inst.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("registry: instance is %T, want %T", inst, zero)
	}
	return c, nil
}

// decode1 builds a Decode closure from a type's zero-value
// UnmarshalBinary contract.
func decode1[T any, PT interface {
	*T
	encoding.BinaryUnmarshaler
}]() func([]byte) (any, error) {
	return func(data []byte) (any, error) {
		inst := PT(new(T))
		if err := inst.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return inst, nil
	}
}

// merge2 builds a Merge closure from a typed merge method expression,
// e.g. merge2((*cardinality.HLL).Merge).
func merge2[D, S any](fn func(D, S) error) func(dst, src any) error {
	return func(dst, src any) error {
		d, err := cast[D](dst)
		if err != nil {
			return err
		}
		s, err := cast[S](src)
		if err != nil {
			return err
		}
		return fn(d, s)
	}
}

// query1 builds a Query closure from a typed query function.
func query1[T any](fn func(T, url.Values) (map[string]any, error)) func(any, url.Values) (map[string]any, error) {
	return func(inst any, params url.Values) (map[string]any, error) {
		c, err := cast[T](inst)
		if err != nil {
			return nil, err
		}
		return fn(c, params)
	}
}
