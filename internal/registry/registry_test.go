package registry

// Registry-wide contract tests: every wire tag is accounted for, every
// descriptor's fresh instance survives Marshal → Decode → Marshal
// byte-identically, every servable type ingests its advertised line
// format and rejects malformed batches whole, and the capability
// surface (servable / mergeable) matches the documented expectations.

import (
	"bytes"
	"errors"
	"net/url"
	"testing"

	"repro/internal/core"
)

// TestTagExhaustive pins the append-only tag space: every tag in
// [1, core.TagMax] must be either registered or explicitly reserved,
// so a new tag constant without a descriptor fails CI instead of
// silently being undecodable.
func TestTagExhaustive(t *testing.T) {
	for tag := byte(1); tag <= core.TagMax; tag++ {
		d, registered := LookupTag(tag)
		_, isReserved := ReservedTag(tag)
		switch {
		case registered && isReserved:
			t.Errorf("tag %d is both registered (%s) and reserved", tag, d.Name)
		case !registered && !isReserved:
			t.Errorf("tag %d has no descriptor and no reservation", tag)
		case registered:
			if got, ok := Lookup(d.Name); !ok || got != d {
				t.Errorf("tag %d: Lookup(%q) does not round-trip to the same descriptor", tag, d.Name)
			}
		}
	}
	if len(All()) < 25 {
		t.Errorf("All() = %d descriptors, want at least 25", len(All()))
	}
}

// TestFreshRoundTrip builds each type with schema defaults and checks
// MarshalBinary → Decode → MarshalBinary is byte-identical, and that
// the generic decode reports the right descriptor.
func TestFreshRoundTrip(t *testing.T) {
	for _, d := range All() {
		t.Run(d.Name, func(t *testing.T) {
			p, err := d.Validate(1, nil)
			if err != nil {
				t.Fatalf("Validate with defaults: %v", err)
			}
			inst, err := d.New(p)
			if err != nil {
				t.Fatalf("New with defaults: %v", err)
			}
			env, err := Marshal(inst)
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			decoded, dd, err := Decode(env)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if dd != d {
				t.Fatalf("Decode resolved %q, want %q", dd.Name, d.Name)
			}
			env2, err := Marshal(decoded)
			if err != nil {
				t.Fatalf("re-MarshalBinary: %v", err)
			}
			if !bytes.Equal(env, env2) {
				t.Errorf("round-trip not byte-identical: %d vs %d bytes", len(env), len(env2))
			}
		})
	}
}

func lines(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// sampleLines returns a well-formed batch for each advertised input
// kind, valid under every descriptor's default parameters.
func sampleLines(k InputKind) [][]byte {
	switch k {
	case InputItems:
		return lines("alpha", "beta", "gamma")
	case InputWeightedItems:
		return lines("alpha\t3", "beta")
	case InputSignedItems:
		return lines("alpha\t-2", "beta\t+4", "gamma")
	case InputFloats:
		return lines("1.5", "2.25", "-0.5")
	case InputUintValues:
		return lines("7\t2", "42")
	case InputTurnstile:
		return lines("3\t5", "9")
	case InputEvents:
		return lines("x", "x", "x")
	case InputEdges:
		return lines("0\t1", "2\t3")
	case InputWeightedFloatItems:
		return lines("alpha\t1.5", "beta")
	}
	return nil
}

// badLine returns a line the kind's parser must reject, or nil when
// every byte string is acceptable (plain items, events).
func badLine(k InputKind) []byte {
	switch k {
	case InputWeightedItems:
		return []byte("x\tbogus")
	case InputSignedItems:
		return []byte("x\t1.5")
	case InputFloats:
		return []byte("notafloat")
	case InputUintValues:
		return []byte("notanum")
	case InputTurnstile:
		return []byte("x\t1")
	case InputEdges:
		return []byte("5\t5") // self-loop
	case InputWeightedFloatItems:
		return []byte("x\t-1")
	}
	return nil
}

// TestIngestQueryRoundTrip drives every servable type end to end off
// the descriptor alone: construct, ingest the advertised line format,
// serialize, decode generically, and query the decoded copy.
func TestIngestQueryRoundTrip(t *testing.T) {
	for _, d := range All() {
		if !d.Servable() {
			continue
		}
		t.Run(d.Name, func(t *testing.T) {
			p, err := d.Validate(1, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := d.New(p)
			if err != nil {
				t.Fatal(err)
			}
			batch := sampleLines(d.Input)
			if batch == nil {
				t.Fatalf("no sample batch for input kind %v", d.Input)
			}
			if err := d.Bind.Ingest(inst, batch); err != nil {
				t.Fatalf("Ingest(%q): %v", batch, err)
			}
			env, err := Marshal(inst)
			if err != nil {
				t.Fatalf("MarshalBinary after ingest: %v", err)
			}
			decoded, dd, err := Decode(env)
			if err != nil {
				t.Fatalf("Decode after ingest: %v", err)
			}
			if dd != d {
				t.Fatalf("Decode resolved %q, want %q", dd.Name, d.Name)
			}
			if _, err := d.Bind.Query(decoded, url.Values{}); err != nil {
				t.Fatalf("Query on decoded instance: %v", err)
			}
		})
	}
}

// TestIngestRejectsBadLines checks batch atomicity: a batch with one
// malformed line fails as a whole with ErrInput and the instance still
// serializes identically to its pre-batch state.
func TestIngestRejectsBadLines(t *testing.T) {
	for _, d := range All() {
		bad := badLine(d.Input)
		if !d.Servable() || bad == nil {
			continue
		}
		t.Run(d.Name, func(t *testing.T) {
			p, err := d.Validate(1, nil)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := d.New(p)
			if err != nil {
				t.Fatal(err)
			}
			before, err := Marshal(inst)
			if err != nil {
				t.Fatal(err)
			}
			batch := append(sampleLines(d.Input), bad)
			if err := d.Bind.Ingest(inst, batch); !errors.Is(err, ErrInput) {
				t.Fatalf("Ingest with bad line %q: err = %v, want ErrInput", bad, err)
			}
			after, err := Marshal(inst)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before, after) {
				t.Error("rejected batch mutated the sketch (partial ingest)")
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	d, ok := Lookup("hll")
	if !ok {
		t.Fatal("hll not registered")
	}
	cases := map[string]map[string]float64{
		"unknown name":    {"nope": 1},
		"below min":       {"p": 3},
		"above max":       {"p": 19},
		"non-integer":     {"p": 4.5},
		"nan":             {"p": nan()},
		"unknown + valid": {"p": 14, "width": 100},
	}
	for name, raw := range cases {
		if _, err := d.Validate(1, raw); !errors.Is(err, ErrParams) {
			t.Errorf("%s: Validate(%v) err = %v, want ErrParams", name, raw, err)
		}
	}
	// Defaults pass, and explicit in-range values stick.
	p, err := d.Validate(7, map[string]float64{"p": 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Int("p") != 10 {
		t.Errorf("Validate kept seed=%d p=%d, want 7/10", p.Seed, p.Int("p"))
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestCapabilityExpectations pins the capability surface: at least 15
// servable types (the sketchd floor), and the exact sets of types that
// intentionally lack merge or serving support.
func TestCapabilityExpectations(t *testing.T) {
	servable, nonMergeable, nonServable := 0, []string{}, []string{}
	for _, d := range All() {
		if d.Servable() {
			servable++
		} else {
			nonServable = append(nonServable, d.Name)
		}
		if !d.Mergeable() {
			nonMergeable = append(nonMergeable, d.Name)
		}
	}
	if servable < 15 {
		t.Errorf("servable types = %d, want at least 15", servable)
	}
	wantNonServable := []string{"simhash"}
	wantNonMergeable := []string{"mrl", "simhash", "weightedreservoir"}
	if !equalStrings(nonServable, wantNonServable) {
		t.Errorf("non-servable types = %v, want %v", nonServable, wantNonServable)
	}
	if !equalStrings(nonMergeable, wantNonMergeable) {
		t.Errorf("non-mergeable types = %v, want %v", nonMergeable, wantNonMergeable)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDecodeRejects covers the generic decoder's failure taxonomy:
// short or bad-magic headers, unknown tags, and retired tags all fail
// with core.ErrCorrupt and a distinguishing message.
func TestDecodeRejects(t *testing.T) {
	envelope := func(tag byte) []byte { return []byte{'G', 'S', 'K', '1', tag, 1} }
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", []byte("GSK1")},
		{"bad magic", []byte("XXXX\x01\x01")},
		{"unknown tag", envelope(200)},
		{"reserved tag", envelope(core.TagL0Sampler)},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.data); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("Decode(%s): err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

// TestMergeThroughRegistry merges a decoded peer into a live instance
// through the descriptor bindings alone, for one representative of
// each mergeable family-shape, and checks a seed mismatch surfaces
// core.ErrIncompatible.
func TestMergeThroughRegistry(t *testing.T) {
	for _, d := range All() {
		if !d.Mergeable() || !d.Servable() {
			continue
		}
		t.Run(d.Name, func(t *testing.T) {
			p, err := d.Validate(1, nil)
			if err != nil {
				t.Fatal(err)
			}
			a, err := d.New(p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := d.New(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Bind.Ingest(b, sampleLines(d.Input)); err != nil {
				t.Fatal(err)
			}
			env, err := Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			peer, _, err := Decode(env)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Bind.Merge(a, peer); err != nil {
				t.Fatalf("Merge same-shape peer: %v", err)
			}
		})
	}
}
