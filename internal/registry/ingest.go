package registry

import (
	"errors"
	"fmt"
	"strconv"
)

// The ingest builders below turn one typed per-item update function
// into a batch Ingest binding with a uniform contract: parse and
// validate every line first, then apply — so a bad line rejects the
// whole batch with ErrInput and no partial state. Parsing is
// allocation-free for the integer formats (the hot server paths);
// re-running the parser in the apply loop is a few ns per line,
// cheaper than materializing a parsed-values slice.

// errBadWeight is the shared parse failure; callers wrap it with the
// offending bytes.
var errBadWeight = errors.New("expect decimal uint64")

// errBadSigned is the signed-integer parse failure.
var errBadSigned = errors.New("expect decimal int64")

// LastTab returns the index of the last tab in b, or -1. Ingest
// formats put the optional weight after the last tab so items may
// themselves contain tabs.
func LastTab(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == '\t' {
			return i
		}
	}
	return -1
}

// ParseWeight decodes a decimal uint64 from b without allocating — the
// strconv.ParseUint(string(b), …) it replaces copied every weight
// suffix onto the heap once per ingested line.
func ParseWeight(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, errBadWeight
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadWeight
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, errBadWeight
		}
		v = v*10 + d
	}
	return v, nil
}

// parseSigned decodes a decimal int64 with an optional leading sign,
// allocation-free like ParseWeight.
func parseSigned(b []byte) (int64, error) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	u, err := ParseWeight(b)
	if err != nil {
		return 0, errBadSigned
	}
	if neg {
		if u > 1<<63 {
			return 0, errBadSigned
		}
		return -int64(u), nil
	}
	if u > 1<<63-1 {
		return 0, errBadSigned
	}
	return int64(u), nil
}

// batchItemsIngest: InputItems for types with a pipelined batch entry
// point (AddBatch hashes each chunk fully before updating — the
// two-phase loop that lets consecutive items' cache misses overlap).
// The batch function must not retain the item slices.
func batchItemsIngest[T any](addBatch func(T, [][]byte)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		addBatch(c, items)
		return nil
	}
}

// itemsIngest: InputItems. The add function must not retain the item
// slice (or must copy, as the sample types do).
func itemsIngest[T any](add func(T, []byte)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		for _, item := range items {
			add(c, item)
		}
		return nil
	}
}

// weightedIngest: InputWeightedItems.
func weightedIngest[T any](add func(T, []byte, uint64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		for _, item := range items {
			if tab := LastTab(item); tab >= 0 {
				if _, err := ParseWeight(item[tab+1:]); err != nil {
					return fmt.Errorf("%w: weight %q: %v", ErrInput, item[tab+1:], err)
				}
			}
		}
		for _, item := range items {
			weight := uint64(1)
			if tab := LastTab(item); tab >= 0 {
				weight, _ = ParseWeight(item[tab+1:])
				item = item[:tab]
			}
			add(c, item, weight)
		}
		return nil
	}
}

// stringWeightedIngest: InputWeightedItems for string-keyed sketches
// (Misra-Gries, SpaceSaving). The string conversion copies, which
// doubles as the no-retention guarantee.
func stringWeightedIngest[T any](add func(T, string, uint64)) func(any, [][]byte) error {
	return weightedIngest[T](func(c T, item []byte, weight uint64) {
		add(c, string(item), weight)
	})
}

// signedIngest: InputSignedItems.
func signedIngest[T any](add func(T, []byte, int64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		for _, item := range items {
			if tab := LastTab(item); tab >= 0 {
				if _, err := parseSigned(item[tab+1:]); err != nil {
					return fmt.Errorf("%w: weight %q: %v", ErrInput, item[tab+1:], err)
				}
			}
		}
		for _, item := range items {
			weight := int64(1)
			if tab := LastTab(item); tab >= 0 {
				weight, _ = parseSigned(item[tab+1:])
				item = item[:tab]
			}
			add(c, item, weight)
		}
		return nil
	}
}

// floatIngest: InputFloats. Values are parsed into a batch slice
// before the first update.
func floatIngest[T any](add func(T, float64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		vals := make([]float64, len(items))
		for i, item := range items {
			v, err := strconv.ParseFloat(string(item), 64)
			if err != nil {
				return fmt.Errorf("%w: value %q: %v", ErrInput, item, err)
			}
			vals[i] = v
		}
		for _, v := range vals {
			add(c, v)
		}
		return nil
	}
}

// uintValuesIngest: InputUintValues. check rejects values outside the
// instance's domain before any update (q-digest panics past 2^logU).
func uintValuesIngest[T any](check func(T, uint64) error, add func(T, uint64, uint64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		parse := func(item []byte) (uint64, uint64, error) {
			weight := uint64(1)
			if tab := LastTab(item); tab >= 0 {
				w, err := ParseWeight(item[tab+1:])
				if err != nil {
					return 0, 0, fmt.Errorf("%w: weight %q: %v", ErrInput, item[tab+1:], err)
				}
				weight = w
				item = item[:tab]
			}
			v, err := ParseWeight(item)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: value %q: %v", ErrInput, item, err)
			}
			return v, weight, nil
		}
		for _, item := range items {
			v, _, err := parse(item)
			if err != nil {
				return err
			}
			if check != nil {
				if err := check(c, v); err != nil {
					return fmt.Errorf("%w: %v", ErrInput, err)
				}
			}
		}
		for _, item := range items {
			v, w, _ := parse(item)
			add(c, v, w)
		}
		return nil
	}
}

// turnstileIngest: InputTurnstile.
func turnstileIngest[T any](update func(T, uint64, int64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		parse := func(item []byte) (uint64, int64, error) {
			delta := int64(1)
			if tab := LastTab(item); tab >= 0 {
				d, err := parseSigned(item[tab+1:])
				if err != nil {
					return 0, 0, fmt.Errorf("%w: delta %q: %v", ErrInput, item[tab+1:], err)
				}
				delta = d
				item = item[:tab]
			}
			idx, err := ParseWeight(item)
			if err != nil {
				return 0, 0, fmt.Errorf("%w: index %q: %v", ErrInput, item, err)
			}
			return idx, delta, nil
		}
		for _, item := range items {
			if _, _, err := parse(item); err != nil {
				return err
			}
		}
		for _, item := range items {
			idx, delta, _ := parse(item)
			update(c, idx, delta)
		}
		return nil
	}
}

// eventsIngest: InputEvents — each line is one occurrence.
func eventsIngest[T any](incN func(T, uint64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		incN(c, uint64(len(items)))
		return nil
	}
}

// weightedFloatIngest: InputWeightedFloatItems (weighted reservoir;
// its Add panics on weight <= 0, so the batch pass rejects those).
func weightedFloatIngest[T any](add func(T, []byte, float64)) func(any, [][]byte) error {
	return func(inst any, items [][]byte) error {
		c, err := cast[T](inst)
		if err != nil {
			return err
		}
		parse := func(item []byte) ([]byte, float64, error) {
			weight := 1.0
			if tab := LastTab(item); tab >= 0 {
				w, err := strconv.ParseFloat(string(item[tab+1:]), 64)
				if err != nil || !(w > 0) {
					return nil, 0, fmt.Errorf("%w: weight %q: expect float64 > 0", ErrInput, item[tab+1:])
				}
				weight = w
				item = item[:tab]
			}
			return item, weight, nil
		}
		for _, item := range items {
			if _, _, err := parse(item); err != nil {
				return err
			}
		}
		for _, item := range items {
			it, w, _ := parse(item)
			add(c, it, w)
		}
		return nil
	}
}
