package registry

import (
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/frequency"
)

// topEntries renders a heavy-hitter table's entries, capped by the
// optional ?k= query parameter (default 32).
func topEntries(params url.Values, entries []frequency.Entry) ([]map[string]any, error) {
	limit := 32
	if ks := params.Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%w: k %q must be a positive integer", ErrParams, ks)
		}
		limit = v
	}
	if len(entries) > limit {
		entries = entries[:limit]
	}
	out := make([]map[string]any, len(entries))
	for i, e := range entries {
		out[i] = map[string]any{"item": e.Item, "count": e.Count}
	}
	return out, nil
}

// countMinShape validates the shared width/depth/fused parameter
// convention of the countmin constructors (plain and serving must
// agree so WAL replay restores identical addressing).
func countMinShape(p Params) (width, depth int, fused bool, err error) {
	width, depth, fused = p.Int("width"), p.Int("depth"), p.Int("fused") == 1
	if width*depth > 1<<26 {
		return 0, 0, false, fmt.Errorf("%w: countmin shape %dx%d", ErrParams, width, depth)
	}
	if fused && depth > 21 {
		return 0, 0, false, fmt.Errorf("%w: fused countmin depth %d must be <= 21", ErrParams, depth)
	}
	return width, depth, fused, nil
}

func init() {
	register(Descriptor{
		Tag:    core.TagCountMin,
		Name:   "countmin",
		Family: "frequency",
		Doc:    "Count-Min sketch (biased-up point frequency estimates)",
		Input:  InputWeightedItems,
		Params: []Param{
			{Name: "width", Doc: "counters per row", Def: 2048, Min: 1, Max: 1 << 24},
			{Name: "depth", Doc: "hash rows", Def: 4, Min: 1, Max: 64},
			{Name: "fused", Doc: "1 = fused cache-line layout (depth <= 21)", Def: 0, Min: 0, Max: 1},
		},
		New: func(p Params) (any, error) {
			width, depth, fused, err := countMinShape(p)
			if err != nil {
				return nil, err
			}
			if fused {
				return frequency.NewCountMinFused(width, depth, p.Seed), nil
			}
			return frequency.NewCountMin(width, depth, p.Seed), nil
		},
		NewServing: func(p Params) (any, error) {
			width, depth, fused, err := countMinShape(p)
			if err != nil {
				return nil, err
			}
			if fused {
				return concurrent.NewAtomicCountMinFused(width, depth, p.Seed), nil
			}
			return concurrent.NewAtomicCountMin(width, depth, p.Seed), nil
		},
		NewServingBuffered: func(p Params) (any, error) {
			width, depth, fused, err := countMinShape(p)
			if err != nil {
				return nil, err
			}
			return concurrent.NewBufferedCountMinOpts(width, depth, p.Seed, fused, concurrent.DefaultWriterBuffer), nil
		},
		Decode: decode1[frequency.CountMin](),
		Bind: Bindings{
			Ingest: weightedIngest((*frequency.CountMin).Add),
			Query: query1(func(c *frequency.CountMin, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{"estimate": c.Estimate([]byte(item)), "n": c.N()}, nil
				}
				return map[string]any{"n": c.N(), "width": c.Width(), "depth": c.Depth()}, nil
			}),
			Merge: merge2((*frequency.CountMin).Merge),
		},
		Serve: &Bindings{
			Ingest: func(inst any, items [][]byte) error {
				if b, ok := inst.(*concurrent.BufferedCountMin); ok {
					return bufferedCountMinIngest(b, items)
				}
				return atomicCountMinIngest(inst, items)
			},
			Query: func(inst any, params url.Values) (map[string]any, error) {
				if b, ok := inst.(*concurrent.BufferedCountMin); ok {
					if item := params.Get("item"); item != "" {
						return staleness(map[string]any{"estimate": b.Estimate([]byte(item)), "n": b.N()}, b.StalenessBound()), nil
					}
					return staleness(map[string]any{"n": b.N(), "width": b.Width(), "depth": b.Depth()}, b.StalenessBound()), nil
				}
				c, err := cast[*concurrent.AtomicCountMin](inst)
				if err != nil {
					return nil, err
				}
				if item := params.Get("item"); item != "" {
					return map[string]any{"estimate": c.Estimate([]byte(item)), "n": c.N()}, nil
				}
				return map[string]any{"n": c.N(), "width": c.Width(), "depth": c.Depth()}, nil
			},
			Merge: func(dst, src any) error {
				if b, ok := dst.(*concurrent.BufferedCountMin); ok {
					s, err := cast[*frequency.CountMin](src)
					if err != nil {
						return err
					}
					return b.Merge(s)
				}
				return merge2((*concurrent.AtomicCountMin).Merge)(dst, src)
			},
		},
	})

	register(Descriptor{
		Tag:    core.TagCountSketch,
		Name:   "countsketch",
		Family: "frequency",
		Doc:    "Count-Sketch (unbiased signed frequency estimates, F2)",
		Input:  InputSignedItems,
		Params: []Param{
			{Name: "width", Doc: "counters per row", Def: 2048, Min: 1, Max: 1 << 24},
			{Name: "depth", Doc: "hash rows (odd; even is bumped)", Def: 5, Min: 1, Max: 63},
			{Name: "fused", Doc: "1 = fused cache-line layout (depth <= 21)", Def: 0, Min: 0, Max: 1},
		},
		New: func(p Params) (any, error) {
			width, depth, fused := p.Int("width"), p.Int("depth"), p.Int("fused") == 1
			if width*depth > 1<<26 {
				return nil, fmt.Errorf("%w: countsketch shape %dx%d", ErrParams, width, depth)
			}
			if fused {
				if depth > 21 {
					return nil, fmt.Errorf("%w: fused countsketch depth %d must be <= 21", ErrParams, depth)
				}
				return frequency.NewCountSketchFused(width, depth, p.Seed), nil
			}
			return frequency.NewCountSketch(width, depth, p.Seed), nil
		},
		Decode: decode1[frequency.CountSketch](),
		Bind: Bindings{
			Ingest: signedIngest((*frequency.CountSketch).Add),
			Query: query1(func(c *frequency.CountSketch, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{"estimate": c.Estimate([]byte(item)), "n": c.N()}, nil
				}
				return map[string]any{
					"n":     c.N(),
					"width": c.Width(),
					"depth": c.Depth(),
					"f2":    c.F2Estimate(),
				}, nil
			}),
			Merge: merge2((*frequency.CountSketch).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagMisraGries,
		Name:   "misragries",
		Family: "frequency",
		Doc:    "Misra–Gries heavy hitters (k counters, deterministic)",
		Input:  InputWeightedItems,
		Params: []Param{
			{Name: "k", Doc: "tracked counters", Def: 64, Min: 1, Max: 1 << 20},
		},
		New: func(p Params) (any, error) {
			return frequency.NewMisraGries(p.Int("k")), nil
		},
		Decode: decode1[frequency.MisraGries](),
		Bind: Bindings{
			Ingest: stringWeightedIngest((*frequency.MisraGries).Add),
			Query: query1(func(m *frequency.MisraGries, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"estimate":    m.Estimate(item),
						"error_bound": m.ErrorBound(),
						"n":           m.N(),
					}, nil
				}
				top, err := topEntries(params, m.Entries())
				if err != nil {
					return nil, err
				}
				return map[string]any{"n": m.N(), "k": m.K(), "entries": top}, nil
			}),
			Merge: merge2((*frequency.MisraGries).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagSpaceSaving,
		Name:   "spacesaving",
		Family: "frequency",
		Doc:    "SpaceSaving heavy hitters (k counters with overestimates)",
		Input:  InputWeightedItems,
		Params: []Param{
			{Name: "k", Doc: "tracked counters", Def: 64, Min: 1, Max: 1 << 20},
		},
		New: func(p Params) (any, error) {
			return frequency.NewSpaceSaving(p.Int("k")), nil
		},
		Decode: decode1[frequency.SpaceSaving](),
		Bind: Bindings{
			Ingest: stringWeightedIngest((*frequency.SpaceSaving).Add),
			Query: query1(func(s *frequency.SpaceSaving, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"estimate":   s.Estimate(item),
						"guaranteed": s.GuaranteedCount(item),
						"n":          s.N(),
					}, nil
				}
				top, err := topEntries(params, s.Entries())
				if err != nil {
					return nil, err
				}
				return map[string]any{"n": s.N(), "k": s.K(), "entries": top}, nil
			}),
			Merge: merge2((*frequency.SpaceSaving).Merge),
		},
	})
}
