package registry

import (
	"fmt"
	"net/url"

	"repro/internal/concurrent"
	"repro/internal/core"
	"repro/internal/frequency"
)

// sfShape validates the shared slim/fat shape convention of the
// sfsketch constructors (plain and serving must agree so WAL replay
// restores identical addressing). The fat stage is ratio× the slim
// width at the same depth — the paper's regime, where the fat stage
// sets the accuracy and the slim stage sets the wire bytes.
func sfShape(p Params) (slimWidth, slimDepth, fatWidth, fatDepth int, err error) {
	slimWidth, slimDepth = p.Int("width"), p.Int("depth")
	ratio := p.Int("ratio")
	fatWidth, fatDepth = slimWidth*ratio, slimDepth
	if slimWidth*slimDepth*(1+ratio) > 1<<26 {
		return 0, 0, 0, 0, fmt.Errorf("%w: sfsketch shape %dx%d ratio %d", ErrParams, slimWidth, slimDepth, ratio)
	}
	return slimWidth, slimDepth, fatWidth, fatDepth, nil
}

func sfQueryDoc(s *frequency.SFSketch) map[string]any {
	return map[string]any{
		"n":          s.N(),
		"width":      s.Width(),
		"depth":      s.Depth(),
		"fat_width":  s.FatWidth(),
		"fat_depth":  s.FatDepth(),
		"slim_bytes": s.SlimSizeBytes(),
		"slim_only":  s.SlimOnly(),
	}
}

func init() {
	register(Descriptor{
		Tag:    core.TagSFSketch,
		Name:   "sfsketch",
		Family: "frequency",
		Doc:    "SF-sketch (two-stage Slim-Fat Count-Min: fat updates, slim wire bytes)",
		Input:  InputWeightedItems,
		Params: []Param{
			{Name: "width", Doc: "slim-stage counters per row (the wire dimension)", Def: 512, Min: 1, Max: 1 << 22},
			{Name: "depth", Doc: "hash rows, both stages", Def: 4, Min: 1, Max: 64},
			{Name: "ratio", Doc: "fat-stage width multiplier", Def: 8, Min: 1, Max: 64},
		},
		New: func(p Params) (any, error) {
			sw, sd, fw, fd, err := sfShape(p)
			if err != nil {
				return nil, err
			}
			return frequency.NewSFSketch(sw, sd, fw, fd, p.Seed), nil
		},
		NewServing: func(p Params) (any, error) {
			sw, sd, fw, fd, err := sfShape(p)
			if err != nil {
				return nil, err
			}
			return concurrent.NewServingSF(sw, sd, fw, fd, p.Seed), nil
		},
		Decode: decode1[frequency.SFSketch](),
		Bind: Bindings{
			Ingest: weightedIngest((*frequency.SFSketch).Add),
			Query: query1(func(s *frequency.SFSketch, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"estimate":     s.Estimate([]byte(item)),
						"fat_estimate": s.FatEstimate([]byte(item)),
						"n":            s.N(),
					}, nil
				}
				return sfQueryDoc(s), nil
			}),
			Merge: merge2((*frequency.SFSketch).Merge),
		},
		Serve: &Bindings{
			Ingest: weightedIngest((*concurrent.ServingSF).Add),
			Query: func(inst any, params url.Values) (map[string]any, error) {
				s, err := cast[*concurrent.ServingSF](inst)
				if err != nil {
					return nil, err
				}
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"estimate":     s.Estimate([]byte(item)),
						"fat_estimate": s.FatEstimate([]byte(item)),
						"n":            s.N(),
					}, nil
				}
				return sfQueryDoc(s.Snapshot()), nil
			},
			Merge: merge2((*concurrent.ServingSF).Merge),
		},
	})
}
