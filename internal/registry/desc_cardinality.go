package registry

import (
	"fmt"
	"net/url"
	"runtime"

	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/core"
)

func init() {
	register(Descriptor{
		Tag:    core.TagHLL,
		Name:   "hll",
		Family: "cardinality",
		Doc:    "HyperLogLog distinct counter (2^p six-bit registers)",
		Input:  InputItems,
		Params: []Param{
			{Name: "p", Doc: "precision: 2^p registers", Def: 14, Min: 4, Max: 18},
			{Name: "shards", Doc: "serving-mode write shards (0 = GOMAXPROCS)", Def: 0, Min: 0, Max: 256},
		},
		New: func(p Params) (any, error) {
			return cardinality.NewHLL(p.Uint8("p"), p.Seed), nil
		},
		NewServing: func(p Params) (any, error) {
			shards := p.Int("shards")
			if shards == 0 {
				shards = runtime.GOMAXPROCS(0)
			}
			return concurrent.NewShardedHLL(shards, p.Uint8("p"), p.Seed), nil
		},
		NewServingBuffered: func(p Params) (any, error) {
			return concurrent.NewBufferedHLL(p.Uint8("p"), p.Seed), nil
		},
		Decode: decode1[cardinality.HLL](),
		Bind: Bindings{
			Ingest: batchItemsIngest((*cardinality.HLL).AddBatch),
			Query: query1(func(h *cardinality.HLL, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate": h.Estimate(),
					"p":        h.P(),
					"std_err":  h.StandardError(),
				}, nil
			}),
			Merge: merge2((*cardinality.HLL).Merge),
		},
		Serve: &Bindings{
			Ingest: func(inst any, items [][]byte) error {
				if b, ok := inst.(*concurrent.BufferedHLL); ok {
					return bufferedHLLIngest(b, items)
				}
				s, err := cast[*concurrent.ShardedHLL](inst)
				if err != nil {
					return err
				}
				s.Handle().AddBatch(items)
				return nil
			},
			Query: func(inst any, _ url.Values) (map[string]any, error) {
				if b, ok := inst.(*concurrent.BufferedHLL); ok {
					return staleness(map[string]any{"estimate": b.Estimate(), "p": b.P()}, b.StalenessBound()), nil
				}
				s, err := cast[*concurrent.ShardedHLL](inst)
				if err != nil {
					return nil, err
				}
				return map[string]any{"estimate": s.Estimate(), "p": s.P()}, nil
			},
			Merge: func(dst, src any) error {
				if b, ok := dst.(*concurrent.BufferedHLL); ok {
					s, err := cast[*cardinality.HLL](src)
					if err != nil {
						return err
					}
					return b.Merge(s)
				}
				return merge2((*concurrent.ShardedHLL).Merge)(dst, src)
			},
		},
	})

	register(Descriptor{
		Tag:    core.TagHLLPP,
		Name:   "hllpp",
		Family: "cardinality",
		Doc:    "HyperLogLog++ (sparse mode + bias-corrected dense mode)",
		Input:  InputItems,
		Params: []Param{
			{Name: "p", Doc: "precision: 2^p registers when dense", Def: 14, Min: 4, Max: 18},
		},
		New: func(p Params) (any, error) {
			return cardinality.NewHLLPP(p.Uint8("p"), p.Seed), nil
		},
		Decode: decode1[cardinality.HLLPP](),
		Bind: Bindings{
			Ingest: itemsIngest((*cardinality.HLLPP).Add),
			Query: query1(func(h *cardinality.HLLPP, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate": h.Estimate(),
					"p":        h.P(),
					"sparse":   h.IsSparse(),
				}, nil
			}),
			Merge: merge2((*cardinality.HLLPP).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagLogLog,
		Name:   "loglog",
		Family: "cardinality",
		Doc:    "Durand–Flajolet LogLog distinct counter",
		Input:  InputItems,
		Params: []Param{
			{Name: "p", Doc: "precision: 2^p registers", Def: 12, Min: 4, Max: 16},
		},
		New: func(p Params) (any, error) {
			return cardinality.NewLogLog(p.Uint8("p"), p.Seed), nil
		},
		Decode: decode1[cardinality.LogLog](),
		Bind: Bindings{
			Ingest: itemsIngest((*cardinality.LogLog).Add),
			Query: query1(func(l *cardinality.LogLog, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate": l.Estimate(),
					"m":        l.M(),
					"std_err":  l.StandardError(),
				}, nil
			}),
			Merge: merge2((*cardinality.LogLog).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagFM,
		Name:   "fm",
		Family: "cardinality",
		Doc:    "Flajolet–Martin distinct counter (m first-zero bitmaps)",
		Input:  InputItems,
		Params: []Param{
			{Name: "m", Doc: "bitmap count (power of two)", Def: 64, Min: 2, Max: 65536},
		},
		New: func(p Params) (any, error) {
			m := p.Int("m")
			if m&(m-1) != 0 {
				return nil, fmt.Errorf("%w: fm m=%d must be a power of two", ErrParams, m)
			}
			return cardinality.NewFM(m, p.Seed), nil
		},
		Decode: decode1[cardinality.FM](),
		Bind: Bindings{
			Ingest: itemsIngest((*cardinality.FM).Add),
			Query: query1(func(f *cardinality.FM, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate": f.Estimate(),
					"m":        f.M(),
					"std_err":  f.StandardError(),
				}, nil
			}),
			Merge: merge2((*cardinality.FM).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagKMV,
		Name:   "kmv",
		Family: "cardinality",
		Doc:    "k-minimum-values distinct counter (bottom-k hash sample)",
		Input:  InputItems,
		Params: []Param{
			{Name: "k", Doc: "retained minimum hashes", Def: 1024, Min: 3, Max: 1 << 24},
		},
		New: func(p Params) (any, error) {
			return cardinality.NewKMV(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[cardinality.KMV](),
		Bind: Bindings{
			Ingest: itemsIngest((*cardinality.KMV).Add),
			Query: query1(func(s *cardinality.KMV, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate": s.Estimate(),
					"k":        s.K(),
					"std_err":  s.StandardError(),
				}, nil
			}),
			Merge: merge2((*cardinality.KMV).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagTheta,
		Name:   "theta",
		Family: "cardinality",
		Doc:    "theta sketch (bottom-k with set operations)",
		Input:  InputItems,
		Params: []Param{
			{Name: "k", Doc: "nominal retained entries", Def: 4096, Min: 16, Max: 1 << 24},
		},
		New: func(p Params) (any, error) {
			return cardinality.NewTheta(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[cardinality.Theta](),
		Bind: Bindings{
			Ingest: itemsIngest((*cardinality.Theta).Add),
			Query: query1(func(t *cardinality.Theta, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"estimate":   t.Estimate(),
					"retained":   t.Retained(),
					"k":          t.K(),
					"estimating": t.IsEstimationMode(),
				}, nil
			}),
			Merge: merge2((*cardinality.Theta).Merge),
		},
	})
}
