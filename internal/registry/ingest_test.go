package registry

import (
	"strconv"
	"testing"
)

func TestParseWeight(t *testing.T) {
	good := map[string]uint64{
		"0":                    0,
		"1":                    1,
		"42":                   42,
		"18446744073709551615": ^uint64(0),
	}
	for in, want := range good {
		got, err := ParseWeight([]byte(in))
		if err != nil || got != want {
			t.Errorf("ParseWeight(%q) = %d, %v; want %d, nil", in, got, err, want)
		}
	}
	bad := []string{
		"", "-1", "+1", " 1", "1 ", "1.5", "0x10", "abc",
		"18446744073709551616",  // max uint64 + 1
		"99999999999999999999",  // 20 digits, overflows
		"184467440737095516150", // 21 digits
	}
	for _, in := range bad {
		if got, err := ParseWeight([]byte(in)); err == nil {
			t.Errorf("ParseWeight(%q) = %d, nil; want error", in, got)
		}
	}
	// Cross-check against strconv over a spread of values.
	for _, v := range []uint64{0, 7, 1 << 20, 1 << 40, ^uint64(0) - 1} {
		s := strconv.FormatUint(v, 10)
		got, err := ParseWeight([]byte(s))
		if err != nil || got != v {
			t.Errorf("ParseWeight(%q) = %d, %v; want %d, nil", s, got, err, v)
		}
	}
}

func TestParseSigned(t *testing.T) {
	good := map[string]int64{
		"0":                    0,
		"5":                    5,
		"+5":                   5,
		"-5":                   -5,
		"9223372036854775807":  1<<63 - 1,
		"-9223372036854775808": -1 << 63,
	}
	for in, want := range good {
		got, err := parseSigned([]byte(in))
		if err != nil || got != want {
			t.Errorf("parseSigned(%q) = %d, %v; want %d, nil", in, got, err, want)
		}
	}
	bad := []string{
		"", "-", "+", "--1", " 1", "1.5", "abc",
		"9223372036854775808",  // int64 max + 1
		"-9223372036854775809", // int64 min - 1
	}
	for _, in := range bad {
		if got, err := parseSigned([]byte(in)); err == nil {
			t.Errorf("parseSigned(%q) = %d, nil; want error", in, got)
		}
	}
}

func TestLastTab(t *testing.T) {
	cases := map[string]int{
		"":            -1,
		"plain":       -1,
		"a\tb":        1,
		"a\tb\tc":     3,
		"\tleading":   0,
		"trailing\t":  8,
		"a\t1\t2\t99": 5,
	}
	for in, want := range cases {
		if got := LastTab([]byte(in)); got != want {
			t.Errorf("LastTab(%q) = %d, want %d", in, got, want)
		}
	}
}
