package registry

import (
	"fmt"
	"net/url"

	"repro/internal/ams"
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graphsketch"
	"repro/internal/lsh"
)

func init() {
	register(Descriptor{
		Tag:    core.TagMinHash,
		Name:   "minhash",
		Family: "similarity",
		Doc:    "MinHash signature (Jaccard similarity between sets)",
		Input:  InputItems,
		Params: []Param{
			{Name: "k", Doc: "signature length", Def: 128, Min: 1, Max: 16384},
		},
		New: func(p Params) (any, error) {
			return lsh.NewMinHash(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[lsh.MinHash](),
		Bind: Bindings{
			Ingest: itemsIngest((*lsh.MinHash).Add),
			Query: query1(func(m *lsh.MinHash, _ url.Values) (map[string]any, error) {
				return map[string]any{"k": m.K()}, nil
			}),
			Merge: merge2((*lsh.MinHash).Merge),
		},
	})

	// SimHash serializes and decodes generically but has no streaming
	// ingest (it hashes dense vectors, not stream items), so it is
	// registered without Bind closures: Decode/inspect work, sketchd
	// refuses to create one. This is the capability gating working as
	// intended, not an omission.
	register(Descriptor{
		Tag:    core.TagSimHash,
		Name:   "simhash",
		Family: "similarity",
		Doc:    "SimHash random-hyperplane LSH (cosine similarity)",
		Input:  InputNone,
		Params: []Param{
			{Name: "d", Doc: "input dimensionality", Def: 64, Min: 1, Max: 4096},
			{Name: "bits", Doc: "signature bits", Def: 64, Min: 1, Max: 64},
		},
		New: func(p Params) (any, error) {
			return lsh.NewSimHash(p.Int("d"), p.Int("bits"), p.Seed), nil
		},
		Decode: decode1[lsh.SimHash](),
	})

	register(Descriptor{
		Tag:    core.TagMorris,
		Name:   "morris",
		Family: "counter",
		Doc:    "Morris approximate counter (log-log bits per count)",
		Input:  InputEvents,
		Params: []Param{
			{Name: "base", Doc: "growth base, > 1 (accuracy/space trade)", Def: 2, Min: 1, Max: 1e6, Float: true},
		},
		New: func(p Params) (any, error) {
			base := p.Float("base")
			if base <= 1 {
				return nil, fmt.Errorf("%w: morris base=%v must be above 1", ErrParams, base)
			}
			return counter.NewMorrisBase(base, p.Seed), nil
		},
		Decode: decode1[counter.Morris](),
		Bind: Bindings{
			Ingest: eventsIngest((*counter.Morris).IncrementN),
			Query: query1(func(m *counter.Morris, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"count":    m.Count(),
					"exponent": m.Exponent(),
					"base":     m.Base(),
				}, nil
			}),
			Merge: merge2((*counter.Morris).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagNelsonYu,
		Name:   "nelsonyu",
		Family: "counter",
		Doc:    "Nelson–Yu optimal approximate counter ((ε,δ) guarantees)",
		Input:  InputEvents,
		Params: []Param{
			{Name: "eps", Doc: "relative error, in (0,1)", Def: 0.05, Min: 0, Max: 1, Float: true},
			{Name: "delta", Doc: "failure probability, in (0,1)", Def: 0.01, Min: 0, Max: 1, Float: true},
		},
		New: func(p Params) (any, error) {
			eps, delta := p.Float("eps"), p.Float("delta")
			if eps == 0 {
				eps = 0.05
			}
			if delta == 0 {
				delta = 0.01
			}
			if eps >= 1 || delta >= 1 {
				return nil, fmt.Errorf("%w: nelsonyu eps=%v delta=%v out of (0,1)", ErrParams, eps, delta)
			}
			return counter.NewNelsonYu(eps, delta, p.Seed), nil
		},
		Decode: decode1[counter.NelsonYu](),
		Bind: Bindings{
			Ingest: eventsIngest((*counter.NelsonYu).IncrementN),
			Query: query1(func(c *counter.NelsonYu, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"count":       c.Count(),
					"repetitions": c.Repetitions(),
				}, nil
			}),
			Merge: merge2((*counter.NelsonYu).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagAMS,
		Name:   "ams",
		Family: "moments",
		Doc:    "AMS sketch (F2 / join-size estimation, turnstile items)",
		Input:  InputSignedItems,
		Params: []Param{
			{Name: "groups", Doc: "median groups", Def: 9, Min: 1, Max: 256},
			{Name: "per_group", Doc: "averaged estimators per group", Def: 256, Min: 1, Max: 1 << 16},
		},
		New: func(p Params) (any, error) {
			return ams.New(p.Int("groups"), p.Int("per_group"), p.Seed), nil
		},
		Decode: decode1[ams.Sketch](),
		Bind: Bindings{
			Ingest: signedIngest((*ams.Sketch).Add),
			Query: query1(func(s *ams.Sketch, _ url.Values) (map[string]any, error) {
				return map[string]any{"f2": s.F2(), "n": s.N()}, nil
			}),
			Merge: merge2((*ams.Sketch).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagGraphSketch,
		Name:   "graphsketch",
		Family: "graph",
		Doc:    "AGM graph sketch (connectivity from L0-sampled cut edges)",
		Input:  InputEdges,
		Params: []Param{
			{Name: "vertices", Doc: "vertex count n", Def: 1024, Min: 1, Max: 1 << 14},
			{Name: "rounds", Doc: "independent Borůvka rounds", Def: 12, Min: 1, Max: 64},
		},
		New: func(p Params) (any, error) {
			n, rounds := p.Int("vertices"), p.Int("rounds")
			if n*rounds > 1<<18 {
				return nil, fmt.Errorf("%w: graphsketch %d vertices x %d rounds over the %d sampler budget",
					ErrParams, n, rounds, 1<<18)
			}
			return graphsketch.New(n, rounds, p.Seed), nil
		},
		Decode: decode1[graphsketch.Sketch](),
		Bind: Bindings{
			Ingest: graphEdgeIngest,
			Query: query1(func(s *graphsketch.Sketch, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"vertices":   s.N(),
					"rounds":     s.Rounds(),
					"components": s.ComponentCount(),
				}, nil
			}),
			Merge: merge2((*graphsketch.Sketch).Merge),
		},
	})
}

// graphEdgeIngest parses "u\tv" edge lines, validating both endpoints
// against the sketch's vertex range before any update (AddEdge panics
// on out-of-range or self-loop edges).
func graphEdgeIngest(inst any, items [][]byte) error {
	s, err := cast[*graphsketch.Sketch](inst)
	if err != nil {
		return err
	}
	parse := func(item []byte) (int, int, error) {
		tab := LastTab(item)
		if tab < 0 {
			return 0, 0, fmt.Errorf("%w: edge %q: expect u\\tv", ErrInput, item)
		}
		u64, err1 := ParseWeight(item[:tab])
		v64, err2 := ParseWeight(item[tab+1:])
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("%w: edge %q: expect decimal vertex ids", ErrInput, item)
		}
		u, v := int(u64), int(v64)
		if u >= s.N() || v >= s.N() || u == v {
			return 0, 0, fmt.Errorf("%w: edge %q: vertices must be distinct and below %d", ErrInput, item, s.N())
		}
		return u, v, nil
	}
	for _, item := range items {
		if _, _, err := parse(item); err != nil {
			return err
		}
	}
	for _, item := range items {
		u, v, _ := parse(item)
		s.AddEdge(u, v)
	}
	return nil
}
