package registry

import (
	"fmt"
	"net/url"
	"strconv"

	"repro/internal/core"
	"repro/internal/quantile"
)

// qParam parses the ?q= rank parameter (default 0.5).
func qParam(params url.Values) (float64, error) {
	q := 0.5
	if qs := params.Get("q"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil || v < 0 || v > 1 {
			return 0, fmt.Errorf("%w: quantile %q out of [0,1]", ErrParams, qs)
		}
		q = v
	}
	return q, nil
}

func init() {
	register(Descriptor{
		Tag:    core.TagKLL,
		Name:   "kll",
		Family: "quantile",
		Doc:    "KLL quantile sketch (relative-compactor hierarchy)",
		Input:  InputFloats,
		Params: []Param{
			{Name: "k", Doc: "top-level capacity", Def: 200, Min: 8, Max: 1 << 16},
		},
		New: func(p Params) (any, error) {
			return quantile.NewKLL(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[quantile.KLL](),
		Bind: Bindings{
			Ingest: floatIngest((*quantile.KLL).Add),
			Query: query1(func(s *quantile.KLL, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
					"min":      s.Min(),
					"max":      s.Max(),
				}, nil
			}),
			Merge: merge2((*quantile.KLL).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagREQ,
		Name:   "req",
		Family: "quantile",
		Doc:    "REQ sketch (relative-error quantiles, accurate tails)",
		Input:  InputFloats,
		Params: []Param{
			{Name: "k", Doc: "section size (even; odd is bumped)", Def: 32, Min: 4, Max: 1 << 16},
		},
		New: func(p Params) (any, error) {
			return quantile.NewREQ(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[quantile.REQ](),
		Bind: Bindings{
			Ingest: floatIngest((*quantile.REQ).Add),
			Query: query1(func(s *quantile.REQ, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
					"min":      s.Min(),
					"max":      s.Max(),
				}, nil
			}),
			Merge: merge2((*quantile.REQ).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagGK,
		Name:   "gk",
		Family: "quantile",
		Doc:    "Greenwald–Khanna quantile summary (deterministic ε-rank)",
		Input:  InputFloats,
		Params: []Param{
			{Name: "eps", Doc: "rank error bound, in (0,1)", Def: 0.01, Min: 0, Max: 1, Float: true},
		},
		New: func(p Params) (any, error) {
			eps := p.Float("eps")
			if eps <= 0 || eps >= 1 {
				return nil, fmt.Errorf("%w: gk eps=%v out of (0,1)", ErrParams, eps)
			}
			return quantile.NewGK(eps), nil
		},
		Decode: decode1[quantile.GK](),
		Bind: Bindings{
			Ingest: floatIngest((*quantile.GK).Add),
			Query: query1(func(s *quantile.GK, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
					"eps":      s.Eps(),
				}, nil
			}),
			Merge: merge2((*quantile.GK).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagTDigest,
		Name:   "tdigest",
		Family: "quantile",
		Doc:    "t-digest (centroid clustering, accurate extreme quantiles)",
		Input:  InputFloats,
		Params: []Param{
			{Name: "compression", Doc: "centroid budget δ", Def: 100, Min: 10, Max: 1e6, Float: true},
		},
		New: func(p Params) (any, error) {
			return quantile.NewTDigest(p.Float("compression")), nil
		},
		Decode: decode1[quantile.TDigest](),
		Bind: Bindings{
			Ingest: floatIngest((*quantile.TDigest).Add),
			Query: query1(func(s *quantile.TDigest, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
					"min":      s.Min(),
					"max":      s.Max(),
				}, nil
			}),
			Merge: merge2((*quantile.TDigest).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagMRL,
		Name:   "mrl",
		Family: "quantile",
		Doc:    "Manku–Rajagopalan–Lindsay quantile sketch (b buffers of k)",
		Input:  InputFloats,
		Params: []Param{
			{Name: "b", Doc: "buffer count", Def: 8, Min: 2, Max: 64},
			{Name: "k", Doc: "buffer capacity", Def: 256, Min: 2, Max: 1 << 16},
		},
		New: func(p Params) (any, error) {
			return quantile.NewMRL(p.Int("b"), p.Int("k"), p.Seed), nil
		},
		Decode: decode1[quantile.MRL](),
		Bind: Bindings{
			// MRL's collapse scheme has no merge operation — the
			// descriptor leaves Merge nil and the server gates the
			// endpoint off (405).
			Ingest: floatIngest((*quantile.MRL).Add),
			Query: query1(func(s *quantile.MRL, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
				}, nil
			}),
		},
	})

	register(Descriptor{
		Tag:    core.TagQDigest,
		Name:   "qdigest",
		Family: "quantile",
		Doc:    "q-digest (bounded integer domain, sensor-network merging)",
		Input:  InputUintValues,
		Params: []Param{
			{Name: "logu", Doc: "domain exponent: values in [0,2^logu)", Def: 20, Min: 1, Max: 32},
			{Name: "k", Doc: "compression factor", Def: 256, Min: 1, Max: 1 << 20},
		},
		New: func(p Params) (any, error) {
			return quantile.NewQDigest(p.Uint8("logu"), p.Uint64("k")), nil
		},
		Decode: decode1[quantile.QDigest](),
		Bind: Bindings{
			Ingest: uintValuesIngest(
				func(s *quantile.QDigest, v uint64) error {
					if v >= 1<<s.LogU() {
						return fmt.Errorf("value %d outside domain [0,2^%d)", v, s.LogU())
					}
					return nil
				},
				(*quantile.QDigest).Add,
			),
			Query: query1(func(s *quantile.QDigest, params url.Values) (map[string]any, error) {
				q, err := qParam(params)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"q":        q,
					"quantile": s.Quantile(q),
					"n":        s.N(),
					"logu":     s.LogU(),
				}, nil
			}),
			Merge: merge2((*quantile.QDigest).Merge),
		},
	})
}
