package registry

import (
	"net/url"
	"sort"

	"repro/internal/core"
	"repro/internal/sample"
)

// sampleStrings renders up to limit sample items as strings.
func sampleStrings(items [][]byte, limit int) []string {
	if len(items) > limit {
		items = items[:limit]
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return out
}

func init() {
	register(Descriptor{
		Tag:    core.TagReservoir,
		Name:   "reservoir",
		Family: "sample",
		Doc:    "uniform reservoir sample of k items",
		Input:  InputItems,
		Params: []Param{
			{Name: "k", Doc: "sample capacity", Def: 100, Min: 1, Max: 1 << 20},
		},
		New: func(p Params) (any, error) {
			return sample.NewReservoir(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[sample.Reservoir](),
		Bind: Bindings{
			Ingest: itemsIngest((*sample.Reservoir).Add), // Add copies the item
			Query: query1(func(r *sample.Reservoir, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"n":      r.N(),
					"k":      r.K(),
					"sample": sampleStrings(r.Sample(), 64),
				}, nil
			}),
			Merge: merge2((*sample.Reservoir).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagWeightedReservoir,
		Name:   "weightedreservoir",
		Family: "sample",
		Doc:    "Efraimidis–Spirakis weighted reservoir sample",
		Input:  InputWeightedFloatItems,
		Params: []Param{
			{Name: "k", Doc: "sample capacity", Def: 100, Min: 1, Max: 1 << 20},
		},
		New: func(p Params) (any, error) {
			return sample.NewWeightedReservoir(p.Int("k"), p.Seed), nil
		},
		Decode: decode1[sample.WeightedReservoir](),
		Bind: Bindings{
			// A-ES reservoirs are not mergeable (the key streams are
			// per-instance); Merge stays nil.
			Ingest: weightedFloatIngest((*sample.WeightedReservoir).Add), // Add copies the item
			Query: query1(func(r *sample.WeightedReservoir, _ url.Values) (map[string]any, error) {
				return map[string]any{
					"n":      r.N(),
					"k":      r.K(),
					"sample": sampleStrings(r.Sample(), 64),
				}, nil
			}),
		},
	})

	register(Descriptor{
		Tag:    core.TagSparseRecovery,
		Name:   "sparserecovery",
		Family: "sample",
		Doc:    "s-sparse turnstile vector recovery (exact if ≤ s nonzeros)",
		Input:  InputTurnstile,
		Params: []Param{
			{Name: "s", Doc: "recoverable sparsity", Def: 32, Min: 1, Max: 4096},
		},
		New: func(p Params) (any, error) {
			return sample.NewSparseRecovery(p.Int("s"), p.Seed), nil
		},
		Decode: decode1[sample.SparseRecovery](),
		Bind: Bindings{
			Ingest: turnstileIngest((*sample.SparseRecovery).Update),
			Query: query1(func(sr *sample.SparseRecovery, _ url.Values) (map[string]any, error) {
				rec := sr.Recover()
				idx := make([]uint64, 0, len(rec))
				for i := range rec {
					idx = append(idx, i)
				}
				sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
				if len(idx) > 64 {
					idx = idx[:64]
				}
				out := make([]map[string]any, len(idx))
				for i, id := range idx {
					out[i] = map[string]any{"index": id, "weight": rec[id]}
				}
				return map[string]any{"recovered": len(rec), "entries": out}, nil
			}),
			Merge: merge2((*sample.SparseRecovery).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagL0SamplerFull,
		Name:   "l0sampler",
		Family: "sample",
		Doc:    "L0 sampler (uniform over nonzero turnstile coordinates)",
		Input:  InputTurnstile,
		Params: []Param{
			{Name: "s", Doc: "per-level sparsity", Def: 12, Min: 1, Max: 1024},
		},
		New: func(p Params) (any, error) {
			return sample.NewL0Sampler(p.Int("s"), p.Seed), nil
		},
		Decode: decode1[sample.L0Sampler](),
		Bind: Bindings{
			Ingest: turnstileIngest((*sample.L0Sampler).Update),
			Query: query1(func(l *sample.L0Sampler, _ url.Values) (map[string]any, error) {
				index, weight, ok := l.Sample()
				res := map[string]any{"ok": ok}
				if ok {
					res["index"] = index
					res["weight"] = weight
				}
				return res, nil
			}),
			Merge: merge2((*sample.L0Sampler).Merge),
		},
	})

	// The original single-level L0 sampler format was superseded in
	// place by TagL0SamplerFull; its tag is tombstoned so it can never
	// be reassigned, and Decode explains why such payloads are
	// undecodable.
	reserve(core.TagL0Sampler, "superseded by the full L0 sampler format, tag 29")
}
