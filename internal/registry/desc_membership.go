package registry

import (
	"fmt"
	"net/url"

	"repro/internal/bloom"
	"repro/internal/concurrent"
	"repro/internal/core"
)

// blockedBloomShape resolves the blocked filter's m/k/n/fpr parameter
// convention (explicit m+k wins; otherwise n/fpr sizing with the same
// defaults as classic bloom).
func blockedBloomShape(p Params) (m uint64, k int, n uint64, fpr float64, err error) {
	if m = p.Uint64("m"); m != 0 {
		k = p.Int("k")
		if k < 1 {
			return 0, 0, 0, 0, fmt.Errorf("%w: blockedbloom m=%d needs k in [1,64]", ErrParams, m)
		}
		return m, k, 0, 0, nil
	}
	n, fpr = p.Uint64("n"), p.Float("fpr")
	if n == 0 {
		n = 1_000_000
	}
	if fpr == 0 {
		fpr = 0.01
	}
	if fpr >= 1 {
		return 0, 0, 0, 0, fmt.Errorf("%w: blockedbloom fpr=%v must be below 1", ErrParams, fpr)
	}
	return 0, 0, n, fpr, nil
}

func init() {
	register(Descriptor{
		Tag:    core.TagBloom,
		Name:   "bloom",
		Family: "membership",
		Doc:    "Bloom filter (no false negatives, tunable FPR)",
		Input:  InputItems,
		Params: []Param{
			{Name: "m", Doc: "bit count (overrides n/fpr sizing)", Def: 0, Min: 0, Max: 1 << 33},
			{Name: "k", Doc: "hash functions (with m)", Def: 0, Min: 0, Max: 64},
			{Name: "n", Doc: "expected items (default 1e6)", Def: 0, Min: 0, Max: 1 << 30},
			{Name: "fpr", Doc: "target false-positive rate (default 0.01)", Def: 0, Min: 0, Max: 1, Float: true},
		},
		New: func(p Params) (any, error) {
			if m := p.Uint64("m"); m != 0 {
				k := p.Int("k")
				if k < 1 {
					return nil, fmt.Errorf("%w: bloom m=%d needs k in [1,64]", ErrParams, m)
				}
				return bloom.New(m, k, p.Seed), nil
			}
			n, fpr := p.Uint64("n"), p.Float("fpr")
			if n == 0 {
				n = 1_000_000
			}
			if fpr == 0 {
				fpr = 0.01
			}
			if fpr >= 1 {
				return nil, fmt.Errorf("%w: bloom fpr=%v must be below 1", ErrParams, fpr)
			}
			return bloom.NewWithEstimates(n, fpr, p.Seed), nil
		},
		Decode: decode1[bloom.Filter](),
		Bind: Bindings{
			Ingest: batchItemsIngest((*bloom.Filter).AddBatch),
			Query: query1(func(f *bloom.Filter, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"contains":   f.Contains([]byte(item)),
						"fill_ratio": f.FillRatio(),
					}, nil
				}
				return map[string]any{
					"m":             f.M(),
					"k":             f.K(),
					"n":             f.N(),
					"fill_ratio":    f.FillRatio(),
					"estimated_fpr": f.EstimatedFPR(),
				}, nil
			}),
			Merge: merge2((*bloom.Filter).Merge),
		},
	})

	register(Descriptor{
		Tag:    core.TagBlockedBloom,
		Name:   "blockedbloom",
		Family: "membership",
		Doc:    "cache-line-blocked Bloom filter (one 512-bit block per item; faster, slightly higher FPR)",
		Input:  InputItems,
		Params: []Param{
			{Name: "m", Doc: "bit count, rounded up to 512-bit blocks (overrides n/fpr sizing)", Def: 0, Min: 0, Max: 1 << 33},
			{Name: "k", Doc: "bit probes per block (with m)", Def: 0, Min: 0, Max: 64},
			{Name: "n", Doc: "expected items (default 1e6)", Def: 0, Min: 0, Max: 1 << 30},
			{Name: "fpr", Doc: "target false-positive rate before blocking penalty (default 0.01)", Def: 0, Min: 0, Max: 1, Float: true},
		},
		New: func(p Params) (any, error) {
			m, k, n, fpr, err := blockedBloomShape(p)
			if err != nil {
				return nil, err
			}
			if m != 0 {
				return bloom.NewBlocked(m, k, p.Seed), nil
			}
			return bloom.NewBlockedWithEstimates(n, fpr, p.Seed), nil
		},
		NewServing: func(p Params) (any, error) {
			m, k, n, fpr, err := blockedBloomShape(p)
			if err != nil {
				return nil, err
			}
			if m == 0 {
				shape := bloom.NewBlockedWithEstimates(n, fpr, p.Seed)
				m, k = shape.M(), shape.K()
			}
			return concurrent.NewAtomicBlockedBloom(m, k, p.Seed), nil
		},
		NewServingBuffered: func(p Params) (any, error) {
			m, k, n, fpr, err := blockedBloomShape(p)
			if err != nil {
				return nil, err
			}
			if m == 0 {
				shape := bloom.NewBlockedWithEstimates(n, fpr, p.Seed)
				m, k = shape.M(), shape.K()
			}
			return concurrent.NewBufferedBlockedBloom(m, k, p.Seed), nil
		},
		Decode: decode1[bloom.BlockedFilter](),
		Bind: Bindings{
			Ingest: batchItemsIngest((*bloom.BlockedFilter).AddBatch),
			Query: query1(func(f *bloom.BlockedFilter, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{
						"contains":   f.Contains([]byte(item)),
						"fill_ratio": f.FillRatio(),
					}, nil
				}
				return map[string]any{
					"m":             f.M(),
					"k":             f.K(),
					"n":             f.N(),
					"blocks":        f.Blocks(),
					"fill_ratio":    f.FillRatio(),
					"estimated_fpr": f.EstimatedFPR(),
				}, nil
			}),
			Merge: merge2((*bloom.BlockedFilter).Merge),
		},
		Serve: &Bindings{
			Ingest: func(inst any, items [][]byte) error {
				if b, ok := inst.(*concurrent.BufferedBlockedBloom); ok {
					return bufferedBloomIngest(b, items)
				}
				return atomicBloomIngest(inst, items)
			},
			Query: func(inst any, params url.Values) (map[string]any, error) {
				if b, ok := inst.(*concurrent.BufferedBlockedBloom); ok {
					if item := params.Get("item"); item != "" {
						return staleness(map[string]any{"contains": b.Contains([]byte(item))}, b.StalenessBound()), nil
					}
					return staleness(map[string]any{"m": b.M(), "k": b.K(), "n": b.N()}, b.StalenessBound()), nil
				}
				f, err := cast[*concurrent.AtomicBlockedBloom](inst)
				if err != nil {
					return nil, err
				}
				if item := params.Get("item"); item != "" {
					return map[string]any{"contains": f.Contains([]byte(item))}, nil
				}
				return map[string]any{"m": f.M(), "k": f.K(), "n": f.N()}, nil
			},
			Merge: func(dst, src any) error {
				if b, ok := dst.(*concurrent.BufferedBlockedBloom); ok {
					s, err := cast[*bloom.BlockedFilter](src)
					if err != nil {
						return err
					}
					return b.Merge(s)
				}
				return merge2((*concurrent.AtomicBlockedBloom).Merge)(dst, src)
			},
		},
	})

	register(Descriptor{
		Tag:    core.TagCountingBloom,
		Name:   "countingbloom",
		Family: "membership",
		Doc:    "counting Bloom filter (membership with deletions)",
		Input:  InputItems,
		Params: []Param{
			{Name: "m", Doc: "counter count", Def: 1 << 20, Min: 1, Max: 1 << 28},
			{Name: "k", Doc: "hash functions", Def: 4, Min: 1, Max: 64},
		},
		New: func(p Params) (any, error) {
			return bloom.NewCounting(p.Uint64("m"), p.Int("k"), p.Seed), nil
		},
		Decode: decode1[bloom.CountingFilter](),
		Bind: Bindings{
			Ingest: itemsIngest((*bloom.CountingFilter).Add),
			Query: query1(func(f *bloom.CountingFilter, params url.Values) (map[string]any, error) {
				if item := params.Get("item"); item != "" {
					return map[string]any{"contains": f.Contains([]byte(item))}, nil
				}
				return map[string]any{"n": f.N(), "bytes": f.SizeBytes()}, nil
			}),
			Merge: merge2((*bloom.CountingFilter).Merge),
		},
	})
}
