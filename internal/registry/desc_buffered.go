package registry

// Serving bindings for the local-buffer/global-propagation variants.
// The buffered families share Serve bindings with their atomic
// siblings (the Serve closures in the descriptors dispatch on the
// concrete instance type), so the helpers here carry only what differs:
// batch ingest through a pooled writer handle and queries that report
// the staleness bound alongside the estimate.
//
// Ingest keeps the registry's validate-whole-batch-then-apply contract
// and flushes the writer at batch end — the WAL logs whole batches, so
// batch-end flush makes the WAL's logging granularity the propagation
// handoff granularity, and a snapshot capture (which syncs) provably
// contains every logged batch.

import (
	"fmt"

	"repro/internal/concurrent"
)

// Hot-path atomic ingest closures hoisted to package level so the
// dispatching Serve bindings don't rebuild them per batch.
var (
	atomicCountMinIngest = weightedIngest((*concurrent.AtomicCountMin).Add)
	atomicBloomIngest    = batchItemsIngest((*concurrent.AtomicBlockedBloom).AddBatch)
)

// bufferedCountMinIngest folds a weighted-items batch through a pooled
// writer handle: parse validation first, then alloc-free buffered
// appends, then one flush.
func bufferedCountMinIngest(c *concurrent.BufferedCountMin, items [][]byte) error {
	for _, item := range items {
		if tab := LastTab(item); tab >= 0 {
			if _, err := ParseWeight(item[tab+1:]); err != nil {
				return fmt.Errorf("%w: weight %q: %v", ErrInput, item[tab+1:], err)
			}
		}
	}
	w := c.PooledWriter()
	for _, item := range items {
		weight := uint64(1)
		if tab := LastTab(item); tab >= 0 {
			weight, _ = ParseWeight(item[tab+1:])
			item = item[:tab]
		}
		w.Add(item, weight)
	}
	w.Flush()
	c.ReleaseWriter(w)
	return nil
}

// bufferedHLLIngest folds an items batch through a pooled writer.
func bufferedHLLIngest(h *concurrent.BufferedHLL, items [][]byte) error {
	w := h.PooledWriter()
	w.AddBatch(items)
	w.Flush()
	h.ReleaseWriter(w)
	return nil
}

// bufferedBloomIngest folds an items batch through a pooled writer.
func bufferedBloomIngest(f *concurrent.BufferedBlockedBloom, items [][]byte) error {
	w := f.PooledWriter()
	w.AddBatch(items)
	w.Flush()
	f.ReleaseWriter(w)
	return nil
}

// staleness annotates a buffered query response with the consistency
// contract: reads are wait-free and may miss at most staleness_bound
// items still in writer buffers.
func staleness(m map[string]any, bound int) map[string]any {
	m["staleness_bound"] = bound
	return m
}
