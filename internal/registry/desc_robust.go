package registry

import (
	"net/url"

	"repro/internal/core"
	"repro/internal/robust"
)

func init() {
	register(Descriptor{
		Tag:    core.TagRobustDistinct,
		Name:   "robustdistinct",
		Family: "robust",
		Doc: "adversarially robust distinct counter: sketch-switching over lambda " +
			"independent HLL copies, with optional noisy (1+rho)-grid release and " +
			"Bernoulli-q subsampled ingest",
		Input: InputItems,
		Params: []Param{
			{Name: "p", Doc: "HLL precision per copy: 2^p registers", Def: 12, Min: 4, Max: 18},
			{Name: "lambda", Doc: "independent copies (robustness horizon)", Def: 8, Min: 1, Max: 1024},
			{Name: "eps", Doc: "switching threshold: output re-bases on (1+eps) drift", Def: 0.05, Min: 0.001, Max: 0.5, Float: true},
			{Name: "rho", Doc: "noisy-release rounding grid (0: exact release)", Def: 0, Min: 0, Max: 0.99, Float: true},
			{Name: "q", Doc: "Bernoulli ingest-admission rate (1: admit everything)", Def: 1, Min: 0.001, Max: 1, Float: true},
		},
		New: func(p Params) (any, error) {
			return robust.NewDefendedDistinct(p.Float("eps"), p.Int("lambda"), p.Uint8("p"),
				p.Seed, p.Float("rho"), p.Float("q")), nil
		},
		NewServing: func(p Params) (any, error) {
			return robust.NewServingDistinct(p.Float("eps"), p.Int("lambda"), p.Uint8("p"),
				p.Seed, p.Float("rho"), p.Float("q")), nil
		},
		Decode: decode1[robust.Distinct](),
		Bind: Bindings{
			Ingest: itemsIngest((*robust.Distinct).Add),
			Query: query1(func(d *robust.Distinct, _ url.Values) (map[string]any, error) {
				return robustDistinctDoc(d.Estimate(), d.Eps(), d.Copies(), d.CopiesUsed(), d.Exhausted()), nil
			}),
			Merge: merge2((*robust.Distinct).Merge),
		},
		Serve: &Bindings{
			Ingest: func(inst any, items [][]byte) error {
				s, err := cast[*robust.ServingDistinct](inst)
				if err != nil {
					return err
				}
				s.AddBatch(items)
				return nil
			},
			Query: func(inst any, _ url.Values) (map[string]any, error) {
				s, err := cast[*robust.ServingDistinct](inst)
				if err != nil {
					return nil, err
				}
				return robustDistinctDoc(s.Estimate(), s.Eps(), s.Copies(), s.CopiesUsed(), s.Exhausted()), nil
			},
			Merge: merge2((*robust.ServingDistinct).Merge),
		},
	})
}

// robustDistinctDoc is the query response shared by the plain and
// serving bindings: the estimate plus the defense's burn-down gauges,
// so operators can watch an adversarial workload consume copies.
func robustDistinctDoc(estimate, eps float64, copies, used int, exhausted bool) map[string]any {
	return map[string]any{
		"estimate":    estimate,
		"eps":         eps,
		"copies":      copies,
		"copies_used": used,
		"exhausted":   exhausted,
	}
}
