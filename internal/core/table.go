package core

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text result tables; the experiment
// harness prints one per experiment so that EXPERIMENTS.md rows can be
// regenerated verbatim.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are rendered with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
