package core

import (
	"errors"
	"testing"
)

// buildEnvelope writes a small valid envelope for the tests below.
func buildEnvelope(tag, version byte) []byte {
	w := NewWriter(tag, version)
	w.U8(7)
	w.U64(42)
	w.U64Slice([]uint64{1, 2, 3})
	return w.Bytes()
}

func TestReaderRejectsTruncation(t *testing.T) {
	data := buildEnvelope(TagHLL, 1)
	// Every strict prefix must fail with ErrCorrupt — either at the
	// header check or at a field read — and never panic.
	for cut := 0; cut < len(data); cut++ {
		r, _, err := NewReader(data[:cut], TagHLL)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("cut=%d: header error %v not ErrCorrupt", cut, err)
			}
			continue
		}
		r.U8()
		r.U64()
		r.U64Slice()
		if err := r.Done(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut=%d: Done() = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	data := buildEnvelope(TagHLL, 1)

	// Wrong magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, err := NewReader(bad, TagHLL); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v", err)
	}
	// Wrong sketch tag (cross-type envelope).
	if _, _, err := NewReader(data, TagCountMin); !errors.Is(err, ErrCorrupt) {
		t.Errorf("cross-type tag: %v", err)
	}
	// Empty and sub-header inputs.
	for _, in := range [][]byte{nil, {}, []byte("GSK1"), []byte("GSK1\x06")} {
		if _, _, err := NewReader(in, TagHLL); !errors.Is(err, ErrCorrupt) {
			t.Errorf("short input %q: %v", in, err)
		}
	}
}

func TestReaderVersioned(t *testing.T) {
	// A supported version passes through.
	r, v, err := NewReaderVersioned(buildEnvelope(TagHLL, 1), TagHLL, 1)
	if err != nil || v != 1 {
		t.Fatalf("version 1: v=%d err=%v", v, err)
	}
	_ = r
	// A future version is rejected with ErrCorrupt.
	if _, _, err := NewReaderVersioned(buildEnvelope(TagHLL, 2), TagHLL, 1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("future version: %v", err)
	}
	// Version 0 was never written by any release.
	if _, _, err := NewReaderVersioned(buildEnvelope(TagHLL, 0), TagHLL, 1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("version 0: %v", err)
	}
	// Header errors still surface first.
	if _, _, err := NewReaderVersioned([]byte("nope"), TagHLL, 1); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short header: %v", err)
	}
}

func TestReaderRejectsImplausibleLengths(t *testing.T) {
	// A length prefix larger than the remaining payload must fail
	// before allocating.
	w := NewWriter(TagKLL, 1)
	w.U32(1 << 30) // claims 2^30 elements, no payload follows
	data := w.Bytes()

	r, _, err := NewReader(data, TagKLL)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U64Slice(); got != nil {
		t.Errorf("U64Slice on implausible length returned %v", got)
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err() = %v, want ErrCorrupt", err)
	}

	// Same for byte fields and float slices.
	r, _, _ = NewReader(data, TagKLL)
	if got := r.BytesField(); got != nil {
		t.Errorf("BytesField returned %v", got)
	}
	r, _, _ = NewReader(data, TagKLL)
	if got := r.F64Slice(); got != nil {
		t.Errorf("F64Slice returned %v", got)
	}
	r, _, _ = NewReader(data, TagKLL)
	if got := r.I64Slice(); got != nil {
		t.Errorf("I64Slice returned %v", got)
	}
}

func TestReaderCount(t *testing.T) {
	// A plausible count passes through and leaves the reader usable.
	w := NewWriter(TagTDigest, 1)
	w.U32(3)
	for i := 0; i < 3; i++ {
		w.F64(float64(i))
		w.F64(1)
	}
	data := w.Bytes()
	r, _, err := NewReader(data, TagTDigest)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Count(16); got != 3 {
		t.Fatalf("Count(16) = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		r.F64()
		r.F64()
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done() after guarded count: %v", err)
	}

	// A count whose payload cannot fit the remaining buffer is rejected
	// without reading further — the guard the manual decode loops
	// (t-digest, GK, q-digest, Misra-Gries, SpaceSaving) rely on to
	// avoid count-sized allocations on corrupt input.
	w = NewWriter(TagTDigest, 1)
	w.U32(0xFFFFFFFF)
	r, _, err = NewReader(w.Bytes(), TagTDigest)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Count(16); got != 0 {
		t.Errorf("Count(16) on implausible count = %d, want 0", got)
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err() = %v, want ErrCorrupt", err)
	}

	// A truncated count field also fails closed.
	w = NewWriter(TagTDigest, 1)
	w.U8(1)
	r, _, err = NewReader(w.Bytes(), TagTDigest)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Count(16); got != 0 {
		t.Errorf("Count on truncated field = %d, want 0", got)
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err() = %v, want ErrCorrupt", err)
	}
}

func TestReaderRejectsTrailingBytes(t *testing.T) {
	data := append(buildEnvelope(TagTheta, 1), 0xde, 0xad)
	r, _, err := NewReader(data, TagTheta)
	if err != nil {
		t.Fatal(err)
	}
	r.U8()
	r.U64()
	r.U64Slice()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Done() with trailing bytes = %v, want ErrCorrupt", err)
	}
}
