// Package core defines the unifying summary abstraction that the paper
// surveys: a sketch is a compact data structure with an update
// operation (the streaming model) and, where the literature supports
// it, a merge operation (the distributed model of Mergeable Summaries,
// PODS 2012). It also hosts the error-specification types, the shared
// serialization envelope, and the measurement helpers used by the
// experiment harness.
//
// Concrete sketches live in their own packages (internal/bloom,
// internal/cardinality, …) and are re-exported through the public
// facade package at the repository root.
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrIncompatible is returned by Merge implementations when the two
// sketches were built with different shapes or seeds. Merging such
// sketches would silently corrupt estimates, so every sketch in this
// module checks compatibility first.
var ErrIncompatible = errors.New("sketch: incompatible sketches cannot be merged")

// ErrCorrupt is returned by UnmarshalBinary implementations when the
// input bytes are not a valid serialization.
var ErrCorrupt = errors.New("sketch: corrupt serialization")

// Updater is the streaming half of the summary abstraction: process
// one item at a time, in one pass, in small space.
type Updater interface {
	// Update folds one item (as bytes) into the summary.
	Update(item []byte)
}

// Merger is the distributed half: combine the summary with another of
// the same shape so that the result summarizes the union of both
// inputs. Implementations must be commutative and associative up to
// estimate equivalence, and must return ErrIncompatible (possibly
// wrapped) when shapes or seeds differ.
type Merger[T any] interface {
	Merge(other T) error
}

// Spec captures the (ε, δ) accuracy contract of a randomized sketch:
// the estimate is within ε (relative or additive, per sketch) of the
// truth with probability at least 1−δ.
type Spec struct {
	Epsilon float64 // approximation error
	Delta   float64 // failure probability
}

// Validate checks that the specification is satisfiable.
func (s Spec) Validate() error {
	if !(s.Epsilon > 0 && s.Epsilon < 1) {
		return fmt.Errorf("sketch: epsilon %v out of (0,1)", s.Epsilon)
	}
	if !(s.Delta > 0 && s.Delta < 1) {
		return fmt.Errorf("sketch: delta %v out of (0,1)", s.Delta)
	}
	return nil
}

// CountMinShape converts an (ε, δ) spec into the canonical Count-Min
// dimensions: width ⌈e/ε⌉, depth ⌈ln 1/δ⌉.
func (s Spec) CountMinShape() (width, depth int) {
	width = int(math.Ceil(math.E / s.Epsilon))
	depth = int(math.Ceil(math.Log(1 / s.Delta)))
	if depth < 1 {
		depth = 1
	}
	return width, depth
}

// MedianOfMeans converts an (ε, δ) spec into the replication counts
// used by AMS-style estimators: bucket count O(1/ε²) averaged, then
// O(log 1/δ) independent repetitions combined by a median.
func (s Spec) MedianOfMeans() (buckets, repetitions int) {
	buckets = int(math.Ceil(6 / (s.Epsilon * s.Epsilon)))
	repetitions = int(math.Ceil(4 * math.Log(1/s.Delta)))
	if repetitions < 1 {
		repetitions = 1
	}
	return buckets, repetitions
}
