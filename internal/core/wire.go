package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire is the shared binary serialization envelope. Every sketch
// serialization in this module begins with a 4-byte magic, a one-byte
// sketch-type tag and a one-byte version, followed by sketch-specific
// fields written with the little-endian helpers below. The envelope
// lets a reader reject foreign or truncated bytes early with a precise
// error instead of decoding garbage.
const wireMagic = "GSK1"

// Sketch-type tags used in serialization headers. Tags are append-only:
// never renumber a released tag.
const (
	TagBloom byte = iota + 1
	TagCountingBloom
	TagMorris
	TagFM
	TagLogLog
	TagHLL
	TagKMV
	TagCountMin
	TagCountSketch
	TagMisraGries
	TagSpaceSaving
	TagAMS
	TagGK
	TagQDigest
	TagKLL
	TagTDigest
	TagReservoir
	TagWeightedReservoir
	TagL0Sampler
	TagMinHash
	TagSimHash
	TagGraphSketch
	TagMRL
	TagNelsonYu
	TagHLLPP
	TagTheta
	TagREQ
	TagSparseRecovery
	TagL0SamplerFull
	TagBlockedBloom
	TagRobustDistinct
	TagSFSketch
)

// TagMax is the highest assigned sketch-type tag. The registry's
// exhaustiveness test walks [1, TagMax] and requires every tag to be
// either registered with a descriptor or explicitly reserved, so a new
// tag constant cannot be added without also deciding how it decodes.
const TagMax = TagSFSketch

// PeekTag returns the sketch-type tag of a serialized envelope without
// decoding the payload — the dispatch point for generic, self-
// describing decoding (registry.Decode): any GSK1 payload names its own
// type in byte 4.
func PeekTag(data []byte) (byte, error) {
	if len(data) < 6 {
		return 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(data[:4]) != wireMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return data[4], nil
}

// Writer accumulates a sketch serialization.
type Writer struct {
	buf []byte
}

// NewWriter starts an envelope for the given sketch tag and version.
func NewWriter(tag, version byte) *Writer {
	w := &Writer{buf: make([]byte, 0, 64)}
	w.buf = append(w.buf, wireMagic...)
	w.buf = append(w.buf, tag, version)
	return w
}

// Bytes returns the accumulated serialization.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) BytesField(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// U64Slice appends a length-prefixed slice of uint64.
func (w *Writer) U64Slice(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// I64Slice appends a length-prefixed slice of int64.
func (w *Writer) I64Slice(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// F64Slice appends a length-prefixed slice of float64.
func (w *Writer) F64Slice(vs []float64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader decodes a sketch serialization, validating the envelope.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates the envelope of data against the expected tag and
// returns a reader positioned after the header together with the
// serialization version.
func NewReader(data []byte, tag byte) (*Reader, byte, error) {
	if len(data) < 6 {
		return nil, 0, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if string(data[:4]) != wireMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != tag {
		return nil, 0, fmt.Errorf("%w: sketch tag %d, want %d", ErrCorrupt, data[4], tag)
	}
	return &Reader{buf: data, off: 6}, data[5], nil
}

// NewReaderVersioned validates the envelope like NewReader and
// additionally rejects serializations written by a format version newer
// than the caller supports. Decoders that evolve their payload layout
// use it so that bytes from a future writer fail fast with ErrCorrupt
// instead of being misparsed field by field.
func NewReaderVersioned(data []byte, tag, maxVersion byte) (*Reader, byte, error) {
	r, version, err := NewReader(data, tag)
	if err != nil {
		return nil, 0, err
	}
	if version == 0 || version > maxVersion {
		return nil, 0, fmt.Errorf("%w: serialization version %d, support <= %d",
			ErrCorrupt, version, maxVersion)
	}
	return r, version, nil
}

// Err reports the first decoding error, if any. Callers check it once
// after reading all fields.
func (r *Reader) Err() error { return r.err }

func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// BytesField reads a length-prefixed byte slice (copied out).
func (r *Reader) BytesField() []byte {
	n := int(r.U32())
	if r.err != nil || !r.checkLen(n, 1) || !r.need(n) {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

// U64Slice reads a length-prefixed slice of uint64.
func (r *Reader) U64Slice() []uint64 {
	n := int(r.U32())
	if r.err != nil || !r.checkLen(n, 8) {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// I64Slice reads a length-prefixed slice of int64.
func (r *Reader) I64Slice() []int64 {
	n := int(r.U32())
	if r.err != nil || !r.checkLen(n, 8) {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// F64Slice reads a length-prefixed slice of float64.
func (r *Reader) F64Slice() []float64 {
	n := int(r.U32())
	if r.err != nil || !r.checkLen(n, 8) {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Count reads a U32 element count for a sequence the caller decodes
// manually, rejecting counts whose payload (elemSize bytes per element,
// the minimum on-wire size) could not fit in the remaining buffer. Use
// this instead of a raw U32 before any count-sized allocation or loop:
// a corrupt count of ~4 billion would otherwise turn UnmarshalBinary
// into a multi-gigabyte allocation or a multi-second spin.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil || !r.checkLen(n, elemSize) {
		return 0
	}
	return n
}

// checkLen rejects length prefixes that would exceed the remaining
// buffer, preventing huge allocations on corrupt input.
func (r *Reader) checkLen(n, elemSize int) bool {
	if n < 0 || n*elemSize > len(r.buf)-r.off {
		r.err = fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
		return false
	}
	return true
}

// Done verifies the whole buffer was consumed and returns the first
// error encountered, if any.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return nil
}
