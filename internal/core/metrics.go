package core

import (
	"math"
	"sort"
	"sync/atomic"
)

// This file holds the measurement helpers used by the experiment
// harness (cmd/sketchbench) to compare sketch estimates against ground
// truth: relative error, RMSE, rank error for quantiles, and simple
// summary statistics over repeated trials — plus the lock-free
// operation counters the serving layer (internal/server) exposes on
// /debug/statsz.

// Counter is a wait-free monotonic event counter safe for concurrent
// use. The zero value is ready.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// OpCounters aggregates the operation counts of a sketch-serving
// process: items folded in, ingest batches and their byte volume,
// merges of peer envelopes, point/estimate queries, and snapshot
// serializations out. All fields are independently wait-free; a read
// is a per-counter linearizable snapshot, which is all a stats page
// needs. The zero value is ready.
type OpCounters struct {
	Adds       Counter // individual items ingested
	AddBatches Counter // ingest requests (one batch each)
	BatchBytes Counter // raw bytes across all ingest bodies
	Merges     Counter // peer envelopes merged in
	Queries    Counter // estimate/point/quantile queries served
	Snapshots  Counter // serializations out
}

// OpSnapshot is a point-in-time copy of an OpCounters, in plain
// integers for JSON rendering.
type OpSnapshot struct {
	Adds       uint64 `json:"adds"`
	AddBatches uint64 `json:"add_batches"`
	BatchBytes uint64 `json:"batch_bytes"`
	Merges     uint64 `json:"merges"`
	Queries    uint64 `json:"queries"`
	Snapshots  uint64 `json:"snapshots"`
}

// Snapshot copies the current counter values.
func (o *OpCounters) Snapshot() OpSnapshot {
	return OpSnapshot{
		Adds:       o.Adds.Load(),
		AddBatches: o.AddBatches.Load(),
		BatchBytes: o.BatchBytes.Load(),
		Merges:     o.Merges.Load(),
		Queries:    o.Queries.Load(),
		Snapshots:  o.Snapshots.Load(),
	}
}

// RelErr returns |est − truth| / truth; truth must be nonzero. For
// truth = 0 it returns the absolute error so that callers can still
// aggregate sensibly.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Summary holds order statistics of a sample of measurements.
type Summary struct {
	N                int
	Mean, RMS        float64
	Min, Median, Max float64
	P90, P99         float64
}

// Summarize computes a Summary of xs. It sorts a copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum, sumSq float64
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	return Summary{
		N:      len(s),
		Mean:   sum / n,
		RMS:    math.Sqrt(sumSq / n),
		Min:    s[0],
		Median: quantileOf(s, 0.5),
		Max:    s[len(s)-1],
		P90:    quantileOf(s, 0.9),
		P99:    quantileOf(s, 0.99),
	}
}

// quantileOf reads the q-quantile from an already sorted slice using
// the nearest-rank rule.
func quantileOf(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// RankError returns the normalized rank error of a quantile estimate:
// |rank(est) − wantRank| / n, where rank(est) is the number of stream
// items ≤ est. This is the ε in the additive-error guarantee that GK,
// KLL, q-digest and MRL all promise.
func RankError(sortedStream []float64, est float64, wantRank int) float64 {
	gotRank := sort.SearchFloat64s(sortedStream, est)
	// Count ties as included: advance past equal values.
	for gotRank < len(sortedStream) && sortedStream[gotRank] == est {
		gotRank++
	}
	return math.Abs(float64(gotRank-wantRank)) / float64(len(sortedStream))
}

// Median returns the median of xs (sorting a copy).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MedianInt64 returns the median of xs as a float (sorting a copy).
func MedianInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return float64(s[mid])
	}
	return (float64(s[mid-1]) + float64(s[mid])) / 2
}
