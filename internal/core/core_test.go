package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Epsilon: 0.01, Delta: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, s := range []Spec{
		{Epsilon: 0, Delta: 0.1},
		{Epsilon: 1, Delta: 0.1},
		{Epsilon: 0.1, Delta: 0},
		{Epsilon: 0.1, Delta: 1},
		{Epsilon: -0.1, Delta: 0.5},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v should be invalid", s)
		}
	}
}

func TestCountMinShape(t *testing.T) {
	w, d := Spec{Epsilon: 0.01, Delta: 0.01}.CountMinShape()
	if w != int(math.Ceil(math.E/0.01)) {
		t.Errorf("width %d", w)
	}
	if d != 5 { // ceil(ln 100) = 5
		t.Errorf("depth %d, want 5", d)
	}
}

func TestMedianOfMeans(t *testing.T) {
	b, r := Spec{Epsilon: 0.1, Delta: 0.05}.MedianOfMeans()
	if b < 1/(0.1*0.1) {
		t.Errorf("buckets %d too small", b)
	}
	if r < 1 {
		t.Errorf("repetitions %d", r)
	}
}

func TestWireRoundTrip(t *testing.T) {
	w := NewWriter(TagBloom, 1)
	w.U8(7)
	w.U32(123456)
	w.U64(math.MaxUint64 - 5)
	w.I64(-42)
	w.F64(3.14159)
	w.BytesField([]byte("payload"))
	w.U64Slice([]uint64{1, 2, 3})
	w.I64Slice([]int64{-1, 0, 1})
	w.F64Slice([]float64{0.5, -0.5})

	r, version, err := NewReader(w.Bytes(), TagBloom)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("version %d", version)
	}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 123456 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != math.MaxUint64-5 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.BytesField(); string(got) != "payload" {
		t.Errorf("BytesField = %q", got)
	}
	if got := r.U64Slice(); len(got) != 3 || got[2] != 3 {
		t.Errorf("U64Slice = %v", got)
	}
	if got := r.I64Slice(); len(got) != 3 || got[0] != -1 {
		t.Errorf("I64Slice = %v", got)
	}
	if got := r.F64Slice(); len(got) != 2 || got[1] != -0.5 {
		t.Errorf("F64Slice = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestWireRejectsBadInput(t *testing.T) {
	w := NewWriter(TagHLL, 2)
	w.U64(99)
	data := w.Bytes()

	if _, _, err := NewReader(data[:3], TagHLL); !errors.Is(err, ErrCorrupt) {
		t.Error("short header accepted")
	}
	if _, _, err := NewReader(data, TagBloom); !errors.Is(err, ErrCorrupt) {
		t.Error("wrong tag accepted")
	}
	bad := append([]byte("XXXX"), data[4:]...)
	if _, _, err := NewReader(bad, TagHLL); !errors.Is(err, ErrCorrupt) {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	r, _, err := NewReader(data[:10], TagHLL)
	if err != nil {
		t.Fatal(err)
	}
	r.U64()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Error("truncated payload not flagged")
	}
	// Trailing garbage.
	r2, _, err := NewReader(append(append([]byte(nil), data...), 0xFF), TagHLL)
	if err != nil {
		t.Fatal(err)
	}
	r2.U64()
	if err := r2.Done(); !errors.Is(err, ErrCorrupt) {
		t.Error("trailing bytes not flagged")
	}
}

func TestWireImplausibleLength(t *testing.T) {
	w := NewWriter(TagKLL, 1)
	w.U32(1 << 30) // claims a billion elements with no payload
	r, _, err := NewReader(w.Bytes(), TagKLL)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U64Slice(); got != nil {
		t.Error("implausible slice decoded")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Error("implausible length not flagged")
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, payload []byte) bool {
		if math.IsNaN(c) {
			c = 0
		}
		w := NewWriter(TagCountMin, 3)
		w.U64(a)
		w.I64(b)
		w.F64(c)
		w.BytesField(payload)
		r, v, err := NewReader(w.Bytes(), TagCountMin)
		if err != nil || v != 3 {
			return false
		}
		if r.U64() != a || r.I64() != b || r.F64() != c {
			return false
		}
		got := r.BytesField()
		if len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %v", got)
	}
	if got := RelErr(5, 0); got != 5 {
		t.Errorf("RelErr with zero truth = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
}

func TestRankError(t *testing.T) {
	stream := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := RankError(stream, 5, 5); got != 0 {
		t.Errorf("exact rank error = %v", got)
	}
	if got := RankError(stream, 5, 7); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("rank error = %v, want 0.2", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
	if got := MedianInt64([]int64{5, 1, 3}); got != 3 {
		t.Errorf("MedianInt64 = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta-longer", 42)
	out := tbl.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-longer") {
		t.Error("missing rows")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
