package matrix

import (
	"fmt"

	"repro/internal/hashx"
)

// AMM performs approximate matrix multiplication via a shared
// Count-Sketch projection: AᵀB ≈ (SA)ᵀ(SB) where S is a k×n
// Count-Sketch matrix. E[(SA)ᵀ(SB)] = AᵀB exactly, with Frobenius
// error O(‖A‖_F·‖B‖_F/√k) — the cheapest of the cited numerical-
// linear-algebra applications. Rows of A and B stream in together.
type AMM struct {
	k      int
	n      int // rows expected (the shared inner dimension)
	bucket *hashx.KWise
	sign   *hashx.KWise
	sa     [][]float64 // k × dA
	sb     [][]float64 // k × dB
	dA, dB int
	row    int
}

// NewAMM creates an approximate multiplier computing AᵀB for matrices
// with the given column counts, compressing the shared n-row dimension
// to k.
func NewAMM(k, dA, dB int, seed uint64) *AMM {
	if k < 1 || dA < 1 || dB < 1 {
		panic("matrix: AMM dimensions must be positive")
	}
	seeds := hashx.SeedSequence(seed, 2)
	sa := make([][]float64, k)
	sb := make([][]float64, k)
	for i := range sa {
		sa[i] = make([]float64, dA)
		sb[i] = make([]float64, dB)
	}
	return &AMM{
		k: k, bucket: hashx.NewKWise(2, seeds[0]), sign: hashx.NewKWise(4, seeds[1]),
		sa: sa, sb: sb, dA: dA, dB: dB,
	}
}

// Append streams one aligned row pair (aᵢ of A and bᵢ of B).
func (m *AMM) Append(aRow, bRow []float64) {
	if len(aRow) != m.dA || len(bRow) != m.dB {
		panic(fmt.Sprintf("matrix: row dims (%d,%d), want (%d,%d)", len(aRow), len(bRow), m.dA, m.dB))
	}
	i := uint64(m.row)
	m.row++
	pos := m.bucket.HashRange(i, m.k)
	s := float64(m.sign.Sign(i))
	for c, v := range aRow {
		m.sa[pos][c] += s * v
	}
	for c, v := range bRow {
		m.sb[pos][c] += s * v
	}
}

// Product returns the k-compressed estimate of AᵀB (dA×dB).
func (m *AMM) Product() [][]float64 {
	out := make([][]float64, m.dA)
	for i := range out {
		out[i] = make([]float64, m.dB)
	}
	for r := 0; r < m.k; r++ {
		for i := 0; i < m.dA; i++ {
			av := m.sa[r][i]
			if av == 0 {
				continue
			}
			for j := 0; j < m.dB; j++ {
				out[i][j] += av * m.sb[r][j]
			}
		}
	}
	return out
}

// K returns the compression dimension.
func (m *AMM) K() int { return m.k }

// Rows returns the number of appended row pairs.
func (m *AMM) Rows() int { return m.row }
