package matrix

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// randomLowRankMatrix builds an n×d matrix that is approximately rank r
// plus noise — the regime where FD shines.
func randomLowRankMatrix(n, d, r int, noise float64, seed uint64) [][]float64 {
	rng := randx.New(seed)
	basis := make([][]float64, r)
	for i := range basis {
		basis[i] = make([]float64, d)
		for j := range basis[i] {
			basis[i][j] = rng.Normal()
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for k := 0; k < r; k++ {
			coeff := rng.Normal() * float64(r-k) // decaying spectrum
			for j := 0; j < d; j++ {
				out[i][j] += coeff * basis[k][j]
			}
		}
		for j := 0; j < d; j++ {
			out[i][j] += noise * rng.Normal()
		}
	}
	return out
}

func TestJacobiEigenOnKnownMatrix(t *testing.T) {
	// Symmetric 2x2 with known eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := jacobiEigen(a)
	if math.Abs(vals[0]-3) > 1e-9 || math.Abs(vals[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// Check A v = λ v for the top eigenvector.
	v0 := []float64{vecs[0][0], vecs[1][0]}
	av := []float64{2*v0[0] + v0[1], v0[0] + 2*v0[1]}
	for i := range av {
		if math.Abs(av[i]-3*v0[i]) > 1e-9 {
			t.Fatalf("Av != 3v at %d", i)
		}
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// V Λ Vᵀ must reconstruct the input for a random symmetric matrix.
	rng := randx.New(1)
	const n = 8
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Normal()
			a[i][j], a[j][i] = v, v
		}
	}
	vals, vecs := jacobiEigen(a)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var got float64
			for k := 0; k < n; k++ {
				got += vecs[i][k] * vals[k] * vecs[j][k]
			}
			if math.Abs(got-a[i][j]) > 1e-8 {
				t.Fatalf("reconstruction off at (%d,%d): %v vs %v", i, j, got, a[i][j])
			}
		}
	}
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatal("eigenvalues not descending")
		}
	}
}

func TestFDCovarianceGuarantee(t *testing.T) {
	// The deterministic bound ||AᵀA − BᵀB||₂ ≤ 2||A||_F²/l.
	const n, d = 500, 40
	a := randomLowRankMatrix(n, d, 5, 0.1, 2)
	for _, l := range []int{8, 16, 32} {
		f := NewFD(l, d, 1)
		for _, row := range a {
			f.Append(row)
		}
		diff := f.CovarianceDiff(a)
		if bound := f.CovarianceErrorBound(); diff > bound {
			t.Errorf("l=%d: covariance diff %.2f exceeds bound %.2f", l, diff, bound)
		}
	}
}

func TestFDErrorShrinksWithL(t *testing.T) {
	const n, d = 400, 30
	a := randomLowRankMatrix(n, d, 4, 0.2, 3)
	errAt := func(l int) float64 {
		f := NewFD(l, d, 1)
		for _, row := range a {
			f.Append(row)
		}
		return f.CovarianceDiff(a)
	}
	if e8, e32 := errAt(8), errAt(32); e32 >= e8 {
		t.Errorf("FD error did not shrink with l: %.3f vs %.3f", e8, e32)
	}
}

func TestFDSketchSizeBounded(t *testing.T) {
	const d = 20
	f := NewFD(10, d, 1)
	rng := randx.New(4)
	for i := 0; i < 5000; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Normal()
		}
		f.Append(row)
	}
	if got := len(f.Sketch()); got > 10 {
		t.Errorf("sketch holds %d rows, want <= 10", got)
	}
	if f.N() != 5000 {
		t.Errorf("N = %d", f.N())
	}
}

func TestFDExactOnLowRank(t *testing.T) {
	// If A has rank < l, FD recovers the covariance almost exactly.
	const n, d = 200, 16
	a := randomLowRankMatrix(n, d, 3, 0, 5) // exactly rank 3
	f := NewFD(8, d, 1)
	var frob2 float64
	for _, row := range a {
		f.Append(row)
		for _, v := range row {
			frob2 += v * v
		}
	}
	diff := f.CovarianceDiff(a)
	if diff > 1e-6*frob2 {
		t.Errorf("rank-3 matrix: covariance diff %.3g not ~0 (frob2 %.3g)", diff, frob2)
	}
}

func TestFDPanics(t *testing.T) {
	f := NewFD(4, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width row must panic")
		}
	}()
	f.Append(make([]float64, 7))
}

func TestAMMUnbiasedAndAccurate(t *testing.T) {
	const n, dA, dB = 2000, 10, 8
	rng := randx.New(6)
	a := make([][]float64, n)
	b := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, dA)
		b[i] = make([]float64, dB)
		for j := range a[i] {
			a[i][j] = rng.Normal()
		}
		for j := range b[i] {
			b[i][j] = a[i][j%dA] + 0.5*rng.Normal() // correlated
		}
	}
	// Exact AᵀB.
	want := make([][]float64, dA)
	for i := range want {
		want[i] = make([]float64, dB)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < dA; i++ {
			for j := 0; j < dB; j++ {
				want[i][j] += a[r][i] * b[r][j]
			}
		}
	}
	m := NewAMM(512, dA, dB, 7)
	for r := 0; r < n; r++ {
		m.Append(a[r], b[r])
	}
	got := m.Product()
	var num, den float64
	for i := 0; i < dA; i++ {
		for j := 0; j < dB; j++ {
			dd := got[i][j] - want[i][j]
			num += dd * dd
			den += want[i][j] * want[i][j]
		}
	}
	if rel := math.Sqrt(num / den); rel > 0.25 {
		t.Errorf("AMM relative Frobenius error %.3f", rel)
	}
	if m.Rows() != n || m.K() != 512 {
		t.Error("accessors wrong")
	}
}

func TestAMMErrorShrinksWithK(t *testing.T) {
	const n, d = 1000, 6
	rng := randx.New(8)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, d)
		for j := range a[i] {
			a[i][j] = rng.Normal()
		}
	}
	errAt := func(k int) float64 {
		m := NewAMM(k, d, d, 9)
		for r := 0; r < n; r++ {
			m.Append(a[r], a[r])
		}
		got := m.Product()
		var num float64
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				var want float64
				for r := 0; r < n; r++ {
					want += a[r][i] * a[r][j]
				}
				dd := got[i][j] - want
				num += dd * dd
			}
		}
		return math.Sqrt(num)
	}
	if e64, e1024 := errAt(64), errAt(1024); e1024 >= e64 {
		t.Errorf("AMM error did not shrink with k: %.1f vs %.1f", e64, e1024)
	}
}

func BenchmarkFDAppend(b *testing.B) {
	const d = 64
	f := NewFD(16, d, 1)
	rng := randx.New(1)
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Append(row)
	}
}
