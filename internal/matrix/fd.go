// Package matrix implements the numerical-linear-algebra applications
// of sketching the paper cites (Woodruff's "Sketching as a Tool for
// Numerical Linear Algebra", cite [48]): the Frequent Directions
// matrix sketch of Liberty — the matrix analogue of Misra–Gries — and
// Count-Sketch-based approximate matrix multiplication.
//
// Frequent Directions maintains an ℓ×d sketch B of a stream of rows
// a₁, a₂, … of an n×d matrix A with the deterministic guarantee
// ‖AᵀA − BᵀB‖₂ ≤ 2‖A‖_F²/ℓ, using a singular-value shrink step on
// overflow (implemented via Jacobi eigendecomposition of B·Bᵀ, which
// is only ℓ×ℓ). Experiment E19 sweeps ℓ and verifies the bound.
package matrix

import (
	"fmt"
	"math"
)

// FD is a Frequent Directions sketch of ℓ rows over d columns. The
// buffer holds 2ℓ rows; when full, it is halved by the shrink step.
type FD struct {
	l, d  int
	rows  [][]float64 // up to 2l live rows
	frob2 float64     // running ||A||_F^2 for the error bound
	n     int         // rows appended
}

// NewFD creates a Frequent Directions sketch with ℓ retained
// directions over d columns.
func NewFD(l, d int, _ uint64) *FD {
	if l < 1 || d < 1 {
		panic("matrix: FD requires positive l and d")
	}
	return &FD{l: l, d: d}
}

// Append folds one row of A into the sketch.
func (f *FD) Append(row []float64) {
	if len(row) != f.d {
		panic(fmt.Sprintf("matrix: row dimension %d, want %d", len(row), f.d))
	}
	cp := append([]float64(nil), row...)
	f.rows = append(f.rows, cp)
	for _, v := range row {
		f.frob2 += v * v
	}
	f.n++
	if len(f.rows) >= 2*f.l {
		f.shrink()
	}
}

// shrink performs the FD step: compute the SVD of the buffer B (via
// the ℓ′×ℓ′ eigendecomposition of B·Bᵀ), subtract σ_ℓ² from every
// squared singular value, and rebuild at most ℓ−1 non-zero rows.
func (f *FD) shrink() {
	m := len(f.rows)
	// G = B·Bᵀ (m×m, m = 2l, small).
	g := make([][]float64, m)
	for i := range g {
		g[i] = make([]float64, m)
		for j := 0; j <= i; j++ {
			var s float64
			for c := 0; c < f.d; c++ {
				s += f.rows[i][c] * f.rows[j][c]
			}
			g[i][j] = s
		}
	}
	for i := range g {
		for j := i + 1; j < m; j++ {
			g[i][j] = g[j][i]
		}
	}
	eigVals, eigVecs := jacobiEigen(g)
	// eigVals descending; eigVals[i] = σᵢ². Shrink by σ_l² (the l-th
	// largest, index l-1; if fewer positive values, nothing survives
	// past them anyway).
	shrinkBy := 0.0
	if f.l-1 < len(eigVals) {
		shrinkBy = math.Max(eigVals[f.l-1], 0)
	}
	// New rows: for each retained direction i,
	// b'_i = sqrt(max(σᵢ²−σ_l², 0)) · vᵢ, where vᵢ = (1/σᵢ)·uᵢᵀB is the
	// right singular vector.
	var newRows [][]float64
	for i := 0; i < f.l-1 && i < len(eigVals); i++ {
		lam := eigVals[i]
		if lam <= shrinkBy || lam <= 1e-12 {
			break
		}
		sigma := math.Sqrt(lam)
		scale := math.Sqrt(lam-shrinkBy) / sigma
		// row = scale · uᵢᵀ B
		row := make([]float64, f.d)
		for r := 0; r < m; r++ {
			u := eigVecs[r][i]
			if u == 0 {
				continue
			}
			for c := 0; c < f.d; c++ {
				row[c] += u * f.rows[r][c]
			}
		}
		for c := range row {
			row[c] *= scale
		}
		newRows = append(newRows, row)
	}
	f.rows = newRows
}

// Sketch returns the current sketch rows (forcing a shrink if the
// buffer exceeds ℓ so callers see at most ℓ rows).
func (f *FD) Sketch() [][]float64 {
	if len(f.rows) > f.l {
		f.shrink()
	}
	return f.rows
}

// CovarianceErrorBound returns the deterministic FD guarantee
// 2·‖A‖_F²/ℓ on ‖AᵀA − BᵀB‖₂.
func (f *FD) CovarianceErrorBound() float64 { return 2 * f.frob2 / float64(f.l) }

// Frobenius2 returns the accumulated squared Frobenius norm of A.
func (f *FD) Frobenius2() float64 { return f.frob2 }

// L returns the sketch size parameter.
func (f *FD) L() int { return f.l }

// D returns the column count.
func (f *FD) D() int { return f.d }

// N returns the number of appended rows.
func (f *FD) N() int { return f.n }

// CovarianceDiff computes ‖AᵀA − BᵀB‖₂ against an explicitly provided
// A (test/experiment helper) via power iteration on the difference.
func (f *FD) CovarianceDiff(a [][]float64) float64 {
	b := f.Sketch()
	// M = AᵀA − BᵀB applied implicitly to vectors.
	apply := func(x []float64) []float64 {
		out := make([]float64, f.d)
		for _, row := range a {
			var dot float64
			for c, v := range row {
				dot += v * x[c]
			}
			for c, v := range row {
				out[c] += dot * v
			}
		}
		for _, row := range b {
			var dot float64
			for c, v := range row {
				dot += v * x[c]
			}
			for c, v := range row {
				out[c] -= dot * v
			}
		}
		return out
	}
	// Power iteration with a deterministic start.
	x := make([]float64, f.d)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(f.d))
	}
	var lambda float64
	for iter := 0; iter < 100; iter++ {
		y := apply(x)
		var norm float64
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		lambda = norm
		x = y
	}
	return lambda
}

// jacobiEigen computes the eigendecomposition of a symmetric matrix by
// the cyclic Jacobi method, returning eigenvalues in descending order
// and the matching eigenvectors as columns of the returned matrix.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-18 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					mkp, mkq := m[k][p], m[k][q]
					m[k][p] = c*mkp - s*mkq
					m[k][q] = s*mkp + c*mkq
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m[p][k], m[q][k]
					m[p][k] = c*mpk - s*mqk
					m[q][k] = s*mpk + c*mqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	// Extract and sort eigenpairs descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := range pairs {
		pairs[i] = pair{m[i][i], i}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pairs[j].val > pairs[i].val {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	vals := make([]float64, n)
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, n)
	}
	for newIdx, p := range pairs {
		vals[newIdx] = p.val
		for r := 0; r < n; r++ {
			vecs[r][newIdx] = v[r][p.idx]
		}
	}
	return vals, vecs
}
