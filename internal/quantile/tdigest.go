package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// TDigest is Dunning's t-digest (the merging variant), the sketch the
// paper lists among the "new algorithms for the core problems …
// made available via libraries". It clusters values into centroids
// whose maximum size is governed by the k₁ scale function
// k(q) = (δ/2π)·asin(2q−1), which keeps clusters tiny near the tails —
// the reason t-digest dominates on extreme percentiles (ablation E6a)
// while giving up worst-case guarantees in the middle.
type TDigest struct {
	compression float64
	centroids   []centroid // sorted by mean
	buffer      []float64
	n           uint64
	minV, maxV  float64
}

type centroid struct {
	mean   float64
	weight float64
}

const tdigestBufferSize = 512

// NewTDigest creates a t-digest with the given compression δ (commonly
// 100; higher = more centroids = more accuracy).
func NewTDigest(compression float64) *TDigest {
	if compression < 10 {
		panic("quantile: t-digest compression must be >= 10")
	}
	return &TDigest{
		compression: compression,
		minV:        math.Inf(1),
		maxV:        math.Inf(-1),
	}
}

// Add inserts a value.
func (s *TDigest) Add(v float64) {
	if math.IsNaN(v) {
		panic("quantile: t-digest cannot ingest NaN")
	}
	s.buffer = append(s.buffer, v)
	s.n++
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	if len(s.buffer) >= tdigestBufferSize {
		s.flush()
	}
}

// k1 is the tail-sensitive scale function.
func (s *TDigest) k1(q float64) float64 {
	return s.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// flush merges buffered points into the centroid list.
func (s *TDigest) flush() {
	if len(s.buffer) == 0 {
		return
	}
	sort.Float64s(s.buffer)
	// Merge sorted buffer and existing centroids into a combined
	// weighted sequence.
	merged := make([]centroid, 0, len(s.centroids)+len(s.buffer))
	i, j := 0, 0
	for i < len(s.centroids) || j < len(s.buffer) {
		if j >= len(s.buffer) || (i < len(s.centroids) && s.centroids[i].mean <= s.buffer[j]) {
			merged = append(merged, s.centroids[i])
			i++
		} else {
			merged = append(merged, centroid{mean: s.buffer[j], weight: 1})
			j++
		}
	}
	s.buffer = s.buffer[:0]

	total := 0.0
	for _, c := range merged {
		total += c.weight
	}
	out := merged[:0]
	cur := merged[0]
	accumulated := 0.0 // weight fully committed to out
	for _, c := range merged[1:] {
		qLeft := accumulated / total
		qRight := (accumulated + cur.weight + c.weight) / total
		if s.k1(qRight)-s.k1(qLeft) <= 1 {
			// Merge c into cur.
			w := cur.weight + c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / w
			cur.weight = w
		} else {
			out = append(out, cur)
			accumulated += cur.weight
			cur = c
		}
	}
	out = append(out, cur)
	s.centroids = out
}

// Quantile returns the estimated q-quantile by interpolating between
// centroid means.
func (s *TDigest) Quantile(q float64) float64 {
	s.flush()
	if len(s.centroids) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.minV
	}
	if q >= 1 {
		return s.maxV
	}
	var total float64
	for _, c := range s.centroids {
		total += c.weight
	}
	target := q * total
	var acc float64
	for i, c := range s.centroids {
		if acc+c.weight >= target {
			// Interpolate inside this centroid.
			if c.weight <= 1 || i == 0 && target < c.weight/2 {
				return c.mean
			}
			frac := (target - acc) / c.weight
			var lo, hi float64
			if i > 0 {
				lo = (s.centroids[i-1].mean + c.mean) / 2
			} else {
				lo = s.minV
			}
			if i < len(s.centroids)-1 {
				hi = (c.mean + s.centroids[i+1].mean) / 2
			} else {
				hi = s.maxV
			}
			return lo + (hi-lo)*frac
		}
		acc += c.weight
	}
	return s.maxV
}

// CDF returns the estimated fraction of values ≤ v.
func (s *TDigest) CDF(v float64) float64 {
	s.flush()
	if len(s.centroids) == 0 {
		return math.NaN()
	}
	if v < s.minV {
		return 0
	}
	if v >= s.maxV {
		return 1
	}
	var total, acc float64
	for _, c := range s.centroids {
		total += c.weight
	}
	for i, c := range s.centroids {
		var lo, hi float64
		if i > 0 {
			lo = (s.centroids[i-1].mean + c.mean) / 2
		} else {
			lo = s.minV
		}
		if i < len(s.centroids)-1 {
			hi = (c.mean + s.centroids[i+1].mean) / 2
		} else {
			hi = s.maxV
		}
		if v < lo {
			break
		}
		if v < hi {
			frac := 0.5
			if hi > lo {
				frac = (v - lo) / (hi - lo)
			}
			acc += c.weight * frac
			break
		}
		acc += c.weight
	}
	return acc / total
}

// N returns the number of inserted values.
func (s *TDigest) N() uint64 { return s.n }

// Compression returns the δ parameter.
func (s *TDigest) Compression() float64 { return s.compression }

// CentroidCount returns the number of stored centroids (after flushing
// the buffer) — the E6 space figure.
func (s *TDigest) CentroidCount() int {
	s.flush()
	return len(s.centroids)
}

// SizeBytes returns the approximate memory footprint.
func (s *TDigest) SizeBytes() int {
	s.flush()
	return len(s.centroids) * 16
}

// Min returns the smallest inserted value.
func (s *TDigest) Min() float64 { return s.minV }

// Max returns the largest inserted value.
func (s *TDigest) Max() float64 { return s.maxV }

// Merge folds another t-digest into this one by replaying its
// centroids as weighted points (the standard merging strategy).
func (s *TDigest) Merge(other *TDigest) error {
	if s.compression != other.compression {
		return fmt.Errorf("%w: t-digest compression %v vs %v",
			core.ErrIncompatible, s.compression, other.compression)
	}
	other.flush()
	s.flush()
	// Append other's centroids and recompress via flush machinery:
	// inject them as pre-weighted centroids, then merge.
	merged := make([]centroid, 0, len(s.centroids)+len(other.centroids))
	i, j := 0, 0
	for i < len(s.centroids) || j < len(other.centroids) {
		if j >= len(other.centroids) ||
			(i < len(s.centroids) && s.centroids[i].mean <= other.centroids[j].mean) {
			merged = append(merged, s.centroids[i])
			i++
		} else {
			merged = append(merged, other.centroids[j])
			j++
		}
	}
	s.centroids = merged
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	s.recompress()
	return nil
}

// recompress runs one scale-function merge pass over the centroid list.
func (s *TDigest) recompress() {
	if len(s.centroids) < 2 {
		return
	}
	total := 0.0
	for _, c := range s.centroids {
		total += c.weight
	}
	out := s.centroids[:0]
	cur := s.centroids[0]
	accumulated := 0.0
	for _, c := range s.centroids[1:] {
		qLeft := accumulated / total
		qRight := (accumulated + cur.weight + c.weight) / total
		if s.k1(qRight)-s.k1(qLeft) <= 1 {
			w := cur.weight + c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / w
			cur.weight = w
		} else {
			out = append(out, cur)
			accumulated += cur.weight
			cur = c
		}
	}
	s.centroids = append(out, cur)
}

// MarshalBinary serializes the digest.
func (s *TDigest) MarshalBinary() ([]byte, error) {
	s.flush()
	w := core.NewWriter(core.TagTDigest, 1)
	w.F64(s.compression)
	w.U64(s.n)
	w.F64(s.minV)
	w.F64(s.maxV)
	w.U32(uint32(len(s.centroids)))
	for _, c := range s.centroids {
		w.F64(c.mean)
		w.F64(c.weight)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a digest serialized by MarshalBinary.
func (s *TDigest) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagTDigest)
	if err != nil {
		return err
	}
	compression := r.F64()
	n := r.U64()
	minV := r.F64()
	maxV := r.F64()
	cnt := r.Count(16) // 2 × F64 per centroid
	if r.Err() != nil {
		return r.Err()
	}
	if compression < 10 {
		return fmt.Errorf("%w: t-digest compression %v", core.ErrCorrupt, compression)
	}
	centroids := make([]centroid, cnt)
	for i := range centroids {
		centroids[i] = centroid{mean: r.F64(), weight: r.F64()}
	}
	if err := r.Done(); err != nil {
		return err
	}
	for i, c := range centroids {
		if !(c.weight > 0) || math.IsInf(c.weight, 0) || math.IsNaN(c.mean) {
			return fmt.Errorf("%w: t-digest centroid %d (mean=%v weight=%v)",
				core.ErrCorrupt, i, c.mean, c.weight)
		}
		if i > 0 && c.mean < centroids[i-1].mean {
			return fmt.Errorf("%w: t-digest centroids unsorted", core.ErrCorrupt)
		}
	}
	s.compression, s.n, s.minV, s.maxV, s.centroids = compression, n, minV, maxV, centroids
	s.buffer = nil
	return nil
}
