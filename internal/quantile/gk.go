// Package quantile implements the streaming-quantile lineage the paper
// calls "a keystone problem for sketching over the years": the
// Manku–Rajagopalan–Lindsay multi-level buffer algorithm (1998), the
// Greenwald–Khanna summary (2001), the q-digest (Shrivastava et al.
// 2004), the t-digest (Dunning), and the near-optimal KLL sketch
// (Karnin–Lang–Liberty 2016), plus an exact baseline for scoring.
//
// All summaries answer rank/quantile queries with additive rank error
// ε·n. GK is deterministic with O((1/ε)·log(εn)) space but does not
// merge cleanly; q-digest and KLL are mergeable (q-digest for bounded
// integer domains, KLL for arbitrary ordered data); t-digest trades
// worst-case guarantees for excellent tail accuracy in practice.
// Experiments E6/E6a reproduce the accuracy-space frontier.
package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// GK is the Greenwald–Khanna ε-approximate quantile summary. It stores
// tuples (v, g, Δ): v a seen value, g the gap in minimum rank from the
// previous tuple, Δ the uncertainty. The invariant g + Δ ≤ 2εn bounds
// every rank query's error by εn.
type GK struct {
	eps     float64
	n       uint64
	tuples  []gkTuple
	pending int // inserts since last compress
}

type gkTuple struct {
	v    float64
	g    uint64
	delt uint64
}

// NewGK creates a GK summary with rank-error guarantee eps.
func NewGK(eps float64) *GK {
	if !(eps > 0 && eps < 1) {
		panic("quantile: GK eps must be in (0,1)")
	}
	return &GK{eps: eps}
}

// Add inserts a value.
func (s *GK) Add(v float64) {
	// Find insertion position (first tuple with value >= v).
	i := sort.Search(len(s.tuples), func(i int) bool { return s.tuples[i].v >= v })
	var delt uint64
	if i > 0 && i < len(s.tuples) {
		delt = uint64(math.Floor(2 * s.eps * float64(s.n)))
	}
	t := gkTuple{v: v, g: 1, delt: delt}
	s.tuples = append(s.tuples, gkTuple{})
	copy(s.tuples[i+1:], s.tuples[i:])
	s.tuples[i] = t
	s.n++
	s.pending++
	if s.pending >= int(1/(2*s.eps)) {
		s.compress()
		s.pending = 0
	}
}

// compress merges adjacent tuples whose combined uncertainty stays
// within the 2εn budget.
func (s *GK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	budget := uint64(math.Floor(2 * s.eps * float64(s.n)))
	out := s.tuples[:0]
	out = append(out, s.tuples[0])
	// Walk from the second tuple, merging forward when allowed. The
	// last tuple is always kept (it pins the maximum).
	for i := 1; i < len(s.tuples); i++ {
		t := s.tuples[i]
		last := &out[len(out)-1]
		if len(out) > 1 && i < len(s.tuples)-1 && last.g+t.g+t.delt <= budget {
			// Merge last into t (t absorbs last's gap).
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	s.tuples = out
}

// Quantile returns a value whose rank is within εn of q·n.
func (s *GK) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	target := rank + uint64(math.Floor(s.eps*float64(s.n)))
	var rmin uint64
	for i, t := range s.tuples {
		rmin += t.g
		if rmin+t.delt > target {
			if i == 0 {
				return t.v
			}
			return s.tuples[i-1].v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Rank returns the estimated rank of v (number of items ≤ v).
func (s *GK) Rank(v float64) uint64 {
	var rmin uint64
	for _, t := range s.tuples {
		if t.v > v {
			break
		}
		rmin += t.g
	}
	return rmin
}

// N returns the number of values inserted.
func (s *GK) N() uint64 { return s.n }

// Eps returns the configured error guarantee.
func (s *GK) Eps() float64 { return s.eps }

// TupleCount returns the number of stored tuples — the space figure
// experiment E6 reports.
func (s *GK) TupleCount() int { return len(s.tuples) }

// SizeBytes returns the approximate memory footprint.
func (s *GK) SizeBytes() int { return len(s.tuples) * 24 }

// MarshalBinary serializes the summary.
func (s *GK) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagGK, 1)
	w.F64(s.eps)
	w.U64(s.n)
	w.U32(uint32(len(s.tuples)))
	for _, t := range s.tuples {
		w.F64(t.v)
		w.U64(t.g)
		w.U64(t.delt)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a summary serialized by MarshalBinary.
func (s *GK) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagGK)
	if err != nil {
		return err
	}
	eps := r.F64()
	n := r.U64()
	cnt := r.Count(24) // F64 + 2 × U64 per tuple
	if r.Err() != nil {
		return r.Err()
	}
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("%w: GK eps %v", core.ErrCorrupt, eps)
	}
	tuples := make([]gkTuple, cnt)
	var gSum uint64
	for i := range tuples {
		tuples[i] = gkTuple{v: r.F64(), g: r.U64(), delt: r.U64()}
		gSum += tuples[i].g
	}
	if err := r.Done(); err != nil {
		return err
	}
	if gSum != n {
		return fmt.Errorf("%w: GK gap sum %d != n %d", core.ErrCorrupt, gSum, n)
	}
	s.eps, s.n, s.tuples, s.pending = eps, n, tuples, 0
	return nil
}

// Merge combines another GK summary. GK is not a cleanly mergeable
// summary (the paper's Mergeable Summaries discussion is exactly about
// this); the standard practical approach is to re-insert the other
// summary's tuples weighted by their gaps, which preserves a (slightly
// degraded) additive guarantee of εₐ + ε_b.
func (s *GK) Merge(other *GK) error {
	if math.Abs(s.eps-other.eps) > 1e-12 {
		return fmt.Errorf("%w: GK eps %v vs %v", core.ErrIncompatible, s.eps, other.eps)
	}
	if other.n == 0 {
		return nil
	}
	for _, t := range other.tuples {
		for g := uint64(0); g < t.g; g++ {
			s.Add(t.v)
		}
	}
	return nil
}
