package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/randx"
)

// REQ is the Relative-Error Quantiles sketch of Cormode, Karnin,
// Liberty, Thaler and Veselý — the PODS 2021 best paper the survey
// lists among its award-winning "gems". Where KLL guarantees additive
// rank error ε·n everywhere, REQ guarantees rank error ε·R(x) where
// R(x) is the rank from the favored end of the distribution: exactly
// what tail monitoring needs (a p99.999 estimate that is off by ε·n is
// useless; off by ε·(n−rank) is sharp).
//
// The construction follows the paper's relative-compactor scheme: a
// hierarchy of compactors like KLL's, except each compactor always
// *protects* its top section (the items nearest the favored end) and
// only compacts a prefix of its buffer, choosing the protected size by
// a random schedule. This implementation favors the upper tail (high
// ranks); use Neg to favor the lower tail by sign flipping.
type REQ struct {
	k          int // section size parameter (even, >= 4)
	levels     [][]float64
	n          uint64
	rng        *randx.RNG
	seed       uint64
	minV, maxV float64
}

// NewREQ creates a relative-error quantile sketch with section size k
// (accuracy ε ≈ c/k for a constant c ≈ 4; k = 32 gives ~1% relative
// rank error at the top).
func NewREQ(k int, seed uint64) *REQ {
	if k < 4 {
		panic("quantile: REQ requires k >= 4")
	}
	if k%2 == 1 {
		k++
	}
	return &REQ{
		k:      k,
		levels: make([][]float64, 1),
		rng:    randx.New(seed),
		seed:   seed,
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
	}
}

// capacityAt returns the buffer capacity at the given level: the
// number of protected sections grows with the level height so deeper
// (heavier) levels keep more of their tail exact.
func (s *REQ) capacityAt(level int) int {
	// 2 sections of size k at the base, +1 section per level above the
	// current bottom, capped to keep memory O(k·log²(n/k)).
	sections := 2 + level
	if sections > 8 {
		sections = 8
	}
	return sections * s.k
}

// Add inserts a value.
func (s *REQ) Add(v float64) {
	s.levels[0] = append(s.levels[0], v)
	s.n++
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	s.compact()
}

func (s *REQ) compact() {
	for level := 0; level < len(s.levels); level++ {
		if len(s.levels[level]) <= s.capacityAt(level) {
			continue
		}
		if level+1 == len(s.levels) {
			s.levels = append(s.levels, nil)
		}
		buf := s.levels[level]
		sort.Float64s(buf)
		// Protect the top section (highest values, the favored tail):
		// compact only the lowest "compactable" prefix. The protected
		// suffix length is at least k, randomized in whole sections to
		// keep the error unbiased across compactions.
		protect := s.k * (1 + s.rng.Intn(2))
		if protect >= len(buf) {
			protect = len(buf) / 2
		}
		compactable := buf[:len(buf)-protect]
		if len(compactable) < 2 {
			// Nothing sensible to compact; grow the buffer instead.
			return
		}
		offset := 0
		if s.rng.Bool() {
			offset = 1
		}
		promoted := make([]float64, 0, len(compactable)/2)
		for i := offset; i < len(compactable); i += 2 {
			promoted = append(promoted, compactable[i])
		}
		s.levels[level+1] = append(s.levels[level+1], promoted...)
		// Keep the protected suffix at this level.
		kept := append([]float64(nil), buf[len(buf)-protect:]...)
		s.levels[level] = kept
	}
}

// Rank returns the estimated number of inserted items ≤ v.
func (s *REQ) Rank(v float64) uint64 {
	var acc uint64
	for level, buf := range s.levels {
		w := uint64(1) << uint(level)
		for _, x := range buf {
			if x <= v {
				acc += w
			}
		}
	}
	return acc
}

// Quantile returns an approximate q-quantile with relative error in
// the upper tail: the estimate's rank is within ε·(n − q·n) of q·n for
// q near 1.
func (s *REQ) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.minV
	}
	if q >= 1 {
		return s.maxV
	}
	type wv struct {
		v float64
		w uint64
	}
	var items []wv
	var total uint64
	for level, buf := range s.levels {
		w := uint64(1) << uint(level)
		for _, v := range buf {
			items = append(items, wv{v, w})
			total += w
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	target := q * float64(total)
	var acc uint64
	for _, it := range items {
		acc += it.w
		if float64(acc) >= target {
			return it.v
		}
	}
	return s.maxV
}

// N returns the number of inserted values.
func (s *REQ) N() uint64 { return s.n }

// K returns the section-size parameter.
func (s *REQ) K() int { return s.k }

// RetainedItems returns the number of stored values.
func (s *REQ) RetainedItems() int {
	total := 0
	for _, buf := range s.levels {
		total += len(buf)
	}
	return total
}

// SizeBytes returns the approximate memory footprint.
func (s *REQ) SizeBytes() int { return s.RetainedItems() * 8 }

// Min returns the smallest inserted value.
func (s *REQ) Min() float64 { return s.minV }

// Max returns the largest inserted value (exact — the favored end is
// never compacted away).
func (s *REQ) Max() float64 { return s.maxV }

// MarshalBinary serializes the sketch.
func (s *REQ) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagREQ, 1)
	w.U32(uint32(s.k))
	w.U64(s.seed)
	w.U64(s.n)
	w.F64(s.minV)
	w.F64(s.maxV)
	w.U32(uint32(len(s.levels)))
	for _, buf := range s.levels {
		w.F64Slice(buf)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *REQ) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagREQ)
	if err != nil {
		return err
	}
	k := int(r.U32())
	seed := r.U64()
	n := r.U64()
	minV := r.F64()
	maxV := r.F64()
	numLevels := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if k < 4 || numLevels < 1 || numLevels > 64 {
		return fmt.Errorf("%w: REQ k=%d levels=%d", core.ErrCorrupt, k, numLevels)
	}
	levels := make([][]float64, numLevels)
	for i := range levels {
		levels[i] = r.F64Slice()
	}
	if err := r.Done(); err != nil {
		return err
	}
	s.k, s.seed, s.n, s.minV, s.maxV, s.levels = k, seed, n, minV, maxV, levels
	s.rng = randx.New(seed ^ 0x524551)
	return nil
}

// Merge folds another REQ sketch into this one by concatenating levels
// and re-compacting.
func (s *REQ) Merge(other *REQ) error {
	if s.k != other.k {
		return fmt.Errorf("%w: REQ k=%d vs k=%d", core.ErrIncompatible, s.k, other.k)
	}
	for len(s.levels) < len(other.levels) {
		s.levels = append(s.levels, nil)
	}
	for level, buf := range other.levels {
		s.levels[level] = append(s.levels[level], buf...)
	}
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	s.compact()
	return nil
}
