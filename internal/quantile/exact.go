package quantile

import (
	"math"
	"sort"
)

// Exact retains every value and answers exact quantiles — the ground
// truth against which the experiment harness scores every sketch, and
// the "just use the data warehouse" baseline the paper's §3 advertising
// discussion says eventually displaced sketches when hardware caught
// up. Its space is Θ(n); the whole point of the package is that the
// other summaries are sublinear.
type Exact struct {
	vals   []float64
	sorted bool
}

// NewExact creates an empty exact summary.
func NewExact() *Exact { return &Exact{} }

// Add inserts a value.
func (s *Exact) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sorted = false
}

// Quantile returns the exact q-quantile (nearest-rank rule on the
// sorted data).
func (s *Exact) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return math.NaN()
	}
	s.ensureSorted()
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(s.vals)-1))
	return s.vals[idx]
}

// Rank returns the exact number of values ≤ v.
func (s *Exact) Rank(v float64) uint64 {
	s.ensureSorted()
	i := sort.SearchFloat64s(s.vals, v)
	for i < len(s.vals) && s.vals[i] == v {
		i++
	}
	return uint64(i)
}

// N returns the number of values inserted.
func (s *Exact) N() uint64 { return uint64(len(s.vals)) }

// Sorted returns the sorted data (shared slice; callers must not
// mutate).
func (s *Exact) Sorted() []float64 {
	s.ensureSorted()
	return s.vals
}

// SizeBytes returns the memory footprint — Θ(n), the baseline cost.
func (s *Exact) SizeBytes() int { return len(s.vals) * 8 }

func (s *Exact) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
}
