package quantile

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// rankErr computes the normalized rank error of estimate est for target
// quantile q against the full sorted data.
func rankErr(sorted []float64, est float64, q float64) float64 {
	i := sort.SearchFloat64s(sorted, est)
	for i < len(sorted) && sorted[i] == est {
		i++
	}
	want := q * float64(len(sorted))
	return math.Abs(float64(i)-want) / float64(len(sorted))
}

// datasets used across the summaries: uniform, zipf-like skew, sorted
// (adversarial for naive buffering), and reversed.
func datasets(n int, seed uint64) map[string][]float64 {
	rng := randx.New(seed)
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1000
	}
	skew := make([]float64, n)
	for i := range skew {
		skew[i] = math.Exp(rng.Normal() * 2) // lognormal: heavy right tail
	}
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	reversed := make([]float64, n)
	for i := range reversed {
		reversed[i] = float64(n - i)
	}
	return map[string][]float64{
		"uniform": uniform, "lognormal": skew, "sorted": sorted, "reversed": reversed,
	}
}

var probeQs = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}

func TestGKRankGuarantee(t *testing.T) {
	const n = 20000
	const eps = 0.01
	for name, data := range datasets(n, 1) {
		g := NewGK(eps)
		for _, v := range data {
			g.Add(v)
		}
		sortedData := append([]float64(nil), data...)
		sort.Float64s(sortedData)
		for _, q := range probeQs {
			if re := rankErr(sortedData, g.Quantile(q), q); re > 2*eps {
				t.Errorf("%s q=%.2f: rank error %.4f > %.4f", name, q, re, 2*eps)
			}
		}
	}
}

func TestGKSpaceSublinear(t *testing.T) {
	g := NewGK(0.01)
	const n = 100000
	rng := randx.New(2)
	for i := 0; i < n; i++ {
		g.Add(rng.Float64())
	}
	if g.TupleCount() > n/20 {
		t.Errorf("GK stored %d tuples for n=%d — compression not working", g.TupleCount(), n)
	}
	if g.N() != n {
		t.Errorf("N = %d", g.N())
	}
}

func TestGKMergeKeepsApproximateGuarantee(t *testing.T) {
	const n = 10000
	const eps = 0.02
	a, b := NewGK(eps), NewGK(eps)
	all := make([]float64, 0, 2*n)
	rng := randx.New(3)
	for i := 0; i < n; i++ {
		va, vb := rng.Float64(), rng.Float64()+0.5
		a.Add(va)
		b.Add(vb)
		all = append(all, va, vb)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(all)
	for _, q := range probeQs {
		if re := rankErr(all, a.Quantile(q), q); re > 3*eps {
			t.Errorf("merged GK q=%.2f rank error %.4f", q, re)
		}
	}
	if err := a.Merge(NewGK(0.1)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across eps must fail")
	}
}

func TestGKSerialization(t *testing.T) {
	g := NewGK(0.01)
	rng := randx.New(99)
	for i := 0; i < 20000; i++ {
		g.Add(rng.Float64())
	}
	data, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var h GK
	if err := h.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range probeQs {
		if h.Quantile(q) != g.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
	if h.N() != g.N() || h.Eps() != g.Eps() {
		t.Error("round trip changed metadata")
	}
	// Gap-sum consistency check rejects tampering.
	bad := append([]byte(nil), data...)
	bad[15]++ // perturb n
	var x GK
	if err := x.UnmarshalBinary(bad); !errors.Is(err, core.ErrCorrupt) {
		t.Error("inconsistent n accepted")
	}
}

func TestKLLRankGuarantee(t *testing.T) {
	const n = 50000
	for name, data := range datasets(n, 4) {
		s := NewKLL(200, 5)
		for _, v := range data {
			s.Add(v)
		}
		sortedData := append([]float64(nil), data...)
		sort.Float64s(sortedData)
		for _, q := range probeQs {
			if re := rankErr(sortedData, s.Quantile(q), q); re > 3*s.Eps() {
				t.Errorf("%s q=%.2f: rank error %.4f > %.4f", name, q, re, 3*s.Eps())
			}
		}
	}
}

func TestKLLSpaceSublinear(t *testing.T) {
	s := NewKLL(200, 6)
	const n = 1000000
	rng := randx.New(7)
	for i := 0; i < n; i++ {
		s.Add(rng.Float64())
	}
	if s.RetainedItems() > 3000 {
		t.Errorf("KLL retained %d items for n=%d", s.RetainedItems(), n)
	}
}

func TestKLLMinMaxExact(t *testing.T) {
	s := NewKLL(64, 8)
	rng := randx.New(9)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < 100000; i++ {
		v := rng.Normal()
		s.Add(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if s.Min() != lo || s.Max() != hi {
		t.Error("KLL min/max not exact")
	}
	if s.Quantile(0) != lo || s.Quantile(1) != hi {
		t.Error("extreme quantiles must return exact min/max")
	}
}

func TestKLLMergeGuarantee(t *testing.T) {
	const shards = 16
	const perShard = 5000
	whole := make([]float64, 0, shards*perShard)
	merged := NewKLL(200, 10)
	rng := randx.New(11)
	for sh := 0; sh < shards; sh++ {
		s := NewKLL(200, uint64(100+sh))
		for i := 0; i < perShard; i++ {
			v := rng.Float64()*float64(sh+1) - float64(sh)/2
			s.Add(v)
			whole = append(whole, v)
		}
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	sort.Float64s(whole)
	for _, q := range probeQs {
		if re := rankErr(whole, merged.Quantile(q), q); re > 4*merged.Eps() {
			t.Errorf("merged KLL q=%.2f rank error %.4f", q, re)
		}
	}
	if merged.N() != shards*perShard {
		t.Errorf("merged N = %d", merged.N())
	}
	if err := merged.Merge(NewKLL(64, 1)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across k must fail")
	}
}

func TestKLLCDFMonotone(t *testing.T) {
	s := NewKLL(128, 12)
	rng := randx.New(13)
	for i := 0; i < 20000; i++ {
		s.Add(rng.Normal())
	}
	prev := -1.0
	for v := -3.0; v <= 3.0; v += 0.1 {
		c := s.CDF(v)
		if c < prev {
			t.Fatalf("CDF not monotone at %v", v)
		}
		prev = c
	}
	if s.CDF(-100) != 0 || s.CDF(100) != 1 {
		t.Error("CDF extremes wrong")
	}
}

func TestKLLSerialization(t *testing.T) {
	s := NewKLL(100, 14)
	rng := randx.New(15)
	for i := 0; i < 30000; i++ {
		s.Add(rng.Float64())
	}
	data, _ := s.MarshalBinary()
	var g KLL
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range probeQs {
		if g.Quantile(q) != s.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
	if g.N() != s.N() {
		t.Error("round trip changed N")
	}
}

func TestQDigestRankGuarantee(t *testing.T) {
	const n = 50000
	const logU = 16
	const k = 2048
	rng := randx.New(16)
	qd := NewQDigest(logU, k)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := uint64(rng.Intn(1 << logU))
		qd.Add(v, 1)
		vals[i] = float64(v)
	}
	sort.Float64s(vals)
	// Error bound: (logU/k)*n plus quantile discretization.
	bound := 3 * float64(logU) / float64(k)
	for _, q := range probeQs {
		est := float64(qd.Quantile(q))
		if re := rankErr(vals, est, q); re > bound+0.01 {
			t.Errorf("q=%.2f: rank error %.4f > %.4f", q, re, bound+0.01)
		}
	}
}

func TestQDigestCompression(t *testing.T) {
	qd := NewQDigest(20, 100)
	rng := randx.New(17)
	for i := 0; i < 100000; i++ {
		qd.Add(uint64(rng.Intn(1<<20)), 1)
	}
	qd.Compress()
	// Space should be O(k log U), far below distinct count.
	if qd.NodeCount() > 100*20*3 {
		t.Errorf("q-digest holds %d nodes, want O(k logU)", qd.NodeCount())
	}
}

func TestQDigestWeightedAndMerge(t *testing.T) {
	a := NewQDigest(10, 64)
	b := NewQDigest(10, 64)
	for v := uint64(0); v < 512; v++ {
		a.Add(v, 3)
		b.Add(v+512, 3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1024*3 {
		t.Errorf("merged N = %d", a.N())
	}
	med := a.Quantile(0.5)
	if med < 400 || med > 624 {
		t.Errorf("merged median %d, want ~512", med)
	}
	if err := a.Merge(NewQDigest(11, 64)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across domains must fail")
	}
}

func TestQDigestSerialization(t *testing.T) {
	qd := NewQDigest(12, 128)
	rng := randx.New(18)
	for i := 0; i < 20000; i++ {
		qd.Add(uint64(rng.Intn(1<<12)), 1)
	}
	data, _ := qd.MarshalBinary()
	var g QDigest
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range probeQs {
		if g.Quantile(q) != qd.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
	// Corrupted count sum must be rejected.
	bad := append([]byte(nil), data...)
	bad[15]++ // perturb n
	var h QDigest
	if err := h.UnmarshalBinary(bad); err == nil {
		t.Error("inconsistent n accepted")
	}
}

func TestQDigestPanics(t *testing.T) {
	qd := NewQDigest(8, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain value must panic")
		}
	}()
	qd.Add(256, 1)
}

func TestTDigestAccuracyMidAndTail(t *testing.T) {
	const n = 100000
	td := NewTDigest(100)
	rng := randx.New(19)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Normal()
		td.Add(v)
		vals[i] = v
	}
	sort.Float64s(vals)
	for _, q := range probeQs {
		if re := rankErr(vals, td.Quantile(q), q); re > 0.02 {
			t.Errorf("q=%.2f rank error %.4f", q, re)
		}
	}
	// Tail quantiles should be very tight (t-digest's design goal).
	for _, q := range []float64{0.001, 0.999} {
		if re := rankErr(vals, td.Quantile(q), q); re > 0.005 {
			t.Errorf("tail q=%.3f rank error %.4f", q, re)
		}
	}
}

func TestTDigestTailBeatsMiddle(t *testing.T) {
	// E6a: relative rank error at the 99.9th percentile should be no
	// worse than at the median, thanks to the k1 scale function.
	const n = 200000
	td := NewTDigest(100)
	rng := randx.New(20)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := math.Exp(rng.Normal())
		td.Add(v)
		vals[i] = v
	}
	sort.Float64s(vals)
	tail := rankErr(vals, td.Quantile(0.999), 0.999)
	mid := rankErr(vals, td.Quantile(0.5), 0.5)
	if tail > mid+0.002 {
		t.Errorf("tail error %.5f worse than mid %.5f", tail, mid)
	}
}

func TestTDigestCentroidBudget(t *testing.T) {
	td := NewTDigest(100)
	rng := randx.New(21)
	for i := 0; i < 500000; i++ {
		td.Add(rng.Float64())
	}
	if c := td.CentroidCount(); c > 200 {
		t.Errorf("t-digest holds %d centroids for delta=100", c)
	}
}

func TestTDigestMerge(t *testing.T) {
	a, b := NewTDigest(100), NewTDigest(100)
	all := make([]float64, 0, 60000)
	rng := randx.New(22)
	for i := 0; i < 30000; i++ {
		va, vb := rng.Normal(), rng.Normal()+3
		a.Add(va)
		b.Add(vb)
		all = append(all, va, vb)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	sort.Float64s(all)
	for _, q := range probeQs {
		if re := rankErr(all, a.Quantile(q), q); re > 0.03 {
			t.Errorf("merged q=%.2f rank error %.4f", q, re)
		}
	}
	if err := a.Merge(NewTDigest(50)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across compressions must fail")
	}
}

func TestTDigestCDF(t *testing.T) {
	td := NewTDigest(200)
	rng := randx.New(23)
	for i := 0; i < 50000; i++ {
		td.Add(rng.Float64())
	}
	if got := td.CDF(0.5); math.Abs(got-0.5) > 0.02 {
		t.Errorf("CDF(0.5) = %.4f", got)
	}
	if td.CDF(-1) != 0 || td.CDF(2) != 1 {
		t.Error("CDF outside range wrong")
	}
}

func TestTDigestSerialization(t *testing.T) {
	td := NewTDigest(100)
	rng := randx.New(24)
	for i := 0; i < 10000; i++ {
		td.Add(rng.Normal())
	}
	data, _ := td.MarshalBinary()
	var g TDigest
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range probeQs {
		if g.Quantile(q) != td.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
}

func TestMRLRankAccuracy(t *testing.T) {
	const n = 50000
	for name, data := range datasets(n, 25) {
		s := NewMRL(8, 512, 26)
		for _, v := range data {
			s.Add(v)
		}
		sortedData := append([]float64(nil), data...)
		sort.Float64s(sortedData)
		for _, q := range probeQs {
			if re := rankErr(sortedData, s.Quantile(q), q); re > 0.05 {
				t.Errorf("%s q=%.2f: rank error %.4f", name, q, re)
			}
		}
	}
}

func TestMRLSpaceBounded(t *testing.T) {
	s := NewMRL(8, 256, 27)
	rng := randx.New(28)
	for i := 0; i < 500000; i++ {
		s.Add(rng.Float64())
	}
	if s.RetainedItems() > 8*256 {
		t.Errorf("MRL retained %d items beyond buffer budget", s.RetainedItems())
	}
	if s.N() != 500000 {
		t.Errorf("N = %d", s.N())
	}
}

func TestMRLSerialization(t *testing.T) {
	s := NewMRL(4, 128, 29)
	rng := randx.New(30)
	for i := 0; i < 20000; i++ {
		s.Add(rng.Float64())
	}
	data, _ := s.MarshalBinary()
	var g MRL
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range probeQs {
		if g.Quantile(q) != s.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
}

func TestExactBaseline(t *testing.T) {
	e := NewExact()
	for i := 10; i >= 1; i-- {
		e.Add(float64(i))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 10 {
		t.Error("exact extremes wrong")
	}
	if e.Quantile(0.5) != 5 && e.Quantile(0.5) != 6 {
		t.Errorf("exact median = %v", e.Quantile(0.5))
	}
	if e.Rank(5) != 5 {
		t.Errorf("Rank(5) = %d", e.Rank(5))
	}
	if e.N() != 10 {
		t.Errorf("N = %d", e.N())
	}
	if math.IsNaN(e.Quantile(0.5)) {
		t.Error("non-empty exact returned NaN")
	}
	if !math.IsNaN(NewExact().Quantile(0.5)) {
		t.Error("empty exact should return NaN")
	}
}

func TestSpaceComparisonE6(t *testing.T) {
	// All sketches must be far below the exact baseline at n = 200k.
	const n = 200000
	rng := randx.New(31)
	gk := NewGK(0.01)
	kll := NewKLL(200, 32)
	td := NewTDigest(100)
	mrl := NewMRL(8, 512, 33)
	exact := NewExact()
	for i := 0; i < n; i++ {
		v := rng.Float64()
		gk.Add(v)
		kll.Add(v)
		td.Add(v)
		mrl.Add(v)
		exact.Add(v)
	}
	for name, size := range map[string]int{
		"gk": gk.SizeBytes(), "kll": kll.SizeBytes(),
		"tdigest": td.SizeBytes(), "mrl": mrl.SizeBytes(),
	} {
		if size > exact.SizeBytes()/20 {
			t.Errorf("%s uses %d bytes, not sublinear vs exact %d", name, size, exact.SizeBytes())
		}
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"gk":      func() { NewGK(0) },
		"kll":     func() { NewKLL(4, 1) },
		"qdigest": func() { NewQDigest(0, 4) },
		"tdigest": func() { NewTDigest(1) },
		"mrl":     func() { NewMRL(1, 4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkKLLAdd(b *testing.B) {
	s := NewKLL(200, 1)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}

func BenchmarkGKAdd(b *testing.B) {
	s := NewGK(0.01)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}

func BenchmarkTDigestAdd(b *testing.B) {
	s := NewTDigest(100)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}

func BenchmarkKLLQuantile(b *testing.B) {
	s := NewKLL(200, 1)
	rng := randx.New(1)
	for i := 0; i < 1000000; i++ {
		s.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.99)
	}
}
