package quantile

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// relativeTailErr returns |rank(est) − target| / (n − target): the
// rank error normalized by distance from the top — the quantity REQ
// bounds.
func relativeTailErr(sorted []float64, est float64, q float64) float64 {
	n := float64(len(sorted))
	i := sort.SearchFloat64s(sorted, est)
	for i < len(sorted) && sorted[i] == est {
		i++
	}
	target := q * n
	tail := n - target
	if tail < 1 {
		tail = 1
	}
	return math.Abs(float64(i)-target) / tail
}

func TestREQTailRelativeError(t *testing.T) {
	const n = 200000
	rng := randx.New(1)
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Exp(rng.Normal() * 2)
	}
	s := NewREQ(32, 2)
	for _, v := range data {
		s.Add(v)
	}
	ref := append([]float64(nil), data...)
	sort.Float64s(ref)
	// Relative (tail-normalized) error must stay bounded even at
	// extreme quantiles — the REQ guarantee. 0.35 is generous slack on
	// epsilon ~ c/k.
	for _, q := range []float64{0.9, 0.99, 0.999, 0.9999} {
		if re := relativeTailErr(ref, s.Quantile(q), q); re > 0.35 {
			t.Errorf("q=%v: relative tail error %.3f", q, re)
		}
	}
}

func TestREQBeatsKLLInDeepTail(t *testing.T) {
	// The headline of the PODS 2021 paper: at matched space, REQ's
	// tail-normalized error beats an additive-guarantee sketch in the
	// deep tail. Compare mean tail errors over trials.
	const n = 100000
	var reqErr, kllErr float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		rng := randx.New(uint64(trial) + 10)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64()
		}
		req := NewREQ(32, uint64(trial)+20)
		for _, v := range data {
			req.Add(v)
		}
		kll := NewKLL(req.RetainedItems()*2/3, uint64(trial)+30) // match space approx
		for _, v := range data {
			kll.Add(v)
		}
		ref := append([]float64(nil), data...)
		sort.Float64s(ref)
		for _, q := range []float64{0.999, 0.9995, 0.9999} {
			reqErr += relativeTailErr(ref, req.Quantile(q), q)
			kllErr += relativeTailErr(ref, kll.Quantile(q), q)
		}
	}
	if reqErr >= kllErr {
		t.Errorf("REQ deep-tail error %.3f not better than KLL %.3f", reqErr, kllErr)
	}
}

func TestREQMaxExact(t *testing.T) {
	s := NewREQ(16, 3)
	rng := randx.New(4)
	maxSeen := math.Inf(-1)
	for i := 0; i < 100000; i++ {
		v := rng.Normal()
		s.Add(v)
		if v > maxSeen {
			maxSeen = v
		}
	}
	if s.Max() != maxSeen || s.Quantile(1) != maxSeen {
		t.Error("REQ lost the maximum")
	}
}

func TestREQSpaceSublinear(t *testing.T) {
	s := NewREQ(32, 5)
	rng := randx.New(6)
	for i := 0; i < 1000000; i++ {
		s.Add(rng.Float64())
	}
	if s.RetainedItems() > 20000 {
		t.Errorf("REQ retained %d items for n=1e6", s.RetainedItems())
	}
	if s.N() != 1000000 {
		t.Errorf("N = %d", s.N())
	}
}

func TestREQMidQuantilesReasonable(t *testing.T) {
	const n = 100000
	s := NewREQ(32, 7)
	rng := randx.New(8)
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.Float64()
		s.Add(data[i])
	}
	sort.Float64s(data)
	// Mid quantiles only need additive accuracy.
	for _, q := range []float64{0.25, 0.5, 0.75} {
		est := s.Quantile(q)
		i := sort.SearchFloat64s(data, est)
		if math.Abs(float64(i)-q*n)/n > 0.05 {
			t.Errorf("q=%v rank error %.3f", q, math.Abs(float64(i)-q*n)/n)
		}
	}
}

func TestREQMerge(t *testing.T) {
	a := NewREQ(32, 9)
	b := NewREQ(32, 10)
	all := make([]float64, 0, 100000)
	rng := randx.New(11)
	for i := 0; i < 50000; i++ {
		va, vb := rng.Float64(), rng.Float64()+0.3
		a.Add(va)
		b.Add(vb)
		all = append(all, va, vb)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != 100000 {
		t.Errorf("merged N = %d", a.N())
	}
	sort.Float64s(all)
	for _, q := range []float64{0.9, 0.99, 0.999} {
		if re := relativeTailErr(all, a.Quantile(q), q); re > 0.5 {
			t.Errorf("merged q=%v relative tail error %.3f", q, re)
		}
	}
	if err := a.Merge(NewREQ(16, 12)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across k must fail")
	}
}

func TestREQSerialization(t *testing.T) {
	s := NewREQ(32, 13)
	rng := randx.New(14)
	for i := 0; i < 50000; i++ {
		s.Add(rng.Float64())
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g REQ
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if g.Quantile(q) != s.Quantile(q) {
			t.Fatal("round trip changed quantiles")
		}
	}
	if g.N() != s.N() || g.Max() != s.Max() {
		t.Error("round trip changed metadata")
	}
	if err := g.UnmarshalBinary(data[:9]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated input accepted")
	}
}

func TestREQPanicsAndOddK(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for k < 4")
			}
		}()
		NewREQ(2, 1)
	}()
	s := NewREQ(5, 1) // odd k rounds up
	if s.K()%2 != 0 {
		t.Error("k should be even")
	}
}

func BenchmarkREQAdd(b *testing.B) {
	s := NewREQ(32, 1)
	rng := randx.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
