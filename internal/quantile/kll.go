package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/randx"
)

// KLL is the Karnin–Lang–Liberty quantile sketch (FOCS 2016), the
// near-optimal end of the paper's quantile lineage: a hierarchy of
// compactors where level h holds items of weight 2^h. When a level
// fills, it sorts itself and promotes every other item (random offset)
// to the level above — halving the count and doubling the weight.
// Capacities shrink geometrically (c^depth) down the hierarchy, giving
// O((1/ε)·√log(1/δ)) space for additive rank error εn. KLL sketches
// merge by concatenating levels and re-compacting, which is how the
// mergeability experiment E7 exercises it.
type KLL struct {
	k          int // capacity of the top (largest) compactor
	c          float64
	levels     [][]float64
	n          uint64
	rng        *randx.RNG
	seed       uint64
	minV, maxV float64
}

// NewKLL creates a KLL sketch with top-compactor capacity k (commonly
// 200 for ~1% rank error). Larger k means smaller error: ε ≈ 2.3/k.
func NewKLL(k int, seed uint64) *KLL {
	if k < 8 {
		panic("quantile: KLL requires k >= 8")
	}
	return &KLL{
		k:      k,
		c:      2.0 / 3.0,
		levels: make([][]float64, 1),
		rng:    randx.New(seed),
		seed:   seed,
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
	}
}

// capacity returns the capacity of the compactor at the given level,
// where the highest level has capacity k and lower levels shrink by c.
func (s *KLL) capacity(level int) int {
	depth := len(s.levels) - 1 - level
	cap := int(math.Ceil(float64(s.k) * math.Pow(s.c, float64(depth))))
	if cap < 2 {
		cap = 2
	}
	return cap
}

// Add inserts a value.
func (s *KLL) Add(v float64) {
	s.levels[0] = append(s.levels[0], v)
	s.n++
	if v < s.minV {
		s.minV = v
	}
	if v > s.maxV {
		s.maxV = v
	}
	s.compact()
}

// compact promotes overfull levels upward.
func (s *KLL) compact() {
	for level := 0; level < len(s.levels); level++ {
		if len(s.levels[level]) <= s.capacity(level) {
			continue
		}
		if level+1 == len(s.levels) {
			s.levels = append(s.levels, nil)
		}
		buf := s.levels[level]
		sort.Float64s(buf)
		// Random offset: keep odd or even positions with equal
		// probability; survivors double their weight.
		offset := 0
		if s.rng.Bool() {
			offset = 1
		}
		promoted := make([]float64, 0, len(buf)/2)
		for i := offset; i < len(buf); i += 2 {
			promoted = append(promoted, buf[i])
		}
		s.levels[level+1] = append(s.levels[level+1], promoted...)
		s.levels[level] = buf[:0]
	}
}

// weightedItem pairs a retained value with its level weight.
type weightedItem struct {
	v float64
	w uint64
}

// items returns all retained items with weights, sorted by value.
func (s *KLL) items() []weightedItem {
	var out []weightedItem
	for level, buf := range s.levels {
		w := uint64(1) << uint(level)
		for _, v := range buf {
			out = append(out, weightedItem{v, w})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

// Quantile returns an approximate q-quantile.
func (s *KLL) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.minV
	}
	if q >= 1 {
		return s.maxV
	}
	target := q * float64(s.n)
	var acc uint64
	items := s.items()
	for _, it := range items {
		acc += it.w
		if float64(acc) >= target {
			return it.v
		}
	}
	return s.maxV
}

// Rank returns the estimated number of inserted items ≤ v.
func (s *KLL) Rank(v float64) uint64 {
	var acc uint64
	for level, buf := range s.levels {
		w := uint64(1) << uint(level)
		for _, x := range buf {
			if x <= v {
				acc += w
			}
		}
	}
	return acc
}

// CDF returns the estimated cumulative fraction of items ≤ v, clamped
// to [0, 1] (compaction can leave the total retained weight slightly
// off n) with exact handling outside the observed range.
func (s *KLL) CDF(v float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if v < s.minV {
		return 0
	}
	if v >= s.maxV {
		return 1
	}
	c := float64(s.Rank(v)) / float64(s.n)
	return math.Min(1, math.Max(0, c))
}

// N returns the number of inserted values.
func (s *KLL) N() uint64 { return s.n }

// K returns the top-compactor capacity.
func (s *KLL) K() int { return s.k }

// Eps returns the approximate rank-error guarantee ≈ 2.3/k.
func (s *KLL) Eps() float64 { return 2.3 / float64(s.k) }

// RetainedItems returns the number of stored values — the E6 space
// figure.
func (s *KLL) RetainedItems() int {
	total := 0
	for _, buf := range s.levels {
		total += len(buf)
	}
	return total
}

// SizeBytes returns the approximate memory footprint.
func (s *KLL) SizeBytes() int { return s.RetainedItems() * 8 }

// Min returns the smallest inserted value.
func (s *KLL) Min() float64 { return s.minV }

// Max returns the largest inserted value.
func (s *KLL) Max() float64 { return s.maxV }

// Merge folds another KLL sketch into this one by concatenating levels
// and re-compacting; the rank guarantee is preserved (KLL is fully
// mergeable).
func (s *KLL) Merge(other *KLL) error {
	if s.k != other.k {
		return fmt.Errorf("%w: KLL k=%d vs k=%d", core.ErrIncompatible, s.k, other.k)
	}
	for len(s.levels) < len(other.levels) {
		s.levels = append(s.levels, nil)
	}
	for level, buf := range other.levels {
		s.levels[level] = append(s.levels[level], buf...)
	}
	s.n += other.n
	if other.minV < s.minV {
		s.minV = other.minV
	}
	if other.maxV > s.maxV {
		s.maxV = other.maxV
	}
	s.compact()
	return nil
}

// MarshalBinary serializes the sketch.
func (s *KLL) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagKLL, 1)
	w.U32(uint32(s.k))
	w.U64(s.seed)
	w.U64(s.n)
	w.F64(s.minV)
	w.F64(s.maxV)
	w.U32(uint32(len(s.levels)))
	for _, buf := range s.levels {
		w.F64Slice(buf)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *KLL) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagKLL, 1)
	if err != nil {
		return err
	}
	k := int(r.U32())
	seed := r.U64()
	n := r.U64()
	minV := r.F64()
	maxV := r.F64()
	numLevels := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if k < 8 || numLevels < 1 || numLevels > 64 {
		return fmt.Errorf("%w: KLL k=%d levels=%d", core.ErrCorrupt, k, numLevels)
	}
	levels := make([][]float64, numLevels)
	for i := range levels {
		levels[i] = r.F64Slice()
	}
	if err := r.Done(); err != nil {
		return err
	}
	s.k, s.seed, s.n, s.minV, s.maxV, s.levels = k, seed, n, minV, maxV, levels
	s.c = 2.0 / 3.0
	s.rng = randx.New(seed ^ 0x4b4c4c)
	return nil
}
