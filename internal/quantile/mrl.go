package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/randx"
)

// MRL is the Manku–Rajagopalan–Lindsay quantile algorithm (SIGMOD
// 1998), which adapted the Munro–Paterson multi-pass selection scheme
// to one streaming pass: maintain b buffers of capacity k; when all are
// full, COLLAPSE merges the two lowest-weight buffers into one by
// taking every other element of their weighted merge (randomized
// offset), doubling the weight. It is the historical midpoint of the
// paper's quantile lineage between Munro–Paterson (1980) and GK (2001),
// and the direct structural ancestor of KLL's compactors.
type MRL struct {
	k       int
	buffers []mrlBuffer
	active  int // index of the buffer currently being filled, -1 if none
	n       uint64
	rng     *randx.RNG
	seed    uint64
}

type mrlBuffer struct {
	vals   []float64
	weight uint64
	full   bool
}

// NewMRL creates an MRL summary with b buffers of capacity k each.
func NewMRL(b, k int, seed uint64) *MRL {
	if b < 2 || k < 2 {
		panic("quantile: MRL requires b >= 2 buffers of k >= 2")
	}
	buffers := make([]mrlBuffer, b)
	for i := range buffers {
		buffers[i].vals = make([]float64, 0, k)
		buffers[i].weight = 1
	}
	return &MRL{k: k, buffers: buffers, active: 0, rng: randx.New(seed), seed: seed}
}

// Add inserts a value.
func (s *MRL) Add(v float64) {
	s.n++
	if s.active < 0 || s.buffers[s.active].full {
		s.active = s.findEmpty()
		if s.active < 0 {
			s.collapse()
			s.active = s.findEmpty()
		}
	}
	b := &s.buffers[s.active]
	b.vals = append(b.vals, v)
	if len(b.vals) == s.k {
		sort.Float64s(b.vals)
		b.full = true
		s.active = -1
	}
}

func (s *MRL) findEmpty() int {
	for i := range s.buffers {
		if !s.buffers[i].full && len(s.buffers[i].vals) < s.k {
			return i
		}
	}
	return -1
}

// collapse merges the two lowest-weight full buffers.
func (s *MRL) collapse() {
	// Select the two full buffers with the smallest weights.
	i1, i2 := -1, -1
	for i := range s.buffers {
		if !s.buffers[i].full {
			continue
		}
		switch {
		case i1 < 0 || s.buffers[i].weight < s.buffers[i1].weight:
			i2 = i1
			i1 = i
		case i2 < 0 || s.buffers[i].weight < s.buffers[i2].weight:
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 {
		return
	}
	a, b := &s.buffers[i1], &s.buffers[i2]
	// Weighted merge: expand conceptually, sample every (wa+wb)-th
	// element with random start. Implemented by walking the merge with
	// weight accumulation.
	type wv struct {
		v float64
		w uint64
	}
	merged := make([]wv, 0, len(a.vals)+len(b.vals))
	ai, bi := 0, 0
	for ai < len(a.vals) || bi < len(b.vals) {
		if bi >= len(b.vals) || (ai < len(a.vals) && a.vals[ai] <= b.vals[bi]) {
			merged = append(merged, wv{a.vals[ai], a.weight})
			ai++
		} else {
			merged = append(merged, wv{b.vals[bi], b.weight})
			bi++
		}
	}
	newWeight := a.weight + b.weight
	stride := newWeight
	offset := uint64(s.rng.Intn(int(stride))) + 1 // position within each stride to sample
	out := make([]float64, 0, s.k)
	var pos uint64 // cumulative weight consumed
	next := offset
	for _, m := range merged {
		for taken := uint64(0); taken < m.w; taken++ {
			pos++
			if pos == next {
				out = append(out, m.v)
				next += stride
			}
		}
	}
	a.vals = out
	a.weight = newWeight
	a.full = true
	b.vals = b.vals[:0]
	b.weight = 1
	b.full = false
}

// Quantile returns an approximate q-quantile.
func (s *MRL) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	type wv struct {
		v float64
		w uint64
	}
	var all []wv
	var totalW uint64
	for i := range s.buffers {
		b := &s.buffers[i]
		for _, v := range b.vals {
			all = append(all, wv{v, b.weight})
			totalW += b.weight
		}
	}
	if len(all) == 0 {
		return math.NaN()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	target := q * float64(totalW)
	var acc uint64
	for _, it := range all {
		acc += it.w
		if float64(acc) >= target {
			return it.v
		}
	}
	return all[len(all)-1].v
}

// N returns the number of inserted values.
func (s *MRL) N() uint64 { return s.n }

// RetainedItems returns the number of stored values.
func (s *MRL) RetainedItems() int {
	total := 0
	for i := range s.buffers {
		total += len(s.buffers[i].vals)
	}
	return total
}

// SizeBytes returns the approximate memory footprint.
func (s *MRL) SizeBytes() int { return s.RetainedItems() * 8 }

// MarshalBinary serializes the summary.
func (s *MRL) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagMRL, 1)
	w.U32(uint32(s.k))
	w.U32(uint32(len(s.buffers)))
	w.U64(s.seed)
	w.U64(s.n)
	w.I64(int64(s.active))
	for i := range s.buffers {
		b := &s.buffers[i]
		w.U64(b.weight)
		if b.full {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.F64Slice(b.vals)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a summary serialized by MarshalBinary.
func (s *MRL) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagMRL)
	if err != nil {
		return err
	}
	k := int(r.U32())
	nb := int(r.U32())
	seed := r.U64()
	n := r.U64()
	active := int(r.I64())
	if r.Err() != nil {
		return r.Err()
	}
	if k < 2 || nb < 2 || nb > 1<<20 || active < -1 || active >= nb {
		return fmt.Errorf("%w: MRL params", core.ErrCorrupt)
	}
	buffers := make([]mrlBuffer, nb)
	for i := range buffers {
		buffers[i].weight = r.U64()
		buffers[i].full = r.U8() == 1
		buffers[i].vals = r.F64Slice()
		if buffers[i].vals == nil {
			// No capacity hint: k is untrusted here and a corrupt value
			// would pre-allocate gigabytes per empty buffer.
			buffers[i].vals = []float64{}
		}
	}
	if err := r.Done(); err != nil {
		return err
	}
	s.k, s.buffers, s.active, s.n, s.seed = k, buffers, active, n, seed
	s.rng = randx.New(seed ^ 0x4d524c)
	return nil
}
