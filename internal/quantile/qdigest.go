package quantile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// QDigest is the q-digest of Shrivastava, Buragohain, Agrawal and Suri
// (SenSys 2004), designed for merging across sensor networks — the
// paper's example of a quantile sketch that "focused on mergability for
// distributed data". It summarizes values from a bounded integer domain
// [0, 2^logU) as counts on nodes of the implicit complete binary tree
// over the domain; the digest property keeps every non-root node's
// neighborhood count above n/k, bounding the tree at O(k·log U) nodes
// and rank error at (log U / k)·n.
type QDigest struct {
	logU  uint8
	k     uint64
	n     uint64
	nodes map[uint64]uint64 // tree node id (1-based heap numbering) -> count
}

// NewQDigest creates a q-digest over the domain [0, 2^logU) with
// compression factor k (rank error ≈ logU/k).
func NewQDigest(logU uint8, k uint64) *QDigest {
	if logU < 1 || logU > 32 {
		panic("quantile: q-digest logU must be in [1,32]")
	}
	if k < 1 {
		panic("quantile: q-digest k must be >= 1")
	}
	return &QDigest{logU: logU, k: k, nodes: make(map[uint64]uint64)}
}

// leafID returns the tree id of the leaf for value v: leaves occupy
// ids [2^logU, 2^(logU+1)).
func (s *QDigest) leafID(v uint64) uint64 { return (1 << s.logU) + v }

// Add inserts weight copies of value v.
func (s *QDigest) Add(v uint64, weight uint64) {
	if v >= 1<<s.logU {
		panic(fmt.Sprintf("quantile: q-digest value %d outside domain 2^%d", v, s.logU))
	}
	s.nodes[s.leafID(v)] += weight
	s.n += weight
	if uint64(len(s.nodes)) > 3*s.k {
		s.Compress()
	}
}

// Compress restores the digest property bottom-up: any node whose
// count plus sibling plus parent is below ⌊n/k⌋ is folded into its
// parent.
func (s *QDigest) Compress() {
	threshold := s.n / s.k
	if threshold == 0 {
		threshold = 1
	}
	// Process nodes level by level from the leaves up.
	ids := make([]uint64, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] }) // deepest first
	for _, id := range ids {
		if id <= 1 {
			continue // root cannot fold further
		}
		c, ok := s.nodes[id]
		if !ok {
			continue // already folded
		}
		sibling := id ^ 1
		parent := id >> 1
		total := c + s.nodes[sibling] + s.nodes[parent]
		if total < threshold {
			s.nodes[parent] = total
			delete(s.nodes, id)
			delete(s.nodes, sibling)
		}
	}
}

// Quantile returns an approximate q-quantile of the inserted values.
// It performs the canonical post-order walk: nodes sorted by (right
// endpoint, descending level) accumulate counts until q·n is reached.
func (s *QDigest) Quantile(q float64) uint64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	type span struct {
		lo, hi uint64
		count  uint64
	}
	spans := make([]span, 0, len(s.nodes))
	for id, c := range s.nodes {
		lo, hi := s.nodeRange(id)
		spans = append(spans, span{lo, hi, c})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].hi != spans[j].hi {
			return spans[i].hi < spans[j].hi
		}
		return spans[i].hi-spans[i].lo < spans[j].hi-spans[j].lo
	})
	target := q * float64(s.n)
	var acc uint64
	for _, sp := range spans {
		acc += sp.count
		if float64(acc) >= target {
			return sp.hi
		}
	}
	return spans[len(spans)-1].hi
}

// Rank estimates the number of items ≤ v. Each stored node whose range
// lies entirely at or below v contributes fully; straddling nodes
// contribute nothing (their items may be above v), making this a lower
// bound within the digest's error.
func (s *QDigest) Rank(v uint64) uint64 {
	var acc uint64
	for id, c := range s.nodes {
		_, hi := s.nodeRange(id)
		if hi <= v {
			acc += c
		}
	}
	return acc
}

// nodeRange returns the inclusive value range covered by tree node id.
func (s *QDigest) nodeRange(id uint64) (uint64, uint64) {
	level := uint8(0)
	for i := id; i > 1; i >>= 1 {
		level++
	}
	span := uint64(1) << (s.logU - level)
	offset := id - 1<<level
	return offset * span, offset*span + span - 1
}

// N returns the total inserted weight.
func (s *QDigest) N() uint64 { return s.n }

// LogU returns the domain exponent: values must lie in [0, 2^LogU).
// Callers feeding untrusted input check this before Add, which panics
// on out-of-domain values.
func (s *QDigest) LogU() uint8 { return s.logU }

// K returns the compression factor.
func (s *QDigest) K() uint64 { return s.k }

// NodeCount returns the number of stored tree nodes — the E6 space
// figure.
func (s *QDigest) NodeCount() int { return len(s.nodes) }

// SizeBytes returns the approximate memory footprint.
func (s *QDigest) SizeBytes() int { return len(s.nodes) * 16 }

// ErrorBound returns the rank error bound (logU/k)·n.
func (s *QDigest) ErrorBound() float64 {
	return float64(s.logU) / float64(s.k) * float64(s.n)
}

// Merge adds another digest's node counts and recompresses — the
// sensor-network aggregation the structure was designed for.
func (s *QDigest) Merge(other *QDigest) error {
	if s.logU != other.logU || s.k != other.k {
		return fmt.Errorf("%w: q-digest logU/k mismatch", core.ErrIncompatible)
	}
	for id, c := range other.nodes {
		s.nodes[id] += c
	}
	s.n += other.n
	s.Compress()
	return nil
}

// MarshalBinary serializes the digest.
func (s *QDigest) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagQDigest, 1)
	w.U8(s.logU)
	w.U64(s.k)
	w.U64(s.n)
	ids := make([]uint64, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U64(id)
		w.U64(s.nodes[id])
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a digest serialized by MarshalBinary.
func (s *QDigest) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagQDigest)
	if err != nil {
		return err
	}
	logU := r.U8()
	k := r.U64()
	n := r.U64()
	cnt := r.Count(16) // 2 × U64 per node
	if r.Err() != nil {
		return r.Err()
	}
	if logU < 1 || logU > 32 || k < 1 {
		return fmt.Errorf("%w: q-digest params", core.ErrCorrupt)
	}
	nodes := make(map[uint64]uint64, cnt)
	var total uint64
	maxID := uint64(1) << (logU + 1)
	for i := 0; i < cnt; i++ {
		id := r.U64()
		c := r.U64()
		if id < 1 || id >= maxID {
			return fmt.Errorf("%w: q-digest node id %d", core.ErrCorrupt, id)
		}
		nodes[id] = c
		total += c
	}
	if err := r.Done(); err != nil {
		return err
	}
	if total != n {
		return fmt.Errorf("%w: q-digest counts sum %d != n %d", core.ErrCorrupt, total, n)
	}
	s.logU, s.k, s.n, s.nodes = logU, k, n, nodes
	return nil
}

// quantileOfSorted is a shared helper for exact reference quantiles.
func quantileOfSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
