package hashx

// Tabulation implements simple tabulation hashing: the 8 bytes of a
// 64-bit key each index a table of random 64-bit words, which are
// XORed together. Tabulation hashing is only 3-wise independent, yet
// Pătraşcu and Thorup showed it behaves like full independence for the
// hashing-based sketches surveyed in the paper (linear probing, Bloom
// filters, Count-Min), making it a strong fast alternative to
// polynomial families.
type Tabulation struct {
	table [8][256]uint64
}

// NewTabulation fills the tables deterministically from seed via the
// SplitMix64 sequence.
func NewTabulation(seed uint64) *Tabulation {
	t := &Tabulation{}
	state := seed
	for i := 0; i < 8; i++ {
		for j := 0; j < 256; j++ {
			state += 0x9e3779b97f4a7c15
			t.table[i][j] = Mix64(state)
		}
	}
	return t
}

// Hash maps a 64-bit key to a 64-bit value.
func (t *Tabulation) Hash(x uint64) uint64 {
	return t.table[0][byte(x)] ^
		t.table[1][byte(x>>8)] ^
		t.table[2][byte(x>>16)] ^
		t.table[3][byte(x>>24)] ^
		t.table[4][byte(x>>32)] ^
		t.table[5][byte(x>>40)] ^
		t.table[6][byte(x>>48)] ^
		t.table[7][byte(x>>56)]
}

// HashRange maps a 64-bit key to a bucket in [0, n).
func (t *Tabulation) HashRange(x uint64, n int) int {
	return int(t.Hash(x) % uint64(n))
}
