package hashx

import "math/bits"

// MersennePrime61 is 2^61-1, the modulus of the polynomial hash family.
// Arithmetic modulo a Mersenne prime reduces with shifts and adds, so
// the family is both provably k-wise independent and fast — the classic
// construction behind the formal guarantees of AMS, Count-Min and Count
// Sketch analyses.
const MersennePrime61 uint64 = (1 << 61) - 1

// KWise is a k-wise independent hash function h(x) = sum_i a_i x^i mod
// (2^61-1), evaluated by Horner's rule. For any k distinct inputs the
// outputs are jointly uniform, which is exactly the independence the
// sketch analyses in the surveyed papers assume.
type KWise struct {
	coeff []uint64 // k coefficients, each < 2^61-1; coeff[k-1] drawn nonzero when possible
}

// NewKWise draws a k-wise independent function from the family using
// the SplitMix64 sequence seeded by seed. k must be >= 1; k = 2 gives
// the pairwise independence most sketches need, k = 4 suffices for AMS
// variance bounds.
func NewKWise(k int, seed uint64) *KWise {
	if k < 1 {
		panic("hashx: KWise requires k >= 1")
	}
	coeff := make([]uint64, k)
	state := seed
	for i := range coeff {
		// Rejection-sample a value uniform in [0, p).
		for {
			state += 0x9e3779b97f4a7c15
			v := Mix64(state) & ((1 << 62) - 1) // 62 random bits
			if v < 2*MersennePrime61 {
				coeff[i] = v % MersennePrime61
				break
			}
		}
	}
	return &KWise{coeff: coeff}
}

// Hash evaluates the polynomial at x (reduced into the field first) and
// returns a value in [0, 2^61-1).
func (h *KWise) Hash(x uint64) uint64 {
	x = modP(x)
	acc := h.coeff[len(h.coeff)-1]
	for i := len(h.coeff) - 2; i >= 0; i-- {
		acc = addP(mulP(acc, x), h.coeff[i])
	}
	return acc
}

// HashRange maps x to a bucket in [0, n) with the standard
// multiply-shift range reduction applied on top of the field value. The
// small modulo bias (at most n/2^61) is negligible for every n used in
// this module.
func (h *KWise) HashRange(x uint64, n int) int {
	return int(h.Hash(x) % uint64(n))
}

// Sign maps x to ±1 using the low bit of the field value; with a 4-wise
// independent family this provides the Rademacher variables required by
// AMS and Count Sketch.
func (h *KWise) Sign(x uint64) int64 {
	if h.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// K reports the independence parameter of the family member.
func (h *KWise) K() int { return len(h.coeff) }

// modP reduces a 64-bit value modulo 2^61-1.
func modP(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// addP adds two field elements.
func addP(a, b uint64) uint64 {
	s := a + b // safe: both < 2^61, sum < 2^62
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// mulP multiplies two field elements using a 128-bit intermediate and
// the Mersenne identity 2^64 ≡ 2^3 (mod 2^61-1): for a product
// hi*2^64 + lo, the residue is hi*8 + lo. Since a, b < 2^61 the high
// word satisfies hi < 2^58, so hi*8 < 2^61 needs only one conditional
// subtraction and lo one shift-add reduction.
func mulP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return addP(modP(lo), modP(hi<<3))
}
