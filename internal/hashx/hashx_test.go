package hashx

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// Known-answer vectors for xxHash64 computed with the reference
// implementation; these pin cross-language compatibility of anything
// serialized with item hashes inside.
func TestXXHash64KnownVectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint64
		want uint64
	}{
		{"", 0, 0xef46db3751d8e999},
		{"", 1, 0xd5afba1336a3be4b},
		{"a", 0, 0xd24ec4f1a98c6e5b},
		{"abc", 0, 0x44bc2cf5ad770999},
		{"message digest", 0, 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0, 0xcfe1f278fa89835c},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0, 0xaaa46907d3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0, 0xe04a477f19ee145d},
	}
	for _, c := range cases {
		if got := XXHash64([]byte(c.data), c.seed); got != c.want {
			t.Errorf("XXHash64(%q, %d) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestXXHash64Deterministic(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		return XXHash64(data, seed) == XXHash64(data, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXXHash64SeedSensitivity(t *testing.T) {
	data := []byte("the quick brown fox")
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 100; seed++ {
		h := XXHash64(data, seed)
		if seen[h] {
			t.Fatalf("seed collision at seed %d", seed)
		}
		seen[h] = true
	}
}

// Murmur3 x64 128 known-answer vectors (seed 0), matching the reference
// C++ implementation and the Apache DataSketches Java port.
func TestMurmur3KnownVectors(t *testing.T) {
	cases := []struct {
		data   string
		seed   uint64
		wantH1 uint64
		wantH2 uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Murmur3_128([]byte(c.data), c.seed)
		if h1 != c.wantH1 || h2 != c.wantH2 {
			t.Errorf("Murmur3_128(%q) = (%#x, %#x), want (%#x, %#x)", c.data, h1, h2, c.wantH1, c.wantH2)
		}
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	// Exercise every tail-switch branch (lengths 0..32) and confirm
	// prefix changes propagate.
	base := make([]byte, 33)
	for i := range base {
		base[i] = byte(i * 7)
	}
	seen := map[[2]uint64]bool{}
	for n := 0; n <= 32; n++ {
		h1, h2 := Murmur3_128(base[:n], 42)
		k := [2]uint64{h1, h2}
		if seen[k] {
			t.Fatalf("collision between prefixes at length %d", n)
		}
		seen[k] = true
	}
}

func TestHashUint64MatchesBytes(t *testing.T) {
	f := func(v, seed uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return HashUint64(v, seed) == XXHash64(b[:], seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedSequenceDistinct(t *testing.T) {
	seeds := SeedSequence(12345, 1000)
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed in sequence")
		}
		seen[s] = true
	}
	again := SeedSequence(12345, 1000)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("SeedSequence not deterministic")
		}
	}
}

func TestKWiseFieldArithmetic(t *testing.T) {
	// mulP and addP must agree with big-integer arithmetic mod 2^61-1.
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		// Compute (a*b) mod p with math/bits via mulP, and validate
		// against the schoolbook split a*b = (aHi*2^32 + aLo)*b.
		want := slowMulMod(a, b)
		return mulP(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// slowMulMod computes a*b mod 2^61-1 using only 64-bit arithmetic by
// splitting a into 31-bit halves, an independent reference for mulP.
func slowMulMod(a, b uint64) uint64 {
	const p = MersennePrime61
	aHi := a >> 31
	aLo := a & ((1 << 31) - 1)
	// a*b = aHi*2^31*b + aLo*b (mod p)
	t1 := mulSmall(aHi, b) // < p
	// multiply t1 by 2^31 mod p
	t1 = mulSmall(t1, 1<<31)
	t2 := mulSmall(aLo, b)
	s := t1 + t2
	if s >= p {
		s -= p
	}
	return s
}

// mulSmall multiplies x (< 2^31 after reductions below) by y mod p
// using repeated doubling to stay within 64 bits.
func mulSmall(x, y uint64) uint64 {
	const p = MersennePrime61
	x %= p
	y %= p
	var acc uint64
	for y > 0 {
		if y&1 == 1 {
			acc += x
			if acc >= p {
				acc -= p
			}
		}
		x <<= 1
		if x >= p {
			x -= p
		}
		y >>= 1
	}
	return acc
}

func TestKWisePairwiseUniformity(t *testing.T) {
	// Empirically verify that bucket assignment is close to uniform and
	// that pairs of items collide at roughly rate 1/n.
	h := NewKWise(2, 99)
	const n = 64
	const items = 64000
	counts := make([]int, n)
	for i := 0; i < items; i++ {
		counts[h.HashRange(uint64(i), n)]++
	}
	want := float64(items) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from mean %.1f", b, c, want)
		}
	}
}

func TestKWiseSignBalance(t *testing.T) {
	h := NewKWise(4, 7)
	var sum int64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += h.Sign(uint64(i))
	}
	if math.Abs(float64(sum)) > 6*math.Sqrt(n) {
		t.Errorf("sign sum %d too far from 0 for %d draws", sum, n)
	}
}

func TestKWiseDeterministicAndDistinctSeeds(t *testing.T) {
	a := NewKWise(3, 1)
	b := NewKWise(3, 1)
	c := NewKWise(3, 2)
	same, diff := true, false
	for i := uint64(0); i < 100; i++ {
		if a.Hash(i) != b.Hash(i) {
			same = false
		}
		if a.Hash(i) != c.Hash(i) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must give identical functions")
	}
	if !diff {
		t.Error("different seeds should give different functions")
	}
	if a.K() != 3 {
		t.Errorf("K() = %d, want 3", a.K())
	}
}

func TestKWisePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k = 0")
		}
	}()
	NewKWise(0, 1)
}

func TestTabulationUniformity(t *testing.T) {
	tab := NewTabulation(5)
	const n = 128
	const items = 128000
	counts := make([]int, n)
	for i := 0; i < items; i++ {
		counts[tab.HashRange(uint64(i)*2654435761, n)]++
	}
	want := float64(items) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from mean %.1f", b, c, want)
		}
	}
}

func TestTabulationDeterministic(t *testing.T) {
	a, b := NewTabulation(9), NewTabulation(9)
	f := func(x uint64) bool { return a.Hash(x) == b.Hash(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Bijective(t *testing.T) {
	// SplitMix64's finalizer is a bijection; sample for collisions.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatal("Mix64 collision in sample — not behaving as bijection")
		}
		seen[h] = true
	}
}

func TestSeededInterface(t *testing.T) {
	var h Hasher64 = Seeded(11)
	if h.Hash64([]byte("x")) != XXHash64([]byte("x"), 11) {
		t.Error("Seeded hasher disagrees with XXHash64")
	}
}

func BenchmarkXXHash64_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		XXHash64(data, 0)
	}
}

func BenchmarkHashUint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashUint64(uint64(i), 42)
	}
}

func BenchmarkKWise4(b *testing.B) {
	h := NewKWise(4, 1)
	for i := 0; i < b.N; i++ {
		h.Hash(uint64(i))
	}
}

func BenchmarkTabulation(b *testing.B) {
	h := NewTabulation(1)
	for i := 0; i < b.N; i++ {
		h.Hash(uint64(i))
	}
}
