package hashx

import "encoding/binary"

// xxHash64 constants (Yann Collet's xxHash, public-domain algorithm).
const (
	prime1 uint64 = 0x9e3779b185ebca87
	prime2 uint64 = 0xc2b2ae3d27d4eb4f
	prime3 uint64 = 0x165667b19e3779f9
	prime4 uint64 = 0x85ebca77c2b2ae63
	prime5 uint64 = 0x27d4eb2f165667c5
)

// XXHash64 computes the 64-bit xxHash of data under the given seed.
// The implementation follows the reference specification and is
// byte-for-byte compatible with other xxHash64 implementations, which
// makes sketch serializations portable across languages.
func XXHash64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64

	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, binary.LittleEndian.Uint64(data[0:8]))
			v2 = round(v2, binary.LittleEndian.Uint64(data[8:16]))
			v3 = round(v3, binary.LittleEndian.Uint64(data[16:24]))
			v4 = round(v4, binary.LittleEndian.Uint64(data[24:32]))
			data = data[32:]
		}
		h = rol1(v1) + rol7(v2) + rol12(v3) + rol18(v4)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}

	h += uint64(n)

	for len(data) >= 8 {
		h ^= round(0, binary.LittleEndian.Uint64(data[:8]))
		h = rol27(h)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(data[:4])) * prime1
		h = rol23(h)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = rol11(h) * prime1
	}

	return avalanche(h)
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol31(acc)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func rol1(x uint64) uint64  { return x<<1 | x>>63 }
func rol7(x uint64) uint64  { return x<<7 | x>>57 }
func rol11(x uint64) uint64 { return x<<11 | x>>53 }
func rol12(x uint64) uint64 { return x<<12 | x>>52 }
func rol18(x uint64) uint64 { return x<<18 | x>>46 }
func rol23(x uint64) uint64 { return x<<23 | x>>41 }
func rol27(x uint64) uint64 { return x<<27 | x>>37 }
func rol31(x uint64) uint64 { return x<<31 | x>>33 }
