package hashx

// The zero-copy string specializations must be bit-exact with the
// []byte originals for every length (the implementations share the
// core, but the unsafe view and the empty-string guard are worth
// pinning down across block boundaries).

import (
	"strings"
	"testing"
)

func TestStringHashesMatchByteHashes(t *testing.T) {
	long := strings.Repeat("abcdefgh-0123456", 20) // 320 bytes
	for length := 0; length <= len(long); length++ {
		s := long[:length]
		b := []byte(s)
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			if got, want := XXHash64String(s, seed), XXHash64(b, seed); got != want {
				t.Fatalf("XXHash64String(len=%d, seed=%#x) = %#x, want %#x", length, seed, got, want)
			}
			g1, g2 := Murmur3_128String(s, seed)
			w1, w2 := Murmur3_128(b, seed)
			if g1 != w1 || g2 != w2 {
				t.Fatalf("Murmur3_128String(len=%d, seed=%#x) = (%#x,%#x), want (%#x,%#x)", length, seed, g1, g2, w1, w2)
			}
		}
	}
}

func TestDeriveH2AlwaysOdd(t *testing.T) {
	for i := uint64(0); i < 10_000; i++ {
		if DeriveH2(i)&1 != 1 {
			t.Fatalf("DeriveH2(%d) is even; double-hashing stride must be odd", i)
		}
	}
}

func TestFastRangeBounds(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 1024, 1 << 40} {
		for _, x := range []uint64{0, 1, ^uint64(0), 0x8000000000000000} {
			if got := FastRange(x, n); got >= n {
				t.Fatalf("FastRange(%#x, %d) = %d out of range", x, n, got)
			}
		}
		if got := FastRange(^uint64(0), n); got != n-1 {
			t.Fatalf("FastRange(max, %d) = %d, want %d", n, got, n-1)
		}
	}
}
