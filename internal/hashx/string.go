package hashx

import "unsafe"

// bytesView returns a zero-copy []byte view of s. The view aliases the
// string's backing array, so callers must treat it as read-only and
// must not retain it past the call — both guaranteed by the pure hash
// functions below, which only read their input. This is the standard
// technique (cespare/xxhash, runtime maphash) for hashing strings
// without the []byte(s) copy that otherwise allocates on every call.
func bytesView(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

// XXHash64String computes XXHash64 of the string's bytes without
// copying them. Output is identical to XXHash64([]byte(s), seed).
func XXHash64String(s string, seed uint64) uint64 {
	return XXHash64(bytesView(s), seed)
}

// Murmur3_128String computes the 128-bit Murmur3 of the string's bytes
// without copying them. Output is identical to
// Murmur3_128([]byte(s), seed).
func Murmur3_128String(s string, seed uint64) (uint64, uint64) {
	return Murmur3_128(bytesView(s), seed)
}
