// Package hashx provides the hash-function substrate used by every sketch
// in this repository: fast 64- and 128-bit non-cryptographic hashes
// (xxHash64, Murmur3), seeded hash builders, k-wise independent
// polynomial hash families over the Mersenne prime 2^61-1, and
// tabulation hashing.
//
// Sketch algorithms need hashing that is "random but repeatable"
// (Cormode, PODS 2023, §1): the same item must map to the same value on
// every update, while different seeds must give effectively independent
// functions. All constructions here are deterministic given their seed,
// which keeps every experiment in this repository reproducible.
package hashx

import (
	"encoding/binary"
	"math/bits"
)

// Hasher64 maps byte strings to 64-bit values. Implementations must be
// deterministic: equal inputs always produce equal outputs.
type Hasher64 interface {
	Hash64(data []byte) uint64
}

// Hasher64Func adapts a plain function to the Hasher64 interface.
type Hasher64Func func(data []byte) uint64

// Hash64 calls f(data).
func (f Hasher64Func) Hash64(data []byte) uint64 { return f(data) }

// Seeded returns a Hasher64 computing xxHash64 with the given seed.
// Distinct seeds behave as approximately independent hash functions,
// which is the standard engineering substitute for the pairwise
// independent families assumed in the analyses.
func Seeded(seed uint64) Hasher64 {
	return Hasher64Func(func(data []byte) uint64 { return XXHash64(data, seed) })
}

// Uint64Bytes returns the 8-byte little-endian encoding of v. It is the
// canonical way the sketches in this module feed integer items into a
// byte-oriented hash.
func Uint64Bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// HashUint64 hashes a uint64 item under the given seed without
// allocating. It applies a strong 128->64 bit mix (derived from
// xxHash64's avalanche over the seed and value) and is the hot path for
// integer-keyed sketches.
func HashUint64(v, seed uint64) uint64 {
	h := seed + prime5 + 8
	h ^= round(0, v)
	h = rol27(h)*prime1 + prime4
	return avalanche(h)
}

// HashString hashes a string under the given seed without copying or
// allocating.
func HashString(s string, seed uint64) uint64 {
	return XXHash64String(s, seed)
}

// FastRange maps a uniform 64-bit value to [0, n) with a multiply-high
// instead of a modulo (Lemire's fastrange). On the sketch hot paths the
// saved 64-bit division is the single largest per-row cost.
func FastRange(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}

// DeriveH2 expands a single 64-bit item hash into the second
// double-hashing stream: g_i(x) = h + i·DeriveH2(h). The low bit is
// forced so the stride is never zero. Every sketch that accepts a
// pre-hashed item through a single-uint64 AddHash derives its per-row
// positions this way, which keeps "hash once, update everywhere"
// pipelines position-compatible across sketch types.
func DeriveH2(h uint64) uint64 {
	return Mix64(h) | 1
}

// Mix64 applies the SplitMix64 finalizer, a full-avalanche 64-bit
// mixing function. It is used to derive independent seeds from a master
// seed and as a cheap integer hash in tests.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SeedSequence deterministically expands a master seed into n
// decorrelated sub-seeds using the SplitMix64 sequence. Sketches with
// multiple rows (Count-Min, Count Sketch, AMS) use it so that a single
// user-provided seed configures the whole structure.
func SeedSequence(master uint64, n int) []uint64 {
	seeds := make([]uint64, n)
	state := master
	for i := range seeds {
		state += 0x9e3779b97f4a7c15
		seeds[i] = Mix64(state)
	}
	return seeds
}
