package hashx

import (
	"encoding/binary"
	"math/bits"
)

// Murmur3 x64 128-bit constants (Austin Appleby's MurmurHash3,
// public-domain algorithm).
const (
	murmurC1 uint64 = 0x87c37b91114253d5
	murmurC2 uint64 = 0x4cf5ad432745937f
)

// Murmur3_128 computes the 128-bit Murmur3 (x64 variant) hash of data
// under the given seed, returning the two 64-bit halves. HLL-family
// sketches use the first half for register selection and the second for
// the rank pattern, so a single hash pass serves both purposes — the
// layout matches the widely deployed implementations the paper's §2
// "data sketches project" discussion refers to.
func Murmur3_128(data []byte, seed uint64) (uint64, uint64) {
	h1 := seed
	h2 := seed
	n := len(data)

	for len(data) >= 16 {
		k1 := binary.LittleEndian.Uint64(data[0:8])
		k2 := binary.LittleEndian.Uint64(data[8:16])
		data = data[16:]

		k1 *= murmurC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= murmurC2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= murmurC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= murmurC1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	var k1, k2 uint64
	switch len(data) & 15 {
	case 15:
		k2 ^= uint64(data[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(data[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(data[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(data[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(data[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(data[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(data[8])
		k2 *= murmurC2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= murmurC1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(data[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(data[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(data[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(data[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(data[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(data[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(data[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(data[0])
		k1 *= murmurC1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= murmurC2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
