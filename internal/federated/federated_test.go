package federated

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/randx"
)

func TestMasksCancelExactly(t *testing.T) {
	const cohort, dim = 16, 32
	agg := NewSecureAggregator(cohort, dim, 1)
	rng := randx.New(2)
	want := make([]float64, dim)
	uploads := make([][]float64, cohort)
	for id := 0; id < cohort; id++ {
		vec := make([]float64, dim)
		for c := range vec {
			vec[c] = rng.Float64() * 10
			want[c] += vec[c]
		}
		uploads[id] = agg.Mask(id, vec)
	}
	sum, err := agg.Aggregate(uploads)
	if err != nil {
		t.Fatal(err)
	}
	for c := range sum {
		if math.Abs(sum[c]-want[c]) > 1e-4 {
			t.Fatalf("cell %d: aggregated %.6f vs true %.6f", c, sum[c], want[c])
		}
	}
}

func TestUploadsHideIndividualValues(t *testing.T) {
	// A single upload must be dominated by mask noise: the plaintext
	// (values ~1) should be statistically invisible under masks of
	// scale 1e6.
	agg := NewSecureAggregator(8, 16, 3)
	vec := make([]float64, 16)
	vec[3] = 1
	up := agg.Mask(0, vec)
	small := 0
	for _, v := range up {
		if math.Abs(v) < 1000 {
			small++
		}
	}
	if small > 2 {
		t.Errorf("%d/16 cells of a masked upload are small — plaintext may leak", small)
	}
}

func TestDropoutRejected(t *testing.T) {
	agg := NewSecureAggregator(4, 8, 4)
	uploads := make([][]float64, 3) // one client dropped
	for i := range uploads {
		uploads[i] = agg.Mask(i, make([]float64, 8))
	}
	if _, err := agg.Aggregate(uploads); err == nil {
		t.Fatal("partial cohort accepted — masks would not cancel")
	}
	bad := make([][]float64, 4)
	for i := range bad {
		bad[i] = make([]float64, 7)
	}
	if _, err := agg.Aggregate(bad); err == nil {
		t.Fatal("wrong-dimension uploads accepted")
	}
}

func TestFrequencyRoundEndToEnd(t *testing.T) {
	const cohort = 60
	values := []string{"a", "b", "c"}
	round := NewFrequencyRound(cohort, values, 5)
	rng := randx.New(6)
	truth := map[string]float64{}
	uploads := make([][]float64, cohort)
	for id := 0; id < cohort; id++ {
		v := values[rng.Intn(3)]
		truth[v]++
		uploads[id] = round.ClientUpload(id, v)
	}
	// Without DP: exact (up to mask-cancellation rounding).
	counts, err := round.Tally(uploads, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if math.Abs(counts[v]-truth[v]) > 1e-3 {
			t.Errorf("%s: tallied %.4f vs true %.0f", v, counts[v], truth[v])
		}
	}
	// With DP: within Laplace noise.
	noisy, err := round.Tally(uploads, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if math.Abs(noisy[v]-truth[v]) > 15 { // Laplace(1) tail at ~1e-6
			t.Errorf("%s: DP tally %.2f too far from %.0f", v, noisy[v], truth[v])
		}
	}
}

func TestFrequencyRoundUnknownValue(t *testing.T) {
	round := NewFrequencyRound(2, []string{"x"}, 9)
	uploads := [][]float64{
		round.ClientUpload(0, "not-a-candidate"),
		round.ClientUpload(1, "x"),
	}
	counts, err := round.Tally(uploads, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(counts["x"]-1) > 1e-3 {
		t.Errorf("count[x] = %.4f, want 1", counts["x"])
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"cohort": func() { NewSecureAggregator(1, 4, 1) },
		"dim":    func() { NewSecureAggregator(4, 0, 1) },
		"id":     func() { NewSecureAggregator(4, 2, 1).Mask(9, make([]float64, 2)) },
		"vec":    func() { NewSecureAggregator(4, 2, 1).Mask(0, make([]float64, 3)) },
		"values": func() { NewFrequencyRound(4, nil, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	a := NewSecureAggregator(4, 2, 1)
	if a.Cohort() != 4 || a.Dim() != 2 {
		t.Error("accessors wrong")
	}
}

func ExampleFrequencyRound() {
	const cohort = 30
	round := NewFrequencyRound(cohort, []string{"cat", "dog"}, 42)
	uploads := make([][]float64, cohort)
	for id := 0; id < cohort; id++ {
		pet := "cat"
		if id%3 == 0 {
			pet = "dog"
		}
		uploads[id] = round.ClientUpload(id, pet)
	}
	counts, _ := round.Tally(uploads, 0, 1)
	fmt.Printf("cat=%.0f dog=%.0f\n", counts["cat"], counts["dog"])
	// Output: cat=20 dog=10
}
