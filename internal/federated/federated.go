// Package federated implements the federated-analytics pattern the
// paper describes via its "Introduction to Federated Computation"
// citation [8]: collecting aggregate statistics from a large population
// of distributed clients such that the server only ever sees sums of
// sketches, never an individual's contribution. The paper's framing —
// federated analytics "can be crudely described as being based on
// sketches with privacy" — is exactly this package: linear sketches
// (histograms, Count-Min rows, gradient sketches) summed under
// pairwise-mask secure aggregation, with optional central differential
// privacy on the released aggregate.
//
// The secure-aggregation simulation is faithful to the protocol's
// arithmetic: every ordered client pair (i, j) shares a seed; client i
// adds the pairwise pseudo-random mask and client j subtracts it, so
// the server's sum telescopes to the true total while every individual
// upload is computationally indistinguishable from noise.
package federated

import (
	"fmt"

	"repro/internal/hashx"
	"repro/internal/mergex"
	"repro/internal/randx"
)

// SecureAggregator coordinates one round of pairwise-masked vector
// aggregation over a fixed cohort of clients.
type SecureAggregator struct {
	cohort int
	dim    int
	seed   uint64 // session seed from which pairwise seeds derive
}

// NewSecureAggregator creates an aggregator for a cohort of the given
// size exchanging vectors of the given dimension.
func NewSecureAggregator(cohort, dim int, sessionSeed uint64) *SecureAggregator {
	if cohort < 2 {
		panic("federated: cohort must have at least 2 clients")
	}
	if dim < 1 {
		panic("federated: dimension must be positive")
	}
	return &SecureAggregator{cohort: cohort, dim: dim, seed: sessionSeed}
}

// pairSeed derives the shared seed for the ordered pair (lo, hi).
func (a *SecureAggregator) pairSeed(lo, hi int) uint64 {
	return hashx.HashUint64(uint64(lo)<<32|uint64(hi), a.seed)
}

// Mask returns client id's upload: its private vector plus the
// pairwise masks. The vector is copied; the client's plaintext never
// leaves this call.
func (a *SecureAggregator) Mask(id int, vec []float64) []float64 {
	if id < 0 || id >= a.cohort {
		panic(fmt.Sprintf("federated: client id %d outside cohort %d", id, a.cohort))
	}
	if len(vec) != a.dim {
		panic(fmt.Sprintf("federated: vector dim %d, want %d", len(vec), a.dim))
	}
	out := append([]float64(nil), vec...)
	for other := 0; other < a.cohort; other++ {
		if other == id {
			continue
		}
		lo, hi := id, other
		sign := 1.0
		if lo > hi {
			lo, hi = hi, lo
			sign = -1.0 // the higher-id member subtracts
		}
		rng := randx.New(a.pairSeed(lo, hi))
		for c := 0; c < a.dim; c++ {
			out[c] += sign * rng.Normal() * maskScale
		}
	}
	return out
}

// maskScale makes individual uploads dominated by mask noise.
const maskScale = 1e6

// Aggregate sums the cohort's masked uploads; the pairwise masks
// cancel, leaving the exact sum of private vectors (up to float
// rounding of order maskScale·ε_machine). The vector additions run as
// a parallel tree reduction (mergex.Tree) over copies of the uploads —
// the fan-in is where a real aggregation server spends its time once
// cohorts reach millions. Tree grouping regroups the float additions
// relative to a serial fold, which only moves the existing
// maskScale·ε_machine residue, and pairwise summation actually
// tightens it.
func (a *SecureAggregator) Aggregate(uploads [][]float64) ([]float64, error) {
	if len(uploads) != a.cohort {
		return nil, fmt.Errorf("federated: got %d uploads for cohort of %d (dropout handling requires a recovery round)",
			len(uploads), a.cohort)
	}
	for _, u := range uploads {
		if len(u) != a.dim {
			return nil, fmt.Errorf("federated: upload dim %d, want %d", len(u), a.dim)
		}
	}
	// One contiguous scratch copy so the reduction never mutates the
	// caller's uploads.
	scratch := make([]float64, len(uploads)*a.dim)
	rows := make([][]float64, len(uploads))
	for i, u := range uploads {
		row := scratch[i*a.dim : (i+1)*a.dim]
		copy(row, u)
		rows[i] = row
	}
	return mergex.Tree(rows, func(dst, src []float64) error {
		for c, v := range src {
			dst[c] += v
		}
		return nil
	})
}

// Cohort returns the cohort size.
func (a *SecureAggregator) Cohort() int { return a.cohort }

// Dim returns the vector dimension.
func (a *SecureAggregator) Dim() int { return a.dim }

// FrequencyRound runs one complete federated frequency-estimation
// round: every client one-hot encodes its value into a shared
// histogram layout, uploads under secure aggregation, and the server
// optionally adds central Laplace noise for (ε, 0)-DP on the release.
type FrequencyRound struct {
	agg    *SecureAggregator
	values []string
	index  map[string]int
}

// NewFrequencyRound creates a round over the given candidate values.
func NewFrequencyRound(cohort int, values []string, sessionSeed uint64) *FrequencyRound {
	if len(values) < 1 {
		panic("federated: need at least one candidate value")
	}
	index := make(map[string]int, len(values))
	for i, v := range values {
		index[v] = i
	}
	return &FrequencyRound{
		agg:    NewSecureAggregator(cohort, len(values), sessionSeed),
		values: append([]string(nil), values...),
		index:  index,
	}
}

// ClientUpload produces client id's masked one-hot upload for its
// private value. Unknown values contribute an all-zero row (plus
// masks), mirroring the out-of-vocabulary behaviour of deployed
// systems.
func (f *FrequencyRound) ClientUpload(id int, value string) []float64 {
	vec := make([]float64, len(f.values))
	if i, ok := f.index[value]; ok {
		vec[i] = 1
	}
	return f.agg.Mask(id, vec)
}

// Tally aggregates the uploads and returns per-value counts. If eps >
// 0, Laplace(1/eps) noise is added to each count before release
// (sensitivity 1: one client changes one cell by 1).
func (f *FrequencyRound) Tally(uploads [][]float64, eps float64, noiseSeed uint64) (map[string]float64, error) {
	sum, err := f.agg.Aggregate(uploads)
	if err != nil {
		return nil, err
	}
	rng := randx.New(noiseSeed)
	out := make(map[string]float64, len(f.values))
	for i, v := range f.values {
		c := sum[i]
		if eps > 0 {
			c += rng.Laplace(1 / eps)
		}
		// Rounding the telescoped masks leaves ~1e-9-scale residue.
		if c < 0 {
			c = 0
		}
		out[v] = c
	}
	return out, nil
}
