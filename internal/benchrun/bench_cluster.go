package benchrun

import (
	"net"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Cluster-layer entries: the coordinator's two hot paths measured over
// real loopback HTTP shards, so a routing or fan-out regression shows
// up in benchdiff next to the sketch kernels it sits on.

// clusterHarness stands up n in-process shards plus a coordinator and
// returns the coordinator with a teardown.
func clusterHarness(b *testing.B, n int) (*cluster.Coordinator, func()) {
	b.Helper()
	var stops []func()
	urls := make([]string, n)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		hs := &http.Server{Handler: server.New().Handler()}
		go hs.Serve(ln)
		urls[i] = "http://" + ln.Addr().String()
		stops = append(stops, func() { hs.Close() })
	}
	coord, err := cluster.NewCoordinator(urls, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return coord, func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// clusterFanOutAdd measures coordinator ingest end to end: ring-route
// a 1024-line batch into per-shard sub-batches and POST them to 4
// shards in parallel. Reported per line.
func clusterFanOutAdd(b *testing.B) {
	coord, stop := clusterHarness(b, 4)
	defer stop()
	const lines = 1024
	var body []byte
	for i := 0; i < lines; i++ {
		body = append(body, "item"+strconv.Itoa(i)+"\n"...)
	}
	for _, u := range coord.Shards() {
		if err := client.New(u).Create("bench", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(body) / lines))
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		if _, fails := coord.FanOutAdd("bench", body); len(fails) > 0 {
			b.Fatalf("fan-out failed: %v", fails)
		}
	}
}

// clusterScatterGather measures a global read end to end: snapshot all
// 4 shards in parallel, decode the envelopes, tree-merge them through
// mergex, and answer the query. Reported per global query.
func clusterScatterGather(b *testing.B) {
	coord, stop := clusterHarness(b, 4)
	defer stop()
	const lines = 4096
	var body []byte
	for i := 0; i < lines; i++ {
		body = append(body, "item"+strconv.Itoa(i)+"\n"...)
	}
	for _, u := range coord.Shards() {
		if err := client.New(u).Create("bench", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	if _, fails := coord.FanOutAdd("bench", body); len(fails) > 0 {
		b.Fatalf("seed ingest failed: %v", fails)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		envs, fails := coord.Gather("bench")
		if len(fails) > 0 {
			b.Fatalf("gather failed: %v", fails)
		}
		if _, _, err := cluster.MergeEnvelopes(envs); err != nil {
			b.Fatal(err)
		}
	}
}

// clusterSlimSnapshot measures the wire-efficient global read end to
// end over loopback HTTP: the coordinator scatter-gathers 4 shards'
// SLIM sfsketch envelopes through its pooled read buffers, tree-merges
// them, and serves the merged envelope. The companion to
// clusterScatterGather — the delta between the two is the slim-wire
// saving plus the pooled-buffer path.
func clusterSlimSnapshot(b *testing.B) {
	coord, stop := clusterHarness(b, 4)
	defer stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: coord}
	go hs.Serve(ln)
	defer hs.Close()

	const lines = 4096
	var body []byte
	for i := 0; i < lines; i++ {
		body = append(body, "item"+strconv.Itoa(i)+"\n"...)
	}
	for _, u := range coord.Shards() {
		if err := client.New(u).Create("bench", server.CreateRequest{Type: "sfsketch", Width: 512, Depth: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	if _, fails := coord.FanOutAdd("bench", body); len(fails) > 0 {
		b.Fatalf("seed ingest failed: %v", fails)
	}
	cl := client.New("http://" + ln.Addr().String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.SnapshotWire("bench", "slim"); err != nil {
			b.Fatal(err)
		}
	}
}

// clusterRingRoute measures the pure routing lookup: one XXHash64 plus
// a binary search over the 4-shard, 128-vnode ring.
func clusterRingRoute(b *testing.B) {
	ring, err := cluster.NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		b.Fatal(err)
	}
	keys := ByteKeys()
	b.SetBytes(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Shard(keys[i&(keyCount-1)])
	}
}
