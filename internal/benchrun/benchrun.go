// Package benchrun is the reproducible hot-path benchmark harness: a
// fixed suite of per-operation microbenchmarks over the sketch update
// paths, runnable both under `go test -bench` (hotpath_bench_test.go
// at the module root) and from `sketchbench -bench`, which serializes
// the results to the BENCH_*.json trajectory files ROADMAP tracks.
//
// Methodology: every structure is sized once (L2-resident) and keys
// cycle through a pre-generated pool, so ns/op measures the update
// path itself rather than DRAM misses on a structure that grows with
// b.N, and allocs/op exposes any per-item heap traffic — the two
// quantities the hash-once/allocation-free work optimizes.
package benchrun

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/frequency"
	"repro/internal/hashx"
	typereg "repro/internal/registry"
	"repro/internal/server"
)

// keyCount is the pooled-key working set; a power of two so the cycle
// index is a mask, not a modulo.
const keyCount = 1 << 16

// ByteKeys returns keyCount distinct 8-byte keys.
func ByteKeys() [][]byte {
	keys := make([][]byte, keyCount)
	for i := range keys {
		keys[i] = hashx.Uint64Bytes(uint64(i) * 0x9e3779b97f4a7c15)
	}
	return keys
}

// StringKeys returns URL-shaped keys longer than 32 bytes — past the
// size where a []byte(s) conversion can hide in a stack temporary, the
// regime the string fast paths are specialized for.
func StringKeys() []string {
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = "https://example.com/api/v1/users/" + strconv.Itoa(1_000_000+i*7919)
	}
	return keys
}

// NamedBench is one suite entry.
type NamedBench struct {
	Name string
	F    func(b *testing.B)
}

// Benchmarks returns the hot-path suite in reporting order.
func Benchmarks() []NamedBench {
	return []NamedBench{
		{"BloomAdd", func(b *testing.B) {
			f := bloom.NewWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Add(keys[i&(keyCount-1)])
			}
		}},
		{"BloomContains", func(b *testing.B) {
			f := bloom.NewWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			for _, k := range keys {
				f.Add(k)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Contains(keys[i&(keyCount-1)])
			}
		}},
		{"BloomAddBatch", func(b *testing.B) {
			f := bloom.NewWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			batch := keys[:1024]
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(batch) {
				f.AddBatch(batch)
			}
		}},
		{"BlockedBloomAdd", func(b *testing.B) {
			f := bloom.NewBlockedWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Add(keys[i&(keyCount-1)])
			}
		}},
		{"BlockedBloomContains", func(b *testing.B) {
			f := bloom.NewBlockedWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			for _, k := range keys {
				f.Add(k)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Contains(keys[i&(keyCount-1)])
			}
		}},
		{"BlockedBloomAddBatch", func(b *testing.B) {
			f := bloom.NewBlockedWithEstimates(1_000_000, 0.01, 1)
			keys := ByteKeys()
			batch := keys[:1024]
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(batch) {
				f.AddBatch(batch)
			}
		}},
		{"BloomAddString", func(b *testing.B) {
			f := bloom.NewWithEstimates(1_000_000, 0.01, 1)
			keys := StringKeys()
			b.SetBytes(int64(len(keys[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.AddString(keys[i&(keyCount-1)])
			}
		}},
		{"CountMinAddUint64", func(b *testing.B) {
			cm := frequency.NewCountMin(2048, 5, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.AddUint64(uint64(i), 1)
			}
		}},
		{"CountMinAddBytes", func(b *testing.B) {
			cm := frequency.NewCountMin(2048, 5, 1)
			keys := ByteKeys()
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.Add(keys[i&(keyCount-1)], 1)
			}
		}},
		{"CountMinAddString", func(b *testing.B) {
			cm := frequency.NewCountMin(2048, 5, 1)
			keys := StringKeys()
			b.SetBytes(int64(len(keys[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.AddString(keys[i&(keyCount-1)])
			}
		}},
		{"CountMinFusedAddUint64", func(b *testing.B) {
			cm := frequency.NewCountMinFused(2048, 5, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.AddUint64(uint64(i), 1)
			}
		}},
		{"CountMinAddHashBatch", func(b *testing.B) {
			cm := frequency.NewCountMin(2048, 5, 1)
			hs := make([]uint64, 1024)
			for i := range hs {
				hs[i] = hashx.HashUint64(uint64(i), 1)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(hs) {
				cm.AddHashBatch(hs)
			}
		}},
		{"CountMinFusedAddHashBatch", func(b *testing.B) {
			cm := frequency.NewCountMinFused(2048, 5, 1)
			hs := make([]uint64, 1024)
			for i := range hs {
				hs[i] = hashx.HashUint64(uint64(i), 1)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(hs) {
				cm.AddHashBatch(hs)
			}
		}},
		{"CountMinKWiseAddUint64", func(b *testing.B) {
			cm := frequency.NewCountMinKWise(2048, 5, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.AddUint64(uint64(i), 1)
			}
		}},
		{"CountSketchAddUint64", func(b *testing.B) {
			cs := frequency.NewCountSketch(2048, 5, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.AddUint64(uint64(i), 1)
			}
		}},
		{"HLLAddUint64", func(b *testing.B) {
			h := cardinality.NewHLL(14, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.AddUint64(uint64(i))
			}
		}},
		{"HLLAddString", func(b *testing.B) {
			h := cardinality.NewHLL(14, 1)
			keys := StringKeys()
			b.SetBytes(int64(len(keys[0])))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.AddString(keys[i&(keyCount-1)])
			}
		}},
		{"AtomicCountMinAddUint64", func(b *testing.B) {
			cm := concurrent.NewAtomicCountMin(2048, 4, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cm.AddUint64(uint64(i), 1)
			}
		}},
		{"AtomicCountMinAddHashBatch", func(b *testing.B) {
			cm := concurrent.NewAtomicCountMin(2048, 4, 1)
			hs := make([]uint64, 1024)
			for i := range hs {
				hs[i] = hashx.HashUint64(uint64(i), 1)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(hs) {
				cm.AddHashBatch(hs)
			}
		}},
		{"ShardedHLLAddHashBatch", func(b *testing.B) {
			s := concurrent.NewShardedHLL(runtime.GOMAXPROCS(0), 14, 1)
			h := s.Handle()
			hs := make([]uint64, 1024)
			for i := range hs {
				hs[i] = hashx.HashUint64(uint64(i), 1)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(hs) {
				h.AddHashBatch(hs)
			}
		}},
		{"BufferedCountMinWriterAddHash", func(b *testing.B) {
			c := concurrent.NewBufferedCountMin(2048, 4, 1)
			defer c.Close()
			w := c.Writer()
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.AddHash(uint64(i)*0x9E3779B97F4A7C15, 1)
			}
			b.StopTimer()
			w.Flush()
			c.Sync()
		}},
		{"BufferedCountMinWriterParallel", func(b *testing.B) {
			// The contended shape E29 sweeps: every benchmark worker its
			// own writer handle, one propagator folding into the global.
			c := concurrent.NewBufferedCountMin(2048, 4, 1)
			defer c.Close()
			b.SetBytes(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := c.Writer()
				var i uint64
				for pb.Next() {
					w.AddHash(i*0x9E3779B97F4A7C15, 1)
					i++
				}
				w.Flush()
			})
			c.Sync()
		}},
		{"AtomicCountMinAddHashParallel", func(b *testing.B) {
			// The shared-memory counterpart of the parallel buffered
			// bench: same updates, every worker on the same cache lines.
			cm := concurrent.NewAtomicCountMin(2048, 4, 1)
			b.SetBytes(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var i uint64
				for pb.Next() {
					cm.AddHash(i*0x9E3779B97F4A7C15, 1)
					i++
				}
			})
		}},
		{"BufferedHLLWriterAddHash", func(b *testing.B) {
			h := concurrent.NewBufferedHLL(14, 1)
			defer h.Close()
			w := h.Writer()
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.AddHash(uint64(i) * 0x9E3779B97F4A7C15)
			}
			b.StopTimer()
			w.Flush()
			h.Sync()
		}},
		{"SFSketchAddUint64", func(b *testing.B) {
			sf := frequency.NewSFSketch(512, 4, 4096, 4, 1)
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sf.AddUint64(uint64(i), 1)
			}
		}},
		{"SFSketchAddHashBatch", func(b *testing.B) {
			sf := frequency.NewSFSketch(512, 4, 4096, 4, 1)
			hs := make([]uint64, 1024)
			for i := range hs {
				hs[i] = hashx.HashUint64(uint64(i), 1)
			}
			b.SetBytes(8)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(hs) {
				sf.AddHashBatch(hs)
			}
		}},
		{"ServerCountMinIngest", serverCountMinIngest},
		{"ClusterRingRoute", clusterRingRoute},
		{"ClusterFanOutAdd4", clusterFanOutAdd},
		{"ClusterScatterGather4", clusterScatterGather},
		{"ClusterSlimSnapshot4", clusterSlimSnapshot},
		{"XXHash64String64B", func(b *testing.B) {
			s := string(make([]byte, 64))
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hashx.XXHash64String(s, 1)
			}
		}},
		{"Murmur3_128String64B", func(b *testing.B) {
			s := string(make([]byte, 64))
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hashx.Murmur3_128String(s, 1)
			}
		}},
	}
}

// serverCountMinIngest measures the full sketchd ingest inner loop —
// SplitBatchAppend over a weighted newline-delimited body, weight
// parsing and the countmin entry update — per line, excluding HTTP.
func serverCountMinIngest(b *testing.B) {
	entry, err := server.NewEntry(server.CreateRequest{Type: "countmin"})
	if err != nil {
		b.Fatal(err)
	}
	var body []byte
	const lines = 1024
	for i := 0; i < lines; i++ {
		body = append(body, "item"+strconv.Itoa(i)+"\t3\n"...)
	}
	items := make([][]byte, 0, lines)
	b.SetBytes(int64(len(body) / lines))
	b.ResetTimer()
	for i := 0; i < b.N; i += lines {
		items = server.SplitBatchAppend(items[:0], body)
		if err := entry.Add(items); err != nil {
			b.Fatal(err)
		}
	}
}

// Result is one benchmark's measured figures.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// WireBytes records one family's serialized envelope sizes after a
// fixed reference ingest: the full form (what durability, replication
// and default reads ship) and, for families with a slim wire form, the
// slim envelope. Transmitted bytes are a tracked performance budget
// exactly like ns/op — benchdiff reports their deltas so a format
// change that quietly fattens the wire shows up in review.
type WireBytes struct {
	Type      string `json:"type"`
	FullBytes int    `json:"full_bytes"`
	SlimBytes int    `json:"slim_bytes,omitempty"`
}

// Report is the BENCH_*.json document. Schema 2 adds the host
// description (cpu_model, cache_line_bytes) so a reader comparing two
// reports can tell a code regression from a machine change — ns/op
// across different CPU models is not a diff, it's two experiments.
// Schema 3 adds wire_bytes: per-family envelope sizes at a fixed
// reference ingest, split full vs slim.
type Report struct {
	Schema         int         `json:"schema"`
	GoVersion      string      `json:"go_version"`
	GOOS           string      `json:"goos"`
	GOARCH         string      `json:"goarch"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	CPUModel       string      `json:"cpu_model,omitempty"`
	CacheLineBytes int         `json:"cache_line_bytes,omitempty"`
	WireBytes      []WireBytes `json:"wire_bytes,omitempty"`
	Results        []Result    `json:"results"`
}

// wireSizes measures every servable family's envelope sizes after the
// same 1024-line reference ingest (numeric lines, which every input
// kind accepts). Families whose default ingest rejects the reference
// batch are recorded with their post-create envelope instead — size
// still tracks format changes, which is what the diff is for.
func wireSizes() []WireBytes {
	var items [][]byte
	for i := 0; i < 1024; i++ {
		items = append(items, []byte(strconv.Itoa(i*7919%100000)))
	}
	var out []WireBytes
	for _, d := range typereg.All() {
		if !d.Servable() {
			continue
		}
		entry, err := server.NewEntry(server.CreateRequest{Type: d.Name})
		if err != nil {
			continue
		}
		_ = entry.Add(items)
		full, err := entry.Snapshot()
		if err != nil {
			entry.Close()
			continue
		}
		wb := WireBytes{Type: d.Name, FullBytes: len(full)}
		if slim, used, err := entry.SnapshotWire(true); err == nil && used {
			wb.SlimBytes = len(slim)
		}
		entry.Close()
		out = append(out, wb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}

// hostCPUModel reads the CPU model name from /proc/cpuinfo. Empty on
// non-Linux hosts or unreadable procfs — the field is omitempty.
func hostCPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// hostCacheLineBytes reads the L1 line size from sysfs, falling back
// to 64 — the line size on every x86-64 and almost every aarch64 part,
// and the constant the blocked layouts are designed around.
func hostCacheLineBytes() int {
	data, err := os.ReadFile("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
	if err == nil {
		if n, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil && n > 0 {
			return n
		}
	}
	return 64
}

// Run executes the whole suite with testing.Benchmark and collects the
// results, calling progress (if non-nil) with each benchmark's name
// before it starts. Callers control duration via testing.Init + the
// test.benchtime flag (see cmd/sketchbench).
func Run(progress func(name string)) Report {
	rep := Report{
		Schema:         3,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		CPUModel:       hostCPUModel(),
		CacheLineBytes: hostCacheLineBytes(),
		WireBytes:      wireSizes(),
	}
	for _, nb := range Benchmarks() {
		if progress != nil {
			progress(nb.Name)
		}
		r := testing.Benchmark(nb.F)
		res := Result{
			Name:        nb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if r.Bytes > 0 && r.T > 0 {
			res.MBPerSec = float64(r.Bytes*int64(r.N)) / 1e6 / r.T.Seconds()
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

// MarshalIndent renders the report as the committed JSON format.
func (r Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
