// Package randx provides the deterministic randomness substrate for the
// repository: a fast seedable generator (xoshiro256** seeded via
// SplitMix64) plus the distribution samplers the experiments need —
// Gaussian, Laplace, exponential, geometric and Zipf.
//
// Every randomized sketch and every workload generator takes an
// explicit seed and draws only from this package, so all experiments in
// EXPERIMENTS.md are bit-for-bit reproducible.
package randx

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random generator. It is not safe for
// concurrent use; create one per goroutine.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed using the
// SplitMix64 expansion, per the xoshiro authors' recommendation.
func New(seed uint64) *RNG {
	r := &RNG{}
	state := seed
	for i := range r.s {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	// Avoid the all-zero state (cannot occur from SplitMix64, but keep
	// the invariant explicit).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	s1 := r.s[1]
	result := rotl(s1*5, 7) * 9
	t := s1 << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= s1
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn requires n > 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float in (0, 1), never exactly zero —
// safe as a log argument.
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f != 0 {
			return f
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// BoolP returns true with probability p.
func (r *RNG) BoolP(p float64) bool { return r.Float64() < p }

// Normal returns a standard Gaussian variate via the Box–Muller
// transform (the polar form is avoided for branch-free determinism).
func (r *RNG) Normal() float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormalPair returns two independent standard Gaussians from one
// Box–Muller evaluation.
func (r *RNG) NormalPair() (float64, float64) {
	u1 := r.Float64Open()
	u2 := r.Float64()
	rad := math.Sqrt(-2 * math.Log(u1))
	return rad * math.Cos(2*math.Pi*u2), rad * math.Sin(2*math.Pi*u2)
}

// Exponential returns an Exp(rate) variate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential requires rate > 0")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Laplace returns a Laplace(0, scale) variate — the noise distribution
// of the ε-differential-privacy mechanisms in internal/privacy.
func (r *RNG) Laplace(scale float64) float64 {
	if scale <= 0 {
		panic("randx: Laplace requires scale > 0")
	}
	u := r.Float64() - 0.5
	if u < 0 {
		return scale * math.Log(1+2*u)
	}
	return -scale * math.Log(1-2*u)
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}).
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("randx: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(r.Float64Open()) / math.Log(1-p)))
}

// Perm returns a random permutation of [0, n) by Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
