package randx

import "math"

// Zipf draws items from a Zipf(α) distribution over {1, …, n}:
// P(X = k) ∝ 1/k^α. Skewed item popularity of exactly this shape is the
// canonical workload for the frequency-estimation experiments (E4, E5)
// — web requests, network flows, word frequencies and ad clicks are all
// well modelled by Zipf with α between 0.8 and 2.
//
// Sampling uses rejection-inversion (Hörmann and Derflinger), which is
// O(1) per draw independent of n and supports α arbitrarily close to
// (or greater than) 1.
type Zipf struct {
	rng           *RNG
	n             float64
	alpha         float64
	oneMinusAlpha float64
	hX0           float64
	hIntegralX1   float64
	hIntegralN    float64
	s             float64
}

// NewZipf returns a Zipf(alpha) sampler over {1, …, n} driven by rng.
// alpha must be positive and not exactly 1 is allowed (the harmonic
// case is handled via the limit form).
func NewZipf(rng *RNG, alpha float64, n int) *Zipf {
	if n < 1 {
		panic("randx: Zipf requires n >= 1")
	}
	if alpha <= 0 {
		panic("randx: Zipf requires alpha > 0")
	}
	z := &Zipf{rng: rng, n: float64(n), alpha: alpha, oneMinusAlpha: 1 - alpha}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.hX0 = z.hIntegral(0.5)
	z.s = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// h is the density shape x^-alpha.
func (z *Zipf) h(x float64) float64 { return math.Exp(-z.alpha * math.Log(x)) }

// hIntegral is the antiderivative of h, using the log form when alpha
// is numerically close to 1.
func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusAlpha*logX) * logX
}

// hIntegralInv inverts hIntegral.
func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusAlpha
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with the correct limit at 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with the correct limit at 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// Next draws the next Zipf variate in {1, …, n}.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}

// ZipfCDF returns the exact probability mass function of Zipf(alpha)
// over {1, …, n}, normalized to sum to 1. Experiments use it to compute
// true item frequencies against which sketch estimates are scored.
func ZipfCDF(alpha float64, n int) []float64 {
	pmf := make([]float64, n)
	var z float64
	for k := 1; k <= n; k++ {
		pmf[k-1] = math.Exp(-alpha * math.Log(float64(k)))
		z += pmf[k-1]
	}
	for i := range pmf {
		pmf[i] /= z
	}
	return pmf
}
