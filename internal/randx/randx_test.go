package randx

import (
	"math"
	"sort"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := New(43)
	diff := false
	for i := 0; i < 10; i++ {
		if New(42).Uint64() != c.Uint64() {
			diff = true
		}
		c.Uint64()
	}
	if !diff {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for n := 1; n <= 100; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(7)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d vs expected %.0f", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance %.4f, want ~1", variance)
	}
}

func TestNormalPairIndependentMoments(t *testing.T) {
	r := New(17)
	const n = 100000
	var sumXY float64
	for i := 0; i < n; i++ {
		x, y := r.NormalPair()
		sumXY += x * y
	}
	if corr := sumXY / n; math.Abs(corr) > 0.02 {
		t.Errorf("NormalPair correlation %.4f, want ~0", corr)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean %.4f, want 0.5", mean)
	}
}

func TestLaplaceMoments(t *testing.T) {
	r := New(5)
	const n, scale = 200000, 1.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Laplace(scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("Laplace mean %.4f, want ~0", mean)
	}
	if want := 2 * scale * scale; math.Abs(variance-want)/want > 0.05 {
		t.Errorf("Laplace variance %.4f, want ~%.2f", variance, want)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(6)
	const n, p = 200000, 0.25
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p
	if mean := sum / n; math.Abs(mean-want)/want > 0.05 {
		t.Errorf("Geometric(%v) mean %.4f, want ~%.3f", p, mean, want)
	}
	if New(1).Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("Perm(%d) missing %d", n, i)
			}
		}
	}
}

func TestZipfSupport(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 1.1, 1000)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf out of support: %d", v)
		}
	}
}

func TestZipfSkewMatchesPMF(t *testing.T) {
	// Empirical frequency of the top item should match the analytic
	// PMF within statistical noise, for several alphas including the
	// near-harmonic case.
	for _, alpha := range []float64{0.8, 0.99, 1.0, 1.2, 2.0} {
		r := New(10)
		const n, draws = 100, 200000
		z := NewZipf(r, alpha, n)
		counts := make([]int, n+1)
		for i := 0; i < draws; i++ {
			counts[z.Next()]++
		}
		pmf := ZipfCDF(alpha, n)
		for _, k := range []int{1, 2, 10} {
			got := float64(counts[k]) / draws
			want := pmf[k-1]
			sigma := math.Sqrt(want * (1 - want) / draws)
			if math.Abs(got-want) > 8*sigma+1e-4 {
				t.Errorf("alpha=%.2f item %d: freq %.5f vs pmf %.5f", alpha, k, got, want)
			}
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(New(1), 0, 10) },
		func() { NewZipf(New(1), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfCDFNormalized(t *testing.T) {
	pmf := ZipfCDF(1.3, 500)
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	for i := 1; i < len(pmf); i++ {
		if pmf[i] > pmf[i-1] {
			t.Fatal("PMF must be non-increasing")
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatal("Shuffle lost elements")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1.1, 1<<20)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Normal()
	}
}
