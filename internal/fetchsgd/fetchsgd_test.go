package fetchsgd

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

func TestGradSketchUnbiasedEstimate(t *testing.T) {
	const d = 2048
	s := NewGradSketch(5, 512, 1)
	vec := make([]float64, d)
	rng := randx.New(2)
	// Sparse vector: 20 spikes.
	for i := 0; i < 20; i++ {
		vec[rng.Intn(d)] = rng.Normal() * 10
	}
	s.Accumulate(vec, 1)
	for j, v := range vec {
		if v == 0 {
			continue
		}
		got := s.Estimate(j)
		if math.Abs(got-v) > 1.5 {
			t.Errorf("coord %d: estimate %.3f, want %.3f", j, got, v)
		}
	}
}

func TestGradSketchTopKRecovery(t *testing.T) {
	const d = 4096
	s := NewGradSketch(7, 1024, 3)
	vec := make([]float64, d)
	// 10 heavy coordinates among small noise.
	heavy := map[int]float64{}
	rng := randx.New(4)
	for i := 0; i < 10; i++ {
		j := rng.Intn(d)
		vec[j] = 100 + float64(i)
		heavy[j] = vec[j]
	}
	for i := 0; i < 200; i++ {
		j := rng.Intn(d)
		if vec[j] == 0 {
			vec[j] = rng.Normal() * 0.1
		}
	}
	s.Accumulate(vec, 1)
	top := s.TopK(d, 10)
	found := 0
	for j := range heavy {
		if _, ok := top[j]; ok {
			found++
		}
	}
	if found < 9 {
		t.Errorf("top-k recovered %d/10 heavy coordinates", found)
	}
}

func TestGradSketchLinearity(t *testing.T) {
	const d = 512
	a := NewGradSketch(5, 128, 5)
	b := NewGradSketch(5, 128, 5)
	whole := NewGradSketch(5, 128, 5)
	va := make([]float64, d)
	vb := make([]float64, d)
	rng := randx.New(6)
	for j := 0; j < d; j++ {
		va[j] = rng.Normal()
		vb[j] = rng.Normal()
	}
	a.Accumulate(va, 1)
	b.Accumulate(vb, 1)
	whole.Accumulate(va, 1)
	whole.Accumulate(vb, 1)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 20; j++ {
		if math.Abs(a.Estimate(j)-whole.Estimate(j)) > 1e-9 {
			t.Fatal("merged sketch disagrees with single sketch")
		}
	}
	if err := a.Add(NewGradSketch(5, 128, 6)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across seeds must fail")
	}
}

func TestGradSketchSubtractSparse(t *testing.T) {
	s := NewGradSketch(5, 256, 7)
	vec := make([]float64, 100)
	vec[3] = 42
	vec[77] = -17
	s.Accumulate(vec, 1)
	s.SubtractSparse(map[int]float64{3: 42, 77: -17})
	for j := 0; j < 100; j++ {
		if math.Abs(s.Estimate(j)) > 1e-9 {
			t.Fatalf("coord %d not cancelled: %v", j, s.Estimate(j))
		}
	}
}

func TestGradSketchScaleReset(t *testing.T) {
	s := NewGradSketch(3, 64, 8)
	vec := make([]float64, 10)
	vec[5] = 8
	s.Accumulate(vec, 1)
	s.Scale(0.5)
	if got := s.Estimate(5); math.Abs(got-4) > 1e-9 {
		t.Errorf("scaled estimate %v, want 4", got)
	}
	s.Reset()
	if got := s.Estimate(5); got != 0 {
		t.Errorf("reset estimate %v", got)
	}
}

func TestWorkerGradientDescentDirection(t *testing.T) {
	task := NewTask(64, 8, 0.01, 9)
	workers := NewWorkers(task, 4, 400, 10)
	w := make([]float64, task.Dim) // zero model
	lossBefore := Loss(workers, w)
	// One aggregated gradient step must reduce loss.
	agg := make([]float64, task.Dim)
	for _, wk := range workers {
		g := wk.Gradient(w)
		for j := range agg {
			agg[j] += g[j] / float64(len(workers))
		}
	}
	for j := range w {
		w[j] -= 0.1 * agg[j]
	}
	if lossAfter := Loss(workers, w); lossAfter >= lossBefore {
		t.Errorf("gradient step increased loss: %.4f -> %.4f", lossBefore, lossAfter)
	}
}

func TestUncompressedTrainingConverges(t *testing.T) {
	task := NewTask(256, 16, 0.05, 11)
	workers := NewWorkers(task, 8, 1024, 12)
	res := TrainUncompressed(task, workers, 60, 0.3)
	if res.FinalLoss > 0.05 {
		t.Errorf("uncompressed final loss %.4f too high", res.FinalLoss)
	}
	if res.BytesPerRound != 256*8 {
		t.Errorf("bytes per round %d", res.BytesPerRound)
	}
}

func TestFetchSGDMatchesAccuracyAtLowerCost(t *testing.T) {
	// E16's headline: the sketched run communicates ~3x less per round
	// and still converges to a comparable loss on a sparse task. The
	// learning rate must satisfy (1−lr)² + lr²·(d/cols) < 1 — the
	// stability condition of the unsketch-noise analysis in train.go.
	task := NewTask(1024, 12, 0.05, 13)
	workers := NewWorkers(task, 8, 2048, 14)
	base := TrainUncompressed(task, workers, 300, 0.3)
	cfg := FetchSGDConfig{Rows: 5, Cols: 128, K: 64, LR: 0.05, Momentum: 0.5, Seed: 15}
	// Rows*Cols*8 = 5120 bytes vs 8192 uncompressed.
	sk := TrainFetchSGD(task, workers, 300, cfg)
	if sk.BytesPerRound >= base.BytesPerRound {
		t.Fatalf("sketched run not cheaper: %d vs %d bytes", sk.BytesPerRound, base.BytesPerRound)
	}
	noise := 0.05 * 0.05
	if sk.FinalLoss > 5*base.FinalLoss+2*noise {
		t.Errorf("fetchsgd loss %.4f too far above baseline %.4f", sk.FinalLoss, base.FinalLoss)
	}
	// It must also have actually learned something substantial.
	zero := Loss(workers, make([]float64, task.Dim))
	if sk.FinalLoss > zero/100 {
		t.Errorf("fetchsgd barely learned: %.4f vs initial %.4f", sk.FinalLoss, zero)
	}
}

func TestFetchSGDConvergesAtHigherCompression(t *testing.T) {
	// 3.2x compression with a correspondingly smaller learning rate
	// still converges, just more slowly — the tradeoff curve of E16.
	task := NewTask(1024, 12, 0.05, 16)
	workers := NewWorkers(task, 4, 1024, 17)
	cfg := FetchSGDConfig{Rows: 5, Cols: 64, K: 64, LR: 0.03, Momentum: 0.5, Seed: 18}
	full := TrainFetchSGD(task, workers, 300, cfg)
	if math.IsNaN(full.FinalLoss) {
		t.Fatal("training diverged")
	}
	zero := Loss(workers, make([]float64, task.Dim))
	if full.FinalLoss > zero/10 {
		t.Errorf("fetchsgd at 3.2x compression failed to learn: %.4f vs initial %.4f",
			full.FinalLoss, zero)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGradSketch(0, 4, 1)
}

func BenchmarkGradSketchAccumulate(b *testing.B) {
	s := NewGradSketch(5, 1024, 1)
	vec := make([]float64, 4096)
	rng := randx.New(1)
	for j := range vec {
		vec[j] = rng.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Accumulate(vec, 1)
	}
}

func BenchmarkTopK(b *testing.B) {
	s := NewGradSketch(5, 1024, 1)
	vec := make([]float64, 4096)
	rng := randx.New(1)
	for j := range vec {
		vec[j] = rng.Normal()
	}
	s.Accumulate(vec, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(4096, 64)
	}
}
