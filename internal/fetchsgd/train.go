package fetchsgd

import (
	"math"
	"sort"

	"repro/internal/randx"
)

// This file simulates the federated training loop: workers holding
// shards of a synthetic linear-regression task, a server aggregating
// either full gradients (the uncompressed baseline) or gradient
// sketches (FetchSGD). The substitution from the paper's production
// fleet is documented in DESIGN.md §3 — the compression/accuracy
// tradeoff is a property of the sketch, not of the fleet.

// Task is a synthetic linear-regression problem y = ⟨w*, x⟩ + noise
// with a sparse true weight vector — the regime where top-k recovery
// shines.
type Task struct {
	Dim   int
	TrueW []float64
	noise float64
}

// NewTask creates a d-dimensional task whose true weights have the
// given number of nonzero coordinates.
func NewTask(d, nonzeros int, noise float64, seed uint64) *Task {
	rng := randx.New(seed)
	w := make([]float64, d)
	perm := rng.Perm(d)
	for i := 0; i < nonzeros && i < d; i++ {
		w[perm[i]] = rng.Normal() * 3
	}
	return &Task{Dim: d, TrueW: w, noise: noise}
}

// Worker holds a private shard of examples.
type Worker struct {
	xs   [][]float64
	ys   []float64
	task *Task
}

// NewWorkers splits nSamples fresh examples evenly across nWorkers.
func NewWorkers(task *Task, nWorkers, nSamples int, seed uint64) []*Worker {
	rng := randx.New(seed)
	workers := make([]*Worker, nWorkers)
	for i := range workers {
		workers[i] = &Worker{task: task}
	}
	for s := 0; s < nSamples; s++ {
		x := make([]float64, task.Dim)
		var y float64
		for j := range x {
			x[j] = rng.Normal()
			y += task.TrueW[j] * x[j]
		}
		y += rng.Normal() * task.noise
		w := workers[s%nWorkers]
		w.xs = append(w.xs, x)
		w.ys = append(w.ys, y)
	}
	return workers
}

// Gradient computes the full-batch MSE gradient of the worker's shard
// at model weights w.
func (wk *Worker) Gradient(w []float64) []float64 {
	g := make([]float64, len(w))
	if len(wk.xs) == 0 {
		return g
	}
	for s, x := range wk.xs {
		pred := dot(w, x)
		resid := pred - wk.ys[s]
		for j := range g {
			g[j] += resid * x[j]
		}
	}
	inv := 1 / float64(len(wk.xs))
	for j := range g {
		g[j] *= inv
	}
	return g
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Loss computes the MSE of model w over all workers' shards.
func Loss(workers []*Worker, w []float64) float64 {
	var sum float64
	var n int
	for _, wk := range workers {
		for s, x := range wk.xs {
			r := dot(w, x) - wk.ys[s]
			sum += r * r
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TrainResult summarizes one training run.
type TrainResult struct {
	FinalLoss     float64
	BytesPerRound int // uplink bytes per worker per round
	Rounds        int
	Model         []float64
}

// TrainUncompressed runs standard synchronous distributed SGD: every
// worker uploads its dense gradient (d·8 bytes) each round.
func TrainUncompressed(task *Task, workers []*Worker, rounds int, lr float64) TrainResult {
	w := make([]float64, task.Dim)
	for round := 0; round < rounds; round++ {
		agg := make([]float64, task.Dim)
		for _, wk := range workers {
			g := wk.Gradient(w)
			for j := range agg {
				agg[j] += g[j]
			}
		}
		inv := 1 / float64(len(workers))
		for j := range w {
			w[j] -= lr * agg[j] * inv
		}
	}
	return TrainResult{
		FinalLoss:     Loss(workers, w),
		BytesPerRound: task.Dim * 8,
		Rounds:        rounds,
		Model:         w,
	}
}

// FetchSGDConfig parameterizes the compressed run.
type FetchSGDConfig struct {
	Rows, Cols int     // sketch shape (uplink cost = Rows·Cols·8 bytes)
	K          int     // coordinates applied per round
	LR         float64 // learning rate
	Momentum   float64 // server-side momentum on the sketch
	Seed       uint64
}

// TrainFetchSGD runs the FetchSGD loop (Rothchild et al., Algorithm 1)
// with one documented simplification (DESIGN.md §3): the *uplink* is
// the Count-Sketch — each worker ships Rows×Cols floats instead of the
// d-dimensional gradient, and the server merges the sketches by
// linearity, which is the communication claim experiment E16 measures —
// but the server keeps its momentum and error-feedback accumulators
// dense. The original holds them in sketch space to also bound server
// memory; on the small strongly-convex tasks of this reproduction that
// variant is unstable (the accumulator densifies and top-k selection
// bias pumps noise), whereas dense server state subtracts applied mass
// exactly, so error feedback behaves as analyzed:
//
//	ĝ ← unsketch(merge of worker sketches)   (unbiased, noisy)
//	u ← ρ·u + ĝ
//	e ← e + η·u
//	Δ ← TopK(e);  e ← e − Δ;  w ← w − Δ
func TrainFetchSGD(task *Task, workers []*Worker, rounds int, cfg FetchSGDConfig) TrainResult {
	w := make([]float64, task.Dim)
	u := make([]float64, task.Dim)
	e := make([]float64, task.Dim)
	for round := 0; round < rounds; round++ {
		// Uplink: each worker sketches its gradient; server merges.
		roundSketch := NewGradSketch(cfg.Rows, cfg.Cols, cfg.Seed+uint64(round))
		inv := 1 / float64(len(workers))
		for _, wk := range workers {
			workerSketch := NewGradSketch(cfg.Rows, cfg.Cols, cfg.Seed+uint64(round))
			workerSketch.Accumulate(wk.Gradient(w), inv)
			if err := roundSketch.Add(workerSketch); err != nil {
				panic(err)
			}
		}
		// Server: unsketch, momentum, error feedback, top-k apply.
		for j := 0; j < task.Dim; j++ {
			u[j] = cfg.Momentum*u[j] + roundSketch.Estimate(j)
			e[j] += cfg.LR * u[j]
		}
		for j, v := range topKDense(e, cfg.K) {
			w[j] -= v
			e[j] -= v
		}
	}
	return TrainResult{
		FinalLoss:     Loss(workers, w),
		BytesPerRound: cfg.Rows * cfg.Cols * 8,
		Rounds:        rounds,
		Model:         w,
	}
}

// topKDense returns the k largest-magnitude coordinates of a dense
// vector as a sparse map.
func topKDense(v []float64, k int) map[int]float64 {
	type cv struct {
		coord int
		val   float64
	}
	all := make([]cv, 0, len(v))
	for j, x := range v {
		if x != 0 {
			all = append(all, cv{j, x})
		}
	}
	if len(all) > k {
		// Full sort is fine at these dimensions.
		sort.Slice(all, func(i, j int) bool {
			return math.Abs(all[i].val) > math.Abs(all[j].val)
		})
		all = all[:k]
	}
	out := make(map[int]float64, len(all))
	for _, e := range all {
		out[e.coord] = e.val
	}
	return out
}
