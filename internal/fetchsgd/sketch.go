// Package fetchsgd reproduces the sketching-for-ML application the
// paper discusses (§3, "Optimizing Machine Learning"): FetchSGD
// (Rothchild et al., ICML 2020) compresses each worker's gradient into
// a Count-Sketch; the server merges the sketches (they are linear),
// recovers the top-k coordinates, and applies them with momentum and
// error feedback — cutting per-round communication from O(d) to the
// sketch size while matching uncompressed accuracy on overparameterized
// models. Experiment E16 reproduces the communication/accuracy
// tradeoff on synthetic linear models with simulated workers.
package fetchsgd

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hashx"
)

// GradSketch is a Count-Sketch over float-valued vectors — the gradient
// compressor. It is linear: sketches of per-worker gradients sum to the
// sketch of the aggregate gradient.
type GradSketch struct {
	rows, cols int
	data       [][]float64
	bucket     []*hashx.KWise
	sign       []*hashx.KWise
	seed       uint64
}

// NewGradSketch creates a rows×cols gradient sketch. rows should be odd
// (median recovery); even values are raised by one.
func NewGradSketch(rows, cols int, seed uint64) *GradSketch {
	if rows < 1 || cols < 1 {
		panic("fetchsgd: sketch dimensions must be positive")
	}
	if rows%2 == 0 {
		rows++
	}
	data := make([][]float64, rows)
	for i := range data {
		data[i] = make([]float64, cols)
	}
	seeds := hashx.SeedSequence(seed, 2*rows)
	bucket := make([]*hashx.KWise, rows)
	sign := make([]*hashx.KWise, rows)
	for i := 0; i < rows; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	return &GradSketch{rows: rows, cols: cols, data: data, bucket: bucket, sign: sign, seed: seed}
}

// Accumulate folds vec into the sketch (scaled by scale).
func (s *GradSketch) Accumulate(vec []float64, scale float64) {
	for j, v := range vec {
		if v == 0 {
			continue
		}
		x := v * scale
		for r := 0; r < s.rows; r++ {
			pos := s.bucket[r].HashRange(uint64(j), s.cols)
			s.data[r][pos] += float64(s.sign[r].Sign(uint64(j))) * x
		}
	}
}

// Add merges another sketch (linearity).
func (s *GradSketch) Add(other *GradSketch) error {
	if s.rows != other.rows || s.cols != other.cols || s.seed != other.seed {
		return fmt.Errorf("%w: gradient sketch shape mismatch", core.ErrIncompatible)
	}
	for r := range s.data {
		for j := range s.data[r] {
			s.data[r][j] += other.data[r][j]
		}
	}
	return nil
}

// AddScaled merges factor·other into the sketch (linearity).
func (s *GradSketch) AddScaled(other *GradSketch, factor float64) error {
	if s.rows != other.rows || s.cols != other.cols || s.seed != other.seed {
		return fmt.Errorf("%w: gradient sketch shape mismatch", core.ErrIncompatible)
	}
	for r := range s.data {
		for j := range s.data[r] {
			s.data[r][j] += factor * other.data[r][j]
		}
	}
	return nil
}

// Scale multiplies every counter (momentum decay uses this).
func (s *GradSketch) Scale(factor float64) {
	for r := range s.data {
		for j := range s.data[r] {
			s.data[r][j] *= factor
		}
	}
}

// Reset zeroes the sketch.
func (s *GradSketch) Reset() {
	for r := range s.data {
		for j := range s.data[r] {
			s.data[r][j] = 0
		}
	}
}

// Estimate returns the unbiased estimate of coordinate j.
func (s *GradSketch) Estimate(j int) float64 {
	ests := make([]float64, s.rows)
	for r := 0; r < s.rows; r++ {
		pos := s.bucket[r].HashRange(uint64(j), s.cols)
		ests[r] = float64(s.sign[r].Sign(uint64(j))) * s.data[r][pos]
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// TopK recovers the k largest-magnitude coordinates of the sketched
// vector over dimension d, returning a sparse map coordinate → value.
func (s *GradSketch) TopK(d, k int) map[int]float64 {
	type cv struct {
		coord int
		val   float64
	}
	all := make([]cv, 0, d)
	for j := 0; j < d; j++ {
		v := s.Estimate(j)
		if v != 0 {
			all = append(all, cv{j, v})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		return math.Abs(all[i].val) > math.Abs(all[j].val)
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make(map[int]float64, len(all))
	for _, e := range all {
		out[e.coord] = e.val
	}
	return out
}

// SubtractSparse removes a sparse vector from the sketch (error
// feedback: the recovered mass leaves the accumulator).
func (s *GradSketch) SubtractSparse(sparse map[int]float64) {
	for j, v := range sparse {
		for r := 0; r < s.rows; r++ {
			pos := s.bucket[r].HashRange(uint64(j), s.cols)
			s.data[r][pos] -= float64(s.sign[r].Sign(uint64(j))) * v
		}
	}
}

// SizeBytes returns the sketch payload size — the per-round
// communication cost E16 reports.
func (s *GradSketch) SizeBytes() int { return s.rows * s.cols * 8 }

// Rows returns the sketch depth.
func (s *GradSketch) Rows() int { return s.rows }

// Cols returns the sketch width.
func (s *GradSketch) Cols() int { return s.cols }
