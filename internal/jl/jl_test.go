package jl

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// randomPoints draws n random points in R^d with varied scales.
func randomPoints(n, d int, seed uint64) [][]float64 {
	rng := randx.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		scale := math.Exp(rng.Normal())
		for j := range pts[i] {
			pts[i][j] = rng.Normal() * scale
		}
	}
	return pts
}

func checkDistancePreservation(t *testing.T, tr Transform, pts [][]float64, eps float64) {
	t.Helper()
	projected := make([][]float64, len(pts))
	for i, p := range pts {
		projected[i] = tr.Apply(p)
	}
	violations, pairs := 0, 0
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			orig := Distance(pts[i], pts[j])
			proj := Distance(projected[i], projected[j])
			pairs++
			if math.Abs(proj-orig) > eps*orig {
				violations++
			}
		}
	}
	// The union bound is loose; allow a 5% violation rate at the
	// nominal eps.
	if violations > pairs/20 {
		t.Errorf("%d/%d pairs violated (1±%.2f) distortion", violations, pairs, eps)
	}
}

func TestGaussianDistancePreservation(t *testing.T) {
	const n, d, eps = 30, 500, 0.25
	k := TargetDim(n, eps)
	tr := NewGaussian(d, k, 1)
	checkDistancePreservation(t, tr, randomPoints(n, d, 2), eps)
}

func TestRademacherDistancePreservation(t *testing.T) {
	const n, d, eps = 30, 500, 0.25
	k := TargetDim(n, eps)
	tr := NewRademacher(d, k, 3)
	checkDistancePreservation(t, tr, randomPoints(n, d, 4), eps)
}

func TestSparseDistancePreservation(t *testing.T) {
	const n, d, eps = 30, 500, 0.25
	k := TargetDim(n, eps)
	k = (k/8 + 1) * 8 // make divisible by sparsity 8
	tr := NewSparse(d, k, 8, 5)
	checkDistancePreservation(t, tr, randomPoints(n, d, 6), eps)
}

func TestNormPreservationStatistics(t *testing.T) {
	// E[||Ax||²] = ||x||² for all three transforms.
	const d, k, trials = 200, 256, 50
	x := randomPoints(1, d, 7)[0]
	want := Norm(x)
	for name, mk := range map[string]func(seed uint64) Transform{
		"gaussian":   func(s uint64) Transform { return NewGaussian(d, k, s) },
		"rademacher": func(s uint64) Transform { return NewRademacher(d, k, s) },
		"sparse":     func(s uint64) Transform { return NewSparse(d, k, 8, s) },
	} {
		var sumSq float64
		for trial := 0; trial < trials; trial++ {
			y := mk(uint64(trial) + 10).Apply(x)
			sumSq += Norm(y) * Norm(y)
		}
		meanSq := sumSq / trials
		if math.Abs(meanSq-want*want)/(want*want) > 0.15 {
			t.Errorf("%s: mean ||Ax||² = %.4f, want %.4f", name, meanSq, want*want)
		}
	}
}

func TestSparseTouchesOnlySCoordinates(t *testing.T) {
	const d, k, s = 100, 64, 4
	tr := NewSparse(d, k, s, 8)
	// A one-hot input must produce at most s nonzeros.
	x := make([]float64, d)
	x[37] = 1
	y := tr.Apply(x)
	nz := 0
	for _, v := range y {
		if v != 0 {
			nz++
		}
	}
	if nz > s {
		t.Errorf("one-hot input produced %d nonzeros, want <= %d", nz, s)
	}
	if nz == 0 {
		t.Error("projection lost the input entirely")
	}
}

func TestTransformLinearity(t *testing.T) {
	const d, k = 50, 32
	tr := NewSparse(d, k, 4, 9)
	a := randomPoints(1, d, 10)[0]
	b := randomPoints(1, d, 11)[0]
	sum := make([]float64, d)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	ya, yb, ys := tr.Apply(a), tr.Apply(b), tr.Apply(sum)
	for i := range ys {
		if math.Abs(ys[i]-(ya[i]+yb[i])) > 1e-9 {
			t.Fatal("transform is not linear")
		}
	}
}

func TestTargetDim(t *testing.T) {
	if TargetDim(100, 0.1) < 100 {
		t.Error("target dim suspiciously small")
	}
	if TargetDim(1000, 0.1) <= TargetDim(10, 0.1) {
		t.Error("target dim must grow with n")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad eps")
		}
	}()
	TargetDim(10, 0)
}

func TestApplyPanicsOnWrongDim(t *testing.T) {
	tr := NewGaussian(10, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Apply(make([]float64, 11))
}

func TestSparsePanicsWhenSNotDividesK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(10, 10, 3, 1)
}

func TestDims(t *testing.T) {
	g := NewGaussian(7, 3, 1)
	if g.InputDim() != 7 || g.OutputDim() != 3 {
		t.Error("dense dims wrong")
	}
	s := NewSparse(8, 4, 2, 1)
	if s.InputDim() != 8 || s.OutputDim() != 4 || s.Sparsity() != 2 {
		t.Error("sparse dims wrong")
	}
}

func BenchmarkDenseApply(b *testing.B) {
	tr := NewGaussian(1024, 128, 1)
	x := randomPoints(1, 1024, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply(x)
	}
}

func BenchmarkSparseApply(b *testing.B) {
	tr := NewSparse(1024, 128, 8, 1)
	x := randomPoints(1, 1024, 1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Apply(x)
	}
}
