// Package jl implements Johnson–Lindenstrauss dimensionality-reduction
// transforms: the dense Gaussian and Rademacher projections that made
// the 1984 lemma constructive in the 1990s, and the sparse
// (Count-Sketch-structured) transform of Kane and Nelson (2012) that
// the paper highlights among the deep theoretical advances.
//
// A JL transform maps x ∈ R^d to y ∈ R^k with k = O(ε⁻²·log 1/δ) so
// that ‖y‖ = (1±ε)‖x‖, preserving pairwise Euclidean distances among
// any fixed point set (experiment E10). The sparse transform touches
// only s ≪ k coordinates per input coordinate, trading a constant in k
// for an s/k-fold speedup on sparse inputs.
package jl

import (
	"fmt"
	"math"

	"repro/internal/hashx"
	"repro/internal/randx"
)

// Transform maps vectors from dimension d to dimension k.
type Transform interface {
	// Apply projects x (length d) to a new length-k vector.
	Apply(x []float64) []float64
	// InputDim returns d.
	InputDim() int
	// OutputDim returns k.
	OutputDim() int
}

// TargetDim returns the standard JL output dimension
// ⌈8·ln(n)/ε²⌉ sufficient to preserve all pairwise distances among n
// points within (1±ε).
func TargetDim(n int, eps float64) int {
	if n < 2 {
		n = 2
	}
	if !(eps > 0 && eps < 1) {
		panic("jl: eps must be in (0,1)")
	}
	return int(math.Ceil(8 * math.Log(float64(n)) / (eps * eps)))
}

// Dense is a dense random projection with entries drawn i.i.d. from
// either a Gaussian or Rademacher (±1) distribution, scaled by 1/√k.
type Dense struct {
	mat  []float64 // k rows × d columns, row-major
	d, k int
}

// NewGaussian creates a dense Gaussian JL transform from d to k
// dimensions.
func NewGaussian(d, k int, seed uint64) *Dense {
	t := newDense(d, k)
	rng := randx.New(seed)
	scale := 1 / math.Sqrt(float64(k))
	for i := range t.mat {
		t.mat[i] = rng.Normal() * scale
	}
	return t
}

// NewRademacher creates a dense ±1/√k JL transform (Achlioptas-style),
// the matrix form of the AMS tug-of-war sketch.
func NewRademacher(d, k int, seed uint64) *Dense {
	t := newDense(d, k)
	rng := randx.New(seed)
	scale := 1 / math.Sqrt(float64(k))
	for i := range t.mat {
		if rng.Bool() {
			t.mat[i] = scale
		} else {
			t.mat[i] = -scale
		}
	}
	return t
}

func newDense(d, k int) *Dense {
	if d < 1 || k < 1 {
		panic("jl: dimensions must be positive")
	}
	return &Dense{mat: make([]float64, d*k), d: d, k: k}
}

// Apply projects x.
func (t *Dense) Apply(x []float64) []float64 {
	if len(x) != t.d {
		panic(fmt.Sprintf("jl: input dimension %d, want %d", len(x), t.d))
	}
	out := make([]float64, t.k)
	for i := 0; i < t.k; i++ {
		row := t.mat[i*t.d : (i+1)*t.d]
		var sum float64
		for j, v := range x {
			sum += row[j] * v
		}
		out[i] = sum
	}
	return out
}

// InputDim returns d.
func (t *Dense) InputDim() int { return t.d }

// OutputDim returns k.
func (t *Dense) OutputDim() int { return t.k }

// Sparse is the Kane–Nelson sparse JL transform in its CountSketch-
// block form: the output is divided into s blocks of k/s buckets; each
// input coordinate lands in one bucket per block with a ±1 sign, scaled
// by 1/√s. Each input coordinate touches exactly s output coordinates.
type Sparse struct {
	d, k, s int
	bucket  []*hashx.KWise
	sign    []*hashx.KWise
	block   int // buckets per block = k/s
}

// NewSparse creates a sparse JL transform with sparsity s (number of
// nonzeros per column); s must divide k.
func NewSparse(d, k, s int, seed uint64) *Sparse {
	if d < 1 || k < 1 || s < 1 {
		panic("jl: dimensions must be positive")
	}
	if k%s != 0 {
		panic("jl: sparsity must divide output dimension")
	}
	seeds := hashx.SeedSequence(seed, 2*s)
	bucket := make([]*hashx.KWise, s)
	sign := make([]*hashx.KWise, s)
	for i := 0; i < s; i++ {
		bucket[i] = hashx.NewKWise(2, seeds[2*i])
		sign[i] = hashx.NewKWise(4, seeds[2*i+1])
	}
	return &Sparse{d: d, k: k, s: s, bucket: bucket, sign: sign, block: k / s}
}

// Apply projects x, visiting only s output coordinates per nonzero
// input coordinate.
func (t *Sparse) Apply(x []float64) []float64 {
	if len(x) != t.d {
		panic(fmt.Sprintf("jl: input dimension %d, want %d", len(x), t.d))
	}
	out := make([]float64, t.k)
	scale := 1 / math.Sqrt(float64(t.s))
	for j, v := range x {
		if v == 0 {
			continue
		}
		for b := 0; b < t.s; b++ {
			pos := b*t.block + t.bucket[b].HashRange(uint64(j), t.block)
			out[pos] += float64(t.sign[b].Sign(uint64(j))) * v * scale
		}
	}
	return out
}

// InputDim returns d.
func (t *Sparse) InputDim() int { return t.d }

// OutputDim returns k.
func (t *Sparse) OutputDim() int { return t.k }

// Sparsity returns s.
func (t *Sparse) Sparsity() int { return t.s }

// Norm returns the Euclidean norm of a vector.
func Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Distance returns the Euclidean distance between two vectors.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("jl: dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
