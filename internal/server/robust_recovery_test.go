package server

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/durable"
)

// Robustdistinct is the one family whose QUERIES mutate state (the
// switching defense burns copies as the revealed output drifts), and
// only ingest is WAL-logged — so the defense's burn-down is durable up
// to the last snapshot, and replayed ingest reconstructs everything
// after it. This test pins the contract: a query-mutated state
// captured by a snapshot plus a WAL tail of further ingest recovers
// byte-identically after kill -9.
func TestRobustDistinctKill9ByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})

	mustDo(t, "POST", ts1.URL+"/v1/sketch/rd",
		`{"type":"robustdistinct","p":10,"params":{"lambda":6,"rho":0.1,"q":0.5}}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/rd/add", "alpha\nbeta\ngamma\ndelta")

	// Burn switching state with queries, then snapshot: the mutated
	// cur/last must ride the snapshot.
	q1 := mustDo(t, "GET", ts1.URL+"/v1/sketch/rd/query", "")
	mustDo(t, "POST", ts1.URL+"/v1/sketch/rd/add", "epsilon\nzeta\neta\ntheta\niota\nkappa")
	mustDo(t, "GET", ts1.URL+"/v1/sketch/rd/query", "")
	if err := s1.dur.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}

	// WAL tail after the snapshot: ingest only (no further queries, so
	// the pre-kill snapshot fetch is the exact recovery target).
	mustDo(t, "POST", ts1.URL+"/v1/sketch/rd/add", "lambda\nmu\nnu\nxi")
	want := mustDo(t, "GET", ts1.URL+"/v1/sketch/rd/snapshot", "")

	if err := s1.dur.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	ts1.Close()
	s1.dur.Kill()

	_, ts2, stats := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats.SketchesLoaded != 1 {
		t.Fatalf("recovered %d sketches, want 1", stats.SketchesLoaded)
	}
	if stats.RecordsReplayed != 1 {
		t.Fatalf("replayed %d WAL records, want 1 (the post-snapshot ingest)", stats.RecordsReplayed)
	}
	got := mustDo(t, "GET", ts2.URL+"/v1/sketch/rd/snapshot", "")
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot differs: %d bytes vs %d", len(got), len(want))
	}

	// The recovered defense still answers, with its gauges intact.
	var doc map[string]any
	if err := json.Unmarshal(mustDo(t, "GET", ts2.URL+"/v1/sketch/rd/query", ""), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["copies"].(float64) != 6 {
		t.Errorf("recovered copies = %v, want 6", doc["copies"])
	}
	var first map[string]any
	if err := json.Unmarshal(q1, &first); err != nil {
		t.Fatal(err)
	}
	if doc["copies_used"].(float64) < first["copies_used"].(float64) {
		t.Errorf("burned copies regressed across recovery: %v -> %v",
			first["copies_used"], doc["copies_used"])
	}
}
