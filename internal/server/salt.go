package server

import "repro/internal/hashx"

// Seed salting (-salt-seeds): by default every sketch created without
// an explicit seed shares seed 1, which keeps cross-shard and
// cross-server exchange trivially compatible but also means every
// sketch shares one hash function — an adversarial stream that finds
// collisions against one sketch finds them against all of them (the
// PR 9 red-team headroom). With salting on, a seedless create derives
// its seed from (tenant, name), so sketches stop sharing randomness
// while every replica of the SAME sketch — the coordinator broadcasts
// creates by (tenant, name) to all shards — still derives the SAME
// seed, keeping cross-shard merges compatible.
//
// The derived seed is stamped into the CreateRequest BEFORE the create
// is WAL-logged (exactly like the TTL CreatedUnix stamp), so crash
// replay and follower replication reconstruct byte-identical state. An
// explicit client seed always wins; the E30 cluster bit-identity pins
// run in default mode (salting off) and are unaffected.

// saltSeedBase is the fixed base seed of the derivation. Changing it
// would re-seed every salted deployment's future creates; existing
// sketches are unaffected (their seeds are stamped in their WAL
// create records).
const saltSeedBase = 0x5f3c0de5a17ed5ee

// saltedSeed derives the per-(tenant, name) hash seed. Tenant and name
// are joined with a NUL — neither may contain one (tenant names are
// validated, sketch names travel in URL paths) — so ("ab","c") and
// ("a","bc") derive differently. Seed 0 means "default" throughout the
// system, so the derivation avoids it.
func saltedSeed(tenant, name string) uint64 {
	s := hashx.XXHash64String(tenant+"\x00"+name, saltSeedBase)
	if s == 0 {
		return saltSeedBase
	}
	return s
}

// SetSaltSeeds enables per-(tenant,name) seed derivation for creates
// that carry no explicit seed (sketchd -salt-seeds). Select it before
// serving traffic and use the same setting across a cluster's shards
// and restarts: the WAL replays stamped seeds faithfully either way,
// but new creates on differently-configured nodes would derive
// different hash functions.
func (s *Server) SetSaltSeeds(on bool) { s.saltSeeds = on }

// applySaltSeed stamps the derived seed into a seedless CreateRequest.
// Returns true when the request was modified (the caller re-marshals
// the body it WAL-logs).
func (s *Server) applySaltSeed(tenant, name string, req *CreateRequest) bool {
	if !s.saltSeeds || req.Seed != 0 {
		return false
	}
	req.Seed = saltedSeed(tenant, name)
	return true
}
