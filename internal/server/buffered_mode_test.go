package server

// Serving-mode tests for -concurrent-ingest=buffered: the registry's
// buffered (local-buffer/global-propagation) variants behind the same
// HTTP surface, including lifecycle (delete stops the propagator
// goroutine) and crash recovery with byte-identical restores.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/concurrent"
	"repro/internal/durable"
)

// bufferedMode flips the process into buffered serving for one test,
// restoring the default afterwards. Tests in this package run
// sequentially, so the global switch cannot leak into parallel tests.
func bufferedMode(t *testing.T) {
	t.Helper()
	concurrent.SetBufferedServing(true)
	t.Cleanup(func() { concurrent.SetBufferedServing(false) })
}

// bufferedFamilies are the families with a buffered serving variant.
var bufferedFamilies = []struct {
	typ   string
	batch func(round int) string
}{
	{"hll", func(r int) string { return fmt.Sprintf("user-%d-a\nuser-%d-b\nuser-%d-c", r, r, r) }},
	{"countmin", func(r int) string { return fmt.Sprintf("hot\t3\ncold-%d", r) }},
	{"blockedbloom", func(r int) string { return fmt.Sprintf("member-%d\nmember-%d-x", r, r) }},
}

func TestBufferedServingLifecycle(t *testing.T) {
	bufferedMode(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, f := range bufferedFamilies {
		mustDo(t, "POST", ts.URL+"/v1/sketch/buf-"+f.typ, fmt.Sprintf(`{"type":%q}`, f.typ))
		for round := 0; round < 3; round++ {
			mustDo(t, "POST", ts.URL+"/v1/sketch/buf-"+f.typ+"/add", f.batch(round))
		}
		// Snapshot syncs the buffered instance, so the query that
		// follows is exact (no writers in flight).
		mustDo(t, "GET", ts.URL+"/v1/sketch/buf-"+f.typ+"/snapshot", "")
		var q map[string]any
		if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/sketch/buf-"+f.typ+"/query", ""), &q); err != nil {
			t.Fatalf("%s query: %v", f.typ, err)
		}
		if _, ok := q["staleness_bound"]; !ok {
			t.Errorf("%s: buffered query lacks staleness_bound: %v", f.typ, q)
		}
	}

	var q map[string]any
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/sketch/buf-countmin/query?item=hot", ""), &q); err != nil {
		t.Fatal(err)
	}
	if est := q["estimate"].(float64); est < 9 {
		t.Errorf("countmin estimate for hot = %v, want >= 9 (3 rounds x weight 3)", est)
	}
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/sketch/buf-blockedbloom/query?item=member-1", ""), &q); err != nil {
		t.Fatal(err)
	}
	if q["contains"] != true {
		t.Errorf("blockedbloom lost member-1: %v", q)
	}
}

// Deleting a buffered sketch must stop its propagator goroutine.
func TestBufferedDeleteStopsPropagator(t *testing.T) {
	bufferedMode(t)
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Measure relative to the fully created state so constant HTTP
	// client/server goroutines (keep-alive conns) cancel out: deleting
	// the 8 sketches must release their 8 propagator goroutines.
	const sketches = 8
	for i := 0; i < sketches; i++ {
		name := fmt.Sprintf("tmp-%d", i)
		mustDo(t, "POST", ts.URL+"/v1/sketch/"+name, `{"type":"countmin"}`)
		mustDo(t, "POST", ts.URL+"/v1/sketch/"+name+"/add", "x\ny")
	}
	withSketches := runtime.NumGoroutine()
	for i := 0; i < sketches; i++ {
		mustDo(t, "DELETE", ts.URL+fmt.Sprintf("/v1/sketch/tmp-%d", i), "")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= withSketches-sketches {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d after deletes, want <= %d (had %d with %d buffered sketches live)",
				runtime.NumGoroutine(), withSketches-sketches, withSketches, sketches)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Crash recovery in buffered mode: same contract as the atomic path —
// recovered snapshots are byte-identical, because buffered marshal
// syncs (batch-end flush means every WAL-logged batch is handed off
// before its append) and restore merges into a fresh buffered global.
func TestBufferedCrashRecovery(t *testing.T) {
	bufferedMode(t)
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})

	for _, f := range bufferedFamilies {
		mustDo(t, "POST", ts1.URL+"/v1/sketch/bufdur-"+f.typ, fmt.Sprintf(`{"type":%q}`, f.typ))
		mustDo(t, "POST", ts1.URL+"/v1/sketch/bufdur-"+f.typ+"/add", f.batch(0))
	}
	if err := s1.dur.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	for round := 1; round <= 3; round++ {
		for _, f := range bufferedFamilies {
			mustDo(t, "POST", ts1.URL+"/v1/sketch/bufdur-"+f.typ+"/add", f.batch(round))
		}
	}
	want := map[string][]byte{}
	for _, f := range bufferedFamilies {
		want[f.typ] = mustDo(t, "GET", ts1.URL+"/v1/sketch/bufdur-"+f.typ+"/snapshot", "")
	}

	if err := s1.dur.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	ts1.Close()
	s1.dur.Kill()

	_, ts2, stats := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats.SketchesLoaded != len(bufferedFamilies) {
		t.Fatalf("recovered %d sketches, want %d (stats %+v)", stats.SketchesLoaded, len(bufferedFamilies), stats)
	}
	for _, f := range bufferedFamilies {
		got := mustDo(t, "GET", ts2.URL+"/v1/sketch/bufdur-"+f.typ+"/snapshot", "")
		if !bytes.Equal(got, want[f.typ]) {
			t.Errorf("%s: recovered snapshot differs (%d bytes vs %d)", f.typ, len(got), len(want[f.typ]))
		}
	}
}
