package server

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

// Leader-side replication endpoints. Replication is follower-pull over
// the same HTTP surface as everything else: the follower polls the
// manifest of shippable files (sealed WAL segments + snapshots),
// downloads what it is missing, and replays locally through the exact
// recovery machinery a restart uses. The poll carries the follower's
// applied LSN, which is how the leader knows its replication lag
// without any push channel:
//
//	POST /v1/repl/seal               rotate the active WAL segment so
//	                                 its records become shippable
//	GET  /v1/repl/status?applied=N   shippable manifest; records N as
//	                                 the follower's applied LSN
//	GET  /v1/repl/file/{name}        one sealed segment or snapshot file
//
// All three answer 409 on an in-memory-only server — replication ships
// the durable log, so there is nothing to follow without one.

// ReplicationStatus is the replication block of GET /v1/status. On a
// leader (durability on, at least one follower poll seen) it reports
// how far the slowest-known follower trails the WAL; on a follower it
// reports the apply frontier the replica has reached. LagRecords is
// the LSN gap — with one LSN per mutation record, it counts exactly
// the mutations the follower has not applied yet.
type ReplicationStatus struct {
	Role          string `json:"role,omitempty"` // "leader" | "follower"
	FollowerLSN   uint64 `json:"follower_lsn,omitempty"`
	LagRecords    uint64 `json:"lag_records"`
	FollowerAgeMS int64  `json:"follower_age_ms,omitempty"`
	AppliedLSN    uint64 `json:"applied_lsn,omitempty"`
	LeaderLSN     uint64 `json:"leader_lsn,omitempty"`
	Leader        string `json:"leader,omitempty"`
	LastSyncAgeMS int64  `json:"last_sync_age_ms,omitempty"`
}

// replState tracks what the server knows about replication: follower
// polls observed by a leader (atomics, touched on the poll path), and
// a follower's own self-report installed by its replica loop.
type replState struct {
	followerLSN  atomic.Uint64
	followerSeen atomic.Int64 // unixnano of the last poll; 0 = never

	mu   sync.Mutex
	self *ReplicationStatus // non-nil on a follower
	at   time.Time
}

// SetReplicationSelf installs the follower self-report shown on
// GET /v1/status (the replica loop calls it after every sync round).
func (s *Server) SetReplicationSelf(st ReplicationStatus) {
	s.repl.mu.Lock()
	s.repl.self = &st
	s.repl.at = time.Now()
	s.repl.mu.Unlock()
}

// ReplicationStatus assembles the status block: a follower self-report
// wins; otherwise a durable server that has seen a follower poll
// reports leader-side lag.
func (s *Server) ReplicationStatus() ReplicationStatus {
	s.repl.mu.Lock()
	self, at := s.repl.self, s.repl.at
	s.repl.mu.Unlock()
	if self != nil {
		st := *self
		st.Role = "follower"
		st.LastSyncAgeMS = time.Since(at).Milliseconds()
		return st
	}
	seen := s.repl.followerSeen.Load()
	if s.dur == nil || seen == 0 {
		return ReplicationStatus{}
	}
	st := ReplicationStatus{
		Role:          "leader",
		FollowerLSN:   s.repl.followerLSN.Load(),
		FollowerAgeMS: time.Since(time.Unix(0, seen)).Milliseconds(),
	}
	if wal := s.dur.Status().WALLSN; wal > st.FollowerLSN {
		st.LagRecords = wal - st.FollowerLSN
	}
	return st
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		httpError(w, http.StatusConflict, "replication requires a durable server (-data-dir)")
		return
	}
	if applied := r.URL.Query().Get("applied"); applied != "" {
		if lsn, err := strconv.ParseUint(applied, 10, 64); err == nil {
			s.repl.followerLSN.Store(lsn)
			s.repl.followerSeen.Store(time.Now().UnixNano())
		}
	}
	writeJSON(w, http.StatusOK, s.dur.Shippable())
}

func (s *Server) handleReplFile(w http.ResponseWriter, r *http.Request) {
	if s.dur == nil {
		httpError(w, http.StatusConflict, "replication requires a durable server (-data-dir)")
		return
	}
	data, err := s.dur.ReadShippable(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleReplSeal(w http.ResponseWriter, _ *http.Request) {
	if s.dur == nil {
		httpError(w, http.StatusConflict, "replication requires a durable server (-data-dir)")
		return
	}
	if err := s.dur.SealActive(); err != nil {
		httpError(w, http.StatusInternalServerError, "seal: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"sealed": true})
}

// NewReplayer returns a durable.RecoveryHandler that applies recovered
// or replicated state into this server's namespace — the same handler
// local crash recovery uses. A replication follower drives it
// incrementally: Begin + RestoreSketch for snapshot catch-up, then
// Replay per shipped WAL record, in LSN order, across sync rounds.
func (s *Server) NewReplayer() durable.RecoveryHandler {
	return &replayer{s: s}
}

// ResetNamespace drops every sketch, closing each entry. A follower
// re-seeding from a newer leader snapshot calls this first so the
// restored namespace is exactly the snapshot's, with no survivors from
// the previous timeline.
func (s *Server) ResetNamespace() {
	for _, ts := range s.tenantsSnapshot() {
		for _, ne := range ts.reg.snapshot() {
			if removed := ts.drop(ne.name); removed != nil {
				removed.entry.Close()
			}
		}
	}
}
