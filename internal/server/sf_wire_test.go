package server

// Slim-wire and seed-salting tests: the /snapshot?wire= negotiation,
// the per-family wire-byte counters it feeds, and the -salt-seeds
// derivation (including its WAL-stamping contract: recovery replays
// stamped seeds even on a server that never enabled salting).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/durable"
	"repro/internal/frequency"
	typereg "repro/internal/registry"
)

func getWire(t *testing.T, base, name, wire string) ([]byte, string) {
	t.Helper()
	url := base + "/v1/sketch/" + name + "/snapshot"
	if wire != "" {
		url += "?wire=" + wire
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, buf.String())
	}
	return buf.Bytes(), resp.Header.Get("X-Sketch-Wire")
}

func TestSnapshotWireSlim(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	mustDo(t, "POST", ts.URL+"/v1/sketch/sf", `{"type":"sfsketch","width":64,"depth":3}`)
	mustDo(t, "POST", ts.URL+"/v1/sketch/sf/add", "alpha\t5\nbeta\t2\ngamma")
	mustDo(t, "POST", ts.URL+"/v1/sketch/hll-full", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/sketch/hll-full/add", "a\nb\nc")

	full, hdr := getWire(t, ts.URL, "sf", "")
	if hdr != "" {
		t.Fatalf("full snapshot carries X-Sketch-Wire=%q", hdr)
	}
	slim, hdr := getWire(t, ts.URL, "sf", "slim")
	if hdr != "slim" {
		t.Fatalf("slim snapshot header = %q, want slim", hdr)
	}
	if len(slim) >= len(full) {
		t.Fatalf("slim envelope %d bytes, full %d: no wire saving", len(slim), len(full))
	}
	inst, d, err := typereg.Decode(slim)
	if err != nil {
		t.Fatal(err)
	}
	sf, ok := inst.(*frequency.SFSketch)
	if !ok || d.Name != "sfsketch" {
		t.Fatalf("slim envelope decoded as %T / %s", inst, d.Name)
	}
	if !sf.SlimOnly() {
		t.Fatal("slim envelope decoded with a fat stage")
	}
	if got := sf.EstimateString("alpha"); got < 5 {
		t.Fatalf("slim estimate(alpha) = %d, want >= 5", got)
	}

	// Families without a slim form answer ?wire=slim with their full
	// envelope and no header — the hint is safe everywhere.
	hfull, _ := getWire(t, ts.URL, "hll-full", "")
	hslim, hdr := getWire(t, ts.URL, "hll-full", "slim")
	if hdr != "" || !bytes.Equal(hfull, hslim) {
		t.Fatalf("hll ?wire=slim: header %q, bytes equal %v — want full fallback", hdr, bytes.Equal(hfull, hslim))
	}

	// Explicit ?wire=full and the default agree; junk modes are a 400.
	if f2, _ := getWire(t, ts.URL, "sf", "full"); !bytes.Equal(full, f2) {
		t.Fatal("?wire=full differs from the default snapshot")
	}
	if code, _ := httpDo(t, "GET", ts.URL+"/v1/sketch/sf/snapshot?wire=thin", ""); code != http.StatusBadRequest {
		t.Fatalf("?wire=thin: HTTP %d, want 400", code)
	}

	// The wire counters saw exactly the traffic above.
	var st StatusResponse
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/status", ""), &st); err != nil {
		t.Fatal(err)
	}
	byType := map[string]WireStat{}
	for _, w := range st.Wire {
		byType[w.Type] = w
	}
	sfw := byType["sfsketch"]
	if sfw.SlimSnapshots != 1 || sfw.SlimBytes != uint64(len(slim)) {
		t.Fatalf("sfsketch wire stats %+v: want 1 slim snapshot of %d bytes", sfw, len(slim))
	}
	if sfw.FullSnapshots != 2 || sfw.FullBytes != 2*uint64(len(full)) {
		t.Fatalf("sfsketch wire stats %+v: want 2 full snapshots of %d bytes", sfw, len(full))
	}
	if hw := byType["hll"]; hw.FullSnapshots != 2 || hw.SlimSnapshots != 0 {
		t.Fatalf("hll wire stats %+v: want 2 full snapshots, 0 slim", hw)
	}
}

func TestSaltSeedsDerivation(t *testing.T) {
	salted := New()
	salted.SetSaltSeeds(true)
	ts := httptest.NewServer(salted.Handler())
	defer ts.Close()
	plainSrv := httptest.NewServer(New().Handler())
	defer plainSrv.Close()

	seedOf := func(base, name string) uint64 {
		t.Helper()
		env := mustDo(t, "GET", base+"/v1/sketch/"+name+"/snapshot", "")
		inst, _, err := typereg.Decode(env)
		if err != nil {
			t.Fatal(err)
		}
		return inst.(*frequency.CountMin).Seed()
	}

	for _, base := range []string{ts.URL, plainSrv.URL} {
		mustDo(t, "POST", base+"/v1/sketch/a", `{"type":"countmin"}`)
		mustDo(t, "POST", base+"/v1/sketch/b", `{"type":"countmin"}`)
		mustDo(t, "POST", base+"/v1/sketch/c", `{"type":"countmin","seed":5}`)
	}

	// Unsalted: seedless creates share the default seed. Salted: every
	// (tenant, name) derives its own, and names diverge.
	if a, b := seedOf(plainSrv.URL, "a"), seedOf(plainSrv.URL, "b"); a != b {
		t.Fatalf("unsalted seeds differ: %d vs %d", a, b)
	}
	a, b := seedOf(ts.URL, "a"), seedOf(ts.URL, "b")
	if a == b {
		t.Fatal("salted server gave two names the same seed")
	}
	if a == seedOf(plainSrv.URL, "a") {
		t.Fatal("salted seed equals the default seed")
	}
	// An explicit seed always wins over the salt.
	if got := seedOf(ts.URL, "c"); got != 5 {
		t.Fatalf("explicit seed overridden: got %d, want 5", got)
	}
	// A tenant namespace derives differently from the default tenant for
	// the same sketch name.
	mustDo(t, "POST", ts.URL+"/v1/t/acme/sketch/a", `{"type":"countmin"}`)
	env := mustDo(t, "GET", ts.URL+"/v1/t/acme/sketch/a/snapshot", "")
	inst, _, err := typereg.Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	if inst.(*frequency.CountMin).Seed() == a {
		t.Fatal("tenant acme derived the default tenant's seed")
	}
}

func TestSaltSeedsStampedIntoWAL(t *testing.T) {
	// The derived seed must ride in the WAL-logged CreateRequest, so an
	// UNSALTED restart recovers byte-identical state: replay reads the
	// stamp, it never re-derives.
	dir := t.TempDir()
	s1 := New()
	s1.SetSaltSeeds(true)
	if _, err := s1.EnableDurability(dir, durable.Options{FsyncInterval: 0}); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	mustDo(t, "POST", ts1.URL+"/v1/sketch/salted", `{"type":"sfsketch","width":64,"depth":3}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/salted/add", "x\t9\ny\nz")
	mustDo(t, "POST", ts1.URL+"/v1/ingest/groupby?type=countmin&prefix=g-", "k1\thot\t2\nk2\tcold")
	want := mustDo(t, "GET", ts1.URL+"/v1/sketch/salted/snapshot", "")
	wantG1 := mustDo(t, "GET", ts1.URL+"/v1/sketch/g-k1/snapshot", "")
	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	s2, ts2, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0}) // salting NOT enabled
	defer s2.CloseDurability()
	if got := mustDo(t, "GET", ts2.URL+"/v1/sketch/salted/snapshot", ""); !bytes.Equal(got, want) {
		t.Fatal("recovered salted sketch is not byte-identical")
	}
	if got := mustDo(t, "GET", ts2.URL+"/v1/sketch/g-k1/snapshot", ""); !bytes.Equal(got, wantG1) {
		t.Fatal("recovered salted group sketch is not byte-identical")
	}

	// Group sketches of one fan-out share the template's derived seed
	// (one template, one WAL record), and it is not the default.
	seedFor := func(name string) uint64 {
		env := mustDo(t, "GET", ts2.URL+"/v1/sketch/"+name+"/snapshot", "")
		inst, _, err := typereg.Decode(env)
		if err != nil {
			t.Fatal(err)
		}
		return inst.(*frequency.CountMin).Seed()
	}
	k1, k2 := seedFor("g-k1"), seedFor("g-k2")
	if k1 != k2 {
		t.Fatalf("group sketches derived different seeds: %d vs %d", k1, k2)
	}
	if k1 == 1 {
		t.Fatal("group-by template was not salted")
	}
}

// TestSlimEnvelopeBundleCombine pins slim shipping through the GSKB
// bundle path: N slim SF envelopes gathered from different servers
// combine into one slim envelope whose estimates never undercount the
// union — the federated fan-in pays slim bytes per site.
func TestSlimEnvelopeBundleCombine(t *testing.T) {
	var envs [][]byte
	truth := map[string]uint64{}
	for site := 0; site < 3; site++ {
		sf := frequency.NewSFSketch(128, 4, 1024, 4, 9)
		for i := 0; i < 500; i++ {
			item := []byte{byte(site), byte(i), byte(i >> 4)}
			sf.Add(item, 1)
			truth[string(item)]++
		}
		env, err := sf.MarshalSlim()
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, env)
	}
	combined, err := CombineBundle(EncodeBundle(envs))
	if err != nil {
		t.Fatalf("combine slim bundle: %v", err)
	}
	inst, _, err := typereg.Decode(combined)
	if err != nil {
		t.Fatal(err)
	}
	merged := inst.(*frequency.SFSketch)
	for item, want := range truth {
		if got := merged.EstimateString(item); got < want {
			t.Fatalf("combined slim bundle undercounts %q: %d < %d", item, got, want)
		}
	}
}
