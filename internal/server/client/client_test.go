package client

import (
	"bytes"
	"testing"
)

func TestReadAppendGrowsAndReuses(t *testing.T) {
	payload := bytes.Repeat([]byte("envelope-bytes"), 1000)

	// From nil: grows to fit and returns the exact payload.
	got, err := ReadAppend(bytes.NewReader(payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAppend from nil: %d bytes, want %d", len(got), len(payload))
	}

	// Reused at capacity: same backing array, no copy drift.
	buf := got
	got2, err := ReadAppend(bytes.NewReader(payload), buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, payload) {
		t.Fatal("ReadAppend into reused buffer corrupted the payload")
	}
	if &got2[0] != &buf[0] {
		t.Fatal("ReadAppend reallocated a buffer that already fit the payload")
	}
}

func TestReadAppendZeroAllocSteadyState(t *testing.T) {
	// The pooled scatter-gather read path's contract: once a shard's
	// buffer has grown to the envelope size, re-reading an envelope of
	// the same size allocates nothing. bytes.Reader needs one extra byte
	// of headroom to observe EOF without triggering the grow path, which
	// matches a real response body read.
	payload := bytes.Repeat([]byte("envelope-bytes"), 1000)
	buf := make([]byte, 0, len(payload)+1)
	rd := bytes.NewReader(payload)
	if n := testing.AllocsPerRun(100, func() {
		rd.Reset(payload)
		var err error
		buf, err = ReadAppend(rd, buf[:0])
		if err != nil || len(buf) != len(payload) {
			t.Fatalf("ReadAppend: %v (%d bytes)", err, len(buf))
		}
	}); n != 0 {
		t.Errorf("ReadAppend steady state: %v allocs per op, want 0", n)
	}
}
