// Package client is the Go client for sketchd (internal/server): a
// thin wrapper over net/http that batches newline-delimited ingest,
// exchanges merge envelopes, and decodes query and stats responses.
// cmd/sketchbench's E25 loadgen uses it to measure ingest throughput
// scaling; cmd/sketchcli-style tools can reuse it as-is.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
)

// Client talks to one sketchd base URL. The zero value is not usable;
// create with New. Safe for concurrent use — the underlying
// http.Client pools keep-alive connections per goroutine.
type Client struct {
	base string
	hc   *http.Client
}

// sharedTransport is the pooled transport behind every New client. One
// transport for the whole process keeps the keep-alive pool shared
// across clients (a loadgen spawning a client per goroutine reuses
// connections instead of multiplying them), and its limits are tuned
// for coordinator fan-out: enough idle connections per shard to keep
// every core's requests pipelined, and explicit dial and
// response-header timeouts so one dead shard turns into a prompt error
// instead of an indefinitely hung scatter-gather slot. The stock
// http.DefaultTransport has no response-header timeout and only 2 idle
// connections per host — both wrong for fan-out.
var sharedTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   2 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   maxIdlePerHost(),
	IdleConnTimeout:       90 * time.Second,
	ResponseHeaderTimeout: 15 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

func maxIdlePerHost() int {
	if n := runtime.GOMAXPROCS(0) * 2; n > 16 {
		return n
	}
	return 16
}

// New creates a client for a base URL like "http://127.0.0.1:7600".
// The client shares a process-wide transport with dial and
// response-header timeouts plus an overall request deadline, so a call
// against a dead or wedged server fails instead of hanging forever;
// callers that need different limits use NewWithHTTPClient.
func New(base string) *Client {
	return NewWithHTTPClient(base, &http.Client{
		Transport: sharedTransport,
		Timeout:   60 * time.Second,
	})
}

// NewWithHTTPClient creates a client using a caller-provided
// http.Client (custom transport limits, timeouts).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Create registers a named sketch.
func (c *Client) Create(name string, req server.CreateRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.post(c.url(name, ""), "application/json", body, nil)
}

// Add ingests a batch of string items in one request.
func (c *Client) Add(name string, items []string) error {
	return c.AddBatch(name, []byte(strings.Join(items, "\n")))
}

// AddBatch ingests a pre-joined newline-delimited batch. Loadgen hot
// paths use this form to reuse one buffer across requests.
func (c *Client) AddBatch(name string, batch []byte) error {
	return c.post(c.url(name, "add"), "text/plain", batch, nil)
}

// Query runs the sketch's read operation and returns the decoded JSON
// document.
func (c *Client) Query(name string, params url.Values) (map[string]any, error) {
	u := c.url(name, "query")
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	var out map[string]any
	if err := c.get(u, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Estimate returns the "estimate" field of a query — the natural read
// for hll, countmin and theta sketches.
func (c *Client) Estimate(name string, params url.Values) (float64, error) {
	res, err := c.Query(name, params)
	if err != nil {
		return 0, err
	}
	est, ok := res["estimate"].(float64)
	if !ok {
		return 0, fmt.Errorf("client: no estimate in query response %v", res)
	}
	return est, nil
}

// Merge posts a peer's MarshalBinary envelope into the named sketch.
func (c *Client) Merge(name string, envelope []byte) error {
	return c.post(c.url(name, "merge"), "application/octet-stream", envelope, nil)
}

// MergeMany posts many same-type envelopes as one GSKB bundle. The
// server tree-merges the shards across its cores outside the sketch
// lock, then absorbs the combined result in a single merge — one
// request, one lock acquisition, one WAL record for the whole fan-in.
func (c *Client) MergeMany(name string, envelopes [][]byte) error {
	if len(envelopes) == 1 {
		return c.Merge(name, envelopes[0])
	}
	return c.post(c.url(name, "merge"), "application/octet-stream", server.EncodeBundle(envelopes), nil)
}

// Snapshot fetches the sketch's serialization envelope.
func (c *Client) Snapshot(name string) ([]byte, error) {
	resp, err := c.hc.Get(c.url(name, "snapshot"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, data)
	}
	return data, nil
}

// Delete drops the named sketch.
func (c *Client) Delete(name string) error {
	req, err := http.NewRequest(http.MethodDelete, c.url(name, ""), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return drainStatus(resp)
}

// Types fetches the server's sketch type catalog (GET /v1/types):
// every servable family with its parameter schema and ingest format.
func (c *Client) Types() ([]server.TypeInfo, error) {
	var out struct {
		Types []server.TypeInfo `json:"types"`
	}
	if err := c.get(c.base+"/v1/types", &out); err != nil {
		return nil, err
	}
	return out.Types, nil
}

// Status fetches GET /v1/status: uptime, op counters, and the
// durability gauges (WAL LSN, last snapshot LSN, WAL bytes, fsync
// age; Durability.Enabled is false on an in-memory-only server).
func (c *Client) Status() (server.StatusResponse, error) {
	var out server.StatusResponse
	err := c.get(c.base+"/v1/status", &out)
	return out, err
}

// Statsz fetches the server's operation counters.
func (c *Client) Statsz() (server.Statsz, error) {
	var out server.Statsz
	err := c.get(c.base+"/debug/statsz", &out)
	return out, err
}

// CreateRaw registers a named sketch from a pre-encoded JSON
// CreateRequest body — the coordinator's broadcast path, which
// forwards the client's body verbatim instead of re-marshaling it.
func (c *Client) CreateRaw(name string, body []byte) error {
	return c.post(c.url(name, ""), "application/json", body, nil)
}

// ReplStatus polls the leader's replication manifest (sealed WAL
// segments + current snapshot), reporting this follower's applied LSN
// so the leader can surface its replication lag.
func (c *Client) ReplStatus(applied uint64) (durable.ShippableState, error) {
	var out durable.ShippableState
	err := c.get(c.base+"/v1/repl/status?applied="+strconv.FormatUint(applied, 10), &out)
	return out, err
}

// ReplFile fetches one shippable file (sealed WAL segment or snapshot)
// by its manifest name.
func (c *Client) ReplFile(name string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/repl/file/" + url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, data)
	}
	return data, nil
}

// ReplSeal asks the leader to rotate its active WAL segment so every
// record appended so far becomes shippable — the freshness knob a
// polling follower turns before each sync round.
func (c *Client) ReplSeal() error {
	return c.post(c.base+"/v1/repl/seal", "application/json", nil, nil)
}

func (c *Client) url(name, op string) string {
	u := c.base + "/v1/sketch/" + url.PathEscape(name)
	if op != "" {
		u += "/" + op
	}
	return u
}

func (c *Client) get(u string, out any) error {
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *Client) post(u, contentType string, body []byte, out any) error {
	resp, err := c.hc.Post(u, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if out == nil {
		return drainStatus(resp)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

// drainStatus consumes the body (required to reuse the keep-alive
// connection) and converts non-2xx statuses to errors.
func drainStatus(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return statusError(resp.StatusCode, data)
}

// StatusError is a non-2xx server response, carrying the HTTP status
// so callers can distinguish permanent request errors (4xx) from
// retryable server-side failures (5xx) — the coordinator's ingest
// fan-out retries only the latter.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Code, e.Msg)
}

func statusError(code int, body []byte) error {
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return &StatusError{Code: code, Msg: doc.Error}
	}
	return &StatusError{Code: code, Msg: string(bytes.TrimSpace(body))}
}
