// Package client is the Go client for sketchd (internal/server): a
// thin wrapper over net/http that batches newline-delimited ingest,
// exchanges merge envelopes, and decodes query and stats responses.
// cmd/sketchbench's E25 loadgen uses it to measure ingest throughput
// scaling; cmd/sketchcli-style tools can reuse it as-is.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
)

// Client talks to one sketchd base URL. The zero value is not usable;
// create with New. Safe for concurrent use — the underlying
// http.Client pools keep-alive connections per goroutine.
//
// A client is optionally scoped to a tenant namespace via Tenant; an
// unscoped client uses the legacy /v1/sketch paths, which the server
// maps to the "default" tenant, so existing callers are unchanged.
type Client struct {
	base   string
	tenant string // "" = legacy paths (default namespace)
	hc     *http.Client
}

// sharedTransport is the pooled transport behind every New client. One
// transport for the whole process keeps the keep-alive pool shared
// across clients (a loadgen spawning a client per goroutine reuses
// connections instead of multiplying them), and its limits are tuned
// for coordinator fan-out: enough idle connections per shard to keep
// every core's requests pipelined, and explicit dial and
// response-header timeouts so one dead shard turns into a prompt error
// instead of an indefinitely hung scatter-gather slot. The stock
// http.DefaultTransport has no response-header timeout and only 2 idle
// connections per host — both wrong for fan-out.
var sharedTransport = &http.Transport{
	DialContext: (&net.Dialer{
		Timeout:   2 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   maxIdlePerHost(),
	IdleConnTimeout:       90 * time.Second,
	ResponseHeaderTimeout: 15 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

func maxIdlePerHost() int {
	if n := runtime.GOMAXPROCS(0) * 2; n > 16 {
		return n
	}
	return 16
}

// New creates a client for a base URL like "http://127.0.0.1:7600".
// The client shares a process-wide transport with dial and
// response-header timeouts plus an overall request deadline, so a call
// against a dead or wedged server fails instead of hanging forever;
// callers that need different limits use NewWithHTTPClient.
func New(base string) *Client {
	return NewWithHTTPClient(base, &http.Client{
		Transport: sharedTransport,
		Timeout:   60 * time.Second,
	})
}

// NewWithHTTPClient creates a client using a caller-provided
// http.Client (custom transport limits, timeouts).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Tenant returns a copy of the client scoped to a tenant namespace:
// every sketch call goes through /v1/t/{tenant}/... instead of the
// legacy paths. Tenant("") (and Tenant("default"), which the server
// treats identically) returns the receiver unchanged — the legacy
// paths already address the default namespace. The copy shares the
// underlying http.Client, so connection pooling is unaffected.
func (c *Client) Tenant(tenant string) *Client {
	if tenant == "" || tenant == "default" {
		return c
	}
	scoped := *c
	scoped.tenant = tenant
	return &scoped
}

// TenantName reports the tenant the client is scoped to ("" for the
// legacy/default namespace).
func (c *Client) TenantName() string { return c.tenant }

// Create registers a named sketch.
func (c *Client) Create(name string, req server.CreateRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.post(c.url(name, ""), "application/json", body, nil)
}

// Add ingests a batch of string items in one request.
func (c *Client) Add(name string, items []string) error {
	return c.AddBatch(name, []byte(strings.Join(items, "\n")))
}

// AddBatch ingests a pre-joined newline-delimited batch. Loadgen hot
// paths use this form to reuse one buffer across requests.
func (c *Client) AddBatch(name string, batch []byte) error {
	return c.post(c.url(name, "add"), "text/plain", batch, nil)
}

// Query runs the sketch's read operation and returns the decoded JSON
// document.
func (c *Client) Query(name string, params url.Values) (map[string]any, error) {
	u := c.url(name, "query")
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	var out map[string]any
	if err := c.get(u, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Estimate returns the "estimate" field of a query — the natural read
// for hll, countmin and theta sketches.
func (c *Client) Estimate(name string, params url.Values) (float64, error) {
	res, err := c.Query(name, params)
	if err != nil {
		return 0, err
	}
	est, ok := res["estimate"].(float64)
	if !ok {
		return 0, fmt.Errorf("client: no estimate in query response %v", res)
	}
	return est, nil
}

// Merge posts a peer's MarshalBinary envelope into the named sketch.
func (c *Client) Merge(name string, envelope []byte) error {
	return c.post(c.url(name, "merge"), "application/octet-stream", envelope, nil)
}

// MergeMany posts many same-type envelopes as one GSKB bundle. The
// server tree-merges the shards across its cores outside the sketch
// lock, then absorbs the combined result in a single merge — one
// request, one lock acquisition, one WAL record for the whole fan-in.
func (c *Client) MergeMany(name string, envelopes [][]byte) error {
	if len(envelopes) == 1 {
		return c.Merge(name, envelopes[0])
	}
	return c.post(c.url(name, "merge"), "application/octet-stream", server.EncodeBundle(envelopes), nil)
}

// Snapshot fetches the sketch's full serialization envelope.
func (c *Client) Snapshot(name string) ([]byte, error) {
	return c.SnapshotAppend(name, "", nil)
}

// SnapshotWire fetches the envelope in a wire mode: "slim" asks the
// server for the family's slim envelope (registry.SlimMarshaler;
// families without one answer full, so the mode is a safe hint), ""
// or "full" for the complete state.
func (c *Client) SnapshotWire(name, wire string) ([]byte, error) {
	return c.SnapshotAppend(name, wire, nil)
}

// SnapshotAppend fetches the envelope in the given wire mode,
// appending into dst and reusing its capacity — the form the
// coordinator's pooled scatter-gather path uses so a steady-state
// gather stops allocating a fresh envelope buffer per shard per query.
func (c *Client) SnapshotAppend(name, wire string, dst []byte) ([]byte, error) {
	u := c.url(name, "snapshot")
	if wire != "" {
		u += "?wire=" + url.QueryEscape(wire)
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return dst, err
	}
	defer resp.Body.Close()
	data, err := ReadAppend(resp.Body, dst[:0])
	if err != nil {
		return data, err
	}
	if resp.StatusCode != http.StatusOK {
		return data[:0], statusError(resp, data)
	}
	return data, nil
}

// ReadAppend drains r into dst, reusing dst's capacity and growing it
// only when the payload outgrows it. io.ReadAll allocates a fresh
// buffer per call; this is the reusable-buffer variant the pooled
// gather path needs — steady state is 0 allocs once the buffer has
// grown to the envelope size.
func ReadAppend(r io.Reader, dst []byte) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// Delete drops the named sketch.
func (c *Client) Delete(name string) error {
	req, err := http.NewRequest(http.MethodDelete, c.url(name, ""), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return drainStatus(resp)
}

// ListPage is one page of GET /v1/sketch: the sketch rows plus the
// cursor to pass back for the next page when the listing was
// truncated at the requested limit.
type ListPage struct {
	Sketches []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	} `json:"sketches"`
	Truncated  bool   `json:"truncated,omitempty"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// List fetches one page of the tenant's sketch listing. prefix filters
// by name prefix, cursor resumes after a prior page's NextCursor, and
// limit caps the page size (0 takes the server default).
func (c *Client) List(prefix, cursor string, limit int) (ListPage, error) {
	q := url.Values{}
	if prefix != "" {
		q.Set("prefix", prefix)
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	u := c.v1() + "/sketch"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var out ListPage
	err := c.get(u, &out)
	return out, err
}

// GroupByResult is the ack of a group-by ingest call.
type GroupByResult struct {
	Tenant  string `json:"tenant"`
	Groups  int    `json:"groups"`
	Created int    `json:"created"`
	Added   uint64 `json:"added"`
}

// GroupBy posts one group<TAB>item batch to POST /v1/ingest/groupby,
// fanning the batch into a sketch per group under a shared create
// template. params carries the template query parameters (type is
// required; prefix, ttl_s, and the CreateRequest convenience fields
// are optional).
func (c *Client) GroupBy(params url.Values, batch []byte) (GroupByResult, error) {
	u := c.v1() + "/ingest/groupby"
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	var out GroupByResult
	err := c.post(u, "text/plain", batch, &out)
	return out, err
}

// OverlapResult is the audience-overlap estimate between two of the
// tenant's cardinality sketches (GET /v1/overlap?sketches=a,b).
type OverlapResult struct {
	Tenant   string   `json:"tenant"`
	Sketches []string `json:"sketches"`
	Overlap  struct {
		Family  string  `json:"family"`
		ReachA  float64 `json:"reach_a"`
		ReachB  float64 `json:"reach_b"`
		Union   float64 `json:"union"`
		Overlap float64 `json:"overlap"`
	} `json:"overlap"`
}

// Overlap estimates |a ∩ b| by inclusion-exclusion across two
// same-family cardinality sketches.
func (c *Client) Overlap(a, b string) (OverlapResult, error) {
	q := url.Values{"sketches": []string{a + "," + b}}
	var out OverlapResult
	err := c.get(c.v1()+"/overlap?"+q.Encode(), &out)
	return out, err
}

// Types fetches the server's sketch type catalog (GET /v1/types):
// every servable family with its parameter schema and ingest format.
func (c *Client) Types() ([]server.TypeInfo, error) {
	var out struct {
		Types []server.TypeInfo `json:"types"`
	}
	if err := c.get(c.base+"/v1/types", &out); err != nil {
		return nil, err
	}
	return out.Types, nil
}

// Status fetches GET /v1/status: uptime, op counters, and the
// durability gauges (WAL LSN, last snapshot LSN, WAL bytes, fsync
// age; Durability.Enabled is false on an in-memory-only server).
func (c *Client) Status() (server.StatusResponse, error) {
	var out server.StatusResponse
	err := c.get(c.base+"/v1/status", &out)
	return out, err
}

// Statsz fetches the server's operation counters.
func (c *Client) Statsz() (server.Statsz, error) {
	var out server.Statsz
	err := c.get(c.base+"/debug/statsz", &out)
	return out, err
}

// CreateRaw registers a named sketch from a pre-encoded JSON
// CreateRequest body — the coordinator's broadcast path, which
// forwards the client's body verbatim instead of re-marshaling it.
func (c *Client) CreateRaw(name string, body []byte) error {
	return c.post(c.url(name, ""), "application/json", body, nil)
}

// ReplStatus polls the leader's replication manifest (sealed WAL
// segments + current snapshot), reporting this follower's applied LSN
// so the leader can surface its replication lag.
func (c *Client) ReplStatus(applied uint64) (durable.ShippableState, error) {
	var out durable.ShippableState
	err := c.get(c.base+"/v1/repl/status?applied="+strconv.FormatUint(applied, 10), &out)
	return out, err
}

// ReplFile fetches one shippable file (sealed WAL segment or snapshot)
// by its manifest name.
func (c *Client) ReplFile(name string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/repl/file/" + url.PathEscape(name))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, data)
	}
	return data, nil
}

// ReplSeal asks the leader to rotate its active WAL segment so every
// record appended so far becomes shippable — the freshness knob a
// polling follower turns before each sync round.
func (c *Client) ReplSeal() error {
	return c.post(c.base+"/v1/repl/seal", "application/json", nil, nil)
}

// v1 returns the client's API prefix: "/v1" unscoped, or the
// tenant-scoped "/v1/t/{tenant}".
func (c *Client) v1() string {
	if c.tenant == "" {
		return c.base + "/v1"
	}
	return c.base + "/v1/t/" + url.PathEscape(c.tenant)
}

func (c *Client) url(name, op string) string {
	u := c.v1() + "/sketch/" + url.PathEscape(name)
	if op != "" {
		u += "/" + op
	}
	return u
}

func (c *Client) get(u string, out any) error {
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(resp, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *Client) post(u, contentType string, body []byte, out any) error {
	resp, err := c.hc.Post(u, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if out == nil {
		return drainStatus(resp)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return statusError(resp, data)
	}
	return json.Unmarshal(data, out)
}

// drainStatus consumes the body (required to reuse the keep-alive
// connection) and converts non-2xx statuses to errors.
func drainStatus(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return statusError(resp, data)
}

// StatusError is a non-2xx server response, carrying the HTTP status
// so callers can distinguish permanent request errors (4xx) from
// retryable server-side failures (5xx) — the coordinator's ingest
// fan-out retries only the latter — and the parsed Retry-After so a
// budget- or rate-limited caller (429) backs off for the window the
// server named instead of hammering an exhausted bucket.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration // parsed Retry-After header; 0 when absent
}

func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: HTTP %d (retry after %s): %s", e.Code, e.RetryAfter, e.Msg)
	}
	return fmt.Sprintf("client: HTTP %d: %s", e.Code, e.Msg)
}

func statusError(resp *http.Response, body []byte) error {
	se := &StatusError{Code: resp.StatusCode, RetryAfter: retryAfter(resp)}
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		se.Msg = doc.Error
	} else {
		se.Msg = string(bytes.TrimSpace(body))
	}
	return se
}

// retryAfter parses the delay-seconds form of Retry-After (the form
// sketchd emits). The HTTP-date form is not used by this system and
// parses to 0.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
