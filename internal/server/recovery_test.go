package server

// Crash-recovery tests: a sketchd with durability enabled is killed
// without ceremony (no final snapshot, syncer stopped cold) and a
// fresh server over the same data directory must serve every sketch
// with byte-identical snapshots — across one family per capability
// group, through snapshot+WAL-tail recovery, torn tails, bit flips,
// and delete/recreate sequences.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/durable"
)

// recoveryFamilies covers one servable family per capability group,
// with a family-appropriate batch per ingest round.
var recoveryFamilies = []struct {
	typ   string // registry name
	batch func(round int) string
}{
	{"hll", func(r int) string { return fmt.Sprintf("user-%d-a\nuser-%d-b\nuser-%d-c", r, r, r) }}, // cardinality
	{"countmin", func(r int) string { return fmt.Sprintf("hot\t3\ncold-%d", r) }},                  // frequency
	{"bloom", func(r int) string { return fmt.Sprintf("member-%d\nmember-%d-x", r, r) }},           // membership
	{"kll", func(r int) string { return fmt.Sprintf("%d.5\n%d.25", r, r+10) }},                     // quantile
	{"reservoir", func(r int) string { return fmt.Sprintf("sample-%d\nsample-%d-y", r, r) }},       // sample
	{"theta", func(r int) string { return fmt.Sprintf("theta-%d-a\ntheta-%d-b", r, r) }},           // cardinality, set algebra
	{"spacesaving", func(r int) string { return fmt.Sprintf("heavy\t5\nlight-%d", r) }},            // frequency, heavy hitters
	{"sfsketch", func(r int) string { return fmt.Sprintf("hot\t4\nwarm-%d\t2\ncool-%d", r, r) }},   // frequency, two-stage wire form
}

func durableServer(t *testing.T, dir string, opts durable.Options) (*Server, *httptest.Server, durable.RecoveryStats) {
	t.Helper()
	s := New()
	stats, err := s.EnableDurability(dir, opts)
	if err != nil {
		t.Fatalf("EnableDurability(%s): %v", dir, err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, stats
}

func httpDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func mustDo(t *testing.T, method, url, body string) []byte {
	t.Helper()
	code, data := httpDo(t, method, url, body)
	if code/100 != 2 {
		t.Fatalf("%s %s: HTTP %d: %s", method, url, code, data)
	}
	return data
}

// snapshotAll fetches every recovery family's serialized envelope and
// summary query document.
func snapshotAll(t *testing.T, base string) (snaps map[string][]byte, queries map[string][]byte) {
	t.Helper()
	snaps, queries = map[string][]byte{}, map[string][]byte{}
	for _, f := range recoveryFamilies {
		snaps[f.typ] = mustDo(t, "GET", base+"/v1/sketch/dur-"+f.typ+"/snapshot", "")
		queries[f.typ] = mustDo(t, "GET", base+"/v1/sketch/dur-"+f.typ+"/query", "")
	}
	return snaps, queries
}

func TestCrashRecoveryAcrossFamilies(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})

	for _, f := range recoveryFamilies {
		mustDo(t, "POST", ts1.URL+"/v1/sketch/dur-"+f.typ, fmt.Sprintf(`{"type":%q}`, f.typ))
		mustDo(t, "POST", ts1.URL+"/v1/sketch/dur-"+f.typ+"/add", f.batch(0))
	}
	// Snapshot mid-stream so recovery exercises snapshot + WAL tail,
	// not the WAL alone.
	if err := s1.dur.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	for round := 1; round <= 3; round++ {
		for _, f := range recoveryFamilies {
			mustDo(t, "POST", ts1.URL+"/v1/sketch/dur-"+f.typ+"/add", f.batch(round))
		}
	}
	wantSnaps, wantQueries := snapshotAll(t, ts1.URL)

	// Unclean stop: barrier the WAL to disk, then kill the syncer cold
	// (no drain, no final snapshot) and abandon the server.
	if err := s1.dur.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	ts1.Close()
	s1.dur.Kill()

	s2, ts2, stats := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats.SketchesLoaded != len(recoveryFamilies) {
		t.Fatalf("recovered %d sketches from snapshot, want %d (stats %+v)",
			stats.SketchesLoaded, len(recoveryFamilies), stats)
	}
	if stats.RecordsReplayed != 3*len(recoveryFamilies) {
		t.Fatalf("replayed %d WAL records, want %d (stats %+v)",
			stats.RecordsReplayed, 3*len(recoveryFamilies), stats)
	}
	gotSnaps, gotQueries := snapshotAll(t, ts2.URL)
	for _, f := range recoveryFamilies {
		if !bytes.Equal(gotSnaps[f.typ], wantSnaps[f.typ]) {
			t.Errorf("%s: recovered snapshot differs (%d bytes vs %d)",
				f.typ, len(gotSnaps[f.typ]), len(wantSnaps[f.typ]))
		}
		if !bytes.Equal(gotQueries[f.typ], wantQueries[f.typ]) {
			t.Errorf("%s: recovered query differs:\n  got  %s\n  want %s",
				f.typ, gotQueries[f.typ], wantQueries[f.typ])
		}
	}

	// The recovered server keeps working: new ingest, then a clean
	// shutdown whose final snapshot alone must carry the state.
	for _, f := range recoveryFamilies {
		mustDo(t, "POST", ts2.URL+"/v1/sketch/dur-"+f.typ+"/add", f.batch(4))
	}
	wantSnaps, _ = snapshotAll(t, ts2.URL)
	ts2.Close()
	if err := s2.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability: %v", err)
	}

	_, ts3, stats3 := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats3.RecordsReplayed != 0 {
		t.Fatalf("after clean shutdown, replayed %d records, want 0 (final snapshot covers all)",
			stats3.RecordsReplayed)
	}
	gotSnaps, _ = snapshotAll(t, ts3.URL)
	for _, f := range recoveryFamilies {
		if !bytes.Equal(gotSnaps[f.typ], wantSnaps[f.typ]) {
			t.Errorf("%s: post-clean-shutdown snapshot differs", f.typ)
		}
	}
}

// activeWAL returns the newest WAL segment in dir.
func activeWAL(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(matches)
	return matches[len(matches)-1]
}

// countAfterDamage ingests `batches` single-item batches of "x" into a
// countmin, kills the server, applies damage to the WAL file, recovers,
// and returns the recovered count of "x".
func countAfterDamage(t *testing.T, batches int, damage func(path string, data []byte)) uint64 {
	t.Helper()
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	mustDo(t, "POST", ts1.URL+"/v1/sketch/cm", `{"type":"countmin"}`)
	for i := 0; i < batches; i++ {
		mustDo(t, "POST", ts1.URL+"/v1/sketch/cm/add", "x")
	}
	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	path := activeWAL(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage(path, data)

	_, ts2, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	var doc struct {
		Estimate uint64 `json:"estimate"`
	}
	if err := json.Unmarshal(mustDo(t, "GET", ts2.URL+"/v1/sketch/cm/query?item=x", ""), &doc); err != nil {
		t.Fatal(err)
	}
	return doc.Estimate
}

// ingestRecordLen is the on-wire size of one "x"-batch ingest record
// for the sketch named "cm" in the default tenant: framing (8) +
// lsn (8) + op (1) + name (4+2) + tenant (4+0, default is empty) +
// body (4+1).
const ingestRecordLen = 8 + 8 + 1 + 4 + 2 + 4 + 0 + 4 + 1

func TestRecoveryTornTail(t *testing.T) {
	// Torn mid-record write: the file ends 4 bytes short of the last
	// record. Recovery must serve everything up to the tear.
	got := countAfterDamage(t, 5, func(path string, data []byte) {
		if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if got != 4 {
		t.Fatalf("after torn tail: count(x) = %d, want 4", got)
	}

	// Trailing garbage after the last record: nothing valid is lost.
	got = countAfterDamage(t, 5, func(path string, data []byte) {
		if err := os.WriteFile(path, append(data, "partial-write-garbage"...), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if got != 5 {
		t.Fatalf("after trailing garbage: count(x) = %d, want 5", got)
	}
}

func TestRecoveryBitFlip(t *testing.T) {
	flipAt := func(back int) func(string, []byte) {
		return func(path string, data []byte) {
			data[len(data)-back] ^= 0x08
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Flip inside the last record: recovery stops one record short.
	if got := countAfterDamage(t, 5, flipAt(1)); got != 4 {
		t.Fatalf("bit flip in last record: count(x) = %d, want 4", got)
	}
	// Flip inside the second-to-last record: everything from the flip
	// on is untrusted — recover to the last valid LSN, not past it.
	if got := countAfterDamage(t, 5, flipAt(ingestRecordLen+1)); got != 3 {
		t.Fatalf("bit flip in second-to-last record: count(x) = %d, want 3", got)
	}
}

func TestRecoveryDeleteRecreate(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	mustDo(t, "POST", ts1.URL+"/v1/sketch/a", `{"type":"hll"}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/a/add", "one\ntwo\nthree")
	mustDo(t, "DELETE", ts1.URL+"/v1/sketch/a", "")
	mustDo(t, "POST", ts1.URL+"/v1/sketch/a", `{"type":"countmin"}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/a/add", "x\t7")
	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	_, ts2, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	var doc struct {
		Estimate uint64 `json:"estimate"`
	}
	if err := json.Unmarshal(mustDo(t, "GET", ts2.URL+"/v1/sketch/a/query?item=x", ""), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Estimate != 7 {
		t.Fatalf("recreated sketch: count(x) = %d, want 7", doc.Estimate)
	}
	var listDoc struct {
		Sketches []struct {
			Name, Type string
		} `json:"sketches"`
	}
	if err := json.Unmarshal(mustDo(t, "GET", ts2.URL+"/v1/sketch", ""), &listDoc); err != nil {
		t.Fatal(err)
	}
	if len(listDoc.Sketches) != 1 || listDoc.Sketches[0].Type != "countmin" {
		t.Fatalf("recovered namespace %+v, want exactly one countmin", listDoc.Sketches)
	}
}

func TestRecoveryMergeRecord(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	mustDo(t, "POST", ts1.URL+"/v1/sketch/m", `{"type":"hll"}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/m/add", "a\nb")
	mustDo(t, "POST", ts1.URL+"/v1/sketch/peer", `{"type":"hll"}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/peer/add", "c\nd\ne")
	peer := mustDo(t, "GET", ts1.URL+"/v1/sketch/peer/snapshot", "")
	mustDo(t, "POST", ts1.URL+"/v1/sketch/m/merge", string(peer))
	want := mustDo(t, "GET", ts1.URL+"/v1/sketch/m/snapshot", "")
	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	_, ts2, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	got := mustDo(t, "GET", ts2.URL+"/v1/sketch/m/snapshot", "")
	if !bytes.Equal(got, want) {
		t.Fatal("merge record not replayed to byte-identical state")
	}
}

func TestStatusDurabilityFields(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	mustDo(t, "POST", ts1.URL+"/v1/sketch/st", `{"type":"hll"}`)
	mustDo(t, "POST", ts1.URL+"/v1/sketch/st/add", "a\nb\nc")
	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	var doc StatusResponse
	if err := json.Unmarshal(mustDo(t, "GET", ts1.URL+"/v1/status", ""), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Durability.Enabled {
		t.Fatal("durability.enabled = false on a durable server")
	}
	if doc.Durability.WALLSN != 2 {
		t.Fatalf("wal_lsn = %d, want 2 (create + one batch)", doc.Durability.WALLSN)
	}
	if doc.Durability.WALBytes <= 0 || doc.Durability.LastFsyncAgeMS < 0 || doc.Sketches != 1 {
		t.Fatalf("status %+v: want positive wal_bytes, non-negative fsync age, 1 sketch", doc)
	}
	if err := s1.dur.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustDo(t, "GET", ts1.URL+"/v1/status", ""), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Durability.LastSnapshotLSN != 2 {
		t.Fatalf("last_snapshot_lsn = %d, want 2", doc.Durability.LastSnapshotLSN)
	}

	// In-memory server: the block reports disabled.
	ts2 := httptest.NewServer(New().Handler())
	defer ts2.Close()
	if err := json.Unmarshal(mustDo(t, "GET", ts2.URL+"/v1/status", ""), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Durability.Enabled {
		t.Fatal("durability.enabled = true on an in-memory server")
	}
}
