// Package server implements sketchd, the HTTP serving layer over the
// sketch library: a namespace registry of named sketches with
// endpoints for streaming ingest (newline-delimited batches), point
// and estimate queries, mergeable-summary exchange (the peer posts a
// MarshalBinary envelope, per the Mergeable Summaries model the paper
// builds on), and serialization out. Hot sketch types ride the
// wrappers in internal/concurrent — the sharded HLL and the lock-free
// Count-Min — so ingest throughput scales with client concurrency;
// everything else serializes behind a per-entry mutex with per-batch
// locking.
//
// Routes (Go 1.22 pattern syntax):
//
//	POST   /v1/sketch/{name}           create (JSON CreateRequest body)
//	POST   /v1/sketch/{name}/add       ingest newline-delimited items
//	GET    /v1/sketch/{name}/query     type-specific read (see Entry.Query)
//	POST   /v1/sketch/{name}/merge     absorb a peer MarshalBinary envelope
//	                                   (or a GSKB bundle of same-type
//	                                   envelopes, tree-merged in parallel
//	                                   before absorption — see bundle.go)
//	GET    /v1/sketch/{name}/snapshot  serialize out (octet-stream)
//	DELETE /v1/sketch/{name}           drop the sketch
//	GET    /v1/sketch                  list sketches (?prefix= ?limit= ?cursor=)
//	GET    /v1/types                   servable types + parameter schemas
//	GET    /debug/statsz               operation counters and per-sketch bytes
//
// Every sketch lives in a tenant namespace (tenant.go): the routes
// above address the "default" tenant, and each /v1/sketch... route has
// a tenant-scoped twin under /v1/t/{tenant}/sketch... (equivalently,
// the X-Sketch-Tenant header scopes the legacy URLs). Tenant-only
// surfaces:
//
//	POST /v1/t/{tenant}/ingest/groupby  fan one stream into per-group
//	                                    sketches in one WAL-batched call
//	GET  /v1/t/{tenant}/overlap         audience overlap across two
//	                                    cardinality sketches (adtech)
//
// Every sketch family is described by a registry descriptor
// (internal/registry); the handlers and Entry are fully generic over
// descriptors, so the supported-type set is exactly the registry's
// servable set and capability gaps surface as precise statuses: 405
// for merge on a non-mergeable family, 409 for incompatible merges,
// 400 for malformed input.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	typereg "repro/internal/registry"
)

// maxBodyBytes bounds any request body; a batch or envelope larger
// than this is rejected with 413 before it can balloon memory.
const maxBodyBytes = 8 << 20

// Server is the sketchd HTTP server. Create with New and mount
// Handler on any net/http server.
type Server struct {
	tmu     sync.RWMutex
	tenants map[string]*tenantState
	quota   TenantQuota
	qb      QueryBudget

	// saltSeeds derives per-(tenant,name) seeds for seedless creates
	// (see salt.go). Set before serving; default off keeps seed 1.
	saltSeeds bool

	ops       core.OpCounters
	wire      map[string]*wireCounters // per-family snapshot wire bytes
	start     time.Time
	bufPool   sync.Pool // *[]byte request-body buffers
	itemsPool sync.Pool // *[][]byte split-batch item headers
	mux       *http.ServeMux

	reaperStop chan struct{}
	reaperWG   sync.WaitGroup

	// dur, when non-nil, logs every mutation to the write-ahead log
	// (see EnableDurability). nil keeps the original in-memory-only
	// behavior and the allocation-free ingest fast path.
	dur *durable.Manager

	// repl tracks replication state: follower polls seen by a leader,
	// or the self-report a follower's replica loop installs.
	repl replState
}

// New creates an empty server.
func New() *Server {
	s := &Server{
		tenants: map[string]*tenantState{DefaultTenant: newTenantState(DefaultTenant)},
		wire:    newWireCounters(),
		start:   time.Now(),
	}
	s.bufPool.New = func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	}
	s.itemsPool.New = func() any {
		items := make([][]byte, 0, 1024)
		return &items
	}
	s.mux = http.NewServeMux()
	// Legacy (default-tenant) routes and their /v1/t/{tenant}/ twins
	// share handlers; tenantOf picks the namespace per request.
	for _, prefix := range []string{"/v1", "/v1/t/{tenant}"} {
		s.mux.HandleFunc("POST "+prefix+"/sketch/{name}", s.handleCreate)
		s.mux.HandleFunc("POST "+prefix+"/sketch/{name}/add", s.handleAdd)
		s.mux.HandleFunc("GET "+prefix+"/sketch/{name}/query", s.handleQuery)
		s.mux.HandleFunc("POST "+prefix+"/sketch/{name}/merge", s.handleMerge)
		s.mux.HandleFunc("GET "+prefix+"/sketch/{name}/snapshot", s.handleSnapshot)
		s.mux.HandleFunc("DELETE "+prefix+"/sketch/{name}", s.handleDelete)
		s.mux.HandleFunc("GET "+prefix+"/sketch", s.handleList)
		s.mux.HandleFunc("POST "+prefix+"/ingest/groupby", s.handleGroupBy)
		s.mux.HandleFunc("GET "+prefix+"/overlap", s.handleOverlap)
	}
	s.mux.HandleFunc("GET /v1/types", s.handleTypes)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /v1/repl/file/{name}", s.handleReplFile)
	s.mux.HandleFunc("POST /v1/repl/seal", s.handleReplSeal)
	s.mux.HandleFunc("GET /debug/statsz", s.handleStatsz)
	return s
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Ops exposes the operation counters (read-only use).
func (s *Server) Ops() *core.OpCounters { return &s.ops }

// readBody drains the request body into a pooled buffer. The returned
// release func recycles the buffer; the body slice must not be
// retained past it.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, release func(), ok bool) {
	bp := s.bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	limited := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := limited.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			s.bufPool.Put(bp)
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, "body over %d bytes", maxBodyBytes)
			} else {
				httpError(w, http.StatusBadRequest, "reading body: %v", err)
			}
			return nil, nil, false
		}
	}
	*bp = buf
	return buf, func() { s.bufPool.Put(bp) }, true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if !validTenantName(tenant) {
		httpError(w, http.StatusBadRequest, "invalid tenant name %q", tenant)
		return
	}
	name := r.PathValue("name")
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	var req CreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "create body: %v", err)
		return
	}
	// Stamp derived fields before the request is WAL-logged, so
	// recovery reconstructs the same state: the creation time (TTL
	// deadline) and, under -salt-seeds, the per-(tenant,name) seed.
	stamp := s.applySaltSeed(tenant, name, &req)
	if req.TTLSeconds > 0 && req.CreatedUnix == 0 {
		req.CreatedUnix = time.Now().Unix()
		stamp = true
	}
	if stamp {
		stamped, err := json.Marshal(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "create body: %v", err)
			return
		}
		body = stamped
	}
	entry, err := NewEntry(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ts := s.tenantOrCreate(tenant)
	if err := s.admitCreate(ts, 1); err != nil {
		entry.Close()
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	ne := &namedEntry{name: name, entry: entry, expiresAt: req.expiryUnix()}
	if err := ts.install(ne); err != nil {
		entry.Close()
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if s.dur != nil {
		ne.walMu.Lock()
		ne.lastLSN = s.dur.Append(durable.OpCreate, ts.walName, name, body)
		ne.walMu.Unlock()
	}
	writeJSON(w, http.StatusCreated, map[string]any{"tenant": tenant, "name": name, "type": entry.Type()})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	ts, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if s.overByteQuota(ts) {
		httpError(w, http.StatusTooManyRequests, "tenant %q over resident-byte quota", ts.name)
		return
	}
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	// Split zero-copy into a pooled header slice: the item slices alias
	// the pooled body buffer, and entries are contractually forbidden
	// from retaining either, so both recycle at the end of the request.
	ip := s.itemsPool.Get().(*[][]byte)
	items := SplitBatchAppend((*ip)[:0], body)
	defer func() {
		clear(items) // drop aliases into the body buffer before pooling
		*ip = items[:0]
		s.itemsPool.Put(ip)
	}()
	// Durable path: apply + WAL append + LSN bookkeeping are atomic
	// under the per-sketch WAL lock so a concurrent snapshot capture
	// sees bytes consistent with the recorded LSN. The append itself
	// only copies the batch into the bounded queue; disk I/O and fsync
	// happen on the background syncer, off this path.
	if s.dur != nil {
		e.walMu.Lock()
		err := e.entry.Add(items)
		if err == nil {
			e.lastLSN = s.dur.Append(durable.OpIngest, ts.walName, e.name, body)
		}
		e.walMu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else if err := e.entry.Add(items); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e.adds.Add(uint64(len(items)))
	ts.adds.Add(uint64(len(items)))
	s.ops.Adds.Add(uint64(len(items)))
	s.ops.AddBatches.Inc()
	s.ops.BatchBytes.Add(uint64(len(body)))
	writeJSON(w, http.StatusOK, map[string]any{"added": len(items)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ts, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !s.guardRead(w, ts, e) {
		return
	}
	res, err := e.entry.Query(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ts.queries.Inc()
	s.ops.Queries.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	ts, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	if IsBundle(body) {
		// Fan-in: decode and tree-merge the bundle across cores while
		// holding no locks, then absorb the single combined envelope
		// below — one lock acquisition and one WAL record for N shards.
		combined, err := CombineBundle(body)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, core.ErrIncompatible):
				status = http.StatusConflict
			case errors.Is(err, ErrUnsupported):
				status = http.StatusMethodNotAllowed
			}
			httpError(w, status, "%v", err)
			return
		}
		body = combined
	}
	var err error
	if s.dur != nil {
		e.walMu.Lock()
		err = e.entry.Merge(body)
		if err == nil {
			e.lastLSN = s.dur.Append(durable.OpMerge, ts.walName, e.name, body)
		}
		e.walMu.Unlock()
	} else {
		err = e.entry.Merge(body)
	}
	if err != nil {
		// Incompatible shapes are a semantic conflict; a non-mergeable
		// family is a capability gap; corrupt bytes are a malformed
		// request.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, core.ErrIncompatible):
			status = http.StatusConflict
		case errors.Is(err, ErrUnsupported):
			status = http.StatusMethodNotAllowed
		}
		httpError(w, status, "%v", err)
		return
	}
	ts.merges.Inc()
	s.ops.Merges.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"merged": true})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	ts, e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	// A snapshot reveals strictly more than an estimate (the attacker
	// can evaluate the state offline, unmetered), so it draws from the
	// same read budget as /query. Replication ships WAL segments over
	// /v1/repl/* and the durability snapshotter runs in-process —
	// neither touches this guard.
	if !s.guardRead(w, ts, e) {
		return
	}
	// ?wire=slim asks for the family's slim envelope (the wire-efficient
	// form, registry.SlimMarshaler); families without one serve the full
	// envelope, so the parameter is a safe hint on any type.
	wire := r.URL.Query().Get("wire")
	if wire != "" && wire != "full" && wire != "slim" {
		httpError(w, http.StatusBadRequest, "bad wire mode %q (want full or slim)", wire)
		return
	}
	data, slim, err := e.entry.SnapshotWire(wire == "slim")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.ops.Snapshots.Inc()
	s.countWire(e.entry.Type(), slim, len(data))
	w.Header().Set("Content-Type", "application/octet-stream")
	if slim {
		w.Header().Set("X-Sketch-Wire", "slim")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ts := s.tenant(tenantOf(r))
	var ne *namedEntry
	if ts != nil {
		ne = ts.drop(name)
	}
	if ne == nil {
		httpError(w, http.StatusNotFound, "no such sketch %q", name)
		return
	}
	ne.entry.Close()
	if s.dur != nil {
		s.dur.Append(durable.OpDelete, ts.walName, name, nil)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// listDefaultLimit bounds GET /v1/sketch replies when the caller sets
// no ?limit= — a million-sketch tenant pages instead of serializing
// everything in one response. Follow next_cursor to continue.
const listDefaultLimit = 1000

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := listDefaultLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	out := []map[string]any{}
	var page []*namedEntry
	var more bool
	if ts := s.tenant(tenantOf(r)); ts != nil {
		page, more = ts.reg.list(q.Get("prefix"), q.Get("cursor"), limit)
	}
	for _, e := range page {
		out = append(out, map[string]any{"name": e.name, "type": e.entry.Type()})
	}
	doc := map[string]any{"sketches": out}
	if more {
		doc["truncated"] = true
		doc["next_cursor"] = page[len(page)-1].name
	}
	writeJSON(w, http.StatusOK, doc)
}

// TypeParam is one parameter row of a /v1/types schema.
type TypeParam struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Float   bool    `json:"float,omitempty"`
}

// TypeInfo is one servable sketch family on /v1/types.
type TypeInfo struct {
	Name      string      `json:"name"`
	Family    string      `json:"family"`
	Doc       string      `json:"doc"`
	Tag       byte        `json:"tag"`
	Input     string      `json:"input"`
	Mergeable bool        `json:"mergeable"`
	Params    []TypeParam `json:"params"`
}

func (s *Server) handleTypes(w http.ResponseWriter, _ *http.Request) {
	var out []TypeInfo
	for _, d := range typereg.All() {
		if !d.Servable() {
			continue
		}
		params := make([]TypeParam, len(d.Params))
		for i, p := range d.Params {
			params[i] = TypeParam{Name: p.Name, Doc: p.Doc, Default: p.Def, Min: p.Min, Max: p.Max, Float: p.Float}
		}
		out = append(out, TypeInfo{
			Name:      d.Name,
			Family:    d.Family,
			Doc:       d.Doc,
			Tag:       d.Tag,
			Input:     d.Input.String(),
			Mergeable: d.Mergeable(),
			Params:    params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"types": out})
}

// StatusResponse is the GET /v1/status document: liveness plus the
// durability gauges (wal_lsn, last_snapshot_lsn, wal_bytes,
// last_fsync_age_ms; enabled=false when running in-memory only) and
// the replication block (leader lag in records once a follower has
// polled, or a follower's own apply frontier).
type StatusResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Sketches      int               `json:"sketches"`
	Ops           core.OpSnapshot   `json:"ops"`
	Wire          []WireStat        `json:"wire,omitempty"`
	Tenants       []TenantStat      `json:"tenants"`
	Durability    durable.Status    `json:"durability"`
	Replication   ReplicationStatus `json:"replication"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	tenants := s.tenantsSnapshot()
	stats := make([]TenantStat, 0, len(tenants))
	total := 0
	for _, ts := range tenants {
		st := ts.stat()
		total += int(st.Sketches)
		stats = append(stats, st)
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sketches:      total,
		Ops:           s.ops.Snapshot(),
		Wire:          s.wireStats(),
		Tenants:       stats,
		Durability:    s.DurabilityStatus(),
		Replication:   s.ReplicationStatus(),
	})
}

// SketchStat is one sketch's row on /debug/statsz.
type SketchStat struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name"`
	Type   string `json:"type"`
	Bytes  int    `json:"bytes"`
	Adds   uint64 `json:"adds"`
}

// Statsz is the /debug/statsz response document.
type Statsz struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	AddsPerSec    float64         `json:"adds_per_sec"`
	Ops           core.OpSnapshot `json:"ops"`
	Wire          []WireStat      `json:"wire,omitempty"`
	Tenants       []TenantStat    `json:"tenants"`
	Sketches      []SketchStat    `json:"sketches"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	uptime := time.Since(s.start).Seconds()
	ops := s.ops.Snapshot()
	stats := Statsz{
		UptimeSeconds: uptime,
		Ops:           ops,
		Wire:          s.wireStats(),
		Sketches:      []SketchStat{},
	}
	if uptime > 0 {
		stats.AddsPerSec = float64(ops.Adds) / uptime
	}
	for _, ts := range s.tenantsSnapshot() {
		ts.refreshResident() // statsz reads double as gauge refresh
		stats.Tenants = append(stats.Tenants, ts.stat())
		tenantLabel := ""
		if ts.name != DefaultTenant {
			tenantLabel = ts.name
		}
		for _, e := range ts.reg.snapshot() {
			stats.Sketches = append(stats.Sketches, SketchStat{
				Tenant: tenantLabel,
				Name:   e.name,
				Type:   e.entry.Type(),
				Bytes:  int(e.bytes.Load()),
				Adds:   e.adds.Load(),
			})
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*tenantState, *namedEntry, bool) {
	ts := s.tenant(tenantOf(r))
	if ts == nil {
		httpError(w, http.StatusNotFound, "%v: %q", ErrNotFound, r.PathValue("name"))
		return nil, nil, false
	}
	e, err := ts.reg.get(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, nil, false
	}
	return ts, e, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
