// Package server implements sketchd, the HTTP serving layer over the
// sketch library: a namespace registry of named sketches with
// endpoints for streaming ingest (newline-delimited batches), point
// and estimate queries, mergeable-summary exchange (the peer posts a
// MarshalBinary envelope, per the Mergeable Summaries model the paper
// builds on), and serialization out. Hot sketch types ride the
// wrappers in internal/concurrent — the sharded HLL and the lock-free
// Count-Min — so ingest throughput scales with client concurrency;
// everything else serializes behind a per-entry mutex with per-batch
// locking.
//
// Routes (Go 1.22 pattern syntax):
//
//	POST   /v1/sketch/{name}           create (JSON CreateRequest body)
//	POST   /v1/sketch/{name}/add       ingest newline-delimited items
//	GET    /v1/sketch/{name}/query     type-specific read (see Entry.Query)
//	POST   /v1/sketch/{name}/merge     absorb a peer MarshalBinary envelope
//	                                   (or a GSKB bundle of same-type
//	                                   envelopes, tree-merged in parallel
//	                                   before absorption — see bundle.go)
//	GET    /v1/sketch/{name}/snapshot  serialize out (octet-stream)
//	DELETE /v1/sketch/{name}           drop the sketch
//	GET    /v1/sketch                  list sketches
//	GET    /v1/types                   servable types + parameter schemas
//	GET    /debug/statsz               operation counters and per-sketch bytes
//
// Every sketch family is described by a registry descriptor
// (internal/registry); the handlers and Entry are fully generic over
// descriptors, so the supported-type set is exactly the registry's
// servable set and capability gaps surface as precise statuses: 405
// for merge on a non-mergeable family, 409 for incompatible merges,
// 400 for malformed input.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	typereg "repro/internal/registry"
)

// maxBodyBytes bounds any request body; a batch or envelope larger
// than this is rejected with 413 before it can balloon memory.
const maxBodyBytes = 8 << 20

// Server is the sketchd HTTP server. Create with New and mount
// Handler on any net/http server.
type Server struct {
	reg       *registry
	ops       core.OpCounters
	start     time.Time
	bufPool   sync.Pool // *[]byte request-body buffers
	itemsPool sync.Pool // *[][]byte split-batch item headers
	mux       *http.ServeMux

	// dur, when non-nil, logs every mutation to the write-ahead log
	// (see EnableDurability). nil keeps the original in-memory-only
	// behavior and the allocation-free ingest fast path.
	dur *durable.Manager

	// repl tracks replication state: follower polls seen by a leader,
	// or the self-report a follower's replica loop installs.
	repl replState
}

// New creates an empty server.
func New() *Server {
	s := &Server{
		reg:   newRegistry(),
		start: time.Now(),
	}
	s.bufPool.New = func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	}
	s.itemsPool.New = func() any {
		items := make([][]byte, 0, 1024)
		return &items
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sketch/{name}", s.handleCreate)
	s.mux.HandleFunc("POST /v1/sketch/{name}/add", s.handleAdd)
	s.mux.HandleFunc("GET /v1/sketch/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/sketch/{name}/merge", s.handleMerge)
	s.mux.HandleFunc("GET /v1/sketch/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("DELETE /v1/sketch/{name}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/sketch", s.handleList)
	s.mux.HandleFunc("GET /v1/types", s.handleTypes)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /v1/repl/file/{name}", s.handleReplFile)
	s.mux.HandleFunc("POST /v1/repl/seal", s.handleReplSeal)
	s.mux.HandleFunc("GET /debug/statsz", s.handleStatsz)
	return s
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Ops exposes the operation counters (read-only use).
func (s *Server) Ops() *core.OpCounters { return &s.ops }

// readBody drains the request body into a pooled buffer. The returned
// release func recycles the buffer; the body slice must not be
// retained past it.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, release func(), ok bool) {
	bp := s.bufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	limited := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := limited.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			s.bufPool.Put(bp)
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				httpError(w, http.StatusRequestEntityTooLarge, "body over %d bytes", maxBodyBytes)
			} else {
				httpError(w, http.StatusBadRequest, "reading body: %v", err)
			}
			return nil, nil, false
		}
	}
	*bp = buf
	return buf, func() { s.bufPool.Put(bp) }, true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	var req CreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "create body: %v", err)
		return
	}
	entry, err := NewEntry(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ne, err := s.reg.create(name, entry)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	if s.dur != nil {
		ne.walMu.Lock()
		ne.lastLSN = s.dur.Append(durable.OpCreate, name, body)
		ne.walMu.Unlock()
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "type": entry.Type()})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	// Split zero-copy into a pooled header slice: the item slices alias
	// the pooled body buffer, and entries are contractually forbidden
	// from retaining either, so both recycle at the end of the request.
	ip := s.itemsPool.Get().(*[][]byte)
	items := SplitBatchAppend((*ip)[:0], body)
	defer func() {
		clear(items) // drop aliases into the body buffer before pooling
		*ip = items[:0]
		s.itemsPool.Put(ip)
	}()
	// Durable path: apply + WAL append + LSN bookkeeping are atomic
	// under the per-sketch WAL lock so a concurrent snapshot capture
	// sees bytes consistent with the recorded LSN. The append itself
	// only copies the batch into the bounded queue; disk I/O and fsync
	// happen on the background syncer, off this path.
	if s.dur != nil {
		e.walMu.Lock()
		err := e.entry.Add(items)
		if err == nil {
			e.lastLSN = s.dur.Append(durable.OpIngest, e.name, body)
		}
		e.walMu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else if err := e.entry.Add(items); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e.adds.Add(uint64(len(items)))
	s.ops.Adds.Add(uint64(len(items)))
	s.ops.AddBatches.Inc()
	s.ops.BatchBytes.Add(uint64(len(body)))
	writeJSON(w, http.StatusOK, map[string]any{"added": len(items)})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	res, err := e.entry.Query(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.ops.Queries.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	if IsBundle(body) {
		// Fan-in: decode and tree-merge the bundle across cores while
		// holding no locks, then absorb the single combined envelope
		// below — one lock acquisition and one WAL record for N shards.
		combined, err := CombineBundle(body)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, core.ErrIncompatible):
				status = http.StatusConflict
			case errors.Is(err, ErrUnsupported):
				status = http.StatusMethodNotAllowed
			}
			httpError(w, status, "%v", err)
			return
		}
		body = combined
	}
	var err error
	if s.dur != nil {
		e.walMu.Lock()
		err = e.entry.Merge(body)
		if err == nil {
			e.lastLSN = s.dur.Append(durable.OpMerge, e.name, body)
		}
		e.walMu.Unlock()
	} else {
		err = e.entry.Merge(body)
	}
	if err != nil {
		// Incompatible shapes are a semantic conflict; a non-mergeable
		// family is a capability gap; corrupt bytes are a malformed
		// request.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, core.ErrIncompatible):
			status = http.StatusConflict
		case errors.Is(err, ErrUnsupported):
			status = http.StatusMethodNotAllowed
		}
		httpError(w, status, "%v", err)
		return
	}
	s.ops.Merges.Inc()
	writeJSON(w, http.StatusOK, map[string]any{"merged": true})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, err := e.entry.Snapshot()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.ops.Snapshots.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ne := s.reg.remove(name)
	if ne == nil {
		httpError(w, http.StatusNotFound, "no such sketch %q", name)
		return
	}
	ne.entry.Close()
	if s.dur != nil {
		s.dur.Append(durable.OpDelete, name, nil)
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.snapshot()
	out := make([]map[string]any, 0, len(entries))
	for _, e := range entries {
		out = append(out, map[string]any{"name": e.name, "type": e.entry.Type()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketches": out})
}

// TypeParam is one parameter row of a /v1/types schema.
type TypeParam struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Float   bool    `json:"float,omitempty"`
}

// TypeInfo is one servable sketch family on /v1/types.
type TypeInfo struct {
	Name      string      `json:"name"`
	Family    string      `json:"family"`
	Doc       string      `json:"doc"`
	Tag       byte        `json:"tag"`
	Input     string      `json:"input"`
	Mergeable bool        `json:"mergeable"`
	Params    []TypeParam `json:"params"`
}

func (s *Server) handleTypes(w http.ResponseWriter, _ *http.Request) {
	var out []TypeInfo
	for _, d := range typereg.All() {
		if !d.Servable() {
			continue
		}
		params := make([]TypeParam, len(d.Params))
		for i, p := range d.Params {
			params[i] = TypeParam{Name: p.Name, Doc: p.Doc, Default: p.Def, Min: p.Min, Max: p.Max, Float: p.Float}
		}
		out = append(out, TypeInfo{
			Name:      d.Name,
			Family:    d.Family,
			Doc:       d.Doc,
			Tag:       d.Tag,
			Input:     d.Input.String(),
			Mergeable: d.Mergeable(),
			Params:    params,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"types": out})
}

// StatusResponse is the GET /v1/status document: liveness plus the
// durability gauges (wal_lsn, last_snapshot_lsn, wal_bytes,
// last_fsync_age_ms; enabled=false when running in-memory only) and
// the replication block (leader lag in records once a follower has
// polled, or a follower's own apply frontier).
type StatusResponse struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Sketches      int               `json:"sketches"`
	Ops           core.OpSnapshot   `json:"ops"`
	Durability    durable.Status    `json:"durability"`
	Replication   ReplicationStatus `json:"replication"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sketches:      len(s.reg.snapshot()),
		Ops:           s.ops.Snapshot(),
		Durability:    s.DurabilityStatus(),
		Replication:   s.ReplicationStatus(),
	})
}

// SketchStat is one sketch's row on /debug/statsz.
type SketchStat struct {
	Name  string `json:"name"`
	Type  string `json:"type"`
	Bytes int    `json:"bytes"`
	Adds  uint64 `json:"adds"`
}

// Statsz is the /debug/statsz response document.
type Statsz struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	AddsPerSec    float64         `json:"adds_per_sec"`
	Ops           core.OpSnapshot `json:"ops"`
	Sketches      []SketchStat    `json:"sketches"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	uptime := time.Since(s.start).Seconds()
	ops := s.ops.Snapshot()
	stats := Statsz{
		UptimeSeconds: uptime,
		Ops:           ops,
		Sketches:      []SketchStat{},
	}
	if uptime > 0 {
		stats.AddsPerSec = float64(ops.Adds) / uptime
	}
	for _, e := range s.reg.snapshot() {
		stats.Sketches = append(stats.Sketches, SketchStat{
			Name:  e.name,
			Type:  e.entry.Type(),
			Bytes: e.entry.SizeBytes(),
			Adds:  e.adds.Load(),
		})
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*namedEntry, bool) {
	e, err := s.reg.get(r.PathValue("name"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return nil, false
	}
	return e, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{"error": fmt.Sprintf(format, args...)})
}
