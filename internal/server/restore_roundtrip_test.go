package server_test

// Restore round-trips across the whole catalog, and the client-visible
// durability status — the external halves of the crash-recovery suite
// (the kill-9 tests live in recovery_test.go inside the package, where
// the manager can be killed without a real process exit).

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/durable"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/server/client"
)

// splitLines breaks an ingest batch into its lines (Entry.Add's input
// form), preserving intra-line tabs that bytes.Fields would destroy.
func splitLines(batch string) [][]byte {
	var out [][]byte
	for _, line := range bytes.Split([]byte(batch), []byte("\n")) {
		if len(line) > 0 {
			out = append(out, line)
		}
	}
	return out
}

func newTestServerFor(t *testing.T, srv *server.Server) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL)
}

// TestRestoreEntryEveryServableFamily pins the recovery invariant for
// all servable types at once: NewEntry → ingest → Snapshot, then
// RestoreEntry from those bytes must reproduce the exact same
// serialization. This is the same code path snapshot recovery uses,
// so a family that breaks byte-identity fails here without needing a
// server or a crash.
func TestRestoreEntryEveryServableFamily(t *testing.T) {
	n := 0
	for _, d := range registry.All() {
		if !d.Servable() {
			continue
		}
		n++
		d := d
		t.Run(d.Name, func(t *testing.T) {
			req := server.CreateRequest{Type: d.Name}
			e, err := server.NewEntry(req)
			if err != nil {
				t.Fatalf("NewEntry: %v", err)
			}
			batch := batchFor(d.Input)
			if batch != "" {
				if err := e.Add(splitLines(batch)); err != nil {
					t.Fatalf("Add: %v", err)
				}
			}
			want, err := e.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			re, err := server.RestoreEntry(req, want)
			if err != nil {
				t.Fatalf("RestoreEntry: %v", err)
			}
			got, err := re.Snapshot()
			if err != nil {
				t.Fatalf("restored Snapshot: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("restore not byte-identical: %d bytes vs %d", len(got), len(want))
			}
		})
	}
	if n < 20 {
		t.Fatalf("only %d servable families exercised, expected the full catalog", n)
	}
}

// TestClientStatus drives GET /v1/status through the Go client against
// both a durable and an in-memory server.
func TestClientStatus(t *testing.T) {
	srv := server.New()
	if _, err := srv.EnableDurability(t.TempDir(), durable.Options{FsyncInterval: 0}); err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	ts, cl := newTestServerFor(t, srv)
	_ = ts
	if err := cl.Create("s", server.CreateRequest{Type: "hll"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add("s", []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !st.Durability.Enabled || st.Durability.WALLSN == 0 || st.Sketches != 1 {
		t.Fatalf("durable status %+v: want enabled, nonzero wal_lsn, 1 sketch", st)
	}
	if err := srv.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	_, cl2 := newTestServer(t)
	st2, err := cl2.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st2.Durability.Enabled {
		t.Fatalf("in-memory status %+v: durability should be disabled", st2)
	}
}
