package server

import "bytes"

// SplitBatch splits an ingest body into items: one item per line,
// tolerant of CRLF and of a missing trailing newline; empty lines are
// skipped. The returned slices alias data — callers hand them straight
// to Entry.Add, which must not retain them.
//
// This is the request decoder the fuzz smoke target exercises together
// with Entry.Merge: arbitrary bodies must split and ingest (or error)
// without panicking.
func SplitBatch(data []byte) [][]byte {
	return SplitBatchAppend(make([][]byte, 0, bytes.Count(data, []byte{'\n'})+1), data)
}

// SplitBatchAppend splits like SplitBatch but appends into dst, so the
// serving hot path can reuse a pooled [][]byte across requests instead
// of allocating a fresh header slice per batch. The item slices alias
// data; dst's previous contents must already be released.
func SplitBatchAppend(dst [][]byte, data []byte) [][]byte {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > 0 {
			dst = append(dst, line)
		}
	}
	return dst
}
