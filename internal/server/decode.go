package server

import "bytes"

// SplitBatch splits an ingest body into items: one item per line,
// tolerant of CRLF and of a missing trailing newline; empty lines are
// skipped. The returned slices alias data — callers hand them straight
// to Entry.Add, which must not retain them.
//
// This is the request decoder the fuzz smoke target exercises together
// with Entry.Merge: arbitrary bodies must split and ingest (or error)
// without panicking.
func SplitBatch(data []byte) [][]byte {
	items := make([][]byte, 0, bytes.Count(data, []byte{'\n'})+1)
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) > 0 {
			items = append(items, line)
		}
	}
	return items
}
