package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hashx"
)

// ErrNotFound is returned when a request names a sketch that does not
// exist in the registry.
var ErrNotFound = fmt.Errorf("server: no such sketch")

// ErrExists is returned when creating a sketch under a taken name.
var ErrExists = fmt.Errorf("server: sketch already exists")

// registry is the namespace of live sketches. Name lookup is striped
// across independent read-write locks so that hot ingest paths for
// different sketches never contend on one global registry lock; the
// per-name entry then carries its own synchronization (lock-free for
// the concurrent wrappers, a mutex for the rest).
const registryStripes = 64

type registry struct {
	stripes [registryStripes]registryStripe
}

type registryStripe struct {
	mu sync.RWMutex
	m  map[string]*namedEntry
}

// namedEntry pairs an Entry with its registry metadata, per-sketch
// ingest counter (surfaced on /debug/statsz), and durability
// bookkeeping. When durability is enabled, walMu makes "apply to
// memory + append to WAL + record the LSN" atomic per sketch, and the
// snapshot capture takes the same lock — so a captured sketch's bytes
// provably include every WAL record at or below its lastLSN, which is
// exactly the replay skip rule.
type namedEntry struct {
	name  string
	entry *Entry
	adds  core.Counter

	// expiresAt is the TTL deadline in unix seconds (0 = never).
	// Immutable after install — set before the entry is published so
	// the reaper never races a half-built row.
	expiresAt int64
	// bytes is the last measured SizeBytes, folded into the owning
	// tenant's resident gauge (refreshed off the hot path).
	bytes atomic.Int64

	// qbTokens/qbWindow are the sketch's query-budget bucket: tokens
	// remaining in the window starting at qbWindow (unix nanos),
	// refilled lazily by allowSketchQuery. Zero values mean the first
	// query opens the first window.
	qbTokens atomic.Int64
	qbWindow atomic.Int64

	walMu   sync.Mutex
	lastLSN uint64 // guarded by walMu (recovery writes it single-threaded)
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.stripes {
		r.stripes[i].m = make(map[string]*namedEntry)
	}
	return r
}

func (r *registry) stripeFor(name string) *registryStripe {
	// XXHash64String hashes the string bytes in place; the []byte(name)
	// conversion it replaces heap-copied the name on every lookup.
	return &r.stripes[hashx.XXHash64String(name, 0)%registryStripes]
}

// get returns the named entry or ErrNotFound.
func (r *registry) get(name string) (*namedEntry, error) {
	s := r.stripeFor(name)
	s.mu.RLock()
	e, ok := s.m[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// create installs a prepared entry (name, expiry, and gauges already
// set by the caller), failing if the name is taken.
func (r *registry) create(ne *namedEntry) error {
	s := r.stripeFor(ne.name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[ne.name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, ne.name)
	}
	s.m[ne.name] = ne
	return nil
}

// remove deletes the named entry, returning it (nil if absent) so the
// caller can release entry-held resources — buffered serving instances
// own a propagator goroutine that must be stopped.
func (r *registry) remove(name string) *namedEntry {
	s := r.stripeFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	ne, ok := s.m[name]
	if !ok {
		return nil
	}
	delete(s.m, name)
	return ne
}

// list returns up to limit entries sorted by name, restricted to a
// name prefix, resuming strictly after the cursor name. more reports
// whether entries past the returned page exist (the pagination
// contract behind GET /v1/sketch?prefix=&limit=&cursor=).
func (r *registry) list(prefix, after string, limit int) (page []*namedEntry, more bool) {
	all := r.snapshot()
	for _, ne := range all {
		if prefix != "" && !strings.HasPrefix(ne.name, prefix) {
			continue
		}
		if after != "" && ne.name <= after {
			continue
		}
		if limit > 0 && len(page) == limit {
			return page, true
		}
		page = append(page, ne)
	}
	return page, false
}

// snapshot returns all entries sorted by name.
func (r *registry) snapshot() []*namedEntry {
	var out []*namedEntry
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.RLock()
		for _, e := range s.m {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
