package server

import (
	"sort"

	"repro/internal/core"
	typereg "repro/internal/registry"
)

// wireCounters tracks one family's snapshot bytes shipped on the wire,
// split by envelope form. Transmitted bytes are the currency of
// scatter-gather reads, bundles and federated fan-ins, so they are a
// first-class counter next to ops — /v1/status and /debug/statsz
// surface the nonzero rows, which is how the slim-shipping win (and
// any regression) is observed on a live server.
type wireCounters struct {
	fullSnaps core.Counter
	fullBytes core.Counter
	slimSnaps core.Counter
	slimBytes core.Counter
}

// WireStat is one family's wire-byte row on /v1/status and
// /debug/statsz.
type WireStat struct {
	Type          string `json:"type"`
	FullSnapshots uint64 `json:"full_snapshots"`
	FullBytes     uint64 `json:"full_bytes"`
	SlimSnapshots uint64 `json:"slim_snapshots,omitempty"`
	SlimBytes     uint64 `json:"slim_bytes,omitempty"`
}

// newWireCounters prebuilds a counter row per servable family, so the
// snapshot hot path only ever increments atomics — no locking, no map
// mutation.
func newWireCounters() map[string]*wireCounters {
	m := make(map[string]*wireCounters)
	for _, d := range typereg.All() {
		if d.Servable() {
			m[d.Name] = &wireCounters{}
		}
	}
	return m
}

// countWire records one served snapshot of the given family.
func (s *Server) countWire(typeName string, slim bool, bytes int) {
	wc := s.wire[typeName]
	if wc == nil {
		return
	}
	if slim {
		wc.slimSnaps.Inc()
		wc.slimBytes.Add(uint64(bytes))
	} else {
		wc.fullSnaps.Inc()
		wc.fullBytes.Add(uint64(bytes))
	}
}

// wireStats returns the families with wire traffic, sorted by name.
func (s *Server) wireStats() []WireStat {
	out := make([]WireStat, 0, 4)
	for name, wc := range s.wire {
		st := WireStat{
			Type:          name,
			FullSnapshots: wc.fullSnaps.Load(),
			FullBytes:     wc.fullBytes.Load(),
			SlimSnapshots: wc.slimSnaps.Load(),
			SlimBytes:     wc.slimBytes.Load(),
		}
		if st.FullSnapshots == 0 && st.SlimSnapshots == 0 {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Type < out[j].Type })
	return out
}
