package server

// Multi-tenant namespace tests: isolation (same name in two tenants
// never collides, cross-tenant lookups 404), list pagination, quota
// 429s, TTL eviction surviving kill-9 byte-identically, group-by
// ingest recovery, and replay of legacy version-1 DUR1 logs.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable"
)

func inMemoryServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// queryEstimate returns the sketch's estimate rounded to the nearest
// integer — at these tiny cardinalities the HLL estimator is exact up
// to float noise.
func queryEstimate(t *testing.T, base, path string) float64 {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(mustDo(t, "GET", base+path, ""), &doc); err != nil {
		t.Fatalf("query %s: %v", path, err)
	}
	est, ok := doc["estimate"].(float64)
	if !ok {
		t.Fatalf("query %s: no estimate in %v", path, doc)
	}
	return math.Round(est)
}

func TestTenantIsolation(t *testing.T) {
	_, ts := inMemoryServer(t)

	// The same sketch name in three namespaces: default (legacy path),
	// tenant a, tenant b. Same name, independent state.
	mustDo(t, "POST", ts.URL+"/v1/sketch/users", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/a/sketch/users", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/b/sketch/users", `{"type":"hll"}`)

	mustDo(t, "POST", ts.URL+"/v1/sketch/users/add", "d1\nd2")
	mustDo(t, "POST", ts.URL+"/v1/t/a/sketch/users/add", "a1\na2\na3")
	mustDo(t, "POST", ts.URL+"/v1/t/b/sketch/users/add", "b1")

	if got := queryEstimate(t, ts.URL, "/v1/sketch/users/query"); got != 2 {
		t.Errorf("default tenant estimate = %v, want 2", got)
	}
	if got := queryEstimate(t, ts.URL, "/v1/t/a/sketch/users/query"); got != 3 {
		t.Errorf("tenant a estimate = %v, want 3", got)
	}
	if got := queryEstimate(t, ts.URL, "/v1/t/b/sketch/users/query"); got != 1 {
		t.Errorf("tenant b estimate = %v, want 1", got)
	}

	// The header addresses the same namespace as the path.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sketch/users/query", nil)
	req.Header.Set(TenantHeader, "a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if est := math.Round(doc["estimate"].(float64)); est != 3 {
		t.Errorf("header-scoped estimate = %v, want 3", est)
	}

	// A sketch that exists only in tenant a is invisible elsewhere.
	mustDo(t, "POST", ts.URL+"/v1/t/a/sketch/only-a", `{"type":"hll"}`)
	for _, path := range []string{
		"/v1/sketch/only-a/query",
		"/v1/t/b/sketch/only-a/query",
		"/v1/t/missing/sketch/only-a/query",
	} {
		if code, _ := httpDo(t, "GET", ts.URL+path, ""); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}

	// Deleting tenant a's sketch leaves b's and default's intact.
	mustDo(t, "DELETE", ts.URL+"/v1/t/a/sketch/users", "")
	if code, _ := httpDo(t, "GET", ts.URL+"/v1/t/a/sketch/users/query", ""); code != http.StatusNotFound {
		t.Errorf("deleted tenant-a sketch still answers: %d", code)
	}
	if got := queryEstimate(t, ts.URL, "/v1/t/b/sketch/users/query"); got != 1 {
		t.Errorf("tenant b estimate after a's delete = %v, want 1", got)
	}
	if got := queryEstimate(t, ts.URL, "/v1/sketch/users/query"); got != 2 {
		t.Errorf("default estimate after a's delete = %v, want 2", got)
	}

	// Bad tenant names reject rather than silently creating namespaces.
	if code, _ := httpDo(t, "POST", ts.URL+"/v1/t/bad%2Fname/sketch/x", `{"type":"hll"}`); code != http.StatusBadRequest {
		t.Errorf("create under invalid tenant = %d, want 400", code)
	}
}

func TestTenantListPagination(t *testing.T) {
	_, ts := inMemoryServer(t)
	for i := 0; i < 25; i++ {
		mustDo(t, "POST", ts.URL+fmt.Sprintf("/v1/t/pag/sketch/p-%02d", i), `{"type":"hll"}`)
	}
	mustDo(t, "POST", ts.URL+"/v1/t/pag/sketch/q-other", `{"type":"hll"}`)

	type page struct {
		Sketches []struct {
			Name string `json:"name"`
			Type string `json:"type"`
		} `json:"sketches"`
		Truncated  bool   `json:"truncated"`
		NextCursor string `json:"next_cursor"`
	}
	var names []string
	cursor, pages := "", 0
	for {
		u := ts.URL + "/v1/t/pag/sketch?prefix=p-&limit=10"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		var pg page
		if err := json.Unmarshal(mustDo(t, "GET", u, ""), &pg); err != nil {
			t.Fatal(err)
		}
		pages++
		for _, sk := range pg.Sketches {
			names = append(names, sk.Name)
		}
		if !pg.Truncated {
			break
		}
		if pg.NextCursor == "" {
			t.Fatal("truncated page without next_cursor")
		}
		cursor = pg.NextCursor
	}
	if pages != 3 || len(names) != 25 {
		t.Fatalf("paged %d names over %d pages, want 25 over 3", len(names), pages)
	}
	for i, name := range names {
		if want := fmt.Sprintf("p-%02d", i); name != want {
			t.Fatalf("names[%d] = %q, want %q (pages must be sorted, gap-free)", i, name, want)
		}
	}

	// The prefix filter excluded q-other; an unfiltered list includes it.
	var all page
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/t/pag/sketch", ""), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Sketches) != 26 || all.Truncated {
		t.Errorf("unfiltered list: %d sketches (truncated=%v), want 26 untruncated", len(all.Sketches), all.Truncated)
	}
}

func TestTenantQuota429(t *testing.T) {
	s, ts := inMemoryServer(t)
	s.SetTenantQuota(TenantQuota{MaxSketches: 2})

	mustDo(t, "POST", ts.URL+"/v1/t/capped/sketch/s1", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/capped/sketch/s2", `{"type":"hll"}`)
	if code, body := httpDo(t, "POST", ts.URL+"/v1/t/capped/sketch/s3", `{"type":"hll"}`); code != http.StatusTooManyRequests {
		t.Errorf("create over sketch quota = %d (%s), want 429", code, body)
	}
	// The breach is per tenant: another namespace still creates freely.
	mustDo(t, "POST", ts.URL+"/v1/t/other/sketch/s1", `{"type":"hll"}`)
	// And the capped tenant's existing sketches still serve.
	mustDo(t, "POST", ts.URL+"/v1/t/capped/sketch/s1/add", "x\ny")

	// Byte quota: the resident gauge refreshes on statsz, after which
	// further ingest into an over-quota tenant answers 429. The cap is
	// chosen between one sketch's resident size and two — "capped"
	// (two sketches) breaches it, "other" (one sketch) does not: the
	// quota binds per tenant, so one tenant's breach never throttles
	// another.
	mustDo(t, "GET", ts.URL+"/debug/statsz", "")
	var sz Statsz
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/debug/statsz", ""), &sz); err != nil {
		t.Fatal(err)
	}
	var one int64
	for _, row := range sz.Tenants {
		if row.Tenant == "other" {
			one = row.ResidentBytes
		}
	}
	if one <= 0 {
		t.Fatalf("no resident gauge for tenant other: %+v", sz.Tenants)
	}
	s.SetTenantQuota(TenantQuota{MaxBytes: one + one/2})
	if code, body := httpDo(t, "POST", ts.URL+"/v1/t/capped/sketch/s1/add", "z"); code != http.StatusTooManyRequests {
		t.Errorf("ingest over byte quota = %d (%s), want 429", code, body)
	}
	// Reads are never quota-gated.
	mustDo(t, "GET", ts.URL+"/v1/t/capped/sketch/s1/query", "")
	// Other tenants' ingest is untouched by the capped tenant's breach.
	mustDo(t, "POST", ts.URL+"/v1/t/other/sketch/s1/add", "ok")
}

// TestTTLEvictionSurvivesKill9 drives the satellite's core claim: a
// WAL-logged TTL eviction is as durable as any delete. The sweep runs,
// the server dies without ceremony, and recovery must keep the evicted
// sketch dead while serving the survivor byte-identically.
func TestTTLEvictionSurvivesKill9(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})

	// created_unix pinned in the past: the TTL deadline has long
	// passed, so the sweep below is deterministic.
	mustDo(t, "POST", ts1.URL+"/v1/t/ads/sketch/ephemeral", `{"type":"hll","ttl_s":1,"created_unix":1000}`)
	mustDo(t, "POST", ts1.URL+"/v1/t/ads/sketch/ephemeral/add", "gone-1\ngone-2")
	mustDo(t, "POST", ts1.URL+"/v1/t/ads/sketch/keeper", `{"type":"hll"}`)
	mustDo(t, "POST", ts1.URL+"/v1/t/ads/sketch/keeper/add", "kept-1\nkept-2\nkept-3")

	if n := s1.SweepExpired(time.Now()); n != 1 {
		t.Fatalf("SweepExpired evicted %d sketches, want 1", n)
	}
	if code, _ := httpDo(t, "GET", ts1.URL+"/v1/t/ads/sketch/ephemeral/query", ""); code != http.StatusNotFound {
		t.Fatalf("evicted sketch still answers: %d", code)
	}
	wantSnap := mustDo(t, "GET", ts1.URL+"/v1/t/ads/sketch/keeper/snapshot", "")

	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	s2, ts2, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if code, _ := httpDo(t, "GET", ts2.URL+"/v1/t/ads/sketch/ephemeral/query", ""); code != http.StatusNotFound {
		t.Errorf("evicted sketch resurrected by recovery: %d", code)
	}
	gotSnap := mustDo(t, "GET", ts2.URL+"/v1/t/ads/sketch/keeper/snapshot", "")
	if string(gotSnap) != string(wantSnap) {
		t.Errorf("survivor snapshot differs after recovery: %d vs %d bytes", len(gotSnap), len(wantSnap))
	}

	// A restored TTL sketch whose deadline passed during downtime is
	// not resurrected forever: the revived server's sweep evicts it.
	mustDo(t, "POST", ts2.URL+"/v1/t/ads/sketch/late", `{"type":"hll","ttl_s":1,"created_unix":1000}`)
	if n := s2.SweepExpired(time.Now()); n != 1 {
		t.Errorf("post-recovery sweep evicted %d, want 1", n)
	}
}

func TestGroupByIngestAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, _ := durableServer(t, dir, durable.Options{FsyncInterval: 0})

	lsnBefore := s1.dur.Status().WALLSN
	body := "web\tu1\nweb\tu2\nmobile\tu3\nweb\tu1\nmobile\tu4\ntv\tu5"
	ack := mustDo(t, "POST", ts1.URL+"/v1/t/ads/ingest/groupby?type=hll&prefix=ch-", body)
	var res struct {
		Tenant  string `json:"tenant"`
		Groups  int    `json:"groups"`
		Created int    `json:"created"`
		Added   uint64 `json:"added"`
	}
	if err := json.Unmarshal(ack, &res); err != nil {
		t.Fatal(err)
	}
	if res.Groups != 3 || res.Created != 3 || res.Added != 6 || res.Tenant != "ads" {
		t.Fatalf("groupby ack = %+v, want 3 groups, 3 created, 6 added in ads", res)
	}
	// The whole fan-out — three creates plus six adds — is one WAL record.
	if lsnAfter := s1.dur.Status().WALLSN; lsnAfter != lsnBefore+1 {
		t.Errorf("groupby wrote %d WAL records, want 1", lsnAfter-lsnBefore)
	}
	if got := queryEstimate(t, ts1.URL, "/v1/t/ads/sketch/ch-web/query"); got != 2 {
		t.Errorf("ch-web estimate = %v, want 2 (u1 deduplicated)", got)
	}

	// A second call hits existing group sketches (created=0) and mixes
	// in a new group.
	ack2 := mustDo(t, "POST", ts1.URL+"/v1/t/ads/ingest/groupby?type=hll&prefix=ch-", "web\tu9\nprint\tu10")
	if err := json.Unmarshal(ack2, &res); err != nil {
		t.Fatal(err)
	}
	if res.Groups != 2 || res.Created != 1 {
		t.Fatalf("second groupby ack = %+v, want 2 groups, 1 created", res)
	}

	snaps := map[string][]byte{}
	for _, g := range []string{"ch-web", "ch-mobile", "ch-tv", "ch-print"} {
		snaps[g] = mustDo(t, "GET", ts1.URL+"/v1/t/ads/sketch/"+g+"/snapshot", "")
	}

	if err := s1.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	s1.dur.Kill()

	_, ts2, stats := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats.RecordsReplayed == 0 {
		t.Fatal("recovery replayed no records; groupby records were lost")
	}
	for g, want := range snaps {
		got := mustDo(t, "GET", ts2.URL+"/v1/t/ads/sketch/"+g+"/snapshot", "")
		if string(got) != string(want) {
			t.Errorf("%s snapshot differs after groupby replay: %d vs %d bytes", g, len(got), len(want))
		}
	}
}

// TestLegacyV1LogReplay fabricates a pre-tenant version-1 DUR1 log and
// recovers a server over it: old logs must keep replaying, with every
// record landing in the default namespace.
func TestLegacyV1LogReplay(t *testing.T) {
	dir := t.TempDir()
	req := []byte(`{"type":"hll"}`)
	log := durable.WALHeaderV1()
	log = durable.AppendRecordV1(log, durable.Record{LSN: 1, Op: durable.OpCreate, Name: "legacy", Body: req})
	log = durable.AppendRecordV1(log, durable.Record{LSN: 2, Op: durable.OpIngest, Name: "legacy", Body: []byte("old-1\nold-2")})
	log = durable.AppendRecordV1(log, durable.Record{LSN: 3, Op: durable.OpIngest, Name: "legacy", Body: []byte("old-3")})
	walPath := filepath.Join(dir, "wal-00000000000000000001.log")
	if err := os.WriteFile(walPath, log, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts, stats := durableServer(t, dir, durable.Options{FsyncInterval: 0})
	if stats.RecordsReplayed != 3 {
		t.Fatalf("replayed %d records from v1 log, want 3", stats.RecordsReplayed)
	}
	// The legacy sketch serves on the legacy path — i.e. the default
	// tenant — and only there.
	if got := queryEstimate(t, ts.URL, "/v1/sketch/legacy/query"); got != 3 {
		t.Errorf("legacy sketch estimate = %v, want 3", got)
	}
	if got := queryEstimate(t, ts.URL, "/v1/t/default/sketch/legacy/query"); got != 3 {
		t.Errorf("legacy sketch via /v1/t/default = %v, want 3", got)
	}
	if code, _ := httpDo(t, "GET", ts.URL+"/v1/t/other/sketch/legacy/query", ""); code != http.StatusNotFound {
		t.Errorf("legacy sketch leaked into tenant other: %d", code)
	}

	// New writes over the recovered state land in today's v2 log and
	// coexist with the v1 history on the next recovery.
	mustDo(t, "POST", ts.URL+"/v1/sketch/legacy/add", "new-4")
	mustDo(t, "POST", ts.URL+"/v1/t/fresh/sketch/modern", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/fresh/sketch/modern/add", "m-1")
	if got := queryEstimate(t, ts.URL, "/v1/sketch/legacy/query"); got != 4 {
		t.Errorf("legacy sketch after mixed-version writes = %v, want 4", got)
	}
}

func TestStatusReportsTenants(t *testing.T) {
	_, ts := inMemoryServer(t)
	mustDo(t, "POST", ts.URL+"/v1/sketch/d1", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/acme/sketch/a1", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/acme/sketch/a2", `{"type":"hll"}`)
	mustDo(t, "POST", ts.URL+"/v1/t/acme/sketch/a1/add", "x\ny\nz")

	var st StatusResponse
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/status", ""), &st); err != nil {
		t.Fatal(err)
	}
	if st.Sketches != 3 {
		t.Errorf("status sketches = %d, want 3 across tenants", st.Sketches)
	}
	byName := map[string]TenantStat{}
	for _, row := range st.Tenants {
		byName[row.Tenant] = row
	}
	if byName["acme"].Sketches != 2 || byName["default"].Sketches != 1 {
		t.Errorf("tenant rows = %+v, want acme:2 default:1", byName)
	}
	if byName["acme"].Adds != 3 {
		t.Errorf("acme adds = %d, want 3", byName["acme"].Adds)
	}
	if byName["acme"].ResidentBytes <= 0 {
		t.Errorf("acme resident_bytes = %d, want > 0", byName["acme"].ResidentBytes)
	}
}
