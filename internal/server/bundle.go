package server

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mergex"
	typereg "repro/internal/registry"
)

// The bundle format lets a client ship N same-type envelopes to
// POST /v1/sketch/{name}/merge in one request. The server decodes them
// all, tree-merges them across GOMAXPROCS cores OUTSIDE the sketch
// lock (internal/mergex), and only then absorbs the single combined
// envelope through the ordinary merge path — so the entry lock and the
// write-ahead log see exactly one merge, and replaying the WAL
// reproduces the same state as the N individual posts would have.
//
// Layout (little-endian, matching the GSK1 envelope convention):
//
//	"GSKB" | u32 count | count × (u32 len | GSK1 envelope bytes)

// BundleMagic prefixes a multi-envelope merge body. It is distinct
// from the per-sketch "GSK1" magic, so the merge handler can tell a
// bundle from a single envelope by its first four bytes.
const BundleMagic = "GSKB"

// maxBundleEnvelopes bounds the declared envelope count before any
// allocation, so a corrupt header can't balloon memory. The body cap
// (maxBodyBytes) bounds the real payload anyway.
const maxBundleEnvelopes = 1 << 16

// IsBundle reports whether a merge body carries the GSKB framing.
func IsBundle(body []byte) bool {
	return len(body) >= 8 && string(body[:4]) == BundleMagic
}

// EncodeBundle frames envelopes into one GSKB merge body. The client
// package uses it for MergeMany; tests use it to drive the handler.
func EncodeBundle(envelopes [][]byte) []byte {
	size := 8
	for _, env := range envelopes {
		size += 4 + len(env)
	}
	out := make([]byte, 0, size)
	out = append(out, BundleMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(envelopes)))
	for _, env := range envelopes {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(env)))
		out = append(out, env...)
	}
	return out
}

// CombineBundle decodes every envelope in a GSKB body and tree-merges
// them into one combined envelope of the same type. All envelopes must
// decode to the same registry descriptor and the family must merge;
// shape mismatches surface the underlying core.ErrIncompatible so the
// HTTP layer maps them to 409 like any other incompatible merge.
func CombineBundle(body []byte) ([]byte, error) {
	if !IsBundle(body) {
		return nil, fmt.Errorf("%w: bundle too short or bad magic", core.ErrCorrupt)
	}
	rest := body[4:]
	count := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	if count == 0 {
		return nil, fmt.Errorf("%w: bundle with zero envelopes", core.ErrCorrupt)
	}
	if count > maxBundleEnvelopes {
		return nil, fmt.Errorf("%w: bundle declares %d envelopes (max %d)", core.ErrCorrupt, count, maxBundleEnvelopes)
	}
	var d *typereg.Descriptor
	insts := make([]any, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: bundle truncated in envelope %d header", core.ErrCorrupt, i)
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("%w: bundle envelope %d declares %d bytes, %d remain", core.ErrCorrupt, i, n, len(rest))
		}
		inst, id, err := typereg.Decode(rest[:n])
		if err != nil {
			return nil, fmt.Errorf("bundle envelope %d: %w", i, err)
		}
		rest = rest[n:]
		if d == nil {
			d = id
			if d.Bind.Merge == nil {
				return nil, fmt.Errorf("%w: %s does not merge", ErrUnsupported, d.Name)
			}
		} else if id != d {
			return nil, fmt.Errorf("%w: bundle mixes %s and %s envelopes", core.ErrIncompatible, d.Name, id.Name)
		}
		insts = append(insts, inst)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last bundle envelope", core.ErrCorrupt, len(rest))
	}
	merged, err := mergex.Tree(insts, d.Bind.Merge)
	if err != nil {
		return nil, err
	}
	return typereg.Marshal(merged)
}
