package server_test

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/quantile"
	"repro/internal/server"
	"repro/internal/server/client"
)

func newTestServer(t *testing.T) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(server.New().Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL)
}

func TestHLLLifecycle(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("users", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
		t.Fatalf("create: %v", err)
	}
	items := make([]string, 0, 20000)
	for i := 0; i < 20000; i++ {
		items = append(items, "user-"+strconv.Itoa(i))
	}
	for i := 0; i < len(items); i += 1000 {
		if err := cl.Add("users", items[i:i+1000]); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	est, err := cl.Estimate("users", nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if relErr := core.RelErr(est, 20000); relErr > 0.1 {
		t.Errorf("estimate %.1f, rel err %.3f", est, relErr)
	}

	// Merge a peer sketch holding a disjoint set; union must grow. The
	// peer shares p and seed, so its items hash identically to
	// server-side adds.
	peer := cardinality.NewHLL(12, 1)
	for i := 20000; i < 40000; i++ {
		peer.Add([]byte("user-" + strconv.Itoa(i)))
	}
	env, err := peer.MarshalBinary()
	if err != nil {
		t.Fatalf("peer marshal: %v", err)
	}
	if err := cl.Merge("users", env); err != nil {
		t.Fatalf("merge: %v", err)
	}
	est, err = cl.Estimate("users", nil)
	if err != nil {
		t.Fatalf("query after merge: %v", err)
	}
	if relErr := core.RelErr(est, 40000); relErr > 0.1 {
		t.Errorf("post-merge estimate %.1f, rel err %.3f", est, relErr)
	}

	// Snapshot must round-trip into a plain HLL with the same estimate.
	snap, err := cl.Snapshot("users")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	var back cardinality.HLL
	if err := back.UnmarshalBinary(snap); err != nil {
		t.Fatalf("snapshot unmarshal: %v", err)
	}
	if back.Estimate() != est {
		t.Errorf("snapshot estimate %.1f != served %.1f", back.Estimate(), est)
	}
}

func TestCountMinLifecycle(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("freq", server.CreateRequest{Type: "countmin", Width: 2048, Depth: 4, Seed: 7}); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Weighted and unweighted lines.
	batch := strings.Repeat("apple\n", 10) + "banana\t90\n"
	if err := cl.AddBatch("freq", []byte(batch)); err != nil {
		t.Fatalf("add: %v", err)
	}
	res, err := cl.Query("freq", url.Values{"item": {"banana"}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if est := res["estimate"].(float64); est < 90 {
		t.Errorf("banana estimate %v < 90", est)
	}

	// Merge a hash-compatible plain CountMin.
	peer := frequency.NewCountMin(2048, 4, 7)
	for i := 0; i < 25; i++ {
		peer.AddString("apple")
	}
	env, _ := peer.MarshalBinary()
	if err := cl.Merge("freq", env); err != nil {
		t.Fatalf("merge: %v", err)
	}
	res, _ = cl.Query("freq", url.Values{"item": {"apple"}})
	if est := res["estimate"].(float64); est < 35 {
		t.Errorf("apple estimate %v < 35 after merge", est)
	}

	// Incompatible shape must 409.
	bad := frequency.NewCountMin(1024, 4, 7)
	env, _ = bad.MarshalBinary()
	if err := cl.Merge("freq", env); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("incompatible merge: got %v, want HTTP 409", err)
	}
	// A bad weight line must reject the batch.
	if err := cl.AddBatch("freq", []byte("pear\tnotanumber\n")); err == nil {
		t.Error("bad weight accepted")
	}
}

func TestBloomKLLTheta(t *testing.T) {
	_, cl := newTestServer(t)
	// Bloom.
	if err := cl.Create("seen", server.CreateRequest{Type: "bloom", NItems: 1000, FPR: 0.01, Seed: 3}); err != nil {
		t.Fatalf("create bloom: %v", err)
	}
	if err := cl.Add("seen", []string{"alpha", "beta"}); err != nil {
		t.Fatalf("add bloom: %v", err)
	}
	res, err := cl.Query("seen", url.Values{"item": {"alpha"}})
	if err != nil || res["contains"] != true {
		t.Errorf("bloom contains alpha: res=%v err=%v", res, err)
	}
	res, _ = cl.Query("seen", url.Values{"item": {"never-added"}})
	if res["contains"] != false {
		t.Errorf("bloom contains never-added: %v", res)
	}

	// KLL.
	if err := cl.Create("lat", server.CreateRequest{Type: "kll", K: 200, Seed: 4}); err != nil {
		t.Fatalf("create kll: %v", err)
	}
	vals := make([]string, 0, 10000)
	for i := 0; i < 10000; i++ {
		vals = append(vals, strconv.Itoa(i))
	}
	if err := cl.Add("lat", vals); err != nil {
		t.Fatalf("add kll: %v", err)
	}
	res, err = cl.Query("lat", url.Values{"q": {"0.9"}})
	if err != nil {
		t.Fatalf("query kll: %v", err)
	}
	if q := res["quantile"].(float64); q < 8000 || q > 10000 {
		t.Errorf("p90 = %v, want ~9000", q)
	}
	// Non-numeric lines must reject the batch.
	if err := cl.Add("lat", []string{"not-a-float"}); err == nil {
		t.Error("kll accepted a non-numeric item")
	}

	// Theta, including a merge.
	if err := cl.Create("set", server.CreateRequest{Type: "theta", K: 1024, Seed: 5}); err != nil {
		t.Fatalf("create theta: %v", err)
	}
	if err := cl.Add("set", vals[:5000]); err != nil {
		t.Fatalf("add theta: %v", err)
	}
	peer := cardinality.NewTheta(1024, 5)
	for i := 5000; i < 10000; i++ {
		peer.AddString(strconv.Itoa(i))
	}
	env, _ := peer.MarshalBinary()
	if err := cl.Merge("set", env); err != nil {
		t.Fatalf("merge theta: %v", err)
	}
	est, err := cl.Estimate("set", nil)
	if err != nil {
		t.Fatalf("query theta: %v", err)
	}
	if relErr := core.RelErr(est, 10000); relErr > 0.1 {
		t.Errorf("theta estimate %.1f, rel err %.3f", est, relErr)
	}

	// KLL merge via snapshot: a second KLL server-side merge path.
	other := quantile.NewKLL(200, 4)
	for i := 0; i < 1000; i++ {
		other.Add(float64(i))
	}
	env, _ = other.MarshalBinary()
	if err := cl.Merge("lat", env); err != nil {
		t.Fatalf("merge kll: %v", err)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, cl := newTestServer(t)

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Unknown sketch: 404 on every per-name op.
	if code := post("/v1/sketch/ghost/add", "x\n"); code != http.StatusNotFound {
		t.Errorf("add to missing sketch: %d", code)
	}
	// Bad create bodies: 400.
	if code := post("/v1/sketch/x", `{"type":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown type: %d", code)
	}
	if code := post("/v1/sketch/x", `not json`); code != http.StatusBadRequest {
		t.Errorf("non-JSON create: %d", code)
	}
	if code := post("/v1/sketch/x", `{"type":"hll","p":3}`); code != http.StatusBadRequest {
		t.Errorf("bad hll precision: %d", code)
	}
	// Duplicate create: 409.
	if err := cl.Create("dup", server.CreateRequest{Type: "hll"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if code := post("/v1/sketch/dup", `{"type":"hll"}`); code != http.StatusConflict {
		t.Errorf("duplicate create: %d", code)
	}
	// Corrupt merge envelope: 400 (ErrCorrupt, not a conflict).
	if code := post("/v1/sketch/dup/merge", "GSK1 garbage"); code != http.StatusBadRequest {
		t.Errorf("corrupt merge: %d", code)
	}
	// Cross-type merge (theta envelope into an hll sketch): the payload
	// is well-formed and self-describing, so it's an incompatibility
	// conflict (409), not a malformed request.
	th := cardinality.NewTheta(64, 1)
	th.AddString("x")
	env, _ := th.MarshalBinary()
	resp, err := http.Post(ts.URL+"/v1/sketch/dup/merge", "application/octet-stream", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cross-type merge: %d, want 409", resp.StatusCode)
	}
	// Delete then 404.
	if err := cl.Delete("dup"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if code := post("/v1/sketch/dup/add", "x\n"); code != http.StatusNotFound {
		t.Errorf("add after delete: %d", code)
	}
}

func TestStatszCounters(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("s", server.CreateRequest{Type: "hll"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add("s", []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Estimate("s", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Snapshot("s"); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Statsz()
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if stats.Ops.Adds != 3 || stats.Ops.AddBatches != 1 {
		t.Errorf("ops = %+v, want 3 adds in 1 batch", stats.Ops)
	}
	if stats.Ops.Queries != 1 || stats.Ops.Snapshots != 1 {
		t.Errorf("ops = %+v, want 1 query and 1 snapshot", stats.Ops)
	}
	if stats.Ops.BatchBytes == 0 {
		t.Error("batch bytes not counted")
	}
	if len(stats.Sketches) != 1 || stats.Sketches[0].Name != "s" ||
		stats.Sketches[0].Adds != 3 || stats.Sketches[0].Bytes == 0 {
		t.Errorf("sketch stats = %+v", stats.Sketches)
	}
}

// TestConcurrentAddMergeSnapshot is the -race interleaving test the CI
// race job exists for: writers batch-ingest, a merger posts peer
// envelopes, and readers pull snapshots, estimates and statsz, all
// against one sketch, all at once.
func TestConcurrentAddMergeSnapshot(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("race", server.CreateRequest{Type: "hll", P: 12, Seed: 1, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const batches = 30
	const batchSize = 200
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items := make([]string, batchSize)
			for b := 0; b < batches; b++ {
				for i := range items {
					items[i] = strconv.Itoa(w<<24 | b<<12 | i)
				}
				if err := cl.Add("race", items); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			peer := cardinality.NewHLL(12, 1)
			for i := 0; i < 500; i++ {
				peer.Add([]byte("merge-" + strconv.Itoa(b<<16|i)))
			}
			env, _ := peer.MarshalBinary()
			if err := cl.Merge("race", env); err != nil {
				t.Errorf("merger: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			if _, err := cl.Estimate("race", nil); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			snap, err := cl.Snapshot("race")
			if err != nil {
				t.Errorf("snapshotter: %v", err)
				return
			}
			var h cardinality.HLL
			if err := h.UnmarshalBinary(snap); err != nil {
				t.Errorf("snapshot decode: %v", err)
				return
			}
			if _, err := cl.Statsz(); err != nil {
				t.Errorf("statsz: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// After the dust settles the union must cover all distinct items.
	want := float64(writers*batches*batchSize + batches*500)
	est, err := cl.Estimate("race", nil)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := core.RelErr(est, want); relErr > 0.1 {
		t.Errorf("final estimate %.1f vs %d distinct, rel err %.3f", est, int(want), relErr)
	}
}

func TestSplitBatch(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"\n\n\n", nil},
		{"a", []string{"a"}},
		{"a\n", []string{"a"}},
		{"a\nb\nc", []string{"a", "b", "c"}},
		{"a\r\nb\r\n", []string{"a", "b"}},
		{"a\n\nb", []string{"a", "b"}},
	}
	for _, c := range cases {
		got := server.SplitBatch([]byte(c.in))
		if len(got) != len(c.want) {
			t.Errorf("SplitBatch(%q) = %d items, want %d", c.in, len(got), len(c.want))
			continue
		}
		for i := range got {
			if string(got[i]) != c.want[i] {
				t.Errorf("SplitBatch(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}
