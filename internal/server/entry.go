package server

import (
	"bytes"
	"encoding"
	"errors"
	"fmt"
	"net/url"
	"sync"

	"repro/internal/core"
	typereg "repro/internal/registry"
)

// ErrBadParams is returned by NewEntry for unusable creation
// parameters (unknown type, out-of-range shape).
var ErrBadParams = errors.New("server: bad sketch parameters")

// ErrUnsupported marks an operation the sketch type's descriptor does
// not bind — merging a non-mergeable family, for instance. The HTTP
// layer maps it to 405 Method Not Allowed, distinct from malformed
// requests (400) and incompatible-but-well-formed merges (409).
var ErrUnsupported = errors.New("server: operation not supported by sketch type")

// CreateRequest is the JSON body of POST /v1/sketch/{name}. Any
// servable registry type can be created — GET /v1/types lists them
// with their parameter schemas. The typed fields cover the common
// parameters; Params passes any schema parameter by name and wins on
// overlap. Zero values mean "use the descriptor default" throughout.
type CreateRequest struct {
	Type   string  `json:"type"`             // registry name: hll, countmin, kll, theta, minhash, …
	Seed   uint64  `json:"seed,omitempty"`   // hash seed (default 1)
	P      uint8   `json:"p,omitempty"`      // hll/hllpp/loglog precision
	Shards int     `json:"shards,omitempty"` // hll serving shards (default GOMAXPROCS)
	Width  int     `json:"width,omitempty"`  // countmin/countsketch row width
	Depth  int     `json:"depth,omitempty"`  // countmin/countsketch rows
	M      uint64  `json:"m,omitempty"`      // bloom bits / countingbloom counters / fm bitmaps
	K      int     `json:"k,omitempty"`      // capacity-style parameter (bloom, kll, theta, kmv, …)
	NItems uint64  `json:"n,omitempty"`      // bloom expected items
	FPR    float64 `json:"fpr,omitempty"`    // bloom target false-positive rate

	// Params addresses the full descriptor schema by parameter name
	// (e.g. {"eps": 0.02} for gk, {"vertices": 512} for graphsketch).
	// Unknown names are rejected.
	Params map[string]float64 `json:"params,omitempty"`

	// TTLSeconds, when > 0, schedules the sketch for eviction that many
	// seconds after creation. The server stamps CreatedUnix before the
	// create is WAL-logged, so replay reconstructs the same deadline and
	// the reaper's WAL-logged delete keeps eviction exact across crash
	// recovery. A client-supplied CreatedUnix is honored (clock skew is
	// the caller's problem); 0 means "now" at the serving node.
	TTLSeconds  int64 `json:"ttl_s,omitempty"`
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// expiryUnix returns the eviction deadline in unix seconds (0 = never).
func (req CreateRequest) expiryUnix() int64 {
	if req.TTLSeconds <= 0 {
		return 0
	}
	return req.CreatedUnix + req.TTLSeconds
}

// rawParams folds the typed convenience fields into a schema-keyed
// parameter map. A typed field only contributes when it is nonzero AND
// the descriptor's schema has a parameter of that name, so unrelated
// leftovers in a request (say a bloom "fpr" on a kll create) don't
// reject it — that matches the old per-type switch, which ignored
// fields the type didn't use. Explicit Params entries always pass
// through and get the strict treatment.
func (req CreateRequest) rawParams(d *typereg.Descriptor) map[string]float64 {
	raw := make(map[string]float64, len(req.Params)+4)
	put := func(name string, v float64) {
		if v != 0 && d.HasParam(name) {
			raw[name] = v
		}
	}
	put("p", float64(req.P))
	put("shards", float64(req.Shards))
	put("width", float64(req.Width))
	put("depth", float64(req.Depth))
	put("m", float64(req.M))
	put("k", float64(req.K))
	put("n", float64(req.NItems))
	put("fpr", req.FPR)
	for name, v := range req.Params {
		raw[name] = v
	}
	return raw
}

// Entry is one named sketch behind the server namespace: a registry
// descriptor plus a live instance driven entirely through the
// descriptor's capability bindings — there is no per-type code from
// here up through the HTTP handlers. Entries are safe for concurrent
// use: types with a NewServing constructor (hll, countmin) run
// internally synchronized instances lock-free; everything else
// serializes behind the per-entry mutex with per-batch locking. Add
// must not retain the item slices — they alias a pooled request
// buffer.
type Entry struct {
	desc     *typereg.Descriptor
	bind     *typereg.Bindings
	inst     any
	lockFree bool
	req      CreateRequest // creation parameters, persisted by the durability layer
	mu       sync.Mutex
}

// NewEntry builds a server entry from creation parameters, resolving
// the type through the registry so defaults, bounds, and construction
// live in exactly one place.
func NewEntry(req CreateRequest) (*Entry, error) {
	d, ok := typereg.Lookup(req.Type)
	if !ok {
		return nil, fmt.Errorf("%w: unknown sketch type %q", ErrBadParams, req.Type)
	}
	if !d.Servable() {
		return nil, fmt.Errorf("%w: type %q has no streaming ingest", ErrBadParams, req.Type)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	p, err := d.Validate(seed, req.rawParams(d))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	newFn, bind, lockFree := d.New, &d.Bind, false
	if serving := d.ServingNew(); serving != nil {
		newFn, lockFree = serving, true
		if d.Serve != nil {
			bind = d.Serve
		}
	}
	inst, err := newFn(p)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return &Entry{desc: d, bind: bind, inst: inst, lockFree: lockFree, req: req}, nil
}

// RestoreEntry rebuilds a live entry from its creation parameters and
// a recovered MarshalBinary envelope, verifying byte-identity: the
// restored entry must serialize back to exactly the recovered bytes,
// or restoration fails (the durability layer then skips the sketch
// rather than serving silently divergent state).
//
// Families with a concurrent serving variant (hll, countmin) are
// restored by merging the decoded state into a fresh serving instance,
// keeping post-recovery ingest as fast as pre-crash; everything else
// serves the decoded instance directly behind the entry mutex.
func RestoreEntry(req CreateRequest, data []byte) (*Entry, error) {
	d, ok := typereg.Lookup(req.Type)
	if !ok {
		return nil, fmt.Errorf("%w: unknown sketch type %q", ErrBadParams, req.Type)
	}
	inst, sdesc, err := typereg.Decode(data)
	if err != nil {
		return nil, err
	}
	if sdesc.Tag != d.Tag {
		return nil, fmt.Errorf("%w: snapshot holds %s bytes for a %s entry",
			core.ErrIncompatible, sdesc.Name, d.Name)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	if servingNew := d.ServingNew(); servingNew != nil && d.Serve != nil && d.Serve.Merge != nil {
		if p, err := d.Validate(seed, req.rawParams(d)); err == nil {
			if serving, err := servingNew(p); err == nil {
				if d.Serve.Merge(serving, inst) == nil {
					e := &Entry{desc: d, bind: d.Serve, inst: serving, lockFree: true, req: req}
					if b, err := e.Snapshot(); err == nil && bytes.Equal(b, data) {
						return e, nil
					}
					// Serving-path restore drifted from the recovered
					// bytes; fall through to the provably-identical
					// plain instance.
				}
				closeInstance(serving)
			}
		}
	}
	e := &Entry{desc: d, bind: &d.Bind, inst: inst, req: req}
	b, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(b, data) {
		return nil, fmt.Errorf("server: %s restore is not byte-identical (recovered %d bytes, reserialized %d)",
			d.Name, len(data), len(b))
	}
	return e, nil
}

// closeInstance releases instance-held resources: buffered serving
// sketches own a propagator goroutine stopped by their Close method;
// everything else is a no-op.
func closeInstance(inst any) {
	if c, ok := inst.(interface{ Close() }); ok {
		c.Close()
	}
}

// Close releases entry-held resources. Call exactly when the entry
// leaves the namespace (delete, replaced on replay); the entry must
// not be used afterwards.
func (e *Entry) Close() { closeInstance(e.inst) }

// Type returns the registry type name ("hll", "countmin", …).
func (e *Entry) Type() string { return e.desc.Name }

// CreateReq returns the creation parameters the entry was built from.
func (e *Entry) CreateReq() CreateRequest { return e.req }

// Mergeable reports whether the entry accepts peer envelopes.
func (e *Entry) Mergeable() bool { return e.bind.Merge != nil }

// Add folds a batch of newline-delimited items in.
func (e *Entry) Add(items [][]byte) error {
	if e.lockFree {
		return e.bind.Ingest(e.inst, items)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bind.Ingest(e.inst, items)
}

// Query answers the type's read operation from URL parameters.
func (e *Entry) Query(params url.Values) (map[string]any, error) {
	if e.lockFree {
		return e.bind.Query(e.inst, params)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bind.Query(e.inst, params)
}

// Merge absorbs a peer's MarshalBinary envelope. The payload is
// self-describing: it decodes through the registry, a cross-type
// envelope is an incompatibility (409 at the HTTP layer), and a
// non-mergeable family reports ErrUnsupported (405).
func (e *Entry) Merge(data []byte) error {
	if e.bind.Merge == nil {
		return fmt.Errorf("%w: %s does not merge", ErrUnsupported, e.desc.Name)
	}
	src, sdesc, err := typereg.Decode(data)
	if err != nil {
		return err
	}
	if sdesc.Tag != e.desc.Tag {
		return fmt.Errorf("%w: cannot merge a %s payload into %s", core.ErrIncompatible, sdesc.Name, e.desc.Name)
	}
	if e.lockFree {
		return e.bind.Merge(e.inst, src)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bind.Merge(e.inst, src)
}

// Snapshot serializes the current state in the standard envelope.
func (e *Entry) Snapshot() ([]byte, error) {
	m, ok := e.inst.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("%w: %s does not serialize", ErrUnsupported, e.desc.Name)
	}
	if e.lockFree {
		return m.MarshalBinary()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return m.MarshalBinary()
}

// SnapshotWire serializes the current state for the wire: the slim
// envelope when requested and the family implements
// registry.SlimMarshaler, the full envelope otherwise (so ?wire=slim
// stays a no-op hint for families without a slim form). The second
// result reports which form was served. Durability and replication
// never come through here — they require the byte-exact full envelope.
func (e *Entry) SnapshotWire(slim bool) ([]byte, bool, error) {
	if _, ok := e.inst.(typereg.SlimMarshaler); !ok || !slim {
		b, err := e.Snapshot()
		return b, false, err
	}
	if e.lockFree {
		return typereg.MarshalWire(e.inst, true)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return typereg.MarshalWire(e.inst, true)
}

// SizeBytes reports the in-memory sketch footprint.
func (e *Entry) SizeBytes() int {
	if e.lockFree {
		return typereg.SizeOf(e.inst)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return typereg.SizeOf(e.inst)
}
