package server

import (
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/concurrent"
	"repro/internal/frequency"
	"repro/internal/quantile"
)

// ErrBadParams is returned by NewEntry for unusable creation
// parameters (unknown type, out-of-range shape).
var ErrBadParams = errors.New("server: bad sketch parameters")

// Entry is one named sketch behind the registry. Implementations are
// safe for concurrent use: the hot types (hll, countmin) route through
// the lock-free/sharded wrappers in internal/concurrent, the rest
// serialize behind a per-entry mutex. Add must not retain the item
// slices — they alias a pooled request buffer.
type Entry interface {
	// Type returns the create-time type string ("hll", "countmin", …).
	Type() string
	// Add folds a batch of newline-delimited items in.
	Add(items [][]byte) error
	// Query answers the type's read operation from URL parameters.
	Query(params url.Values) (map[string]any, error)
	// Merge absorbs a peer's MarshalBinary envelope.
	Merge(data []byte) error
	// Snapshot serializes the current state in the standard envelope.
	Snapshot() ([]byte, error)
	// SizeBytes reports the in-memory sketch footprint.
	SizeBytes() int
}

// CreateRequest is the JSON body of POST /v1/sketch/{name}. Fields not
// used by the requested type are ignored; zero values select the
// defaults noted per field.
type CreateRequest struct {
	Type   string  `json:"type"`             // hll | countmin | bloom | kll | theta
	Seed   uint64  `json:"seed,omitempty"`   // hash seed (default 1)
	P      uint8   `json:"p,omitempty"`      // hll: precision, default 14
	Shards int     `json:"shards,omitempty"` // hll: default GOMAXPROCS
	Width  int     `json:"width,omitempty"`  // countmin: default 2048
	Depth  int     `json:"depth,omitempty"`  // countmin: default 4
	M      uint64  `json:"m,omitempty"`      // bloom: bit count (overrides n/fpr sizing)
	K      int     `json:"k,omitempty"`      // bloom: hashes; kll/theta: capacity
	NItems uint64  `json:"n,omitempty"`      // bloom: expected items, default 1e6
	FPR    float64 `json:"fpr,omitempty"`    // bloom: target FPR, default 0.01
}

// NewEntry builds a registry entry from creation parameters, applying
// per-type defaults and rejecting shapes that would be unusable or
// absurdly large.
func NewEntry(req CreateRequest) (Entry, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	switch req.Type {
	case "hll":
		p := req.P
		if p == 0 {
			p = 14
		}
		if p < 4 || p > 18 {
			return nil, fmt.Errorf("%w: hll precision %d out of [4,18]", ErrBadParams, p)
		}
		shards := req.Shards
		if shards == 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		if shards < 1 || shards > 256 {
			return nil, fmt.Errorf("%w: hll shards %d out of [1,256]", ErrBadParams, shards)
		}
		return &hllEntry{hll: concurrent.NewShardedHLL(shards, p, seed)}, nil
	case "countmin":
		width, depth := req.Width, req.Depth
		if width == 0 {
			width = 2048
		}
		if depth == 0 {
			depth = 4
		}
		if width < 1 || depth < 1 || width*depth > 1<<26 {
			return nil, fmt.Errorf("%w: countmin shape %dx%d", ErrBadParams, width, depth)
		}
		return &cmEntry{cm: concurrent.NewAtomicCountMin(width, depth, seed)}, nil
	case "bloom":
		if req.M != 0 {
			if req.M > 1<<33 || req.K < 1 || req.K > 64 {
				return nil, fmt.Errorf("%w: bloom m=%d k=%d", ErrBadParams, req.M, req.K)
			}
			return &bloomEntry{f: bloom.New(req.M, req.K, seed)}, nil
		}
		n, fpr := req.NItems, req.FPR
		if n == 0 {
			n = 1_000_000
		}
		if fpr == 0 {
			fpr = 0.01
		}
		if n > 1<<30 || fpr <= 0 || fpr >= 1 {
			return nil, fmt.Errorf("%w: bloom n=%d fpr=%v", ErrBadParams, n, fpr)
		}
		return &bloomEntry{f: bloom.NewWithEstimates(n, fpr, seed)}, nil
	case "kll":
		k := req.K
		if k == 0 {
			k = 200
		}
		if k < 8 || k > 1<<16 {
			return nil, fmt.Errorf("%w: kll k=%d out of [8,65536]", ErrBadParams, k)
		}
		return &kllEntry{s: quantile.NewKLL(k, seed)}, nil
	case "theta":
		k := req.K
		if k == 0 {
			k = 4096
		}
		if k < 16 || k > 1<<24 {
			return nil, fmt.Errorf("%w: theta k=%d out of [16,2^24]", ErrBadParams, k)
		}
		return &thetaEntry{s: cardinality.NewTheta(k, seed)}, nil
	default:
		return nil, fmt.Errorf("%w: unknown sketch type %q", ErrBadParams, req.Type)
	}
}

// hllEntry: distinct counting on the sharded concurrent HLL. Each
// batch grabs a striped handle, so concurrent ingest spreads across
// shards and reads hit the epoch-cached merged view.
type hllEntry struct {
	hll *concurrent.ShardedHLL
}

func (e *hllEntry) Type() string { return "hll" }

func (e *hllEntry) Add(items [][]byte) error {
	e.hll.Handle().AddBatch(items)
	return nil
}

func (e *hllEntry) Query(url.Values) (map[string]any, error) {
	return map[string]any{"estimate": e.hll.Estimate()}, nil
}

func (e *hllEntry) Merge(data []byte) error {
	var peer cardinality.HLL
	if err := peer.UnmarshalBinary(data); err != nil {
		return err
	}
	return e.hll.Merge(&peer)
}

func (e *hllEntry) Snapshot() ([]byte, error) { return e.hll.MarshalBinary() }

func (e *hllEntry) SizeBytes() int { return e.hll.SizeBytes() }

// cmEntry: frequency estimation on the lock-free atomic Count-Min.
// Lines are "item" (weight 1) or "item\tweight".
type cmEntry struct {
	cm *concurrent.AtomicCountMin
}

func (e *cmEntry) Type() string { return "countmin" }

func (e *cmEntry) Add(items [][]byte) error {
	// Validate every weight before the first update so a bad line
	// rejects the batch without a partial ingest. parseWeight is a
	// no-alloc []byte parser and re-running it in the apply loop is a
	// few ns per line — cheaper than materializing a weights slice.
	for _, item := range items {
		if tab := lastTab(item); tab >= 0 {
			if _, err := parseWeight(item[tab+1:]); err != nil {
				return fmt.Errorf("%w: weight %q: %v", ErrBadParams, item[tab+1:], err)
			}
		}
	}
	for _, item := range items {
		weight := uint64(1)
		if tab := lastTab(item); tab >= 0 {
			weight, _ = parseWeight(item[tab+1:])
			item = item[:tab]
		}
		e.cm.Add(item, weight)
	}
	return nil
}

func (e *cmEntry) Query(params url.Values) (map[string]any, error) {
	item := params.Get("item")
	if item == "" {
		return nil, fmt.Errorf("%w: countmin query needs ?item=", ErrBadParams)
	}
	return map[string]any{
		"estimate": e.cm.Estimate([]byte(item)),
		"n":        e.cm.N(),
	}, nil
}

func (e *cmEntry) Merge(data []byte) error {
	var peer frequency.CountMin
	if err := peer.UnmarshalBinary(data); err != nil {
		return err
	}
	return e.cm.Merge(&peer)
}

func (e *cmEntry) Snapshot() ([]byte, error) { return e.cm.MarshalBinary() }

func (e *cmEntry) SizeBytes() int { return e.cm.SizeBytes() }

func lastTab(b []byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == '\t' {
			return i
		}
	}
	return -1
}

// errBadWeight is the shared parse failure; the caller wraps it with
// the offending bytes.
var errBadWeight = errors.New("expect decimal uint64")

// parseWeight decodes a decimal uint64 from b without allocating — the
// strconv.ParseUint(string(b), …) it replaces copied every weight
// suffix onto the heap once per ingested line.
func parseWeight(b []byte) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, errBadWeight
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadWeight
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, errBadWeight
		}
		v = v*10 + d
	}
	return v, nil
}

// lockedEntry is the shared shape of the mutex-guarded types: the
// registry stripe finds the entry without contention, then the entry
// mutex serializes sketch access per batch, not per item.
type bloomEntry struct {
	mu sync.Mutex
	f  *bloom.Filter
}

func (e *bloomEntry) Type() string { return "bloom" }

func (e *bloomEntry) Add(items [][]byte) error {
	e.mu.Lock()
	e.f.AddBatch(items)
	e.mu.Unlock()
	return nil
}

func (e *bloomEntry) Query(params url.Values) (map[string]any, error) {
	item := params.Get("item")
	if item == "" {
		return nil, fmt.Errorf("%w: bloom query needs ?item=", ErrBadParams)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return map[string]any{
		"contains":   e.f.Contains([]byte(item)),
		"fill_ratio": e.f.FillRatio(),
	}, nil
}

func (e *bloomEntry) Merge(data []byte) error {
	var peer bloom.Filter
	if err := peer.UnmarshalBinary(data); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f.Merge(&peer)
}

func (e *bloomEntry) Snapshot() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f.MarshalBinary()
}

func (e *bloomEntry) SizeBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f.SizeBytes()
}

type kllEntry struct {
	mu sync.Mutex
	s  *quantile.KLL
}

func (e *kllEntry) Type() string { return "kll" }

func (e *kllEntry) Add(items [][]byte) error {
	// Parse the whole batch before taking the lock so a bad line
	// rejects the batch without a partial ingest.
	vals := make([]float64, len(items))
	for i, item := range items {
		v, err := strconv.ParseFloat(string(item), 64)
		if err != nil {
			return fmt.Errorf("%w: kll value %q: %v", ErrBadParams, item, err)
		}
		vals[i] = v
	}
	e.mu.Lock()
	for _, v := range vals {
		e.s.Add(v)
	}
	e.mu.Unlock()
	return nil
}

func (e *kllEntry) Query(params url.Values) (map[string]any, error) {
	q := 0.5
	if qs := params.Get("q"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("%w: quantile %q out of [0,1]", ErrBadParams, qs)
		}
		q = v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return map[string]any{
		"q":        q,
		"quantile": e.s.Quantile(q),
		"n":        e.s.N(),
		"min":      e.s.Min(),
		"max":      e.s.Max(),
	}, nil
}

func (e *kllEntry) Merge(data []byte) error {
	var peer quantile.KLL
	if err := peer.UnmarshalBinary(data); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Merge(&peer)
}

func (e *kllEntry) Snapshot() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.MarshalBinary()
}

func (e *kllEntry) SizeBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.SizeBytes()
}

type thetaEntry struct {
	mu sync.Mutex
	s  *cardinality.Theta
}

func (e *thetaEntry) Type() string { return "theta" }

func (e *thetaEntry) Add(items [][]byte) error {
	e.mu.Lock()
	for _, item := range items {
		e.s.Add(item)
	}
	e.mu.Unlock()
	return nil
}

func (e *thetaEntry) Query(url.Values) (map[string]any, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return map[string]any{
		"estimate": e.s.Estimate(),
		"retained": e.s.Retained(),
	}, nil
}

func (e *thetaEntry) Merge(data []byte) error {
	var peer cardinality.Theta
	if err := peer.UnmarshalBinary(data); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Merge(&peer)
}

func (e *thetaEntry) Snapshot() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.MarshalBinary()
}

func (e *thetaEntry) SizeBytes() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.SizeBytes()
}
