package server

import (
	"errors"
	"net/http"
	"strings"

	"repro/internal/adtech"
	"repro/internal/core"
)

// handleOverlap serves GET /v1/t/{tenant}/overlap?sketches=a,b — the
// audience-overlap (inclusion-exclusion) estimate across two of the
// tenant's cardinality sketches. Cross-tenant names 404 like any other
// lookup; mixed families 409.
func (s *Server) handleOverlap(w http.ResponseWriter, r *http.Request) {
	ts := s.tenant(tenantOf(r))
	if ts == nil {
		httpError(w, http.StatusNotFound, "%v", ErrNotFound)
		return
	}
	names := strings.Split(r.URL.Query().Get("sketches"), ",")
	if len(names) != 2 || names[0] == "" || names[1] == "" {
		httpError(w, http.StatusBadRequest, "overlap: ?sketches=a,b names exactly two sketches")
		return
	}
	envs := make([][]byte, 2)
	for i, name := range names {
		name = strings.TrimSpace(name)
		names[i] = name
		ne, err := ts.reg.get(name)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		env, err := ne.entry.Snapshot()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		envs[i] = env
	}
	est, err := adtech.OverlapFromEnvelopes(envs[0], envs[1])
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrIncompatible) {
			status = http.StatusConflict
		}
		httpError(w, status, "%v", err)
		return
	}
	ts.queries.Inc()
	s.ops.Queries.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":   ts.name,
		"sketches": names,
		"overlap":  est,
	})
}
