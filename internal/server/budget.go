package server

import (
	"net/http"
	"strconv"
	"time"
)

// QueryBudget caps adaptive reads per (tenant, sketch): each sketch
// gets Queries estimate reads per Interval, refilled lazily at the
// window boundary. The guard is the server-side complement of the
// in-sketch defenses in internal/robust — the universal adaptive
// attack needs an estimate read per probe, so bounding reads per
// sketch bounds what any adversary can learn about one sketch's
// randomness regardless of family. Exhaustion answers 429 with a
// Retry-After naming the window remainder. Estimate reads (/query)
// and state reads (/snapshot) are gated — a snapshot reveals strictly
// more than an estimate — while ingest, merges, and listings never
// are. The zero value disables the guard.
type QueryBudget struct {
	// Queries per window per sketch; <= 0 disables the guard.
	Queries int64
	// Interval is the refill window (default one minute).
	Interval time.Duration
}

// SetQueryBudget installs the per-sketch query budget. Call before
// serving traffic.
func (s *Server) SetQueryBudget(qb QueryBudget) {
	if qb.Interval <= 0 {
		qb.Interval = time.Minute
	}
	s.qb = qb
}

// allowSketchQuery spends one token from the sketch's budget window.
// Hot path: two atomic loads and an add when the window is current —
// no allocation, no lock. The refill CAS is best-effort under races
// (two racing refills at a boundary cannot over-grant more than one
// window's tokens).
func (s *Server) allowSketchQuery(ne *namedEntry, now int64) (retryAfterS int64, ok bool) {
	q := s.qb
	if q.Queries <= 0 {
		return 0, true
	}
	interval := int64(q.Interval)
	win := ne.qbWindow.Load()
	if now-win >= interval {
		if ne.qbWindow.CompareAndSwap(win, now) {
			ne.qbTokens.Store(q.Queries)
		}
		win = ne.qbWindow.Load()
	}
	if ne.qbTokens.Add(-1) >= 0 {
		return 0, true
	}
	return retryAfterSeconds(win + interval - now), false
}

// allowTenantQuery spends one token from the tenant's queries-per-
// second window (TenantQuota.MaxQPS). Same lazy-refill shape as the
// sketch budget, over a fixed one-second window.
func (s *Server) allowTenantQuery(ts *tenantState, now int64) (retryAfterS int64, ok bool) {
	maxQPS := int64(s.quota.MaxQPS)
	if maxQPS <= 0 {
		return 0, true
	}
	const interval = int64(time.Second)
	win := ts.qpsWindow.Load()
	if now-win >= interval {
		if ts.qpsWindow.CompareAndSwap(win, now) {
			ts.qpsTokens.Store(maxQPS)
		}
		win = ts.qpsWindow.Load()
	}
	if ts.qpsTokens.Add(-1) >= 0 {
		return 0, true
	}
	return retryAfterSeconds(win + interval - now), false
}

// retryAfterSeconds converts a window remainder in nanoseconds to the
// whole-second Retry-After value, rounded up and never below 1 (a
// zero Retry-After invites an immediate retry of a still-exhausted
// bucket).
func retryAfterSeconds(nanos int64) int64 {
	if nanos <= 0 {
		return 1
	}
	secs := (nanos + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		return 1
	}
	return secs
}

// throttle answers a 429 with the standard Retry-After header — the
// contract client.StatusError parses and the coordinator passes
// through.
func throttle(w http.ResponseWriter, retryAfterS int64, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryAfterS, 10))
	httpError(w, http.StatusTooManyRequests, format, args...)
}

// guardRead applies the adaptive-read guards — the tenant QPS cap,
// then the per-sketch query budget — writing the 429 itself when a
// bucket is dry. Shared by /query and /snapshot; both read paths must
// be metered or the budget is a fence with an open gate.
func (s *Server) guardRead(w http.ResponseWriter, ts *tenantState, e *namedEntry) bool {
	if s.quota.MaxQPS <= 0 && s.qb.Queries <= 0 {
		return true
	}
	now := time.Now().UnixNano()
	if ra, allowed := s.allowTenantQuery(ts, now); !allowed {
		ts.throttled.Inc()
		throttle(w, ra, "tenant %q over %d queries/sec", ts.name, s.quota.MaxQPS)
		return false
	}
	if ra, allowed := s.allowSketchQuery(e, now); !allowed {
		ts.throttled.Inc()
		throttle(w, ra, "sketch %q query budget exhausted (%d per %s)",
			e.name, s.qb.Queries, s.qb.Interval)
		return false
	}
	return true
}
