package server

import (
	"encoding/json"
	"fmt"

	"repro/internal/durable"
)

// EnableDurability attaches a write-ahead log + snapshot store under
// dir: it recovers any previous state into the namespace (latest valid
// snapshot, then the WAL tail), then starts the background syncer so
// every subsequent create/ingest/merge/delete is logged off the hot
// path. Call before serving traffic; pair with CloseDurability on
// shutdown.
//
// With durability enabled, mutations on one sketch serialize on that
// sketch's WAL lock (apply + append + LSN bookkeeping must be atomic
// per sketch for snapshot consistency); cross-sketch concurrency and
// the durability-off fast path are unchanged.
func (s *Server) EnableDurability(dir string, opts durable.Options) (durable.RecoveryStats, error) {
	if s.dur != nil {
		return durable.RecoveryStats{}, fmt.Errorf("server: durability already enabled")
	}
	m, err := durable.Open(dir, opts)
	if err != nil {
		return durable.RecoveryStats{}, err
	}
	stats, err := m.Recover(&replayer{s: s})
	if err != nil {
		return stats, err
	}
	if err := m.Start(s.captureAll); err != nil {
		return stats, err
	}
	s.dur = m
	return stats, nil
}

// CloseDurability flushes the WAL, writes a final snapshot, and stops
// the durability subsystem. Stop the HTTP listener first so no handler
// is mid-append.
func (s *Server) CloseDurability() error {
	if s.dur == nil {
		return nil
	}
	err := s.dur.Close()
	s.dur = nil
	return err
}

// KillDurability simulates an unclean process death for recovery
// tests and experiments: the WAL is barriered to disk, then the
// durability subsystem is abandoned cold — syncer stopped mid-flight,
// no drain, no final snapshot. The server must not serve afterward;
// recovery is a fresh server over the same directory.
func (s *Server) KillDurability() error {
	if s.dur == nil {
		return nil
	}
	err := s.dur.Sync()
	s.dur.Kill()
	s.dur = nil
	return err
}

// DurabilityStatus reports the durability gauges (zero-valued Enabled
// false when the server runs in-memory only).
func (s *Server) DurabilityStatus() durable.Status {
	if s.dur == nil {
		return durable.Status{}
	}
	return s.dur.Status()
}

// captureAll is the snapshot capture callback: it serializes every
// live sketch under its WAL lock, pairing the bytes with the last LSN
// already folded into them. Sketches that fail to serialize are
// skipped (they remain recoverable only until the WAL truncates, which
// cannot happen for registry families — all of them marshal).
func (s *Server) captureAll() []durable.SketchSnap {
	var out []durable.SketchSnap
	for _, ts := range s.tenantsSnapshot() {
		for _, ne := range ts.reg.snapshot() {
			ne.walMu.Lock()
			data, err := ne.entry.Snapshot()
			lsn := ne.lastLSN
			ne.walMu.Unlock()
			if err != nil {
				continue
			}
			req, err := json.Marshal(ne.entry.CreateReq())
			if err != nil {
				continue
			}
			out = append(out, durable.SketchSnap{
				Tenant: ts.walName, Name: ne.name, Req: req, LastLSN: lsn, Data: data,
			})
		}
	}
	if out == nil {
		out = []durable.SketchSnap{}
	}
	return out
}

// replayer applies recovered state to the server namespace. Skip
// rules make recovery exact without any replay-time deduplication
// state: a snapshot at cut LSN M subsumes every create/delete at or
// below M (the namespace it captured already reflects them) and every
// ingest/merge at or below the owning sketch's LastLSN (the captured
// bytes already contain them).
type replayer struct {
	s       *Server
	snapLSN uint64
}

func (r *replayer) Begin(snapLSN uint64) error {
	r.snapLSN = snapLSN
	return nil
}

func (r *replayer) RestoreSketch(sn durable.SketchSnap) error {
	var req CreateRequest
	if err := json.Unmarshal(sn.Req, &req); err != nil {
		return fmt.Errorf("create request: %w", err)
	}
	entry, err := RestoreEntry(req, sn.Data)
	if err != nil {
		return err
	}
	ts := r.s.walTenantState(sn.Tenant)
	ne := &namedEntry{name: sn.Name, entry: entry, expiresAt: req.expiryUnix()}
	if err := ts.install(ne); err != nil {
		entry.Close()
		return err
	}
	ne.lastLSN = sn.LastLSN
	return nil
}

func (r *replayer) Replay(rec durable.Record) error {
	ts := r.s.walTenantState(rec.Tenant)
	switch rec.Op {
	case durable.OpCreate:
		if rec.LSN <= r.snapLSN {
			return nil // the snapshot namespace already reflects it
		}
		if _, err := ts.reg.get(rec.Name); err == nil {
			return nil // already restored from the snapshot
		}
		var req CreateRequest
		if err := json.Unmarshal(rec.Body, &req); err != nil {
			return err
		}
		entry, err := NewEntry(req)
		if err != nil {
			return err
		}
		ne := &namedEntry{name: rec.Name, entry: entry, expiresAt: req.expiryUnix()}
		if err := ts.install(ne); err != nil {
			entry.Close()
			return err
		}
		ne.lastLSN = rec.LSN
	case durable.OpIngest:
		ne, err := ts.reg.get(rec.Name)
		if err != nil {
			return nil // deleted later in the log, or never created: skip
		}
		if rec.LSN <= ne.lastLSN {
			return nil // already inside the recovered bytes
		}
		if err := ne.entry.Add(SplitBatch(rec.Body)); err != nil {
			return err
		}
		ne.lastLSN = rec.LSN
	case durable.OpMerge:
		ne, err := ts.reg.get(rec.Name)
		if err != nil {
			return nil
		}
		if rec.LSN <= ne.lastLSN {
			return nil
		}
		if err := ne.entry.Merge(rec.Body); err != nil {
			return err
		}
		ne.lastLSN = rec.LSN
	case durable.OpDelete:
		if rec.LSN <= r.snapLSN {
			return nil
		}
		if ne := ts.drop(rec.Name); ne != nil {
			ne.entry.Close()
		}
	case durable.OpGroupBy:
		return r.s.replayGroupBy(ts, rec)
	default:
		return fmt.Errorf("unknown WAL op %d", rec.Op)
	}
	return nil
}
