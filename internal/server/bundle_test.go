package server_test

import (
	"strconv"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/server"
)

// TestBundleMergeFanIn posts 8 disjoint HLL shards in one GSKB bundle
// and checks the server's estimate covers their union — the fan-in
// path that tree-merges outside the sketch lock.
func TestBundleMergeFanIn(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("reach", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
		t.Fatalf("create: %v", err)
	}
	const shards, perShard = 8, 5000
	envs := make([][]byte, shards)
	for s := 0; s < shards; s++ {
		h := cardinality.NewHLL(12, 1)
		for i := 0; i < perShard; i++ {
			h.Add([]byte("user-" + strconv.Itoa(s*perShard+i)))
		}
		env, err := h.MarshalBinary()
		if err != nil {
			t.Fatalf("shard %d marshal: %v", s, err)
		}
		envs[s] = env
	}
	if err := cl.MergeMany("reach", envs); err != nil {
		t.Fatalf("bundle merge: %v", err)
	}
	est, err := cl.Estimate("reach", nil)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if relErr := core.RelErr(est, shards*perShard); relErr > 0.1 {
		t.Errorf("estimate %.1f after bundle merge of %d items, rel err %.3f", est, shards*perShard, relErr)
	}
}

// TestBundleMergeRejections drives the malformed and mismatched bundle
// cases through the HTTP layer: corrupt framing and cross-type
// envelopes must fail without touching the sketch.
func TestBundleMergeRejections(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("reach", server.CreateRequest{Type: "hll", P: 12, Seed: 1}); err != nil {
		t.Fatalf("create: %v", err)
	}
	hllEnv, err := cardinality.NewHLL(12, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cmEnv, err := frequency.NewCountMin(1024, 4, 1).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"truncated header", []byte("GSKB\x02")},
		{"zero envelopes", server.EncodeBundle(nil)},
		{"short envelope payload", append(server.EncodeBundle([][]byte{hllEnv})[:12], 0xFF)},
		{"mixed types", server.EncodeBundle([][]byte{hllEnv, cmEnv})},
		{"trailing garbage", append(server.EncodeBundle([][]byte{hllEnv, hllEnv}), 1, 2, 3)},
	}
	for _, tc := range cases {
		if err := cl.Merge("reach", tc.body); err == nil {
			t.Errorf("%s: bundle merge succeeded, want error", tc.name)
		}
	}
	// A well-formed bundle of the wrong (but internally consistent)
	// type must 409 against the entry, same as a single envelope.
	if err := cl.Merge("reach", server.EncodeBundle([][]byte{cmEnv, cmEnv})); err == nil {
		t.Error("countmin bundle merged into hll entry")
	}
}

// TestEncodeBundleRoundTrip checks CombineBundle(EncodeBundle(x))
// equals the serial fold of x for a mergeable family.
func TestEncodeBundleRoundTrip(t *testing.T) {
	serial := cardinality.NewHLL(10, 7)
	envs := make([][]byte, 5)
	for s := range envs {
		h := cardinality.NewHLL(10, 7)
		for i := 0; i < 500; i++ {
			h.AddUint64(uint64(s*500 + i))
		}
		if err := serial.Merge(h); err != nil {
			t.Fatal(err)
		}
		env, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		envs[s] = env
	}
	combined, err := server.CombineBundle(server.EncodeBundle(envs))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(combined) != string(want) {
		t.Error("tree-combined bundle envelope differs from the serial fold's")
	}
}
