package server

// Internal tests for the allocation-free ingest path: Entry.Add's
// validate-then-apply batch semantics, a regression check that the
// whole per-batch loop stays at zero heap allocations, and the same
// guard for the registry's name-to-stripe hash.

import (
	"net/url"
	"strings"
	"testing"
)

func TestEntryAddRejectsBatchAtomically(t *testing.T) {
	entry, err := NewEntry(CreateRequest{Type: "countmin"})
	if err != nil {
		t.Fatal(err)
	}
	// The second line's weight is malformed: nothing from the batch may
	// land, including the valid first line.
	batch := [][]byte{[]byte("alpha\t5"), []byte("beta\tbogus"), []byte("gamma\t2")}
	if err := entry.Add(batch); err == nil {
		t.Fatal("Add with malformed weight: want error, got nil")
	}
	summary, err := entry.Query(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if n := summary["n"].(uint64); n != 0 {
		t.Fatalf("after rejected batch, n = %d, want 0 (no partial ingest)", n)
	}
	if err := entry.Add([][]byte{[]byte("alpha\t5"), []byte("alpha"), []byte("gamma\t2")}); err != nil {
		t.Fatal(err)
	}
	estimate := func(item string) uint64 {
		t.Helper()
		q, err := entry.Query(url.Values{"item": {item}})
		if err != nil {
			t.Fatal(err)
		}
		return q["estimate"].(uint64)
	}
	if got := estimate("alpha"); got != 6 {
		t.Errorf("Estimate(alpha) = %d, want 6 (5 weighted + 1 unweighted)", got)
	}
	if got := estimate("gamma"); got != 2 {
		t.Errorf("Estimate(gamma) = %d, want 2", got)
	}
}

func TestEntryAddZeroAlloc(t *testing.T) {
	entry, err := NewEntry(CreateRequest{Type: "countmin"})
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(strings.Repeat("some-item\t3\nplain-item\n", 64))
	items := make([][]byte, 0, 128)
	if n := testing.AllocsPerRun(50, func() {
		items = SplitBatchAppend(items[:0], body)
		if err := entry.Add(items); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("split+Add batch: %v allocs per batch, want 0", n)
	}
}

func TestStripeForZeroAlloc(t *testing.T) {
	r := newRegistry()
	names := []string{"a", "clickstream-uniques", strings.Repeat("x", 300)}
	for _, name := range names {
		name := name
		if n := testing.AllocsPerRun(100, func() {
			if r.stripeFor(name) == nil {
				t.Fatal("nil stripe")
			}
		}); n != 0 {
			t.Errorf("stripeFor(%q): %v allocs per lookup, want 0", name, n)
		}
	}
}
