package server

// Internal tests for the allocation-free ingest path: the no-alloc
// weight parser's accept/reject behavior, cmEntry.Add's
// validate-then-apply batch semantics, and a regression check that the
// whole per-batch loop stays at zero heap allocations.

import (
	"strconv"
	"strings"
	"testing"
)

func TestParseWeight(t *testing.T) {
	good := map[string]uint64{
		"0":                    0,
		"1":                    1,
		"42":                   42,
		"18446744073709551615": ^uint64(0),
	}
	for in, want := range good {
		got, err := parseWeight([]byte(in))
		if err != nil || got != want {
			t.Errorf("parseWeight(%q) = %d, %v; want %d, nil", in, got, err, want)
		}
	}
	bad := []string{
		"", "-1", "+1", " 1", "1 ", "1.5", "0x10", "abc",
		"18446744073709551616",  // max uint64 + 1
		"99999999999999999999",  // 20 digits, overflows
		"184467440737095516150", // 21 digits
	}
	for _, in := range bad {
		if got, err := parseWeight([]byte(in)); err == nil {
			t.Errorf("parseWeight(%q) = %d, nil; want error", in, got)
		}
	}
	// Cross-check against strconv over a spread of values.
	for _, v := range []uint64{0, 7, 1 << 20, 1 << 40, ^uint64(0) - 1} {
		s := strconv.FormatUint(v, 10)
		got, err := parseWeight([]byte(s))
		if err != nil || got != v {
			t.Errorf("parseWeight(%q) = %d, %v; want %d, nil", s, got, err, v)
		}
	}
}

func TestCMEntryAddRejectsBatchAtomically(t *testing.T) {
	entry, err := NewEntry(CreateRequest{Type: "countmin"})
	if err != nil {
		t.Fatal(err)
	}
	// The second line's weight is malformed: nothing from the batch may
	// land, including the valid first line.
	batch := [][]byte{[]byte("alpha\t5"), []byte("beta\tbogus"), []byte("gamma\t2")}
	if err := entry.Add(batch); err == nil {
		t.Fatal("Add with malformed weight: want error, got nil")
	}
	cm := entry.(*cmEntry).cm
	if n := cm.N(); n != 0 {
		t.Fatalf("after rejected batch, N() = %d, want 0 (no partial ingest)", n)
	}
	if err := entry.Add([][]byte{[]byte("alpha\t5"), []byte("alpha"), []byte("gamma\t2")}); err != nil {
		t.Fatal(err)
	}
	if got := cm.Estimate([]byte("alpha")); got != 6 {
		t.Errorf("Estimate(alpha) = %d, want 6 (5 weighted + 1 unweighted)", got)
	}
	if got := cm.Estimate([]byte("gamma")); got != 2 {
		t.Errorf("Estimate(gamma) = %d, want 2", got)
	}
}

func TestCMEntryAddZeroAlloc(t *testing.T) {
	entry, err := NewEntry(CreateRequest{Type: "countmin"})
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(strings.Repeat("some-item\t3\nplain-item\n", 64))
	items := make([][]byte, 0, 128)
	if n := testing.AllocsPerRun(50, func() {
		items = SplitBatchAppend(items[:0], body)
		if err := entry.Add(items); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("split+Add batch: %v allocs per batch, want 0", n)
	}
}
