package server

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// The query-budget guard is the server half of the adversarial-
// robustness story (internal/robust/attack): an attacker needs a long
// adaptive query stream, so the server meters reads (/query and
// /snapshot) per (tenant, sketch) and per tenant — and nothing else.
// Ingest, merges, and other sketches must never be collateral.

func budgetServer(t *testing.T, qb QueryBudget, quota TenantQuota) (*Server, *httptest.Server) {
	t.Helper()
	s := New()
	if qb.Queries > 0 {
		s.SetQueryBudget(qb)
	}
	s.SetTenantQuota(quota)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestQueryBudgetExhaustsTo429(t *testing.T) {
	_, ts := budgetServer(t, QueryBudget{Queries: 3, Interval: time.Hour}, TenantQuota{})
	mustDo(t, "POST", ts.URL+"/v1/sketch/guarded", `{"type":"hll","p":10}`)
	mustDo(t, "POST", ts.URL+"/v1/sketch/other", `{"type":"hll","p":10}`)
	mustDo(t, "POST", ts.URL+"/v1/sketch/guarded/add", "a\nb\nc")

	for i := 0; i < 3; i++ {
		mustDo(t, "GET", ts.URL+"/v1/sketch/guarded/query", "")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sketch/guarded/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("query #4: HTTP %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	// The budget is per sketch: a sibling sketch's reads are untouched,
	// and the throttled sketch still ingests.
	mustDo(t, "GET", ts.URL+"/v1/sketch/other/query", "")
	mustDo(t, "POST", ts.URL+"/v1/sketch/guarded/add", "d\ne")

	// Snapshots draw from the same budget — an unmetered state export
	// would let the attacker evaluate estimates offline.
	if code, _ := httpDo(t, "GET", ts.URL+"/v1/sketch/guarded/snapshot", ""); code != 429 {
		t.Fatalf("snapshot over budget: HTTP %d, want 429", code)
	}
	mustDo(t, "GET", ts.URL+"/v1/sketch/other/snapshot", "")
}

func TestQueryBudgetWindowRefills(t *testing.T) {
	_, ts := budgetServer(t, QueryBudget{Queries: 2, Interval: 50 * time.Millisecond}, TenantQuota{})
	mustDo(t, "POST", ts.URL+"/v1/sketch/s", `{"type":"hll","p":10}`)
	mustDo(t, "GET", ts.URL+"/v1/sketch/s/query", "")
	mustDo(t, "GET", ts.URL+"/v1/sketch/s/query", "")
	if code, _ := httpDo(t, "GET", ts.URL+"/v1/sketch/s/query", ""); code != 429 {
		t.Fatalf("over budget: HTTP %d, want 429", code)
	}
	time.Sleep(80 * time.Millisecond)
	mustDo(t, "GET", ts.URL+"/v1/sketch/s/query", "")
}

func TestTenantMaxQPS(t *testing.T) {
	_, ts := budgetServer(t, QueryBudget{}, TenantQuota{MaxQPS: 2})
	mustDo(t, "POST", ts.URL+"/v1/t/noisy/sketch/a", `{"type":"hll","p":10}`)
	mustDo(t, "POST", ts.URL+"/v1/t/noisy/sketch/b", `{"type":"hll","p":10}`)
	mustDo(t, "POST", ts.URL+"/v1/t/quiet/sketch/c", `{"type":"hll","p":10}`)

	// The cap spans the tenant's sketches: a+b together burn the 2/sec.
	mustDo(t, "GET", ts.URL+"/v1/t/noisy/sketch/a/query", "")
	mustDo(t, "GET", ts.URL+"/v1/t/noisy/sketch/b/query", "")
	code, _ := httpDo(t, "GET", ts.URL+"/v1/t/noisy/sketch/a/query", "")
	if code != 429 {
		t.Fatalf("over tenant QPS: HTTP %d, want 429", code)
	}

	// Another tenant is untouched; the throttled tenant still ingests.
	mustDo(t, "GET", ts.URL+"/v1/t/quiet/sketch/c/query", "")
	mustDo(t, "POST", ts.URL+"/v1/t/noisy/sketch/a/add", "still-flowing")

	// The refusal is visible on /v1/status.
	var st StatusResponse
	if err := json.Unmarshal(mustDo(t, "GET", ts.URL+"/v1/status", ""), &st); err != nil {
		t.Fatal(err)
	}
	var throttled uint64
	for _, row := range st.Tenants {
		if row.Tenant == "noisy" {
			throttled = row.Throttled
		}
	}
	if throttled == 0 {
		t.Error("throttled gauge not incremented for tenant noisy")
	}
}

func TestBudgetGuardZeroAlloc(t *testing.T) {
	s := New()
	s.SetQueryBudget(QueryBudget{Queries: 1 << 40, Interval: time.Hour})
	s.SetTenantQuota(TenantQuota{MaxQPS: 1 << 30})
	ts := newTenantState("alloc")
	ne := &namedEntry{}
	now := time.Now().UnixNano()
	if _, ok := s.allowSketchQuery(ne, now); !ok {
		t.Fatal("first sketch query refused")
	}
	if _, ok := s.allowTenantQuery(ts, now); !ok {
		t.Fatal("first tenant query refused")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.allowSketchQuery(ne, now)
		s.allowTenantQuery(ts, now)
	})
	if allocs != 0 {
		t.Errorf("budget-guard allow path allocates %.1f allocs/op, want 0", allocs)
	}
}
