package server_test

// Capability-gating tests: every type on GET /v1/types can be created,
// ingested, queried, and snapshotted over HTTP with zero per-type test
// code (batches are generated from the registry's advertised input
// kind); the gates themselves — non-servable create, non-mergeable
// merge, cross-type merge, seed mismatch — map to the right statuses.

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/server"
)

// batchFor renders a well-formed ingest batch for a registry input
// kind, valid under every type's default parameters.
func batchFor(k registry.InputKind) string {
	switch k {
	case registry.InputItems:
		return "alpha\nbeta\ngamma\n"
	case registry.InputWeightedItems:
		return "alpha\t3\nbeta\n"
	case registry.InputSignedItems:
		return "alpha\t-2\nbeta\t+4\ngamma\n"
	case registry.InputFloats:
		return "1.5\n2.25\n-0.5\n"
	case registry.InputUintValues:
		return "7\t2\n42\n"
	case registry.InputTurnstile:
		return "3\t5\n9\n"
	case registry.InputEvents:
		return "x\nx\nx\n"
	case registry.InputEdges:
		return "0\t1\n2\t3\n"
	case registry.InputWeightedFloatItems:
		return "alpha\t1.5\nbeta\n"
	}
	return ""
}

// TestEveryServableTypeOverHTTP walks the live type catalog and runs
// the full lifecycle for each entry. The handler path has no per-type
// code, and neither does this test: the catalog itself says how to
// construct input.
func TestEveryServableTypeOverHTTP(t *testing.T) {
	_, cl := newTestServer(t)
	types, err := cl.Types()
	if err != nil {
		t.Fatalf("GET /v1/types: %v", err)
	}
	if len(types) < 15 {
		t.Fatalf("catalog lists %d types, want at least 15", len(types))
	}
	for _, ti := range types {
		ti := ti
		t.Run(ti.Name, func(t *testing.T) {
			d, ok := registry.Lookup(ti.Name)
			if !ok {
				t.Fatalf("catalog type %q not in registry", ti.Name)
			}
			name := "cap-" + ti.Name
			if err := cl.Create(name, server.CreateRequest{Type: ti.Name}); err != nil {
				t.Fatalf("create: %v", err)
			}
			if err := cl.AddBatch(name, []byte(batchFor(d.Input))); err != nil {
				t.Fatalf("add: %v", err)
			}
			if _, err := cl.Query(name, nil); err != nil {
				t.Fatalf("summary query: %v", err)
			}
			snap, err := cl.Snapshot(name)
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			_, dd, err := registry.Decode(snap)
			if err != nil {
				t.Fatalf("snapshot does not decode generically: %v", err)
			}
			if dd.Name != ti.Name {
				t.Fatalf("snapshot decodes as %q, want %q", dd.Name, ti.Name)
			}
			if ti.Mergeable {
				// Self-merge: a sketch's own snapshot is always compatible.
				if err := cl.Merge(name, snap); err != nil {
					t.Fatalf("self-merge: %v", err)
				}
			} else {
				// The merge gate must answer 405, not 400 or 500.
				if err := cl.Merge(name, snap); err == nil || !strings.Contains(err.Error(), "405") {
					t.Fatalf("merge into non-mergeable %s: %v, want HTTP 405", ti.Name, err)
				}
			}
		})
	}
}

func TestMergeGates(t *testing.T) {
	ts, cl := newTestServer(t)
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Cross-type: a kll envelope into a theta sketch. Both are valid
	// mergeable types; the payload is well-formed, so this is a 409
	// conflict, not a 400.
	if err := cl.Create("t", server.CreateRequest{Type: "theta"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("q", server.CreateRequest{Type: "kll"}); err != nil {
		t.Fatal(err)
	}
	if err := cl.AddBatch("q", []byte("1.0\n2.0\n")); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot("q")
	if err != nil {
		t.Fatal(err)
	}
	if code := post("/v1/sketch/t/merge", string(snap)); code != http.StatusConflict {
		t.Errorf("cross-type merge: %d, want 409", code)
	}

	// Same type, different seed: hashes disagree, so the sketch itself
	// reports core.ErrIncompatible — also a 409.
	if err := cl.Create("h", server.CreateRequest{Type: "hll", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	peer := cardinality.NewHLL(14, 2)
	peer.Add([]byte("x"))
	env, _ := peer.MarshalBinary()
	if code := post("/v1/sketch/h/merge", string(env)); code != http.StatusConflict {
		t.Errorf("seed-mismatch merge: %d, want 409", code)
	}

	// A retired wire tag decodes to a corrupt-payload error: 400.
	retired := string([]byte{'G', 'S', 'K', '1', core.TagL0Sampler, 1})
	if code := post("/v1/sketch/t/merge", retired); code != http.StatusBadRequest {
		t.Errorf("retired-tag merge: %d, want 400", code)
	}
}

// TestNonServableCreate pins the create gate: simhash decodes and
// inspects but has no streaming ingest, so creating one must 400.
func TestNonServableCreate(t *testing.T) {
	_, cl := newTestServer(t)
	err := cl.Create("sh", server.CreateRequest{Type: "simhash"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("create simhash: %v, want HTTP 400", err)
	}
}

// TestCreateWithParams exercises the schema-addressed Params map,
// including rejection of unknown names.
func TestCreateWithParams(t *testing.T) {
	_, cl := newTestServer(t)
	if err := cl.Create("g", server.CreateRequest{
		Type:   "gk",
		Params: map[string]float64{"eps": 0.001},
	}); err != nil {
		t.Fatalf("create gk with eps: %v", err)
	}
	err := cl.Create("g2", server.CreateRequest{
		Type:   "gk",
		Params: map[string]float64{"nope": 1},
	})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("create with unknown param: %v, want HTTP 400", err)
	}
}
