package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/durable"
)

// Group-by ingest (Gigascope-style GROUP BY over a stream): one POST
// fans an event batch into a sketch per group, creating missing group
// sketches on the fly from a shared CreateRequest template, and logs
// the whole fan-out as ONE WAL record. Body lines are
//
//	group<TAB>item[<TAB>weight...]
//
// — the first tab splits the group key from the normal ingest line the
// group's sketch receives. The sketch for group g is named Prefix+g.
//
// Query parameters: type (required), prefix, seed, ttl_s, and the
// CreateRequest convenience fields (p, shards, width, depth, m, k, n,
// fpr) as numbers; param.<name>=<v> addresses the full descriptor
// schema. The WAL record body is the JSON GroupBySpec line + '\n' +
// the raw batch, so replay re-runs the same fan-out deterministically
// (group keys are applied in sorted order on both paths).
type GroupBySpec struct {
	Create CreateRequest `json:"create"`
	Prefix string        `json:"prefix,omitempty"`
}

// groupSpecFromQuery builds the group-by template from URL parameters.
func groupSpecFromQuery(q url.Values) (GroupBySpec, error) {
	var spec GroupBySpec
	var err error
	spec.Prefix = q.Get("prefix")
	c := &spec.Create
	c.Type = q.Get("type")
	if c.Type == "" {
		return spec, fmt.Errorf("groupby: ?type= is required")
	}
	num := func(key string) float64 {
		v := q.Get(key)
		if v == "" || err != nil {
			return 0
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil {
			err = fmt.Errorf("groupby: bad %s=%q", key, v)
		}
		return f
	}
	c.Seed = uint64(num("seed"))
	c.P = uint8(num("p"))
	c.Shards = int(num("shards"))
	c.Width = int(num("width"))
	c.Depth = int(num("depth"))
	c.M = uint64(num("m"))
	c.K = int(num("k"))
	c.NItems = uint64(num("n"))
	c.FPR = num("fpr")
	c.TTLSeconds = int64(num("ttl_s"))
	for key := range q {
		name, ok := strings.CutPrefix(key, "param.")
		if !ok {
			continue
		}
		if c.Params == nil {
			c.Params = map[string]float64{}
		}
		c.Params[name] = num(key)
	}
	return spec, err
}

// splitGroups parses a group-by batch into per-group item lists, group
// keys sorted (the canonical apply order). The item slices alias body.
func splitGroups(body []byte) (groups map[string][][]byte, names []string, total int, err error) {
	groups = map[string][][]byte{}
	for _, line := range SplitBatch(body) {
		tab := bytes.IndexByte(line, '\t')
		if tab <= 0 {
			return nil, nil, 0, fmt.Errorf("groupby: line %d missing group<TAB>item", total+1)
		}
		g := string(line[:tab])
		groups[g] = append(groups[g], line[tab+1:])
		total++
	}
	names = make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return groups, names, total, nil
}

// groupEntries resolves (creating as needed) the sketch entry for each
// sorted group key. Created entries carry the template's TTL and are
// installed with gauges updated; they are persisted by the OpGroupBy
// record itself, not individual creates.
func groupEntries(ts *tenantState, spec GroupBySpec, names []string) (entries []*namedEntry, created int, err error) {
	entries = make([]*namedEntry, 0, len(names))
	for _, g := range names {
		full := spec.Prefix + g
		ne, gerr := ts.reg.get(full)
		if gerr != nil {
			entry, nerr := NewEntry(spec.Create)
			if nerr != nil {
				return nil, created, nerr
			}
			ne = &namedEntry{name: full, entry: entry, expiresAt: spec.Create.expiryUnix()}
			if ierr := ts.install(ne); ierr != nil {
				entry.Close() // lost a create race: use the winner
				if ne, gerr = ts.reg.get(full); gerr != nil {
					return nil, created, ierr
				}
			} else {
				created++
			}
		}
		entries = append(entries, ne)
	}
	return entries, created, nil
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	if !validTenantName(tenant) {
		httpError(w, http.StatusBadRequest, "invalid tenant name %q", tenant)
		return
	}
	spec, err := groupSpecFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Create.TTLSeconds > 0 && spec.Create.CreatedUnix == 0 {
		spec.Create.CreatedUnix = time.Now().Unix()
	}
	// Under -salt-seeds a seedless template derives its seed from
	// (tenant, prefix): every group sketch of one fan-out family shares
	// a hash function (they must — one template, one WAL record), but
	// families and tenants stop sharing randomness with each other. The
	// stamped spec is what the WAL record carries, so replay recreates
	// identical seeds.
	s.applySaltSeed(tenant, "groupby:"+spec.Prefix, &spec.Create)
	// Validate the template once up front so a bad spec rejects the
	// batch before any group sketch exists.
	probe, err := NewEntry(spec.Create)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	probe.Close()

	body, release, ok := s.readBody(w, r)
	if !ok {
		return
	}
	defer release()
	groups, names, total, err := splitGroups(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if total == 0 {
		httpError(w, http.StatusBadRequest, "groupby: empty batch")
		return
	}

	ts := s.tenantOrCreate(tenant)
	newGroups := 0
	for _, g := range names {
		if _, gerr := ts.reg.get(spec.Prefix + g); gerr != nil {
			newGroups++
		}
	}
	if err := s.admitCreate(ts, newGroups); err != nil {
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}

	var walBody []byte
	if s.dur != nil {
		specJSON, merr := json.Marshal(spec)
		if merr != nil {
			httpError(w, http.StatusBadRequest, "%v", merr)
			return
		}
		walBody = make([]byte, 0, len(specJSON)+1+len(body))
		walBody = append(append(append(walBody, specJSON...), '\n'), body...)
	}

	entries, created, err := groupEntries(ts, spec, names)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Apply every group, then log ONE record covering the whole call.
	// All touched WAL locks are taken in sorted-name order (concurrent
	// group-bys take the same order; single-sketch paths hold one lock
	// at a time — no cycles), so apply + one append + LSN bookkeeping
	// is atomic across the batch exactly as it is per sketch on the
	// single-name paths. On a mid-batch apply error the record is still
	// logged: replay applies groups in the same sorted order and stops
	// at the same deterministic failure, keeping recovery byte-exact.
	var applied uint64
	var applyErr error
	appliedThrough := -1
	if s.dur != nil {
		for _, ne := range entries {
			ne.walMu.Lock()
		}
		for i, ne := range entries {
			if aerr := ne.entry.Add(groups[names[i]]); aerr != nil {
				applyErr = fmt.Errorf("group %q: %w", names[i], aerr)
				break
			}
			ne.adds.Add(uint64(len(groups[names[i]])))
			applied += uint64(len(groups[names[i]]))
			appliedThrough = i
		}
		lsn := s.dur.Append(durable.OpGroupBy, ts.walName, spec.Prefix, walBody)
		for i := 0; i <= appliedThrough; i++ {
			entries[i].lastLSN = lsn
		}
		for _, ne := range entries {
			ne.walMu.Unlock()
		}
	} else {
		for i, ne := range entries {
			if aerr := ne.entry.Add(groups[names[i]]); aerr != nil {
				applyErr = fmt.Errorf("group %q: %w", names[i], aerr)
				break
			}
			ne.adds.Add(uint64(len(groups[names[i]])))
			applied += uint64(len(groups[names[i]]))
		}
	}
	ts.adds.Add(applied)
	s.ops.Adds.Add(applied)
	s.ops.AddBatches.Inc()
	s.ops.BatchBytes.Add(uint64(len(body)))
	if applyErr != nil {
		httpError(w, http.StatusBadRequest, "%v (groups before it were applied and logged)", applyErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant":  tenant,
		"groups":  len(names),
		"created": created,
		"added":   applied,
	})
}

// replayGroupBy re-runs a logged group-by fan-out during recovery:
// recreate missing group sketches from the embedded template, apply
// groups in sorted order, and skip any group whose sketch already
// contains this record (snapshot-restored with LastLSN >= rec.LSN).
// An apply error stops the fan-out at the same group the live path
// stopped at — the error is surfaced so recovery logs it, and the
// prior groups' state stands, matching the pre-crash server.
func (s *Server) replayGroupBy(ts *tenantState, rec durable.Record) error {
	nl := bytes.IndexByte(rec.Body, '\n')
	if nl < 0 {
		return fmt.Errorf("groupby record: missing spec line")
	}
	var spec GroupBySpec
	if err := json.Unmarshal(rec.Body[:nl], &spec); err != nil {
		return fmt.Errorf("groupby spec: %w", err)
	}
	groups, names, _, err := splitGroups(rec.Body[nl+1:])
	if err != nil {
		return err
	}
	for _, g := range names {
		full := spec.Prefix + g
		ne, gerr := ts.reg.get(full)
		if gerr != nil {
			entry, nerr := NewEntry(spec.Create)
			if nerr != nil {
				return nerr
			}
			ne = &namedEntry{name: full, entry: entry, expiresAt: spec.Create.expiryUnix()}
			if ierr := ts.install(ne); ierr != nil {
				entry.Close()
				return ierr
			}
		} else if rec.LSN <= ne.lastLSN {
			continue
		}
		if aerr := ne.entry.Add(groups[g]); aerr != nil {
			return fmt.Errorf("group %q: %w", g, aerr)
		}
		ne.lastLSN = rec.LSN
	}
	return nil
}
