package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
)

// DefaultTenant is the namespace behind the legacy /v1/sketch/... API:
// requests that name no tenant (neither a /v1/t/{tenant}/ route nor an
// X-Sketch-Tenant header) land here, so a pre-multi-tenant client sees
// exactly the old single-namespace server. In the WAL and snapshots
// the default tenant is encoded as the empty string, which is also
// what every version-1 record decodes to — old logs replay into it.
const DefaultTenant = "default"

// TenantHeader is the header alternative to the /v1/t/{tenant}/ route
// prefix, for clients that want tenant scoping without new URLs.
const TenantHeader = "X-Sketch-Tenant"

// TenantQuota caps one tenant's footprint. Zero fields are unlimited.
// Enforcement returns 429 on breach: creates count sketches and
// resident bytes; ingest checks resident bytes only (one atomic load,
// so the zero-allocation hot path keeps its shape). Resident bytes are
// refreshed on statsz reads and reaper sweeps, so enforcement lags
// growth by at most one sweep interval.
type TenantQuota struct {
	MaxSketches int   `json:"max_sketches,omitempty"`
	MaxBytes    int64 `json:"max_bytes,omitempty"`

	// MaxQPS caps the tenant's reads per second (429 over the cap,
	// with Retry-After). Only the adaptive-read surface — /query and
	// /snapshot — is gated: ingest, merges, and listings are never
	// rate-limited, so a throttled tenant keeps writing.
	MaxQPS int `json:"max_qps,omitempty"`
}

// tenantState is one tenant's slice of the server: its own striped
// sketch registry plus the gauges the quota checks and /v1/status
// read. walName is what WAL records carry — empty for the default
// tenant so default-tenant records stay byte-compatible with the
// single-tenant format's semantics.
type tenantState struct {
	name    string
	walName string
	reg     *registry

	sketches  atomic.Int64
	resident  atomic.Int64
	adds      core.Counter
	queries   core.Counter
	merges    core.Counter
	evictions core.Counter
	throttled core.Counter // queries refused by the QPS cap or a sketch budget

	// qpsTokens/qpsWindow are the tenant's queries-per-second bucket
	// (TenantQuota.MaxQPS), refilled lazily by allowTenantQuery.
	qpsTokens atomic.Int64
	qpsWindow atomic.Int64
}

func newTenantState(name string) *tenantState {
	ts := &tenantState{name: name, reg: newRegistry()}
	if name != DefaultTenant {
		ts.walName = name
	}
	return ts
}

// install publishes a fully-built entry (expiry included, so the
// reaper never sees a half-initialized row) and bumps the gauges.
func (ts *tenantState) install(ne *namedEntry) error {
	ne.bytes.Store(int64(ne.entry.SizeBytes()))
	if err := ts.reg.create(ne); err != nil {
		return err
	}
	ts.sketches.Add(1)
	ts.resident.Add(ne.bytes.Load())
	return nil
}

// drop removes a sketch and unwinds its gauges. The caller closes the
// returned entry.
func (ts *tenantState) drop(name string) *namedEntry {
	ne := ts.reg.remove(name)
	if ne == nil {
		return nil
	}
	ts.sketches.Add(-1)
	ts.resident.Add(-ne.bytes.Load())
	return ne
}

// refreshResident re-measures every live sketch and folds the deltas
// into the resident-bytes gauge. Runs off the hot path (statsz reads,
// reaper sweeps).
func (ts *tenantState) refreshResident() {
	for _, ne := range ts.reg.snapshot() {
		now := int64(ne.entry.SizeBytes())
		old := ne.bytes.Swap(now)
		ts.resident.Add(now - old)
	}
}

// TenantStat is one tenant's gauge row on /v1/status and /debug/statsz.
type TenantStat struct {
	Tenant        string `json:"tenant"`
	Sketches      int64  `json:"sketches"`
	ResidentBytes int64  `json:"resident_bytes"`
	Adds          uint64 `json:"adds"`
	Queries       uint64 `json:"queries"`
	Merges        uint64 `json:"merges"`
	Evictions     uint64 `json:"evictions"`
	Throttled     uint64 `json:"throttled"`
}

func (ts *tenantState) stat() TenantStat {
	return TenantStat{
		Tenant:        ts.name,
		Sketches:      ts.sketches.Load(),
		ResidentBytes: ts.resident.Load(),
		Adds:          ts.adds.Load(),
		Queries:       ts.queries.Load(),
		Merges:        ts.merges.Load(),
		Evictions:     ts.evictions.Load(),
		Throttled:     ts.throttled.Load(),
	}
}

// tenantOf resolves the request's namespace: the /v1/t/{tenant}/ route
// wins, then the X-Sketch-Tenant header, then the default tenant.
// Every path here is allocation-free.
func tenantOf(r *http.Request) string {
	if t := r.PathValue("tenant"); t != "" {
		return t
	}
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// validTenantName gates namespace creation (lookups just miss). Names
// must be short and URL/WAL-clean: letters, digits, '.', '_', '-'.
func validTenantName(t string) bool {
	if t == "" || len(t) > 128 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// tenant returns the named tenant's state, or nil if the namespace has
// never been created into.
func (s *Server) tenant(name string) *tenantState {
	s.tmu.RLock()
	ts := s.tenants[name]
	s.tmu.RUnlock()
	return ts
}

// tenantOrCreate returns the tenant's state, materializing the
// namespace on first use. Tenants are implicit: the first create into
// a namespace brings it into being (its history in the WAL does the
// same on replay).
func (s *Server) tenantOrCreate(name string) *tenantState {
	if ts := s.tenant(name); ts != nil {
		return ts
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if ts := s.tenants[name]; ts != nil {
		return ts
	}
	ts := newTenantState(name)
	s.tenants[name] = ts
	return ts
}

// walTenantState resolves a WAL record's tenant field (empty = default)
// during replay, creating the namespace as needed.
func (s *Server) walTenantState(walTenant string) *tenantState {
	if walTenant == "" {
		return s.tenantOrCreate(DefaultTenant)
	}
	return s.tenantOrCreate(walTenant)
}

// tenantsSnapshot returns every tenant state sorted by name.
func (s *Server) tenantsSnapshot() []*tenantState {
	s.tmu.RLock()
	out := make([]*tenantState, 0, len(s.tenants))
	for _, ts := range s.tenants {
		out = append(out, ts)
	}
	s.tmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SetTenantQuota installs the per-tenant quota every namespace is held
// to (the zero quota is unlimited). Call before serving traffic.
func (s *Server) SetTenantQuota(q TenantQuota) { s.quota = q }

// admitCreate applies the create-side quota: sketch count and resident
// bytes. Best-effort under concurrency (two racing creates at the
// boundary may both pass); the gauges converge immediately after.
func (s *Server) admitCreate(ts *tenantState, adding int) error {
	q := s.quota
	if q.MaxSketches > 0 && ts.sketches.Load()+int64(adding) > int64(q.MaxSketches) {
		return fmt.Errorf("tenant %q over sketch quota (%d)", ts.name, q.MaxSketches)
	}
	if q.MaxBytes > 0 && ts.resident.Load() > q.MaxBytes {
		return fmt.Errorf("tenant %q over resident-byte quota (%d)", ts.name, q.MaxBytes)
	}
	return nil
}

// overByteQuota is the ingest-side check: one atomic load, preserving
// the allocation-free hot path.
func (s *Server) overByteQuota(ts *tenantState) bool {
	q := s.quota
	return q.MaxBytes > 0 && ts.resident.Load() > q.MaxBytes
}

// SweepExpired evicts every sketch whose TTL has elapsed at now,
// across all tenants, and returns how many it evicted. Each eviction
// is WAL-logged as a delete, so a post-kill-9 recovery replays the
// eviction instead of resurrecting the sketch — eviction survives
// crashes byte-identically. Exported so tests and experiments can
// drive deterministic sweeps; the background reaper calls it on a
// timer.
func (s *Server) SweepExpired(now time.Time) int {
	nowUnix := now.Unix()
	evicted := 0
	for _, ts := range s.tenantsSnapshot() {
		ts.refreshResident()
		for _, ne := range ts.reg.snapshot() {
			if ne.expiresAt == 0 || ne.expiresAt > nowUnix {
				continue
			}
			got := ts.drop(ne.name)
			if got == nil {
				continue // raced with an explicit delete
			}
			got.entry.Close()
			ts.evictions.Inc()
			if s.dur != nil {
				s.dur.Append(durable.OpDelete, ts.walName, got.name, nil)
			}
			evicted++
		}
	}
	return evicted
}

// StartReaper launches the background TTL reaper, sweeping every
// interval. No-op for interval <= 0. Pair with StopReaper on shutdown.
func (s *Server) StartReaper(interval time.Duration) {
	if interval <= 0 || s.reaperStop != nil {
		return
	}
	stop := make(chan struct{})
	s.reaperStop = stop
	s.reaperWG.Add(1)
	go func() {
		defer s.reaperWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.SweepExpired(time.Now())
			case <-stop:
				return
			}
		}
	}()
}

// StopReaper stops the background reaper and waits for any in-flight
// sweep to finish. Call before CloseDurability so the reaper cannot
// append to a closed WAL.
func (s *Server) StopReaper() {
	if s.reaperStop == nil {
		return
	}
	close(s.reaperStop)
	s.reaperWG.Wait()
	s.reaperStop = nil
}
