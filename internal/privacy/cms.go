package privacy

import (
	"math"

	"repro/internal/hashx"
	"repro/internal/randx"
)

// PrivateCMS is the client/server frequency-estimation scheme the paper
// attributes to Apple's differential-privacy deployment: "taking a
// Count-Min sketch of a sparse input and applying randomized response
// to each entry". Each client picks one random sketch row, one-hot
// encodes its value into that row's bucket as a ±1 vector, flips each
// entry with the randomized-response probability, and submits the noisy
// vector; the server accumulates them into a Count-Mean sketch and
// de-biases point queries.
type PrivateCMS struct {
	width, depth int
	eps          float64
	flipP        float64 // per-entry flip probability
	seed         uint64
	counts       [][]float64
	n            int
	rows         []*hashx.KWise
}

// NewPrivateCMS creates a server-side aggregator with the given sketch
// shape and per-report privacy budget eps.
func NewPrivateCMS(width, depth int, eps float64, seed uint64) *PrivateCMS {
	if width < 2 || depth < 1 {
		panic("privacy: CMS requires width >= 2, depth >= 1")
	}
	if eps <= 0 {
		panic("privacy: eps must be positive")
	}
	counts := make([][]float64, depth)
	for i := range counts {
		counts[i] = make([]float64, width)
	}
	rowSeeds := hashx.SeedSequence(seed, depth)
	rows := make([]*hashx.KWise, depth)
	for i := range rows {
		rows[i] = hashx.NewKWise(2, rowSeeds[i])
	}
	e := math.Exp(eps / 2)
	return &PrivateCMS{
		width: width, depth: depth, eps: eps,
		flipP: 1 / (1 + e),
		seed:  seed, counts: counts, rows: rows,
	}
}

// Report is a client's noisy submission: a chosen row and a ±1 vector.
type Report struct {
	Row    int
	Vector []float64
}

// EncodeClient produces the ε-DP report for value on a client.
func (s *PrivateCMS) EncodeClient(value string, clientSeed uint64) Report {
	rng := randx.New(clientSeed)
	row := rng.Intn(s.depth)
	h := hashx.XXHash64([]byte(value), s.seed)
	bucket := s.rows[row].HashRange(h, s.width)
	vec := make([]float64, s.width)
	for i := range vec {
		v := -1.0
		if i == bucket {
			v = 1.0
		}
		if rng.Float64() < s.flipP {
			v = -v
		}
		vec[i] = v
	}
	return Report{Row: row, Vector: vec}
}

// Absorb folds a client report into the server sketch, applying the
// standard de-biasing transform per entry.
func (s *PrivateCMS) Absorb(rep Report) {
	cEps := (math.Exp(s.eps/2) + 1) / (math.Exp(s.eps/2) - 1)
	for i, v := range rep.Vector {
		s.counts[rep.Row][i] += cEps/2*v + 0.5
	}
	s.n++
}

// Estimate returns the de-biased frequency estimate for value. In
// expectation each client adds exactly 1 to its bucket in its chosen
// row, so Σ_r M[r][h_r(d)] ≈ f_d + (n − f_d)/width; inverting gives the
// count-mean estimator (width/(width−1))·(Σ − n/width).
func (s *PrivateCMS) Estimate(value string) float64 {
	h := hashx.XXHash64([]byte(value), s.seed)
	var sum float64
	for r := 0; r < s.depth; r++ {
		sum += s.counts[r][s.rows[r].HashRange(h, s.width)]
	}
	w := float64(s.width)
	return w / (w - 1) * (sum - float64(s.n)/w)
}

// N returns the number of absorbed reports.
func (s *PrivateCMS) N() int { return s.n }

// Epsilon returns the per-report privacy budget.
func (s *PrivateCMS) Epsilon() float64 { return s.eps }
