// Package privacy implements the private-data-analysis layer the paper
// describes as the late-2010s motivation for sketching: randomized
// response (Warner 1965), Google's RAPPOR (Bloom filter + randomized
// response), Apple's count-mean sketch (Count-Min + randomized
// response), and the Laplace/Gaussian mechanisms of differential
// privacy applied to linear sketches.
//
// The paper's thesis — "compact representations formed by sketch
// algorithms tend to mix and concentrate the information from many
// individuals, making the perturbations due to privacy less disruptive"
// — is exactly what experiment E15 measures: estimation error as a
// function of the privacy budget ε across population sizes.
package privacy

import (
	"math"

	"repro/internal/randx"
)

// RandomizedResponse perturbs a single bit with the classic Warner
// mechanism: report truthfully with probability e^ε/(1+e^ε). The
// mechanism is ε-differentially private, and the aggregate frequency is
// recoverable by inverting the known flip probability.
type RandomizedResponse struct {
	pTruth float64
	eps    float64
	rng    *randx.RNG
}

// NewRandomizedResponse creates a mechanism with privacy budget eps.
func NewRandomizedResponse(eps float64, seed uint64) *RandomizedResponse {
	if eps <= 0 {
		panic("privacy: eps must be positive")
	}
	e := math.Exp(eps)
	return &RandomizedResponse{pTruth: e / (1 + e), eps: eps, rng: randx.New(seed)}
}

// Perturb returns the (possibly flipped) bit.
func (rr *RandomizedResponse) Perturb(bit bool) bool {
	if rr.rng.Float64() < rr.pTruth {
		return bit
	}
	return !bit
}

// PTruth returns the probability of answering truthfully.
func (rr *RandomizedResponse) PTruth() float64 { return rr.pTruth }

// Epsilon returns the privacy budget.
func (rr *RandomizedResponse) Epsilon() float64 { return rr.eps }

// Debias converts an observed count of positive reports out of n into
// an unbiased estimate of the true positive count: inverting
// E[observed] = true·p + (n−true)·(1−p).
func (rr *RandomizedResponse) Debias(observed, n float64) float64 {
	p := rr.pTruth
	return (observed - n*(1-p)) / (2*p - 1)
}

// LaplaceMechanism adds Laplace(sensitivity/ε) noise to a numeric
// query answer, the canonical ε-DP primitive.
type LaplaceMechanism struct {
	scale float64
	eps   float64
	rng   *randx.RNG
}

// NewLaplaceMechanism creates a mechanism for queries with the given L1
// sensitivity.
func NewLaplaceMechanism(eps, sensitivity float64, seed uint64) *LaplaceMechanism {
	if eps <= 0 || sensitivity <= 0 {
		panic("privacy: eps and sensitivity must be positive")
	}
	return &LaplaceMechanism{scale: sensitivity / eps, eps: eps, rng: randx.New(seed)}
}

// Release returns the noised value.
func (m *LaplaceMechanism) Release(trueValue float64) float64 {
	return trueValue + m.rng.Laplace(m.scale)
}

// Scale returns the noise scale b (standard deviation is b·√2).
func (m *LaplaceMechanism) Scale() float64 { return m.scale }

// GaussianMechanism adds N(0, σ²) noise calibrated for (ε, δ)-DP with
// the analytic σ = sensitivity·√(2 ln(1.25/δ))/ε.
type GaussianMechanism struct {
	sigma float64
	rng   *randx.RNG
}

// NewGaussianMechanism creates a mechanism for queries with the given
// L2 sensitivity.
func NewGaussianMechanism(eps, delta, sensitivity float64, seed uint64) *GaussianMechanism {
	if eps <= 0 || delta <= 0 || delta >= 1 || sensitivity <= 0 {
		panic("privacy: invalid (eps, delta, sensitivity)")
	}
	sigma := sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps
	return &GaussianMechanism{sigma: sigma, rng: randx.New(seed)}
}

// Release returns the noised value.
func (m *GaussianMechanism) Release(trueValue float64) float64 {
	return trueValue + m.rng.Normal()*m.sigma
}

// Sigma returns the noise standard deviation.
func (m *GaussianMechanism) Sigma() float64 { return m.sigma }
