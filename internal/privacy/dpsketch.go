package privacy

import (
	"fmt"
	"math"

	"repro/internal/frequency"
	"repro/internal/randx"
)

// DPCountMin is a differentially private Count-Min sketch in the style
// of Zhao et al. (NeurIPS 2022), the paper's citation for the claim
// that sketch representations absorb privacy noise gracefully: after
// building a normal Count-Min sketch, each counter is released with
// Laplace noise of scale depth/ε (one stream element touches depth
// counters, so the sketch's L1 sensitivity is depth). Point queries
// then behave like ordinary Count-Min plus bounded noise — the error
// contribution of privacy is O(depth/ε) per counter, independent of the
// stream length, which is why the relative cost of privacy shrinks as
// data grows (experiment E15).
type DPCountMin struct {
	sketch *frequency.CountMin
	eps    float64
	noised [][]float64 // per-counter Laplace noise, nil until Release
	n      uint64
}

// NewDPCountMin wraps a fresh Count-Min sketch of the given shape.
func NewDPCountMin(width, depth int, eps float64, seed uint64) *DPCountMin {
	if eps <= 0 {
		panic("privacy: eps must be positive")
	}
	return &DPCountMin{sketch: frequency.NewCountMin(width, depth, seed), eps: eps}
}

// AddString registers one occurrence of item (pre-release phase).
func (d *DPCountMin) AddString(item string) {
	if d.noised != nil {
		panic("privacy: cannot update a released DP sketch")
	}
	d.sketch.AddString(item)
	d.n++
}

// Release freezes the sketch and draws Laplace(depth/ε) noise for every
// counter; queries afterwards see counter + noise. Further updates
// panic — releasing twice is a privacy-budget bug this API makes
// impossible.
func (d *DPCountMin) Release(seed uint64) {
	if d.noised != nil {
		return
	}
	rng := randx.New(seed)
	depth := d.sketch.Depth()
	width := d.sketch.Width()
	scale := float64(depth) / d.eps
	d.noised = make([][]float64, depth)
	for r := 0; r < depth; r++ {
		d.noised[r] = make([]float64, width)
		for j := 0; j < width; j++ {
			d.noised[r][j] = rng.Laplace(scale)
		}
	}
}

// EstimateString returns the private point-query estimate: the minimum
// over rows of (counter + noise), clamped at zero.
func (d *DPCountMin) EstimateString(item string) (float64, error) {
	if d.noised == nil {
		return 0, fmt.Errorf("privacy: sketch not yet released")
	}
	ests, buckets := d.sketch.EstimatePerRow([]byte(item))
	best := math.Inf(1)
	for r, e := range ests {
		v := float64(e) + d.noised[r][buckets[r]]
		if v < best {
			best = v
		}
	}
	if best < 0 {
		best = 0
	}
	return best, nil
}

// Epsilon returns the privacy budget.
func (d *DPCountMin) Epsilon() float64 { return d.eps }

// N returns the number of updates absorbed before release.
func (d *DPCountMin) N() uint64 { return d.n }

// NoiseScale returns the Laplace scale applied per counter.
func (d *DPCountMin) NoiseScale() float64 { return float64(d.sketch.Depth()) / d.eps }
