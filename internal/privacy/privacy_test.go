package privacy

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

func TestRandomizedResponseDebias(t *testing.T) {
	const n = 100000
	const trueFrac = 0.3
	rr := NewRandomizedResponse(1.0, 1)
	observed := 0.0
	for i := 0; i < n; i++ {
		bit := i < int(trueFrac*n)
		if rr.Perturb(bit) {
			observed++
		}
	}
	est := rr.Debias(observed, n)
	if math.Abs(est/n-trueFrac) > 0.02 {
		t.Errorf("debiased fraction %.4f, want %.2f", est/n, trueFrac)
	}
}

func TestRandomizedResponseTruthProbability(t *testing.T) {
	rr := NewRandomizedResponse(2.0, 2)
	want := math.Exp(2) / (1 + math.Exp(2))
	if math.Abs(rr.PTruth()-want) > 1e-12 {
		t.Errorf("PTruth = %v, want %v", rr.PTruth(), want)
	}
	if rr.Epsilon() != 2.0 {
		t.Error("epsilon lost")
	}
	// Empirical flip rate should match.
	flips := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if !rr.Perturb(true) {
			flips++
		}
	}
	if math.Abs(float64(flips)/n-(1-want)) > 0.01 {
		t.Errorf("empirical flip rate %.4f, want %.4f", float64(flips)/n, 1-want)
	}
}

func TestLaplaceMechanismMoments(t *testing.T) {
	m := NewLaplaceMechanism(0.5, 1, 3)
	if m.Scale() != 2 {
		t.Errorf("scale = %v, want 2", m.Scale())
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += m.Release(10)
	}
	if math.Abs(sum/n-10) > 0.1 {
		t.Errorf("mean released value %.3f, want ~10", sum/n)
	}
}

func TestGaussianMechanismSigma(t *testing.T) {
	m := NewGaussianMechanism(1, 1e-5, 1, 4)
	want := math.Sqrt(2 * math.Log(1.25/1e-5))
	if math.Abs(m.Sigma()-want) > 1e-9 {
		t.Errorf("sigma = %v, want %v", m.Sigma(), want)
	}
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := m.Release(0)
		sum += v
		sumSq += v * v
	}
	sd := math.Sqrt(sumSq / n)
	if math.Abs(sd-want)/want > 0.05 {
		t.Errorf("empirical sigma %.3f, want %.3f", sd, want)
	}
	_ = sum
}

func TestMechanismPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rr":       func() { NewRandomizedResponse(0, 1) },
		"laplace":  func() { NewLaplaceMechanism(1, 0, 1) },
		"gauss":    func() { NewGaussianMechanism(1, 1, 1, 1) },
		"rappor":   func() { NewRAPPOR(4, 2, 1, 1) },
		"cms":      func() { NewPrivateCMS(1, 1, 1, 1) },
		"dpsketch": func() { NewDPCountMin(16, 4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRAPPOREndToEnd(t *testing.T) {
	// 20k clients over 8 candidate values with a skewed distribution;
	// the decoded frequencies must track the truth.
	const nClients = 20000
	candidates := []string{"chrome", "firefox", "safari", "edge", "opera", "brave", "arc", "other"}
	weights := []float64{0.4, 0.2, 0.15, 0.1, 0.06, 0.04, 0.03, 0.02}
	r := NewRAPPOR(64, 2, 4, 7)
	rng := randx.New(8)
	truth := make(map[string]float64)
	reports := make([][]bool, 0, nClients)
	for c := 0; c < nClients; c++ {
		u := rng.Float64()
		var value string
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc || i == len(weights)-1 {
				value = candidates[i]
				break
			}
		}
		truth[value]++
		reports = append(reports, r.Encode(value, uint64(c)+1000))
	}
	counts := r.Aggregate(reports)
	est := r.EstimateFrequencies(counts, nClients, candidates)
	for _, cand := range candidates[:4] { // head values must be well estimated
		got := est[cand] / nClients
		want := truth[cand] / nClients
		if math.Abs(got-want) > 0.05 {
			t.Errorf("%s: estimated %.3f, true %.3f", cand, got, want)
		}
	}
}

func TestRAPPORPrivacyNoiseScalesWithEps(t *testing.T) {
	loose := NewRAPPOR(64, 2, 8, 1)
	tight := NewRAPPOR(64, 2, 0.5, 1)
	if !(tight.F() > loose.F()) {
		t.Errorf("stronger privacy must flip more: f(0.5)=%.3f f(8)=%.3f", tight.F(), loose.F())
	}
	if loose.M() != 64 {
		t.Error("M accessor wrong")
	}
}

func TestPrivateCMSEndToEnd(t *testing.T) {
	// E15's Apple-style pipeline: clients report privately; the server
	// estimates head-item frequencies.
	const nClients = 30000
	s := NewPrivateCMS(256, 16, 4, 9)
	rng := randx.New(10)
	truth := map[string]int{}
	items := []string{"😀", "😂", "❤️", "👍", "🔥"}
	weights := []float64{0.35, 0.25, 0.2, 0.15, 0.05}
	for c := 0; c < nClients; c++ {
		u := rng.Float64()
		var v string
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc || i == len(weights)-1 {
				v = items[i]
				break
			}
		}
		truth[v]++
		s.Absorb(s.EncodeClient(v, uint64(c)+5000))
	}
	for _, item := range items[:3] {
		got := s.Estimate(item)
		want := float64(truth[item])
		if math.Abs(got-want) > 0.15*float64(nClients) {
			t.Errorf("%s: estimate %.0f, true %.0f", item, got, want)
		}
	}
	if s.N() != nClients {
		t.Errorf("N = %d", s.N())
	}
}

func TestPrivateCMSMorePrivacyMoreNoise(t *testing.T) {
	// At fixed population, estimates under eps=0.5 should be noisier
	// than under eps=8 (E15's tradeoff curve).
	run := func(eps float64) float64 {
		const nClients = 8000
		s := NewPrivateCMS(128, 8, eps, 11)
		for c := 0; c < nClients; c++ {
			s.Absorb(s.EncodeClient("target", uint64(c)+90000))
		}
		return math.Abs(s.Estimate("target") - nClients)
	}
	var errTight, errLoose float64
	for trial := 0; trial < 3; trial++ {
		errTight += run(0.5)
		errLoose += run(8)
	}
	if errLoose >= errTight {
		t.Errorf("eps=8 error %.0f not smaller than eps=0.5 error %.0f", errLoose, errTight)
	}
}

func TestDPCountMinLifecycle(t *testing.T) {
	d := NewDPCountMin(512, 5, 1, 12)
	for i := 0; i < 20000; i++ {
		d.AddString(fmt.Sprint(i % 100)) // 100 items, 200 each
	}
	if _, err := d.EstimateString("5"); err == nil {
		t.Fatal("query before release must fail")
	}
	d.Release(13)
	got, err := d.EstimateString("5")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-200) > 200 {
		t.Errorf("DP estimate %.0f, want ~200 within noise", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("update after release must panic")
			}
		}()
		d.AddString("x")
	}()
	if d.N() != 20000 || d.Epsilon() != 1 {
		t.Error("metadata wrong")
	}
	if d.NoiseScale() != 5 {
		t.Errorf("noise scale %v, want depth/eps = 5", d.NoiseScale())
	}
}

func TestDPCountMinNoiseAmortizes(t *testing.T) {
	// The paper's thesis: relative error of the DP sketch shrinks as
	// the per-item counts grow, because the Laplace noise is constant.
	run := func(perItem int) float64 {
		d := NewDPCountMin(1024, 5, 1, 14)
		for i := 0; i < 50; i++ {
			for j := 0; j < perItem; j++ {
				d.AddString(fmt.Sprint(i))
			}
		}
		d.Release(15)
		var rel float64
		for i := 0; i < 50; i++ {
			got, _ := d.EstimateString(fmt.Sprint(i))
			rel += core.RelErr(got, float64(perItem))
		}
		return rel / 50
	}
	small, large := run(20), run(2000)
	if large >= small {
		t.Errorf("relative DP error did not shrink with scale: %.4f vs %.4f", large, small)
	}
}

func BenchmarkRAPPOREncode(b *testing.B) {
	r := NewRAPPOR(128, 2, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Encode("value", uint64(i))
	}
}

func BenchmarkPrivateCMSAbsorb(b *testing.B) {
	s := NewPrivateCMS(256, 16, 2, 1)
	rep := s.EncodeClient("v", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Absorb(rep)
	}
}
