package privacy

import (
	"math"

	"repro/internal/hashx"
	"repro/internal/randx"
)

// RAPPOR implements the core of Google's RAPPOR system (Erlingsson,
// Pihur, Korolova — CCS 2014), which the paper summarizes as "combining
// the Bloom filter summary with randomized response". Each client
// encodes its categorical value into a small Bloom filter of m bits and
// k hashes, then flips each bit with the randomized-response
// probability; the server aggregates millions of noisy filters and
// de-biases per-bit counts to estimate each candidate value's
// frequency.
//
// This implementation is the one-round ("permanent response only")
// variant: it preserves the estimation pipeline the paper's claim is
// about while omitting the memoized instantaneous-response layer that
// only matters for longitudinal reporting.
type RAPPOR struct {
	m, k int
	eps  float64
	f    float64 // per-bit flip probability derived from eps
	seed uint64
}

// NewRAPPOR creates an encoder/decoder pair configuration: m filter
// bits, k hashes, privacy budget eps (per report).
func NewRAPPOR(m, k int, eps float64, seed uint64) *RAPPOR {
	if m < 8 || k < 1 {
		panic("privacy: RAPPOR requires m >= 8, k >= 1")
	}
	if eps <= 0 {
		panic("privacy: eps must be positive")
	}
	// Bit-flip probability for eps-DP per bit group: each value sets k
	// bits, so per-report sensitivity is k (compose across bits). Use
	// the standard RAPPOR parameterization via f = 2/(1+e^{eps/(2k)}).
	f := 2 / (1 + math.Exp(eps/(2*float64(k))))
	return &RAPPOR{m: m, k: k, eps: eps, f: f, seed: seed}
}

// Encode produces a client's noisy report for value. clientSeed
// decorrelates clients.
func (r *RAPPOR) Encode(value string, clientSeed uint64) []bool {
	bits := make([]bool, r.m)
	h1, h2 := hashx.Murmur3_128([]byte(value), r.seed)
	h2 |= 1
	for i := 0; i < r.k; i++ {
		bits[(h1+uint64(i)*h2)%uint64(r.m)] = true
	}
	rng := randx.New(clientSeed)
	for i := range bits {
		u := rng.Float64()
		switch {
		case u < r.f/2:
			bits[i] = true
		case u < r.f:
			bits[i] = false
		}
	}
	return bits
}

// Aggregate sums reports into per-bit counts.
func (r *RAPPOR) Aggregate(reports [][]bool) []float64 {
	counts := make([]float64, r.m)
	for _, rep := range reports {
		for i, b := range rep {
			if b {
				counts[i]++
			}
		}
	}
	return counts
}

// EstimateFrequencies de-biases the aggregated bit counts and solves
// for candidate-value frequencies by least squares over the candidates'
// Bloom signatures (the paper's description of the decode step, with
// ordinary least squares standing in for the lasso used at Google
// scale — adequate for modest candidate sets).
func (r *RAPPOR) EstimateFrequencies(counts []float64, nReports int, candidates []string) map[string]float64 {
	// De-bias each bit: E[count_i] = n·(f/2) + true_i·(1−f), where
	// true_i is the number of clients whose value sets bit i.
	t := make([]float64, r.m)
	for i, c := range counts {
		t[i] = (c - float64(nReports)*r.f/2) / (1 - r.f)
	}
	// Build the design matrix: column j = candidate j's bit signature.
	design := make([][]float64, r.m)
	for i := range design {
		design[i] = make([]float64, len(candidates))
	}
	for j, cand := range candidates {
		h1, h2 := hashx.Murmur3_128([]byte(cand), r.seed)
		h2 |= 1
		for i := 0; i < r.k; i++ {
			design[(h1+uint64(i)*h2)%uint64(r.m)][j] = 1
		}
	}
	x := leastSquares(design, t)
	out := make(map[string]float64, len(candidates))
	for j, cand := range candidates {
		v := x[j]
		if v < 0 {
			v = 0
		}
		out[cand] = v
	}
	return out
}

// F returns the per-bit flip probability.
func (r *RAPPOR) F() float64 { return r.f }

// M returns the filter width.
func (r *RAPPOR) M() int { return r.m }

// leastSquares solves min ‖Ax − b‖₂ via the normal equations with
// Gaussian elimination and partial pivoting; candidate sets are small
// (tens to hundreds), so cubic cost is fine.
func leastSquares(a [][]float64, b []float64) []float64 {
	rows := len(a)
	if rows == 0 {
		return nil
	}
	cols := len(a[0])
	// Form AtA and Atb.
	ata := make([][]float64, cols)
	atb := make([]float64, cols)
	for i := range ata {
		ata[i] = make([]float64, cols)
	}
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			if a[r][i] == 0 {
				continue
			}
			atb[i] += a[r][i] * b[r]
			for j := 0; j < cols; j++ {
				ata[i][j] += a[r][i] * a[r][j]
			}
		}
	}
	// Ridge term for numerical stability when candidates collide.
	for i := 0; i < cols; i++ {
		ata[i][i] += 1e-6
	}
	// Gaussian elimination with partial pivoting.
	x := make([]float64, cols)
	for col := 0; col < cols; col++ {
		pivot := col
		for r := col + 1; r < cols; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[pivot][col]) {
				pivot = r
			}
		}
		ata[col], ata[pivot] = ata[pivot], ata[col]
		atb[col], atb[pivot] = atb[pivot], atb[col]
		p := ata[col][col]
		if p == 0 {
			continue
		}
		for r := col + 1; r < cols; r++ {
			factor := ata[r][col] / p
			if factor == 0 {
				continue
			}
			for j := col; j < cols; j++ {
				ata[r][j] -= factor * ata[col][j]
			}
			atb[r] -= factor * atb[col]
		}
	}
	for col := cols - 1; col >= 0; col-- {
		sum := atb[col]
		for j := col + 1; j < cols; j++ {
			sum -= ata[col][j] * x[j]
		}
		if ata[col][col] != 0 {
			x[col] = sum / ata[col][col]
		}
	}
	return x
}
