package robust

import (
	"fmt"
	"math"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/hashx"
)

// Distinct is an adversarially robust distinct counter and the wire
// format behind the "robustdistinct" registry family: the
// sketch-switching construction applied to HyperLogLog, optionally
// composed with the other two defenses in this package — Bernoulli-q
// subsampled ingest in front of the copies and (1+ρ)-grid noisy
// release behind them. An adaptive adversary that observes HLL
// estimates can hunt for items that leave the registers unchanged
// (their hashes land under existing maxima) and inflate the true
// cardinality far beyond the reported one; the fresh-copy discipline
// bounds how much any copy's randomness can be exploited, and the
// optional wrappers corrupt the per-item delta signal the hunt needs.
// Insertion-only F0 is monotone, so λ = O(log_{1+ε} n) copies cover a
// stream of n distinct items.
type Distinct struct {
	copies []*cardinality.HLL
	cur    int
	last   float64
	eps    float64
	burned bool

	p    uint8
	seed uint64
	rho  float64 // noisy-release grid; 0 = exact release
	q    float64 // Bernoulli ingest-admission rate; 1 = admit everything
}

// NewDistinct creates a robust distinct counter with switching
// threshold eps and lambda independent HLL copies of precision p.
func NewDistinct(eps float64, lambda int, p uint8, seed uint64) *Distinct {
	return NewDefendedDistinct(eps, lambda, p, seed, 0, 1)
}

// NewDefendedDistinct creates the full defense stack: Bernoulli-q
// subsampled ingest (q = 1 disables) into lambda switching HLL copies
// with (1+rho)-grid noisy release (rho = 0 disables).
func NewDefendedDistinct(eps float64, lambda int, p uint8, seed uint64, rho, q float64) *Distinct {
	if !(eps > 0 && eps < 1) {
		panic("robust: eps must be in (0,1)")
	}
	if lambda < 1 {
		panic("robust: lambda must be >= 1")
	}
	if !(rho >= 0 && rho < 1) {
		panic("robust: rho must be in [0,1)")
	}
	if !(q > 0 && q <= 1) {
		panic("robust: q must be in (0,1]")
	}
	copies := make([]*cardinality.HLL, lambda)
	for i := range copies {
		copies[i] = cardinality.NewHLL(p, copySeed(seed, i))
	}
	return &Distinct{
		copies: copies, eps: eps, last: math.NaN(),
		p: p, seed: seed, rho: rho, q: q,
	}
}

// DistinctLambdaFor returns the copy count needed for streams with up
// to maxDistinct distinct items.
func DistinctLambdaFor(eps, maxDistinct float64) int {
	if maxDistinct < 2 {
		maxDistinct = 2
	}
	return int(math.Ceil(math.Log(maxDistinct)/math.Log1p(eps))) + 1
}

// admitted applies the Bernoulli ingest sample for byte items.
func (d *Distinct) admitted(item []byte) bool {
	return d.q >= 1 || hashx.XXHash64(item, admitSeed(d.seed)) <= admitThreshold(d.q)
}

// Add inserts an item into every copy (subject to the ingest sample).
func (d *Distinct) Add(item []byte) {
	if !d.admitted(item) {
		return
	}
	for _, c := range d.copies {
		c.Add(item)
	}
}

// AddUint64 inserts an integer item into every copy.
func (d *Distinct) AddUint64(v uint64) {
	if d.q < 1 && hashx.HashUint64(v, admitSeed(d.seed)) > admitThreshold(d.q) {
		return
	}
	for _, c := range d.copies {
		c.AddUint64(v)
	}
}

// Estimate returns the robust cardinality estimate with (1+ε)-quantized
// output changes, rescaled for the ingest sample and rounded onto the
// secret release grid when those defenses are enabled.
func (d *Distinct) Estimate() float64 { return d.release(d.switched()) }

// switched advances the sketch-switching state machine and returns the
// current frozen answer in the (possibly subsampled) inner domain.
func (d *Distinct) switched() float64 {
	if math.IsNaN(d.last) {
		d.last = d.copies[d.cur].Estimate()
		return d.last
	}
	cur := d.copies[d.cur].Estimate()
	if cur >= d.last/(1+d.eps) && cur <= d.last*(1+d.eps) {
		return d.last
	}
	if d.cur+1 == len(d.copies) {
		d.burned = true
		return d.last
	}
	d.cur++
	d.last = d.copies[d.cur].Estimate()
	return d.last
}

// release maps the inner answer to the published estimate.
func (d *Distinct) release(v float64) float64 {
	v /= d.q
	if d.rho > 0 {
		v = noisyRound(v, d.rho, noisePhase(d.seed))
	}
	return v
}

// Exhausted reports whether all copies have been exposed.
func (d *Distinct) Exhausted() bool { return d.burned }

// Copies returns λ.
func (d *Distinct) Copies() int { return len(d.copies) }

// CopiesUsed returns how many copies have been exposed so far.
func (d *Distinct) CopiesUsed() int { return d.cur + 1 }

// Eps returns the switching threshold.
func (d *Distinct) Eps() float64 { return d.eps }

// SizeBytes returns the total memory across copies.
func (d *Distinct) SizeBytes() int {
	total := 0
	for _, c := range d.copies {
		total += c.SizeBytes()
	}
	return total
}

// robustDistinctVersion is the serialization version written by
// MarshalBinary.
const robustDistinctVersion = 1

// MarshalBinary serializes the full defense stack in the standard
// envelope: parameters, the switching state machine, and every copy's
// own envelope. The encoding is deterministic, so crash recovery's
// byte-identity check holds.
func (d *Distinct) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagRobustDistinct, robustDistinctVersion)
	w.U8(d.p)
	w.U64(d.seed)
	w.F64(d.eps)
	w.F64(d.rho)
	w.F64(d.q)
	w.U32(uint32(len(d.copies)))
	w.U32(uint32(d.cur))
	if d.burned {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.F64(d.last)
	for _, c := range d.copies {
		env, err := c.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.BytesField(env)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a serialized robust distinct counter,
// validating the envelope and every parameter so corrupt bytes fail
// fast instead of building an inconsistent defense.
func (d *Distinct) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagRobustDistinct, robustDistinctVersion)
	if err != nil {
		return err
	}
	p := r.U8()
	seed := r.U64()
	eps := r.F64()
	rho := r.F64()
	q := r.F64()
	lambda := int(r.U32())
	cur := int(r.U32())
	burned := r.U8() != 0
	last := r.F64()
	if err := r.Err(); err != nil {
		return err
	}
	if !(eps > 0 && eps < 1) || !(rho >= 0 && rho < 1) || !(q > 0 && q <= 1) {
		return fmt.Errorf("%w: robustdistinct parameters out of range", core.ErrCorrupt)
	}
	if p < 4 || p > 18 {
		return fmt.Errorf("%w: robustdistinct precision %d", core.ErrCorrupt, p)
	}
	// Each copy costs at least a 4-byte length prefix plus a 6-byte
	// envelope header on the wire, so an implausible λ is caught before
	// the copy loop allocates. The absolute cap matches the registry
	// descriptor's lambda bound.
	if lambda < 1 || lambda > 1024 || lambda*10 > len(data) {
		return fmt.Errorf("%w: robustdistinct copy count %d", core.ErrCorrupt, lambda)
	}
	if cur < 0 || cur >= lambda {
		return fmt.Errorf("%w: robustdistinct current copy %d of %d", core.ErrCorrupt, cur, lambda)
	}
	copies := make([]*cardinality.HLL, lambda)
	for i := range copies {
		env := r.BytesField()
		if err := r.Err(); err != nil {
			return err
		}
		c := new(cardinality.HLL)
		if err := c.UnmarshalBinary(env); err != nil {
			return fmt.Errorf("robustdistinct copy %d: %w", i, err)
		}
		copies[i] = c
	}
	if err := r.Done(); err != nil {
		return err
	}
	d.copies = copies
	d.cur = cur
	d.last = last
	d.eps = eps
	d.burned = burned
	d.p = p
	d.seed = seed
	d.rho = rho
	d.q = q
	return nil
}

// Merge absorbs a peer with identical parameters: copies merge
// pairwise (same derived seeds, so the union is exact per copy) and
// the switching state adopts whichever side has revealed more copies —
// the conservative choice, since a revealed copy is burned on either
// side of the merge. Distributed aggregation therefore never
// resurrects randomness an adversary has already seen.
func (d *Distinct) Merge(other *Distinct) error {
	if other == nil {
		return fmt.Errorf("%w: nil robustdistinct", core.ErrIncompatible)
	}
	if d.p != other.p || d.seed != other.seed || len(d.copies) != len(other.copies) ||
		d.eps != other.eps || d.rho != other.rho || d.q != other.q {
		return fmt.Errorf("%w: robustdistinct shapes differ (p=%d/%d seed=%d/%d lambda=%d/%d eps=%g/%g rho=%g/%g q=%g/%g)",
			core.ErrIncompatible, d.p, other.p, d.seed, other.seed, len(d.copies), len(other.copies),
			d.eps, other.eps, d.rho, other.rho, d.q, other.q)
	}
	for i, c := range d.copies {
		if err := c.Merge(other.copies[i]); err != nil {
			return err
		}
	}
	switch {
	case other.cur > d.cur:
		d.cur = other.cur
		d.last = other.last
	case other.cur == d.cur && math.IsNaN(d.last):
		d.last = other.last
	}
	d.burned = d.burned || other.burned
	return nil
}
