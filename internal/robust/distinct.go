package robust

import (
	"math"

	"repro/internal/cardinality"
)

// Distinct is an adversarially robust distinct counter: the
// sketch-switching construction applied to HyperLogLog. An adaptive
// adversary that observes HLL estimates can hunt for items that leave
// the registers unchanged (their hashes land under existing maxima)
// and inflate the true cardinality far beyond the reported one; the
// wrapper's fresh-copy discipline bounds how much any copy's
// randomness can be exploited. Insertion-only F0 is monotone, so
// λ = O(log_{1+ε} n) copies cover a stream of n distinct items.
type Distinct struct {
	copies []*cardinality.HLL
	cur    int
	last   float64
	eps    float64
	burned bool
}

// NewDistinct creates a robust distinct counter with switching
// threshold eps and lambda independent HLL copies of precision p.
func NewDistinct(eps float64, lambda int, p uint8, seed uint64) *Distinct {
	if !(eps > 0 && eps < 1) {
		panic("robust: eps must be in (0,1)")
	}
	if lambda < 1 {
		panic("robust: lambda must be >= 1")
	}
	copies := make([]*cardinality.HLL, lambda)
	for i := range copies {
		copies[i] = cardinality.NewHLL(p, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	return &Distinct{copies: copies, eps: eps, last: math.NaN()}
}

// DistinctLambdaFor returns the copy count needed for streams with up
// to maxDistinct distinct items.
func DistinctLambdaFor(eps, maxDistinct float64) int {
	if maxDistinct < 2 {
		maxDistinct = 2
	}
	return int(math.Ceil(math.Log(maxDistinct)/math.Log1p(eps))) + 1
}

// Add inserts an item into every copy.
func (d *Distinct) Add(item []byte) {
	for _, c := range d.copies {
		c.Add(item)
	}
}

// AddUint64 inserts an integer item into every copy.
func (d *Distinct) AddUint64(v uint64) {
	for _, c := range d.copies {
		c.AddUint64(v)
	}
}

// Estimate returns the robust cardinality estimate with (1+ε)-quantized
// output changes.
func (d *Distinct) Estimate() float64 {
	if math.IsNaN(d.last) {
		d.last = d.copies[d.cur].Estimate()
		return d.last
	}
	cur := d.copies[d.cur].Estimate()
	if cur >= d.last/(1+d.eps) && cur <= d.last*(1+d.eps) {
		return d.last
	}
	if d.cur+1 == len(d.copies) {
		d.burned = true
		return d.last
	}
	d.cur++
	d.last = d.copies[d.cur].Estimate()
	return d.last
}

// Exhausted reports whether all copies have been exposed.
func (d *Distinct) Exhausted() bool { return d.burned }

// Copies returns λ.
func (d *Distinct) Copies() int { return len(d.copies) }

// SizeBytes returns the total memory across copies.
func (d *Distinct) SizeBytes() int {
	total := 0
	for _, c := range d.copies {
		total += c.SizeBytes()
	}
	return total
}
