package robust

import "repro/internal/cardinality"

// Estimator is the minimal surface the red-team subsystem works
// against: streaming distinct-count ingest plus an estimate read. Both
// raw cardinality sketches (*cardinality.HLL, *cardinality.KMV) and
// every defended wrapper in this package satisfy it, so the attack
// harness (internal/robust/attack) and the defenses compose freely —
// a Noisy over a Switching over KMV is just nested Estimators.
type Estimator interface {
	Add(item []byte)
	AddUint64(v uint64)
	Estimate() float64
	SizeBytes() int
}

// Interface conformance for the raw sketches and every wrapper.
var (
	_ Estimator = (*cardinality.HLL)(nil)
	_ Estimator = (*cardinality.KMV)(nil)
	_ Estimator = (*Switching)(nil)
	_ Estimator = (*Noisy)(nil)
	_ Estimator = (*Subsampled)(nil)
	_ Estimator = (*Distinct)(nil)
)
