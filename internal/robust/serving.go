package robust

import "sync"

// ServingDistinct is the concurrent serving variant of Distinct. Every
// operation — reads included — serializes behind one mutex, because
// Estimate advances the sketch-switching state machine: a "read" may
// burn a copy, so the lock-free read tricks the other serving wrappers
// use would race the defense itself. The mutex still beats the
// server's generic per-entry lock by keeping WAL bookkeeping outside
// the critical section.
type ServingDistinct struct {
	mu sync.Mutex
	d  *Distinct
}

// NewServingDistinct builds the serving wrapper over a fresh defended
// counter.
func NewServingDistinct(eps float64, lambda int, p uint8, seed uint64, rho, q float64) *ServingDistinct {
	return &ServingDistinct{d: NewDefendedDistinct(eps, lambda, p, seed, rho, q)}
}

// Add inserts one item.
func (s *ServingDistinct) Add(item []byte) {
	s.mu.Lock()
	s.d.Add(item)
	s.mu.Unlock()
}

// AddBatch inserts a batch under one lock acquisition.
func (s *ServingDistinct) AddBatch(items [][]byte) {
	s.mu.Lock()
	for _, item := range items {
		s.d.Add(item)
	}
	s.mu.Unlock()
}

// Estimate returns the robust estimate (and may advance the switching
// state).
func (s *ServingDistinct) Estimate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Estimate()
}

// Exhausted reports whether every copy has been exposed.
func (s *ServingDistinct) Exhausted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Exhausted()
}

// Copies returns λ.
func (s *ServingDistinct) Copies() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Copies()
}

// CopiesUsed returns how many copies have been exposed.
func (s *ServingDistinct) CopiesUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.CopiesUsed()
}

// Eps returns the switching threshold.
func (s *ServingDistinct) Eps() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Eps()
}

// Merge absorbs a decoded peer.
func (s *ServingDistinct) Merge(other *Distinct) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Merge(other)
}

// MarshalBinary serializes the wrapped counter.
func (s *ServingDistinct) MarshalBinary() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.MarshalBinary()
}

// SizeBytes returns the wrapped counter's footprint.
func (s *ServingDistinct) SizeBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.SizeBytes()
}
