// Package attack implements the universal adaptive attack on
// cardinality sketches from Cohen–Nelson–Sarlós, "One Attack to Rule
// Them All" (PAPERS.md): an adversary who can insert items and observe
// estimates learns, in O(k²) interactions against a size-k sketch,
// a set of items the sketch's fixed randomness cannot see — and any
// sketch fed that set under the same randomness reports a cardinality
// arbitrarily below the truth.
//
// The harness runs the attack in three phases against a probe/victim
// pair sharing hash randomness (the realistic sketchd scenario: every
// sketch created with the same seed — including the default seed —
// shares it, so an attacker probes a sketch they own and poisons any
// other):
//
//  1. Saturate: feed the probe ~O(k) random items so its internal
//     state has maxima for fresh items to hide under.
//  2. Mask hunt: insert candidates one at a time and read the estimate
//     after each. A candidate that leaves the estimate exactly
//     unchanged left no trace in the state (for HLL no register rose;
//     for KMV the hash cleared the k-th minimum) — it is *masked*, and
//     stays masked forever since sketch state only tightens. Collect
//     masked items into the attack set.
//  3. Replay: feed the attack set into the victim. Every item is
//     invisible to the shared randomness, so the victim's truth grows
//     while its estimate stays at the saturation floor. The harness
//     records the (interactions, truth, estimate) curve and the
//     interaction count at which relative error first crosses the
//     failure ratio.
//
// Against the defended wrappers the same harness measures why each
// defense works: sketch-switching re-bases onto copies whose
// randomness the hunt never probed, noisy release erases the per-item
// delta signal the hunt classifies on, subsampling poisons the attack
// set with items the sketch never hashed, and the sketchd query budget
// refuses the hunt's read stream outright with 429s.
package attack

import (
	"errors"
	"math"

	"repro/internal/randx"
)

// Target is the attack surface: batched distinct-item insertion plus
// an estimate read. Local drivers never fail; the live-sketchd driver
// surfaces transport errors and budget refusals (ErrRefused).
type Target interface {
	Add(items []uint64) error
	Estimate() (float64, error)
}

// ErrRefused marks a target that answered a budget refusal (HTTP 429)
// — the query-budget defense working as designed.
var ErrRefused = errors.New("attack: target refused the query stream")

// Config shapes one attack run. Zero fields take the documented
// defaults; K is required.
type Config struct {
	// K is the victim's sketch size parameter: 2^p registers for HLL,
	// k retained minima for KMV. The interaction budget and the
	// quadratic bound are stated in terms of it.
	K int
	// SaturateItems is the phase-1 item count (default 8·K).
	SaturateItems int
	// MaskTarget is the attack-set size phase 2 hunts for (default
	// 4·SaturateItems — enough for ~4× relative error undefended).
	MaskTarget int
	// MaxInteractions caps total adds+estimates across all phases
	// (default 64·K², the quadratic budget with generous constant).
	MaxInteractions int
	// FailRatio is the truth/estimate ratio that counts as sketch
	// failure (default 2).
	FailRatio float64
	// Seed drives the deterministic candidate stream (default 1).
	Seed uint64
	// CurvePoints is how many replay checkpoints to record (default 16).
	CurvePoints int
}

func (c Config) withDefaults() Config {
	if c.SaturateItems == 0 {
		c.SaturateItems = 8 * c.K
	}
	if c.MaskTarget == 0 {
		c.MaskTarget = 4 * c.SaturateItems
	}
	if c.MaxInteractions == 0 {
		c.MaxInteractions = 64 * c.K * c.K
	}
	if c.FailRatio == 0 {
		c.FailRatio = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CurvePoints == 0 {
		c.CurvePoints = 16
	}
	return c
}

// Point is one checkpoint on the attack curve.
type Point struct {
	Interactions int     // cumulative adds + estimate reads
	Truth        float64 // distinct items fed to the victim
	Estimate     float64 // victim's reported estimate
	RelError     float64 // Truth/Estimate (victim underreports)
}

// Result is one attack run's outcome.
type Result struct {
	// Curve holds the replay-phase checkpoints against the victim.
	Curve []Point
	// Masked is the attack-set size phase 2 assembled.
	Masked int
	// Probed is how many candidates phase 2 tested.
	Probed int
	// Interactions is the total adds + estimate reads spent.
	Interactions int
	// InteractionsToFail is the interaction count when relative error
	// first reached FailRatio; -1 when the victim never failed.
	InteractionsToFail int
	// FinalRelError is the last curve point's relative error (0 when
	// the attack never reached the victim).
	FinalRelError float64
	// Refused reports that the target cut the attack off with budget
	// refusals (ErrRefused) — counted as a surviving defense.
	Refused bool
}

// Run mounts the attack: probe and victim must share hash randomness
// (same seed and shape) for the masked set to transfer. Returns a
// non-nil error only for transport-level failures; a budget refusal
// ends the run gracefully with Refused set.
func Run(probe, victim Target, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var res Result
	res.InteractionsToFail = -1
	rng := randx.New(cfg.Seed ^ 0x9155ee5ba7a1e0f3)
	interactions := 0

	refused := func(err error) bool {
		if errors.Is(err, ErrRefused) {
			res.Refused = true
			res.Interactions = interactions
			return true
		}
		return false
	}

	// Phase 1: saturate the probe so fresh candidates have maxima to
	// hide under. Batched — the adversary needs no feedback here.
	saturate := make([]uint64, cfg.SaturateItems)
	for i := range saturate {
		saturate[i] = rng.Uint64()
	}
	if err := probe.Add(saturate); err != nil {
		if refused(err) {
			return res, nil
		}
		return res, err
	}
	interactions += len(saturate)

	// Phase 2: hunt masked candidates one by one. Every probe is one
	// add + one estimate read; a bit-identical estimate means the
	// candidate left no trace in the probe's state.
	base, err := probe.Estimate()
	if err != nil {
		if refused(err) {
			return res, nil
		}
		return res, err
	}
	interactions++
	one := make([]uint64, 1)
	masked := make([]uint64, 0, cfg.MaskTarget)
	for len(masked) < cfg.MaskTarget && interactions+2 <= cfg.MaxInteractions {
		cand := rng.Uint64()
		one[0] = cand
		if err := probe.Add(one); err != nil {
			if refused(err) {
				return res, nil
			}
			return res, err
		}
		est, err := probe.Estimate()
		interactions += 2
		res.Probed++
		if err != nil {
			if refused(err) {
				res.Masked = len(masked)
				return res, nil
			}
			return res, err
		}
		if est == base {
			masked = append(masked, cand)
		} else {
			base = est
		}
	}
	res.Masked = len(masked)

	// Phase 3: replay the attack set into the victim in chunks,
	// reading the estimate at each checkpoint. Truth is exact — every
	// masked item is distinct by construction (64-bit candidates from
	// a full-period generator; collisions are negligible and would
	// only weaken the attack).
	chunk := len(masked) / cfg.CurvePoints
	if chunk < 1 {
		chunk = 1
	}
	fed := 0
	for fed < len(masked) && interactions < cfg.MaxInteractions {
		end := fed + chunk
		if end > len(masked) {
			end = len(masked)
		}
		if err := victim.Add(masked[fed:end]); err != nil {
			if refused(err) {
				return res, nil
			}
			return res, err
		}
		interactions += end - fed
		fed = end
		est, err := victim.Estimate()
		interactions++
		if err != nil {
			if refused(err) {
				return res, nil
			}
			return res, err
		}
		pt := Point{Interactions: interactions, Truth: float64(fed), Estimate: est}
		if est > 0 {
			pt.RelError = pt.Truth / est
		} else {
			pt.RelError = math.Inf(1)
		}
		res.Curve = append(res.Curve, pt)
		if res.InteractionsToFail < 0 && pt.RelError >= cfg.FailRatio {
			res.InteractionsToFail = interactions
		}
	}
	if n := len(res.Curve); n > 0 {
		res.FinalRelError = res.Curve[n-1].RelError
	}
	res.Interactions = interactions
	return res, nil
}

// QuadraticBudget is the paper's bound the harness validates against:
// C·k² interactions with the constant the default config uses.
func QuadraticBudget(k int) int { return 64 * k * k }
