package attack

import (
	"errors"
	"strconv"

	"repro/internal/cardinality"
	"repro/internal/robust"
	"repro/internal/server/client"
)

// Candidates are rendered as decimal byte strings before insertion on
// EVERY driver, so the sketch hashes identical bytes whether the
// target is an in-process Estimator or a sketchd endpoint — a masked
// set hunted locally transfers to a live victim and vice versa.

// estimatorTarget drives any robust.Estimator — a raw HLL or KMV, or
// any composition of the defended wrappers.
type estimatorTarget struct {
	e   robust.Estimator
	buf []byte
}

// NewEstimatorTarget wraps an in-process estimator as an attack
// target.
func NewEstimatorTarget(e robust.Estimator) Target {
	return &estimatorTarget{e: e, buf: make([]byte, 0, 20)}
}

// NewHLLTarget is a raw HyperLogLog victim of precision p.
func NewHLLTarget(p uint8, seed uint64) Target {
	return NewEstimatorTarget(cardinality.NewHLL(p, seed))
}

// NewKMVTarget is a raw bottom-k KMV victim.
func NewKMVTarget(k int, seed uint64) Target {
	return NewEstimatorTarget(cardinality.NewKMV(k, seed))
}

func (t *estimatorTarget) Add(items []uint64) error {
	for _, v := range items {
		t.buf = strconv.AppendUint(t.buf[:0], v, 10)
		t.e.Add(t.buf)
	}
	return nil
}

func (t *estimatorTarget) Estimate() (float64, error) {
	return t.e.Estimate(), nil
}

// serverTarget drives one named sketch on a live sketchd (or a
// coordinator — the API is identical) through the HTTP client. A 429
// from the query-budget or tenant-QPS guard surfaces as ErrRefused so
// the harness records the defense instead of hammering the server.
type serverTarget struct {
	cl     *client.Client
	sketch string
	buf    []byte
}

// NewServerTarget attacks the named sketch via cl. Create the sketch
// (and a probe twin with the same seed) before the run.
func NewServerTarget(cl *client.Client, sketch string) Target {
	return &serverTarget{cl: cl, sketch: sketch, buf: make([]byte, 0, 64<<10)}
}

func (t *serverTarget) Add(items []uint64) error {
	t.buf = t.buf[:0]
	for _, v := range items {
		t.buf = strconv.AppendUint(t.buf, v, 10)
		t.buf = append(t.buf, '\n')
	}
	return refuseAware(t.cl.AddBatch(t.sketch, t.buf))
}

func (t *serverTarget) Estimate() (float64, error) {
	est, err := t.cl.Estimate(t.sketch, nil)
	return est, refuseAware(err)
}

// refuseAware maps budget/rate 429s onto ErrRefused, keeping the
// original error in the chain for Retry-After inspection.
func refuseAware(err error) error {
	var se *client.StatusError
	if errors.As(err, &se) && se.Code == 429 {
		return errors.Join(ErrRefused, err)
	}
	return err
}
