package attack

import (
	"math"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/robust"
)

// TestAttackBreaksRawHLL: the universal attack must drive a raw HLL
// to at least the failure ratio within the quadratic budget.
func TestAttackBreaksRawHLL(t *testing.T) {
	const p, seed = 8, 7
	k := 1 << p
	res, err := Run(NewHLLTarget(p, seed), NewHLLTarget(p, seed), Config{K: k, Seed: 11})
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if res.Refused {
		t.Fatalf("raw HLL cannot refuse")
	}
	if res.FinalRelError < 2 {
		t.Fatalf("attack failed to break raw HLL: final rel error %.2f, masked %d/%d probed",
			res.FinalRelError, res.Masked, res.Probed)
	}
	if res.InteractionsToFail < 0 || res.InteractionsToFail > QuadraticBudget(k) {
		t.Fatalf("failure at %d interactions, want within quadratic budget %d",
			res.InteractionsToFail, QuadraticBudget(k))
	}
}

// TestAttackBreaksRawKMV: same bar for the bottom-k sketch.
func TestAttackBreaksRawKMV(t *testing.T) {
	const k, seed = 256, 7
	res, err := Run(NewKMVTarget(k, seed), NewKMVTarget(k, seed), Config{K: k, Seed: 11})
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if res.FinalRelError < 2 {
		t.Fatalf("attack failed to break raw KMV: final rel error %.2f, masked %d/%d probed",
			res.FinalRelError, res.Masked, res.Probed)
	}
	if res.InteractionsToFail < 0 || res.InteractionsToFail > QuadraticBudget(k) {
		t.Fatalf("failure at %d interactions, want within quadratic budget %d",
			res.InteractionsToFail, QuadraticBudget(k))
	}
}

// TestDefensesHoldUnderAttack: each defended wrapper, attacked with
// the same harness and budget, must keep the victim's relative error
// strictly below the raw sketch's failure.
func TestDefensesHoldUnderAttack(t *testing.T) {
	const p, seed = 8, 7
	k := 1 << p
	defenses := []struct {
		name string
		mk   func() robust.Estimator
	}{
		{"switching-hll", func() robust.Estimator {
			return robust.NewSwitchingHLL(0.05, 24, p, seed)
		}},
		{"switching-kmv", func() robust.Estimator {
			return robust.NewSwitchingKMV(0.05, 24, 256, seed)
		}},
		{"noisy", func() robust.Estimator {
			return robust.NewNoisy(cardinality.NewHLL(p, seed), 0.1, seed)
		}},
		{"subsampled", func() robust.Estimator {
			return robust.NewSubsampled(cardinality.NewHLL(p, seed), 0.25, seed)
		}},
		{"full-stack", func() robust.Estimator {
			return robust.NewDefendedDistinct(0.05, 24, p, seed, 0.1, 0.5)
		}},
	}
	for _, d := range defenses {
		t.Run(d.name, func(t *testing.T) {
			res, err := Run(NewEstimatorTarget(d.mk()), NewEstimatorTarget(d.mk()), Config{K: k, Seed: 11})
			if err != nil {
				t.Fatalf("attack: %v", err)
			}
			if math.IsInf(res.FinalRelError, 1) || res.FinalRelError >= 2 {
				t.Fatalf("defense broken: final rel error %.2f (masked %d/%d)",
					res.FinalRelError, res.Masked, res.Probed)
			}
		})
	}
}
