package robust

import "repro/internal/cardinality"

// newHLLForTest builds a plain HLL for adversary comparisons in tests.
func newHLLForTest(p uint8, seed uint64) *cardinality.HLL {
	return cardinality.NewHLL(p, seed)
}
