package robust

import (
	"math"

	"repro/internal/randx"
)

// Noisy releases estimates rounded onto a multiplicative (1+ρ) grid
// whose phase is a secret of the instance. Rounding caps what an
// adaptive adversary learns per query: the released value only changes
// when the inner estimate crosses a grid boundary, so a stream of n
// items reveals at most log_{1+ρ} n distinct answers — in particular
// the per-item estimate delta that mask-hunting attacks key on is
// erased for all but O(ρ⁻¹ log n) probes. The secret phase (derived
// deterministically from the seed) keeps the adversary from straddling
// known boundaries, and because the released value is a deterministic
// function of the inner estimate, repeated queries return the same
// answer — there is no fresh noise to average away.
type Noisy struct {
	inner Estimator
	rho   float64
	phase float64 // secret grid offset in [0,1) log-units
}

// NewNoisy wraps inner with (1+rho)-grid rounded release. rho must be
// in (0,1); the phase is derived from seed.
func NewNoisy(inner Estimator, rho float64, seed uint64) *Noisy {
	if !(rho > 0 && rho < 1) {
		panic("robust: rho must be in (0,1)")
	}
	return &Noisy{inner: inner, rho: rho, phase: noisePhase(seed)}
}

// noisePhase derives the secret grid offset from the seed.
func noisePhase(seed uint64) float64 {
	return randx.New(seed ^ 0xa0b4c1d8e2f36975).Float64()
}

// noisyRound snaps v to the midpoint of its (1+rho) grid cell. The
// multiplicative error is at most a sqrt(1+rho) factor.
func noisyRound(v, rho, phase float64) float64 {
	if v <= 1 {
		return v
	}
	w := math.Log1p(rho)
	u := math.Floor(math.Log(v)/w+phase) - phase
	return math.Exp((u + 0.5) * w)
}

// Add inserts an item.
func (n *Noisy) Add(item []byte) { n.inner.Add(item) }

// AddUint64 inserts an integer item.
func (n *Noisy) AddUint64(v uint64) { n.inner.AddUint64(v) }

// Estimate returns the inner estimate rounded onto the secret grid.
func (n *Noisy) Estimate() float64 {
	return noisyRound(n.inner.Estimate(), n.rho, n.phase)
}

// SizeBytes returns the wrapped sketch's footprint.
func (n *Noisy) SizeBytes() int { return n.inner.SizeBytes() }
