package robust

import (
	"math"

	"repro/internal/hashx"
)

// Subsampled answers queries from a Bernoulli sample of the stream:
// each distinct item is admitted with probability q by a secret-seeded
// hash (so duplicates are admitted consistently), and the release
// scales the inner estimate by 1/q. An adaptive adversary probing for
// masked items gets a corrupted signal — a fraction (1−q) of probes
// show no estimate movement simply because they were never admitted,
// so the attack set it assembles is mostly items the sketch has never
// hashed, and replaying that set inflates the estimate right along
// with the truth. The price is honest-stream variance: the sampling
// error adds ~sqrt((1−q)/(q·n)) relative noise on top of the inner
// sketch's own.
type Subsampled struct {
	inner     Estimator
	q         float64
	admitSeed uint64
	threshold uint64 // admit when hash <= threshold
}

// NewSubsampled wraps inner with Bernoulli-q admission under a secret
// seed. q must be in (0,1]; q = 1 admits everything.
func NewSubsampled(inner Estimator, q float64, seed uint64) *Subsampled {
	if !(q > 0 && q <= 1) {
		panic("robust: q must be in (0,1]")
	}
	return &Subsampled{
		inner:     inner,
		q:         q,
		admitSeed: admitSeed(seed),
		threshold: admitThreshold(q),
	}
}

// admitSeed derives the sampling seed from the sketch seed; it must
// differ from the inner sketch's hash seed or admission correlates
// with the sketch's own randomness.
func admitSeed(seed uint64) uint64 { return seed ^ 0x5bf0f3c8a9d17e42 }

// admitThreshold maps the admission rate onto the uint64 hash range.
func admitThreshold(q float64) uint64 {
	if q >= 1 {
		return math.MaxUint64
	}
	return uint64(q * float64(math.MaxUint64))
}

// Add inserts an item if its admission hash clears the rate.
func (s *Subsampled) Add(item []byte) {
	if hashx.XXHash64(item, s.admitSeed) <= s.threshold {
		s.inner.Add(item)
	}
}

// AddUint64 inserts an integer item if admitted.
func (s *Subsampled) AddUint64(v uint64) {
	if hashx.HashUint64(v, s.admitSeed) <= s.threshold {
		s.inner.AddUint64(v)
	}
}

// Estimate returns the inner estimate scaled back to the full stream.
func (s *Subsampled) Estimate() float64 { return s.inner.Estimate() / s.q }

// SizeBytes returns the wrapped sketch's footprint.
func (s *Subsampled) SizeBytes() int { return s.inner.SizeBytes() }
