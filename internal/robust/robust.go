// Package robust implements the sketch-switching technique from "A
// Framework for Adversarially Robust Streaming Algorithms"
// (Ben-Eliezer, Jayaram, Woodruff, Yogev — PODS 2020 best paper).
//
// A plain randomized sketch (AMS, HLL, …) assumes its input is fixed
// before the randomness is drawn. An *adaptive* adversary who sees each
// query answer can steer later updates against the realized randomness
// and drive the estimate arbitrarily far from the truth. Sketch
// switching defeats this by maintaining λ independent copies and
// exposing each copy's randomness for only one output value: the
// wrapper keeps returning its last answer until the *current* copy's
// estimate drifts by a (1+ε) factor, then advances to a fresh copy and
// re-bases the answer. For monotone quantities such as insertion-only
// F₂, the answer changes only O(ε⁻¹·log n) times, so that many copies
// suffice for the whole stream. Experiment E13 mounts the adaptive
// attack against a naive sketch and the wrapper side by side.
package robust

import (
	"math"

	"repro/internal/ams"
)

// F2 is an adversarially robust F₂ estimator wrapping λ independent
// AMS sketches with sketch switching.
type F2 struct {
	copies []*ams.Sketch
	cur    int
	last   float64 // last revealed output; NaN until the first query
	eps    float64
	burned bool // true when every copy's randomness has been exposed
}

// NewF2 creates a robust estimator with switching threshold eps and
// lambda independent copies, each a groups×perGroup AMS sketch.
func NewF2(eps float64, lambda, groups, perGroup int, seed uint64) *F2 {
	if !(eps > 0 && eps < 1) {
		panic("robust: eps must be in (0,1)")
	}
	if lambda < 1 {
		panic("robust: lambda must be >= 1")
	}
	copies := make([]*ams.Sketch, lambda)
	for i := range copies {
		copies[i] = ams.New(groups, perGroup, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	return &F2{copies: copies, eps: eps, last: math.NaN()}
}

// LambdaFor returns the number of copies needed for an insertion-only
// stream of total squared norm up to maxF2: the flip number
// ⌈log_{1+ε}(maxF2)⌉ + 1.
func LambdaFor(eps, maxF2 float64) int {
	if maxF2 < 2 {
		maxF2 = 2
	}
	return int(math.Ceil(math.Log(maxF2)/math.Log1p(eps))) + 1
}

// AddUint64 adds weight to item across every copy (the adversary's
// updates must reach all copies, revealed or not).
func (r *F2) AddUint64(item uint64, weight int64) {
	for _, c := range r.copies {
		c.AddUint64(item, weight)
	}
}

// Update adds one occurrence of a byte-slice item.
func (r *F2) Update(item []byte) {
	for _, c := range r.copies {
		c.Update(item)
	}
}

// Estimate returns the robust F₂ estimate. The output only changes when
// the current (unexposed) copy's estimate has moved a (1+ε) factor from
// the last output, at which point the wrapper advances to the next
// fresh copy.
func (r *F2) Estimate() float64 {
	if math.IsNaN(r.last) {
		r.last = r.copies[r.cur].F2()
		return r.last
	}
	cur := r.copies[r.cur].F2()
	lo, hi := r.last/(1+r.eps), r.last*(1+r.eps)
	if cur >= lo && cur <= hi {
		return r.last
	}
	// Output must move: burn the current copy and re-base on the next.
	// Once all copies are exposed the output freezes — the caller sized
	// λ below the stream's flip number and Exhausted() reports it.
	if r.cur+1 == len(r.copies) {
		r.burned = true
		return r.last
	}
	r.cur++
	r.last = r.copies[r.cur].F2()
	return r.last
}

// Exhausted reports whether the wrapper has consumed all copies; once
// true, the robustness guarantee has expired (the caller sized λ too
// small for the stream's flip number).
func (r *F2) Exhausted() bool { return r.burned }

// Copies returns λ.
func (r *F2) Copies() int { return len(r.copies) }

// SizeBytes returns the total memory across copies — the price of
// robustness that E13 reports alongside the accuracy.
func (r *F2) SizeBytes() int {
	total := 0
	for _, c := range r.copies {
		total += c.SizeBytes()
	}
	return total
}
