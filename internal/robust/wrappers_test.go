package robust

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/cardinality"
)

// Each defended wrapper must preserve honest-stream utility: on a
// non-adaptive stream of n distinct items the revealed estimate stays
// within the wrapper's advertised tolerance of the truth, at every
// interleaved read. (The attack-side guarantees live in
// internal/robust/attack; these are the other half of the contract.)

func feedDistinct(e Estimator, lo, hi uint64) {
	var buf []byte
	for v := lo; v < hi; v++ {
		buf = strconv.AppendUint(buf[:0], v, 10)
		e.Add(buf)
	}
}

// checkTracks reads the estimator every `stride` items up to n and
// fails if any revealed estimate leaves [truth/(1+tol), truth*(1+tol)].
func checkTracks(t *testing.T, e Estimator, n, stride uint64, tol float64) {
	t.Helper()
	for fed := uint64(0); fed < n; fed += stride {
		feedDistinct(e, fed, fed+stride)
		truth := float64(fed + stride)
		got := e.Estimate()
		if got < truth/(1+tol) || got > truth*(1+tol) {
			t.Fatalf("at n=%.0f: estimate %.0f outside ±%.0f%%", truth, got, tol*100)
		}
	}
}

func TestSwitchingHLLHonestStream(t *testing.T) {
	// Interleaved reads advance copies as the stream grows; λ=128
	// covers log_{1.05}(growth) epochs with room to spare.
	s := NewSwitchingHLL(0.05, 128, 12, 1)
	checkTracks(t, s, 40000, 2000, 0.15)
	if s.Exhausted() {
		t.Errorf("honest stream exhausted λ=%d copies (used %d)", s.Copies(), s.CopiesUsed())
	}
}

func TestSwitchingKMVHonestStream(t *testing.T) {
	s := NewSwitchingKMV(0.05, 128, 512, 1)
	checkTracks(t, s, 40000, 2000, 0.15)
	if s.Exhausted() {
		t.Errorf("honest stream exhausted λ=%d copies (used %d)", s.Copies(), s.CopiesUsed())
	}
}

func TestNoisyHonestStream(t *testing.T) {
	// Tolerance: HLL p=12 error (~2%) compounded with the (1+rho)
	// rounding grid (half a step each way).
	n := NewNoisy(cardinality.NewHLL(12, 1), 0.1, 1)
	checkTracks(t, n, 40000, 2000, 0.2)
}

func TestNoisyDeterministicRelease(t *testing.T) {
	// Repeated queries with no interleaved writes must be bit-identical
	// — averaging repeats must not wash the noise out.
	n := NewNoisy(cardinality.NewHLL(12, 1), 0.1, 1)
	feedDistinct(n, 0, 10000)
	first := n.Estimate()
	for i := 0; i < 100; i++ {
		if got := n.Estimate(); got != first {
			t.Fatalf("repeat query %d: %v != %v", i, got, first)
		}
	}
}

func TestSubsampledHonestStream(t *testing.T) {
	// q=1/4: inner sees a Bernoulli quarter of the stream; the 1/q
	// scale-up adds binomial variance on top of HLL error.
	s := NewSubsampled(cardinality.NewHLL(12, 1), 0.25, 1)
	feedDistinct(s, 0, 40000)
	got := s.Estimate()
	if got < 40000*0.85 || got > 40000*1.15 {
		t.Fatalf("subsampled estimate %.0f for 40000 distinct", got)
	}
}

func TestWrapperSizeAccounting(t *testing.T) {
	hll := cardinality.NewHLL(12, 1)
	base := hll.SizeBytes()
	if got := NewSwitchingHLL(0.05, 8, 12, 1).SizeBytes(); got < 8*base {
		t.Errorf("switching λ=8 SizeBytes %d < 8×%d", got, base)
	}
	if got := NewNoisy(cardinality.NewHLL(12, 1), 0.1, 1).SizeBytes(); got < base {
		t.Errorf("noisy SizeBytes %d < inner %d", got, base)
	}
	if got := NewSubsampled(cardinality.NewHLL(12, 1), 0.5, 1).SizeBytes(); got < base {
		t.Errorf("subsampled SizeBytes %d < inner %d", got, base)
	}
}

func TestWrapperPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("switching eps=0", func() { NewSwitchingHLL(0, 4, 12, 1) })
	mustPanic("switching lambda=0", func() { NewSwitchingHLL(0.05, 0, 12, 1) })
	mustPanic("noisy rho=0", func() { NewNoisy(cardinality.NewHLL(12, 1), 0, 1) })
	mustPanic("noisy rho=1", func() { NewNoisy(cardinality.NewHLL(12, 1), 1, 1) })
	mustPanic("subsampled q=0", func() { NewSubsampled(cardinality.NewHLL(12, 1), 0, 1) })
	mustPanic("subsampled q>1", func() { NewSubsampled(cardinality.NewHLL(12, 1), 1.5, 1) })
}

func TestNoisyRoundGrid(t *testing.T) {
	// The release grid is multiplicative: consecutive representable
	// outputs differ by exactly (1+rho), and small values pass through.
	const rho = 0.1
	phase := noisePhase(99)
	if got := noisyRound(0.5, rho, phase); got != 0.5 {
		t.Errorf("values <=1 must release exactly, got %v", got)
	}
	prev := 0.0
	distinct := 0
	for v := 2.0; v < 1e6; v *= 1.01 {
		r := noisyRound(v, rho, phase)
		if math.Abs(r/v-1) > rho {
			t.Fatalf("noisyRound(%v) = %v: off grid by more than rho", v, r)
		}
		if r != prev {
			if prev != 0 {
				step := r / prev
				if math.Abs(step-(1+rho)) > 1e-9 {
					t.Fatalf("grid step %v, want %v", step, 1+rho)
				}
			}
			prev = r
			distinct++
		}
	}
	if distinct < 50 {
		t.Errorf("only %d distinct grid points over 6 decades", distinct)
	}
}
