package robust

import (
	"math"
	"testing"

	"repro/internal/ams"
	"repro/internal/randx"
)

// adaptiveAttack runs the black-box underestimation attack against an
// F2 oracle: repeatedly probe fresh items; when inserting an item makes
// the reported estimate drop (its sign pattern opposes the sketch's
// current linear state), hammer that item. Returns the final reported
// estimate and the true F2.
func adaptiveAttack(update func(uint64, int64), estimate func() float64, steps int, seed uint64) (reported, trueF2 float64) {
	rng := randx.New(seed)
	freq := map[uint64]int64{}
	nextItem := uint64(1)
	for step := 0; step < steps; step++ {
		before := estimate()
		probe := nextItem
		nextItem++
		update(probe, 1)
		freq[probe]++
		after := estimate()
		if after <= before {
			// Favourable item: hammer it.
			burst := int64(5 + rng.Intn(10))
			update(probe, burst)
			freq[probe] += burst
		}
	}
	for _, f := range freq {
		trueF2 += float64(f) * float64(f)
	}
	return estimate(), trueF2
}

func TestAdaptiveAttackBreaksNaiveAMS(t *testing.T) {
	// A plain AMS sketch under the adaptive attack should underestimate
	// F2 badly — this is the failure mode the PODS 2020 framework
	// addresses. (If this test ever fails, the attack has regressed,
	// not the sketch.)
	s := ams.New(1, 64, 42)
	reported, trueF2 := adaptiveAttack(
		func(item uint64, w int64) { s.AddUint64(item, w) },
		s.F2,
		1500, 7)
	if reported > 0.5*trueF2 {
		t.Errorf("attack failed to break naive sketch: reported %.0f vs true %.0f", reported, trueF2)
	}
}

func TestRobustSurvivesAdaptiveAttack(t *testing.T) {
	const eps = 0.5
	lambda := LambdaFor(eps, 1e9)
	r := NewF2(eps, lambda, 1, 64, 42)
	reported, trueF2 := adaptiveAttack(r.AddUint64, r.Estimate, 1500, 7)
	if r.Exhausted() {
		t.Fatal("wrapper ran out of copies — lambda sized too small")
	}
	// The robust estimate must stay within a constant factor of truth
	// (AMS error + (1+eps) switching slack).
	if reported < trueF2/4 || reported > trueF2*4 {
		t.Errorf("robust estimate %.0f outside [%0.f, %.0f]", reported, trueF2/4, trueF2*4)
	}
}

func TestRobustTracksHonestStream(t *testing.T) {
	// On an oblivious stream the wrapper should track F2 within the
	// (1+eps) switching quantization.
	const eps = 0.2
	r := NewF2(eps, 40, 3, 64, 1)
	var trueF2 float64
	freq := map[uint64]int64{}
	rng := randx.New(2)
	for i := 0; i < 10000; i++ {
		item := uint64(rng.Intn(500))
		r.AddUint64(item, 1)
		freq[item]++
		if i%500 == 499 {
			trueF2 = 0
			for _, f := range freq {
				trueF2 += float64(f) * float64(f)
			}
			got := r.Estimate()
			if got < trueF2/2 || got > trueF2*2 {
				t.Fatalf("step %d: robust estimate %.0f vs true %.0f", i, got, trueF2)
			}
		}
	}
	if r.Exhausted() {
		t.Error("honest stream exhausted the copies")
	}
}

func TestOutputChangesAreQuantized(t *testing.T) {
	// The revealed output must change at most λ times.
	const eps = 0.3
	lambda := 20
	r := NewF2(eps, lambda, 3, 64, 3)
	changes := 0
	last := math.NaN()
	rng := randx.New(4)
	for i := 0; i < 50000; i++ {
		r.AddUint64(uint64(rng.Intn(1000)), 1)
		got := r.Estimate()
		if !math.IsNaN(last) && got != last {
			changes++
		}
		last = got
	}
	if changes > lambda {
		t.Errorf("output changed %d times with lambda=%d", changes, lambda)
	}
}

func TestLambdaFor(t *testing.T) {
	if LambdaFor(0.5, 1e6) < 10 {
		t.Error("lambda suspiciously small")
	}
	if LambdaFor(0.1, 1e6) <= LambdaFor(0.5, 1e6) {
		t.Error("smaller eps must need more copies")
	}
	if LambdaFor(0.5, 0) < 1 {
		t.Error("degenerate maxF2 must still give lambda >= 1")
	}
}

func TestSizeAccounting(t *testing.T) {
	r := NewF2(0.5, 4, 2, 32, 1)
	if r.Copies() != 4 {
		t.Errorf("Copies = %d", r.Copies())
	}
	single := ams.New(2, 32, 1).SizeBytes()
	if r.SizeBytes() != 4*single {
		t.Errorf("SizeBytes = %d, want %d", r.SizeBytes(), 4*single)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"eps":    func() { NewF2(0, 4, 1, 8, 1) },
		"lambda": func() { NewF2(0.5, 0, 1, 8, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUpdateBytes(t *testing.T) {
	r := NewF2(0.5, 2, 1, 16, 9)
	for i := 0; i < 100; i++ {
		r.Update([]byte{byte(i)})
	}
	if est := r.Estimate(); est <= 0 {
		t.Errorf("estimate %.1f after 100 updates", est)
	}
}

func BenchmarkRobustUpdate(b *testing.B) {
	r := NewF2(0.5, 16, 1, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AddUint64(uint64(i), 1)
	}
}
