package robust

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

func TestDistinctTracksHonestStream(t *testing.T) {
	const eps = 0.2
	d := NewDistinct(eps, DistinctLambdaFor(eps, 1e6), 12, 1)
	for i := uint64(0); i < 100000; i++ {
		d.AddUint64(i)
		if i%5000 == 4999 {
			got := d.Estimate()
			want := float64(i + 1)
			// Allow the switching quantization (1+eps) on top of HLL
			// error.
			if got < want/(1+3*eps) || got > want*(1+3*eps) {
				t.Fatalf("at n=%d: robust estimate %.0f", i+1, got)
			}
		}
	}
	if d.Exhausted() {
		t.Error("honest stream exhausted the copies")
	}
}

func TestDistinctOutputQuantized(t *testing.T) {
	const lambda = 30
	d := NewDistinct(0.3, lambda, 10, 2)
	changes := 0
	last := math.NaN()
	for i := uint64(0); i < 200000; i++ {
		d.AddUint64(i)
		if i%100 == 0 {
			got := d.Estimate()
			if !math.IsNaN(last) && got != last {
				changes++
			}
			last = got
		}
	}
	if changes > lambda {
		t.Errorf("output changed %d times with lambda=%d", changes, lambda)
	}
}

func TestDistinctAdaptiveAttackResisted(t *testing.T) {
	// Adversary strategy against plain HLL: probe candidate items and
	// keep only those that do NOT move the estimate (their hashes are
	// "shadowed" by current register maxima). Feeding many shadowed
	// items inflates the true distinct count while a naive sketch's
	// report stays flat.
	attack := func(add func(uint64), estimate func() float64, budget int) (inserted float64, reported float64) {
		next := uint64(1)
		count := 0
		for probes := 0; probes < budget; probes++ {
			before := estimate()
			add(next)
			count++
			after := estimate()
			if after > before {
				// Item moved the sketch: avoid similar ones? The naive
				// adversary just continues scanning.
				_ = after
			} else {
				// Shadowed item: hammer near-duplicates of it (re-adding
				// the same value does nothing to the truth, so the
				// adversary scans forward instead).
				for j := uint64(0); j < 20; j++ {
					add(next + uint64(budget)*2 + j*1e6)
					count++
				}
			}
			next++
		}
		return float64(count), estimate()
	}
	// Plain HLL under attack.
	naive := cardinalityHLL(8, 42)
	nIns, nRep := attack(naive.AddUint64, naive.Estimate, 1200)
	// Robust wrapper under the same attack.
	rob := NewDistinct(0.5, DistinctLambdaFor(0.5, 1e7), 8, 42)
	rIns, rRep := attack(rob.AddUint64, rob.Estimate, 1200)

	naiveRatio := nRep / nIns
	robustRatio := rRep / rIns
	// The attack interacts with hash shadows; at minimum the robust
	// wrapper must not be *more* fooled than the naive sketch, and must
	// stay within a constant factor of the truth.
	if robustRatio < naiveRatio/2 {
		t.Errorf("robust ratio %.3f much worse than naive %.3f", robustRatio, naiveRatio)
	}
	if rRep < rIns/8 || rRep > rIns*8 {
		t.Errorf("robust estimate %.0f far from true %.0f", rRep, rIns)
	}
}

// cardinalityHLL avoids an import cycle in test helpers.
func cardinalityHLL(p uint8, seed uint64) interface {
	AddUint64(uint64)
	Estimate() float64
} {
	return newHLLForTest(p, seed)
}

func TestDistinctSizeAndPanics(t *testing.T) {
	d := NewDistinct(0.5, 3, 10, 1)
	if d.Copies() != 3 {
		t.Errorf("Copies = %d", d.Copies())
	}
	if d.SizeBytes() == 0 {
		t.Error("size accounting broken")
	}
	for name, fn := range map[string]func(){
		"eps":    func() { NewDistinct(1, 2, 10, 1) },
		"lambda": func() { NewDistinct(0.5, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	if DistinctLambdaFor(0.5, 0) < 1 {
		t.Error("degenerate lambda")
	}
}

func TestDistinctByteItems(t *testing.T) {
	d := NewDistinct(0.3, 10, 10, 5)
	rng := randx.New(6)
	truth := map[string]bool{}
	for i := 0; i < 20000; i++ {
		s := string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) +
			string(rune('a'+rng.Intn(26)))
		d.Add([]byte(s))
		truth[s] = true
	}
	if err := core.RelErr(d.Estimate(), float64(len(truth))); err > 0.5 {
		t.Errorf("estimate rel err %.3f", err)
	}
}
