package robust

import (
	"math"

	"repro/internal/cardinality"
)

// Switching generalizes the sketch-switching defense (BJWY PODS 2020)
// over any Estimator: λ independent copies — each built by a caller
// factory with its own derived seed — absorb every update, but only
// the current copy's randomness is ever exposed through Estimate. The
// output is frozen until the current copy drifts by a (1+ε) factor,
// then the wrapper burns that copy and re-bases on the next fresh one.
// An adaptive adversary who steers updates against the revealed
// answers is always reacting to randomness that stops mattering after
// one output change; for monotone quantities (insertion-only F0),
// λ = O(log_{1+ε} n) copies cover the whole stream.
type Switching struct {
	copies []Estimator
	cur    int
	last   float64 // last revealed output; NaN until the first query
	eps    float64
	burned bool
}

// NewSwitching builds a switching wrapper with threshold eps over
// lambda copies produced by factory(i) — the factory must derive an
// independent seed per index, or the copies share their randomness and
// the defense is void.
func NewSwitching(eps float64, lambda int, factory func(i int) Estimator) *Switching {
	if !(eps > 0 && eps < 1) {
		panic("robust: eps must be in (0,1)")
	}
	if lambda < 1 {
		panic("robust: lambda must be >= 1")
	}
	copies := make([]Estimator, lambda)
	for i := range copies {
		copies[i] = factory(i)
	}
	return &Switching{copies: copies, eps: eps, last: math.NaN()}
}

// copySeed spaces per-copy seeds by a 64-bit golden-ratio stride, the
// same derivation every switching construction in this package uses.
func copySeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9e3779b97f4a7c15
}

// NewSwitchingHLL is switching over HLL copies of precision p.
func NewSwitchingHLL(eps float64, lambda int, p uint8, seed uint64) *Switching {
	return NewSwitching(eps, lambda, func(i int) Estimator {
		return cardinality.NewHLL(p, copySeed(seed, i))
	})
}

// NewSwitchingKMV is switching over bottom-k KMV copies — the
// extension that closes the "HLL only" gap in the original Distinct.
func NewSwitchingKMV(eps float64, lambda, k int, seed uint64) *Switching {
	return NewSwitching(eps, lambda, func(i int) Estimator {
		return cardinality.NewKMV(k, copySeed(seed, i))
	})
}

// Add inserts an item into every copy (the adversary's updates must
// reach unrevealed copies too).
func (s *Switching) Add(item []byte) {
	for _, c := range s.copies {
		c.Add(item)
	}
}

// AddUint64 inserts an integer item into every copy.
func (s *Switching) AddUint64(v uint64) {
	for _, c := range s.copies {
		c.AddUint64(v)
	}
}

// Estimate returns the robust estimate with (1+ε)-quantized output
// changes.
func (s *Switching) Estimate() float64 {
	if math.IsNaN(s.last) {
		s.last = s.copies[s.cur].Estimate()
		return s.last
	}
	cur := s.copies[s.cur].Estimate()
	if cur >= s.last/(1+s.eps) && cur <= s.last*(1+s.eps) {
		return s.last
	}
	if s.cur+1 == len(s.copies) {
		s.burned = true
		return s.last
	}
	s.cur++
	s.last = s.copies[s.cur].Estimate()
	return s.last
}

// Exhausted reports whether every copy's randomness has been exposed;
// once true the robustness guarantee has expired.
func (s *Switching) Exhausted() bool { return s.burned }

// Copies returns λ.
func (s *Switching) Copies() int { return len(s.copies) }

// CopiesUsed returns how many copies have been exposed so far.
func (s *Switching) CopiesUsed() int { return s.cur + 1 }

// SizeBytes returns the total memory across copies — the λ× price of
// the defense.
func (s *Switching) SizeBytes() int {
	total := 0
	for _, c := range s.copies {
		total += c.SizeBytes()
	}
	return total
}
