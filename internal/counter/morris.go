// Package counter implements approximate counting: the Morris counter
// (1977), its base-parameterized refinement, and the Nelson–Yu
// optimal-bounds variant (PODS 2022 best paper). These are the paper's
// canonical example of an asymptotic space reduction — counting n
// events in O(log log n) bits instead of the log₂ n an exact binary
// counter needs (experiment E1).
package counter

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/randx"
)

// Morris is the classic Morris approximate counter. It stores only an
// exponent X and increments it with probability b^(−X), where b is the
// base parameter. The estimate (b^X − 1)/(b − 1) is unbiased; smaller
// b−1 trades space for accuracy — relative standard error is roughly
// √((b−1)/2).
type Morris struct {
	x    uint16 // the stored exponent; 16 bits count past 10^300 for practical bases
	base float64
	p    float64 // cached bump probability base^(-x)
	rng  *randx.RNG
	seed uint64
}

// NewMorris returns a Morris counter with base 2 (the original 1977
// parameterization) seeded for reproducibility.
func NewMorris(seed uint64) *Morris { return NewMorrisBase(2, seed) }

// NewMorrisBase returns a Morris counter with the given base b > 1.
// Bases near 1 (e.g. 1.08) give percent-level accuracy while still
// needing only log_b(n) ≈ O(log n / (b−1))... stored in the exponent —
// the point of E1 is the exponent itself needs just log₂ log_b n bits.
func NewMorrisBase(base float64, seed uint64) *Morris {
	if base <= 1 {
		panic("counter: Morris base must be > 1")
	}
	return &Morris{base: base, p: 1, rng: randx.New(seed), seed: seed}
}

// Increment registers one event: with probability base^(−x) the stored
// exponent is bumped.
func (m *Morris) Increment() {
	if m.rng.Float64() < m.p {
		m.bump()
	}
}

// IncrementN registers n events. It is distributionally identical to n
// calls of Increment but runs in O(exponent transitions) ≈
// O(log n/(base−1)) time by sampling the geometric waiting time until
// the next exponent bump.
func (m *Morris) IncrementN(n uint64) {
	for n > 0 {
		if m.p >= 1 {
			m.bump()
			n--
			continue
		}
		// Events until the next bump: Geometric(p) failures + 1.
		wait := uint64(m.rng.Geometric(m.p)) + 1
		if wait > n {
			return // no bump within the remaining events
		}
		n -= wait
		m.bump()
	}
}

func (m *Morris) bump() {
	if m.x < math.MaxUint16 {
		m.x++
		m.p /= m.base
	}
}

// Count returns the unbiased estimate (b^X − 1)/(b − 1).
func (m *Morris) Count() float64 {
	return (math.Pow(m.base, float64(m.x)) - 1) / (m.base - 1)
}

// Exponent exposes the stored register value; its bit-length is the
// space cost that experiment E1 reports.
func (m *Morris) Exponent() uint16 { return m.x }

// Base returns the base parameter.
func (m *Morris) Base() float64 { return m.base }

// BitsUsed returns the number of bits needed to store the current
// exponent value — the whole state of the sketch.
func (m *Morris) BitsUsed() int {
	if m.x == 0 {
		return 1
	}
	return int(math.Floor(math.Log2(float64(m.x)))) + 1
}

// RelativeStandardError returns the theoretical relative standard
// error ≈ √((b−1)/2) of the estimate, independent of n.
func (m *Morris) RelativeStandardError() float64 {
	return math.Sqrt((m.base - 1) / 2)
}

// Merge folds another Morris counter of the same base into this one.
// Morris counters merge by probabilistic carry: for each of the
// other counter's implied increments at its exponent level we flip the
// appropriate coins. The simple standard approach (merge exponents via
// repeated probabilistic promotion) preserves unbiasedness in
// expectation; we implement the Csűrös-style merge that adds the
// estimated counts and re-encodes.
func (m *Morris) Merge(other *Morris) error {
	if m.base != other.base {
		return fmt.Errorf("%w: morris bases %v vs %v", core.ErrIncompatible, m.base, other.base)
	}
	total := m.Count() + other.Count()
	// Re-encode: find the exponent whose estimate is closest to total,
	// randomizing between the two bracketing exponents to stay unbiased.
	m.x = m.encode(total)
	m.p = math.Pow(m.base, -float64(m.x))
	return nil
}

// encode maps an estimate back to an exponent with randomized rounding
// so that the expected decoded value equals the input.
func (m *Morris) encode(count float64) uint16 {
	if count <= 0 {
		return 0
	}
	// Invert count = (b^x - 1)/(b - 1)  =>  x = log_b(1 + (b-1)count).
	x := math.Log1p((m.base-1)*count) / math.Log(m.base)
	lo := math.Floor(x)
	// Randomized rounding in estimate space: choose hi with the
	// probability that makes the expected estimate exact.
	estLo := (math.Pow(m.base, lo) - 1) / (m.base - 1)
	estHi := (math.Pow(m.base, lo+1) - 1) / (m.base - 1)
	var pHi float64
	if estHi > estLo {
		pHi = (count - estLo) / (estHi - estLo)
	}
	xi := int(lo)
	if m.rng.Float64() < pHi {
		xi++
	}
	if xi < 0 {
		xi = 0
	}
	if xi > math.MaxUint16 {
		xi = math.MaxUint16
	}
	return uint16(xi)
}

// MarshalBinary serializes the counter (the RNG state is reseeded on
// load; estimates are unaffected).
func (m *Morris) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagMorris, 1)
	w.U32(uint32(m.x))
	w.F64(m.base)
	w.U64(m.seed)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a counter serialized by MarshalBinary.
func (m *Morris) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagMorris)
	if err != nil {
		return err
	}
	x := uint16(r.U32())
	base := r.F64()
	seed := r.U64()
	if err := r.Done(); err != nil {
		return err
	}
	if base <= 1 {
		return fmt.Errorf("%w: morris base %v", core.ErrCorrupt, base)
	}
	m.x, m.base, m.seed = x, base, seed
	m.p = math.Pow(base, -float64(x))
	m.rng = randx.New(seed ^ 0x4d6f7272) // decorrelate post-load coin flips
	return nil
}
