package counter

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

func TestMorrisAccuracyBase2(t *testing.T) {
	// Base-2 Morris has RSE ~ 0.7; average many trials to test
	// unbiasedness rather than per-trial accuracy.
	const n = 100000
	const trials = 400
	var sum float64
	for trial := 0; trial < trials; trial++ {
		m := NewMorris(uint64(trial))
		for i := 0; i < n; i++ {
			m.Increment()
		}
		sum += m.Count()
	}
	mean := sum / trials
	if math.Abs(mean-n)/n > 0.15 {
		t.Errorf("mean estimate %.0f over %d trials, want ~%d (unbiasedness)", mean, trials, n)
	}
}

func TestMorrisIncrementNMatchesIncrement(t *testing.T) {
	// The fast-forward path must produce the same estimate
	// distribution as unit increments: compare means over trials.
	const n = 200000
	const trials = 120
	var sumUnit, sumBatch float64
	for trial := 0; trial < trials; trial++ {
		unit := NewMorrisBase(1.3, uint64(trial)+1)
		for i := 0; i < n; i++ {
			unit.Increment()
		}
		batch := NewMorrisBase(1.3, uint64(trial)+7001)
		batch.IncrementN(n)
		sumUnit += unit.Count()
		sumBatch += batch.Count()
	}
	meanUnit, meanBatch := sumUnit/trials, sumBatch/trials
	if math.Abs(meanUnit-meanBatch)/meanUnit > 0.15 {
		t.Errorf("IncrementN mean %.0f deviates from Increment mean %.0f", meanBatch, meanUnit)
	}
	if math.Abs(meanBatch-n)/n > 0.15 {
		t.Errorf("IncrementN mean %.0f deviates from true %d", meanBatch, n)
	}
}

func TestMorrisIncrementNHugeFast(t *testing.T) {
	m := NewMorrisBase(1.05, 9)
	m.IncrementN(1 << 40) // must return in microseconds, not hours
	if err := core.RelErr(m.Count(), float64(uint64(1)<<40)); err > 1 {
		t.Errorf("rel err %.3f after 2^40 fast increments", err)
	}
}

func TestMorrisSmallBaseAccuracy(t *testing.T) {
	// Base 1.08 should give ~20%% RSE; single trials land close.
	const n = 500000
	m := NewMorrisBase(1.08, 7)
	for i := 0; i < n; i++ {
		m.Increment()
	}
	if err := core.RelErr(m.Count(), n); err > 0.8 {
		t.Errorf("base-1.08 estimate %.0f, rel err %.2f too large", m.Count(), err)
	}
}

func TestMorrisSpaceIsDoubleLog(t *testing.T) {
	// The stored exponent after n increments is ~log2(n), so its
	// bit-length is ~log2 log2 n — exponentially smaller than the
	// exact counter. This is the E1 headline.
	m := NewMorris(3)
	const n = 1 << 20
	for i := 0; i < n; i++ {
		m.Increment()
	}
	if m.BitsUsed() > 8 {
		t.Errorf("Morris used %d bits for n=2^20; expected ~5", m.BitsUsed())
	}
	if ExactBits(n) != 21 {
		t.Errorf("ExactBits(2^20) = %d, want 21", ExactBits(n))
	}
}

func TestMorrisCountMonotoneInExponent(t *testing.T) {
	m := NewMorris(1)
	prev := m.Count()
	for m.x < 30 {
		m.x++
		if c := m.Count(); c <= prev {
			t.Fatal("Count must grow with exponent")
		} else {
			prev = c
		}
	}
}

func TestMorrisMergePreservesTotal(t *testing.T) {
	// Average of merged estimates should approximate the combined count.
	const nA, nB = 40000, 60000
	const trials = 300
	var sum float64
	for trial := 0; trial < trials; trial++ {
		a := NewMorrisBase(1.2, uint64(trial)*2+1)
		b := NewMorrisBase(1.2, uint64(trial)*2+2)
		for i := 0; i < nA; i++ {
			a.Increment()
		}
		for i := 0; i < nB; i++ {
			b.Increment()
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		sum += a.Count()
	}
	mean := sum / trials
	if math.Abs(mean-(nA+nB))/(nA+nB) > 0.12 {
		t.Errorf("merged mean %.0f, want ~%d", mean, nA+nB)
	}
}

func TestMorrisMergeIncompatible(t *testing.T) {
	a := NewMorrisBase(1.5, 1)
	b := NewMorrisBase(2.0, 1)
	if err := a.Merge(b); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across bases must fail")
	}
}

func TestMorrisSerialization(t *testing.T) {
	m := NewMorrisBase(1.3, 5)
	for i := 0; i < 10000; i++ {
		m.Increment()
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Morris
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Count() != m.Count() || g.Base() != m.Base() || g.Exponent() != m.Exponent() {
		t.Error("round trip changed state")
	}
	if err := g.UnmarshalBinary(data[:7]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated input accepted")
	}
}

func TestMorrisPanicsOnBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for base <= 1")
		}
	}()
	NewMorrisBase(1.0, 1)
}

func TestMorrisRSEFormula(t *testing.T) {
	m := NewMorrisBase(1.5, 1)
	if got, want := m.RelativeStandardError(), math.Sqrt(0.25); math.Abs(got-want) > 1e-12 {
		t.Errorf("RSE = %v, want %v", got, want)
	}
}

func TestNelsonYuAccuracy(t *testing.T) {
	const n = 200000
	c := NewNelsonYu(0.2, 0.05, 11)
	for i := 0; i < n; i++ {
		c.Increment()
	}
	if err := core.RelErr(c.Count(), n); err > 0.3 {
		t.Errorf("NelsonYu rel err %.3f exceeds budget (eps=0.2 + slack)", err)
	}
}

func TestNelsonYuMedianBeatsOneCopy(t *testing.T) {
	// With many repetitions the median estimate should be much more
	// reliable than a single base-matched Morris counter. Measure the
	// failure rate of both across trials.
	const n = 50000
	const trials = 60
	eps := 0.3
	failuresSingle, failuresMedian := 0, 0
	for trial := 0; trial < trials; trial++ {
		ny := NewNelsonYu(eps, 0.05, uint64(trial)+100)
		single := NewMorrisBase(1+2*eps*eps, uint64(trial)+5000)
		for i := 0; i < n; i++ {
			ny.Increment()
			single.Increment()
		}
		if core.RelErr(ny.Count(), n) > eps*1.5 {
			failuresMedian++
		}
		if core.RelErr(single.Count(), n) > eps*1.5 {
			failuresSingle++
		}
	}
	if failuresMedian > failuresSingle {
		t.Errorf("median amplification did not help: median failures %d vs single %d",
			failuresMedian, failuresSingle)
	}
	if failuresMedian > trials/5 {
		t.Errorf("NelsonYu failed %d/%d trials", failuresMedian, trials)
	}
}

func TestNelsonYuOddRepetitions(t *testing.T) {
	c := NewNelsonYu(0.1, 0.01, 1)
	if c.Repetitions()%2 == 0 {
		t.Error("repetition count should be odd for a clean median")
	}
	if s := c.Spec(); s.Epsilon != 0.1 || s.Delta != 0.01 {
		t.Errorf("Spec = %+v", s)
	}
}

func TestNelsonYuMerge(t *testing.T) {
	a := NewNelsonYu(0.2, 0.1, 1)
	b := NewNelsonYu(0.2, 0.1, 2)
	for i := 0; i < 10000; i++ {
		a.Increment()
		b.Increment()
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := core.RelErr(a.Count(), 20000); err > 0.5 {
		t.Errorf("merged estimate rel err %.3f", err)
	}
	c := NewNelsonYu(0.3, 0.1, 3)
	if err := a.Merge(c); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across specs must fail")
	}
}

func TestNelsonYuSerialization(t *testing.T) {
	c := NewNelsonYu(0.25, 0.1, 9)
	for i := 0; i < 5000; i++ {
		c.Increment()
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g NelsonYu
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Count() != c.Count() {
		t.Error("round trip changed estimate")
	}
	if g.Repetitions() != c.Repetitions() {
		t.Error("round trip changed repetitions")
	}
}

func TestNelsonYuPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNelsonYu(0, 0.5, 1)
}

func TestExactBits(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1 << 30: 31}
	for n, want := range cases {
		if got := ExactBits(n); got != want {
			t.Errorf("ExactBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkMorrisIncrement(b *testing.B) {
	m := NewMorris(1)
	for i := 0; i < b.N; i++ {
		m.Increment()
	}
}

func BenchmarkNelsonYuIncrement(b *testing.B) {
	c := NewNelsonYu(0.1, 0.05, 1)
	for i := 0; i < b.N; i++ {
		c.Increment()
	}
}
