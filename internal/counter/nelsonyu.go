package counter

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// NelsonYu is an approximate counter in the spirit of "Optimal Bounds
// for Approximate Counting" (Nelson & Yu, PODS 2022). The classical
// Morris analysis needs O(log log n + log 1/ε + log log 1/δ) bits to
// return a (1+ε)-approximation with probability 1−δ; Nelson and Yu
// show the log(1/ε) and log log(1/δ) interaction can be made optimal.
//
// This implementation realizes the practical construction the paper's
// improvement is built around: a Morris-style counter with base
// b = 1 + Θ(ε²δ) chosen from the target (ε, δ), plus the median of
// independent repetitions to drive the failure probability down at the
// optimal O(log 1/δ) multiplicative cost. It exposes the same
// Increment/Count API as Morris so experiment E1 can compare the two
// at equal space.
type NelsonYu struct {
	counters []*Morris
	eps      float64
	delta    float64
}

// NewNelsonYu returns a counter targeting relative error eps with
// failure probability delta.
func NewNelsonYu(eps, delta float64, seed uint64) *NelsonYu {
	if !(eps > 0 && eps < 1) || !(delta > 0 && delta < 1) {
		panic("counter: NelsonYu requires eps, delta in (0,1)")
	}
	// Each Morris copy with base 1+2ε² has standard error ≈ ε, giving
	// constant failure probability by Chebyshev; the median of
	// r = O(log 1/δ) copies amplifies to 1−δ.
	reps := int(math.Ceil(18 * math.Log(1/delta)))
	if reps < 1 {
		reps = 1
	}
	if reps%2 == 0 {
		reps++
	}
	base := 1 + 2*eps*eps
	counters := make([]*Morris, reps)
	for i := range counters {
		counters[i] = NewMorrisBase(base, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	return &NelsonYu{counters: counters, eps: eps, delta: delta}
}

// Increment registers one event in every repetition.
func (c *NelsonYu) Increment() {
	for _, m := range c.counters {
		m.Increment()
	}
}

// IncrementN registers n events in every repetition using the
// geometric fast-forward (see Morris.IncrementN).
func (c *NelsonYu) IncrementN(n uint64) {
	for _, m := range c.counters {
		m.IncrementN(n)
	}
}

// Count returns the median estimate across repetitions.
func (c *NelsonYu) Count() float64 {
	ests := make([]float64, len(c.counters))
	for i, m := range c.counters {
		ests[i] = m.Count()
	}
	return core.Median(ests)
}

// Spec returns the accuracy contract the counter was built for.
func (c *NelsonYu) Spec() core.Spec { return core.Spec{Epsilon: c.eps, Delta: c.delta} }

// Repetitions returns the number of independent Morris copies.
func (c *NelsonYu) Repetitions() int { return len(c.counters) }

// BitsUsed sums the exponent bit-lengths across repetitions — the total
// state of the sketch.
func (c *NelsonYu) BitsUsed() int {
	total := 0
	for _, m := range c.counters {
		total += m.BitsUsed()
	}
	return total
}

// Merge combines with another NelsonYu counter of identical shape.
func (c *NelsonYu) Merge(other *NelsonYu) error {
	if len(c.counters) != len(other.counters) || c.eps != other.eps {
		return fmt.Errorf("%w: nelson-yu shape mismatch", core.ErrIncompatible)
	}
	for i := range c.counters {
		if err := c.counters[i].Merge(other.counters[i]); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBinary serializes the counter.
func (c *NelsonYu) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagNelsonYu, 1)
	w.F64(c.eps)
	w.F64(c.delta)
	w.U32(uint32(len(c.counters)))
	for _, m := range c.counters {
		b, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.BytesField(b)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a counter serialized by MarshalBinary.
func (c *NelsonYu) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagNelsonYu)
	if err != nil {
		return err
	}
	eps := r.F64()
	delta := r.F64()
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n < 1 || n > 1<<20 {
		return fmt.Errorf("%w: implausible repetition count %d", core.ErrCorrupt, n)
	}
	counters := make([]*Morris, n)
	for i := range counters {
		var m Morris
		if err := m.UnmarshalBinary(r.BytesField()); err != nil {
			return err
		}
		counters[i] = &m
	}
	if err := r.Done(); err != nil {
		return err
	}
	c.eps, c.delta, c.counters = eps, delta, counters
	return nil
}

// ExactBits is the exact binary-counter baseline for E1: the number of
// bits an exact counter needs to represent n.
func ExactBits(n uint64) int {
	if n == 0 {
		return 1
	}
	bits := 0
	for n > 0 {
		bits++
		n >>= 1
	}
	return bits
}
