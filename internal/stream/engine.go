package stream

import (
	"sort"

	"repro/internal/core"
)

// AggregateSpec declares one aggregate maintained per group: a name, a
// constructor for the sketch, and an extractor choosing which bytes of
// each flow feed it. This mirrors a Gigascope "GROUP BY g SELECT
// AGG(expr)" clause with the aggregate replaced by a sketch.
type AggregateSpec struct {
	Name string
	New  func() core.Updater
	Key  func(f Flow) []byte
}

// Engine is the GROUP-BY sketch engine: one set of sketches per group
// value, created on demand — the paper's "need … to maintain huge
// numbers of sketches in parallel (i.e., to support GROUP BY aggregate
// queries over many groups)".
type Engine struct {
	groupBy func(f Flow) string
	specs   []AggregateSpec
	groups  map[string][]core.Updater
	events  uint64
}

// NewEngine creates an engine grouping flows by groupBy and maintaining
// every spec's sketch in each group.
func NewEngine(groupBy func(f Flow) string, specs ...AggregateSpec) *Engine {
	if groupBy == nil {
		panic("stream: groupBy must not be nil")
	}
	if len(specs) == 0 {
		panic("stream: at least one aggregate spec required")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Name == "" || s.New == nil || s.Key == nil {
			panic("stream: aggregate spec requires Name, New and Key")
		}
		if seen[s.Name] {
			panic("stream: duplicate aggregate name " + s.Name)
		}
		seen[s.Name] = true
	}
	return &Engine{groupBy: groupBy, specs: specs, groups: make(map[string][]core.Updater)}
}

// Process folds one flow into its group's sketches.
func (e *Engine) Process(f Flow) {
	g := e.groupBy(f)
	sketches, ok := e.groups[g]
	if !ok {
		sketches = make([]core.Updater, len(e.specs))
		for i, spec := range e.specs {
			sketches[i] = spec.New()
		}
		e.groups[g] = sketches
	}
	for i, spec := range e.specs {
		sketches[i].Update(spec.Key(f))
	}
	e.events++
}

// Aggregate returns the named sketch for a group, or nil if the group
// or aggregate does not exist. Callers type-assert to the concrete
// sketch to query it.
func (e *Engine) Aggregate(group, name string) core.Updater {
	sketches, ok := e.groups[group]
	if !ok {
		return nil
	}
	for i, spec := range e.specs {
		if spec.Name == name {
			return sketches[i]
		}
	}
	return nil
}

// Groups returns all group keys, sorted.
func (e *Engine) Groups() []string {
	out := make([]string, 0, len(e.groups))
	for g := range e.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// GroupCount returns the number of live groups.
func (e *Engine) GroupCount() int { return len(e.groups) }

// Events returns the number of flows processed.
func (e *Engine) Events() uint64 { return e.events }

// SketchCount returns the total number of sketches maintained — the
// "huge numbers of sketches" figure.
func (e *Engine) SketchCount() int { return len(e.groups) * len(e.specs) }
