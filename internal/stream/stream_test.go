package stream

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
)

func TestFlowGenDeterministic(t *testing.T) {
	a, b := NewFlowGen(1000, 1.1, 7), NewFlowGen(1000, 1.1, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different flows")
		}
	}
}

func TestFlowGenSkew(t *testing.T) {
	g := NewFlowGen(10000, 1.3, 8)
	counts := map[uint32]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().SrcIP]++
	}
	// The hottest source should carry a visible share of traffic.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.05 {
		t.Errorf("top talker only %.3f of traffic — skew too weak", float64(max)/n)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct sources", len(counts))
	}
}

func TestFlowGenFieldsPlausible(t *testing.T) {
	g := NewFlowGen(100, 1.0, 9)
	prevTS := int64(-1)
	for i := 0; i < 10000; i++ {
		f := g.Next()
		if f.Proto != 6 && f.Proto != 17 {
			t.Fatalf("bad proto %d", f.Proto)
		}
		if f.Bytes < 40 {
			t.Fatalf("flow size %d below minimum", f.Bytes)
		}
		if f.TS <= prevTS {
			t.Fatal("timestamps must be strictly increasing")
		}
		prevTS = f.TS
		if f.DstPort == 0 || f.DstPort > 1024 {
			t.Fatalf("dst port %d outside hot range", f.DstPort)
		}
	}
}

func TestFlowKeys(t *testing.T) {
	f := Flow{SrcIP: 0x0a000001, DstIP: 0xc0a80001, SrcPort: 1234, DstPort: 80, Proto: 6}
	if len(f.FiveTuple()) != 13 {
		t.Error("five-tuple length wrong")
	}
	if string(f.SrcKey()) == string(f.DstKey()) {
		t.Error("src and dst keys collide")
	}
	if !strings.Contains(f.String(), "10.0.0.1:1234") {
		t.Errorf("String() = %q", f.String())
	}
}

func TestEngineGroupByProto(t *testing.T) {
	eng := NewEngine(
		func(f Flow) string {
			if f.Proto == 6 {
				return "tcp"
			}
			return "udp"
		},
		AggregateSpec{
			Name: "distinct-src",
			New:  func() core.Updater { return cardinality.NewHLL(12, 1) },
			Key:  func(f Flow) []byte { return f.SrcKey() },
		},
		AggregateSpec{
			Name: "hot-dst",
			New:  func() core.Updater { return frequency.NewSpaceSaving(64) },
			Key:  func(f Flow) []byte { return f.DstKey() },
		},
	)
	g := NewFlowGen(5000, 1.2, 10)
	exactSrc := map[string]map[uint32]bool{"tcp": {}, "udp": {}}
	const n = 100000
	for i := 0; i < n; i++ {
		f := g.Next()
		eng.Process(f)
		if f.Proto == 6 {
			exactSrc["tcp"][f.SrcIP] = true
		} else {
			exactSrc["udp"][f.SrcIP] = true
		}
	}
	if eng.Events() != n {
		t.Errorf("Events = %d", eng.Events())
	}
	if eng.GroupCount() != 2 || eng.SketchCount() != 4 {
		t.Errorf("groups=%d sketches=%d", eng.GroupCount(), eng.SketchCount())
	}
	for _, proto := range []string{"tcp", "udp"} {
		hll, ok := eng.Aggregate(proto, "distinct-src").(*cardinality.HLL)
		if !ok {
			t.Fatalf("aggregate type assertion failed for %s", proto)
		}
		want := float64(len(exactSrc[proto]))
		if err := core.RelErr(hll.Estimate(), want); err > 0.05 {
			t.Errorf("%s distinct sources: est %.0f vs true %.0f", proto, hll.Estimate(), want)
		}
	}
	if eng.Aggregate("tcp", "nope") != nil || eng.Aggregate("icmp", "hot-dst") != nil {
		t.Error("missing aggregates must return nil")
	}
}

func TestEngineManyGroups(t *testing.T) {
	// One group per destination port: hundreds of parallel sketch sets.
	eng := NewEngine(
		func(f Flow) string { return fmt.Sprint(f.DstPort) },
		AggregateSpec{
			Name: "flows",
			New:  func() core.Updater { return cardinality.NewHLL(10, 2) },
			Key:  func(f Flow) []byte { return f.FiveTuple() },
		},
	)
	g := NewFlowGen(2000, 1.1, 11)
	for i := 0; i < 50000; i++ {
		eng.Process(g.Next())
	}
	if eng.GroupCount() < 100 {
		t.Errorf("only %d port groups", eng.GroupCount())
	}
	groups := eng.Groups()
	if len(groups) != eng.GroupCount() {
		t.Error("Groups() length mismatch")
	}
	for i := 1; i < len(groups); i++ {
		if groups[i] < groups[i-1] {
			t.Fatal("Groups() not sorted")
		}
	}
}

func TestEnginePanics(t *testing.T) {
	spec := AggregateSpec{
		Name: "x",
		New:  func() core.Updater { return cardinality.NewHLL(8, 1) },
		Key:  func(f Flow) []byte { return f.SrcKey() },
	}
	for name, fn := range map[string]func(){
		"nil groupBy": func() { NewEngine(nil, spec) },
		"no specs":    func() { NewEngine(func(Flow) string { return "" }) },
		"dup name":    func() { NewEngine(func(Flow) string { return "" }, spec, spec) },
		"bad spec":    func() { NewEngine(func(Flow) string { return "" }, AggregateSpec{Name: "y"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkEngineProcess(b *testing.B) {
	eng := NewEngine(
		func(f Flow) string {
			if f.Proto == 6 {
				return "tcp"
			}
			return "udp"
		},
		AggregateSpec{
			Name: "distinct-src",
			New:  func() core.Updater { return cardinality.NewHLL(12, 1) },
			Key:  func(f Flow) []byte { return f.SrcKey() },
		},
	)
	g := NewFlowGen(10000, 1.1, 1)
	flows := make([]Flow, 10000)
	for i := range flows {
		flows[i] = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(flows[i%len(flows)])
	}
}
