// Package stream provides the data-stream substrate of the paper's
// "Massive Data Streams" era (§3): typed network-flow events, synthetic
// generators with the skew characteristics of real traffic, and a
// Gigascope/CMON-style GROUP-BY aggregation engine that maintains
// "huge numbers of sketches in parallel" — one sketch set per group —
// over a single pass of the stream.
package stream

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/randx"
)

// Flow is one network-flow record, the event type of the ISP-era
// systems (Sprint CMON, AT&T Gigascope) this package substitutes for.
type Flow struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8 // 6 = TCP, 17 = UDP
	Bytes   uint32
	TS      int64 // nanoseconds since epoch start
}

// SrcKey returns the source address as a hashable byte key.
func (f Flow) SrcKey() []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], f.SrcIP)
	return b[:]
}

// DstKey returns the destination address as a hashable byte key.
func (f Flow) DstKey() []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], f.DstIP)
	return b[:]
}

// FiveTuple returns the canonical flow identity key.
func (f Flow) FiveTuple() []byte {
	b := make([]byte, 13)
	binary.BigEndian.PutUint32(b[0:], f.SrcIP)
	binary.BigEndian.PutUint32(b[4:], f.DstIP)
	binary.BigEndian.PutUint16(b[8:], f.SrcPort)
	binary.BigEndian.PutUint16(b[10:], f.DstPort)
	b[12] = f.Proto
	return b
}

// String renders the flow in the familiar tcpdump-ish form.
func (f Flow) String() string {
	return fmt.Sprintf("%s:%d > %s:%d proto=%d bytes=%d",
		ipString(f.SrcIP), f.SrcPort, ipString(f.DstIP), f.DstPort, f.Proto, f.Bytes)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// FlowGen generates synthetic flows with the skew structure of backbone
// traffic: Zipf-popular source hosts (a few heavy talkers), Zipf
// destination services, a small set of hot ports, and Pareto-distributed
// flow sizes. DESIGN.md §3 records this as the substitution for the
// proprietary ISP traces the original systems consumed.
type FlowGen struct {
	rng      *randx.RNG
	srcZipf  *randx.Zipf
	dstZipf  *randx.Zipf
	portZipf *randx.Zipf
	ts       int64
}

// NewFlowGen creates a generator over nHosts source/destination hosts
// with source skew alpha.
func NewFlowGen(nHosts int, alpha float64, seed uint64) *FlowGen {
	rng := randx.New(seed)
	return &FlowGen{
		rng:      rng,
		srcZipf:  randx.NewZipf(rng, alpha, nHosts),
		dstZipf:  randx.NewZipf(rng, 1.2, nHosts),
		portZipf: randx.NewZipf(rng, 1.5, 1024),
	}
}

// Next returns the next synthetic flow.
func (g *FlowGen) Next() Flow {
	g.ts += 1 + int64(g.rng.Exponential(1e-3)) // ~1000 flows per simulated second, strictly increasing
	size := uint32(math.Min(40+1460*math.Pow(g.rng.Float64Open(), -0.7), 1e7))
	proto := uint8(6)
	if g.rng.BoolP(0.2) {
		proto = 17
	}
	return Flow{
		SrcIP:   uint32(0x0a000000 + g.srcZipf.Next()), // 10.0.0.0/8
		DstIP:   uint32(0xc0a80000 + g.dstZipf.Next()), // 192.168.0.0/16-ish
		SrcPort: uint16(1024 + g.rng.Intn(64512)),
		DstPort: uint16(g.portZipf.Next()),
		Proto:   proto,
		Bytes:   size,
		TS:      g.ts,
	}
}
