package ams

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

func TestF2Accuracy(t *testing.T) {
	s := New(9, 128, 1)
	var want float64
	for i := uint64(0); i < 2000; i++ {
		w := int64(i%20) + 1
		s.AddUint64(i, w)
		want += float64(w) * float64(w)
	}
	if err := core.RelErr(s.F2(), want); err > 0.25 {
		t.Errorf("F2 rel err %.3f", err)
	}
}

func TestF2OnZipf(t *testing.T) {
	rng := randx.New(2)
	z := randx.NewZipf(rng, 1.3, 10000)
	s := New(9, 256, 3)
	truth := map[uint64]float64{}
	for i := 0; i < 100000; i++ {
		v := z.Next()
		s.AddUint64(v, 1)
		truth[v]++
	}
	var want float64
	for _, c := range truth {
		want += c * c
	}
	if err := core.RelErr(s.F2(), want); err > 0.2 {
		t.Errorf("F2 on zipf rel err %.3f", err)
	}
}

func TestTurnstileDeletions(t *testing.T) {
	s := New(5, 64, 4)
	for i := uint64(0); i < 100; i++ {
		s.AddUint64(i, 10)
	}
	for i := uint64(0); i < 100; i++ {
		s.AddUint64(i, -10)
	}
	// All frequencies cancelled: F2 must be exactly 0 (linearity).
	if got := s.F2(); got != 0 {
		t.Errorf("F2 after full cancellation = %v, want 0", got)
	}
}

func TestInnerProduct(t *testing.T) {
	a := New(9, 256, 5)
	b := New(9, 256, 5)
	var want float64
	for i := uint64(0); i < 1000; i++ {
		fa := int64(i%7) + 1
		fb := int64(i%3) + 1
		a.AddUint64(i, fa)
		b.AddUint64(i, fb)
		want += float64(fa) * float64(fb)
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	if core.RelErr(got, want) > 0.25 {
		t.Errorf("inner product %.0f, want ~%.0f", got, want)
	}
	if _, err := a.InnerProduct(New(3, 64, 5)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("inner product across shapes must fail")
	}
}

func TestDistanceSquared(t *testing.T) {
	a := New(9, 256, 6)
	b := New(9, 256, 6)
	var want float64
	for i := uint64(0); i < 500; i++ {
		fa := int64(i % 5)
		fb := int64((i + 2) % 5)
		a.AddUint64(i, fa)
		b.AddUint64(i, fb)
		d := float64(fa - fb)
		want += d * d
	}
	got, err := a.DistanceSquared(b)
	if err != nil {
		t.Fatal(err)
	}
	if core.RelErr(got, want) > 0.3 {
		t.Errorf("distance² %.0f, want ~%.0f", got, want)
	}
}

func TestIdenticalStreamsZeroDistance(t *testing.T) {
	a := New(5, 64, 7)
	b := New(5, 64, 7)
	for i := uint64(0); i < 1000; i++ {
		a.AddUint64(i, 3)
		b.AddUint64(i, 3)
	}
	got, err := a.DistanceSquared(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("distance between identical streams = %v", got)
	}
}

func TestMergeLinear(t *testing.T) {
	a := New(5, 128, 8)
	b := New(5, 128, 8)
	whole := New(5, 128, 8)
	for i := uint64(0); i < 2000; i++ {
		if i%2 == 0 {
			a.AddUint64(i, 2)
		} else {
			b.AddUint64(i, 2)
		}
		whole.AddUint64(i, 2)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.F2() != whole.F2() {
		t.Error("merge is not lossless")
	}
	if err := a.Merge(New(5, 128, 9)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across seeds must fail")
	}
}

func TestVarianceShrinksWithWidth(t *testing.T) {
	// Mean relative error over trials must drop when perGroup grows.
	meanErr := func(perGroup int) float64 {
		var total float64
		const trials = 10
		for trial := 0; trial < trials; trial++ {
			s := New(1, perGroup, uint64(trial)*31+1)
			var want float64
			for i := uint64(0); i < 500; i++ {
				s.AddUint64(i, 1)
				want++
			}
			total += core.RelErr(s.F2(), want)
		}
		return total / trials
	}
	if e16, e256 := meanErr(16), meanErr(256); e256 >= e16 {
		t.Errorf("error did not shrink with width: %f vs %f", e16, e256)
	}
}

func TestNewWithSpec(t *testing.T) {
	s, err := NewWithSpec(core.Spec{Epsilon: 0.1, Delta: 0.05}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.PerGroup() < 100 {
		t.Errorf("perGroup %d too small for eps=0.1", s.PerGroup())
	}
	if _, err := NewWithSpec(core.Spec{Epsilon: 0, Delta: 0.5}, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestSerialization(t *testing.T) {
	s := New(3, 32, 10)
	for i := uint64(0); i < 1000; i++ {
		s.AddUint64(i, int64(i%4))
	}
	data, _ := s.MarshalBinary()
	var g Sketch
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.F2() != s.F2() || g.N() != s.N() {
		t.Error("round trip changed state")
	}
	if err := g.UnmarshalBinary(data[:10]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated input accepted")
	}
}

func TestPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 5, 1)
}

func TestF2EmptyStream(t *testing.T) {
	s := New(3, 16, 11)
	if s.F2() != 0 {
		t.Errorf("empty F2 = %v", s.F2())
	}
	if math.Abs(s.F2()) > 0 || s.N() != 0 {
		t.Error("empty sketch state wrong")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(5, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i), 1)
	}
}

func BenchmarkF2(b *testing.B) {
	s := New(9, 256, 1)
	for i := uint64(0); i < 10000; i++ {
		s.AddUint64(i, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.F2()
	}
}
