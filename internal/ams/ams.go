// Package ams implements the Alon–Matias–Szegedy "tug-of-war" sketch
// (STOC 1996) for the second frequency moment F₂ = Σᵢ f(i)², the result
// the paper credits with launching streaming algorithmics. Each atomic
// estimator maintains Z = Σᵢ f(i)·s(i) for a 4-wise independent ±1 hash
// s; E[Z²] = F₂ with Var[Z²] ≤ 2F₂². Averaging 1/ε² estimators and
// taking the median of O(log 1/δ) groups gives an (ε, δ) guarantee —
// the median-of-means pattern that recurs across randomized sketches.
//
// The sketch is linear, so it also estimates inner products ⟨f, g⟩ and
// Euclidean distances ‖f−g‖₂ between streams (experiment E9), and can
// be viewed as a small-space Johnson–Lindenstrauss transform.
package ams

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashx"
)

// Sketch is an AMS F2 sketch organized as groups×perGroup atomic
// estimators. Queries average within groups and take the median across
// groups.
type Sketch struct {
	z        []int64 // groups*perGroup atomic counters
	signs    []*hashx.KWise
	groups   int
	perGroup int
	seed     uint64
	n        uint64
}

// New creates an AMS sketch with the given number of median groups and
// averaging estimators per group.
func New(groups, perGroup int, seed uint64) *Sketch {
	if groups < 1 || perGroup < 1 {
		panic("ams: groups and perGroup must be positive")
	}
	total := groups * perGroup
	seeds := hashx.SeedSequence(seed, total)
	signs := make([]*hashx.KWise, total)
	for i := range signs {
		signs[i] = hashx.NewKWise(4, seeds[i])
	}
	return &Sketch{
		z:        make([]int64, total),
		signs:    signs,
		groups:   groups,
		perGroup: perGroup,
		seed:     seed,
	}
}

// NewWithSpec sizes the sketch from an (ε, δ) contract via the
// median-of-means parameterization.
func NewWithSpec(spec core.Spec, seed uint64) (*Sketch, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	buckets, reps := spec.MedianOfMeans()
	return New(reps, buckets, seed), nil
}

// Add adds weight to item's frequency (negative weights supported —
// the sketch is linear over turnstile streams).
func (s *Sketch) Add(item []byte, weight int64) {
	s.AddHash(hashx.XXHash64(item, s.seed), weight)
}

// AddUint64 adds weight to an integer item's frequency.
func (s *Sketch) AddUint64(item uint64, weight int64) {
	s.AddHash(hashx.HashUint64(item, s.seed), weight)
}

// Update implements core.Updater (weight 1).
func (s *Sketch) Update(item []byte) { s.Add(item, 1) }

// AddHash folds a pre-hashed item into every atomic estimator.
func (s *Sketch) AddHash(h uint64, weight int64) {
	for i, sg := range s.signs {
		s.z[i] += sg.Sign(h) * weight
	}
	if weight >= 0 {
		s.n += uint64(weight)
	} else {
		s.n += uint64(-weight)
	}
}

// F2 returns the estimate of the second frequency moment.
func (s *Sketch) F2() float64 {
	meds := make([]float64, s.groups)
	for g := 0; g < s.groups; g++ {
		var sum float64
		for j := 0; j < s.perGroup; j++ {
			v := float64(s.z[g*s.perGroup+j])
			sum += v * v
		}
		meds[g] = sum / float64(s.perGroup)
	}
	return core.Median(meds)
}

// InnerProduct estimates ⟨f, g⟩ between two compatible sketches using
// the product of matched atomic estimators.
func (s *Sketch) InnerProduct(other *Sketch) (float64, error) {
	if err := s.compatible(other); err != nil {
		return 0, err
	}
	meds := make([]float64, s.groups)
	for g := 0; g < s.groups; g++ {
		var sum float64
		for j := 0; j < s.perGroup; j++ {
			i := g*s.perGroup + j
			sum += float64(s.z[i]) * float64(other.z[i])
		}
		meds[g] = sum / float64(s.perGroup)
	}
	return core.Median(meds), nil
}

// DistanceSquared estimates ‖f−g‖₂² between two compatible sketches by
// linearity: sketch(f−g) = sketch(f) − sketch(g).
func (s *Sketch) DistanceSquared(other *Sketch) (float64, error) {
	if err := s.compatible(other); err != nil {
		return 0, err
	}
	meds := make([]float64, s.groups)
	for g := 0; g < s.groups; g++ {
		var sum float64
		for j := 0; j < s.perGroup; j++ {
			i := g*s.perGroup + j
			d := float64(s.z[i]) - float64(other.z[i])
			sum += d * d
		}
		meds[g] = sum / float64(s.perGroup)
	}
	return core.Median(meds), nil
}

func (s *Sketch) compatible(other *Sketch) error {
	if s.groups != other.groups || s.perGroup != other.perGroup || s.seed != other.seed {
		return fmt.Errorf("%w: AMS shape mismatch", core.ErrIncompatible)
	}
	return nil
}

// Merge adds another sketch counter-wise (linearity): the result
// sketches the concatenated stream.
func (s *Sketch) Merge(other *Sketch) error {
	if err := s.compatible(other); err != nil {
		return err
	}
	for i, v := range other.z {
		s.z[i] += v
	}
	s.n += other.n
	return nil
}

// Groups returns the number of median groups.
func (s *Sketch) Groups() int { return s.groups }

// PerGroup returns the number of averaging estimators per group.
func (s *Sketch) PerGroup() int { return s.perGroup }

// N returns the total absolute weight processed.
func (s *Sketch) N() uint64 { return s.n }

// SizeBytes returns the counter storage size.
func (s *Sketch) SizeBytes() int { return len(s.z) * 8 }

// MarshalBinary serializes the sketch.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagAMS, 1)
	w.U32(uint32(s.groups))
	w.U32(uint32(s.perGroup))
	w.U64(s.seed)
	w.U64(s.n)
	w.I64Slice(s.z)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagAMS)
	if err != nil {
		return err
	}
	groups := int(r.U32())
	perGroup := int(r.U32())
	seed := r.U64()
	n := r.U64()
	z := r.I64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if groups < 1 || perGroup < 1 || len(z) != groups*perGroup {
		return fmt.Errorf("%w: AMS dims %dx%d with %d counters", core.ErrCorrupt, groups, perGroup, len(z))
	}
	fresh := New(groups, perGroup, seed)
	fresh.z = z
	fresh.n = n
	*s = *fresh
	return nil
}
