package cardinality

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func buildTheta(k int, seed uint64, lo, hi int) *Theta {
	t := NewTheta(k, seed)
	for i := lo; i < hi; i++ {
		t.AddUint64(uint64(i))
	}
	return t
}

func TestThetaExactModeBelowK(t *testing.T) {
	s := buildTheta(1024, 1, 0, 500)
	if s.IsEstimationMode() {
		t.Fatal("should still be exact")
	}
	if s.Estimate() != 500 {
		t.Errorf("exact-mode estimate %.0f", s.Estimate())
	}
	if s.StandardError() != 0 {
		t.Error("exact mode has zero error")
	}
}

func TestThetaEstimationAccuracy(t *testing.T) {
	s := buildTheta(4096, 2, 0, 300000)
	if !s.IsEstimationMode() {
		t.Fatal("should be sampling")
	}
	if err := core.RelErr(s.Estimate(), 300000); err > 4*s.StandardError() {
		t.Errorf("rel err %.4f exceeds 4 sigma", err)
	}
	if s.Retained() > s.K() {
		t.Error("retained exceeds k")
	}
}

func TestThetaDuplicatesIgnored(t *testing.T) {
	s := NewTheta(256, 3)
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 100; i++ {
			s.AddUint64(uint64(i))
		}
	}
	if s.Estimate() != 100 {
		t.Errorf("estimate %.0f, want exactly 100", s.Estimate())
	}
}

func TestThetaSetAlgebra(t *testing.T) {
	// A = [0, 60k), B = [40k, 100k): |A∪B| = 100k, |A∩B| = 20k,
	// |A\B| = 40k.
	a := buildTheta(4096, 5, 0, 60000)
	b := buildTheta(4096, 5, 40000, 100000)

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := core.RelErr(u.Estimate(), 100000); e > 0.1 {
		t.Errorf("union estimate %.0f (err %.3f)", u.Estimate(), e)
	}

	inter, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := core.RelErr(inter.Estimate(), 20000); e > 0.2 {
		t.Errorf("intersection estimate %.0f (err %.3f)", inter.Estimate(), e)
	}

	diff, err := a.AnotB(b)
	if err != nil {
		t.Fatal(err)
	}
	if e := core.RelErr(diff.Estimate(), 40000); e > 0.15 {
		t.Errorf("difference estimate %.0f (err %.3f)", diff.Estimate(), e)
	}
}

func TestThetaAlgebraComposes(t *testing.T) {
	// (A ∪ B) ∩ C built from sketches only.
	a := buildTheta(2048, 7, 0, 30000)
	b := buildTheta(2048, 7, 20000, 50000)
	c := buildTheta(2048, 7, 40000, 80000)
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.Intersect(c)
	if err != nil {
		t.Fatal(err)
	}
	// (A∪B) = [0,50k); ∩ C = [40k,50k) → 10k.
	if e := core.RelErr(got.Estimate(), 10000); e > 0.25 {
		t.Errorf("composed estimate %.0f (err %.3f)", got.Estimate(), e)
	}
}

func TestThetaMergeMatchesUnion(t *testing.T) {
	a := buildTheta(1024, 9, 0, 20000)
	b := buildTheta(1024, 9, 10000, 30000)
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != u.Estimate() {
		t.Error("merge differs from union")
	}
}

func TestThetaIncompatibleSeeds(t *testing.T) {
	a := NewTheta(64, 1)
	b := NewTheta(64, 2)
	if _, err := a.Union(b); !errors.Is(err, core.ErrIncompatible) {
		t.Error("union across seeds must fail")
	}
	if _, err := a.Intersect(b); !errors.Is(err, core.ErrIncompatible) {
		t.Error("intersect across seeds must fail")
	}
	if _, err := a.AnotB(b); !errors.Is(err, core.ErrIncompatible) {
		t.Error("anotb across seeds must fail")
	}
}

func TestThetaSerialization(t *testing.T) {
	s := buildTheta(512, 11, 0, 50000)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Theta
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != s.Estimate() || g.Retained() != s.Retained() {
		t.Error("round trip changed sketch")
	}
	// Corrupt: retained value above theta.
	if s.IsEstimationMode() {
		bad := append([]byte(nil), data...)
		// Overwrite theta with a tiny value; retained values then exceed it.
		for i := 0; i < 8; i++ {
			bad[6+4+8+i] = 0 // theta field after header+k+seed
		}
		bad[6+4+8] = 1
		var h Theta
		if err := h.UnmarshalBinary(bad); err == nil {
			t.Error("retained-above-theta accepted")
		}
	}
}

func TestThetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 8")
		}
	}()
	NewTheta(4, 1)
}

func BenchmarkThetaAdd(b *testing.B) {
	s := NewTheta(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}

func BenchmarkThetaUnion(b *testing.B) {
	x := buildTheta(4096, 1, 0, 100000)
	y := buildTheta(4096, 1, 50000, 150000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Union(y); err != nil {
			b.Fatal(err)
		}
	}
}
