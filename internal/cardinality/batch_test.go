package cardinality

// Batch-vs-sequential equivalence for HLL's hash-once entry points:
// batch and string paths must leave byte-identical serialized state.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/hashx"
)

func TestHLLAddBatchMatchesSequential(t *testing.T) {
	items := make([][]byte, 5000)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("hll-batch-%06d", i))
	}
	seq := NewHLL(12, 7)
	bat := NewHLL(12, 7)
	for _, it := range items {
		seq.Add(it)
	}
	bat.AddBatch(items)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddBatch state differs from sequential Add")
	}
}

func TestHLLAddHashBatchMatchesSequential(t *testing.T) {
	hs := make([]uint64, 5000)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), 7)
	}
	seq := NewHLL(12, 7)
	bat := NewHLL(12, 7)
	for _, h := range hs {
		seq.AddHash(h)
	}
	bat.AddHashBatch(hs)
	a, _ := seq.MarshalBinary()
	b, _ := bat.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddHashBatch state differs from sequential AddHash")
	}
}

func TestHLLStringMatchesBytes(t *testing.T) {
	viaBytes := NewHLL(12, 7)
	viaString := NewHLL(12, 7)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("hll-equiv-%06d", i)
		viaBytes.Add([]byte(key))
		viaString.AddString(key)
	}
	a, _ := viaBytes.MarshalBinary()
	b, _ := viaString.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddString state differs from Add on the same keys")
	}
}
