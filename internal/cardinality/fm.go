// Package cardinality implements the distinct-counting (F0) sketch
// lineage the paper traces through three decades: Flajolet–Martin
// probabilistic counting (1983), LogLog (Durand–Flajolet 2003),
// HyperLogLog (Flajolet et al. 2007), the HLL++ engineering refinements
// from Google (Heule et al. 2013), and the KMV bottom-k estimator that
// underlies theta-sketch style set operations.
//
// All sketches in this package are mergeable in the PODS 2012 sense:
// merging sketches of two streams yields exactly the sketch of the
// concatenated stream, so distributed aggregation loses no accuracy
// (experiment E7). Experiment E2 reproduces the space/accuracy ladder
// FM → LogLog → HLL; E8 reproduces the HLL++ small-cardinality fix.
package cardinality

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashx"
)

// FM is the Flajolet–Martin PCSA (probabilistic counting with
// stochastic averaging) sketch: m bitmaps, each recording which
// trailing-zero ranks have been observed in its substream. The estimate
// is (m/φ)·2^(mean R) with φ ≈ 0.77351. Standard error ≈ 0.78/√m.
type FM struct {
	bitmaps []uint64 // one 64-bit bitmap per substream
	seed    uint64
}

// fmPhi is the Flajolet–Martin correction constant.
const fmPhi = 0.77351

// NewFM creates a PCSA sketch with m substreams; m must be a power of
// two between 2 and 2^16.
func NewFM(m int, seed uint64) *FM {
	if m < 2 || m > 1<<16 || m&(m-1) != 0 {
		panic("cardinality: FM m must be a power of two in [2, 65536]")
	}
	return &FM{bitmaps: make([]uint64, m), seed: seed}
}

// Add inserts an item.
func (f *FM) Add(item []byte) {
	h := hashx.XXHash64(item, f.seed)
	f.addHash(h)
}

// AddUint64 inserts an integer item without allocation.
func (f *FM) AddUint64(v uint64) { f.addHash(hashx.HashUint64(v, f.seed)) }

// AddString inserts a string item.
func (f *FM) AddString(s string) { f.Add([]byte(s)) }

// Update implements core.Updater.
func (f *FM) Update(item []byte) { f.Add(item) }

func (f *FM) addHash(h uint64) {
	m := uint64(len(f.bitmaps))
	idx := h & (m - 1)
	rest := h >> uint(bits.TrailingZeros64(m)) // remaining bits choose the rank
	r := bits.TrailingZeros64(rest)
	if r > 63 {
		r = 63
	}
	f.bitmaps[idx] |= 1 << uint(r)
}

// Estimate returns the cardinality estimate.
func (f *FM) Estimate() float64 {
	m := len(f.bitmaps)
	var sumR float64
	for _, bm := range f.bitmaps {
		// R = index of lowest zero bit.
		sumR += float64(bits.TrailingZeros64(^bm))
	}
	return float64(m) / fmPhi * math.Pow(2, sumR/float64(m))
}

// StandardError returns the theoretical relative standard error 0.78/√m.
func (f *FM) StandardError() float64 { return 0.78 / math.Sqrt(float64(len(f.bitmaps))) }

// M returns the number of substreams.
func (f *FM) M() int { return len(f.bitmaps) }

// SizeBytes returns the bitmap storage size.
func (f *FM) SizeBytes() int { return len(f.bitmaps) * 8 }

// Merge ORs another FM sketch into this one; the result is exactly the
// sketch of the union of both input streams.
func (f *FM) Merge(other *FM) error {
	if len(f.bitmaps) != len(other.bitmaps) || f.seed != other.seed {
		return fmt.Errorf("%w: FM shape mismatch", core.ErrIncompatible)
	}
	for i, bm := range other.bitmaps {
		f.bitmaps[i] |= bm
	}
	return nil
}

// MarshalBinary serializes the sketch.
func (f *FM) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagFM, 1)
	w.U64(f.seed)
	w.U64Slice(f.bitmaps)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (f *FM) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagFM)
	if err != nil {
		return err
	}
	seed := r.U64()
	bitmaps := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	m := len(bitmaps)
	if m < 2 || m > 1<<16 || m&(m-1) != 0 {
		return fmt.Errorf("%w: FM bitmap count %d", core.ErrCorrupt, m)
	}
	f.seed, f.bitmaps = seed, bitmaps
	return nil
}
