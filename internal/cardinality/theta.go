package cardinality

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hashx"
)

// Theta is a theta sketch — the centerpiece of the Yahoo!/Apache
// DataSketches project the paper credits with easing adoption (§2).
// It generalizes KMV: keep every hash value below a threshold θ
// (initially 1, i.e. everything), and when the retained set exceeds k,
// lower θ to the (k+1)-th smallest value and discard above it. The
// estimate is |retained|/θ (hashes scaled to (0,1)).
//
// Unlike plain estimators, theta sketches form an algebra: Union,
// Intersect and AnotB return *sketches*, so arbitrary set expressions
// compose before estimating — the "slice and dice" machinery behind
// audience overlap queries.
type Theta struct {
	k     int
	seed  uint64
	theta uint64 // exclusive upper bound on retained hashes
	vals  []uint64
	dirty bool // vals may be unsorted after batch operations
}

const thetaMax = math.MaxUint64

// NewTheta creates a theta sketch with nominal capacity k (relative
// standard error ≈ 1/√(k−1) once sampling starts).
func NewTheta(k int, seed uint64) *Theta {
	if k < 8 {
		panic("cardinality: theta sketch requires k >= 8")
	}
	return &Theta{k: k, seed: seed, theta: thetaMax}
}

// Add inserts an item.
func (t *Theta) Add(item []byte) { t.addHash(hashx.XXHash64(item, t.seed)) }

// AddUint64 inserts an integer item without allocation.
func (t *Theta) AddUint64(v uint64) { t.addHash(hashx.HashUint64(v, t.seed)) }

// AddString inserts a string item.
func (t *Theta) AddString(s string) { t.Add([]byte(s)) }

// Update implements core.Updater.
func (t *Theta) Update(item []byte) { t.Add(item) }

func (t *Theta) addHash(h uint64) {
	if h >= t.theta {
		return
	}
	t.ensureSorted()
	i := sort.Search(len(t.vals), func(i int) bool { return t.vals[i] >= h })
	if i < len(t.vals) && t.vals[i] == h {
		return
	}
	t.vals = append(t.vals, 0)
	copy(t.vals[i+1:], t.vals[i:])
	t.vals[i] = h
	if len(t.vals) > t.k {
		// Lower theta to the (k+1)-th smallest and drop it.
		t.theta = t.vals[t.k]
		t.vals = t.vals[:t.k]
	}
}

func (t *Theta) ensureSorted() {
	if t.dirty {
		sort.Slice(t.vals, func(i, j int) bool { return t.vals[i] < t.vals[j] })
		t.dirty = false
	}
}

// Estimate returns the distinct-count estimate |retained|/θ.
func (t *Theta) Estimate() float64 {
	if t.theta == thetaMax {
		return float64(len(t.vals)) // exact mode
	}
	frac := float64(t.theta) / float64(thetaMax)
	return float64(len(t.vals)) / frac
}

// IsEstimationMode reports whether sampling has started (θ < 1).
func (t *Theta) IsEstimationMode() bool { return t.theta != thetaMax }

// Retained returns the number of retained hash values.
func (t *Theta) Retained() int { return len(t.vals) }

// K returns the nominal capacity.
func (t *Theta) K() int { return t.k }

// StandardError returns the relative standard error ≈ 1/√(k−1) in
// estimation mode (0 in exact mode).
func (t *Theta) StandardError() float64 {
	if !t.IsEstimationMode() {
		return 0
	}
	return 1 / math.Sqrt(float64(t.k-1))
}

// SizeBytes returns the retained-hash storage size.
func (t *Theta) SizeBytes() int { return len(t.vals) * 8 }

func (t *Theta) compatible(other *Theta) error {
	if t.seed != other.seed {
		return fmt.Errorf("%w: theta sketch seeds differ", core.ErrIncompatible)
	}
	return nil
}

// Union returns a new sketch representing the set union. The result's
// θ is the minimum of the inputs'; capacity is the receiver's k.
func (t *Theta) Union(other *Theta) (*Theta, error) {
	if err := t.compatible(other); err != nil {
		return nil, err
	}
	out := NewTheta(t.k, t.seed)
	out.theta = t.theta
	if other.theta < out.theta {
		out.theta = other.theta
	}
	t.ensureSorted()
	other.ensureSorted()
	seen := make(map[uint64]struct{}, len(t.vals)+len(other.vals))
	for _, v := range t.vals {
		if v < out.theta {
			seen[v] = struct{}{}
		}
	}
	for _, v := range other.vals {
		if v < out.theta {
			seen[v] = struct{}{}
		}
	}
	out.vals = make([]uint64, 0, len(seen))
	for v := range seen {
		out.vals = append(out.vals, v)
	}
	sort.Slice(out.vals, func(i, j int) bool { return out.vals[i] < out.vals[j] })
	if len(out.vals) > out.k {
		out.theta = out.vals[out.k]
		out.vals = out.vals[:out.k]
	}
	return out, nil
}

// Intersect returns a new sketch representing the set intersection:
// retained hashes present in both inputs, θ = min(θ_a, θ_b).
func (t *Theta) Intersect(other *Theta) (*Theta, error) {
	if err := t.compatible(other); err != nil {
		return nil, err
	}
	out := NewTheta(t.k, t.seed)
	out.theta = t.theta
	if other.theta < out.theta {
		out.theta = other.theta
	}
	t.ensureSorted()
	other.ensureSorted()
	inOther := make(map[uint64]struct{}, len(other.vals))
	for _, v := range other.vals {
		inOther[v] = struct{}{}
	}
	for _, v := range t.vals {
		if v >= out.theta {
			continue
		}
		if _, ok := inOther[v]; ok {
			out.vals = append(out.vals, v)
		}
	}
	return out, nil
}

// AnotB returns a new sketch representing the set difference A \ B.
func (t *Theta) AnotB(other *Theta) (*Theta, error) {
	if err := t.compatible(other); err != nil {
		return nil, err
	}
	out := NewTheta(t.k, t.seed)
	out.theta = t.theta
	if other.theta < out.theta {
		out.theta = other.theta
	}
	t.ensureSorted()
	other.ensureSorted()
	inOther := make(map[uint64]struct{}, len(other.vals))
	for _, v := range other.vals {
		inOther[v] = struct{}{}
	}
	for _, v := range t.vals {
		if v >= out.theta {
			continue
		}
		if _, ok := inOther[v]; !ok {
			out.vals = append(out.vals, v)
		}
	}
	return out, nil
}

// Merge folds another sketch into this one (in-place union), making
// Theta a mergeable summary like its siblings.
func (t *Theta) Merge(other *Theta) error {
	u, err := t.Union(other)
	if err != nil {
		return err
	}
	*t = *u
	return nil
}

// MarshalBinary serializes the sketch.
func (t *Theta) MarshalBinary() ([]byte, error) {
	t.ensureSorted()
	w := core.NewWriter(core.TagTheta, 1)
	w.U32(uint32(t.k))
	w.U64(t.seed)
	w.U64(t.theta)
	w.U64Slice(t.vals)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (t *Theta) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagTheta, 1)
	if err != nil {
		return err
	}
	k := int(r.U32())
	seed := r.U64()
	theta := r.U64()
	vals := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if k < 8 || len(vals) > k {
		return fmt.Errorf("%w: theta sketch k=%d retained=%d", core.ErrCorrupt, k, len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			return fmt.Errorf("%w: theta sketch values not strictly sorted", core.ErrCorrupt)
		}
	}
	for _, v := range vals {
		if v >= theta {
			return fmt.Errorf("%w: theta sketch retained value above theta", core.ErrCorrupt)
		}
	}
	t.k, t.seed, t.theta, t.vals, t.dirty = k, seed, theta, vals, false
	return nil
}
