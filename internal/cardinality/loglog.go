package cardinality

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashx"
)

// LogLog is the Durand–Flajolet LogLog counter (2003): m registers each
// holding the maximum leading-rank seen in its substream; the estimate
// is α_m · m · 2^(mean register). It reduced the per-register cost from
// the FM bitmap's O(log n) bits to O(log log n) bits. Standard error
// ≈ 1.30/√m — HyperLogLog later improved the constant to 1.04 by
// replacing the geometric mean with a harmonic mean.
type LogLog struct {
	registers []uint8
	p         uint8 // log2(m)
	seed      uint64
}

// NewLogLog creates a LogLog sketch with 2^p registers, 4 ≤ p ≤ 16.
func NewLogLog(p uint8, seed uint64) *LogLog {
	if p < 4 || p > 16 {
		panic("cardinality: LogLog precision must be in [4,16]")
	}
	return &LogLog{registers: make([]uint8, 1<<p), p: p, seed: seed}
}

// Add inserts an item.
func (l *LogLog) Add(item []byte) { l.addHash(hashx.XXHash64(item, l.seed)) }

// AddUint64 inserts an integer item without allocation.
func (l *LogLog) AddUint64(v uint64) { l.addHash(hashx.HashUint64(v, l.seed)) }

// AddString inserts a string item.
func (l *LogLog) AddString(s string) { l.Add([]byte(s)) }

// Update implements core.Updater.
func (l *LogLog) Update(item []byte) { l.Add(item) }

func (l *LogLog) addHash(h uint64) {
	idx := h >> (64 - l.p)
	w := h<<l.p | 1<<(l.p-1) // pad so rank is well-defined on the remaining bits
	rank := uint8(bits.LeadingZeros64(w)) + 1
	if rank > l.registers[idx] {
		l.registers[idx] = rank
	}
}

// alphaLogLog is the Durand–Flajolet bias-correction constant
// α_m ≈ 0.39701 for large m (the m-dependence is negligible at m ≥ 16).
const alphaLogLog = 0.39701

// Estimate returns the cardinality estimate α_m · m · 2^(ΣM/m).
func (l *LogLog) Estimate() float64 {
	m := float64(len(l.registers))
	var sum float64
	for _, r := range l.registers {
		sum += float64(r)
	}
	return alphaLogLog * m * math.Pow(2, sum/m)
}

// StandardError returns the theoretical relative standard error 1.30/√m.
func (l *LogLog) StandardError() float64 {
	return 1.30 / math.Sqrt(float64(len(l.registers)))
}

// M returns the register count.
func (l *LogLog) M() int { return len(l.registers) }

// SizeBytes returns the register storage size (5-bit registers packed
// would be ⌈5m/8⌉; we store bytes and report the honest in-memory cost).
func (l *LogLog) SizeBytes() int { return len(l.registers) }

// Merge takes the register-wise maximum, the exact union sketch.
func (l *LogLog) Merge(other *LogLog) error {
	if l.p != other.p || l.seed != other.seed {
		return fmt.Errorf("%w: LogLog shape mismatch", core.ErrIncompatible)
	}
	for i, r := range other.registers {
		if r > l.registers[i] {
			l.registers[i] = r
		}
	}
	return nil
}

// MarshalBinary serializes the sketch.
func (l *LogLog) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagLogLog, 1)
	w.U8(l.p)
	w.U64(l.seed)
	w.BytesField(l.registers)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (l *LogLog) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagLogLog)
	if err != nil {
		return err
	}
	p := r.U8()
	seed := r.U64()
	regs := r.BytesField()
	if err := r.Done(); err != nil {
		return err
	}
	if p < 4 || p > 16 || len(regs) != 1<<p {
		return fmt.Errorf("%w: LogLog precision %d with %d registers", core.ErrCorrupt, p, len(regs))
	}
	l.p, l.seed, l.registers = p, seed, regs
	return nil
}
