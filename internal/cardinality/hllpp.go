package cardinality

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/hashx"
)

// sparseP is the precision used by the sparse representation: hashes
// are bucketed into 2^25 cells, so linear counting stays essentially
// exact far beyond the dense transition point.
const sparseP = 25

// HLLPP is HyperLogLog++ (Heule, Nunkesser, Hall 2013): HyperLogLog
// with (a) a 64-bit hash so the large-range correction disappears,
// (b) a sparse representation at low cardinality that stores
// (index, rank) pairs at precision 25 and estimates with linear
// counting — near-exact until memory forces densification, and
// (c) dense-mode small-range handling. Together these remove the bias
// spike the raw HLL estimator shows between roughly 2m and 5m
// (experiment E8 reproduces the before/after).
//
// Substitution note (DESIGN.md §3): Google's published implementation
// corrects residual dense-mode bias with empirically fitted tables; we
// keep the sparse-until-dense and linear-counting machinery, which is
// what delivers the small-cardinality accuracy the paper highlights,
// and document the table omission rather than shipping opaque fitted
// constants.
type HLLPP struct {
	p      uint8
	seed   uint64
	sparse map[uint32]uint8 // idx25 -> max rank of remaining 39 bits; nil once dense
	dense  *HLL
}

// NewHLLPP creates an HLL++ sketch with dense precision p, 4 ≤ p ≤ 18.
func NewHLLPP(p uint8, seed uint64) *HLLPP {
	if p < 4 || p > 18 {
		panic("cardinality: HLL++ precision must be in [4,18]")
	}
	return &HLLPP{p: p, seed: seed, sparse: make(map[uint32]uint8)}
}

// Add inserts an item.
func (h *HLLPP) Add(item []byte) {
	h1, _ := hashx.Murmur3_128(item, h.seed)
	h.AddHash(h1)
}

// AddUint64 inserts an integer item without allocation.
func (h *HLLPP) AddUint64(v uint64) { h.AddHash(hashx.HashUint64(v, h.seed)) }

// AddString inserts a string item.
func (h *HLLPP) AddString(s string) { h.Add([]byte(s)) }

// Update implements core.Updater.
func (h *HLLPP) Update(item []byte) { h.Add(item) }

// AddHash folds an already-hashed value into the sketch.
func (h *HLLPP) AddHash(x uint64) {
	if h.dense != nil {
		h.dense.AddHash(x)
		return
	}
	idx := uint32(x >> (64 - sparseP))
	w := x<<sparseP | 1<<(sparseP-1)
	rank := uint8(bits.LeadingZeros64(w)) + 1
	if rank > h.sparse[idx] {
		h.sparse[idx] = rank
	}
	// Densify when the sparse map's memory overtakes the dense array:
	// each entry costs ~8 bytes against 6 bits per dense register.
	if len(h.sparse) > (1<<h.p)*3/4 {
		h.toDense()
	}
}

// toDense converts the sparse representation into dense registers.
func (h *HLLPP) toDense() {
	d := NewHLL(h.p, h.seed)
	shift := int(sparseP - h.p)
	for idx25, r := range h.sparse {
		denseIdx := int(idx25 >> shift)
		low := idx25 & (1<<shift - 1)
		var rank uint8
		if low != 0 {
			// The first 1-bit after position p lies inside the stored
			// index bits.
			rank = uint8(shift-bits.Len32(low)) + 1
		} else {
			rank = uint8(shift) + r
		}
		if rank > d.getRegister(denseIdx) {
			d.setRegister(denseIdx, rank)
		}
	}
	h.dense = d
	h.sparse = nil
}

// IsSparse reports whether the sketch is still in sparse mode.
func (h *HLLPP) IsSparse() bool { return h.dense == nil }

// Estimate returns the cardinality estimate: exact-ish linear counting
// at precision 25 while sparse, the dense HLL estimate after.
func (h *HLLPP) Estimate() float64 {
	if h.dense != nil {
		return h.dense.Estimate()
	}
	m := 1 << sparseP
	return linearCounting(m, m-len(h.sparse))
}

// P returns the dense precision parameter.
func (h *HLLPP) P() uint8 { return h.p }

// SizeBytes returns the current in-memory representation size.
func (h *HLLPP) SizeBytes() int {
	if h.dense != nil {
		return h.dense.SizeBytes()
	}
	return len(h.sparse) * 5 // 4-byte index + 1-byte rank, the packed cost
}

// Merge combines another HLL++ sketch of the same shape.
func (h *HLLPP) Merge(other *HLLPP) error {
	if h.p != other.p || h.seed != other.seed {
		return fmt.Errorf("%w: HLL++ shape mismatch", core.ErrIncompatible)
	}
	if h.dense == nil && other.dense == nil {
		for idx, r := range other.sparse {
			if r > h.sparse[idx] {
				h.sparse[idx] = r
			}
		}
		if len(h.sparse) > (1<<h.p)*3/4 {
			h.toDense()
		}
		return nil
	}
	if h.dense == nil {
		h.toDense()
	}
	if other.dense == nil {
		o := &HLLPP{p: other.p, seed: other.seed, sparse: make(map[uint32]uint8, len(other.sparse))}
		for k, v := range other.sparse {
			o.sparse[k] = v
		}
		o.toDense()
		return h.dense.Merge(o.dense)
	}
	return h.dense.Merge(other.dense)
}

// MarshalBinary serializes the sketch in either representation.
func (h *HLLPP) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagHLLPP, 1)
	w.U8(h.p)
	w.U64(h.seed)
	if h.dense != nil {
		w.U8(1)
		d, err := h.dense.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.BytesField(d)
		return w.Bytes(), nil
	}
	w.U8(0)
	// Serialize sparse entries sorted for determinism.
	keys := make([]uint32, 0, len(h.sparse))
	for k := range h.sparse {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	entries := make([]uint64, len(keys))
	for i, k := range keys {
		entries[i] = uint64(k)<<8 | uint64(h.sparse[k])
	}
	w.U64Slice(entries)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (h *HLLPP) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagHLLPP)
	if err != nil {
		return err
	}
	p := r.U8()
	seed := r.U64()
	mode := r.U8()
	if r.Err() != nil {
		return r.Err()
	}
	if p < 4 || p > 18 {
		return fmt.Errorf("%w: HLL++ precision %d", core.ErrCorrupt, p)
	}
	if mode == 1 {
		payload := r.BytesField()
		if err := r.Done(); err != nil {
			return err
		}
		var d HLL
		if err := d.UnmarshalBinary(payload); err != nil {
			return err
		}
		h.p, h.seed, h.dense, h.sparse = p, seed, &d, nil
		return nil
	}
	entries := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	sparse := make(map[uint32]uint8, len(entries))
	for _, e := range entries {
		idx := uint32(e >> 8)
		if idx >= 1<<sparseP {
			return fmt.Errorf("%w: HLL++ sparse index %d", core.ErrCorrupt, idx)
		}
		sparse[idx] = uint8(e)
	}
	h.p, h.seed, h.dense, h.sparse = p, seed, nil, sparse
	return nil
}
