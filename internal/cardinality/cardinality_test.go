package cardinality

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestFMAccuracy(t *testing.T) {
	f := NewFM(1024, 1)
	const n = 200000
	for i := 0; i < n; i++ {
		f.AddUint64(uint64(i))
	}
	if err := core.RelErr(f.Estimate(), n); err > 4*f.StandardError() {
		t.Errorf("FM rel err %.4f exceeds 4 sigma (%.4f)", err, 4*f.StandardError())
	}
}

func TestFMDuplicatesDoNotInflate(t *testing.T) {
	f := NewFM(256, 2)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 5000; i++ {
			f.AddUint64(uint64(i))
		}
	}
	if err := core.RelErr(f.Estimate(), 5000); err > 4*f.StandardError() {
		t.Errorf("FM with duplicates rel err %.4f", err)
	}
}

func TestFMMergeEqualsUnion(t *testing.T) {
	a, b, whole := NewFM(512, 3), NewFM(512, 3), NewFM(512, 3)
	for i := 0; i < 30000; i++ {
		if i%2 == 0 {
			a.AddUint64(uint64(i))
		} else {
			b.AddUint64(uint64(i))
		}
		whole.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Error("FM merge is not lossless")
	}
	if err := a.Merge(NewFM(256, 3)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("FM merge across shapes must fail")
	}
}

func TestFMSerialization(t *testing.T) {
	f := NewFM(128, 9)
	for i := 0; i < 10000; i++ {
		f.AddUint64(uint64(i))
	}
	data, _ := f.MarshalBinary()
	var g FM
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != f.Estimate() {
		t.Error("FM round trip changed estimate")
	}
}

func TestFMPanics(t *testing.T) {
	for _, m := range []int{0, 1, 3, 100, 1 << 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFM(%d) should panic", m)
				}
			}()
			NewFM(m, 1)
		}()
	}
}

func TestLogLogAccuracy(t *testing.T) {
	l := NewLogLog(12, 4)
	const n = 500000
	for i := 0; i < n; i++ {
		l.AddUint64(uint64(i))
	}
	if err := core.RelErr(l.Estimate(), n); err > 4*l.StandardError() {
		t.Errorf("LogLog rel err %.4f exceeds 4 sigma (%.4f)", err, 4*l.StandardError())
	}
}

func TestLogLogMerge(t *testing.T) {
	a, b, whole := NewLogLog(10, 5), NewLogLog(10, 5), NewLogLog(10, 5)
	for i := 0; i < 100000; i++ {
		if i < 50000 {
			a.AddUint64(uint64(i))
		} else {
			b.AddUint64(uint64(i))
		}
		whole.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Error("LogLog merge is not lossless")
	}
}

func TestLogLogSerialization(t *testing.T) {
	l := NewLogLog(8, 6)
	for i := 0; i < 5000; i++ {
		l.AddUint64(uint64(i))
	}
	data, _ := l.MarshalBinary()
	var g LogLog
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != l.Estimate() {
		t.Error("LogLog round trip changed estimate")
	}
	if err := g.UnmarshalBinary(data[:5]); !errors.Is(err, core.ErrCorrupt) {
		t.Error("truncated input accepted")
	}
}

func TestHLLRegisterPacking(t *testing.T) {
	// Every register index must read back what was written, including
	// word-boundary spans.
	h := NewHLL(10, 1)
	m := h.M()
	for i := 0; i < m; i++ {
		h.setRegister(i, uint8(i%61)+1)
	}
	for i := 0; i < m; i++ {
		if got := h.getRegister(i); got != uint8(i%61)+1 {
			t.Fatalf("register %d = %d, want %d", i, got, uint8(i%61)+1)
		}
	}
}

func TestHLLRegisterPackingProperty(t *testing.T) {
	h := NewHLL(8, 1)
	m := h.M()
	f := func(idx uint16, val uint8) bool {
		i := int(idx) % m
		v := val & 0x3f
		h.setRegister(i, v)
		return h.getRegister(i) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHLLAccuracyAcrossScales(t *testing.T) {
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		h := NewHLL(12, 7)
		for i := 0; i < n; i++ {
			h.AddUint64(uint64(i))
		}
		if err := core.RelErr(h.Estimate(), float64(n)); err > 5*h.StandardError() {
			t.Errorf("HLL n=%d rel err %.4f exceeds 5 sigma (%.4f)", n, err, 5*h.StandardError())
		}
	}
}

func TestHLLErrorScalesWithPrecision(t *testing.T) {
	// Average relative error over trials must shrink roughly as
	// 1/sqrt(m) when p increases — the E2 ladder.
	const n = 50000
	meanErr := func(p uint8) float64 {
		var total float64
		const trials = 8
		for trial := 0; trial < trials; trial++ {
			h := NewHLL(p, uint64(trial)*13+1)
			for i := 0; i < n; i++ {
				h.AddUint64(uint64(i) + uint64(trial)<<32)
			}
			total += core.RelErr(h.Estimate(), n)
		}
		return total / trials
	}
	e8, e12 := meanErr(8), meanErr(12)
	if e12 >= e8 {
		t.Errorf("error did not shrink with precision: p=8 %.4f vs p=12 %.4f", e8, e12)
	}
}

func TestHLLSmallRangeLinearCounting(t *testing.T) {
	// At tiny cardinality the corrected estimate must be near-exact
	// even though the raw estimator is badly biased.
	h := NewHLL(14, 2)
	const n = 100
	for i := 0; i < n; i++ {
		h.AddUint64(uint64(i))
	}
	if err := core.RelErr(h.Estimate(), n); err > 0.05 {
		t.Errorf("linear-counting estimate off by %.3f at n=%d", err, n)
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b, whole := NewHLL(11, 3), NewHLL(11, 3), NewHLL(11, 3)
	for i := 0; i < 80000; i++ {
		switch i % 3 {
		case 0:
			a.AddUint64(uint64(i))
		case 1:
			b.AddUint64(uint64(i))
		default: // overlap: both shards see it
			a.AddUint64(uint64(i))
			b.AddUint64(uint64(i))
		}
		whole.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Error("HLL merge is not lossless")
	}
	if err := a.Merge(NewHLL(12, 3)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("HLL merge across precisions must fail")
	}
	if err := a.Merge(NewHLL(11, 4)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("HLL merge across seeds must fail")
	}
}

func TestHLLSizeBytes(t *testing.T) {
	h := NewHLL(14, 1)
	want := (16384*6 + 63) / 64 * 8
	if h.SizeBytes() != want {
		t.Errorf("SizeBytes = %d, want %d (packed 6-bit registers)", h.SizeBytes(), want)
	}
}

func TestHLLSerialization(t *testing.T) {
	h := NewHLL(10, 8)
	for i := 0; i < 30000; i++ {
		h.AddUint64(uint64(i))
	}
	data, _ := h.MarshalBinary()
	var g HLL
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != h.Estimate() {
		t.Error("HLL round trip changed estimate")
	}
}

func TestHLLCloneIndependent(t *testing.T) {
	h := NewHLL(8, 1)
	h.AddUint64(1)
	c := h.Clone()
	for i := 0; i < 1000; i++ {
		c.AddUint64(uint64(i))
	}
	if h.Estimate() >= c.Estimate() {
		t.Error("clone updates leaked into original or clone broken")
	}
}

func TestHLLPPSparseNearExactSmall(t *testing.T) {
	// The E8 claim: HLL++ stays essentially exact at small
	// cardinalities where raw HLL is biased.
	h := NewHLLPP(14, 3)
	const n = 5000
	for i := 0; i < n; i++ {
		h.AddUint64(uint64(i))
	}
	if !h.IsSparse() {
		t.Fatal("sketch should still be sparse at n=5000, p=14")
	}
	if err := core.RelErr(h.Estimate(), n); err > 0.01 {
		t.Errorf("sparse estimate rel err %.4f, want < 1%%", err)
	}
}

func TestHLLPPDensifiesAndStaysAccurate(t *testing.T) {
	h := NewHLLPP(10, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		h.AddUint64(uint64(i))
	}
	if h.IsSparse() {
		t.Fatal("sketch should have densified")
	}
	if err := core.RelErr(h.Estimate(), n); err > 5*1.04/math.Sqrt(1024) {
		t.Errorf("dense estimate rel err %.4f", err)
	}
}

func TestHLLPPConversionConsistentWithDirectDense(t *testing.T) {
	// Inserting the same items into HLL++ (through sparse->dense
	// conversion) and directly into dense HLL must yield identical
	// registers: conversion preserves all information down to rank.
	hpp := NewHLLPP(8, 5)
	hd := NewHLL(8, 5)
	const n = 10000
	for i := 0; i < n; i++ {
		hpp.AddUint64(uint64(i))
		hd.AddUint64(uint64(i))
	}
	if hpp.IsSparse() {
		t.Fatal("expected densified sketch")
	}
	for i := 0; i < hd.M(); i++ {
		if hpp.dense.getRegister(i) != hd.getRegister(i) {
			t.Fatalf("register %d differs after conversion: %d vs %d",
				i, hpp.dense.getRegister(i), hd.getRegister(i))
		}
	}
}

func TestHLLPPMergeAllModes(t *testing.T) {
	mk := func(lo, hi int) *HLLPP {
		h := NewHLLPP(10, 6)
		for i := lo; i < hi; i++ {
			h.AddUint64(uint64(i))
		}
		return h
	}
	// sparse + sparse
	a := mk(0, 200)
	if err := a.Merge(mk(200, 400)); err != nil {
		t.Fatal(err)
	}
	if err := core.RelErr(a.Estimate(), 400); err > 0.02 {
		t.Errorf("sparse+sparse merge err %.4f", err)
	}
	// dense + sparse
	b := mk(0, 100000)
	if err := b.Merge(mk(100000, 100200)); err != nil {
		t.Fatal(err)
	}
	if err := core.RelErr(b.Estimate(), 100200); err > 0.2 {
		t.Errorf("dense+sparse merge err %.4f", err)
	}
	// sparse + dense
	c := mk(0, 200)
	if err := c.Merge(mk(200, 100200)); err != nil {
		t.Fatal(err)
	}
	if c.IsSparse() {
		t.Error("sparse+dense merge should densify")
	}
	// incompatible
	if err := a.Merge(NewHLLPP(11, 6)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across precisions must fail")
	}
}

func TestHLLPPSerializationBothModes(t *testing.T) {
	sparse := NewHLLPP(12, 7)
	for i := 0; i < 1000; i++ {
		sparse.AddUint64(uint64(i))
	}
	data, _ := sparse.MarshalBinary()
	var g HLLPP
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !g.IsSparse() || g.Estimate() != sparse.Estimate() {
		t.Error("sparse round trip broken")
	}

	dense := NewHLLPP(8, 7)
	for i := 0; i < 50000; i++ {
		dense.AddUint64(uint64(i))
	}
	data2, _ := dense.MarshalBinary()
	var g2 HLLPP
	if err := g2.UnmarshalBinary(data2); err != nil {
		t.Fatal(err)
	}
	if g2.IsSparse() || g2.Estimate() != dense.Estimate() {
		t.Error("dense round trip broken")
	}
}

func TestKMVAccuracy(t *testing.T) {
	s := NewKMV(1024, 8)
	const n = 300000
	for i := 0; i < n; i++ {
		s.AddUint64(uint64(i))
	}
	if err := core.RelErr(s.Estimate(), n); err > 4*s.StandardError() {
		t.Errorf("KMV rel err %.4f exceeds 4 sigma (%.4f)", err, 4*s.StandardError())
	}
}

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(100, 9)
	for i := 0; i < 50; i++ {
		s.AddUint64(uint64(i))
		s.AddUint64(uint64(i)) // duplicates ignored
	}
	if s.Estimate() != 50 {
		t.Errorf("estimate %.0f below k, want exact 50", s.Estimate())
	}
}

func TestKMVMergeEqualsUnion(t *testing.T) {
	a, b, whole := NewKMV(256, 10), NewKMV(256, 10), NewKMV(256, 10)
	for i := 0; i < 50000; i++ {
		if i%2 == 0 {
			a.AddUint64(uint64(i))
		} else {
			b.AddUint64(uint64(i))
		}
		whole.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Error("KMV merge is not lossless")
	}
}

func TestKMVIntersectionAndJaccard(t *testing.T) {
	a, b := NewKMV(2048, 11), NewKMV(2048, 11)
	// |A| = 60k, |B| = 60k, overlap 20k => Jaccard = 20k/100k = 0.2
	for i := 0; i < 60000; i++ {
		a.AddUint64(uint64(i))
	}
	for i := 40000; i < 100000; i++ {
		b.AddUint64(uint64(i))
	}
	inter, err := a.IntersectionEstimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if relErr := core.RelErr(inter, 20000); relErr > 0.2 {
		t.Errorf("intersection estimate %.0f, want ~20000 (err %.3f)", inter, relErr)
	}
	j, err := a.JaccardEstimate(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-0.2) > 0.05 {
		t.Errorf("jaccard estimate %.3f, want ~0.2", j)
	}
}

func TestKMVSerialization(t *testing.T) {
	s := NewKMV(64, 12)
	for i := 0; i < 10000; i++ {
		s.AddUint64(uint64(i))
	}
	data, _ := s.MarshalBinary()
	var g KMV
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != s.Estimate() {
		t.Error("KMV round trip changed estimate")
	}
	// Corrupt sortedness check.
	bad := append([]byte(nil), data...)
	// Swap two value bytes deep in the payload to break ordering.
	bad[len(bad)-1], bad[len(bad)-9] = bad[len(bad)-9], bad[len(bad)-1]
	var h KMV
	if err := h.UnmarshalBinary(bad); err == nil {
		// Swapping may coincidentally preserve order; only assert when changed.
		if len(h.vals) >= 2 && h.vals[len(h.vals)-1] <= h.vals[len(h.vals)-2] {
			t.Error("unsorted values accepted")
		}
	}
}

func TestSpaceAccuracyLadder(t *testing.T) {
	// E2 in miniature: at equal substream counts (m=1024), HLL uses
	// less memory than LogLog which uses less than FM, while accuracy
	// stays in the same ballpark.
	fm := NewFM(1024, 1)
	ll := NewLogLog(10, 1)
	hll := NewHLL(10, 1)
	if !(hll.SizeBytes() < ll.SizeBytes() && ll.SizeBytes() < fm.SizeBytes()) {
		t.Errorf("space ladder violated: fm=%d ll=%d hll=%d",
			fm.SizeBytes(), ll.SizeBytes(), hll.SizeBytes())
	}
	if !(hll.StandardError() < ll.StandardError()) {
		t.Error("HLL should have a better error constant than LogLog")
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := NewHLL(14, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddUint64(uint64(i))
	}
}

func BenchmarkHLLEstimate(b *testing.B) {
	h := NewHLL(14, 1)
	for i := 0; i < 1000000; i++ {
		h.AddUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Estimate()
	}
}

func BenchmarkKMVAdd(b *testing.B) {
	s := NewKMV(1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddUint64(uint64(i))
	}
}

func ExampleHLL() {
	h := NewHLL(14, 42)
	for i := 0; i < 100000; i++ {
		h.AddString(fmt.Sprintf("user-%d", i))
	}
	est := h.Estimate()
	fmt.Println(est > 98000 && est < 102000)
	// Output: true
}
