package cardinality

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/hashx"
)

// HLL is HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007) with the
// 64-bit-hash engineering refinement from Heule et al. 2013 (no
// large-range correction needed) and linear counting for the small
// range. Registers are packed 6 bits each, the honest space cost the
// paper's space claims refer to: 2^p registers cost ⌈6·2^p/8⌉ bytes.
//
// Relative standard error ≈ 1.04/√m — the "very simple to implement,
// highly sophisticated to analyze" sketch that became the industry
// default for count-distinct (experiments E2, E8, E14).
type HLL struct {
	packed []uint64 // 6-bit registers packed little-endian into words
	p      uint8
	seed   uint64
}

// NewHLL creates a HyperLogLog sketch with 2^p registers, 4 ≤ p ≤ 18.
// p = 14 (16384 registers, 12 KiB) gives ~0.8% standard error and is
// the common production setting.
func NewHLL(p uint8, seed uint64) *HLL {
	if p < 4 || p > 18 {
		panic("cardinality: HLL precision must be in [4,18]")
	}
	m := 1 << p
	return &HLL{packed: make([]uint64, (m*6+63)/64), p: p, seed: seed}
}

// getRegister reads the 6-bit register at index i.
func (h *HLL) getRegister(i int) uint8 {
	bitPos := i * 6
	word, off := bitPos/64, uint(bitPos%64)
	v := h.packed[word] >> off
	if off > 58 {
		v |= h.packed[word+1] << (64 - off)
	}
	return uint8(v & 0x3f)
}

// setRegister writes the 6-bit register at index i.
func (h *HLL) setRegister(i int, val uint8) {
	bitPos := i * 6
	word, off := bitPos/64, uint(bitPos%64)
	h.packed[word] = h.packed[word]&^(0x3f<<off) | uint64(val&0x3f)<<off
	if off > 58 {
		rem := 64 - off
		h.packed[word+1] = h.packed[word+1]&^(0x3f>>rem) | uint64(val&0x3f)>>rem
	}
}

// Add inserts an item.
func (h *HLL) Add(item []byte) {
	h1, _ := hashx.Murmur3_128(item, h.seed)
	h.AddHash(h1)
}

// AddUint64 inserts an integer item without allocation.
func (h *HLL) AddUint64(v uint64) { h.AddHash(hashx.HashUint64(v, h.seed)) }

// AddString inserts a string item without copying or allocating.
func (h *HLL) AddString(s string) {
	h1, _ := hashx.Murmur3_128String(s, h.seed)
	h.AddHash(h1)
}

// ingestChunk is the chunk size of the two-phase batch loops: hash (or
// derive) a whole chunk first, then update from it, keeping the staging
// arrays on the stack while independent register accesses overlap.
const ingestChunk = 256

// AddBatch inserts many items with the two-phase pipelined loop: each
// fixed-size chunk is fully hashed first, then folded into the
// registers. State after AddBatch is byte-identical to calling Add on
// each item in order.
func (h *HLL) AddBatch(items [][]byte) {
	var hs [ingestChunk]uint64
	for len(items) > 0 {
		c := len(items)
		if c > ingestChunk {
			c = ingestChunk
		}
		for i, item := range items[:c] {
			hs[i], _ = hashx.Murmur3_128(item, h.seed)
		}
		h.AddHashBatch(hs[:c])
		items = items[c:]
	}
}

// AddHashBatch folds many pre-hashed values in, hash-once pipelines'
// batch entry point. The loop is two-phase over fixed chunks: phase 1
// derives every value's register index and rank (pure ALU — shift,
// count-leading-zeros), phase 2 streams the register max-updates, so
// consecutive packed-register accesses overlap. Register max is
// commutative, so state is byte-identical to calling AddHash per
// value.
func (h *HLL) AddHashBatch(hs []uint64) {
	var idxs [ingestChunk]int32
	var ranks [ingestChunk]uint8
	p := h.p
	for start := 0; start < len(hs); start += ingestChunk {
		end := start + ingestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		for i, x := range chunk {
			idxs[i] = int32(x >> (64 - p))
			ranks[i] = uint8(bits.LeadingZeros64(x<<p|1<<(p-1))) + 1
		}
		for i := range chunk {
			idx := int(idxs[i])
			if ranks[i] > h.getRegister(idx) {
				h.setRegister(idx, ranks[i])
			}
		}
	}
}

// Update implements core.Updater.
func (h *HLL) Update(item []byte) { h.Add(item) }

// AddHash folds an already-hashed 64-bit value into the sketch. Sharded
// pipelines use it to hash once and update many sketches.
func (h *HLL) AddHash(x uint64) {
	idx := int(x >> (64 - h.p))
	w := x<<h.p | 1<<(h.p-1)
	rank := uint8(bits.LeadingZeros64(w)) + 1
	if rank > h.getRegister(idx) {
		h.setRegister(idx, rank)
	}
}

// alpha returns the HLL bias-correction constant α_m.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the cardinality estimate with small-range linear
// counting: when the raw estimate is below 5m/2 and empty registers
// remain, the linear-counting estimate m·ln(m/V) is more accurate and
// is used instead (the Heule et al. regime switch that E8 probes).
func (h *HLL) Estimate() float64 {
	m := 1 << h.p
	var sum float64
	zeros := 0
	for i := 0; i < m; i++ {
		r := h.getRegister(i)
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	raw := alpha(m) * float64(m) * float64(m) / sum
	if raw <= 2.5*float64(m) && zeros > 0 {
		return linearCounting(m, zeros)
	}
	return raw
}

// RawEstimate returns the uncorrected harmonic-mean estimate, used by
// experiment E8 to demonstrate the small-range bias that linear
// counting (and HLL++'s bias tables) fix.
func (h *HLL) RawEstimate() float64 {
	m := 1 << h.p
	var sum float64
	for i := 0; i < m; i++ {
		sum += 1 / float64(uint64(1)<<h.getRegister(i))
	}
	return alpha(m) * float64(m) * float64(m) / sum
}

// linearCounting is the balls-in-bins estimator m·ln(m/V) where V is
// the number of empty registers.
func linearCounting(m, zeros int) float64 {
	return float64(m) * math.Log(float64(m)/float64(zeros))
}

// StandardError returns the theoretical relative standard error 1.04/√m.
func (h *HLL) StandardError() float64 {
	return 1.04 / math.Sqrt(float64(uint64(1)<<h.p))
}

// P returns the precision parameter.
func (h *HLL) P() uint8 { return h.p }

// Seed returns the hash seed. Wrappers that hash outside a lock (the
// concurrent sharded handle) need it to produce the same item→hash map
// as Add.
func (h *HLL) Seed() uint64 { return h.seed }

// M returns the register count 2^p.
func (h *HLL) M() int { return 1 << h.p }

// SizeBytes returns the packed register storage size.
func (h *HLL) SizeBytes() int { return len(h.packed) * 8 }

// Merge takes the register-wise maximum — the lossless union that makes
// HLL "slice and dice" reach reporting possible (§3 of the paper):
// sketches per (campaign, demographic) cell can be combined along any
// dimension without double counting.
func (h *HLL) Merge(other *HLL) error {
	if h.p != other.p || h.seed != other.seed {
		return fmt.Errorf("%w: HLL p=%d/seed=%d vs p=%d/seed=%d",
			core.ErrIncompatible, h.p, h.seed, other.p, other.seed)
	}
	m := 1 << h.p
	for i := 0; i < m; i++ {
		if r := other.getRegister(i); r > h.getRegister(i) {
			h.setRegister(i, r)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (h *HLL) Clone() *HLL {
	c := *h
	c.packed = append([]uint64(nil), h.packed...)
	return &c
}

// MarshalBinary serializes the sketch.
func (h *HLL) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagHLL, 1)
	w.U8(h.p)
	w.U64(h.seed)
	w.U64Slice(h.packed)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (h *HLL) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReaderVersioned(data, core.TagHLL, 1)
	if err != nil {
		return err
	}
	p := r.U8()
	seed := r.U64()
	packed := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if p < 4 || p > 18 {
		return fmt.Errorf("%w: HLL precision %d", core.ErrCorrupt, p)
	}
	m := 1 << p
	if len(packed) != (m*6+63)/64 {
		return fmt.Errorf("%w: HLL register payload length %d", core.ErrCorrupt, len(packed))
	}
	h.p, h.seed, h.packed = p, seed, packed
	return nil
}
