package cardinality

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hashx"
)

// KMV is the k-minimum-values (bottom-k) distinct counter: keep the k
// smallest hash values seen; if the k-th smallest is v (as a fraction
// of the hash range), the cardinality estimate is (k−1)/v. KMV is the
// practical face of the theory line that culminated in the optimal
// distinct-elements algorithm (Kane–Nelson–Woodruff, PODS 2010 best
// paper), and the basis of theta sketches: because it retains actual
// hash values, it supports set intersection and difference estimates,
// not just union.
type KMV struct {
	k    int
	seed uint64
	vals []uint64 // sorted ascending, at most k values, distinct
}

// NewKMV creates a bottom-k sketch. Relative standard error ≈ 1/√(k−2).
func NewKMV(k int, seed uint64) *KMV {
	if k < 3 {
		panic("cardinality: KMV requires k >= 3")
	}
	return &KMV{k: k, seed: seed, vals: make([]uint64, 0, k)}
}

// Add inserts an item.
func (s *KMV) Add(item []byte) { s.addHash(hashx.XXHash64(item, s.seed)) }

// AddUint64 inserts an integer item without allocation.
func (s *KMV) AddUint64(v uint64) { s.addHash(hashx.HashUint64(v, s.seed)) }

// AddString inserts a string item.
func (s *KMV) AddString(v string) { s.Add([]byte(v)) }

// Update implements core.Updater.
func (s *KMV) Update(item []byte) { s.Add(item) }

func (s *KMV) addHash(h uint64) {
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= h })
	if i < len(s.vals) && s.vals[i] == h {
		return // duplicate item (or hash collision): bottom-k keeps distinct values
	}
	if len(s.vals) == s.k {
		if i == s.k {
			return // larger than current k-th minimum
		}
		copy(s.vals[i+1:], s.vals[i:s.k-1])
		s.vals[i] = h
		return
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = h
}

// Estimate returns the cardinality estimate (k−1)/v_k, or the exact
// retained count while fewer than k values have been seen.
func (s *KMV) Estimate() float64 {
	if len(s.vals) < s.k {
		return float64(len(s.vals))
	}
	vk := float64(s.vals[s.k-1]) / math.MaxUint64
	return float64(s.k-1) / vk
}

// K returns the sketch size parameter.
func (s *KMV) K() int { return s.k }

// StandardError returns the theoretical relative standard error.
func (s *KMV) StandardError() float64 { return 1 / math.Sqrt(float64(s.k-2)) }

// SizeBytes returns the retained-values storage size.
func (s *KMV) SizeBytes() int { return len(s.vals) * 8 }

// Merge combines another KMV sketch: union the value sets and keep the
// k smallest. The result is exactly the sketch of the union stream.
func (s *KMV) Merge(other *KMV) error {
	if s.k != other.k || s.seed != other.seed {
		return fmt.Errorf("%w: KMV shape mismatch", core.ErrIncompatible)
	}
	for _, v := range other.vals {
		s.addHash(v)
	}
	return nil
}

// IntersectionEstimate estimates |A ∩ B| between two compatible KMV
// sketches using the standard theta-sketch style inclusion ratio over
// the combined bottom-k.
func (s *KMV) IntersectionEstimate(other *KMV) (float64, error) {
	if s.k != other.k || s.seed != other.seed {
		return 0, fmt.Errorf("%w: KMV shape mismatch", core.ErrIncompatible)
	}
	union := NewKMV(s.k, s.seed)
	for _, v := range s.vals {
		union.addHash(v)
	}
	for _, v := range other.vals {
		union.addHash(v)
	}
	if len(union.vals) == 0 {
		return 0, nil
	}
	// Count union bottom-k values present in both sketches.
	inBoth := 0
	setA := make(map[uint64]struct{}, len(s.vals))
	for _, v := range s.vals {
		setA[v] = struct{}{}
	}
	setB := make(map[uint64]struct{}, len(other.vals))
	for _, v := range other.vals {
		setB[v] = struct{}{}
	}
	for _, v := range union.vals {
		if _, okA := setA[v]; okA {
			if _, okB := setB[v]; okB {
				inBoth++
			}
		}
	}
	return float64(inBoth) / float64(len(union.vals)) * union.Estimate(), nil
}

// JaccardEstimate estimates the Jaccard similarity |A∩B|/|A∪B|.
func (s *KMV) JaccardEstimate(other *KMV) (float64, error) {
	inter, err := s.IntersectionEstimate(other)
	if err != nil {
		return 0, err
	}
	union := NewKMV(s.k, s.seed)
	for _, v := range s.vals {
		union.addHash(v)
	}
	for _, v := range other.vals {
		union.addHash(v)
	}
	u := union.Estimate()
	if u == 0 {
		return 0, nil
	}
	return inter / u, nil
}

// MarshalBinary serializes the sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagKMV, 1)
	w.U32(uint32(s.k))
	w.U64(s.seed)
	w.U64Slice(s.vals)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary.
func (s *KMV) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagKMV)
	if err != nil {
		return err
	}
	k := int(r.U32())
	seed := r.U64()
	vals := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if k < 3 || len(vals) > k {
		return fmt.Errorf("%w: KMV k=%d with %d values", core.ErrCorrupt, k, len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			return fmt.Errorf("%w: KMV values not strictly sorted", core.ErrCorrupt)
		}
	}
	s.k, s.seed, s.vals = k, seed, vals
	return nil
}
