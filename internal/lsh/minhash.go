// Package lsh implements locality-sensitive hashing (Indyk–Motwani
// 1998), the paper's example of sketches powering similarity search —
// from early multimedia image search to today's embedding retrieval:
// MinHash signatures for Jaccard similarity with a banded index,
// SimHash (random hyperplane) for cosine similarity, and p-stable
// (Gaussian) LSH for Euclidean distance. Experiment E11 reproduces the
// recall-vs-similarity S-curves.
package lsh

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hashx"
)

// MinHash is a MinHash signature accumulator: signature[i] is the
// minimum of hash_i over the elements added. For two sets,
// P[sig_A[i] == sig_B[i]] equals their Jaccard similarity, so the
// fraction of agreeing coordinates is an unbiased similarity estimate
// with standard error 1/√(signature length).
type MinHash struct {
	sig  []uint64
	seed uint64
}

// NewMinHash creates a signature with k coordinates.
func NewMinHash(k int, seed uint64) *MinHash {
	if k < 1 {
		panic("lsh: MinHash requires k >= 1")
	}
	sig := make([]uint64, k)
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	return &MinHash{sig: sig, seed: seed}
}

// Add folds a set element into the signature. Each coordinate uses an
// independent seeded hash of the element.
func (m *MinHash) Add(element []byte) {
	base := hashx.XXHash64(element, m.seed)
	// Derive the k per-coordinate hashes from one strong base hash via
	// SplitMix64 — the standard "one hash, k mixes" implementation.
	state := base
	for i := range m.sig {
		state += 0x9e3779b97f4a7c15
		h := hashx.Mix64(state)
		if h < m.sig[i] {
			m.sig[i] = h
		}
	}
}

// AddString folds a string element.
func (m *MinHash) AddString(element string) { m.Add([]byte(element)) }

// Update implements core.Updater.
func (m *MinHash) Update(item []byte) { m.Add(item) }

// Signature returns the current signature (read-only).
func (m *MinHash) Signature() []uint64 { return m.sig }

// K returns the signature length.
func (m *MinHash) K() int { return len(m.sig) }

// Similarity estimates the Jaccard similarity with another signature of
// the same shape.
func (m *MinHash) Similarity(other *MinHash) (float64, error) {
	if len(m.sig) != len(other.sig) || m.seed != other.seed {
		return 0, fmt.Errorf("%w: minhash shape mismatch", core.ErrIncompatible)
	}
	agree := 0
	for i := range m.sig {
		if m.sig[i] == other.sig[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(m.sig)), nil
}

// Merge combines with another signature: the coordinate-wise minimum is
// exactly the signature of the union of the two sets.
func (m *MinHash) Merge(other *MinHash) error {
	if len(m.sig) != len(other.sig) || m.seed != other.seed {
		return fmt.Errorf("%w: minhash shape mismatch", core.ErrIncompatible)
	}
	for i, v := range other.sig {
		if v < m.sig[i] {
			m.sig[i] = v
		}
	}
	return nil
}

// MarshalBinary serializes the signature.
func (m *MinHash) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagMinHash, 1)
	w.U64(m.seed)
	w.U64Slice(m.sig)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a signature serialized by MarshalBinary.
func (m *MinHash) UnmarshalBinary(data []byte) error {
	r, _, err := core.NewReader(data, core.TagMinHash)
	if err != nil {
		return err
	}
	seed := r.U64()
	sig := r.U64Slice()
	if err := r.Done(); err != nil {
		return err
	}
	if len(sig) < 1 {
		return fmt.Errorf("%w: empty minhash signature", core.ErrCorrupt)
	}
	m.seed, m.sig = seed, sig
	return nil
}

// Index is a banded LSH index over MinHash signatures: signatures are
// cut into b bands of r rows; two items become candidates when any band
// hashes identically. The probability a pair with similarity s becomes
// a candidate is 1 − (1 − s^r)^b — the S-curve of experiment E11.
type Index struct {
	bands, rows int
	buckets     []map[uint64][]string // one bucket map per band
	sigs        map[string]*MinHash
}

// NewIndex creates a banded index for signatures of length bands×rows.
func NewIndex(bands, rows int) *Index {
	if bands < 1 || rows < 1 {
		panic("lsh: bands and rows must be positive")
	}
	buckets := make([]map[uint64][]string, bands)
	for i := range buckets {
		buckets[i] = make(map[uint64][]string)
	}
	return &Index{bands: bands, rows: rows, buckets: buckets, sigs: make(map[string]*MinHash)}
}

// Add indexes a signature under the given id. The signature length must
// equal bands×rows.
func (ix *Index) Add(id string, sig *MinHash) error {
	if sig.K() != ix.bands*ix.rows {
		return fmt.Errorf("%w: signature length %d, want %d", core.ErrIncompatible, sig.K(), ix.bands*ix.rows)
	}
	ix.sigs[id] = sig
	for b := 0; b < ix.bands; b++ {
		key := ix.bandKey(sig, b)
		ix.buckets[b][key] = append(ix.buckets[b][key], id)
	}
	return nil
}

func (ix *Index) bandKey(sig *MinHash, band int) uint64 {
	h := uint64(band) + 1
	for _, v := range sig.Signature()[band*ix.rows : (band+1)*ix.rows] {
		h = hashx.Mix64(h ^ v)
	}
	return h
}

// Candidates returns the ids sharing at least one band with the query
// signature (excluding exact id matches is the caller's concern).
func (ix *Index) Candidates(sig *MinHash) []string {
	seen := map[string]bool{}
	var out []string
	for b := 0; b < ix.bands; b++ {
		for _, id := range ix.buckets[b][ix.bandKey(sig, b)] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Query returns indexed ids whose estimated similarity to the query
// signature is at least minSim, verified against stored signatures.
func (ix *Index) Query(sig *MinHash, minSim float64) []string {
	var out []string
	for _, id := range ix.Candidates(sig) {
		if s, err := sig.Similarity(ix.sigs[id]); err == nil && s >= minSim {
			out = append(out, id)
		}
	}
	return out
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.sigs) }

// CandidateProbability returns the analytic S-curve value
// 1 − (1 − s^r)^b for similarity s.
func (ix *Index) CandidateProbability(s float64) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(ix.rows)), float64(ix.bands))
}
