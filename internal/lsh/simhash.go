package lsh

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/randx"
)

// SimHash is the random-hyperplane LSH of Charikar: each output bit
// records the sign of the input's projection onto a random Gaussian
// direction. For vectors at angle θ, the probability two SimHash bits
// agree is 1 − θ/π, so the Hamming similarity of two signatures
// estimates the cosine similarity — the primitive behind the paper's
// "learned vector embeddings … supported efficiently by LSH-based
// techniques" observation.
type SimHash struct {
	planes [][]float64 // bitsN hyperplanes × d
	d      int
	seed   uint64
}

// NewSimHash creates a SimHash with bitsN output bits (≤ 64) over
// d-dimensional inputs.
func NewSimHash(d, bitsN int, seed uint64) *SimHash {
	if d < 1 || bitsN < 1 || bitsN > 64 {
		panic("lsh: SimHash requires d >= 1 and 1 <= bits <= 64")
	}
	rng := randx.New(seed)
	planes := make([][]float64, bitsN)
	for i := range planes {
		planes[i] = make([]float64, d)
		for j := range planes[i] {
			planes[i][j] = rng.Normal()
		}
	}
	return &SimHash{planes: planes, d: d, seed: seed}
}

// Hash returns the signature of vector x.
func (s *SimHash) Hash(x []float64) uint64 {
	if len(x) != s.d {
		panic(fmt.Sprintf("lsh: input dimension %d, want %d", len(x), s.d))
	}
	var sig uint64
	for i, plane := range s.planes {
		var dot float64
		for j, v := range x {
			dot += plane[j] * v
		}
		if dot >= 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// Bits returns the signature width.
func (s *SimHash) Bits() int { return len(s.planes) }

// Similarity estimates the cosine similarity between the vectors that
// produced two signatures: cos(π·(1 − agreement)).
func (s *SimHash) Similarity(a, b uint64) float64 {
	hamming := bits.OnesCount64(a ^ b)
	theta := math.Pi * float64(hamming) / float64(len(s.planes))
	return math.Cos(theta)
}

// EuclideanLSH is the p-stable (p = 2, Gaussian) LSH of Datar et al.:
// h(x) = ⌊(a·x + b)/w⌋ for Gaussian a and uniform offset b. Near
// points collide with higher probability; w tunes the distance scale.
type EuclideanLSH struct {
	a    [][]float64
	b    []float64
	w    float64
	d    int
	seed uint64
}

// NewEuclideanLSH creates k concatenated p-stable hash functions over
// d-dimensional inputs with bucket width w.
func NewEuclideanLSH(d, k int, w float64, seed uint64) *EuclideanLSH {
	if d < 1 || k < 1 || w <= 0 {
		panic("lsh: EuclideanLSH requires positive d, k, w")
	}
	rng := randx.New(seed)
	a := make([][]float64, k)
	b := make([]float64, k)
	for i := range a {
		a[i] = make([]float64, d)
		for j := range a[i] {
			a[i][j] = rng.Normal()
		}
		b[i] = rng.Float64() * w
	}
	return &EuclideanLSH{a: a, b: b, w: w, d: d, seed: seed}
}

// Hash returns the concatenated bucket ids for x, mixed into a single
// key suitable for a hash-table index.
func (e *EuclideanLSH) Hash(x []float64) uint64 {
	if len(x) != e.d {
		panic(fmt.Sprintf("lsh: input dimension %d, want %d", len(x), e.d))
	}
	var key uint64 = 14695981039346656037
	for i := range e.a {
		var dot float64
		for j, v := range x {
			dot += e.a[i][j] * v
		}
		bucket := int64(math.Floor((dot + e.b[i]) / e.w))
		key ^= uint64(bucket)
		key *= 1099511628211
	}
	return key
}

// CollisionProbability returns the analytic single-function collision
// probability for points at distance c: the p-stable formula
// p(c) = 1 − 2Φ(−w/c) − (2c/(√(2π)w))(1 − e^{−w²/2c²}).
func (e *EuclideanLSH) CollisionProbability(c float64) float64 {
	if c <= 0 {
		return 1
	}
	r := e.w / c
	return 1 - 2*gaussCDFNeg(r) - 2/(math.Sqrt(2*math.Pi)*r)*(1-math.Exp(-r*r/2))
}

// gaussCDFNeg returns P[Z < -r] for standard normal Z.
func gaussCDFNeg(r float64) float64 {
	return 0.5 * math.Erfc(r/math.Sqrt2)
}

// D returns the input dimensionality.
func (s *SimHash) D() int { return s.d }

// MarshalBinary serializes the SimHash. The hyperplanes are a pure
// function of (d, bits, seed) — NewSimHash draws them from a seeded
// RNG — so the payload is just the shape and the decoder regenerates
// identical planes.
func (s *SimHash) MarshalBinary() ([]byte, error) {
	w := core.NewWriter(core.TagSimHash, 1)
	w.U32(uint32(s.d))
	w.U32(uint32(len(s.planes)))
	w.U64(s.seed)
	return w.Bytes(), nil
}

// UnmarshalBinary restores a SimHash serialized by MarshalBinary,
// regenerating the hyperplanes from the stored seed. Shapes large
// enough to make that regeneration a memory hazard are rejected as
// corrupt.
func (s *SimHash) UnmarshalBinary(data []byte) error {
	rd, _, err := core.NewReaderVersioned(data, core.TagSimHash, 1)
	if err != nil {
		return err
	}
	d := int(rd.U32())
	bitsN := int(rd.U32())
	seed := rd.U64()
	if err := rd.Done(); err != nil {
		return err
	}
	if d < 1 || bitsN < 1 || bitsN > 64 || d*bitsN > 1<<18 {
		return fmt.Errorf("%w: simhash d=%d bits=%d", core.ErrCorrupt, d, bitsN)
	}
	*s = *NewSimHash(d, bitsN, seed)
	return nil
}
