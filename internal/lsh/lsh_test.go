package lsh

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/randx"
)

// setPair builds two sets with a target Jaccard similarity.
func setPair(jaccard float64, size int, seed uint64) ([]string, []string) {
	shared := int(jaccard * float64(size) * 2 / (1 + jaccard))
	only := size - shared
	var a, b []string
	for i := 0; i < shared; i++ {
		e := fmt.Sprintf("shared-%d-%d", seed, i)
		a = append(a, e)
		b = append(b, e)
	}
	for i := 0; i < only; i++ {
		a = append(a, fmt.Sprintf("a-%d-%d", seed, i))
		b = append(b, fmt.Sprintf("b-%d-%d", seed, i))
	}
	return a, b
}

// trueJaccard computes the exact similarity of the generated pair.
func trueJaccard(a, b []string) float64 {
	set := map[string]bool{}
	for _, e := range a {
		set[e] = true
	}
	inter := 0
	for _, e := range b {
		if set[e] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

func TestMinHashSimilarityEstimate(t *testing.T) {
	for _, target := range []float64{0.1, 0.5, 0.9} {
		a, b := setPair(target, 2000, 1)
		want := trueJaccard(a, b)
		ma := NewMinHash(512, 7)
		mb := NewMinHash(512, 7)
		for _, e := range a {
			ma.AddString(e)
		}
		for _, e := range b {
			mb.AddString(e)
		}
		got, err := ma.Similarity(mb)
		if err != nil {
			t.Fatal(err)
		}
		sigma := 1 / math.Sqrt(512)
		if math.Abs(got-want) > 5*sigma {
			t.Errorf("target %.1f: estimate %.3f vs true %.3f", target, got, want)
		}
	}
}

func TestMinHashIdenticalSets(t *testing.T) {
	a := NewMinHash(128, 2)
	b := NewMinHash(128, 2)
	for i := 0; i < 100; i++ {
		e := fmt.Sprint(i)
		a.AddString(e)
		b.AddString(e)
	}
	if s, _ := a.Similarity(b); s != 1 {
		t.Errorf("identical sets similarity %.3f", s)
	}
}

func TestMinHashMergeIsUnion(t *testing.T) {
	a := NewMinHash(256, 3)
	b := NewMinHash(256, 3)
	u := NewMinHash(256, 3)
	for i := 0; i < 500; i++ {
		e := fmt.Sprintf("a%d", i)
		a.AddString(e)
		u.AddString(e)
	}
	for i := 0; i < 500; i++ {
		e := fmt.Sprintf("b%d", i)
		b.AddString(e)
		u.AddString(e)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Signature() {
		if a.Signature()[i] != u.Signature()[i] {
			t.Fatal("merge is not the union signature")
		}
	}
	if err := a.Merge(NewMinHash(128, 3)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("merge across shapes must fail")
	}
}

func TestMinHashSerialization(t *testing.T) {
	m := NewMinHash(64, 4)
	for i := 0; i < 100; i++ {
		m.AddString(fmt.Sprint(i))
	}
	data, _ := m.MarshalBinary()
	var g MinHash
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if s, _ := g.Similarity(m); s != 1 {
		t.Error("round trip changed signature")
	}
}

func TestIndexRecallCurve(t *testing.T) {
	// E11: similar pairs must be retrieved with high probability,
	// dissimilar pairs rarely — matching the analytic S-curve shape.
	const bands, rows = 32, 4
	ix := NewIndex(bands, rows)
	// Index one element of each pair; query with the other.
	type probe struct {
		id  string
		sim float64
		sig *MinHash
	}
	var probes []probe
	for i, target := range []float64{0.9, 0.8, 0.3, 0.1} {
		for rep := 0; rep < 20; rep++ {
			seed := uint64(i*100 + rep)
			a, b := setPair(target, 500, seed)
			ma := NewMinHash(bands*rows, 42)
			mb := NewMinHash(bands*rows, 42)
			for _, e := range a {
				ma.AddString(e)
			}
			for _, e := range b {
				mb.AddString(e)
			}
			id := fmt.Sprintf("item-%d-%d", i, rep)
			if err := ix.Add(id, ma); err != nil {
				t.Fatal(err)
			}
			probes = append(probes, probe{id, trueJaccard(a, b), mb})
		}
	}
	recallHigh, totalHigh := 0, 0
	candLow, totalLow := 0, 0
	for _, p := range probes {
		cands := ix.Candidates(p.sig)
		found := false
		for _, c := range cands {
			if c == p.id {
				found = true
				break
			}
		}
		if p.sim >= 0.75 {
			totalHigh++
			if found {
				recallHigh++
			}
		}
		if p.sim <= 0.15 {
			totalLow++
			if found {
				candLow++
			}
		}
	}
	if totalHigh == 0 || totalLow == 0 {
		t.Fatal("probe construction broken")
	}
	if float64(recallHigh)/float64(totalHigh) < 0.9 {
		t.Errorf("high-similarity recall %d/%d too low", recallHigh, totalHigh)
	}
	if float64(candLow)/float64(totalLow) > 0.3 {
		t.Errorf("low-similarity candidate rate %d/%d too high", candLow, totalLow)
	}
}

func TestIndexQueryVerifies(t *testing.T) {
	ix := NewIndex(16, 4)
	a, b := setPair(0.85, 400, 9)
	ma := NewMinHash(64, 5)
	mb := NewMinHash(64, 5)
	for _, e := range a {
		ma.AddString(e)
	}
	for _, e := range b {
		mb.AddString(e)
	}
	if err := ix.Add("target", ma); err != nil {
		t.Fatal(err)
	}
	got := ix.Query(mb, 0.5)
	if len(got) != 1 || got[0] != "target" {
		t.Errorf("Query = %v", got)
	}
	if got := ix.Query(mb, 0.99); len(got) != 0 {
		t.Errorf("Query with impossible threshold returned %v", got)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Add("bad", NewMinHash(32, 5)); !errors.Is(err, core.ErrIncompatible) {
		t.Error("wrong-length signature accepted")
	}
}

func TestIndexSCurve(t *testing.T) {
	ix := NewIndex(20, 5)
	if p := ix.CandidateProbability(0); p != 0 {
		t.Errorf("P(0) = %v", p)
	}
	if p := ix.CandidateProbability(1); p != 1 {
		t.Errorf("P(1) = %v", p)
	}
	if ix.CandidateProbability(0.9) <= ix.CandidateProbability(0.3) {
		t.Error("S-curve not increasing")
	}
}

func TestSimHashCosineEstimate(t *testing.T) {
	const d, bitsN = 100, 64
	sh := NewSimHash(d, bitsN, 11)
	rng := randx.New(12)
	// Build vector pairs at controlled angles.
	for _, cosTarget := range []float64{0.95, 0.5, 0.0} {
		var meanEst float64
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			a := make([]float64, d)
			noise := make([]float64, d)
			for i := range a {
				a[i] = rng.Normal()
				noise[i] = rng.Normal()
			}
			// b = cos·a/|a| + sin·n⊥/|n⊥| built via Gram–Schmidt.
			proj := dot(noise, a) / dot(a, a)
			for i := range noise {
				noise[i] -= proj * a[i]
			}
			na, nn := math.Sqrt(dot(a, a)), math.Sqrt(dot(noise, noise))
			sinTarget := math.Sqrt(1 - cosTarget*cosTarget)
			b := make([]float64, d)
			for i := range b {
				b[i] = cosTarget*a[i]/na + sinTarget*noise[i]/nn
			}
			meanEst += sh.Similarity(sh.Hash(a), sh.Hash(b))
		}
		meanEst /= trials
		if math.Abs(meanEst-cosTarget) > 0.12 {
			t.Errorf("cos target %.2f: mean estimate %.3f", cosTarget, meanEst)
		}
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestSimHashIdentical(t *testing.T) {
	sh := NewSimHash(10, 32, 1)
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if sh.Similarity(sh.Hash(x), sh.Hash(x)) != 1 {
		t.Error("identical vectors must have similarity 1")
	}
}

func TestEuclideanLSHCloserCollidesMore(t *testing.T) {
	const d = 20
	e := NewEuclideanLSH(d, 1, 4.0, 13)
	rng := randx.New(14)
	collisions := func(dist float64) int {
		hits := 0
		const trials = 2000
		for trial := 0; trial < trials; trial++ {
			a := make([]float64, d)
			b := make([]float64, d)
			dir := make([]float64, d)
			var norm float64
			for i := range a {
				a[i] = rng.Normal() * 10
				dir[i] = rng.Normal()
				norm += dir[i] * dir[i]
			}
			norm = math.Sqrt(norm)
			for i := range b {
				b[i] = a[i] + dir[i]/norm*dist
			}
			if e.Hash(a) == e.Hash(b) {
				hits++
			}
		}
		return hits
	}
	near, far := collisions(0.5), collisions(8.0)
	if near <= far {
		t.Errorf("near collisions %d not more than far %d", near, far)
	}
	if near < 1200 {
		t.Errorf("near pairs collide too rarely: %d/2000", near)
	}
}

func TestEuclideanCollisionProbabilityFormula(t *testing.T) {
	e := NewEuclideanLSH(2, 1, 4.0, 1)
	if p := e.CollisionProbability(0); p != 1 {
		t.Errorf("P(0) = %v", p)
	}
	if e.CollisionProbability(1) <= e.CollisionProbability(10) {
		t.Error("collision probability must decrease with distance")
	}
	for _, c := range []float64{0.5, 2, 8} {
		p := e.CollisionProbability(c)
		if p < 0 || p > 1 {
			t.Errorf("P(%v) = %v out of range", c, p)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"minhash":   func() { NewMinHash(0, 1) },
		"index":     func() { NewIndex(0, 4) },
		"simhash":   func() { NewSimHash(5, 65, 1) },
		"euclidean": func() { NewEuclideanLSH(5, 2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMinHashAdd(b *testing.B) {
	m := NewMinHash(128, 1)
	item := []byte("benchmark-element")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(item)
	}
}

func BenchmarkSimHash(b *testing.B) {
	sh := NewSimHash(128, 64, 1)
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Hash(x)
	}
}
