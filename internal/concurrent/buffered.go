package concurrent

// Local-buffer/global-propagation sketches in the architecture of
// "Fast Concurrent Data Sketches" (Rinberg et al., PPoPP 2020 / TOPC
// 2022), the design the paper's DataSketches discussion points at for
// multi-writer ingest. The atomic wrappers in this package keep every
// writer on the same shared memory, so under many cores the hot cache
// lines (and the shared n counter) ping-pong between sockets and
// throughput flattens. Here writers never touch shared sketch state:
//
//   - Each writer owns a bounded local buffer (a writer handle,
//     obtained via Writer()): updates append pre-hashed items to
//     private memory — pure L1 traffic, no synchronization.
//   - A filled buffer is handed to a background propagator goroutine
//     over a channel; the propagator — the only goroutine that writes
//     the global sketch — folds buffers in and recycles them to their
//     writer. The writer's two buffers cycling through this handoff
//     are the backpressure that bounds unpropagated state.
//   - Readers are wait-free with relaxed consistency: they see the
//     global sketch (atomic counter/word loads, or a published
//     estimate for HLL) and may miss items still sitting in local
//     buffers. The staleness is quantified: at most
//     writers × WriterBuffer items are buffered-but-unpropagated at
//     any instant (each writer holds two flush halves of
//     WriterBuffer/2 items each).
//
// Because propagation replays the exact per-item updates the plain
// sketch would have applied — and Count-Min addition, HLL register
// max, and Bloom bit OR are all commutative — a buffered sketch that
// has been flushed and synced is byte-identical to serial ingest of
// the same multiset (property-tested in buffered_test.go).
//
// Lifecycle: Close stops the propagator. Items still buffered in
// writer handles at Close are dropped (flush first for an exact
// drain); writers that race a Close never block — every channel wait
// has a quit escape.

import (
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/frequency"
	"repro/internal/hashx"
)

// DefaultWriterBuffer is the per-writer local capacity b (in items)
// used by the plain constructors: two flush halves of b/2. Larger
// buffers amortize handoff further but widen the staleness window;
// 256 keeps a writer's working set inside L1 while making the channel
// round-trip cost ~1/128 of an update.
const DefaultWriterBuffer = 256

// bufferedServing is the process-wide serving-mode switch consulted by
// the registry: when set, families with a buffered variant serve it
// instead of the atomic one. cmd/sketchd sets it from
// -concurrent-ingest before recovery or traffic.
var bufferedServing atomic.Bool

// SetBufferedServing selects (true) or deselects (false) the
// local-buffer/global-propagation serving variants for new server
// entries. Set before creating or recovering entries; flipping it
// midway only affects sketches created afterwards.
func SetBufferedServing(on bool) { bufferedServing.Store(on) }

// BufferedServing reports whether buffered serving variants are
// selected.
func BufferedServing() bool { return bufferedServing.Load() }

// pair is one buffered update: the pre-hashed item plus its companion
// word (Count-Min weight, Bloom h2; unused for HLL).
type pair struct{ a, b uint64 }

// flushBuf is one flush half: a bounded pair slice plus the recycle
// channel of the writer that owns it.
type flushBuf struct {
	pairs []pair
	home  chan *flushBuf
}

// propagator runs the single goroutine that owns the global sketch.
// apply folds one buffer of updates in; publish (optional) refreshes
// derived read state after a drain round — rounds coalesce the backlog
// so its cost amortizes over many buffers under load.
type propagator struct {
	flushq     chan *flushBuf
	ctl        chan func()
	quit       chan struct{}
	done       chan struct{}
	closed     atomic.Bool
	writers    atomic.Int64
	propagated atomic.Uint64
	half       int
	apply      func([]pair)
	publish    func()

	// Publish throttling (propagator-goroutine state, no locking): a
	// costly publish — the HLL estimate recomputation scans every
	// register — runs at most once per publishInterval under load, with
	// a dirty flag plus one-shot timer guaranteeing a final publish
	// after the last handoff. Barriers (ctl ops, quit) always publish,
	// so Sync keeps its exactness contract.
	lastPub  time.Time
	pubDirty bool
	pubTimer *time.Timer
	pubC     <-chan time.Time
}

// drainRound bounds how many backlogged buffers one round coalesces
// before publishing, so read staleness stays bounded in time as well
// as items even under a saturating writer fleet.
const drainRound = 64

// publishInterval caps how often the throttled publish path recomputes
// derived read state. 1ms keeps estimate staleness imperceptible while
// amortizing a ~50µs HLL register scan over thousands of updates.
const publishInterval = time.Millisecond

func newPropagator(writerBuf int, apply func([]pair), publish func()) *propagator {
	if writerBuf < 2 {
		writerBuf = 2
	}
	p := &propagator{
		flushq:  make(chan *flushBuf, 4*drainRound),
		ctl:     make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		half:    writerBuf / 2,
		apply:   apply,
		publish: publish,
	}
	go p.loop()
	return p
}

func (p *propagator) loop() {
	defer close(p.done)
	for {
		select {
		case buf := <-p.flushq:
			p.consume(buf)
			p.drainBacklog(drainRound - 1)
			p.maybePublish()
		case <-p.pubC:
			p.pubC = nil // keep pubTimer for Reset-reuse: one alloc per propagator
			if p.pubDirty {
				p.forcePublish()
			}
		case op := <-p.ctl:
			// Barrier semantics: everything handed off before the
			// caller blocked on ctl is in flushq now; drain it all,
			// refresh read state, run the op, then refresh again —
			// the op itself may mutate the global (Merge on a
			// quiescent sketch sees no later flush to publish for it).
			p.drainBacklog(-1)
			p.forcePublish()
			op()
			p.forcePublish()
		case <-p.quit:
			p.drainBacklog(-1)
			p.forcePublish()
			if p.pubTimer != nil {
				p.pubTimer.Stop()
			}
			return
		}
	}
}

// maybePublish refreshes derived read state unless a publish ran
// within publishInterval; a skipped publish arms the one-shot timer so
// the state still converges after the last handoff.
func (p *propagator) maybePublish() {
	if p.publish == nil {
		return
	}
	if time.Since(p.lastPub) >= publishInterval {
		p.forcePublish()
		return
	}
	p.pubDirty = true
	if p.pubC == nil {
		if p.pubTimer == nil {
			p.pubTimer = time.NewTimer(publishInterval)
		} else {
			p.pubTimer.Reset(publishInterval)
		}
		p.pubC = p.pubTimer.C
	}
}

func (p *propagator) forcePublish() {
	if p.publish == nil {
		return
	}
	p.publish()
	p.lastPub = time.Now()
	p.pubDirty = false
}

// drainBacklog consumes up to max queued buffers (all of them when max
// is negative) without blocking.
func (p *propagator) drainBacklog(max int) {
	for n := 0; max < 0 || n < max; n++ {
		select {
		case buf := <-p.flushq:
			p.consume(buf)
		default:
			return
		}
	}
}

func (p *propagator) consume(buf *flushBuf) {
	p.apply(buf.pairs)
	p.propagated.Add(uint64(len(buf.pairs)))
	buf.pairs = buf.pairs[:0]
	select {
	case buf.home <- buf:
	default: // owner replaced it after racing a Close; let it be collected
	}
}

// do runs op on the propagator goroutine after a full backlog drain
// and publish, blocking until it completes. Returns false if the
// propagator has been closed (op did not run).
func (p *propagator) do(op func()) bool {
	ran := make(chan struct{})
	select {
	case p.ctl <- func() { op(); close(ran) }:
		<-ran
		return true
	case <-p.quit:
		return false
	}
}

// close stops the propagator after a final drain and waits for it to
// exit; the wait gives callers a happens-before edge to every write
// the propagator made to the global sketch.
func (p *propagator) close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.quit)
	}
	<-p.done
}

// bufWriter is the family-independent half of a writer handle: the
// active flush half plus the recycle channel its two halves cycle
// through.
type bufWriter struct {
	p    *propagator
	buf  *flushBuf
	home chan *flushBuf
}

func (p *propagator) newWriter() bufWriter {
	home := make(chan *flushBuf, 2)
	home <- &flushBuf{pairs: make([]pair, 0, p.half), home: home}
	p.writers.Add(1)
	return bufWriter{
		p:    p,
		buf:  &flushBuf{pairs: make([]pair, 0, p.half), home: home},
		home: home,
	}
}

// put appends one update to the local buffer, handing the buffer off
// when it fills. The hot path is an L1 store plus a length compare —
// no atomics, no shared lines, no allocation.
func (w *bufWriter) put(a, b uint64) {
	buf := w.buf
	buf.pairs = append(buf.pairs, pair{a, b})
	if len(buf.pairs) == cap(buf.pairs) {
		w.handoff()
	}
}

// handoff pushes the active buffer to the propagator and takes the
// recycled one back. The blocking receive is the backpressure bounding
// a writer's unpropagated items to its two flush halves; both waits
// escape through quit so a writer racing a Close never blocks forever
// (its buffered items are dropped, the documented Close contract).
func (w *bufWriter) handoff() {
	p := w.p
	if p.closed.Load() {
		w.buf.pairs = w.buf.pairs[:0]
		return
	}
	select {
	case p.flushq <- w.buf:
	case <-p.quit:
		w.buf.pairs = w.buf.pairs[:0]
		return
	}
	select {
	case w.buf = <-w.home:
	case <-p.quit:
		select {
		case w.buf = <-w.home:
		default:
			w.buf = &flushBuf{pairs: make([]pair, 0, p.half), home: w.home}
		}
	}
}

// flush hands off a partially filled buffer so its items become
// visible on the next propagation round.
func (w *bufWriter) flush() {
	if len(w.buf.pairs) > 0 {
		w.handoff()
	}
}

// poolSize is the serving-path writer pool capacity: enough handles
// that GOMAXPROCS concurrent request goroutines each get their own,
// small enough that the staleness bound writers × WriterBuffer stays
// tight.
func poolSize() int { return runtime.GOMAXPROCS(0) }

// ---------------------------------------------------------------------
// BufferedCountMin

// BufferedCountMin is a Count-Min sketch with local-buffer/global-
// propagation ingest. Writers obtain handles (Writer for owned use,
// PooledWriter for request-scoped serving use) and append pre-hashed
// (hash, weight) pairs to private buffers; the propagator folds filled
// buffers into an AtomicCountMin global it alone writes, so the
// atomic adds never contend. Reads (Estimate, N) are wait-free atomic
// loads against the global and may lag ingest by at most
// BufferedWriters() × WriterBuffer() items.
//
// Addressing matches derived-mode frequency.CountMin exactly (equal
// width, depth, seed ⇒ identical buckets), so Merge and Snapshot
// exchanges with plain sketches stay exact and flushed+synced state is
// byte-identical to serial ingest.
type BufferedCountMin struct {
	global    *AtomicCountMin
	prop      *propagator
	writerBuf int
	seed      uint64
	pool      chan *BufferedCountMinWriter
}

// NewBufferedCountMin creates a buffered Count-Min sketch with the
// default per-writer buffer.
func NewBufferedCountMin(width, depth int, seed uint64) *BufferedCountMin {
	return NewBufferedCountMinOpts(width, depth, seed, false, DefaultWriterBuffer)
}

// NewBufferedCountMinFused creates a buffered Count-Min whose global
// sketch uses the fused cache-line layout.
func NewBufferedCountMinFused(width, depth int, seed uint64) *BufferedCountMin {
	return NewBufferedCountMinOpts(width, depth, seed, true, DefaultWriterBuffer)
}

// NewBufferedCountMinOpts creates a buffered Count-Min with an
// explicit layout and per-writer buffer capacity (rounded down to an
// even count, minimum 2).
func NewBufferedCountMinOpts(width, depth int, seed uint64, fused bool, writerBuf int) *BufferedCountMin {
	var global *AtomicCountMin
	if fused {
		global = NewAtomicCountMinFused(width, depth, seed)
	} else {
		global = NewAtomicCountMin(width, depth, seed)
	}
	c := &BufferedCountMin{
		global:    global,
		writerBuf: writerBuf &^ 1,
		seed:      seed,
		pool:      make(chan *BufferedCountMinWriter, poolSize()),
	}
	if c.writerBuf < 2 {
		c.writerBuf = 2
	}
	c.prop = newPropagator(c.writerBuf, func(pairs []pair) {
		for _, pr := range pairs {
			global.AddHash(pr.a, pr.b)
		}
	}, nil)
	return c
}

// BufferedCountMinWriter is one writer's bounded local buffer. Handles
// are not safe for concurrent use; give each goroutine its own.
type BufferedCountMinWriter struct {
	w    bufWriter
	seed uint64
}

// Writer registers and returns a new writer handle.
func (c *BufferedCountMin) Writer() *BufferedCountMinWriter {
	return &BufferedCountMinWriter{w: c.prop.newWriter(), seed: c.seed}
}

// PooledWriter checks a handle out of the serving pool (creating one
// if all are in use); pair with ReleaseWriter. The pool is how
// request-scoped ingest reuses local buffers across batches without a
// handle per request.
func (c *BufferedCountMin) PooledWriter() *BufferedCountMinWriter {
	select {
	case w := <-c.pool:
		return w
	default:
		return c.Writer()
	}
}

// ReleaseWriter returns a pooled handle, flushing and unregistering it
// if the pool is already full.
func (c *BufferedCountMin) ReleaseWriter(w *BufferedCountMinWriter) {
	select {
	case c.pool <- w:
	default:
		w.Flush()
		c.prop.writers.Add(-1)
	}
}

// Add buffers weight occurrences of a byte-slice item; same
// item→bucket map as derived-mode frequency.CountMin.
func (w *BufferedCountMinWriter) Add(item []byte, weight uint64) {
	w.AddHash(hashx.XXHash64(item, w.seed), weight)
}

// AddString buffers a string item without copying or allocating.
func (w *BufferedCountMinWriter) AddString(item string, weight uint64) {
	w.AddHash(hashx.XXHash64String(item, w.seed), weight)
}

// AddUint64 buffers an integer item.
func (w *BufferedCountMinWriter) AddUint64(item, weight uint64) {
	w.AddHash(hashx.HashUint64(item, w.seed), weight)
}

// AddHash buffers a pre-hashed update: one L1 append, handed off every
// WriterBuffer/2 items.
func (w *BufferedCountMinWriter) AddHash(h, weight uint64) { w.w.put(h, weight) }

// Flush hands off the partial buffer so its items reach the global
// sketch on the next propagation round.
func (w *BufferedCountMinWriter) Flush() { w.w.flush() }

// Estimate returns the wait-free point estimate for a byte-slice item,
// read from the global sketch (never undercounts propagated updates;
// may miss still-buffered ones).
func (c *BufferedCountMin) Estimate(item []byte) uint64 { return c.global.Estimate(item) }

// EstimateUint64 returns the wait-free point estimate for an integer
// item.
func (c *BufferedCountMin) EstimateUint64(item uint64) uint64 { return c.global.EstimateUint64(item) }

// N returns the total propagated weight.
func (c *BufferedCountMin) N() uint64 { return c.global.N() }

// Width returns the bucket count per row.
func (c *BufferedCountMin) Width() int { return c.global.Width() }

// Depth returns the number of rows.
func (c *BufferedCountMin) Depth() int { return c.global.Depth() }

// Seed returns the hash seed.
func (c *BufferedCountMin) Seed() uint64 { return c.seed }

// Fused reports whether the global uses the fused cache-line layout.
func (c *BufferedCountMin) Fused() bool { return c.global.Fused() }

// SizeBytes returns the global counter storage size.
func (c *BufferedCountMin) SizeBytes() int { return c.global.SizeBytes() }

// WriterBuffer returns the per-writer local capacity b.
func (c *BufferedCountMin) WriterBuffer() int { return c.writerBuf }

// BufferedWriters returns the number of live writer handles.
func (c *BufferedCountMin) BufferedWriters() int { return int(c.prop.writers.Load()) }

// StalenessBound returns the maximum number of ingested items a read
// can currently miss: writers × per-writer buffer.
func (c *BufferedCountMin) StalenessBound() int { return c.BufferedWriters() * c.writerBuf }

// Propagated returns the number of updates folded into the global
// sketch — the read-visible epoch.
func (c *BufferedCountMin) Propagated() uint64 { return c.prop.propagated.Load() }

// Sync flushes every idle pooled writer and waits for the propagator
// to apply all buffers handed off before the call. Handles checked out
// by concurrent goroutines (or owned Writer handles) are their
// holders' responsibility; the server's per-sketch WAL lock guarantees
// none are during snapshot capture.
func (c *BufferedCountMin) Sync() {
	var ws []*BufferedCountMinWriter
	for {
		select {
		case w := <-c.pool:
			w.Flush()
			ws = append(ws, w)
			continue
		default:
		}
		break
	}
	c.prop.do(func() {})
	for _, w := range ws {
		c.ReleaseWriter(w)
	}
}

// Merge atomically folds a hash-compatible plain CountMin into the
// global sketch; safe to call concurrently with buffered ingest.
func (c *BufferedCountMin) Merge(other *frequency.CountMin) error { return c.global.Merge(other) }

// Snapshot syncs and copies the global counters into a plain CountMin.
func (c *BufferedCountMin) Snapshot() *frequency.CountMin {
	c.Sync()
	return c.global.Snapshot()
}

// MarshalBinary serializes a synced snapshot in the standard Count-Min
// envelope.
func (c *BufferedCountMin) MarshalBinary() ([]byte, error) {
	c.Sync()
	return c.global.MarshalBinary()
}

// Close stops the propagator; buffered-but-unflushed writer items are
// dropped. Do not ingest after Close.
func (c *BufferedCountMin) Close() { c.prop.close() }

// ---------------------------------------------------------------------
// BufferedHLL

// BufferedHLL is a HyperLogLog with local-buffer/global-propagation
// ingest. The propagator owns a plain cardinality.HLL and republishes
// the estimate (an atomic float) after every propagation round, so
// Estimate is a wait-free single load — cheaper than even the sharded
// HLL's epoch-checked merge cache — at the price of bounded staleness
// (≤ BufferedWriters() × WriterBuffer() items plus the current drain
// round).
type BufferedHLL struct {
	global    *cardinality.HLL // owned by the propagator goroutine
	prop      *propagator
	est       atomic.Uint64 // Float64bits of the published estimate
	p         uint8
	seed      uint64
	writerBuf int
	pool      chan *BufferedHLLWriter
}

// NewBufferedHLL creates a buffered HLL with dense precision p and the
// default per-writer buffer.
func NewBufferedHLL(p uint8, seed uint64) *BufferedHLL {
	return NewBufferedHLLBuf(p, seed, DefaultWriterBuffer)
}

// NewBufferedHLLBuf creates a buffered HLL with an explicit per-writer
// buffer capacity.
func NewBufferedHLLBuf(p uint8, seed uint64, writerBuf int) *BufferedHLL {
	global := cardinality.NewHLL(p, seed)
	h := &BufferedHLL{
		global:    global,
		p:         p,
		seed:      seed,
		writerBuf: writerBuf &^ 1,
		pool:      make(chan *BufferedHLLWriter, poolSize()),
	}
	if h.writerBuf < 2 {
		h.writerBuf = 2
	}
	h.prop = newPropagator(h.writerBuf, func(pairs []pair) {
		for _, pr := range pairs {
			global.AddHash(pr.a)
		}
	}, func() {
		h.est.Store(math.Float64bits(global.Estimate()))
	})
	return h
}

// BufferedHLLWriter is one writer's bounded local buffer; not safe for
// concurrent use.
type BufferedHLLWriter struct {
	w    bufWriter
	seed uint64
}

// Writer registers and returns a new writer handle.
func (h *BufferedHLL) Writer() *BufferedHLLWriter {
	return &BufferedHLLWriter{w: h.prop.newWriter(), seed: h.seed}
}

// PooledWriter checks a handle out of the serving pool; pair with
// ReleaseWriter.
func (h *BufferedHLL) PooledWriter() *BufferedHLLWriter {
	select {
	case w := <-h.pool:
		return w
	default:
		return h.Writer()
	}
}

// ReleaseWriter returns a pooled handle, flushing and unregistering it
// if the pool is full.
func (h *BufferedHLL) ReleaseWriter(w *BufferedHLLWriter) {
	select {
	case h.pool <- w:
	default:
		w.Flush()
		h.prop.writers.Add(-1)
	}
}

// Add buffers a byte-slice item.
func (w *BufferedHLLWriter) Add(item []byte) {
	h1, _ := hashx.Murmur3_128(item, w.seed)
	w.AddHash(h1)
}

// AddString buffers a string item without copying or allocating.
func (w *BufferedHLLWriter) AddString(item string) {
	h1, _ := hashx.Murmur3_128String(item, w.seed)
	w.AddHash(h1)
}

// AddUint64 buffers an integer item.
func (w *BufferedHLLWriter) AddUint64(v uint64) { w.AddHash(hashx.HashUint64(v, w.seed)) }

// AddHash buffers a pre-hashed item.
func (w *BufferedHLLWriter) AddHash(x uint64) { w.w.put(x, 0) }

// AddBatch buffers many byte-slice items; items are hashed here (not
// retained), so the slices may alias pooled request buffers.
func (w *BufferedHLLWriter) AddBatch(items [][]byte) {
	for _, item := range items {
		w.Add(item)
	}
}

// Flush hands off the partial buffer.
func (w *BufferedHLLWriter) Flush() { w.w.flush() }

// Estimate returns the published cardinality estimate: one atomic
// load, wait-free, stale by at most the unpropagated buffer contents.
func (h *BufferedHLL) Estimate() float64 { return math.Float64frombits(h.est.Load()) }

// P returns the dense precision.
func (h *BufferedHLL) P() uint8 { return h.p }

// Seed returns the hash seed.
func (h *BufferedHLL) Seed() uint64 { return h.seed }

// SizeBytes returns the global register storage size.
func (h *BufferedHLL) SizeBytes() int { return h.global.SizeBytes() }

// WriterBuffer returns the per-writer local capacity.
func (h *BufferedHLL) WriterBuffer() int { return h.writerBuf }

// BufferedWriters returns the number of live writer handles.
func (h *BufferedHLL) BufferedWriters() int { return int(h.prop.writers.Load()) }

// StalenessBound returns the maximum number of ingested items a read
// can currently miss.
func (h *BufferedHLL) StalenessBound() int { return h.BufferedWriters() * h.writerBuf }

// Propagated returns the number of updates folded into the global
// sketch.
func (h *BufferedHLL) Propagated() uint64 { return h.prop.propagated.Load() }

// Sync flushes idle pooled writers and waits for propagation; see
// BufferedCountMin.Sync for the contract.
func (h *BufferedHLL) Sync() {
	var ws []*BufferedHLLWriter
	for {
		select {
		case w := <-h.pool:
			w.Flush()
			ws = append(ws, w)
			continue
		default:
		}
		break
	}
	h.prop.do(func() {})
	for _, w := range ws {
		h.ReleaseWriter(w)
	}
}

// onGlobal runs op against the propagator-owned global sketch: on the
// propagator goroutine while it lives, directly after it has exited
// (the done-channel wait establishes the happens-before edge).
func (h *BufferedHLL) onGlobal(op func()) {
	if !h.prop.do(op) {
		<-h.prop.done
		op()
	}
}

// Merge folds a peer HLL (same p and seed) into the global sketch via
// the propagator, so it serializes with buffered propagation.
func (h *BufferedHLL) Merge(other *cardinality.HLL) error {
	var err error
	h.onGlobal(func() { err = h.global.Merge(other) })
	return err
}

// Snapshot syncs and returns a private copy of the global sketch.
func (h *BufferedHLL) Snapshot() *cardinality.HLL {
	h.Sync()
	var clone *cardinality.HLL
	h.onGlobal(func() { clone = h.global.Clone() })
	return clone
}

// MarshalBinary serializes a synced snapshot in the standard HLL
// envelope.
func (h *BufferedHLL) MarshalBinary() ([]byte, error) {
	return h.Snapshot().MarshalBinary()
}

// Close stops the propagator; unflushed writer items are dropped.
func (h *BufferedHLL) Close() { h.prop.close() }

// ---------------------------------------------------------------------
// BufferedBlockedBloom

// BufferedBlockedBloom is a blocked Bloom filter with local-buffer/
// global-propagation ingest: writers buffer (h1, h2) pairs; the
// propagator CAS-ORs them into an AtomicBlockedBloom global it alone
// writes (so the CAS loops never retry under writer contention).
// Contains is wait-free against the global: an item is always found
// once its buffer has propagated, and the staleness is bounded by
// BufferedWriters() × WriterBuffer() items.
type BufferedBlockedBloom struct {
	global    *AtomicBlockedBloom
	prop      *propagator
	seed      uint64
	writerBuf int
	pool      chan *BufferedBlockedBloomWriter
}

// NewBufferedBlockedBloom creates a buffered blocked filter with at
// least m bits (rounded up to whole 512-bit blocks), k probes per
// item, and the default per-writer buffer.
func NewBufferedBlockedBloom(m uint64, k int, seed uint64) *BufferedBlockedBloom {
	return NewBufferedBlockedBloomBuf(m, k, seed, DefaultWriterBuffer)
}

// NewBufferedBlockedBloomBuf creates a buffered blocked filter with an
// explicit per-writer buffer capacity.
func NewBufferedBlockedBloomBuf(m uint64, k int, seed uint64, writerBuf int) *BufferedBlockedBloom {
	global := NewAtomicBlockedBloom(m, k, seed)
	f := &BufferedBlockedBloom{
		global:    global,
		seed:      seed,
		writerBuf: writerBuf &^ 1,
		pool:      make(chan *BufferedBlockedBloomWriter, poolSize()),
	}
	if f.writerBuf < 2 {
		f.writerBuf = 2
	}
	f.prop = newPropagator(f.writerBuf, func(pairs []pair) {
		for _, pr := range pairs {
			global.AddHash(pr.a, pr.b)
		}
	}, nil)
	return f
}

// BufferedBlockedBloomWriter is one writer's bounded local buffer; not
// safe for concurrent use.
type BufferedBlockedBloomWriter struct {
	w    bufWriter
	seed uint64
}

// Writer registers and returns a new writer handle.
func (f *BufferedBlockedBloom) Writer() *BufferedBlockedBloomWriter {
	return &BufferedBlockedBloomWriter{w: f.prop.newWriter(), seed: f.seed}
}

// PooledWriter checks a handle out of the serving pool; pair with
// ReleaseWriter.
func (f *BufferedBlockedBloom) PooledWriter() *BufferedBlockedBloomWriter {
	select {
	case w := <-f.pool:
		return w
	default:
		return f.Writer()
	}
}

// ReleaseWriter returns a pooled handle, flushing and unregistering it
// if the pool is full.
func (f *BufferedBlockedBloom) ReleaseWriter(w *BufferedBlockedBloomWriter) {
	select {
	case f.pool <- w:
	default:
		w.Flush()
		f.prop.writers.Add(-1)
	}
}

// Add buffers a byte-slice item.
func (w *BufferedBlockedBloomWriter) Add(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, w.seed)
	w.AddHash(h1, h2)
}

// AddString buffers a string item without copying or allocating.
func (w *BufferedBlockedBloomWriter) AddString(item string) {
	h1, h2 := hashx.Murmur3_128String(item, w.seed)
	w.AddHash(h1, h2)
}

// AddHash buffers a pre-hashed item.
func (w *BufferedBlockedBloomWriter) AddHash(h1, h2 uint64) { w.w.put(h1, h2) }

// AddBatch buffers many byte-slice items; the slices are hashed here,
// not retained.
func (w *BufferedBlockedBloomWriter) AddBatch(items [][]byte) {
	for _, item := range items {
		w.Add(item)
	}
}

// Flush hands off the partial buffer.
func (w *BufferedBlockedBloomWriter) Flush() { w.w.flush() }

// Contains reports whether the item may be in the set — wait-free, and
// exact (no false negatives) for items whose buffers have propagated.
func (f *BufferedBlockedBloom) Contains(item []byte) bool { return f.global.Contains(item) }

// ContainsString reports membership for a string item.
func (f *BufferedBlockedBloom) ContainsString(item string) bool {
	return f.global.ContainsString(item)
}

// ContainsHash answers a membership query from a pre-computed hash.
func (f *BufferedBlockedBloom) ContainsHash(h1, h2 uint64) bool {
	return f.global.ContainsHash(h1, h2)
}

// N returns the number of propagated insertions.
func (f *BufferedBlockedBloom) N() uint64 { return f.global.N() }

// M returns the number of bits.
func (f *BufferedBlockedBloom) M() uint64 { return f.global.M() }

// K returns the number of bit probes per item.
func (f *BufferedBlockedBloom) K() int { return f.global.K() }

// Seed returns the hash seed.
func (f *BufferedBlockedBloom) Seed() uint64 { return f.seed }

// SizeBytes returns the bit-array storage size.
func (f *BufferedBlockedBloom) SizeBytes() int { return f.global.SizeBytes() }

// WriterBuffer returns the per-writer local capacity.
func (f *BufferedBlockedBloom) WriterBuffer() int { return f.writerBuf }

// BufferedWriters returns the number of live writer handles.
func (f *BufferedBlockedBloom) BufferedWriters() int { return int(f.prop.writers.Load()) }

// StalenessBound returns the maximum number of ingested items a read
// can currently miss.
func (f *BufferedBlockedBloom) StalenessBound() int { return f.BufferedWriters() * f.writerBuf }

// Propagated returns the number of updates folded into the global
// filter.
func (f *BufferedBlockedBloom) Propagated() uint64 { return f.prop.propagated.Load() }

// Sync flushes idle pooled writers and waits for propagation; see
// BufferedCountMin.Sync for the contract.
func (f *BufferedBlockedBloom) Sync() {
	var ws []*BufferedBlockedBloomWriter
	for {
		select {
		case w := <-f.pool:
			w.Flush()
			ws = append(ws, w)
			continue
		default:
		}
		break
	}
	f.prop.do(func() {})
	for _, w := range ws {
		f.ReleaseWriter(w)
	}
}

// Merge atomically ORs a hash-compatible plain blocked filter into the
// global; safe concurrently with buffered ingest.
func (f *BufferedBlockedBloom) Merge(other *bloom.BlockedFilter) error {
	return f.global.Merge(other)
}

// Snapshot syncs and copies the bits into a plain BlockedFilter.
func (f *BufferedBlockedBloom) Snapshot() *bloom.BlockedFilter {
	f.Sync()
	return f.global.Snapshot()
}

// MarshalBinary serializes a synced snapshot in the standard
// blocked-Bloom envelope.
func (f *BufferedBlockedBloom) MarshalBinary() ([]byte, error) {
	f.Sync()
	return f.global.MarshalBinary()
}

// Close stops the propagator; unflushed writer items are dropped.
func (f *BufferedBlockedBloom) Close() { f.prop.close() }
