package concurrent

// Batch equivalence through the concurrent wrappers, exercised from
// many goroutines so the CI race job also proves the new batch entry
// points are data-race-free. Counter updates are commutative, so the
// final state must exactly match a single-threaded reference fed the
// same inputs.

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/frequency"
	"repro/internal/hashx"
)

func prehashed(n int, seed uint64) []uint64 {
	hs := make([]uint64, n)
	for i := range hs {
		hs[i] = hashx.HashUint64(uint64(i), seed)
	}
	return hs
}

func TestAtomicCountMinAddHashBatchConcurrent(t *testing.T) {
	const goroutines = 8
	hs := prehashed(4096, 3)
	acm := NewAtomicCountMin(1024, 4, 3)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(chunk []uint64) {
			defer wg.Done()
			acm.AddHashBatch(chunk)
		}(hs[g*len(hs)/goroutines : (g+1)*len(hs)/goroutines])
	}
	wg.Wait()

	ref := frequency.NewCountMin(1024, 4, 3)
	ref.AddHashBatch(hs)
	a, err := acm.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("concurrent AddHashBatch state differs from single-threaded CountMin fed the same hashes")
	}
}

func TestShardedHLLAddHashBatchConcurrent(t *testing.T) {
	const goroutines = 8
	hs := prehashed(8192, 5)
	s := NewShardedHLL(4, 12, 5)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(chunk []uint64) {
			defer wg.Done()
			s.Handle().AddHashBatch(chunk)
		}(hs[g*len(hs)/goroutines : (g+1)*len(hs)/goroutines])
	}
	wg.Wait()

	ref := cardinality.NewHLL(12, 5)
	ref.AddHashBatch(hs)
	a, err := s.Snapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("sharded AddHashBatch merged state differs from a single HLL fed the same hashes")
	}
	if got, want := s.Estimate(), ref.Estimate(); got != want {
		t.Fatalf("Estimate() = %v, want %v", got, want)
	}
}
