// Package concurrent provides thread-safe sketch wrappers in the
// spirit of the Yahoo!/Apache DataSketches "fast concurrent data
// sketches" work the paper cites (Rinberg et al., TOPC 2022): the
// project "emphasised the need for concurrency and mergability of
// sketches". Two designs are provided:
//
//   - ShardedHLL: per-goroutine HLL shards that are merged on read.
//     Updates are entirely uncontended (the DataSketches approach of
//     thread-local buffers), reads pay the merge.
//   - AtomicCountMin: a Count-Min sketch whose counters are updated
//     with atomic adds — wait-free updates, exact reads, no locks.
//
// Experiment E7a measures the update-throughput scaling of both
// against a mutex-guarded baseline.
package concurrent

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
	"repro/internal/hashx"
)

// ShardedHLL is a concurrent HyperLogLog: each shard is owned by the
// goroutines that hash to it (striped by a cheap counter), and reads
// merge all shards into a cached merged view. The cache is keyed by an
// epoch — the sum of per-shard write counters — so a read-heavy
// workload pays the O(m · shards) merge only after a write actually
// changed something, not on every Estimate call.
type ShardedHLL struct {
	shards []shardedHLLSlot
	p      uint8
	seed   uint64
	next   atomic.Uint64

	// cached merged view, rebuilt when the epoch moves. cacheEpoch is
	// read before the rebuild merges the shards, so writes that race
	// with a rebuild land in a later epoch and invalidate it again —
	// the cache can be stale-marked but never wrong.
	cacheMu    sync.Mutex
	cache      *cardinality.HLL
	cacheEst   float64
	cacheEpoch uint64
	cacheValid bool
}

type shardedHLLSlot struct {
	mu      sync.Mutex
	hll     *cardinality.HLL
	version atomic.Uint64 // writes to this shard; bumped inside the lock
	_       [24]byte      // pad to a cache line to avoid false sharing of locks
}

// NewShardedHLL creates a concurrent HLL with the given number of
// shards (use ~GOMAXPROCS) and dense precision p.
func NewShardedHLL(shards int, p uint8, seed uint64) *ShardedHLL {
	if shards < 1 {
		panic("concurrent: shards must be >= 1")
	}
	s := &ShardedHLL{shards: make([]shardedHLLSlot, shards), p: p, seed: seed}
	for i := range s.shards {
		s.shards[i].hll = cardinality.NewHLL(p, seed)
	}
	return s
}

// Handle returns a striped writer bound to one shard. Each goroutine
// should obtain its own handle; updates through a handle contend only
// with other holders of the same shard.
func (s *ShardedHLL) Handle() *HLLHandle {
	idx := int(s.next.Add(1)-1) % len(s.shards)
	return &HLLHandle{slot: &s.shards[idx]}
}

// HLLHandle is a shard-bound writer.
type HLLHandle struct {
	slot *shardedHLLSlot
}

// AddUint64 inserts an item through the handle.
func (h *HLLHandle) AddUint64(v uint64) {
	h.slot.mu.Lock()
	h.slot.hll.AddUint64(v)
	h.slot.version.Add(1)
	h.slot.mu.Unlock()
}

// Add inserts a byte-slice item through the handle.
func (h *HLLHandle) Add(item []byte) {
	h.slot.mu.Lock()
	h.slot.hll.Add(item)
	h.slot.version.Add(1)
	h.slot.mu.Unlock()
}

// AddBatchUint64 inserts many items under one lock acquisition; the
// serving layer uses it so a network batch costs one lock round-trip,
// not one per item.
func (h *HLLHandle) AddBatchUint64(vs []uint64) {
	h.slot.mu.Lock()
	for _, v := range vs {
		h.slot.hll.AddUint64(v)
	}
	h.slot.version.Add(uint64(len(vs)))
	h.slot.mu.Unlock()
}

// AddBatch inserts many byte-slice items in fixed-size chunks: each
// chunk is fully hashed *outside* the lock (pure ALU work other
// goroutines never wait on), then folded in under one acquisition via
// the two-phase AddHashBatch. Items may be reused by the caller after
// the call returns; state is identical to per-item Add.
func (h *HLLHandle) AddBatch(items [][]byte) {
	var hs [atomicIngestChunk]uint64
	seed := h.slot.hll.Seed()
	for len(items) > 0 {
		c := len(items)
		if c > atomicIngestChunk {
			c = atomicIngestChunk
		}
		for i, item := range items[:c] {
			hs[i], _ = hashx.Murmur3_128(item, seed)
		}
		h.AddHashBatch(hs[:c])
		items = items[c:]
	}
}

// AddHashBatch folds many pre-hashed values in under one lock
// acquisition. Hash-once pipelines use it so each item is hashed
// exactly once, outside the lock, and the critical section is pure
// register updates. State is identical to AddBatch on the pre-images.
func (h *HLLHandle) AddHashBatch(hs []uint64) {
	h.slot.mu.Lock()
	h.slot.hll.AddHashBatch(hs)
	h.slot.version.Add(uint64(len(hs)))
	h.slot.mu.Unlock()
}

// epoch returns a value that strictly increases with every write to any
// shard. Equal epochs imply an unchanged union.
func (s *ShardedHLL) epoch() uint64 {
	var e uint64
	for i := range s.shards {
		e += s.shards[i].version.Load()
	}
	return e
}

// mergeShards builds a fresh merged sketch from all shards. This is the
// uncached read path; BenchmarkShardedHLLEstimate measures what the
// epoch cache saves over calling this on every read.
func (s *ShardedHLL) mergeShards() *cardinality.HLL {
	merged := cardinality.NewHLL(s.p, s.seed)
	for i := range s.shards {
		s.shards[i].mu.Lock()
		clone := s.shards[i].hll.Clone()
		s.shards[i].mu.Unlock()
		if err := merged.Merge(clone); err != nil {
			panic(err) // all shards share p and seed by construction
		}
	}
	return merged
}

// mergedView returns the cached merged sketch, rebuilding it only if a
// write moved the epoch since the last rebuild. Callers must not
// mutate the result; Snapshot clones it for them.
func (s *ShardedHLL) mergedView() (*cardinality.HLL, float64) {
	e := s.epoch()
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if !s.cacheValid || s.cacheEpoch != e {
		s.cache = s.mergeShards()
		s.cacheEst = s.cache.Estimate()
		s.cacheEpoch = e
		s.cacheValid = true
	}
	return s.cache, s.cacheEst
}

// Estimate returns the cardinality estimate of the union of all
// shards. Because HLL merge is the register-wise max, the result is
// exactly the estimate a single sketch would have produced for the
// union of all shards' inputs. Repeated reads between writes are
// served from the epoch cache in O(shards) instead of O(m · shards).
func (s *ShardedHLL) Estimate() float64 {
	_, est := s.mergedView()
	return est
}

// Snapshot returns a private copy of the merged sketch, suitable for
// serialization or further merging by the caller.
func (s *ShardedHLL) Snapshot() *cardinality.HLL {
	merged, _ := s.mergedView()
	return merged.Clone()
}

// Merge folds a peer's HLL (same p and seed) into the sketch. The peer
// lands in one shard, so subsequent reads union it like any other
// shard's contents.
func (s *ShardedHLL) Merge(other *cardinality.HLL) error {
	slot := &s.shards[0]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if err := slot.hll.Merge(other); err != nil {
		return err
	}
	slot.version.Add(1)
	return nil
}

// MarshalBinary serializes the merged view in the standard HLL
// envelope, so any HLL (sharded or not) can absorb it.
func (s *ShardedHLL) MarshalBinary() ([]byte, error) {
	merged, _ := s.mergedView()
	return merged.MarshalBinary()
}

// P returns the dense precision shared by all shards.
func (s *ShardedHLL) P() uint8 { return s.p }

// SizeBytes returns the total register storage across shards.
func (s *ShardedHLL) SizeBytes() int {
	total := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		total += s.shards[i].hll.SizeBytes()
		s.shards[i].mu.Unlock()
	}
	return total
}

// AtomicCountMin is a Count-Min sketch with lock-free atomic counter
// updates. Point queries read the counters atomically; under concurrent
// writes an estimate is a linearizable snapshot of each counter (not of
// the whole row set), which preserves the never-undercount property for
// items whose updates happened-before the query.
//
// Row positions use the same hash-once double-hashing scheme as
// derived-mode frequency.CountMin — equal width, depth and seed imply
// identical bucket addressing, which is what makes Merge and Snapshot
// exchanges with the plain sketch exact.
type AtomicCountMin struct {
	counts []atomic.Uint64 // depth × width: row-major, or fused block order
	width  int
	depth  int
	blocks uint64 // fused mode: 8-counter blocks per row (width/8)
	seed   uint64
	fused  bool
	n      atomic.Uint64
}

// NewAtomicCountMin creates a width×depth atomic Count-Min sketch.
func NewAtomicCountMin(width, depth int, seed uint64) *AtomicCountMin {
	if width < 1 || depth < 1 {
		panic("concurrent: dimensions must be positive")
	}
	return &AtomicCountMin{
		counts: make([]atomic.Uint64, width*depth),
		width:  width,
		depth:  depth,
		seed:   seed,
	}
}

// NewAtomicCountMinFused creates an atomic Count-Min in the fused
// cache-line layout, addressing exactly the same cells as
// frequency.NewCountMinFused with equal shape and seed (which is what
// keeps Merge and Snapshot exchanges with the plain fused sketch
// exact). Width is rounded up to a multiple of 8; depth is capped at
// 21, mirroring the plain constructor.
func NewAtomicCountMinFused(width, depth int, seed uint64) *AtomicCountMin {
	shape := frequency.NewCountMinFused(width, depth, seed) // reuse sizing + validation
	return &AtomicCountMin{
		counts: make([]atomic.Uint64, shape.Width()*shape.Depth()),
		width:  shape.Width(),
		depth:  shape.Depth(),
		blocks: uint64(shape.Width() / 8),
		seed:   seed,
		fused:  true,
	}
}

// AddUint64 adds weight to an integer item's count. Safe for concurrent
// use without external locking.
func (c *AtomicCountMin) AddUint64(item, weight uint64) {
	c.AddHash(hashx.HashUint64(item, c.seed), weight)
}

// Add adds weight occurrences of a byte-slice item: one hash pass, all
// row positions derived from it. Equivalent to
// AddHash(hashx.XXHash64(item, seed), weight), the same item→bucket map
// as derived-mode frequency.CountMin.
func (c *AtomicCountMin) Add(item []byte, weight uint64) {
	c.AddHash(hashx.XXHash64(item, c.seed), weight)
}

// AddString adds weight occurrences of a string item without copying
// or allocating.
func (c *AtomicCountMin) AddString(item string, weight uint64) {
	c.AddHash(hashx.XXHash64String(item, c.seed), weight)
}

// AddHash adds weight at the derived row positions
// FastRange(h + r·DeriveH2(h), width), matching
// frequency.CountMin.AddHash in derived mode. Wait-free: one atomic add
// per row.
func (c *AtomicCountMin) AddHash(h, weight uint64) {
	if c.fused {
		base, slots := c.fusedBase(h)
		for r := 0; r < c.depth; r++ {
			c.counts[base+slots&7].Add(weight)
			base += 8
			slots >>= 3
		}
		c.n.Add(weight)
		return
	}
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	x := h
	for r := 0; r < c.depth; r++ {
		c.counts[r*c.width+int(hashx.FastRange(x, w))].Add(weight)
		x += h2
	}
	c.n.Add(weight)
}

// fusedBase mirrors frequency.CountMin's fused addressing: the flat
// index of row 0's cache line in the block column h selects, and the
// slot word whose 3-bit chunks pick each row's cell.
func (c *AtomicCountMin) fusedBase(h uint64) (base, slots uint64) {
	return hashx.FastRange(h, c.blocks) * uint64(c.depth) * 8,
		hashx.Mix64(hashx.DeriveH2(h))
}

// atomicIngestChunk is the chunk size of AddHashBatch's two-phase
// loop; see the frequency package's ingestChunk.
const atomicIngestChunk = 256

// AddHashBatch folds many pre-hashed items in, each with weight 1 —
// the hash-once batch entry point for ingest pipelines. The loop is
// two-phase over fixed chunks: phase 1 derives every item's addressing
// state (pure ALU), phase 2 streams the atomic adds, so independent
// cache misses overlap. Atomic adds commute, so state is identical to
// calling AddHash per value.
func (c *AtomicCountMin) AddHashBatch(hs []uint64) {
	var xs, h2s [atomicIngestChunk]uint64
	w := uint64(c.width)
	for start := 0; start < len(hs); start += atomicIngestChunk {
		end := start + atomicIngestChunk
		if end > len(hs) {
			end = len(hs)
		}
		chunk := hs[start:end]
		if c.fused {
			for i, h := range chunk {
				xs[i], h2s[i] = c.fusedBase(h)
			}
			for i := range chunk {
				base, slots := xs[i], h2s[i]
				for r := 0; r < c.depth; r++ {
					c.counts[base+slots&7].Add(1)
					base += 8
					slots >>= 3
				}
			}
		} else {
			for i, h := range chunk {
				xs[i] = h
				h2s[i] = hashx.DeriveH2(h)
			}
			for r := 0; r < c.depth; r++ {
				row := c.counts[r*c.width : (r+1)*c.width]
				for i := range chunk {
					row[hashx.FastRange(xs[i], w)].Add(1)
					xs[i] += h2s[i]
				}
			}
		}
		c.n.Add(uint64(len(chunk)))
	}
}

// Estimate returns the point-query estimate for a byte-slice item,
// probing exactly the buckets Add touched for the same item.
func (c *AtomicCountMin) Estimate(item []byte) uint64 {
	return c.estimateHash(hashx.XXHash64(item, c.seed))
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (c *AtomicCountMin) EstimateUint64(item uint64) uint64 {
	return c.estimateHash(hashx.HashUint64(item, c.seed))
}

func (c *AtomicCountMin) estimateHash(h uint64) uint64 {
	if c.fused {
		base, slots := c.fusedBase(h)
		est := ^uint64(0)
		for r := 0; r < c.depth; r++ {
			if v := c.counts[base+slots&7].Load(); v < est {
				est = v
			}
			base += 8
			slots >>= 3
		}
		return est
	}
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	est := ^uint64(0)
	x := h
	for r := 0; r < c.depth; r++ {
		if v := c.counts[r*c.width+int(hashx.FastRange(x, w))].Load(); v < est {
			est = v
		}
		x += h2
	}
	return est
}

// N returns the total weight added.
func (c *AtomicCountMin) N() uint64 { return c.n.Load() }

// Width returns the bucket count per row.
func (c *AtomicCountMin) Width() int { return c.width }

// Depth returns the number of rows.
func (c *AtomicCountMin) Depth() int { return c.depth }

// Seed returns the hash seed.
func (c *AtomicCountMin) Seed() uint64 { return c.seed }

// Fused reports whether counters live in the fused cache-line layout.
func (c *AtomicCountMin) Fused() bool { return c.fused }

// SizeBytes returns the counter storage size.
func (c *AtomicCountMin) SizeBytes() int { return len(c.counts) * 8 }

// compatibleWith checks that a plain CountMin addresses the same
// buckets: equal width, depth and seed in derived mode imply identical
// double-hashed row positions.
func (c *AtomicCountMin) compatibleWith(other *frequency.CountMin) error {
	if c.width != other.Width() || c.depth != other.Depth() || c.seed != other.Seed() {
		return fmt.Errorf("%w: atomic count-min %dx%d/seed=%d vs %dx%d/seed=%d",
			core.ErrIncompatible, c.width, c.depth, c.seed,
			other.Width(), other.Depth(), other.Seed())
	}
	if !other.Derived() {
		return fmt.Errorf("%w: atomic count-min requires a derived-mode peer", core.ErrIncompatible)
	}
	if other.Conservative() {
		return fmt.Errorf("%w: conservative-update sketches are not mergeable", core.ErrIncompatible)
	}
	if other.Fused() != c.fused {
		return fmt.Errorf("%w: count-min layouts differ (fused vs row-major)", core.ErrIncompatible)
	}
	return nil
}

// Merge atomically adds a hash-compatible plain CountMin's counters
// cell-wise. Concurrent Adds interleave safely: each cell addition is
// atomic, so the never-undercount guarantee holds for any item whose
// updates happened-before a subsequent query.
func (c *AtomicCountMin) Merge(other *frequency.CountMin) error {
	if err := c.compatibleWith(other); err != nil {
		return err
	}
	for i, v := range other.CountsRowMajor() {
		if v != 0 {
			c.counts[i].Add(v)
		}
	}
	c.n.Add(other.N())
	return nil
}

// Snapshot copies the counters into a plain CountMin for serialization
// or offline use. Each counter is read atomically; under concurrent
// writes the copy is a per-cell snapshot (sufficient for the
// overestimate guarantee, as with EstimateUint64).
func (c *AtomicCountMin) Snapshot() *frequency.CountMin {
	counts := make([]uint64, len(c.counts))
	for i := range c.counts {
		counts[i] = c.counts[i].Load()
	}
	var cm *frequency.CountMin
	var err error
	if c.fused {
		cm, err = frequency.NewCountMinFusedFromCounts(c.width, c.depth, c.seed, counts, c.n.Load())
	} else {
		cm, err = frequency.NewCountMinFromCounts(c.width, c.depth, c.seed, counts, c.n.Load())
	}
	if err != nil {
		panic(err) // dimensions match by construction
	}
	return cm
}

// MarshalBinary serializes a snapshot in the standard Count-Min
// envelope, so any CountMin can absorb it.
func (c *AtomicCountMin) MarshalBinary() ([]byte, error) {
	return c.Snapshot().MarshalBinary()
}

// MutexCountMin is the baseline: a Count-Min guarded by one mutex.
// E7a uses it to show what sharding and atomics buy. It uses the same
// derived row positions as AtomicCountMin so the comparison isolates
// the synchronization cost, not the hashing.
type MutexCountMin struct {
	mu     sync.Mutex
	counts [][]uint64
	width  int
	seed   uint64
}

// NewMutexCountMin creates the mutex-guarded baseline sketch.
func NewMutexCountMin(width, depth int, seed uint64) *MutexCountMin {
	if width < 1 || depth < 1 {
		panic("concurrent: dimensions must be positive")
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = make([]uint64, width)
	}
	return &MutexCountMin{counts: counts, width: width, seed: seed}
}

// AddUint64 adds weight to an item's count under the lock.
func (c *MutexCountMin) AddUint64(item, weight uint64) {
	h := hashx.HashUint64(item, c.seed)
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	c.mu.Lock()
	for r := range c.counts {
		c.counts[r][hashx.FastRange(h, w)] += weight
		h += h2
	}
	c.mu.Unlock()
}

// EstimateUint64 returns the point-query estimate under the lock.
func (c *MutexCountMin) EstimateUint64(item uint64) uint64 {
	h := hashx.HashUint64(item, c.seed)
	h2 := hashx.DeriveH2(h)
	w := uint64(c.width)
	c.mu.Lock()
	defer c.mu.Unlock()
	est := ^uint64(0)
	for r := range c.counts {
		if v := c.counts[r][hashx.FastRange(h, w)]; v < est {
			est = v
		}
		h += h2
	}
	return est
}
