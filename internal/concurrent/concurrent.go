// Package concurrent provides thread-safe sketch wrappers in the
// spirit of the Yahoo!/Apache DataSketches "fast concurrent data
// sketches" work the paper cites (Rinberg et al., TOPC 2022): the
// project "emphasised the need for concurrency and mergability of
// sketches". Two designs are provided:
//
//   - ShardedHLL: per-goroutine HLL shards that are merged on read.
//     Updates are entirely uncontended (the DataSketches approach of
//     thread-local buffers), reads pay the merge.
//   - AtomicCountMin: a Count-Min sketch whose counters are updated
//     with atomic adds — wait-free updates, exact reads, no locks.
//
// Experiment E7a measures the update-throughput scaling of both
// against a mutex-guarded baseline.
package concurrent

import (
	"sync"
	"sync/atomic"

	"repro/internal/cardinality"
	"repro/internal/hashx"
)

// ShardedHLL is a concurrent HyperLogLog: each shard is owned by the
// goroutines that hash to it (striped by a cheap counter), and reads
// merge all shards into a fresh sketch.
type ShardedHLL struct {
	shards []shardedHLLSlot
	p      uint8
	seed   uint64
	next   atomic.Uint64
}

type shardedHLLSlot struct {
	mu  sync.Mutex
	hll *cardinality.HLL
	_   [40]byte // pad to a cache line to avoid false sharing of locks
}

// NewShardedHLL creates a concurrent HLL with the given number of
// shards (use ~GOMAXPROCS) and dense precision p.
func NewShardedHLL(shards int, p uint8, seed uint64) *ShardedHLL {
	if shards < 1 {
		panic("concurrent: shards must be >= 1")
	}
	s := &ShardedHLL{shards: make([]shardedHLLSlot, shards), p: p, seed: seed}
	for i := range s.shards {
		s.shards[i].hll = cardinality.NewHLL(p, seed)
	}
	return s
}

// Handle returns a striped writer bound to one shard. Each goroutine
// should obtain its own handle; updates through a handle contend only
// with other holders of the same shard.
func (s *ShardedHLL) Handle() *HLLHandle {
	idx := int(s.next.Add(1)-1) % len(s.shards)
	return &HLLHandle{slot: &s.shards[idx]}
}

// HLLHandle is a shard-bound writer.
type HLLHandle struct {
	slot *shardedHLLSlot
}

// AddUint64 inserts an item through the handle.
func (h *HLLHandle) AddUint64(v uint64) {
	h.slot.mu.Lock()
	h.slot.hll.AddUint64(v)
	h.slot.mu.Unlock()
}

// Add inserts a byte-slice item through the handle.
func (h *HLLHandle) Add(item []byte) {
	h.slot.mu.Lock()
	h.slot.hll.Add(item)
	h.slot.mu.Unlock()
}

// Estimate merges all shards and returns the cardinality estimate.
// Because HLL merge is the register-wise max, the result is exactly the
// estimate a single sketch would have produced for the union of all
// shards' inputs.
func (s *ShardedHLL) Estimate() float64 {
	merged := cardinality.NewHLL(s.p, s.seed)
	for i := range s.shards {
		s.shards[i].mu.Lock()
		clone := s.shards[i].hll.Clone()
		s.shards[i].mu.Unlock()
		if err := merged.Merge(clone); err != nil {
			panic(err) // all shards share p and seed by construction
		}
	}
	return merged.Estimate()
}

// AtomicCountMin is a Count-Min sketch with lock-free atomic counter
// updates. Point queries read the counters atomically; under concurrent
// writes an estimate is a linearizable snapshot of each counter (not of
// the whole row set), which preserves the never-undercount property for
// items whose updates happened-before the query.
type AtomicCountMin struct {
	counts []atomic.Uint64 // depth × width, row-major
	rows   []*hashx.KWise
	width  int
	depth  int
	seed   uint64
	n      atomic.Uint64
}

// NewAtomicCountMin creates a width×depth atomic Count-Min sketch.
func NewAtomicCountMin(width, depth int, seed uint64) *AtomicCountMin {
	if width < 1 || depth < 1 {
		panic("concurrent: dimensions must be positive")
	}
	rowSeeds := hashx.SeedSequence(seed, depth)
	rows := make([]*hashx.KWise, depth)
	for i := range rows {
		rows[i] = hashx.NewKWise(2, rowSeeds[i])
	}
	return &AtomicCountMin{
		counts: make([]atomic.Uint64, width*depth),
		rows:   rows,
		width:  width,
		depth:  depth,
		seed:   seed,
	}
}

// AddUint64 adds weight to an integer item's count. Safe for concurrent
// use without external locking.
func (c *AtomicCountMin) AddUint64(item, weight uint64) {
	h := hashx.HashUint64(item, c.seed)
	for r := 0; r < c.depth; r++ {
		j := c.rows[r].HashRange(h, c.width)
		c.counts[r*c.width+j].Add(weight)
	}
	c.n.Add(weight)
}

// Add adds one occurrence of a byte-slice item.
func (c *AtomicCountMin) Add(item []byte, weight uint64) {
	h := hashx.XXHash64(item, c.seed)
	for r := 0; r < c.depth; r++ {
		j := c.rows[r].HashRange(h, c.width)
		c.counts[r*c.width+j].Add(weight)
	}
	c.n.Add(weight)
}

// EstimateUint64 returns the point-query estimate for an integer item.
func (c *AtomicCountMin) EstimateUint64(item uint64) uint64 {
	h := hashx.HashUint64(item, c.seed)
	est := ^uint64(0)
	for r := 0; r < c.depth; r++ {
		j := c.rows[r].HashRange(h, c.width)
		if v := c.counts[r*c.width+j].Load(); v < est {
			est = v
		}
	}
	return est
}

// N returns the total weight added.
func (c *AtomicCountMin) N() uint64 { return c.n.Load() }

// MutexCountMin is the baseline: a Count-Min guarded by one mutex.
// E7a uses it to show what sharding and atomics buy.
type MutexCountMin struct {
	mu     sync.Mutex
	counts [][]uint64
	rows   []*hashx.KWise
	width  int
	seed   uint64
}

// NewMutexCountMin creates the mutex-guarded baseline sketch.
func NewMutexCountMin(width, depth int, seed uint64) *MutexCountMin {
	if width < 1 || depth < 1 {
		panic("concurrent: dimensions must be positive")
	}
	counts := make([][]uint64, depth)
	for i := range counts {
		counts[i] = make([]uint64, width)
	}
	rowSeeds := hashx.SeedSequence(seed, depth)
	rows := make([]*hashx.KWise, depth)
	for i := range rows {
		rows[i] = hashx.NewKWise(2, rowSeeds[i])
	}
	return &MutexCountMin{counts: counts, rows: rows, width: width, seed: seed}
}

// AddUint64 adds weight to an item's count under the lock.
func (c *MutexCountMin) AddUint64(item, weight uint64) {
	h := hashx.HashUint64(item, c.seed)
	c.mu.Lock()
	for r, row := range c.rows {
		c.counts[r][row.HashRange(h, c.width)] += weight
	}
	c.mu.Unlock()
}

// EstimateUint64 returns the point-query estimate under the lock.
func (c *MutexCountMin) EstimateUint64(item uint64) uint64 {
	h := hashx.HashUint64(item, c.seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	est := ^uint64(0)
	for r, row := range c.rows {
		if v := c.counts[r][row.HashRange(h, c.width)]; v < est {
			est = v
		}
	}
	return est
}
