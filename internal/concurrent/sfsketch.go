package concurrent

import (
	"sync"

	"repro/internal/frequency"
	"repro/internal/hashx"
)

// ServingSF is the concurrent serving variant of frequency.SFSketch.
// The two-stage update is read-dependent (each slim counter's raise is
// capped by the fat stage's post-update estimate), so per-counter
// atomics would race the cap; writes serialize behind one RWMutex
// instead, and the wrapper earns its keep by hashing whole batches
// OUTSIDE the critical section — the hash pass is the pure-ALU half of
// an update, so writers contend only for the counter-touching half —
// and by letting queries and snapshots share an RLock.
//
// Updates applied in batch order are byte-identical to the plain
// type's, so WAL replay of the serving variant reconstructs the same
// counters (the same discipline the conservative Count-Min path
// follows).
type ServingSF struct {
	mu   sync.RWMutex
	s    *frequency.SFSketch
	seed uint64 // immutable; read without the lock by the hash pass
}

// NewServingSF builds the serving wrapper over a fresh SF-sketch.
func NewServingSF(slimWidth, slimDepth, fatWidth, fatDepth int, seed uint64) *ServingSF {
	return &ServingSF{s: frequency.NewSFSketch(slimWidth, slimDepth, fatWidth, fatDepth, seed), seed: seed}
}

// Add increments item's count by weight.
func (s *ServingSF) Add(item []byte, weight uint64) {
	h := hashx.XXHash64(item, s.seed)
	s.mu.Lock()
	s.s.AddHash(h, weight)
	s.mu.Unlock()
}

// AddBatch increments each item's count by one. Items are hashed in
// chunks outside the lock; the counter updates apply under one lock
// acquisition per chunk.
func (s *ServingSF) AddBatch(items [][]byte) {
	var hs [atomicIngestChunk]uint64
	for len(items) > 0 {
		n := len(items)
		if n > atomicIngestChunk {
			n = atomicIngestChunk
		}
		for i, item := range items[:n] {
			hs[i] = hashx.XXHash64(item, s.seed)
		}
		s.AddHashBatch(hs[:n])
		items = items[n:]
	}
}

// AddHashBatch folds pre-hashed items in under one lock acquisition.
func (s *ServingSF) AddHashBatch(hs []uint64) {
	s.mu.Lock()
	s.s.AddHashBatch(hs)
	s.mu.Unlock()
}

// Estimate answers a point query from the slim stage.
func (s *ServingSF) Estimate(item []byte) uint64 {
	h := hashx.XXHash64(item, s.seed)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.EstimateHash(h)
}

// EstimateString answers a point query for a string item.
func (s *ServingSF) EstimateString(item string) uint64 {
	h := hashx.XXHash64String(item, s.seed)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.EstimateHash(h)
}

// FatEstimate answers a point query from the fat stage (diagnostics).
func (s *ServingSF) FatEstimate(item []byte) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.FatEstimate(item)
}

// Merge absorbs a decoded peer (full+full or slim+slim, per the plain
// type's rules).
func (s *ServingSF) Merge(other *frequency.SFSketch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Merge(other)
}

// Snapshot returns a deep copy of the wrapped sketch.
func (s *ServingSF) Snapshot() *frequency.SFSketch {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.Clone()
}

// MarshalBinary serializes the full two-stage state.
func (s *ServingSF) MarshalBinary() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.MarshalBinary()
}

// MarshalSlim serializes the slim stage only (the wire-efficient
// envelope).
func (s *ServingSF) MarshalSlim() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.MarshalSlim()
}

// N returns the total weight added.
func (s *ServingSF) N() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.N()
}

// Seed returns the hash seed.
func (s *ServingSF) Seed() uint64 { return s.seed }

// SizeBytes returns the resident counter storage of both stages.
func (s *ServingSF) SizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.SizeBytes()
}

// SlimSizeBytes returns the slim-stage counter bytes.
func (s *ServingSF) SlimSizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.s.SlimSizeBytes()
}
