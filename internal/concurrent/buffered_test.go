package concurrent

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bloom"
	"repro/internal/cardinality"
	"repro/internal/frequency"
)

// Byte-identity property: buffered multi-writer ingest, once flushed
// and synced, serializes to exactly the bytes of serial ingest of the
// same multiset. This is the strongest form of the "same estimate
// distribution" requirement — identical bytes ⇒ identical estimates
// for every query.

func TestBufferedCountMinByteIdentity(t *testing.T) {
	for _, fused := range []bool{false, true} {
		t.Run(fmt.Sprintf("fused=%v", fused), func(t *testing.T) {
			const width, depth, seed = 512, 4, 42
			const items, writers = 20000, 4

			serial := frequency.NewCountMin(width, depth, seed)
			if fused {
				serial = frequency.NewCountMinFused(width, depth, seed)
			}
			buf := NewBufferedCountMinOpts(width, depth, seed, fused, 64)
			defer buf.Close()

			rng := rand.New(rand.NewSource(7))
			type upd struct{ item, w uint64 }
			updates := make([]upd, items)
			for i := range updates {
				updates[i] = upd{uint64(rng.Intn(1000)), uint64(rng.Intn(5) + 1)}
			}
			for _, u := range updates {
				serial.AddUint64(u.item, u.w)
			}

			var wg sync.WaitGroup
			per := items / writers
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(part []upd) {
					defer wg.Done()
					wr := buf.Writer()
					for _, u := range part {
						wr.AddUint64(u.item, u.w)
					}
					wr.Flush()
				}(updates[w*per : (w+1)*per])
			}
			wg.Wait()
			buf.Sync()

			want, err := serial.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			got, err := buf.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("buffered bytes diverge from serial ingest (%d vs %d bytes)", len(got), len(want))
			}
			if n := buf.N(); n != serial.N() {
				t.Fatalf("N = %d, want %d", n, serial.N())
			}
		})
	}
}

func TestBufferedHLLByteIdentity(t *testing.T) {
	const p, seed = 12, 42
	const items, writers = 20000, 4

	serial := cardinality.NewHLL(p, seed)
	buf := NewBufferedHLLBuf(p, seed, 64)
	defer buf.Close()

	for i := 0; i < items; i++ {
		serial.AddUint64(uint64(i))
	}
	var wg sync.WaitGroup
	per := items / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			wr := buf.Writer()
			for i := lo; i < lo+per; i++ {
				wr.AddUint64(uint64(i))
			}
			wr.Flush()
		}(w * per)
	}
	wg.Wait()

	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := buf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("buffered bytes diverge from serial ingest (%d vs %d bytes)", len(got), len(want))
	}
	if est, want := buf.Estimate(), serial.Estimate(); est != want {
		t.Fatalf("published estimate %.1f, want %.1f", est, want)
	}
}

func TestBufferedBlockedBloomByteIdentity(t *testing.T) {
	const m, k, seed = 1 << 15, 7, 42
	const items, writers = 20000, 4

	serial := bloom.NewBlocked(m, k, seed)
	buf := NewBufferedBlockedBloomBuf(m, k, seed, 64)
	defer buf.Close()

	keys := make([][]byte, items)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		serial.Add(keys[i])
	}
	var wg sync.WaitGroup
	per := items / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(part [][]byte) {
			defer wg.Done()
			wr := buf.Writer()
			for _, key := range part {
				wr.Add(key)
			}
			wr.Flush()
		}(keys[w*per : (w+1)*per])
	}
	wg.Wait()

	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := buf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("buffered bytes diverge from serial ingest (%d vs %d bytes)", len(got), len(want))
	}
	for _, key := range keys[:100] {
		if !buf.Contains(key) {
			t.Fatalf("false negative for %q after sync", key)
		}
	}
}

// Staleness bound: at any instant mid-ingest, a reader misses at most
// writers × WriterBuffer items — everything older has been handed off
// and the propagator's visible N reflects it after a sync barrier.
func TestBufferedCountMinStalenessBound(t *testing.T) {
	const width, depth, seed = 256, 4, 1
	const writerBuf = 64
	const writers = 4
	const perWriter = 10000

	c := NewBufferedCountMinOpts(width, depth, seed, false, writerBuf)
	defer c.Close()

	var wg sync.WaitGroup
	handles := make([]*BufferedCountMinWriter, writers)
	for i := range handles {
		handles[i] = c.Writer()
	}
	if got, want := c.StalenessBound(), writers*writerBuf; got != want {
		t.Fatalf("StalenessBound = %d, want %d", got, want)
	}
	start := make(chan struct{})
	for _, wr := range handles {
		wg.Add(1)
		go func(wr *BufferedCountMinWriter) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				wr.AddUint64(uint64(i), 1)
			}
		}(wr)
	}
	close(start)
	wg.Wait()

	// No flush yet: each writer may hold up to its full buffer
	// (two halves) locally, nothing more. Propagation is async, so
	// run a barrier before checking the visible floor.
	c.prop.do(func() {})
	total := uint64(writers * perWriter)
	bound := uint64(c.StalenessBound())
	if n := c.N(); n < total-bound || n > total {
		t.Fatalf("N = %d outside staleness window [%d, %d]", n, total-bound, total)
	}

	// After flush + sync the count is exact.
	for _, wr := range handles {
		wr.Flush()
	}
	c.Sync()
	if n := c.N(); n != total {
		t.Fatalf("N = %d after flush+sync, want %d", n, total)
	}
}

// Concurrent readers during multi-writer ingest: estimates are
// monotone in propagated weight and never exceed the true total
// (Count-Min never undercounts propagated state, never counts
// unbuffered state).
func TestBufferedCountMinConcurrentReaders(t *testing.T) {
	c := NewBufferedCountMin(512, 4, 9)
	defer c.Close()

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := c.N()
				if n < last {
					t.Error("visible N went backwards")
					return
				}
				last = n
				c.EstimateUint64(12345)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wr := c.Writer()
			for i := 0; i < perWriter; i++ {
				wr.AddUint64(uint64(i%100), 1)
			}
			wr.Flush()
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	c.Sync()
	if n := c.N(); n != writers*perWriter {
		t.Fatalf("N = %d, want %d", n, writers*perWriter)
	}
}

// Merging a plain sketch into a buffered one concurrently with
// buffered ingest must land exactly once and completely.
func TestBufferedMergeDuringIngest(t *testing.T) {
	c := NewBufferedCountMin(512, 4, 3)
	defer c.Close()

	peer := frequency.NewCountMin(512, 4, 3)
	for i := 0; i < 1000; i++ {
		peer.AddUint64(uint64(i), 2)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wr := c.Writer()
		for i := 0; i < 5000; i++ {
			wr.AddUint64(uint64(i), 1)
		}
		wr.Flush()
	}()
	if err := c.Merge(peer); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	c.Sync()
	if n, want := c.N(), uint64(5000+2000); n != want {
		t.Fatalf("N = %d, want %d", n, want)
	}

	h := NewBufferedHLL(12, 3)
	defer h.Close()
	hpeer := cardinality.NewHLL(12, 3)
	for i := 0; i < 1000; i++ {
		hpeer.AddUint64(uint64(i))
	}
	if err := h.Merge(hpeer); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	if snap.Estimate() != hpeer.Estimate() {
		t.Fatalf("merged HLL estimate %.1f, want %.1f", snap.Estimate(), hpeer.Estimate())
	}

	f := NewBufferedBlockedBloom(1<<12, 7, 3)
	defer f.Close()
	fpeer := bloom.NewBlocked(1<<12, 7, 3)
	fpeer.Add([]byte("merged-item"))
	if err := f.Merge(fpeer); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	if !f.Contains([]byte("merged-item")) {
		t.Fatal("merged item not visible")
	}
}

func TestBufferedMergeQuiescentPublishes(t *testing.T) {
	// A merge into a sketch with no writer traffic must still refresh
	// the published read state: the ctl barrier publishes after the op,
	// not only before, or the merged registers sit invisible until the
	// next unrelated flush (caught live via sketchd snapshot→merge).
	h := NewBufferedHLL(12, 9)
	defer h.Close()
	peer := cardinality.NewHLL(12, 9)
	for i := 0; i < 50000; i++ {
		peer.AddUint64(uint64(i))
	}
	if err := h.Merge(peer); err != nil {
		t.Fatal(err)
	}
	if got, want := h.Estimate(), peer.Estimate(); got != want {
		t.Fatalf("published estimate after quiescent merge = %.1f, want %.1f", got, want)
	}
}

// Close while writers are mid-stream must not deadlock or panic;
// post-close handoffs drop silently.
func TestBufferedCloseWithLiveWriters(t *testing.T) {
	c := NewBufferedCountMin(256, 4, 5)
	var wg sync.WaitGroup
	started := make(chan struct{}, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wr := c.Writer()
			started <- struct{}{}
			for i := 0; i < 100000; i++ {
				wr.AddUint64(uint64(i), 1)
			}
			wr.Flush()
		}()
	}
	for i := 0; i < 8; i++ {
		<-started
	}
	c.Close()
	wg.Wait() // must terminate: every channel wait has a quit escape

	// Idempotent close; reads still answer from the final global.
	c.Close()
	_ = c.N()
	_ = c.EstimateUint64(1)

	h := NewBufferedHLL(12, 5)
	hw := h.Writer()
	hw.AddUint64(1)
	h.Close()
	_ = h.Estimate()
	if h.Snapshot() == nil { // post-close snapshot uses the done-channel path
		t.Fatal("nil snapshot after close")
	}

	f := NewBufferedBlockedBloom(1<<12, 7, 5)
	fw := f.Writer()
	fw.AddHash(1, 2)
	f.Close()
	_ = f.Contains([]byte("x"))
}

// Pooled writers recycle across checkouts and keep the registered
// writer count bounded by the pool size.
func TestBufferedPooledWriters(t *testing.T) {
	c := NewBufferedCountMin(256, 4, 11)
	defer c.Close()

	size := runtime.GOMAXPROCS(0)
	seen := make(map[*BufferedCountMinWriter]bool)
	for i := 0; i < 3*size; i++ {
		w := c.PooledWriter()
		seen[w] = true
		w.AddUint64(uint64(i), 1)
		c.ReleaseWriter(w)
	}
	if len(seen) > size {
		t.Fatalf("%d distinct pooled writers, want ≤ %d", len(seen), size)
	}
	if bw := c.BufferedWriters(); bw > size {
		t.Fatalf("BufferedWriters = %d, want ≤ %d", bw, size)
	}
	c.Sync()
	if n := c.N(); n != uint64(3*size) {
		t.Fatalf("N = %d, want %d", n, 3*size)
	}
}

func TestBufferedSnapshotRoundTrip(t *testing.T) {
	c := NewBufferedCountMin(256, 4, 13)
	defer c.Close()
	w := c.Writer()
	for i := 0; i < 1000; i++ {
		w.AddUint64(uint64(i%50), 1)
	}
	w.Flush()
	snap := c.Snapshot()
	if snap.N() != 1000 {
		t.Fatalf("snapshot N = %d, want 1000", snap.N())
	}
	if got, want := snap.EstimateUint64(7), c.EstimateUint64(7); got != want {
		t.Fatalf("snapshot estimate %d, want %d", got, want)
	}

	h := NewBufferedHLL(12, 13)
	defer h.Close()
	hw := h.Writer()
	for i := 0; i < 1000; i++ {
		hw.AddUint64(uint64(i))
	}
	hw.Flush()
	hsnap := h.Snapshot()
	if hsnap.Estimate() != h.Estimate() {
		t.Fatalf("snapshot estimate %.1f, live %.1f", hsnap.Estimate(), h.Estimate())
	}

	f := NewBufferedBlockedBloom(1<<12, 7, 13)
	defer f.Close()
	fw := f.Writer()
	fw.Add([]byte("hello"))
	fw.Flush()
	fsnap := f.Snapshot()
	if !fsnap.Contains([]byte("hello")) {
		t.Fatal("snapshot lost an item")
	}
}

// The writer hot path must not allocate: put() appends into a
// preallocated buffer and handoff recycles via channels. (The guards
// in zeroalloc_test.go cover the same path at the repo level; this
// one keeps the property local to the package.)
func TestBufferedWriterHotPathAllocs(t *testing.T) {
	c := NewBufferedCountMin(256, 4, 17)
	defer c.Close()
	w := c.Writer()
	var i uint64
	allocs := testing.AllocsPerRun(10000, func() {
		w.AddUint64(i, 1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("writer AddUint64: %.2f allocs/op, want 0", allocs)
	}

	h := NewBufferedHLL(12, 17)
	defer h.Close()
	hw := h.Writer()
	// Warm the propagator's one-time publish-timer allocation (the
	// throttled-publish path arms it on the first sub-interval round)
	// so the measured window sees the steady state.
	for j := 0; j < 2000; j++ {
		hw.AddUint64(uint64(j))
	}
	hw.Flush()
	h.Sync()
	allocs = testing.AllocsPerRun(10000, func() {
		hw.AddUint64(i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("HLL writer AddUint64: %.2f allocs/op, want 0", allocs)
	}

	f := NewBufferedBlockedBloom(1<<12, 7, 17)
	defer f.Close()
	fw := f.Writer()
	allocs = testing.AllocsPerRun(10000, func() {
		fw.AddHash(i, i*2654435761)
		i++
	})
	if allocs != 0 {
		t.Fatalf("bloom writer AddHash: %.2f allocs/op, want 0", allocs)
	}
}
