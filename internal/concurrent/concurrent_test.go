package concurrent

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
)

func TestShardedHLLMatchesSequential(t *testing.T) {
	const n = 200000
	const workers = 8
	s := NewShardedHLL(workers, 12, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle()
			for i := w; i < n; i += workers {
				h.AddUint64(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	// The sharded estimate must equal a single-threaded sketch's
	// estimate exactly (merge is lossless).
	single := cardinality.NewHLL(12, 1)
	for i := 0; i < n; i++ {
		single.AddUint64(uint64(i))
	}
	if got, want := s.Estimate(), single.Estimate(); got != want {
		t.Errorf("sharded estimate %.1f != sequential %.1f", got, want)
	}
}

func TestShardedHLLConcurrentReads(t *testing.T) {
	s := NewShardedHLL(4, 10, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle()
			for i := 0; i < 50000; i++ {
				h.AddUint64(uint64(w)<<32 | uint64(i))
			}
		}(w)
	}
	// Reader racing the writers; must never panic and estimates must
	// stay sensible throughout.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				if est := s.Estimate(); est < 0 {
					t.Error("negative estimate")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if err := core.RelErr(s.Estimate(), 200000); err > 0.1 {
		t.Errorf("final estimate rel err %.3f", err)
	}
}

func TestAtomicCountMinConcurrentNeverUndercounts(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	c := NewAtomicCountMin(1024, 4, 3)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.AddUint64(uint64(i%100), 1)
			}
		}(w)
	}
	wg.Wait()
	if c.N() != workers*perWorker {
		t.Errorf("N = %d, want %d", c.N(), workers*perWorker)
	}
	for item := uint64(0); item < 100; item++ {
		want := uint64(workers * perWorker / 100)
		if got := c.EstimateUint64(item); got < want {
			t.Errorf("item %d: estimate %d < true %d", item, got, want)
		}
	}
}

func TestAtomicCountMinByteItems(t *testing.T) {
	c := NewAtomicCountMin(256, 4, 4)
	c.Add([]byte("x"), 7)
	h := c.EstimateUint64 // ensure integer path unaffected
	_ = h
	// Byte-item estimates go through the same counters; check via a
	// second Add.
	c.Add([]byte("x"), 3)
	if c.N() != 10 {
		t.Errorf("N = %d", c.N())
	}
}

func TestMutexCountMinCorrectUnderConcurrency(t *testing.T) {
	c := NewMutexCountMin(512, 4, 5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.AddUint64(uint64(i%50), 1)
			}
		}()
	}
	wg.Wait()
	for item := uint64(0); item < 50; item++ {
		if got := c.EstimateUint64(item); got < 800 {
			t.Errorf("item %d: estimate %d < 800", item, got)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"sharded": func() { NewShardedHLL(0, 10, 1) },
		"atomic":  func() { NewAtomicCountMin(0, 4, 1) },
		"mutex":   func() { NewMutexCountMin(4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Throughput benchmarks back experiment E7a.

func BenchmarkAtomicCountMinParallel(b *testing.B) {
	c := NewAtomicCountMin(4096, 4, 1)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			c.AddUint64(i, 1)
			i++
		}
	})
}

func BenchmarkMutexCountMinParallel(b *testing.B) {
	c := NewMutexCountMin(4096, 4, 1)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			c.AddUint64(i, 1)
			i++
		}
	})
}

func BenchmarkShardedHLLParallel(b *testing.B) {
	s := NewShardedHLL(runtime.GOMAXPROCS(0), 14, 1)
	b.RunParallel(func(pb *testing.PB) {
		h := s.Handle()
		i := uint64(0)
		for pb.Next() {
			h.AddUint64(i)
			i++
		}
	})
}
