package concurrent

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/cardinality"
	"repro/internal/core"
	"repro/internal/frequency"
)

func TestShardedHLLMatchesSequential(t *testing.T) {
	const n = 200000
	const workers = 8
	s := NewShardedHLL(workers, 12, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle()
			for i := w; i < n; i += workers {
				h.AddUint64(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	// The sharded estimate must equal a single-threaded sketch's
	// estimate exactly (merge is lossless).
	single := cardinality.NewHLL(12, 1)
	for i := 0; i < n; i++ {
		single.AddUint64(uint64(i))
	}
	if got, want := s.Estimate(), single.Estimate(); got != want {
		t.Errorf("sharded estimate %.1f != sequential %.1f", got, want)
	}
}

func TestShardedHLLConcurrentReads(t *testing.T) {
	s := NewShardedHLL(4, 10, 2)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Handle()
			for i := 0; i < 50000; i++ {
				h.AddUint64(uint64(w)<<32 | uint64(i))
			}
		}(w)
	}
	// Reader racing the writers; must never panic and estimates must
	// stay sensible throughout.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				if est := s.Estimate(); est < 0 {
					t.Error("negative estimate")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if err := core.RelErr(s.Estimate(), 200000); err > 0.1 {
		t.Errorf("final estimate rel err %.3f", err)
	}
}

func TestAtomicCountMinConcurrentNeverUndercounts(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	c := NewAtomicCountMin(1024, 4, 3)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.AddUint64(uint64(i%100), 1)
			}
		}(w)
	}
	wg.Wait()
	if c.N() != workers*perWorker {
		t.Errorf("N = %d, want %d", c.N(), workers*perWorker)
	}
	for item := uint64(0); item < 100; item++ {
		want := uint64(workers * perWorker / 100)
		if got := c.EstimateUint64(item); got < want {
			t.Errorf("item %d: estimate %d < true %d", item, got, want)
		}
	}
}

func TestAtomicCountMinByteItems(t *testing.T) {
	c := NewAtomicCountMin(256, 4, 4)
	c.Add([]byte("x"), 7)
	h := c.EstimateUint64 // ensure integer path unaffected
	_ = h
	// Byte-item estimates go through the same counters; check via a
	// second Add.
	c.Add([]byte("x"), 3)
	if c.N() != 10 {
		t.Errorf("N = %d", c.N())
	}
}

func TestMutexCountMinCorrectUnderConcurrency(t *testing.T) {
	c := NewMutexCountMin(512, 4, 5)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.AddUint64(uint64(i%50), 1)
			}
		}()
	}
	wg.Wait()
	for item := uint64(0); item < 50; item++ {
		if got := c.EstimateUint64(item); got < 800 {
			t.Errorf("item %d: estimate %d < 800", item, got)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"sharded": func() { NewShardedHLL(0, 10, 1) },
		"atomic":  func() { NewAtomicCountMin(0, 4, 1) },
		"mutex":   func() { NewMutexCountMin(4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Throughput benchmarks back experiment E7a.

func BenchmarkAtomicCountMinParallel(b *testing.B) {
	c := NewAtomicCountMin(4096, 4, 1)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			c.AddUint64(i, 1)
			i++
		}
	})
}

func BenchmarkMutexCountMinParallel(b *testing.B) {
	c := NewMutexCountMin(4096, 4, 1)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			c.AddUint64(i, 1)
			i++
		}
	})
}

func BenchmarkShardedHLLParallel(b *testing.B) {
	s := NewShardedHLL(runtime.GOMAXPROCS(0), 14, 1)
	b.RunParallel(func(pb *testing.PB) {
		h := s.Handle()
		i := uint64(0)
		for pb.Next() {
			h.AddUint64(i)
			i++
		}
	})
}

func TestShardedHLLEpochCache(t *testing.T) {
	s := NewShardedHLL(4, 12, 1)
	h := s.Handle()
	for i := 0; i < 10000; i++ {
		h.AddUint64(uint64(i))
	}
	first := s.Estimate()
	// A second read between writes must come from the cache and agree.
	if again := s.Estimate(); again != first {
		t.Errorf("cached estimate %.1f != %.1f", again, first)
	}
	if s.epoch() != 10000 {
		t.Errorf("epoch = %d, want 10000", s.epoch())
	}
	// A write must invalidate the cached view.
	for i := 10000; i < 30000; i++ {
		h.AddUint64(uint64(i))
	}
	if got := s.Estimate(); got == first {
		t.Errorf("estimate unchanged at %.1f after 20k new items", got)
	}
	if err := core.RelErr(s.Estimate(), 30000); err > 0.1 {
		t.Errorf("estimate rel err %.3f", err)
	}
}

func TestShardedHLLMergeAndSnapshot(t *testing.T) {
	s := NewShardedHLL(4, 12, 1)
	h := s.Handle()
	for i := 0; i < 5000; i++ {
		h.AddUint64(uint64(i))
	}
	peer := cardinality.NewHLL(12, 1)
	for i := 5000; i < 10000; i++ {
		peer.AddUint64(uint64(i))
	}
	if err := s.Merge(peer); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// Merge must invalidate the cache and union the peer.
	if err := core.RelErr(s.Estimate(), 10000); err > 0.1 {
		t.Errorf("post-merge rel err %.3f", err)
	}
	// Incompatible peers must be rejected.
	bad := cardinality.NewHLL(10, 99)
	if err := s.Merge(bad); err == nil {
		t.Error("merge of incompatible HLL succeeded")
	}
	// Snapshot must be a private copy equal to the merged view.
	snap := s.Snapshot()
	if snap.Estimate() != s.Estimate() {
		t.Errorf("snapshot estimate %.1f != %.1f", snap.Estimate(), s.Estimate())
	}
	for i := 0; i < 20000; i++ {
		snap.AddUint64(uint64(1<<40 + i))
	}
	if snap.Estimate() <= s.Estimate() {
		t.Error("mutating the snapshot did not diverge from the source")
	}
	// Round-trip through MarshalBinary must be absorbable by a plain HLL.
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back cardinality.HLL
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Estimate() != s.Estimate() {
		t.Errorf("round-trip estimate %.1f != %.1f", back.Estimate(), s.Estimate())
	}
}

func TestAtomicCountMinMergeSnapshot(t *testing.T) {
	c := NewAtomicCountMin(1024, 4, 3)
	for i := 0; i < 1000; i++ {
		c.AddUint64(uint64(i%10), 1)
	}
	peer := frequency.NewCountMin(1024, 4, 3)
	for i := 0; i < 500; i++ {
		peer.AddUint64(uint64(i%10), 1)
	}
	if err := c.Merge(peer); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if c.N() != 1500 {
		t.Errorf("N = %d, want 1500", c.N())
	}
	for item := uint64(0); item < 10; item++ {
		if got := c.EstimateUint64(item); got < 150 {
			t.Errorf("item %d: estimate %d < 150", item, got)
		}
	}
	// Snapshot must agree with the atomic reads and round-trip.
	snap := c.Snapshot()
	for item := uint64(0); item < 10; item++ {
		if snap.EstimateUint64(item) != c.EstimateUint64(item) {
			t.Errorf("item %d: snapshot %d != live %d",
				item, snap.EstimateUint64(item), c.EstimateUint64(item))
		}
	}
	// Mismatched shapes and conservative peers are rejected.
	if err := c.Merge(frequency.NewCountMin(512, 4, 3)); err == nil {
		t.Error("merge of mismatched width succeeded")
	}
	cons := frequency.NewCountMin(1024, 4, 3)
	cons.SetConservative(true)
	if err := c.Merge(cons); err == nil {
		t.Error("merge of conservative sketch succeeded")
	}
}

// BenchmarkShardedHLLEstimate demonstrates what the epoch cache buys:
// the uncached path re-merges every shard on every read (the seed
// repo's behaviour), the cached path pays O(shards) between writes.
func BenchmarkShardedHLLEstimate(b *testing.B) {
	for _, mode := range []string{"uncached", "cached"} {
		b.Run(mode, func(b *testing.B) {
			s := NewShardedHLL(runtime.GOMAXPROCS(0), 14, 1)
			h := s.Handle()
			for i := 0; i < 100000; i++ {
				h.AddUint64(uint64(i))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "uncached" {
					merged := s.mergeShards()
					_ = merged.Estimate()
				} else {
					_ = s.Estimate()
				}
			}
		})
	}
}
