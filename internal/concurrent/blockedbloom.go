package concurrent

import (
	"fmt"
	"sync/atomic"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashx"
)

// AtomicBlockedBloom is a blocked Bloom filter whose bit words are set
// with atomic CAS-OR loops — lock-free inserts and queries, so sketchd
// can serve the blocked layout without a mutex on the hot path. It
// addresses exactly the same block and bits as bloom.BlockedFilter with
// equal shape and seed, which is what makes Merge and Snapshot
// exchanges with the plain filter exact.
//
// Queries under concurrent writes are safe in the Bloom sense: a
// Contains that races an Add may miss bits still being set, but any
// item whose Add happened-before the query is always found (no false
// negatives for completed inserts).
type AtomicBlockedBloom struct {
	bits   []atomic.Uint64 // blocks × 8 words
	blocks uint64
	k      int
	seed   uint64
	n      atomic.Uint64
}

// NewAtomicBlockedBloom creates an atomic blocked filter with at least
// m bits (rounded up to whole 512-bit blocks) and k probes per item,
// mirroring bloom.NewBlocked.
func NewAtomicBlockedBloom(m uint64, k int, seed uint64) *AtomicBlockedBloom {
	shape := bloom.NewBlocked(m, k, seed) // reuse sizing + validation
	return &AtomicBlockedBloom{
		bits:   make([]atomic.Uint64, len(shape.Words())),
		blocks: shape.Blocks(),
		k:      k,
		seed:   seed,
	}
}

// orWord atomically ORs mask into word i. go.mod targets Go 1.22, so
// atomic.Uint64.Or (added in 1.23) is unavailable; the CAS loop
// short-circuits when the bits are already set — the common case in a
// filling filter — making the fast path a single load.
func (f *AtomicBlockedBloom) orWord(i uint64, mask uint64) {
	w := &f.bits[i]
	for {
		old := w.Load()
		if old&mask == mask {
			return
		}
		if w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Add inserts a byte-slice item. Safe for concurrent use.
func (f *AtomicBlockedBloom) Add(item []byte) {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	f.AddHash(h1, h2)
}

// AddString inserts a string item without copying or allocating.
func (f *AtomicBlockedBloom) AddString(item string) {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	f.AddHash(h1, h2)
}

// AddHash inserts a pre-hashed item, touching one cache-line block.
// The k bit positions match bloom.BlockedFilter.AddHash exactly.
func (f *AtomicBlockedBloom) AddHash(h1, h2 uint64) {
	base := hashx.FastRange(h1, f.blocks) * bloom.BlockWords
	k, w := f.k, h2
	for {
		steps := k
		if steps > 7 {
			steps = 7
		}
		for j := 0; j < steps; j++ {
			pos := w & 511
			f.orWord(base+pos>>6, 1<<(pos&63))
			w >>= 9
		}
		if k -= steps; k == 0 {
			break
		}
		h2 = hashx.Mix64(h2)
		w = h2
	}
	f.n.Add(1)
}

// AddBatch inserts many items with the two-phase pipelined loop: each
// fixed-size chunk is fully hashed first (outside any synchronization
// — the CAS words are the only shared state), then folded in via
// AddHashBatch. State is identical to per-item Add.
func (f *AtomicBlockedBloom) AddBatch(items [][]byte) {
	var h1s, h2s [atomicIngestChunk]uint64
	for len(items) > 0 {
		c := len(items)
		if c > atomicIngestChunk {
			c = atomicIngestChunk
		}
		for i, item := range items[:c] {
			h1s[i], h2s[i] = hashx.Murmur3_128(item, f.seed)
		}
		f.AddHashBatch(h1s[:c], h2s[:c])
		items = items[c:]
	}
}

// AddHashBatch folds many pre-hashed items in: block bases for the
// whole chunk are derived first, then the CAS-OR stream runs over
// them, mirroring bloom.BlockedFilter.AddHashBatch. Both slices must
// have equal length.
func (f *AtomicBlockedBloom) AddHashBatch(h1s, h2s []uint64) {
	if len(h1s) != len(h2s) {
		panic("concurrent: AddHashBatch slice lengths differ")
	}
	var bases [atomicIngestChunk]uint64
	for start := 0; start < len(h1s); start += atomicIngestChunk {
		end := start + atomicIngestChunk
		if end > len(h1s) {
			end = len(h1s)
		}
		c1, c2 := h1s[start:end], h2s[start:end]
		for i, h1 := range c1 {
			bases[i] = hashx.FastRange(h1, f.blocks) * bloom.BlockWords
		}
		for i, h2 := range c2 {
			base := bases[i]
			k, w := f.k, h2
			for {
				steps := k
				if steps > 7 {
					steps = 7
				}
				for j := 0; j < steps; j++ {
					pos := w & 511
					f.orWord(base+pos>>6, 1<<(pos&63))
					w >>= 9
				}
				if k -= steps; k == 0 {
					break
				}
				h2 = hashx.Mix64(h2)
				w = h2
			}
		}
		f.n.Add(uint64(len(c1)))
	}
}

// Contains reports whether the item may be in the set.
func (f *AtomicBlockedBloom) Contains(item []byte) bool {
	h1, h2 := hashx.Murmur3_128(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// ContainsString reports membership for a string item without copying
// or allocating.
func (f *AtomicBlockedBloom) ContainsString(item string) bool {
	h1, h2 := hashx.Murmur3_128String(item, f.seed)
	return f.ContainsHash(h1, h2)
}

// ContainsHash answers a membership query from a pre-computed hash.
func (f *AtomicBlockedBloom) ContainsHash(h1, h2 uint64) bool {
	base := hashx.FastRange(h1, f.blocks) * bloom.BlockWords
	k, w := f.k, h2
	for {
		steps := k
		if steps > 7 {
			steps = 7
		}
		for j := 0; j < steps; j++ {
			pos := w & 511
			if f.bits[base+pos>>6].Load()&(1<<(pos&63)) == 0 {
				return false
			}
			w >>= 9
		}
		if k -= steps; k == 0 {
			return true
		}
		h2 = hashx.Mix64(h2)
		w = h2
	}
}

// N returns the number of insertions performed (including duplicates).
func (f *AtomicBlockedBloom) N() uint64 { return f.n.Load() }

// M returns the number of bits.
func (f *AtomicBlockedBloom) M() uint64 { return f.blocks * 512 }

// K returns the number of bit probes per item.
func (f *AtomicBlockedBloom) K() int { return f.k }

// Seed returns the hash seed.
func (f *AtomicBlockedBloom) Seed() uint64 { return f.seed }

// SizeBytes returns the bit-array storage size.
func (f *AtomicBlockedBloom) SizeBytes() int { return len(f.bits) * 8 }

// Merge ORs a hash-compatible plain blocked filter in atomically.
// Concurrent Adds interleave safely: each word OR is atomic, so
// completed inserts on either side remain findable.
func (f *AtomicBlockedBloom) Merge(other *bloom.BlockedFilter) error {
	if other.Blocks() != f.blocks || other.K() != f.k || other.Seed() != f.seed {
		return fmt.Errorf("%w: atomic blocked bloom (blocks=%d,k=%d,seed=%d) vs (blocks=%d,k=%d,seed=%d)",
			core.ErrIncompatible, f.blocks, f.k, f.seed, other.Blocks(), other.K(), other.Seed())
	}
	for i, w := range other.Words() {
		if w != 0 {
			f.orWord(uint64(i), w)
		}
	}
	f.n.Add(other.N())
	return nil
}

// snapshotWords reads all words atomically (per-word snapshot).
func (f *AtomicBlockedBloom) snapshotWords() ([]uint64, uint64) {
	words := make([]uint64, len(f.bits))
	for i := range f.bits {
		words[i] = f.bits[i].Load()
	}
	return words, f.n.Load()
}

// Snapshot copies the bits into a plain BlockedFilter for
// serialization or offline use. Under concurrent writes the copy is a
// per-word snapshot, which preserves no-false-negatives for completed
// inserts.
func (f *AtomicBlockedBloom) Snapshot() *bloom.BlockedFilter {
	words, n := f.snapshotWords()
	bf, err := bloom.NewBlockedFromWords(f.blocks, f.k, f.seed, words, n)
	if err != nil {
		panic(err) // dimensions match by construction
	}
	return bf
}

// MarshalBinary serializes a snapshot in the standard blocked-Bloom
// envelope, so any BlockedFilter can absorb it.
func (f *AtomicBlockedBloom) MarshalBinary() ([]byte, error) {
	return f.Snapshot().MarshalBinary()
}
