package concurrent

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/bloom"
	"repro/internal/core"
	"repro/internal/hashx"
)

func blockedKey(i int) []byte { return hashx.Uint64Bytes(uint64(i)) }

func TestAtomicBlockedBloomMatchesSerial(t *testing.T) {
	// The atomic wrapper must address exactly the bits the plain
	// blocked filter does: after the same inserts, Snapshot() is
	// byte-identical to the serial filter.
	const n = 5000
	ref := bloom.NewBlocked(1<<16, 6, 3)
	af := NewAtomicBlockedBloom(1<<16, 6, 3)
	for i := 0; i < n; i++ {
		ref.Add(blockedKey(i))
		af.Add(blockedKey(i))
	}
	a, _ := ref.MarshalBinary()
	b, _ := af.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("atomic snapshot differs from serial blocked filter")
	}
	for i := 0; i < n; i++ {
		if !af.Contains(blockedKey(i)) {
			t.Fatalf("false negative for key %d", i)
		}
		if !af.ContainsString(string(blockedKey(i))) {
			t.Fatalf("string false negative for key %d", i)
		}
	}
}

func TestAtomicBlockedBloomConcurrentAdds(t *testing.T) {
	// Bit-OR inserts commute, so racing writers must land on the same
	// final state as one serial writer — and no completed insert may be
	// lost (the CAS loop's no-false-negative guarantee).
	const (
		writers = 8
		perW    = 4000
	)
	ref := bloom.NewBlocked(1<<18, 5, 9)
	for i := 0; i < writers*perW; i++ {
		ref.Add(blockedKey(i))
	}
	af := NewAtomicBlockedBloom(1<<18, 5, 9)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items := make([][]byte, perW)
			for i := range items {
				items[i] = blockedKey(w*perW + i)
			}
			// Half through the batch pipeline, half scalar, to race
			// both code paths.
			af.AddBatch(items[:perW/2])
			for _, it := range items[perW/2:] {
				af.Add(it)
			}
		}(w)
	}
	wg.Wait()
	a, _ := ref.MarshalBinary()
	b, _ := af.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("concurrent adds diverged from serial reference")
	}
	if af.N() != writers*perW {
		t.Fatalf("N() = %d, want %d", af.N(), writers*perW)
	}
}

func TestAtomicBlockedBloomMerge(t *testing.T) {
	af := NewAtomicBlockedBloom(1<<15, 5, 4)
	other := bloom.NewBlocked(1<<15, 5, 4)
	for i := 0; i < 1000; i++ {
		other.Add(blockedKey(i))
	}
	if err := af.Merge(other); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if !af.Contains(blockedKey(i)) {
			t.Fatalf("merged key %d missing", i)
		}
	}
	for _, bad := range []*bloom.BlockedFilter{
		bloom.NewBlocked(1<<16, 5, 4), // blocks
		bloom.NewBlocked(1<<15, 4, 4), // k
		bloom.NewBlocked(1<<15, 5, 5), // seed
	} {
		if err := af.Merge(bad); !errors.Is(err, core.ErrIncompatible) {
			t.Errorf("mismatched merge: err = %v, want ErrIncompatible", err)
		}
	}
}
