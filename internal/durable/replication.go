package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Replication export surface. A leader ships two kinds of files to
// followers, both already immutable on disk:
//
//   - sealed WAL segments — every segment whose seq is below the one
//     currently being written. Sealing happens on snapshot rotation,
//     size rotation, or an explicit SealActive (the replication
//     endpoint lets followers request one, bounding staleness to the
//     poll interval instead of the rotation interval);
//   - snapshot files — committed via write-temp + fsync + rename, so a
//     visible snap-*.snap is complete by construction.
//
// The active segment never ships: its bytes move under the syncer's
// bufio writer, and a follower reading a half-written record would
// tear it. Followers therefore replay only sealed history, and the
// leader's wal_lsn minus the follower's applied LSN is the exact
// replication lag in records.

// SegmentInfo is one sealed WAL segment in a Shippable listing.
type SegmentInfo struct {
	Name string `json:"name"`
	Seq  uint64 `json:"seq"`
	Size int64  `json:"size"`
}

// ShippableState is the leader's replication manifest: the current
// snapshot (empty Snapshot means none has been taken), every sealed
// segment in ascending seq order, and the LSN frontier.
type ShippableState struct {
	WALLSN      uint64        `json:"wal_lsn"`
	SnapshotLSN uint64        `json:"snapshot_lsn"`
	Snapshot    string        `json:"snapshot,omitempty"`
	Segments    []SegmentInfo `json:"segments"`
}

// Shippable reports the current replication manifest. Safe from any
// goroutine: it reads the directory plus two atomics, and every file
// it lists is immutable once listed (a concurrent snapshot may delete
// sealed segments — the follower sees the 404 and re-syncs from the
// newer snapshot).
func (m *Manager) Shippable() ShippableState {
	st := ShippableState{
		WALLSN:      m.lsn.Load(),
		SnapshotLSN: m.snapLSN.Load(),
	}
	if st.SnapshotLSN > 0 {
		st.Snapshot = snapFileName(st.SnapshotLSN)
	}
	active := m.activeSeq.Load()
	for _, name := range listByPrefixAsc(m.dir, "wal-", ".log") {
		seq := walSeqFromName(name)
		if active != 0 && seq >= active {
			continue
		}
		info, err := os.Stat(filepath.Join(m.dir, name))
		if err != nil {
			continue
		}
		st.Segments = append(st.Segments, SegmentInfo{Name: name, Seq: seq, Size: info.Size()})
	}
	return st
}

// ReadShippable returns the bytes of one shippable file by name. Only
// sealed WAL segments and snapshot files are served; the active
// segment, the manifest, temp files, and anything path-shaped is
// rejected — this is the validation gate for the HTTP file endpoint.
func (m *Manager) ReadShippable(name string) ([]byte, error) {
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return nil, fmt.Errorf("durable: invalid shippable name %q", name)
	}
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		seq := walSeqFromName(name)
		if active := m.activeSeq.Load(); active != 0 && seq >= active {
			return nil, fmt.Errorf("durable: segment %s is active, not sealed", name)
		}
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
	default:
		return nil, fmt.Errorf("durable: %q is not a shippable file", name)
	}
	if strings.Contains(name, ".tmp-") {
		return nil, fmt.Errorf("durable: %q is not a shippable file", name)
	}
	return os.ReadFile(filepath.Join(m.dir, name))
}

// DecodeSnapshotFile parses a shipped snapshot file into its sketch
// rows — the follower-side entry point for snapshot-based catch-up.
// Validation is all-or-nothing, exactly as in local recovery.
func DecodeSnapshotFile(data []byte) ([]SketchSnap, error) {
	return decodeSnapshot(data)
}
