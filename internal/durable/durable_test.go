package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleLog(records []Record) []byte {
	buf := WALHeader()
	for _, r := range records {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func sampleRecords() []Record {
	return []Record{
		{LSN: 1, Op: OpCreate, Name: "hll-a", Body: []byte(`{"type":"hll"}`)},
		{LSN: 2, Op: OpIngest, Name: "hll-a", Body: []byte("alpha\nbeta\ngamma")},
		{LSN: 3, Op: OpIngest, Name: "hll-a", Body: []byte("delta")},
		{LSN: 4, Op: OpDelete, Name: "hll-a"},
	}
}

func replayAll(t *testing.T, data []byte, lastLSN uint64) (recs []Record, consumed int, last uint64) {
	t.Helper()
	consumed, last, err := ReplayLog(data, lastLSN, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Op: r.Op, Name: r.Name, Body: append([]byte(nil), r.Body...)})
		return nil
	})
	if err != nil {
		t.Fatalf("ReplayLog: %v", err)
	}
	return recs, consumed, last
}

func TestWALRoundtrip(t *testing.T) {
	want := sampleRecords()
	data := sampleLog(want)
	got, consumed, last := replayAll(t, data, 0)
	if consumed != len(data) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(data))
	}
	if last != 4 {
		t.Fatalf("last LSN %d, want 4", last)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Op != want[i].Op || got[i].Name != want[i].Name ||
			!bytes.Equal(got[i].Body, want[i].Body) {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALReplaySkipsAlreadySeen(t *testing.T) {
	data := sampleLog(sampleRecords())
	got, _, _ := replayAll(t, data, 2)
	// Records with LSN <= 2 fail the strictly-increasing rule at the
	// head, so replay ends the valid prefix there: a caller resuming
	// past a log's own records must slice the log, not skip by LSN.
	if len(got) != 0 {
		t.Fatalf("replay from lastLSN=2 on a log starting at 1: got %d records, want 0", len(got))
	}
}

func TestWALTornTail(t *testing.T) {
	data := sampleLog(sampleRecords())
	for cut := len(data) - 1; cut > len(data)-12; cut-- {
		got, consumed, last := replayAll(t, data[:cut], 0)
		if len(got) != 3 || last != 3 {
			t.Fatalf("cut at %d: replayed %d records (last %d), want 3 records", cut, len(got), last)
		}
		if consumed > cut {
			t.Fatalf("cut at %d: consumed %d past the data", cut, consumed)
		}
	}
}

func TestWALBitFlip(t *testing.T) {
	recs := sampleRecords()
	data := sampleLog(recs)
	// Flip one byte in every position of the second record's span; the
	// valid prefix must always end after record one (never over-replay,
	// never panic). Find record 2's span by encoding incrementally.
	oneRec := len(sampleLog(recs[:1]))
	twoRec := len(sampleLog(recs[:2]))
	for off := oneRec; off < twoRec; off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		got, _, last := replayAll(t, mut, 0)
		if len(got) > 1 || last > 1 {
			t.Fatalf("bit flip at %d: replayed %d records (last %d), want <= 1", off, len(got), last)
		}
	}
}

func TestWALRejectsNonMonotonicLSN(t *testing.T) {
	buf := WALHeader()
	buf = AppendRecord(buf, Record{LSN: 5, Op: OpIngest, Name: "a", Body: []byte("x")})
	buf = AppendRecord(buf, Record{LSN: 5, Op: OpIngest, Name: "a", Body: []byte("y")})
	got, _, last := replayAll(t, buf, 0)
	if len(got) != 1 || last != 5 {
		t.Fatalf("duplicate LSN: replayed %d records (last %d), want exactly 1", len(got), last)
	}
}

func TestWALRejectsForeignHeader(t *testing.T) {
	if _, _, err := ReplayLog([]byte("GSK1xxxxxxxx"), 0, nil); err == nil {
		t.Fatal("foreign magic accepted")
	}
	if _, _, err := ReplayLog([]byte("DU"), 0, nil); err == nil {
		t.Fatal("short header accepted")
	}
	future := WALHeader()
	future[4] = walVersion + 1
	if _, _, err := ReplayLog(future, 0, nil); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWALImplausibleLength(t *testing.T) {
	buf := WALHeader()
	buf = binary.LittleEndian.AppendUint32(buf, MaxRecordBytes+1)
	buf = append(buf, make([]byte, 64)...)
	got, _, _ := replayAll(t, buf, 0)
	if len(got) != 0 {
		t.Fatalf("oversized length field: replayed %d records, want 0", len(got))
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	want := []SketchSnap{
		{Name: "a", Req: []byte(`{"type":"hll"}`), LastLSN: 12, Data: []byte("GSK1-bytes-a")},
		{Name: "b", Req: []byte(`{"type":"kll","k":200}`), LastLSN: 7, Data: []byte("GSK1-bytes-b")},
		{Name: "", Req: []byte(`{}`), LastLSN: 0, Data: nil},
	}
	got, err := decodeSnapshot(encodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].LastLSN != want[i].LastLSN ||
			!bytes.Equal(got[i].Req, want[i].Req) || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	data := encodeSnapshot([]SketchSnap{{Name: "a", Req: []byte("{}"), LastLSN: 1, Data: []byte("xyz")}})
	for _, mut := range [][]byte{
		data[:len(data)-1],              // torn tail
		append([]byte("XXXX"), data...), // foreign prefix
	} {
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatal("damaged snapshot accepted")
		}
	}
	flip := append([]byte(nil), data...)
	flip[len(flip)-2] ^= 1
	if _, err := decodeSnapshot(flip); err == nil {
		t.Fatal("bit-flipped snapshot accepted")
	}
}

// collectHandler records everything Recover feeds it.
type collectHandler struct {
	snapLSN  uint64
	restored []SketchSnap
	replayed []Record
}

func (h *collectHandler) Begin(lsn uint64) error { h.snapLSN = lsn; return nil }
func (h *collectHandler) RestoreSketch(s SketchSnap) error {
	h.restored = append(h.restored, s)
	return nil
}
func (h *collectHandler) Replay(r Record) error {
	h.replayed = append(h.replayed, Record{LSN: r.LSN, Op: r.Op, Name: r.Name, Body: append([]byte(nil), r.Body...)})
	return nil
}

func TestManagerAppendSyncRecover(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{FsyncInterval: 0}) // per-batch commit
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(&collectHandler{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(func() []SketchSnap { return nil }); err != nil {
		t.Fatal(err)
	}
	for i, rec := range sampleRecords() {
		if lsn := m.Append(rec.Op, rec.Tenant, rec.Name, rec.Body); lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn %d, want %d", i, lsn, i+1)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if !st.Enabled || st.WALLSN != 4 || st.WALBytes <= int64(walHeaderLen) || st.LastFsyncAgeMS < 0 {
		t.Fatalf("status after sync: %+v", st)
	}
	m.Kill() // no final snapshot: recovery must come from the WAL alone

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var h collectHandler
	stats, err := m2.Recover(&h)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsReplayed != 4 || len(h.replayed) != 4 || h.snapLSN != 0 {
		t.Fatalf("recovery stats %+v, replayed %d", stats, len(h.replayed))
	}
	want := sampleRecords()
	for i := range want {
		if h.replayed[i].LSN != want[i].LSN || !bytes.Equal(h.replayed[i].Body, want[i].Body) {
			t.Fatalf("replayed[%d] = %+v, want %+v", i, h.replayed[i], want[i])
		}
	}
	// New appends continue the LSN sequence past the recovered tail.
	if err := m2.Start(func() []SketchSnap { return nil }); err != nil {
		t.Fatal(err)
	}
	if lsn := m2.Append(OpIngest, "", "hll-a", []byte("eps")); lsn != 5 {
		t.Fatalf("post-recovery Append lsn %d, want 5", lsn)
	}
	m2.Close()
}

func TestManagerSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{FsyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(&collectHandler{}); err != nil {
		t.Fatal(err)
	}
	captured := []SketchSnap{{Name: "a", Req: []byte(`{"type":"hll"}`), LastLSN: 2, Data: []byte("state")}}
	if err := m.Start(func() []SketchSnap { return captured }); err != nil {
		t.Fatal(err)
	}
	m.Append(OpCreate, "", "a", []byte(`{"type":"hll"}`))
	m.Append(OpIngest, "", "a", []byte("x"))
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	m.Append(OpIngest, "", "a", []byte("y")) // lands in the post-rotation segment
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	segs := listByPrefixAsc(dir, "wal-", ".log")
	if len(segs) != 1 {
		t.Fatalf("after snapshot: %d WAL segments %v, want 1 (older truncated)", len(segs), segs)
	}
	if st := m.Status(); st.LastSnapshotLSN != 2 {
		t.Fatalf("LastSnapshotLSN %d, want 2", st.LastSnapshotLSN)
	}
	m.Kill()

	m2, _ := Open(dir, Options{})
	var h collectHandler
	if _, err := m2.Recover(&h); err != nil {
		t.Fatal(err)
	}
	if h.snapLSN != 2 || len(h.restored) != 1 || h.restored[0].Name != "a" {
		t.Fatalf("snapshot recovery: snapLSN %d, restored %+v", h.snapLSN, h.restored)
	}
	if len(h.replayed) != 1 || h.replayed[0].LSN != 3 || !bytes.Equal(h.replayed[0].Body, []byte("y")) {
		t.Fatalf("WAL tail after snapshot: %+v", h.replayed)
	}
}

func TestRecoverFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	old := encodeSnapshot([]SketchSnap{{Name: "old", Req: []byte("{}"), LastLSN: 1, Data: []byte("v1")}})
	if err := os.WriteFile(filepath.Join(dir, snapFileName(1)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	bad := encodeSnapshot([]SketchSnap{{Name: "new", Req: []byte("{}"), LastLSN: 9, Data: []byte("v2")}})
	bad[len(bad)-1] ^= 1
	if err := os.WriteFile(filepath.Join(dir, snapFileName(9)), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, manifest{Version: 1, Snapshot: snapFileName(9), LSN: 9}); err != nil {
		t.Fatal(err)
	}
	m, _ := Open(dir, Options{})
	var h collectHandler
	if _, err := m.Recover(&h); err != nil {
		t.Fatal(err)
	}
	if h.snapLSN != 1 || len(h.restored) != 1 || h.restored[0].Name != "old" {
		t.Fatalf("fallback recovery: snapLSN %d, restored %+v", h.snapLSN, h.restored)
	}
}

func TestRecoverTruncatesTornSegmentOnDisk(t *testing.T) {
	dir := t.TempDir()
	m, _ := Open(dir, Options{FsyncInterval: 0})
	m.Recover(&collectHandler{})
	m.Start(func() []SketchSnap { return nil })
	m.Append(OpCreate, "", "a", []byte(`{"type":"hll"}`))
	m.Append(OpIngest, "", "a", []byte("x"))
	m.Sync()
	m.Kill()

	seg := listByPrefixAsc(dir, "wal-", ".log")[0]
	path := filepath.Join(dir, seg)
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, append(data, "garbage-partial-record"...), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, _ := Open(dir, Options{})
	var h collectHandler
	stats, err := m2.Recover(&h)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.replayed) != 2 || stats.TornSegments != 1 {
		t.Fatalf("torn-tail recovery: %d records, stats %+v", len(h.replayed), stats)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, data) {
		t.Fatalf("segment not truncated back to the valid prefix: %d bytes, want %d", len(after), len(data))
	}
	// A third recovery sees a clean log.
	m3, _ := Open(dir, Options{})
	var h3 collectHandler
	stats3, _ := m3.Recover(&h3)
	if len(h3.replayed) != 2 || stats3.TornSegments != 0 {
		t.Fatalf("post-truncation recovery: %d records, stats %+v", len(h3.replayed), stats3)
	}
	if !reflect.DeepEqual(h3.replayed, h.replayed) {
		t.Fatal("post-truncation replay differs")
	}
}
