package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file format:
//
//	header:  "DSN1" magic (4 bytes) + version byte
//	records: u32 payload length
//	         u32 CRC32C of the payload
//	         payload (version 1):
//	           u64 last applied LSN for this sketch
//	           u32 name length + name bytes
//	           u32 create-request length + JSON CreateRequest bytes
//	           u32 data length + sketch MarshalBinary envelope
//	         payload (version 2): as version 1, plus a
//	           u32 tenant length + tenant bytes
//	         field between the name and the create request (empty
//	         tenant = default namespace, mirroring the WAL records).
//
// A snapshot is valid only if every record through EOF validates — a
// torn snapshot is rejected whole and recovery falls back to the
// previous one (snapshots commit via write-temp + fsync + rename, so
// a torn file only exists if the filesystem itself lost the rename).
const (
	snapMagic   = "DSN1"
	snapVersion = 2
)

// SketchSnap is one sketch's row in a snapshot: everything needed to
// reconstruct the live entry (creation parameters + serialized state)
// plus the LSN up to which the state already includes WAL records.
// An empty Tenant is the default namespace.
type SketchSnap struct {
	Tenant  string
	Name    string
	Req     []byte // JSON CreateRequest
	LastLSN uint64
	Data    []byte // MarshalBinary envelope
}

// manifest is the JSON document in the MANIFEST file: which snapshot
// file is current and the global LSN at which it cut the log. Records
// with LSN at or below the manifest LSN are subsumed by the snapshot
// (ingest/merge via the finer per-sketch LastLSN, create/delete via
// the manifest LSN itself).
type manifest struct {
	Version  int    `json:"version"`
	Snapshot string `json:"snapshot"`
	LSN      uint64 `json:"lsn"`
}

func snapFileName(lsn uint64) string { return fmt.Sprintf("snap-%020d.snap", lsn) }
func walFileName(seq uint64) string  { return fmt.Sprintf("wal-%020d.log", seq) }
func manifestPath(dir string) string { return filepath.Join(dir, "MANIFEST") }

// encodeSnapshot renders a complete snapshot file.
func encodeSnapshot(snaps []SketchSnap) []byte {
	size := walHeaderLen
	for _, s := range snaps {
		size += recordOverhead + 8 + 4 + len(s.Name) + 4 + len(s.Tenant) + 4 + len(s.Req) + 4 + len(s.Data)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion)
	for _, s := range snaps {
		payloadLen := 8 + 4 + len(s.Name) + 4 + len(s.Tenant) + 4 + len(s.Req) + 4 + len(s.Data)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
		crcAt := len(buf)
		buf = binary.LittleEndian.AppendUint32(buf, 0)
		payloadAt := len(buf)
		buf = binary.LittleEndian.AppendUint64(buf, s.LastLSN)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Tenant)))
		buf = append(buf, s.Tenant...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Req)))
		buf = append(buf, s.Req...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Data)))
		buf = append(buf, s.Data...)
		binary.LittleEndian.PutUint32(buf[crcAt:], Checksum(buf[payloadAt:]))
	}
	return buf
}

// decodeSnapshot parses and validates a snapshot file whole; any
// damage rejects the file.
func decodeSnapshot(data []byte) ([]SketchSnap, error) {
	if len(data) < walHeaderLen || string(data[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot header", ErrCorruptLog)
	}
	if data[4] == 0 || data[4] > snapVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, support <= %d", ErrCorruptLog, data[4], snapVersion)
	}
	version := data[4]
	var out []SketchSnap
	off := walHeaderLen
	for off < len(data) {
		if len(data)-off < recordOverhead {
			return nil, fmt.Errorf("%w: torn snapshot record at %d", ErrCorruptLog, off)
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payloadLen > MaxRecordBytes || payloadLen > len(data)-off-recordOverhead {
			return nil, fmt.Errorf("%w: implausible snapshot record at %d", ErrCorruptLog, off)
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		p := data[off+recordOverhead : off+recordOverhead+payloadLen]
		if Checksum(p) != wantCRC {
			return nil, fmt.Errorf("%w: snapshot record CRC mismatch at %d", ErrCorruptLog, off)
		}
		if len(p) < 8+4 {
			return nil, fmt.Errorf("%w: short snapshot record at %d", ErrCorruptLog, off)
		}
		var s SketchSnap
		s.LastLSN = binary.LittleEndian.Uint64(p)
		p = p[8:]
		nameLen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if nameLen > len(p)-4 {
			return nil, fmt.Errorf("%w: snapshot name overrun at %d", ErrCorruptLog, off)
		}
		s.Name = string(p[:nameLen])
		p = p[nameLen:]
		if version >= 2 {
			tenantLen := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if tenantLen > len(p)-4 {
				return nil, fmt.Errorf("%w: snapshot tenant overrun at %d", ErrCorruptLog, off)
			}
			s.Tenant = string(p[:tenantLen])
			p = p[tenantLen:]
		}
		reqLen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if reqLen > len(p)-4 {
			return nil, fmt.Errorf("%w: snapshot request overrun at %d", ErrCorruptLog, off)
		}
		s.Req = append([]byte(nil), p[:reqLen]...)
		p = p[reqLen:]
		dataLen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if dataLen != len(p) {
			return nil, fmt.Errorf("%w: snapshot data overrun at %d", ErrCorruptLog, off)
		}
		s.Data = append([]byte(nil), p...)
		out = append(out, s)
		off += recordOverhead + payloadLen
	}
	return out, nil
}

// writeFileSync writes data to path via a temp file, fsyncs it, and
// atomically renames it into place, then fsyncs the directory so the
// rename itself is durable.
func writeFileSync(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeManifest commits the manifest pointing at a snapshot file.
func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFileSync(dir, "MANIFEST", append(data, '\n'))
}

// loadLatestSnapshot finds the newest fully-valid snapshot: the
// manifest's choice first, then any snap-* file in descending LSN
// order (damage to the latest must not lose the store — an older
// snapshot plus a longer WAL replay is still correct, because replay
// skips records each sketch already contains).
func loadLatestSnapshot(dir string, logf func(string, ...any)) (snaps []SketchSnap, lsn uint64, ok bool) {
	tried := map[string]bool{}
	try := func(name string, manifestLSN uint64) bool {
		if name == "" || tried[name] {
			return false
		}
		tried[name] = true
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			logf("durable: snapshot %s unreadable: %v", name, err)
			return false
		}
		s, err := decodeSnapshot(data)
		if err != nil {
			logf("durable: snapshot %s invalid: %v", name, err)
			return false
		}
		snaps, lsn, ok = s, manifestLSN, true
		return true
	}

	if mdata, err := os.ReadFile(manifestPath(dir)); err == nil {
		var m manifest
		if json.Unmarshal(mdata, &m) == nil && m.Version == 1 {
			if try(m.Snapshot, m.LSN) {
				return snaps, lsn, true
			}
		} else {
			logf("durable: MANIFEST unreadable, scanning snapshots")
		}
	}
	for _, name := range listByPrefixDesc(dir, "snap-", ".snap") {
		if try(name, snapLSNFromName(name)) {
			return snaps, lsn, true
		}
	}
	return nil, 0, false
}

// snapLSNFromName recovers the cut LSN embedded in a snapshot file
// name (used only when the manifest is lost).
func snapLSNFromName(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
	n, _ := strconv.ParseUint(s, 10, 64)
	return n
}

func walSeqFromName(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	n, _ := strconv.ParseUint(s, 10, 64)
	return n
}

// listByPrefixDesc returns matching file names sorted descending;
// listByPrefixAsc ascending. Zero-padded fixed-width numbering makes
// lexical order numeric order.
func listByPrefixDesc(dir, prefix, suffix string) []string {
	names := listByPrefixAsc(dir, prefix, suffix)
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return names
}

func listByPrefixAsc(dir, prefix, suffix string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) &&
			!strings.Contains(name, ".tmp-") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
