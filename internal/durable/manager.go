package durable

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Manager. Zero values take the documented
// defaults.
type Options struct {
	// FsyncInterval is the group-commit policy: > 0 fsyncs the WAL on
	// that period (bounded data-loss window, highest throughput); 0
	// fsyncs after every drained batch of records (per-batch commit);
	// < 0 never fsyncs explicitly (the OS page cache decides — fastest,
	// survives process crashes but not power loss).
	FsyncInterval time.Duration
	// MaxBatchBytes fsyncs early once this many unsynced bytes have
	// accumulated, regardless of the interval. Default 1 MiB.
	MaxBatchBytes int
	// SnapshotInterval is the period between automatic snapshots
	// (each snapshot truncates the WAL at its cut LSN). <= 0 disables
	// timed snapshots; the WAL size trigger and final shutdown
	// snapshot still apply.
	SnapshotInterval time.Duration
	// WALMaxBytes triggers a snapshot (and thus WAL truncation) when
	// the active segment exceeds this size. Default 64 MiB.
	WALMaxBytes int64
	// QueueDepth bounds the append queue between request handlers and
	// the syncer. A full queue applies backpressure to writers rather
	// than dropping records. Default 4096.
	QueueDepth int
	// Logf receives operational log lines. Default: discard.
	Logf func(format string, args ...any)
}

func (o *Options) applyDefaults() {
	if o.MaxBatchBytes == 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.WALMaxBytes == 0 {
		o.WALMaxBytes = 64 << 20
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 4096
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Status is the durability block surfaced on GET /v1/status.
type Status struct {
	Enabled         bool   `json:"enabled"`
	WALLSN          uint64 `json:"wal_lsn"`
	LastSnapshotLSN uint64 `json:"last_snapshot_lsn"`
	WALBytes        int64  `json:"wal_bytes"`
	LastFsyncAgeMS  int64  `json:"last_fsync_age_ms"`
}

// RecoveryStats summarizes what Recover did.
type RecoveryStats struct {
	SnapshotLSN     uint64
	SketchesLoaded  int
	SketchesSkipped int
	RecordsReplayed int
	TornSegments    int
}

// RecoveryHandler receives the recovered state: Begin is called once
// with the snapshot cut LSN (0 if no snapshot), then RestoreSketch per
// snapshot row, then Replay per WAL record in LSN order. Handler
// errors are logged and the offending row/record skipped — recovery is
// never fatal.
type RecoveryHandler interface {
	Begin(snapLSN uint64) error
	RestoreSketch(s SketchSnap) error
	Replay(r Record) error
}

// Manager owns one data directory: the append queue, the background
// syncer that group-commits the WAL, the snapshot store, and recovery.
//
// Lifecycle: Open → Recover → Start → (Append | Sync | SnapshotNow)* →
// Close. Close flushes the queue, fsyncs, writes a final snapshot, and
// stops the syncer.
type Manager struct {
	dir  string
	opts Options

	lsn atomic.Uint64
	mu  sync.Mutex // orders LSN assignment with queue insertion

	ch      chan Record
	syncReq chan chan error
	snapReq chan chan error
	sealReq chan chan error
	quit    chan struct{}
	kill    atomic.Bool
	wg      sync.WaitGroup

	capture func() []SketchSnap

	// syncer-owned state (no locking: single goroutine)
	f           *os.File
	w           *bufio.Writer
	seq         uint64
	unsynced    int
	dirty       bool
	encBuf      []byte
	activeBytes int64

	// status atomics
	snapLSN   atomic.Uint64
	walBytes  atomic.Int64
	lastFsync atomic.Int64  // unixnano; 0 until the first commit
	activeSeq atomic.Uint64 // seq of the segment currently being written

	recovered RecoveryStats
}

// Open prepares a manager over dir (created if absent). No files are
// touched beyond the mkdir; call Recover then Start.
func Open(dir string, opts Options) (*Manager, error) {
	opts.applyDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{
		dir:     dir,
		opts:    opts,
		ch:      make(chan Record, opts.QueueDepth),
		syncReq: make(chan chan error, 1),
		snapReq: make(chan chan error, 1),
		sealReq: make(chan chan error, 1),
		quit:    make(chan struct{}),
		seq:     1,
	}, nil
}

// Recover loads the latest valid snapshot and replays the WAL tail
// into h. Torn or corrupt tails are truncated to the last valid
// record; segments past a damaged one are deleted so the log keeps a
// single timeline. Must be called before Start.
func (m *Manager) Recover(h RecoveryHandler) (RecoveryStats, error) {
	logf := m.opts.Logf
	var stats RecoveryStats

	snaps, snapLSN, ok := loadLatestSnapshot(m.dir, logf)
	if !ok {
		snapLSN = 0
	}
	stats.SnapshotLSN = snapLSN
	if err := h.Begin(snapLSN); err != nil {
		return stats, err
	}
	for _, s := range snaps {
		if err := h.RestoreSketch(s); err != nil {
			logf("durable: skipping sketch %q from snapshot: %v", s.Name, err)
			stats.SketchesSkipped++
			continue
		}
		stats.SketchesLoaded++
	}

	last := uint64(0)
	segments := listByPrefixAsc(m.dir, "wal-", ".log")
	damagedAt := -1
	for i, name := range segments {
		path := filepath.Join(m.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			logf("durable: segment %s unreadable: %v", name, err)
			damagedAt = i
			break
		}
		consumed, lastOut, err := ReplayLog(data, last, func(rec Record) error {
			if err := h.Replay(rec); err != nil {
				logf("durable: skipping record lsn=%d op=%d %q: %v", rec.LSN, rec.Op, rec.Name, err)
			} else {
				stats.RecordsReplayed++
			}
			return nil
		})
		last = lastOut
		if err != nil {
			// Unreadable header: nothing in this segment is trusted.
			logf("durable: segment %s: %v", name, err)
			damagedAt = i
			break
		}
		if consumed < len(data) {
			// Torn or corrupt tail: truncate the file to the valid
			// prefix so future recoveries read it cleanly.
			logf("durable: segment %s: truncating %d damaged tail bytes at offset %d",
				name, len(data)-consumed, consumed)
			stats.TornSegments++
			if err := os.Truncate(path, int64(consumed)); err != nil {
				logf("durable: truncate %s: %v", name, err)
			}
			damagedAt = i + 1 // this segment's prefix is good; later ones are not
			break
		}
		m.seq = walSeqFromName(name) + 1
	}
	if damagedAt >= 0 {
		// Segments past the damage point are from a dead timeline — new
		// appends reuse their LSN range. Delete them so the next
		// recovery cannot interleave the two.
		for i := damagedAt; i < len(segments); i++ {
			logf("durable: dropping post-damage segment %s", segments[i])
			os.Remove(filepath.Join(m.dir, segments[i]))
		}
		if damagedAt > 0 {
			m.seq = walSeqFromName(segments[damagedAt-1]) + 1
		}
	}

	if last < snapLSN {
		last = snapLSN
	}
	m.lsn.Store(last)
	m.snapLSN.Store(snapLSN)
	m.recovered = stats
	logf("durable: recovered %d sketches (snapshot lsn %d), replayed %d records, lsn now %d",
		stats.SketchesLoaded, snapLSN, stats.RecordsReplayed, last)
	return stats, nil
}

// RecoveredStats returns the stats from the last Recover call.
func (m *Manager) RecoveredStats() RecoveryStats { return m.recovered }

// Start opens a fresh WAL segment and launches the background syncer.
// capture must return a consistent per-sketch snapshot set; it is
// called from a snapshot goroutine while the syncer keeps draining the
// append queue, so capture may block on per-sketch locks without
// deadlocking writers.
func (m *Manager) Start(capture func() []SketchSnap) error {
	m.capture = capture
	if err := m.openSegment(); err != nil {
		return err
	}
	m.wg.Add(1)
	go m.run()
	return nil
}

// Append copies the record body, assigns the next LSN, and enqueues it
// for the syncer; it blocks only when the queue is full (backpressure,
// never loss). Returns the assigned LSN. An empty tenant means the
// default namespace. Callers serialize Append with the in-memory apply
// of the same sketch (per-entry lock) so per-sketch WAL order matches
// apply order.
func (m *Manager) Append(op byte, tenant, name string, body []byte) uint64 {
	rec := Record{Op: op, Tenant: tenant, Name: name}
	if len(body) > 0 {
		rec.Body = append(make([]byte, 0, len(body)), body...)
	}
	m.mu.Lock()
	rec.LSN = m.lsn.Add(1)
	m.ch <- rec
	m.mu.Unlock()
	return rec.LSN
}

// Sync blocks until every record appended before the call is written
// and fsynced — a durability barrier for tests and callers that need
// commit confirmation.
func (m *Manager) Sync() error {
	done := make(chan error, 1)
	select {
	case m.syncReq <- done:
		return <-done
	case <-m.quit:
		return fmt.Errorf("durable: manager closed")
	}
}

// SnapshotNow takes a snapshot immediately and truncates the WAL.
func (m *Manager) SnapshotNow() error {
	done := make(chan error, 1)
	select {
	case m.snapReq <- done:
		return <-done
	case <-m.quit:
		return fmt.Errorf("durable: manager closed")
	}
}

// SealActive drains the append queue, commits, and rotates the active
// WAL segment so every record appended before the call lives in a
// sealed (immutable, shippable) segment. A segment holding no records
// is not rotated — sealing an idle log is a no-op, so a replication
// follower can poll it freely without growing the segment count.
func (m *Manager) SealActive() error {
	done := make(chan error, 1)
	select {
	case m.sealReq <- done:
		return <-done
	case <-m.quit:
		return fmt.Errorf("durable: manager closed")
	}
}

// Close drains the queue, fsyncs the WAL, writes a final snapshot, and
// stops the syncer. The HTTP layer must stop producing appends first.
func (m *Manager) Close() error {
	close(m.quit)
	m.wg.Wait()
	return nil
}

// Kill stops the syncer abruptly: no drain, no flush, no final
// snapshot — records still buffered in the queue or the bufio layer
// are lost, exactly as in a kill -9. Test hook for crash-recovery
// coverage.
func (m *Manager) Kill() {
	m.kill.Store(true)
	close(m.quit)
	m.wg.Wait()
}

// Status reports the durability gauges.
func (m *Manager) Status() Status {
	s := Status{
		Enabled:         true,
		WALLSN:          m.lsn.Load(),
		LastSnapshotLSN: m.snapLSN.Load(),
		WALBytes:        m.walBytes.Load(),
		LastFsyncAgeMS:  -1,
	}
	if t := m.lastFsync.Load(); t != 0 {
		s.LastFsyncAgeMS = time.Since(time.Unix(0, t)).Milliseconds()
	}
	return s
}

// --- syncer ---

func (m *Manager) run() {
	defer m.wg.Done()
	var fsyncC, snapC <-chan time.Time
	if m.opts.FsyncInterval > 0 {
		t := time.NewTicker(m.opts.FsyncInterval)
		defer t.Stop()
		fsyncC = t.C
	}
	if m.opts.SnapshotInterval > 0 {
		t := time.NewTicker(m.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case rec := <-m.ch:
			m.writeRecord(rec)
			m.drainQueue()
			m.maybeCommit(false)
			if m.activeBytes > m.opts.WALMaxBytes {
				if err := m.doSnapshot(); err != nil {
					m.opts.Logf("durable: size-triggered snapshot: %v", err)
				}
			}
		case <-fsyncC:
			m.commit()
		case <-snapC:
			if err := m.doSnapshot(); err != nil {
				m.opts.Logf("durable: timed snapshot: %v", err)
			}
		case done := <-m.syncReq:
			m.drainQueue()
			done <- m.commit()
		case done := <-m.snapReq:
			m.drainQueue()
			done <- m.doSnapshot()
		case done := <-m.sealReq:
			m.drainQueue()
			done <- m.sealActive()
		case <-m.quit:
			if m.kill.Load() {
				// Simulated kill -9: drop buffered data on the floor.
				m.f.Close()
				return
			}
			m.drainQueue()
			if err := m.commit(); err != nil {
				m.opts.Logf("durable: final commit: %v", err)
			}
			if err := m.doSnapshot(); err != nil {
				m.opts.Logf("durable: final snapshot: %v", err)
			}
			m.w.Flush()
			m.f.Sync()
			m.f.Close()
			return
		}
	}
}

// drainQueue moves every queued record to the writer without blocking.
func (m *Manager) drainQueue() {
	for {
		select {
		case rec := <-m.ch:
			m.writeRecord(rec)
		default:
			return
		}
	}
}

func (m *Manager) writeRecord(rec Record) {
	m.encBuf = AppendRecord(m.encBuf[:0], rec)
	if _, err := m.w.Write(m.encBuf); err != nil {
		m.opts.Logf("durable: WAL write (lsn %d): %v", rec.LSN, err)
		return
	}
	m.unsynced += len(m.encBuf)
	m.activeBytes += int64(len(m.encBuf))
	m.walBytes.Store(m.activeBytes)
	m.dirty = true
}

// maybeCommit applies the group-commit policy after a write burst.
func (m *Manager) maybeCommit(force bool) {
	switch {
	case force,
		m.opts.FsyncInterval == 0, // per-batch commit
		m.unsynced >= m.opts.MaxBatchBytes:
		m.commit()
	}
}

// commit flushes buffered records and fsyncs unless fsync is disabled
// (FsyncInterval < 0), in which case it only flushes to the OS.
func (m *Manager) commit() error {
	if !m.dirty {
		return nil
	}
	if err := m.w.Flush(); err != nil {
		m.opts.Logf("durable: WAL flush: %v", err)
		return err
	}
	if m.opts.FsyncInterval >= 0 {
		if err := m.f.Sync(); err != nil {
			m.opts.Logf("durable: WAL fsync: %v", err)
			return err
		}
	}
	m.dirty = false
	m.unsynced = 0
	m.lastFsync.Store(time.Now().UnixNano())
	return nil
}

// openSegment creates the next WAL segment and makes it the active
// write target.
func (m *Manager) openSegment() error {
	name := walFileName(m.seq)
	f, err := os.OpenFile(filepath.Join(m.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	header := WALHeader()
	if _, err := f.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(m.dir); err != nil {
		f.Close()
		return err
	}
	m.f = f
	m.w = bufio.NewWriterSize(f, 256<<10)
	m.activeBytes = int64(len(header))
	m.walBytes.Store(m.activeBytes)
	m.unsynced = 0
	m.dirty = false
	m.activeSeq.Store(m.seq)
	return nil
}

// sealActive rotates the active segment (syncer goroutine only). Runs
// the same flush + fsync + close + open-next sequence doSnapshot uses,
// minus the snapshot itself.
func (m *Manager) sealActive() error {
	if m.activeBytes <= int64(walHeaderLen) {
		return nil // no records since the last rotation: nothing to seal
	}
	if err := m.commit(); err != nil {
		return err
	}
	m.w.Flush()
	m.f.Sync()
	m.f.Close()
	m.seq++
	return m.openSegment()
}

// doSnapshot is the snapshot + WAL-truncation protocol, run on the
// syncer goroutine:
//
//  1. flush+fsync and rotate to a fresh segment — every record already
//     written lands before the cut;
//  2. read the cut LSN;
//  3. capture every live sketch (in a helper goroutine, while this
//     goroutine keeps draining the append queue so writers blocked on
//     per-sketch locks can finish their Append without deadlock);
//  4. commit the snapshot file, then the manifest (atomic renames);
//  5. delete WAL segments before the rotation and snapshots older than
//     the previous one.
//
// Every record with LSN <= the cut is subsumed: it was applied to its
// sketch before that sketch was captured (apply and Append share the
// per-sketch lock), so replay skips it via the per-sketch LastLSN,
// and creates/deletes at or below the cut are skipped wholesale.
func (m *Manager) doSnapshot() error {
	if m.capture == nil {
		return nil
	}
	if err := m.commit(); err != nil {
		return err
	}
	oldSeq := m.seq
	m.w.Flush()
	m.f.Sync()
	m.f.Close()
	m.seq++
	if err := m.openSegment(); err != nil {
		return fmt.Errorf("durable: rotating WAL: %w", err)
	}

	cut := m.lsn.Load()

	snapsC := make(chan []SketchSnap, 1)
	go func() { snapsC <- m.capture() }()
	var snaps []SketchSnap
	for snaps == nil {
		select {
		case s := <-snapsC:
			if s == nil {
				s = []SketchSnap{}
			}
			snaps = s
		case rec := <-m.ch:
			m.writeRecord(rec)
		}
	}

	name := snapFileName(cut)
	if err := writeFileSync(m.dir, name, encodeSnapshot(snaps)); err != nil {
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	if err := writeManifest(m.dir, manifest{Version: 1, Snapshot: name, LSN: cut}); err != nil {
		return fmt.Errorf("durable: writing manifest: %w", err)
	}
	m.snapLSN.Store(cut)

	// Truncate the log: segments from before the rotation are fully
	// subsumed by the snapshot.
	for _, seg := range listByPrefixAsc(m.dir, "wal-", ".log") {
		if walSeqFromName(seg) <= oldSeq {
			os.Remove(filepath.Join(m.dir, seg))
		}
	}
	// Retire old snapshots, keeping one fallback behind the current.
	snapFiles := listByPrefixDesc(m.dir, "snap-", ".snap")
	for i, sf := range snapFiles {
		if i >= 2 {
			os.Remove(filepath.Join(m.dir, sf))
		}
	}
	m.opts.Logf("durable: snapshot %s committed (%d sketches, cut lsn %d)", name, len(snaps), cut)
	return nil
}
