// Package durable is sketchd's persistence subsystem: a write-ahead
// log plus a snapshot store, designed so durability stays off the
// ingest hot path (handlers append to a bounded queue; a background
// syncer group-commits to disk) and crash recovery is never fatal
// (torn or corrupt WAL tails are detected by CRC and truncated to the
// last valid record).
//
// On-disk layout under the data directory:
//
//	wal-00000000000000000042.log   WAL segments (DUR1 format, ascending seq)
//	snap-00000000000000000137.snap snapshot files (DSN1 format, named by LSN)
//	MANIFEST                       JSON pointer {snapshot, lsn}, atomically renamed
//
// The WAL is the source of truth between snapshots: every mutating
// server operation (create / ingest-batch / merge / delete) appends
// one record carrying a globally monotonic LSN. A snapshot subsumes
// every record whose LSN is at or below the per-sketch LSN it captures,
// so after a snapshot commits the older WAL segments are deleted and
// the log is effectively truncated at the snapshot LSN.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL segment file format:
//
//	header:  "DUR1" magic (4 bytes) + version byte
//	records: u32 payload length
//	         u32 CRC32C (Castagnoli) of the payload
//	         payload (version 1):
//	           u64 LSN (strictly increasing across the whole log)
//	           u8  op (OpCreate/OpIngest/OpMerge/OpDelete)
//	           u32 name length + name bytes
//	           u32 body length + body bytes
//	         payload (version 2): as version 1, plus a
//	           u32 tenant length + tenant bytes
//	         field between the name and the body, and OpGroupBy as a
//	         valid op. The empty tenant means the default namespace, so
//	         a version-1 record replays as a version-2 record with an
//	         empty tenant — old DUR1 logs keep working unchanged.
//
// All integers little-endian. A record is valid only if its length
// fits the remaining file, its CRC matches, its payload parses
// exactly, and its LSN is strictly greater than the previous record's;
// replay stops at the first violation (the valid prefix rule). The
// record version is the segment header's: segments are homogeneous,
// and a log directory may mix v1 segments (written before an upgrade)
// with v2 segments appended after it.
const (
	walMagic   = "DUR1"
	walVersion = 2

	// walHeaderLen is the segment header size (magic + version).
	walHeaderLen = 5

	// recordOverhead is the fixed per-record framing: length + CRC.
	recordOverhead = 8

	// MaxRecordBytes bounds one record's payload; anything larger is
	// treated as corruption. It comfortably exceeds the server's 8 MiB
	// request-body cap plus framing.
	MaxRecordBytes = 16 << 20
)

// WAL operation codes. Append-only: never renumber. OpGroupBy exists
// only in version-2 segments; in a version-1 segment it ends the valid
// prefix like any other unknown op.
const (
	OpCreate  byte = iota + 1 // body: JSON CreateRequest
	OpIngest                  // body: raw newline-delimited batch
	OpMerge                   // body: peer MarshalBinary envelope
	OpDelete                  // body: empty
	OpGroupBy                 // body: JSON GroupBySpec line + '\n' + raw grouped batch
)

// castagnoli is the CRC32C table used for every checksum in this
// package (WAL records, snapshot records, recovery verification).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of data — exported so callers can
// compare recovered sketch bytes against the recovery checksum.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrCorruptLog marks an unreadable WAL prefix: a missing or foreign
// segment header. A torn or corrupt *tail* is not an error — replay
// just stops at the last valid record.
var ErrCorruptLog = errors.New("durable: corrupt log")

// Record is one WAL entry. Tenant is the namespace the sketch lives
// in; empty means the default namespace (and is what every version-1
// record decodes to).
type Record struct {
	LSN    uint64
	Op     byte
	Tenant string
	Name   string
	Body   []byte
}

// WALHeader returns a fresh segment header.
func WALHeader() []byte {
	h := make([]byte, 0, walHeaderLen)
	h = append(h, walMagic...)
	return append(h, walVersion)
}

// AppendRecord encodes one record onto buf in the current (version 2)
// DUR1 framing and returns the extended slice.
func AppendRecord(buf []byte, r Record) []byte {
	payloadLen := 8 + 1 + 4 + len(r.Name) + 4 + len(r.Tenant) + 4 + len(r.Body)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN)
	buf = append(buf, r.Op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Tenant)))
	buf = append(buf, r.Tenant...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Body)))
	buf = append(buf, r.Body...)
	binary.LittleEndian.PutUint32(buf[crcAt:], Checksum(buf[payloadAt:]))
	return buf
}

// AppendRecordV1 encodes one record in the legacy version-1 framing
// (no tenant field). It exists so tests and experiments can fabricate
// pre-upgrade segments; live code always writes version 2.
func AppendRecordV1(buf []byte, r Record) []byte {
	payloadLen := 8 + 1 + 4 + len(r.Name) + 4 + len(r.Body)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, r.LSN)
	buf = append(buf, r.Op)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Body)))
	buf = append(buf, r.Body...)
	binary.LittleEndian.PutUint32(buf[crcAt:], Checksum(buf[payloadAt:]))
	return buf
}

// WALHeaderV1 returns a legacy version-1 segment header, paired with
// AppendRecordV1 for fabricating pre-upgrade logs in tests.
func WALHeaderV1() []byte {
	h := make([]byte, 0, walHeaderLen)
	h = append(h, walMagic...)
	return append(h, 1)
}

// parsePayload decodes a CRC-validated record payload in the given
// segment version's layout. It must consume the payload exactly; slop
// means a corrupt length field that happened to checksum (impossible
// unless the CRC itself collided, but cheap to reject).
func parsePayload(p []byte, version byte) (Record, bool) {
	if len(p) < 8+1+4 {
		return Record{}, false
	}
	r := Record{LSN: binary.LittleEndian.Uint64(p), Op: p[8]}
	p = p[9:]
	nameLen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if nameLen < 0 || nameLen > len(p)-4 {
		return Record{}, false
	}
	r.Name = string(p[:nameLen])
	p = p[nameLen:]
	maxOp := OpDelete
	if version >= 2 {
		maxOp = OpGroupBy
		tenantLen := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if tenantLen < 0 || tenantLen > len(p)-4 {
			return Record{}, false
		}
		r.Tenant = string(p[:tenantLen])
		p = p[tenantLen:]
	}
	bodyLen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if bodyLen != len(p) {
		return Record{}, false
	}
	if r.Op < OpCreate || r.Op > maxOp {
		return Record{}, false
	}
	r.Body = p
	return r, true
}

// ReplayLog scans one WAL segment's bytes, invoking fn for each valid
// record in order, starting after lastLSN (records must be strictly
// increasing; the first non-increasing, torn, or corrupt record ends
// the valid prefix — replay never applies anything past it, so a
// bit-flip can only cost the tail, never invent state). It returns the
// byte length of the valid prefix, the last LSN seen, and an error only
// if the header itself is unreadable or fn failed; tail damage is not
// an error.
//
// Record bodies passed to fn alias data and must not be retained.
func ReplayLog(data []byte, lastLSN uint64, fn func(Record) error) (consumed int, last uint64, err error) {
	last = lastLSN
	if len(data) < walHeaderLen || string(data[:4]) != walMagic {
		return 0, last, fmt.Errorf("%w: bad segment header", ErrCorruptLog)
	}
	if data[4] == 0 || data[4] > walVersion {
		return 0, last, fmt.Errorf("%w: segment version %d, support <= %d", ErrCorruptLog, data[4], walVersion)
	}
	version := data[4]
	off := walHeaderLen
	for {
		if len(data)-off < recordOverhead {
			return off, last, nil // clean EOF or torn framing
		}
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		if payloadLen > MaxRecordBytes || payloadLen > len(data)-off-recordOverhead {
			return off, last, nil // implausible or torn record
		}
		wantCRC := binary.LittleEndian.Uint32(data[off+4:])
		payload := data[off+recordOverhead : off+recordOverhead+payloadLen]
		if Checksum(payload) != wantCRC {
			return off, last, nil // corrupt record: stop at last valid LSN
		}
		rec, ok := parsePayload(payload, version)
		if !ok || rec.LSN <= last {
			return off, last, nil
		}
		if err := fn(rec); err != nil {
			return off, last, err
		}
		last = rec.LSN
		off += recordOverhead + payloadLen
	}
}
