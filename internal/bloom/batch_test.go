package bloom

// Equivalence tests for the hash-once entry points: the batch and
// string fast paths must leave byte-identical serialized state to the
// one-item []byte path they shortcut.

import (
	"bytes"
	"fmt"
	"testing"
)

func batchItems(n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("batch-item-%06d", i))
	}
	return items
}

func TestAddBatchMatchesSequential(t *testing.T) {
	items := batchItems(5000)
	seq := NewWithEstimates(10_000, 0.01, 7)
	bat := NewWithEstimates(10_000, 0.01, 7)
	for _, it := range items {
		seq.Add(it)
	}
	bat.AddBatch(items)
	a, err := seq.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := bat.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("AddBatch state differs from sequential Add")
	}
}

func TestStringPathsMatchByteSlices(t *testing.T) {
	items := batchItems(2000)
	viaBytes := NewWithEstimates(10_000, 0.01, 7)
	viaString := NewWithEstimates(10_000, 0.01, 7)
	for _, it := range items {
		viaBytes.Add(it)
		viaString.AddString(string(it))
	}
	a, _ := viaBytes.MarshalBinary()
	b, _ := viaString.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("AddString state differs from Add on the same keys")
	}
	for _, it := range items {
		if !viaBytes.ContainsString(string(it)) {
			t.Fatalf("ContainsString(%q) = false after Add", it)
		}
		if viaBytes.Contains(it) != viaString.ContainsString(string(it)) {
			t.Fatalf("Contains/ContainsString disagree on %q", it)
		}
	}
	if viaString.ContainsString("") {
		// Not required to be false, but must not panic on the empty key
		// (the zero-copy view returns nil there).
		t.Log("empty string reported present (false positive, acceptable)")
	}
}
